file(REMOVE_RECURSE
  "CMakeFiles/focus_datagen.dir/datagen/class_gen.cc.o"
  "CMakeFiles/focus_datagen.dir/datagen/class_gen.cc.o.d"
  "CMakeFiles/focus_datagen.dir/datagen/perturb.cc.o"
  "CMakeFiles/focus_datagen.dir/datagen/perturb.cc.o.d"
  "CMakeFiles/focus_datagen.dir/datagen/quest_gen.cc.o"
  "CMakeFiles/focus_datagen.dir/datagen/quest_gen.cc.o.d"
  "libfocus_datagen.a"
  "libfocus_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

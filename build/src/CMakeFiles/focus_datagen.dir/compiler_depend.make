# Empty compiler generated dependencies file for focus_datagen.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libfocus_datagen.a"
)

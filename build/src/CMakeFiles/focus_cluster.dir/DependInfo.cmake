
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/birch.cc" "src/CMakeFiles/focus_cluster.dir/cluster/birch.cc.o" "gcc" "src/CMakeFiles/focus_cluster.dir/cluster/birch.cc.o.d"
  "/root/repo/src/cluster/cluster_model.cc" "src/CMakeFiles/focus_cluster.dir/cluster/cluster_model.cc.o" "gcc" "src/CMakeFiles/focus_cluster.dir/cluster/cluster_model.cc.o.d"
  "/root/repo/src/cluster/grid_clustering.cc" "src/CMakeFiles/focus_cluster.dir/cluster/grid_clustering.cc.o" "gcc" "src/CMakeFiles/focus_cluster.dir/cluster/grid_clustering.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/focus_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/focus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

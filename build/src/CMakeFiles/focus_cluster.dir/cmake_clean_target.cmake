file(REMOVE_RECURSE
  "libfocus_cluster.a"
)

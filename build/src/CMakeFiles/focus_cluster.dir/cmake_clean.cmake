file(REMOVE_RECURSE
  "CMakeFiles/focus_cluster.dir/cluster/birch.cc.o"
  "CMakeFiles/focus_cluster.dir/cluster/birch.cc.o.d"
  "CMakeFiles/focus_cluster.dir/cluster/cluster_model.cc.o"
  "CMakeFiles/focus_cluster.dir/cluster/cluster_model.cc.o.d"
  "CMakeFiles/focus_cluster.dir/cluster/grid_clustering.cc.o"
  "CMakeFiles/focus_cluster.dir/cluster/grid_clustering.cc.o.d"
  "libfocus_cluster.a"
  "libfocus_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

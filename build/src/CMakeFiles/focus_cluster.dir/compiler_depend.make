# Empty compiler generated dependencies file for focus_cluster.
# This may be replaced when dependencies are built.

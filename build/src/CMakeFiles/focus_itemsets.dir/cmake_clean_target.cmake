file(REMOVE_RECURSE
  "libfocus_itemsets.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/itemsets/apriori.cc" "src/CMakeFiles/focus_itemsets.dir/itemsets/apriori.cc.o" "gcc" "src/CMakeFiles/focus_itemsets.dir/itemsets/apriori.cc.o.d"
  "/root/repo/src/itemsets/fp_growth.cc" "src/CMakeFiles/focus_itemsets.dir/itemsets/fp_growth.cc.o" "gcc" "src/CMakeFiles/focus_itemsets.dir/itemsets/fp_growth.cc.o.d"
  "/root/repo/src/itemsets/incremental.cc" "src/CMakeFiles/focus_itemsets.dir/itemsets/incremental.cc.o" "gcc" "src/CMakeFiles/focus_itemsets.dir/itemsets/incremental.cc.o.d"
  "/root/repo/src/itemsets/itemset.cc" "src/CMakeFiles/focus_itemsets.dir/itemsets/itemset.cc.o" "gcc" "src/CMakeFiles/focus_itemsets.dir/itemsets/itemset.cc.o.d"
  "/root/repo/src/itemsets/rules.cc" "src/CMakeFiles/focus_itemsets.dir/itemsets/rules.cc.o" "gcc" "src/CMakeFiles/focus_itemsets.dir/itemsets/rules.cc.o.d"
  "/root/repo/src/itemsets/support_counter.cc" "src/CMakeFiles/focus_itemsets.dir/itemsets/support_counter.cc.o" "gcc" "src/CMakeFiles/focus_itemsets.dir/itemsets/support_counter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/focus_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/focus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

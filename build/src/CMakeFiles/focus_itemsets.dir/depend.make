# Empty dependencies file for focus_itemsets.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/focus_itemsets.dir/itemsets/apriori.cc.o"
  "CMakeFiles/focus_itemsets.dir/itemsets/apriori.cc.o.d"
  "CMakeFiles/focus_itemsets.dir/itemsets/fp_growth.cc.o"
  "CMakeFiles/focus_itemsets.dir/itemsets/fp_growth.cc.o.d"
  "CMakeFiles/focus_itemsets.dir/itemsets/incremental.cc.o"
  "CMakeFiles/focus_itemsets.dir/itemsets/incremental.cc.o.d"
  "CMakeFiles/focus_itemsets.dir/itemsets/itemset.cc.o"
  "CMakeFiles/focus_itemsets.dir/itemsets/itemset.cc.o.d"
  "CMakeFiles/focus_itemsets.dir/itemsets/rules.cc.o"
  "CMakeFiles/focus_itemsets.dir/itemsets/rules.cc.o.d"
  "CMakeFiles/focus_itemsets.dir/itemsets/support_counter.cc.o"
  "CMakeFiles/focus_itemsets.dir/itemsets/support_counter.cc.o.d"
  "libfocus_itemsets.a"
  "libfocus_itemsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_itemsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

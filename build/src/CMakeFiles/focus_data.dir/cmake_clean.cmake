file(REMOVE_RECURSE
  "CMakeFiles/focus_data.dir/data/box.cc.o"
  "CMakeFiles/focus_data.dir/data/box.cc.o.d"
  "CMakeFiles/focus_data.dir/data/dataset.cc.o"
  "CMakeFiles/focus_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/focus_data.dir/data/sampling.cc.o"
  "CMakeFiles/focus_data.dir/data/sampling.cc.o.d"
  "CMakeFiles/focus_data.dir/data/schema.cc.o"
  "CMakeFiles/focus_data.dir/data/schema.cc.o.d"
  "CMakeFiles/focus_data.dir/data/transaction_db.cc.o"
  "CMakeFiles/focus_data.dir/data/transaction_db.cc.o.d"
  "libfocus_data.a"
  "libfocus_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

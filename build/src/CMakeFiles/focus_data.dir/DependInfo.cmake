
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/box.cc" "src/CMakeFiles/focus_data.dir/data/box.cc.o" "gcc" "src/CMakeFiles/focus_data.dir/data/box.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/focus_data.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/focus_data.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/sampling.cc" "src/CMakeFiles/focus_data.dir/data/sampling.cc.o" "gcc" "src/CMakeFiles/focus_data.dir/data/sampling.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/CMakeFiles/focus_data.dir/data/schema.cc.o" "gcc" "src/CMakeFiles/focus_data.dir/data/schema.cc.o.d"
  "/root/repo/src/data/transaction_db.cc" "src/CMakeFiles/focus_data.dir/data/transaction_db.cc.o" "gcc" "src/CMakeFiles/focus_data.dir/data/transaction_db.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/focus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

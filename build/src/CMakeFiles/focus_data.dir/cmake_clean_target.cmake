file(REMOVE_RECURSE
  "libfocus_data.a"
)

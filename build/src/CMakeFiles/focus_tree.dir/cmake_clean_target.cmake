file(REMOVE_RECURSE
  "libfocus_tree.a"
)

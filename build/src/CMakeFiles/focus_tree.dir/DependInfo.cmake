
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/cart_builder.cc" "src/CMakeFiles/focus_tree.dir/tree/cart_builder.cc.o" "gcc" "src/CMakeFiles/focus_tree.dir/tree/cart_builder.cc.o.d"
  "/root/repo/src/tree/decision_tree.cc" "src/CMakeFiles/focus_tree.dir/tree/decision_tree.cc.o" "gcc" "src/CMakeFiles/focus_tree.dir/tree/decision_tree.cc.o.d"
  "/root/repo/src/tree/leaf_regions.cc" "src/CMakeFiles/focus_tree.dir/tree/leaf_regions.cc.o" "gcc" "src/CMakeFiles/focus_tree.dir/tree/leaf_regions.cc.o.d"
  "/root/repo/src/tree/presorted_builder.cc" "src/CMakeFiles/focus_tree.dir/tree/presorted_builder.cc.o" "gcc" "src/CMakeFiles/focus_tree.dir/tree/presorted_builder.cc.o.d"
  "/root/repo/src/tree/pruning.cc" "src/CMakeFiles/focus_tree.dir/tree/pruning.cc.o" "gcc" "src/CMakeFiles/focus_tree.dir/tree/pruning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/focus_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/focus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

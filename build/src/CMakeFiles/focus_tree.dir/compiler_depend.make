# Empty compiler generated dependencies file for focus_tree.
# This may be replaced when dependencies are built.

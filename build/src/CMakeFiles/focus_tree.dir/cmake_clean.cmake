file(REMOVE_RECURSE
  "CMakeFiles/focus_tree.dir/tree/cart_builder.cc.o"
  "CMakeFiles/focus_tree.dir/tree/cart_builder.cc.o.d"
  "CMakeFiles/focus_tree.dir/tree/decision_tree.cc.o"
  "CMakeFiles/focus_tree.dir/tree/decision_tree.cc.o.d"
  "CMakeFiles/focus_tree.dir/tree/leaf_regions.cc.o"
  "CMakeFiles/focus_tree.dir/tree/leaf_regions.cc.o.d"
  "CMakeFiles/focus_tree.dir/tree/presorted_builder.cc.o"
  "CMakeFiles/focus_tree.dir/tree/presorted_builder.cc.o.d"
  "CMakeFiles/focus_tree.dir/tree/pruning.cc.o"
  "CMakeFiles/focus_tree.dir/tree/pruning.cc.o.d"
  "libfocus_tree.a"
  "libfocus_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for focus_stats.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/focus_stats.dir/stats/bootstrap.cc.o"
  "CMakeFiles/focus_stats.dir/stats/bootstrap.cc.o.d"
  "CMakeFiles/focus_stats.dir/stats/descriptive.cc.o"
  "CMakeFiles/focus_stats.dir/stats/descriptive.cc.o.d"
  "CMakeFiles/focus_stats.dir/stats/distributions.cc.o"
  "CMakeFiles/focus_stats.dir/stats/distributions.cc.o.d"
  "CMakeFiles/focus_stats.dir/stats/rng.cc.o"
  "CMakeFiles/focus_stats.dir/stats/rng.cc.o.d"
  "CMakeFiles/focus_stats.dir/stats/wilcoxon.cc.o"
  "CMakeFiles/focus_stats.dir/stats/wilcoxon.cc.o.d"
  "libfocus_stats.a"
  "libfocus_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

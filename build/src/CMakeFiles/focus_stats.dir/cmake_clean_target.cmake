file(REMOVE_RECURSE
  "libfocus_stats.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/focus_common.dir/common/check.cc.o"
  "CMakeFiles/focus_common.dir/common/check.cc.o.d"
  "CMakeFiles/focus_common.dir/common/env.cc.o"
  "CMakeFiles/focus_common.dir/common/env.cc.o.d"
  "CMakeFiles/focus_common.dir/common/table_printer.cc.o"
  "CMakeFiles/focus_common.dir/common/table_printer.cc.o.d"
  "CMakeFiles/focus_common.dir/common/timer.cc.o"
  "CMakeFiles/focus_common.dir/common/timer.cc.o.d"
  "libfocus_common.a"
  "libfocus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

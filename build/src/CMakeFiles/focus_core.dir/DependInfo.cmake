
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chi_squared_instance.cc" "src/CMakeFiles/focus_core.dir/core/chi_squared_instance.cc.o" "gcc" "src/CMakeFiles/focus_core.dir/core/chi_squared_instance.cc.o.d"
  "/root/repo/src/core/cluster_deviation.cc" "src/CMakeFiles/focus_core.dir/core/cluster_deviation.cc.o" "gcc" "src/CMakeFiles/focus_core.dir/core/cluster_deviation.cc.o.d"
  "/root/repo/src/core/drift_series.cc" "src/CMakeFiles/focus_core.dir/core/drift_series.cc.o" "gcc" "src/CMakeFiles/focus_core.dir/core/drift_series.cc.o.d"
  "/root/repo/src/core/dt_deviation.cc" "src/CMakeFiles/focus_core.dir/core/dt_deviation.cc.o" "gcc" "src/CMakeFiles/focus_core.dir/core/dt_deviation.cc.o.d"
  "/root/repo/src/core/embedding.cc" "src/CMakeFiles/focus_core.dir/core/embedding.cc.o" "gcc" "src/CMakeFiles/focus_core.dir/core/embedding.cc.o.d"
  "/root/repo/src/core/focus_region.cc" "src/CMakeFiles/focus_core.dir/core/focus_region.cc.o" "gcc" "src/CMakeFiles/focus_core.dir/core/focus_region.cc.o.d"
  "/root/repo/src/core/functions.cc" "src/CMakeFiles/focus_core.dir/core/functions.cc.o" "gcc" "src/CMakeFiles/focus_core.dir/core/functions.cc.o.d"
  "/root/repo/src/core/lits_deviation.cc" "src/CMakeFiles/focus_core.dir/core/lits_deviation.cc.o" "gcc" "src/CMakeFiles/focus_core.dir/core/lits_deviation.cc.o.d"
  "/root/repo/src/core/lits_upper_bound.cc" "src/CMakeFiles/focus_core.dir/core/lits_upper_bound.cc.o" "gcc" "src/CMakeFiles/focus_core.dir/core/lits_upper_bound.cc.o.d"
  "/root/repo/src/core/misclassification.cc" "src/CMakeFiles/focus_core.dir/core/misclassification.cc.o" "gcc" "src/CMakeFiles/focus_core.dir/core/misclassification.cc.o.d"
  "/root/repo/src/core/monitor.cc" "src/CMakeFiles/focus_core.dir/core/monitor.cc.o" "gcc" "src/CMakeFiles/focus_core.dir/core/monitor.cc.o.d"
  "/root/repo/src/core/query_estimator.cc" "src/CMakeFiles/focus_core.dir/core/query_estimator.cc.o" "gcc" "src/CMakeFiles/focus_core.dir/core/query_estimator.cc.o.d"
  "/root/repo/src/core/rank.cc" "src/CMakeFiles/focus_core.dir/core/rank.cc.o" "gcc" "src/CMakeFiles/focus_core.dir/core/rank.cc.o.d"
  "/root/repo/src/core/region_algebra.cc" "src/CMakeFiles/focus_core.dir/core/region_algebra.cc.o" "gcc" "src/CMakeFiles/focus_core.dir/core/region_algebra.cc.o.d"
  "/root/repo/src/core/sampling_study.cc" "src/CMakeFiles/focus_core.dir/core/sampling_study.cc.o" "gcc" "src/CMakeFiles/focus_core.dir/core/sampling_study.cc.o.d"
  "/root/repo/src/core/significance.cc" "src/CMakeFiles/focus_core.dir/core/significance.cc.o" "gcc" "src/CMakeFiles/focus_core.dir/core/significance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/focus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/focus_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/focus_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/focus_itemsets.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/focus_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/focus_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/focus_datagen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for cluster_drift.
# This may be replaced when dependencies are built.

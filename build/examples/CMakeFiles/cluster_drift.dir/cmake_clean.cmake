file(REMOVE_RECURSE
  "CMakeFiles/cluster_drift.dir/cluster_drift.cpp.o"
  "CMakeFiles/cluster_drift.dir/cluster_drift.cpp.o.d"
  "cluster_drift"
  "cluster_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/retail_monitoring.dir/retail_monitoring.cpp.o"
  "CMakeFiles/retail_monitoring.dir/retail_monitoring.cpp.o.d"
  "retail_monitoring"
  "retail_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retail_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

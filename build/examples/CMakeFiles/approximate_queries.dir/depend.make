# Empty dependencies file for approximate_queries.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/approximate_queries.dir/approximate_queries.cpp.o"
  "CMakeFiles/approximate_queries.dir/approximate_queries.cpp.o.d"
  "approximate_queries"
  "approximate_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approximate_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sample_size_tuner.dir/sample_size_tuner.cpp.o"
  "CMakeFiles/sample_size_tuner.dir/sample_size_tuner.cpp.o.d"
  "sample_size_tuner"
  "sample_size_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_size_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

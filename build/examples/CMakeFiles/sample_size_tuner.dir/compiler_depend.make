# Empty compiler generated dependencies file for sample_size_tuner.
# This may be replaced when dependencies are built.

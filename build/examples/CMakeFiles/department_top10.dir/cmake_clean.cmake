file(REMOVE_RECURSE
  "CMakeFiles/department_top10.dir/department_top10.cpp.o"
  "CMakeFiles/department_top10.dir/department_top10.cpp.o.d"
  "department_top10"
  "department_top10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/department_top10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

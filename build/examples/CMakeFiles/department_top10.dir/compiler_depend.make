# Empty compiler generated dependencies file for department_top10.
# This may be replaced when dependencies are built.

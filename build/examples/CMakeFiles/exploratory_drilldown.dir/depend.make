# Empty dependencies file for exploratory_drilldown.
# This may be replaced when dependencies are built.

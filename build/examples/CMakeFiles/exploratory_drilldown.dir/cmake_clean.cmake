file(REMOVE_RECURSE
  "CMakeFiles/exploratory_drilldown.dir/exploratory_drilldown.cpp.o"
  "CMakeFiles/exploratory_drilldown.dir/exploratory_drilldown.cpp.o.d"
  "exploratory_drilldown"
  "exploratory_drilldown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exploratory_drilldown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

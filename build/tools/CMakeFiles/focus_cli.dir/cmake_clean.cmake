file(REMOVE_RECURSE
  "CMakeFiles/focus_cli.dir/focus_cli.cc.o"
  "CMakeFiles/focus_cli.dir/focus_cli.cc.o.d"
  "focus_cli"
  "focus_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table2_dt_significance.dir/bench_common.cc.o"
  "CMakeFiles/table2_dt_significance.dir/bench_common.cc.o.d"
  "CMakeFiles/table2_dt_significance.dir/table2_dt_significance.cc.o"
  "CMakeFiles/table2_dt_significance.dir/table2_dt_significance.cc.o.d"
  "table2_dt_significance"
  "table2_dt_significance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_dt_significance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

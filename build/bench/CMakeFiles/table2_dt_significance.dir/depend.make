# Empty dependencies file for table2_dt_significance.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig10_dt_sd_vs_sf.
# This may be replaced when dependencies are built.

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig10_dt_sd_vs_sf.

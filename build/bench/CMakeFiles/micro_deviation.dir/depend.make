# Empty dependencies file for micro_deviation.
# This may be replaced when dependencies are built.

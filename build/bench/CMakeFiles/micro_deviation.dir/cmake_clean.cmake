file(REMOVE_RECURSE
  "CMakeFiles/micro_deviation.dir/micro_deviation.cc.o"
  "CMakeFiles/micro_deviation.dir/micro_deviation.cc.o.d"
  "micro_deviation"
  "micro_deviation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_deviation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

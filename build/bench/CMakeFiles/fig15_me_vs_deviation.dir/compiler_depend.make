# Empty compiler generated dependencies file for fig15_me_vs_deviation.
# This may be replaced when dependencies are built.

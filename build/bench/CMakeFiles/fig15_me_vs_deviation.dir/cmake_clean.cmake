file(REMOVE_RECURSE
  "CMakeFiles/fig15_me_vs_deviation.dir/bench_common.cc.o"
  "CMakeFiles/fig15_me_vs_deviation.dir/bench_common.cc.o.d"
  "CMakeFiles/fig15_me_vs_deviation.dir/fig15_me_vs_deviation.cc.o"
  "CMakeFiles/fig15_me_vs_deviation.dir/fig15_me_vs_deviation.cc.o.d"
  "fig15_me_vs_deviation"
  "fig15_me_vs_deviation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_me_vs_deviation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

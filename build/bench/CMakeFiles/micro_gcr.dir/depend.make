# Empty dependencies file for micro_gcr.
# This may be replaced when dependencies are built.

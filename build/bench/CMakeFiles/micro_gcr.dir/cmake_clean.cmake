file(REMOVE_RECURSE
  "CMakeFiles/micro_gcr.dir/micro_gcr.cc.o"
  "CMakeFiles/micro_gcr.dir/micro_gcr.cc.o.d"
  "micro_gcr"
  "micro_gcr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_gcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

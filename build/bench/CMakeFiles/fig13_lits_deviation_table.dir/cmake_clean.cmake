file(REMOVE_RECURSE
  "CMakeFiles/fig13_lits_deviation_table.dir/bench_common.cc.o"
  "CMakeFiles/fig13_lits_deviation_table.dir/bench_common.cc.o.d"
  "CMakeFiles/fig13_lits_deviation_table.dir/fig13_lits_deviation_table.cc.o"
  "CMakeFiles/fig13_lits_deviation_table.dir/fig13_lits_deviation_table.cc.o.d"
  "fig13_lits_deviation_table"
  "fig13_lits_deviation_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_lits_deviation_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig13_lits_deviation_table.
# This may be replaced when dependencies are built.

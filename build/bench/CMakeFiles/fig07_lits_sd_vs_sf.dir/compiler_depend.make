# Empty compiler generated dependencies file for fig07_lits_sd_vs_sf.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/micro_miners.dir/micro_miners.cc.o"
  "CMakeFiles/micro_miners.dir/micro_miners.cc.o.d"
  "micro_miners"
  "micro_miners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_miners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

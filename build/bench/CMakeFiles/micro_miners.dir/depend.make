# Empty dependencies file for micro_miners.
# This may be replaced when dependencies are built.

# Empty dependencies file for micro_tree.
# This may be replaced when dependencies are built.

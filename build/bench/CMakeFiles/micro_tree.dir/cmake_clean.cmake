file(REMOVE_RECURSE
  "CMakeFiles/micro_tree.dir/micro_tree.cc.o"
  "CMakeFiles/micro_tree.dir/micro_tree.cc.o.d"
  "micro_tree"
  "micro_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig12_dt_sd_vs_sf.dir/bench_common.cc.o"
  "CMakeFiles/fig12_dt_sd_vs_sf.dir/bench_common.cc.o.d"
  "CMakeFiles/fig12_dt_sd_vs_sf.dir/fig12_dt_sd_vs_sf.cc.o"
  "CMakeFiles/fig12_dt_sd_vs_sf.dir/fig12_dt_sd_vs_sf.cc.o.d"
  "fig12_dt_sd_vs_sf"
  "fig12_dt_sd_vs_sf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_dt_sd_vs_sf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig12_dt_sd_vs_sf.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ext_cluster_sd_vs_sf.dir/bench_common.cc.o"
  "CMakeFiles/ext_cluster_sd_vs_sf.dir/bench_common.cc.o.d"
  "CMakeFiles/ext_cluster_sd_vs_sf.dir/ext_cluster_sd_vs_sf.cc.o"
  "CMakeFiles/ext_cluster_sd_vs_sf.dir/ext_cluster_sd_vs_sf.cc.o.d"
  "ext_cluster_sd_vs_sf"
  "ext_cluster_sd_vs_sf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cluster_sd_vs_sf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

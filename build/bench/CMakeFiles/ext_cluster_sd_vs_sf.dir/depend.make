# Empty dependencies file for ext_cluster_sd_vs_sf.
# This may be replaced when dependencies are built.

# Empty dependencies file for micro_apriori.
# This may be replaced when dependencies are built.

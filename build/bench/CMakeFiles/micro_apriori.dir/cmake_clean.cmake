file(REMOVE_RECURSE
  "CMakeFiles/micro_apriori.dir/micro_apriori.cc.o"
  "CMakeFiles/micro_apriori.dir/micro_apriori.cc.o.d"
  "micro_apriori"
  "micro_apriori.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_apriori.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

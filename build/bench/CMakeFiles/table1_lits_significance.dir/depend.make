# Empty dependencies file for table1_lits_significance.
# This may be replaced when dependencies are built.

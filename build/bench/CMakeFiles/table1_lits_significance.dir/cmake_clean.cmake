file(REMOVE_RECURSE
  "CMakeFiles/table1_lits_significance.dir/bench_common.cc.o"
  "CMakeFiles/table1_lits_significance.dir/bench_common.cc.o.d"
  "CMakeFiles/table1_lits_significance.dir/table1_lits_significance.cc.o"
  "CMakeFiles/table1_lits_significance.dir/table1_lits_significance.cc.o.d"
  "table1_lits_significance"
  "table1_lits_significance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_lits_significance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig14_dt_deviation_table.dir/bench_common.cc.o"
  "CMakeFiles/fig14_dt_deviation_table.dir/bench_common.cc.o.d"
  "CMakeFiles/fig14_dt_deviation_table.dir/fig14_dt_deviation_table.cc.o"
  "CMakeFiles/fig14_dt_deviation_table.dir/fig14_dt_deviation_table.cc.o.d"
  "fig14_dt_deviation_table"
  "fig14_dt_deviation_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_dt_deviation_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

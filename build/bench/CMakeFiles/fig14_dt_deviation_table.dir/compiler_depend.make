# Empty compiler generated dependencies file for fig14_dt_deviation_table.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig09_lits_sd_vs_sf.dir/bench_common.cc.o"
  "CMakeFiles/fig09_lits_sd_vs_sf.dir/bench_common.cc.o.d"
  "CMakeFiles/fig09_lits_sd_vs_sf.dir/fig09_lits_sd_vs_sf.cc.o"
  "CMakeFiles/fig09_lits_sd_vs_sf.dir/fig09_lits_sd_vs_sf.cc.o.d"
  "fig09_lits_sd_vs_sf"
  "fig09_lits_sd_vs_sf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_lits_sd_vs_sf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig08_lits_sd_vs_sf.
# This may be replaced when dependencies are built.

# Empty dependencies file for framework_generality_test.
# This may be replaced when dependencies are built.

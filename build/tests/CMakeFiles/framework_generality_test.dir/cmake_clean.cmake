file(REMOVE_RECURSE
  "CMakeFiles/framework_generality_test.dir/framework_generality_test.cc.o"
  "CMakeFiles/framework_generality_test.dir/framework_generality_test.cc.o.d"
  "framework_generality_test"
  "framework_generality_test.pdb"
  "framework_generality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/framework_generality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for dt_deviation_test.
# This may be replaced when dependencies are built.

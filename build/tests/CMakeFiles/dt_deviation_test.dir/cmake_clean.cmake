file(REMOVE_RECURSE
  "CMakeFiles/dt_deviation_test.dir/dt_deviation_test.cc.o"
  "CMakeFiles/dt_deviation_test.dir/dt_deviation_test.cc.o.d"
  "dt_deviation_test"
  "dt_deviation_test.pdb"
  "dt_deviation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dt_deviation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for presorted_builder_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/presorted_builder_test.dir/presorted_builder_test.cc.o"
  "CMakeFiles/presorted_builder_test.dir/presorted_builder_test.cc.o.d"
  "presorted_builder_test"
  "presorted_builder_test.pdb"
  "presorted_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presorted_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

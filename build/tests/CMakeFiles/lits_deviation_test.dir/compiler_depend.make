# Empty compiler generated dependencies file for lits_deviation_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lits_deviation_test.dir/lits_deviation_test.cc.o"
  "CMakeFiles/lits_deviation_test.dir/lits_deviation_test.cc.o.d"
  "lits_deviation_test"
  "lits_deviation_test.pdb"
  "lits_deviation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lits_deviation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for query_estimator_test.
# This may be replaced when dependencies are built.

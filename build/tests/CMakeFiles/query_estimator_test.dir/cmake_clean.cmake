file(REMOVE_RECURSE
  "CMakeFiles/query_estimator_test.dir/query_estimator_test.cc.o"
  "CMakeFiles/query_estimator_test.dir/query_estimator_test.cc.o.d"
  "query_estimator_test"
  "query_estimator_test.pdb"
  "query_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

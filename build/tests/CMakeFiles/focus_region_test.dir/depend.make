# Empty dependencies file for focus_region_test.
# This may be replaced when dependencies are built.

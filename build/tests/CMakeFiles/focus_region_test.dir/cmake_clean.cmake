file(REMOVE_RECURSE
  "CMakeFiles/focus_region_test.dir/focus_region_test.cc.o"
  "CMakeFiles/focus_region_test.dir/focus_region_test.cc.o.d"
  "focus_region_test"
  "focus_region_test.pdb"
  "focus_region_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_region_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lits_upper_bound_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lits_upper_bound_test.dir/lits_upper_bound_test.cc.o"
  "CMakeFiles/lits_upper_bound_test.dir/lits_upper_bound_test.cc.o.d"
  "lits_upper_bound_test"
  "lits_upper_bound_test.pdb"
  "lits_upper_bound_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lits_upper_bound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sampling_study_test.
# This may be replaced when dependencies are built.

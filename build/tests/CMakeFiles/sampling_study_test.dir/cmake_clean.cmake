file(REMOVE_RECURSE
  "CMakeFiles/sampling_study_test.dir/sampling_study_test.cc.o"
  "CMakeFiles/sampling_study_test.dir/sampling_study_test.cc.o.d"
  "sampling_study_test"
  "sampling_study_test.pdb"
  "sampling_study_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_study_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/region_algebra_test.dir/region_algebra_test.cc.o"
  "CMakeFiles/region_algebra_test.dir/region_algebra_test.cc.o.d"
  "region_algebra_test"
  "region_algebra_test.pdb"
  "region_algebra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_algebra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

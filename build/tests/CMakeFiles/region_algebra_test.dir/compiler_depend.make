# Empty compiler generated dependencies file for region_algebra_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for chi_squared_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/drift_series_test.dir/drift_series_test.cc.o"
  "CMakeFiles/drift_series_test.dir/drift_series_test.cc.o.d"
  "drift_series_test"
  "drift_series_test.pdb"
  "drift_series_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_series_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

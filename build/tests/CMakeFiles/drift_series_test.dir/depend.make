# Empty dependencies file for drift_series_test.
# This may be replaced when dependencies are built.

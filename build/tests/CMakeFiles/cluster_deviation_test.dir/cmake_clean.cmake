file(REMOVE_RECURSE
  "CMakeFiles/cluster_deviation_test.dir/cluster_deviation_test.cc.o"
  "CMakeFiles/cluster_deviation_test.dir/cluster_deviation_test.cc.o.d"
  "cluster_deviation_test"
  "cluster_deviation_test.pdb"
  "cluster_deviation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_deviation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cluster_deviation_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/misclassification_test.dir/misclassification_test.cc.o"
  "CMakeFiles/misclassification_test.dir/misclassification_test.cc.o.d"
  "misclassification_test"
  "misclassification_test.pdb"
  "misclassification_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misclassification_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

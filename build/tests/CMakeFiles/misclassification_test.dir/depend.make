# Empty dependencies file for misclassification_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/itemsets_test.dir/itemsets_test.cc.o"
  "CMakeFiles/itemsets_test.dir/itemsets_test.cc.o.d"
  "itemsets_test"
  "itemsets_test.pdb"
  "itemsets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itemsets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

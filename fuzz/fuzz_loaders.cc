// Fuzz target for the remaining io loaders: datasets, schemas, lits
// models, and decision trees. Each is strict (nullopt on malformed
// input) and must never crash, loop, or leak on arbitrary bytes. A
// leading selector byte picks the loader so one corpus covers all four.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "io/data_io.h"
#include "io/model_io.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const uint8_t selector = data[0] % 4;
  const std::string bytes(reinterpret_cast<const char*>(data + 1), size - 1);
  std::istringstream in(bytes);
  switch (selector) {
    case 0: {
      const auto dataset = focus::io::LoadDataset(in);
      if (dataset.has_value()) {
        std::stringstream resaved;
        focus::io::SaveDataset(*dataset, resaved);
        if (!focus::io::LoadDataset(resaved).has_value()) std::abort();
      }
      break;
    }
    case 1: {
      const auto model = focus::io::LoadLitsModel(in);
      if (model.has_value()) {
        std::stringstream resaved;
        focus::io::SaveLitsModel(*model, resaved);
        if (!focus::io::LoadLitsModel(resaved).has_value()) std::abort();
      }
      break;
    }
    case 2: {
      const auto schema = focus::io::LoadSchema(in);
      if (schema.has_value()) {
        std::stringstream resaved;
        focus::io::SaveSchema(*schema, resaved);
        if (!focus::io::LoadSchema(resaved).has_value()) std::abort();
      }
      break;
    }
    default: {
      const auto tree = focus::io::LoadDecisionTree(in);
      if (tree.has_value()) {
        std::stringstream resaved;
        focus::io::SaveDecisionTree(*tree, resaved);
        if (!focus::io::LoadDecisionTree(resaved).has_value()) std::abort();
      }
      break;
    }
  }
  return 0;
}

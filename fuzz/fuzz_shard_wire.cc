// Fuzz target for the shard wire protocol — the byte stream between the
// HTTP front end and shard worker processes. Mirrors fuzz_http: the input
// is decoded twice (one shot, then byte-at-a-time through Resets) and any
// framing divergence aborts, so the fuzzer hunts both crashes and
// segmentation-dependent behavior. Completed frames additionally get their
// payload run through the matching body codec; a payload that decodes must
// re-encode to something that decodes to the same bytes (round-trip
// stability), which exercises every PayloadReader bounds check.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "shard/wire.h"

namespace {

using focus::shard::Frame;
using focus::shard::MessageType;
using focus::shard::WireDecoder;
using focus::shard::WireLimits;

// Decodes the payload as the body type its frame claims, and checks
// decode -> encode -> decode reaches a fixed point.
template <typename Body>
void CheckBodyRoundTrip(const std::string& payload) {
  Body first;
  if (!first.Decode(payload)) return;  // malformed payloads may be rejected
  const std::string encoded = first.Encode();
  Body second;
  if (!second.Decode(encoded)) std::abort();
  if (second.Encode() != encoded) std::abort();
}

void CheckFrame(const Frame& frame) {
  using focus::shard::CompareBody;
  using focus::shard::CompareResultBody;
  using focus::shard::DeviationQueryBody;
  using focus::shard::DeviationResultBody;
  using focus::shard::ErrorBody;
  using focus::shard::ExtendRegionsBody;
  using focus::shard::ExtendRegionsResultBody;
  using focus::shard::ModelRegionsBody;
  using focus::shard::ModelRegionsResultBody;
  using focus::shard::PartialAggregateBody;
  using focus::shard::PongBody;
  using focus::shard::StreamPartialsBody;
  using focus::shard::SubmitResultBody;
  using focus::shard::SubmitSnapshotBody;

  switch (frame.type) {
    case MessageType::kPing:
      break;  // empty payload by convention, but any is tolerated
    case MessageType::kPong:
      CheckBodyRoundTrip<PongBody>(frame.payload);
      break;
    case MessageType::kSubmitSnapshot:
      CheckBodyRoundTrip<SubmitSnapshotBody>(frame.payload);
      break;
    case MessageType::kSubmitResult:
      CheckBodyRoundTrip<SubmitResultBody>(frame.payload);
      break;
    case MessageType::kDeviationQuery:
      CheckBodyRoundTrip<DeviationQueryBody>(frame.payload);
      break;
    case MessageType::kDeviationResult:
      CheckBodyRoundTrip<DeviationResultBody>(frame.payload);
      break;
    case MessageType::kCompare:
      CheckBodyRoundTrip<CompareBody>(frame.payload);
      break;
    case MessageType::kCompareResult:
      CheckBodyRoundTrip<CompareResultBody>(frame.payload);
      break;
    case MessageType::kModelRegions:
      CheckBodyRoundTrip<ModelRegionsBody>(frame.payload);
      break;
    case MessageType::kModelRegionsResult:
      CheckBodyRoundTrip<ModelRegionsResultBody>(frame.payload);
      break;
    case MessageType::kExtendRegions:
      CheckBodyRoundTrip<ExtendRegionsBody>(frame.payload);
      break;
    case MessageType::kExtendRegionsResult:
      CheckBodyRoundTrip<ExtendRegionsResultBody>(frame.payload);
      break;
    case MessageType::kStreamPartials:
      CheckBodyRoundTrip<StreamPartialsBody>(frame.payload);
      break;
    case MessageType::kPartialAggregate:
      CheckBodyRoundTrip<PartialAggregateBody>(frame.payload);
      break;
    case MessageType::kError:
      CheckBodyRoundTrip<ErrorBody>(frame.payload);
      break;
  }
}

struct Outcome {
  std::vector<std::string> frames;  // "type:request_id:payload" per frame
  bool errored = false;
};

// Runs the decoder over `bytes` delivered in `chunk`-sized pieces,
// draining completed frames through Reset like WireServer does.
Outcome Decode(std::string_view bytes, const WireLimits& limits,
               size_t chunk) {
  Outcome outcome;
  WireDecoder decoder(limits);
  size_t offset = 0;
  WireDecoder::Status status = WireDecoder::Status::kNeedMore;
  while (true) {
    if (status == WireDecoder::Status::kNeedMore) {
      if (offset >= bytes.size()) break;
      const size_t take = std::min(chunk, bytes.size() - offset);
      status = decoder.Consume(bytes.substr(offset, take));
      offset += take;
      continue;
    }
    if (status == WireDecoder::Status::kComplete) {
      const Frame& frame = decoder.frame();
      if (frame.payload.size() > limits.max_payload_bytes) std::abort();
      if (!focus::shard::ValidMessageType(
              static_cast<uint8_t>(frame.type))) {
        std::abort();
      }
      CheckFrame(frame);
      // Encoding the decoded frame must reproduce its exact wire bytes.
      const std::string encoded = focus::shard::EncodeFrame(frame);
      WireDecoder again(limits);
      if (again.Consume(encoded) != WireDecoder::Status::kComplete) {
        std::abort();
      }
      outcome.frames.push_back(
          std::to_string(static_cast<int>(frame.type)) + ":" +
          std::to_string(frame.request_id) + ":" + frame.payload);
      if (outcome.frames.size() > bytes.size() + 1) std::abort();  // loop
      status = decoder.Reset();
      continue;
    }
    // kError is terminal, like the server closing the connection.
    if (decoder.error().empty()) std::abort();
    outcome.errored = true;
    break;
  }
  return outcome;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // A tight payload cap so the fuzzer reaches the limit rejection with
  // small inputs.
  WireLimits limits;
  limits.max_payload_bytes = 1024;

  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  const Outcome one_shot = Decode(bytes, limits, bytes.size() + 1);
  const Outcome dribble = Decode(bytes, limits, 1);

  // Differential invariant: framing cannot depend on TCP segmentation.
  if (one_shot.errored != dribble.errored) std::abort();
  if (one_shot.frames != dribble.frames) std::abort();
  return 0;
}

// Fuzz target for the incremental HTTP/1.1 request parser — the one
// component that eats raw attacker bytes straight off a socket. Feeds the
// input twice (one shot, then byte-at-a-time through keep-alive Resets)
// and aborts on any divergence, limit breach, or malformed-but-accepted
// request, so the fuzzer hunts both crashes and framing disagreements.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "net/http_parser.h"

namespace {

using focus::net::HttpParser;
using focus::net::HttpParserLimits;
using focus::net::HttpRequest;

struct Outcome {
  std::vector<std::string> requests;  // "METHOD path body" per completion
  int error_status = 0;               // 0 = no error
};

// Checks the invariants every completed request must satisfy, whatever
// the input bytes were.
void CheckRequest(const HttpRequest& request, const HttpParserLimits& limits) {
  if (request.method.empty() || request.method.size() > 32) std::abort();
  if (request.target.empty() || request.target[0] != '/') std::abort();
  if (request.headers.size() > limits.max_headers) std::abort();
  if (request.body.size() > limits.max_body_bytes) std::abort();
  for (const auto& [name, value] : request.headers) {
    if (name.empty()) std::abort();
    for (char c : name) {
      // Names were validated as tokens and lower-cased.
      if (c >= 'A' && c <= 'Z') std::abort();
      if (c == ' ' || c == ':' || c == '\r' || c == '\n') std::abort();
    }
    for (char c : value) {
      if (c == '\r' || c == '\n' || c == '\0') std::abort();
    }
  }
}

// Runs the parser over `bytes` delivered in `chunk` -sized pieces,
// draining completed requests through Reset like the server does.
Outcome Parse(std::string_view bytes, const HttpParserLimits& limits,
              size_t chunk) {
  Outcome outcome;
  HttpParser parser(limits);
  size_t offset = 0;
  HttpParser::Status status = HttpParser::Status::kNeedMore;
  while (true) {
    if (status == HttpParser::Status::kNeedMore) {
      if (offset >= bytes.size()) break;
      const size_t take = std::min(chunk, bytes.size() - offset);
      status = parser.Consume(bytes.substr(offset, take));
      offset += take;
      continue;
    }
    if (status == HttpParser::Status::kComplete) {
      CheckRequest(parser.request(), limits);
      outcome.requests.push_back(parser.request().method + " " +
                                 parser.request().path + " " +
                                 parser.request().body);
      if (outcome.requests.size() > bytes.size() + 1) std::abort();  // loop
      status = parser.Reset();
      continue;
    }
    // kError is terminal, like the server closing the connection.
    outcome.error_status = parser.error_status();
    if (outcome.error_status < 400 || outcome.error_status > 599) {
      std::abort();
    }
    if (parser.error().empty()) std::abort();
    break;
  }
  return outcome;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Tight limits so the fuzzer reaches every rejection path with small
  // inputs.
  HttpParserLimits limits;
  limits.max_line_bytes = 256;
  limits.max_headers = 8;
  limits.max_body_bytes = 512;

  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  const Outcome one_shot = Parse(bytes, limits, bytes.size() + 1);
  const Outcome dribble = Parse(bytes, limits, 1);

  // Differential invariant: framing cannot depend on TCP segmentation.
  if (one_shot.error_status != dribble.error_status) std::abort();
  if (one_shot.requests != dribble.requests) std::abort();
  return 0;
}

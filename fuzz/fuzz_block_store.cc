// Differential fuzz target for the block file codec under hostile images
// (data/block_store.h + data/block_txn_db.h) — the format the out-of-core
// ingest persists and reloads. Obligations:
//   * Rejected inputs fail cleanly: no crash, no check failure, an error
//     string — whether rejection happens at the structural layer
//     (BlockFileReader) or at payload validation (BlockTransactionDb).
//   * Anything BlockTransactionDb::Open ACCEPTS is canonical: save →
//     load → save reproduces the exact input bytes, and every decoded
//     transaction is sorted-unique and in range — re-adding it through
//     TransactionDb::AddTransaction (which sorts, dedupes, and
//     range-checks independently) must be the identity, and singleton
//     support counts over the block scan must match that rebuilt
//     in-memory database.
//   * A bare payload DecodeTransactionBlock accepts re-encodes to the
//     same bytes through EncodeTransaction (payload-level fixed point).

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "data/block_store.h"
#include "data/block_txn_db.h"
#include "data/transaction_db.h"

namespace {

using focus::data::BlockStoreOptions;
using focus::data::BlockTransactionDb;
using focus::data::DecodeTransactionBlock;
using focus::data::EncodeTransaction;
using focus::data::TransactionDb;

// Item frequencies accumulated by streaming the container's blocks.
std::vector<int64_t> BlockItemCounts(const BlockTransactionDb& db) {
  std::vector<int64_t> counts(static_cast<size_t>(db.num_items()), 0);
  db.ForEachTransaction(
      [&](int64_t /*txn*/, std::span<const int32_t> items) {
        for (const int32_t item : items) {
          counts[static_cast<size_t>(item)]++;
        }
      });
  return counts;
}

void CheckContainer(const std::string& bytes) {
  BlockStoreOptions options;
  options.cache_budget_bytes = 1 << 12;  // force eviction churn mid-scan
  std::string error;
  auto db = BlockTransactionDb::Open(
      std::make_unique<std::istringstream>(bytes), options, &error);
  if (db == nullptr) {
    if (error.empty()) std::abort();  // rejection must explain itself
    return;
  }

  // Fixed point: the accepted image IS the canonical serialization.
  std::ostringstream resaved;
  db->SaveTo(resaved);
  if (std::move(resaved).str() != bytes) std::abort();

  // Decoded transactions satisfy the container invariants, and re-adding
  // them through the independent TransactionDb validator is the identity.
  TransactionDb rebuilt(db->num_items());
  int64_t seen = 0;
  db->ForEachTransaction([&](int64_t txn, std::span<const int32_t> items) {
    if (txn != seen++) std::abort();
    for (size_t i = 0; i < items.size(); ++i) {
      if (items[i] < 0 || items[i] >= db->num_items()) std::abort();
      if (i > 0 && items[i] <= items[i - 1]) std::abort();
    }
    if (db->BlockContaining(txn) < 0) std::abort();
    rebuilt.AddTransaction(items);
  });
  if (seen != db->num_transactions()) std::abort();
  if (rebuilt.num_transactions() != db->num_transactions()) std::abort();
  for (int64_t t = 0; t < rebuilt.num_transactions(); ++t) {
    const std::span<const int32_t> a = rebuilt.Transaction(t);
    const int64_t block = db->BlockContaining(t);
    const auto pinned = db->Block(block);
    const std::span<const int32_t> b =
        pinned->Transaction(t - db->BlockFirstTransaction(block));
    if (a.size() != b.size()) std::abort();
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) std::abort();
    }
  }

  // Differential counting: block scan vs. the rebuilt in-memory store.
  const std::vector<int64_t> block_counts = BlockItemCounts(*db);
  std::vector<int64_t> memory_counts(
      static_cast<size_t>(rebuilt.num_items()), 0);
  for (int64_t t = 0; t < rebuilt.num_transactions(); ++t) {
    for (const int32_t item : rebuilt.Transaction(t)) {
      memory_counts[static_cast<size_t>(item)]++;
    }
  }
  if (block_counts != memory_counts) std::abort();
}

void CheckBarePayload(const std::string& bytes) {
  TransactionDb decoded(1000);
  std::string error;
  if (!DecodeTransactionBlock(bytes, 1000, &decoded, &error)) {
    if (error.empty()) std::abort();
    return;
  }
  // Payload-level fixed point: re-encoding the decoded transactions
  // reproduces the accepted payload byte for byte.
  std::string reencoded;
  for (int64_t t = 0; t < decoded.num_transactions(); ++t) {
    EncodeTransaction(decoded.Transaction(t), reencoded);
  }
  if (reencoded != bytes) std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (64u << 10)) return 0;  // bound decode cost per input
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  CheckContainer(bytes);
  CheckBarePayload(bytes);
  return 0;
}

// Replay driver used when the toolchain has no libFuzzer (gcc builds):
// runs LLVMFuzzerTestOneInput over every file (or every file inside every
// directory) given on the command line, so the checked-in seed corpus
// doubles as a regression suite and the fuzz targets stay buildable and
// CI-runnable everywhere. libFuzzer flags (leading '-') are ignored.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

namespace fs = std::filesystem;

int RunFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.string().c_str());
    return 1;
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] == '-') continue;  // libFuzzer option
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      for (const auto& entry : fs::directory_iterator(arg)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else {
      inputs.push_back(arg);
    }
  }
  int failures = 0;
  for (const fs::path& input : inputs) failures += RunFile(input);
  std::printf("replayed %zu corpus inputs (%d unreadable)\n", inputs.size(),
              failures);
  return failures == 0 ? 0 : 1;
}

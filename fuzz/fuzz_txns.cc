// Fuzz target for the focus-txns-v1 spool parser — the loader that
// focus_monitord feeds with untrusted files. Beyond not crashing, the
// parser must be a retraction: anything it ACCEPTS must re-serialize to
// a form it accepts again, identically (otherwise the daemon's
// processed/ archive would not round-trip).

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "io/data_io.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  std::istringstream in(bytes);
  const auto db = focus::io::LoadTransactionDb(in);
  if (!db.has_value()) return 0;

  std::stringstream resaved;
  focus::io::SaveTransactionDb(*db, resaved);
  const auto again = focus::io::LoadTransactionDb(resaved);
  if (!again.has_value()) std::abort();  // accepted input must re-load
  if (again->num_items() != db->num_items() ||
      again->num_transactions() != db->num_transactions()) {
    std::abort();  // accepted input must round-trip stably
  }
  for (int64_t t = 0; t < db->num_transactions(); ++t) {
    const auto a = db->Transaction(t);
    const auto b = again->Transaction(t);
    if (a.size() != b.size()) std::abort();
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) std::abort();
    }
  }
  return 0;
}

// Fuzz target for common::Flags, the hardened --flag parser every CLI
// tool front-ends untrusted command lines through. Input bytes are split
// on newlines into an argv; the parser must never crash, and a parse
// that succeeds must serve typed lookups without crashing either.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"

namespace {

// Flags::Parse prints a diagnostic to stderr on every malformed input —
// silence it once so fuzzing is not I/O-bound.
const bool kStderrSilenced = [] {
  return std::freopen("/dev/null", "w", stderr) != nullptr;
}();

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  (void)kStderrSilenced;
  // Split into at most 64 newline-separated tokens.
  std::vector<std::string> tokens = {"fuzz_flags"};
  std::string current;
  for (size_t i = 0; i < size && tokens.size() < 64; ++i) {
    const char c = static_cast<char>(data[i]);
    if (c == '\n') {
      tokens.push_back(current);
      current.clear();
    } else if (c != '\0') {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(current);

  std::vector<char*> argv;
  argv.reserve(tokens.size());
  for (std::string& token : tokens) argv.push_back(token.data());

  const auto flags = focus::common::Flags::Parse(
      static_cast<int>(argv.size()), argv.data(), 1,
      {"spool", "reference", "minsup", "threads", "once", "queue"});
  if (flags.has_value()) {
    flags->Get("spool", "");
    flags->GetDouble("minsup", 0.01);
    flags->GetInt("threads", 4);
    flags->Has("once");
  }
  return 0;
}

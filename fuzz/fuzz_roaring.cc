// Differential fuzz target for the RoaringIndex container codec — the
// format the snapshot spool persists and reloads. Three obligations on
// anything LoadFrom ACCEPTS:
//   1. Fixed point: save→load→save reproduces the exact bytes (LoadFrom
//      admits only the canonical form SaveTo emits).
//   2. Differential counting: intersect/difference counts computed on
//      the hybrid containers equal a std::vector<uint32_t> set-algebra
//      reference built from the materialized TID sets.
//   3. Cardinality: ItemCount equals the materialized TID-set size.
// Rejected inputs must fail cleanly (no crash, no partial index).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "data/roaring_index.h"

namespace {

std::vector<uint32_t> IntersectReference(
    const std::vector<std::vector<uint32_t>>& sets, int64_t num_transactions) {
  if (sets.empty()) {
    std::vector<uint32_t> all(static_cast<size_t>(num_transactions));
    for (int64_t t = 0; t < num_transactions; ++t) {
      all[static_cast<size_t>(t)] = static_cast<uint32_t>(t);
    }
    return all;
  }
  std::vector<uint32_t> acc = sets[0];
  for (size_t i = 1; i < sets.size(); ++i) {
    std::vector<uint32_t> next;
    std::set_intersection(acc.begin(), acc.end(), sets[i].begin(),
                          sets[i].end(), std::back_inserter(next));
    acc = std::move(next);
  }
  return acc;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  std::istringstream in(bytes);
  std::string error;
  const auto index = focus::data::RoaringIndex::LoadFrom(in, &error);
  if (!index.has_value()) return 0;

  // 1. Byte-level fixed point.
  std::ostringstream resaved;
  index->SaveTo(resaved);
  if (resaved.str() != bytes) std::abort();
  std::istringstream in2(resaved.str());
  const auto again = focus::data::RoaringIndex::LoadFrom(in2, &error);
  if (!again.has_value() || !(*again == *index)) std::abort();

  // Materialize every item's TID set once; that is the reference algebra.
  const int32_t num_items = index->num_items();
  std::vector<std::vector<uint32_t>> tids(static_cast<size_t>(num_items));
  for (int32_t item = 0; item < num_items; ++item) {
    tids[static_cast<size_t>(item)] = index->ItemTids(item);
    // 3. Cardinality and ascending-distinct invariants.
    const auto& set = tids[static_cast<size_t>(item)];
    if (index->ItemCount(item) != static_cast<int64_t>(set.size())) {
      std::abort();
    }
    for (size_t i = 1; i < set.size(); ++i) {
      if (set[i] <= set[i - 1]) std::abort();
    }
    if (!set.empty() &&
        static_cast<int64_t>(set.back()) >= index->num_transactions()) {
      std::abort();
    }
  }

  // 2. Differential counting, bounded so pathological item counts stay
  // cheap: pairs from the first few items plus one wider intersection.
  const int32_t probe_limit = std::min<int32_t>(num_items, 6);
  for (int32_t a = 0; a < probe_limit; ++a) {
    for (int32_t b = a; b < probe_limit; ++b) {
      const std::vector<uint32_t> expected = IntersectReference(
          {tids[static_cast<size_t>(a)], tids[static_cast<size_t>(b)]},
          index->num_transactions());
      const std::vector<int32_t> pair_items =
          (a == b) ? std::vector<int32_t>{a} : std::vector<int32_t>{a, b};
      if (index->CountPairIntersection(a, b) !=
              static_cast<int64_t>(expected.size()) ||
          index->CountIntersection(pair_items) !=
              static_cast<int64_t>(expected.size())) {
        std::abort();
      }
      // AND-NOT against a third item (or the pair itself when a == b).
      const int32_t excluded = (b + 1) % std::max<int32_t>(num_items, 1);
      std::vector<uint32_t> remain;
      std::set_difference(expected.begin(), expected.end(),
                          tids[static_cast<size_t>(excluded)].begin(),
                          tids[static_cast<size_t>(excluded)].end(),
                          std::back_inserter(remain));
      if (index->CountDifference(pair_items, excluded) !=
          static_cast<int64_t>(remain.size())) {
        std::abort();
      }
    }
  }
  if (probe_limit > 0) {
    std::vector<int32_t> all_probed;
    std::vector<std::vector<uint32_t>> probed_sets;
    for (int32_t item = 0; item < probe_limit; ++item) {
      all_probed.push_back(item);
      probed_sets.push_back(tids[static_cast<size_t>(item)]);
    }
    const std::vector<uint32_t> expected =
        IntersectReference(probed_sets, index->num_transactions());
    if (index->CountIntersection(all_probed) !=
        static_cast<int64_t>(expected.size())) {
      std::abort();
    }
  }
  return 0;
}

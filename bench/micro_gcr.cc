// Ablation (DESIGN.md): dt GCR measures via dual-tree ROUTING — each
// tuple descends both trees, O(n * depth) — vs the naive alternative of
// testing every tuple against every GCR region box, O(n * |GCR| * attrs).

#include <benchmark/benchmark.h>

#include "core/dt_deviation.h"
#include "datagen/class_gen.h"
#include "tree/cart_builder.h"

namespace focus {
namespace {

struct Setup {
  data::Dataset d1;
  data::Dataset d2;
  core::DtModel m1;
  core::DtModel m2;

  static Setup Make(int64_t n, int depth) {
    datagen::ClassGenParams params;
    params.num_rows = n;
    params.function = datagen::ClassFunction::kF2;
    params.seed = 1;
    data::Dataset d1 = datagen::GenerateClassification(params);
    params.function = datagen::ClassFunction::kF4;
    params.seed = 2;
    data::Dataset d2 = datagen::GenerateClassification(params);
    dt::CartOptions cart;
    cart.max_depth = depth;
    core::DtModel m1(dt::BuildCart(d1, cart), d1);
    core::DtModel m2(dt::BuildCart(d2, cart), d2);
    return {std::move(d1), std::move(d2), std::move(m1), std::move(m2)};
  }
};

void BM_GcrMeasuresRouting(benchmark::State& state) {
  const Setup setup = Setup::Make(20000, static_cast<int>(state.range(0)));
  const core::DtGcr gcr(setup.m1, setup.m2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcr.Measures(setup.m1.tree(), setup.m2.tree(),
                                          setup.d1, std::nullopt));
  }
  state.counters["gcr_cells"] = static_cast<double>(gcr.num_regions());
}
BENCHMARK(BM_GcrMeasuresRouting)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_GcrConstruction(benchmark::State& state) {
  // Guard for the constructor fast path: regions_ reserved up front and
  // the leaf-pair → region hash insert skipped entirely while the dense
  // router is active (the common case; dense_router counter should be 1).
  const Setup setup = Setup::Make(20000, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    core::DtGcr gcr(setup.m1, setup.m2);
    benchmark::DoNotOptimize(gcr.num_regions());
  }
  const core::DtGcr gcr(setup.m1, setup.m2);
  state.counters["gcr_cells"] = static_cast<double>(gcr.num_regions());
  state.counters["dense_router"] = gcr.dense_router() ? 1.0 : 0.0;
}
BENCHMARK(BM_GcrConstruction)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_GcrMeasuresNaiveBoxScan(benchmark::State& state) {
  const Setup setup = Setup::Make(20000, static_cast<int>(state.range(0)));
  const core::DtGcr gcr(setup.m1, setup.m2);
  const data::Schema& schema = setup.m1.tree().schema();
  const int num_classes = gcr.num_classes();
  for (auto _ : state) {
    // Naive: linear box-membership scan per tuple.
    std::vector<int64_t> counts(
        static_cast<size_t>(gcr.num_regions()) * num_classes, 0);
    for (int64_t row = 0; row < setup.d1.num_rows(); ++row) {
      const auto values = setup.d1.Row(row);
      for (int r = 0; r < gcr.num_regions(); ++r) {
        if (gcr.regions()[r].box.Contains(schema, values)) {
          ++counts[static_cast<size_t>(r) * num_classes +
                   setup.d1.Label(row)];
          break;
        }
      }
    }
    benchmark::DoNotOptimize(counts.data());
  }
}
BENCHMARK(BM_GcrMeasuresNaiveBoxScan)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace focus

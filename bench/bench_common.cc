#include "bench_common.h"

#include <cstdio>
#include <fstream>

#include "common/env.h"
#include "common/table_printer.h"
#include "common/timer.h"

namespace focus::bench {

void EmitBenchJson(const std::string& json_line) {
  std::printf("%s\n", json_line.c_str());
  std::fflush(stdout);
  const std::string path = common::GetEnvString("FOCUS_BENCH_JSON", "");
  if (path.empty()) return;
  std::ofstream out(path, std::ios::app);
  if (out) out << json_line << "\n";
}

int64_t ScaledCount(int64_t default_small, int64_t paper_full) {
  if (common::GetEnvBool("FOCUS_FULL", false)) return paper_full;
  const double scale = common::GetEnvDouble("FOCUS_SCALE", 1.0);
  const int64_t scaled =
      static_cast<int64_t>(static_cast<double>(default_small) * scale);
  return scaled < 100 ? 100 : scaled;
}

int SamplesPerFraction(int default_samples) {
  if (common::GetEnvBool("FOCUS_FULL", false)) return 50;  // the paper's 50
  return static_cast<int>(common::GetEnvInt("FOCUS_SAMPLES", default_samples));
}

int BootstrapReplicates(int default_replicates) {
  return static_cast<int>(
      common::GetEnvInt("FOCUS_REPLICATES", default_replicates));
}

void PrintHeader(const std::string& experiment_id, const std::string& title,
                 const std::string& paper_expectation) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), title.c_str());
  std::printf("paper: %s\n", paper_expectation.c_str());
  std::printf("==============================================================\n");
}

datagen::QuestParams PaperQuestParams(int64_t num_transactions,
                                      int32_t num_patterns,
                                      double pattern_length, uint64_t seed) {
  datagen::QuestParams params;
  params.num_transactions = num_transactions;
  params.avg_transaction_length = 20;
  params.num_items = 1000;
  params.num_patterns = num_patterns;
  params.avg_pattern_length = pattern_length;
  params.seed = seed;
  return params;
}

datagen::ClassGenParams PaperClassParams(int64_t num_rows,
                                         datagen::ClassFunction function,
                                         uint64_t seed) {
  datagen::ClassGenParams params;
  params.num_rows = num_rows;
  params.function = function;
  params.seed = seed;
  return params;
}

void PrintSdSeries(const std::string& caption,
                   const std::vector<core::SampleStudyPoint>& points) {
  std::printf("%s\n", caption.c_str());
  common::TablePrinter table({"SF", "mean SD", "min SD", "max SD"});
  for (const core::SampleStudyPoint& point : points) {
    double lo = point.sample_deviations[0];
    double hi = point.sample_deviations[0];
    for (double sd : point.sample_deviations) {
      lo = sd < lo ? sd : lo;
      hi = sd > hi ? sd : hi;
    }
    table.AddRow({common::FormatDouble(point.fraction, 2),
                  common::FormatDouble(point.mean_sd, 5),
                  common::FormatDouble(lo, 5), common::FormatDouble(hi, 5)});
  }
  table.Print();
}

void PrintSignificanceTable(const std::vector<core::SampleStudyPoint>& points,
                            const std::vector<double>& significances) {
  std::vector<std::string> header = {"Sample Fraction"};
  std::vector<std::string> row = {"Significance"};
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    header.push_back(common::FormatDouble(points[i].fraction, 2));
    row.push_back(common::FormatDouble(significances[i], 2));
  }
  common::TablePrinter table(header);
  table.AddRow(row);
  table.Print();
}

void RunLitsSdVsSfFigure(const std::string& figure_id, int64_t default_small,
                         int64_t paper_full) {
  const int64_t n = ScaledCount(default_small, paper_full);
  const datagen::QuestParams params = PaperQuestParams(n, 4000, 4, /*seed=*/1);
  PrintHeader(figure_id, "lits-models: SD vs SF, three minsup levels",
              "SD decreases with SF; lower minsup => larger SD; elbow near "
              "SF 0.2-0.3 (dataset " +
                  params.Name() + " family)");
  std::printf("measured on %s (scaled), %d samples per fraction\n\n",
              params.Name().c_str(), SamplesPerFraction(5));

  common::Timer timer;
  const data::TransactionDb db = datagen::GenerateQuest(params);
  for (const double min_support : {0.01, 0.008, 0.006}) {
    core::LitsStudyConfig config;
    config.apriori.min_support = min_support;
    config.samples_per_fraction = SamplesPerFraction(5);
    config.seed = 7;
    const auto points = core::LitsSampleStudy(db, config);
    char caption[96];
    std::snprintf(caption, sizeof(caption), "\nf_a,g_sum; minSup=%.3f",
                  min_support);
    PrintSdSeries(caption, points);
  }
  std::printf("\ntotal time: %.1fs\n", timer.Seconds());
}

void RunDtSdVsSfFigure(const std::string& figure_id, int64_t default_small,
                       int64_t paper_full) {
  const int64_t n = ScaledCount(default_small, paper_full);
  PrintHeader(figure_id, "dt-models: SD vs SF, functions F1-F4",
              "SD decreases with SF for every function; magnitudes around "
              "0.005-0.03 at small SF");
  std::printf("measured at %lld tuples (scaled), %d samples per fraction\n\n",
              static_cast<long long>(n), SamplesPerFraction(5));

  common::Timer timer;
  const datagen::ClassFunction functions[] = {
      datagen::ClassFunction::kF1, datagen::ClassFunction::kF2,
      datagen::ClassFunction::kF3, datagen::ClassFunction::kF4};
  for (const datagen::ClassFunction function : functions) {
    const data::Dataset dataset =
        datagen::GenerateClassification(PaperClassParams(n, function, 1));
    core::DtStudyConfig config;
    config.cart.max_depth = 8;
    config.cart.min_leaf_size = 50;
    config.samples_per_fraction = SamplesPerFraction(5);
    config.seed = 7;
    const auto points = core::DtSampleStudy(dataset, config);
    char caption[64];
    std::snprintf(caption, sizeof(caption), "\nf_a,g_sum: F%d",
                  static_cast<int>(function));
    PrintSdSeries(caption, points);
  }
  std::printf("\ntotal time: %.1fs\n", timer.Seconds());
}

}  // namespace focus::bench

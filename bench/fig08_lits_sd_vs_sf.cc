// Figure 8: same study as Figure 7 on the 0.75M-transaction dataset.

#include "bench_common.h"

int main() {
  focus::bench::RunLitsSdVsSfFigure("Figure 8", /*default_small=*/9000,
                                    /*paper_full=*/750000);
  return 0;
}

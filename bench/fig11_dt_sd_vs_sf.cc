// Figure 11: same study as Figure 10 on the 0.75M-tuple dataset.

#include "bench_common.h"

int main() {
  focus::bench::RunDtSdVsSfFigure("Figure 11", /*default_small=*/15000,
                                  /*paper_full=*/750000);
  return 0;
}

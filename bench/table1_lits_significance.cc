// Table 1 (lits-models): % significance of the increase in sample
// representativeness as the sample fraction grows from s_i to s_{i+1},
// measured with the Wilcoxon two-sample test on sets of sample deviations
// (paper: 1M.20L.1K.4000pats.4patlen, minsup 1%, 50 SDs per size; all
// steps 99.99 except the last).

#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/sampling_study.h"
#include "datagen/quest_gen.h"

namespace focus::bench {
namespace {

void Run() {
  PrintHeader("Table 1", "lits-models: significance of SD decrease with SF",
              "all steps 99.99% significant (dataset 1M.20L.1K.4000pats.4patlen)");
  std::printf(
      "paper row:  SF   0.01  0.05  0.1   0.2   0.3   0.4   0.5   0.6   0.7\n"
      "            sig  99.99 99.99 99.99 99.99 99.99 99.99 99.99 99.99 99.99\n\n");

  const int64_t n = ScaledCount(12000, 1000000);
  const datagen::QuestParams params = PaperQuestParams(n, 4000, 4, /*seed=*/1);
  std::printf("measured on %s (scaled), %d samples per fraction\n\n",
              params.Name().c_str(), SamplesPerFraction());

  common::Timer timer;
  const data::TransactionDb db = datagen::GenerateQuest(params);

  core::LitsStudyConfig config;
  config.apriori.min_support = 0.01;
  config.samples_per_fraction = SamplesPerFraction();
  config.seed = 7;
  const auto points = core::LitsSampleStudy(db, config);
  const auto significances = core::StepSignificances(points);

  PrintSignificanceTable(points, significances);
  PrintSdSeries("\nunderlying SD values:", points);
  std::printf("\ntotal time: %.1fs\n", timer.Seconds());
}

}  // namespace
}  // namespace focus::bench

int main() {
  focus::bench::Run();
  return 0;
}

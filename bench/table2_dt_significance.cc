// Table 2 (dt-models): % significance of the decrease in sample deviation
// with sample fraction (paper: dataset 1M.F1, 50 SDs per size; row
// 99.99 99.99 99.99 99.97 99.69 79 99.22 99.93 95.25).

#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/sampling_study.h"
#include "datagen/class_gen.h"

namespace focus::bench {
namespace {

void Run() {
  PrintHeader("Table 2", "dt-models: significance of SD decrease with SF",
              "high significance at almost every step (dataset 1M.F1)");
  std::printf(
      "paper row:  SF   0.01  0.05  0.1   0.2   0.3   0.4  0.5   0.6   0.7\n"
      "            sig  99.99 99.99 99.99 99.97 99.69 79   99.22 99.93 95.25\n\n");

  const int64_t n = ScaledCount(20000, 1000000);
  const datagen::ClassGenParams params =
      PaperClassParams(n, datagen::ClassFunction::kF1, /*seed=*/1);
  std::printf("measured on %s (scaled), %d samples per fraction\n\n",
              params.Name().c_str(), SamplesPerFraction());

  common::Timer timer;
  const data::Dataset dataset = datagen::GenerateClassification(params);

  core::DtStudyConfig config;
  config.cart.max_depth = 8;
  config.cart.min_leaf_size = 50;
  config.samples_per_fraction = SamplesPerFraction();
  config.seed = 7;
  const auto points = core::DtSampleStudy(dataset, config);
  const auto significances = core::StepSignificances(points);

  PrintSignificanceTable(points, significances);
  PrintSdSeries("\nunderlying SD values:", points);
  std::printf("\ntotal time: %.1fs\n", timer.Seconds());
}

}  // namespace
}  // namespace focus::bench

int main() {
  focus::bench::Run();
  return 0;
}

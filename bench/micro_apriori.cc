// Microbenchmarks: Apriori mining cost vs minimum support and database
// size (ablation for the support-counting index described in DESIGN.md).

#include <benchmark/benchmark.h>

#include "datagen/quest_gen.h"
#include "itemsets/apriori.h"
#include "itemsets/support_counter.h"

namespace focus {
namespace {

data::TransactionDb MakeDb(int64_t n) {
  datagen::QuestParams params;
  params.num_transactions = n;
  params.avg_transaction_length = 10;
  params.num_items = 500;
  params.num_patterns = 500;
  params.avg_pattern_length = 4;
  params.seed = 1;
  return datagen::GenerateQuest(params);
}

void BM_AprioriByMinSupport(benchmark::State& state) {
  const data::TransactionDb db = MakeDb(4000);
  lits::AprioriOptions options;
  options.min_support = static_cast<double>(state.range(0)) / 1000.0;
  for (auto _ : state) {
    const lits::LitsModel model = lits::Apriori(db, options);
    benchmark::DoNotOptimize(model.size());
  }
  state.counters["itemsets"] =
      static_cast<double>(lits::Apriori(db, options).size());
}
BENCHMARK(BM_AprioriByMinSupport)->Arg(40)->Arg(20)->Arg(10)
    ->Unit(benchmark::kMillisecond);

void BM_AprioriByDbSize(benchmark::State& state) {
  const data::TransactionDb db = MakeDb(state.range(0));
  lits::AprioriOptions options;
  options.min_support = 0.02;
  for (auto _ : state) {
    const lits::LitsModel model = lits::Apriori(db, options);
    benchmark::DoNotOptimize(model.size());
  }
}
BENCHMARK(BM_AprioriByDbSize)->Arg(1000)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);

void BM_SupportCountingScan(benchmark::State& state) {
  const data::TransactionDb db = MakeDb(8000);
  lits::AprioriOptions options;
  options.min_support = 0.02;
  const lits::LitsModel model = lits::Apriori(db, options);
  const std::vector<lits::Itemset> itemsets = model.StructuralComponent();
  for (auto _ : state) {
    const std::vector<double> supports = lits::CountSupports(db, itemsets);
    benchmark::DoNotOptimize(supports.data());
  }
  state.counters["itemsets"] = static_cast<double>(itemsets.size());
}
BENCHMARK(BM_SupportCountingScan)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace focus

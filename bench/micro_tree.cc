// Microbenchmarks for the decision-tree substrate: CART build cost and
// prediction throughput.

#include <benchmark/benchmark.h>

#include "datagen/class_gen.h"
#include "tree/cart_builder.h"
#include "tree/presorted_builder.h"

namespace focus {
namespace {

void BM_CartBuild(benchmark::State& state) {
  datagen::ClassGenParams params;
  params.num_rows = state.range(0);
  params.function = datagen::ClassFunction::kF4;
  params.seed = 1;
  const data::Dataset dataset = datagen::GenerateClassification(params);
  dt::CartOptions options;
  options.max_depth = 8;
  options.min_leaf_size = 50;
  for (auto _ : state) {
    const dt::DecisionTree tree = dt::BuildCart(dataset, options);
    benchmark::DoNotOptimize(tree.num_leaves());
  }
}
BENCHMARK(BM_CartBuild)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

// Ablation: recursive per-node re-sorting vs SLIQ-style one-time presort
// (both produce the identical tree; see presorted_builder_test).
void BM_CartBuildPresorted(benchmark::State& state) {
  datagen::ClassGenParams params;
  params.num_rows = state.range(0);
  params.function = datagen::ClassFunction::kF4;
  params.seed = 1;
  const data::Dataset dataset = datagen::GenerateClassification(params);
  dt::CartOptions options;
  options.max_depth = 8;
  options.min_leaf_size = 50;
  for (auto _ : state) {
    const dt::DecisionTree tree = dt::BuildCartPresorted(dataset, options);
    benchmark::DoNotOptimize(tree.num_leaves());
  }
}
BENCHMARK(BM_CartBuildPresorted)->Arg(5000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_TreePredict(benchmark::State& state) {
  datagen::ClassGenParams params;
  params.num_rows = 20000;
  params.function = datagen::ClassFunction::kF4;
  params.seed = 1;
  const data::Dataset dataset = datagen::GenerateClassification(params);
  dt::CartOptions options;
  options.max_depth = 8;
  const dt::DecisionTree tree = dt::BuildCart(dataset, options);
  int64_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Predict(dataset.Row(row)));
    row = (row + 1) % dataset.num_rows();
  }
}
BENCHMARK(BM_TreePredict);

}  // namespace
}  // namespace focus

// Compressed vs flat vertical counting: RoaringIndex (array/bitmap/run
// hybrid containers, radix-partitioned single-pass build) against the
// flat TID-bitmap VerticalIndex on the GCR probe workload of
// micro_vertical_count. Two dataset profiles, because container
// compression is a function of per-item density:
//   paper-500: the 500-pattern Quest family every other bench uses —
//     items are dense, most containers promote to bitmap/run, and the
//     roaring floor is array-coded occurrences (~2 B each).
//   sparse-100: a 100-pattern wide-catalog profile (10x the items, same
//     row count) — the regime roaring exists for, where the flat index
//     pays 1 bit x items x transactions regardless of density.
// Emits one JSON line per profile (appended to $FOCUS_BENCH_JSON):
//   {"bench":"micro_roaring","profile":…,"transactions":N,"items":…,
//    "flat_build_ms":…,"flat_mib":…,"flat_ms_per_pass":…,
//    "roaring_build_ms":…,"roaring_mib":…,"roaring_ms_per_pass":…,
//    "memory_ratio":…,"pass_ratio":…,
//    "containers":{"arrays":…,"bitmaps":…,"runs":…},"checked":true}

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "common/timer.h"
#include "data/roaring_index.h"
#include "data/transaction_db.h"
#include "data/vertical_index.h"
#include "datagen/quest_gen.h"
#include "itemsets/itemset.h"
#include "itemsets/support_counter.h"

namespace focus {
namespace {

// Same probe shape as micro_vertical_count: 16 singles, 32 pairs, 16
// triples over the most frequent items.
std::vector<lits::Itemset> ProbeItemsets(const data::TransactionDb& db) {
  std::vector<int64_t> frequency(db.num_items(), 0);
  for (int64_t t = 0; t < db.num_transactions(); ++t) {
    for (int32_t item : db.Transaction(t)) ++frequency[item];
  }
  std::vector<int32_t> order(db.num_items());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return frequency[a] != frequency[b] ? frequency[a] > frequency[b] : a < b;
  });
  const int top = std::min<int>(16, db.num_items());
  std::vector<lits::Itemset> itemsets;
  itemsets.reserve(64);
  for (int i = 0; i < top; ++i) {
    itemsets.push_back(lits::Itemset({order[i]}));
  }
  for (int i = 0; static_cast<int>(itemsets.size()) < 48; ++i) {
    const int a = i % top;
    const int b = (i * 7 + 1) % top;
    if (a == b) continue;
    itemsets.push_back(lits::Itemset({order[a], order[b]}));
  }
  for (int i = 0; static_cast<int>(itemsets.size()) < 64; ++i) {
    const int a = i % top;
    const int b = (i + 3) % top;
    const int c = (i * 5 + 2) % top;
    if (a == b || a == c || b == c) continue;
    itemsets.push_back(lits::Itemset({order[a], order[b], order[c]}));
  }
  return itemsets;
}

void RunProfile(const char* profile, const datagen::QuestParams& params) {
  const data::TransactionDb db = datagen::GenerateQuest(params);
  const std::vector<lits::Itemset> itemsets = ProbeItemsets(db);
  const lits::SupportCounter counter(itemsets, db.num_items());
  std::printf("\nprofile %s: %lld transactions, %d items\n", profile,
              static_cast<long long>(db.num_transactions()), db.num_items());

  common::Timer timer;
  const data::VerticalIndex flat(db);
  const double flat_build_ms = timer.Millis();
  const double flat_mib =
      static_cast<double>(flat.MemoryBytes()) / (1024.0 * 1024.0);

  timer.Restart();
  const data::RoaringIndex roaring(db);
  const double roaring_build_ms = timer.Millis();
  const double roaring_mib =
      static_cast<double>(roaring.MemoryBytes()) / (1024.0 * 1024.0);

  const int passes = 10;
  timer.Restart();
  std::vector<int64_t> flat_counts;
  for (int i = 0; i < passes; ++i) flat_counts = counter.CountAbsolute(flat);
  const double flat_ms = timer.Millis() / passes;

  timer.Restart();
  std::vector<int64_t> roaring_counts;
  for (int i = 0; i < passes; ++i) {
    roaring_counts = counter.CountAbsolute(roaring);
  }
  const double roaring_ms = timer.Millis() / passes;

  FOCUS_CHECK(roaring_counts == flat_counts);  // the bit-identical contract

  const data::RoaringIndex::ContainerCounts containers =
      roaring.CountContainers();
  const double memory_ratio = roaring_mib / flat_mib;
  const double pass_ratio = roaring_ms / flat_ms;
  std::printf(
      "  flat:    build %.1f ms, %.1f MiB, %.3f ms/pass\n"
      "  roaring: build %.1f ms, %.1f MiB (%.1f%% of flat), %.3f ms/pass "
      "(%.2fx flat)\n"
      "  containers: %lld arrays, %lld bitmaps, %lld runs\n",
      flat_build_ms, flat_mib, flat_ms, roaring_build_ms, roaring_mib,
      100.0 * memory_ratio, roaring_ms, pass_ratio,
      static_cast<long long>(containers.arrays),
      static_cast<long long>(containers.bitmaps),
      static_cast<long long>(containers.runs));

  char line[768];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"micro_roaring\",\"profile\":\"%s\","
      "\"transactions\":%lld,\"items\":%d,\"itemsets\":%zu,"
      "\"flat_build_ms\":%.3f,\"flat_mib\":%.1f,\"flat_ms_per_pass\":%.3f,"
      "\"roaring_build_ms\":%.3f,\"roaring_mib\":%.1f,"
      "\"roaring_ms_per_pass\":%.3f,\"memory_ratio\":%.3f,"
      "\"pass_ratio\":%.2f,\"containers\":{\"arrays\":%lld,"
      "\"bitmaps\":%lld,\"runs\":%lld},\"checked\":true}",
      profile, static_cast<long long>(db.num_transactions()), db.num_items(),
      itemsets.size(), flat_build_ms, flat_mib, flat_ms, roaring_build_ms,
      roaring_mib, roaring_ms, memory_ratio, pass_ratio,
      static_cast<long long>(containers.arrays),
      static_cast<long long>(containers.bitmaps),
      static_cast<long long>(containers.runs));
  bench::EmitBenchJson(line);
}

int Run() {
  const int64_t n = bench::ScaledCount(20000, 1000000);
  bench::PrintHeader(
      "micro_roaring",
      "compressed (roaring) vs flat vertical counting on the GCR workload",
      "hybrid containers trade a bounded per-pass slowdown for memory that "
      "tracks density instead of |D| x |I|");

  // Profile 1: the 500-pattern paper-continuity dataset (dense items).
  RunProfile("paper-500",
             bench::PaperQuestParams(n, /*num_patterns=*/500,
                                     /*pattern_length=*/4, /*seed=*/42));

  // Profile 2: sparse 1K-item dataset — same item universe (so the flat
  // index costs exactly what it does above: 1 bit x 1000 items x |D|),
  // but half-length transactions from 100 patterns. Occupancy, and with
  // it the roaring footprint, halves; the flat index cannot tell the
  // difference.
  datagen::QuestParams sparse = bench::PaperQuestParams(
      n, /*num_patterns=*/100, /*pattern_length=*/4, /*seed=*/42);
  sparse.avg_transaction_length = 10;
  RunProfile("sparse-100", sparse);
  return 0;
}

}  // namespace
}  // namespace focus

int main() { return focus::Run(); }

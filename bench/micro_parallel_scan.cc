// Serial vs. pool-parallel measure-extension scan (SupportCounter over a
// QUEST workload). Emits one JSON line per configuration:
//   {"bench":"parallel_scan","threads":T,"seconds":…,"speedup":…,
//    "identical":true,…}
// "identical" asserts the bit-identical contract, not a tolerance check.
//
// NOTE: on a single-core host the pool cannot beat the serial scan; the
// speedup column then reports the (honest) slowdown from scheduling
// overhead. Run on a multi-core host to see the scaling.

#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "core/lits_deviation.h"
#include "common/check.h"
#include "datagen/quest_gen.h"
#include "itemsets/apriori.h"
#include "itemsets/support_counter.h"

namespace focus {
namespace {

double SecondsOf(const std::function<void()>& body, int repetitions) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < repetitions; ++i) body();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count() / repetitions;
}

int Run() {
  const int64_t num_transactions = bench::ScaledCount(100000, 1000000);
  datagen::QuestParams params = bench::PaperQuestParams(
      num_transactions, /*num_patterns=*/2000, /*pattern_length=*/4,
      /*seed=*/11);
  const data::TransactionDb d1 = datagen::GenerateQuest(params);
  params.seed = 12;
  const data::TransactionDb d2 = datagen::GenerateQuest(params);

  lits::AprioriOptions mine;
  mine.min_support = 0.01;
  mine.max_itemset_size = 3;
  const lits::LitsModel m1 = lits::Apriori(d1, mine);
  const lits::LitsModel m2 = lits::Apriori(d2, mine);
  const std::vector<lits::Itemset> regions = core::LitsGcr(m1, m2);
  const lits::SupportCounter counter(regions, d1.num_items());

  std::printf(
      "{\"bench\":\"parallel_scan\",\"transactions\":%lld,"
      "\"gcr_itemsets\":%zu}\n",
      static_cast<long long>(d1.num_transactions()), regions.size());

  const int repetitions = 3;
  std::vector<int64_t> serial_counts;
  const double serial_seconds = SecondsOf(
      [&] { serial_counts = counter.CountAbsolute(d1); }, repetitions);
  std::printf(
      "{\"bench\":\"parallel_scan\",\"threads\":0,\"mode\":\"serial\","
      "\"seconds\":%.6f,\"speedup\":1.0,\"identical\":true}\n",
      serial_seconds);

  for (int threads : {1, 2, 4, 8}) {
    common::ThreadPool pool(threads);
    std::vector<int64_t> parallel_counts;
    const double seconds = SecondsOf(
        [&] { parallel_counts = counter.CountAbsoluteParallel(d1, pool); },
        repetitions);
    const bool identical = parallel_counts == serial_counts;
    FOCUS_CHECK(identical);
    std::printf(
        "{\"bench\":\"parallel_scan\",\"threads\":%d,\"mode\":\"pool\","
        "\"seconds\":%.6f,\"speedup\":%.3f,\"identical\":%s}\n",
        threads, seconds, serial_seconds / seconds,
        identical ? "true" : "false");
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace focus

int main() { return focus::Run(); }

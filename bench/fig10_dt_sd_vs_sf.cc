// Figure 10: sample deviation vs sample fraction for dt-models (F1-F4) on
// the paper's 1M-tuple dataset.

#include "bench_common.h"

int main() {
  focus::bench::RunDtSdVsSfFigure("Figure 10", /*default_small=*/20000,
                                  /*paper_full=*/1000000);
  return 0;
}

// dt-model measure scans: row-at-a-time FlatTreeRouter::Route vs the
// 8-row lockstep RouteRows batches, the two scan shapes behind
// DtMeasuresOverTree and the GCR measure pass (the product picks per
// tree via FlatTreeRouter::PrefersBatchedRouting; FOCUS_DT_BATCH pins
// it). Measured at BOTH regimes of that cutover: the paper's ~20-leaf
// tree, whose node array lives in L1 and where row-at-a-time wins, and a
// deep min_leaf=2 tree whose node array misses cache and where the 8
// parallel dependency chains hide node-load latency. The tree is induced
// from a sample and the FULL dataset routed through it — the monitoring
// shape (old model, new data). Default is a scaled-down size;
// FOCUS_FULL=1 routes 1M rows. Emits one JSON line (appended to
// $FOCUS_BENCH_JSON when set):
//   {"bench":"micro_dt_route","rows":N,"leaves":L,
//    "row_at_a_time_ms_per_pass":…,"batched_ms_per_pass":…,
//    "batched_parallel_ms_per_pass":…,"speedup_batched":…,
//    "big_leaves":L2,"big_row_at_a_time_ms_per_pass":…,
//    "big_batched_ms_per_pass":…,"speedup_batched_big":…,"checked":true}
// The FOCUS_CHECKs re-assert the bit-identity contract at bench scale:
// batched serial and batched sharded counts equal the row-at-a-time scan
// on both trees.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/flat_router.h"
#include "core/parallel_count.h"
#include "datagen/class_gen.h"
#include "tree/presorted_builder.h"

namespace focus {
namespace {

// The scan DtMeasuresOverTree ran before batching: one Route call per row
// through CountRowsMaybeParallel. Kept here as the before/after baseline.
std::vector<int64_t> CountRowAtATime(const core::FlatTreeRouter& router,
                                     const data::Dataset& dataset,
                                     int num_leaves, int num_classes,
                                     common::ThreadPool* pool) {
  return core::CountRowsMaybeParallel(
      dataset.num_rows(), static_cast<size_t>(num_leaves) * num_classes,
      pool,
      [&](int64_t row, std::vector<int64_t>& acc) {
        const int leaf = router.Route(dataset.Row(row));
        ++acc[static_cast<size_t>(leaf) * num_classes + dataset.Label(row)];
      });
}

std::vector<int64_t> CountBatched(const core::FlatTreeRouter& router,
                                  const data::Dataset& dataset,
                                  int num_leaves, int num_classes,
                                  common::ThreadPool* pool) {
  return core::CountRowRangesMaybeParallel(
      dataset.num_rows(), static_cast<size_t>(num_leaves) * num_classes,
      core::FlatTreeRouter::kBatch, pool,
      [&](int64_t begin, int64_t end, std::vector<int64_t>& acc) {
        int64_t rows[core::FlatTreeRouter::kBatch];
        const int n = static_cast<int>(end - begin);
        for (int i = 0; i < n; ++i) rows[i] = begin + i;
        int leaves[core::FlatTreeRouter::kBatch];
        router.RouteRows(dataset, rows, n, leaves);
        for (int i = 0; i < n; ++i) {
          ++acc[static_cast<size_t>(leaves[i]) * num_classes +
                dataset.Label(rows[i])];
        }
      });
}

int Run() {
  const int64_t n = bench::ScaledCount(20000, 1000000);
  bench::PrintHeader(
      "micro_dt_route",
      "dt measure scan: row-at-a-time routing vs 8-row lockstep batches",
      "same leaf counts either way; batching only overlaps the descents");

  datagen::ClassGenParams params = bench::PaperClassParams(
      n, datagen::ClassFunction::kF4, /*seed=*/42);
  const data::Dataset dataset = datagen::GenerateClassification(params);
  datagen::ClassGenParams inducing_params = params;
  inducing_params.num_rows = std::min<int64_t>(n, 20000);
  const data::Dataset inducing =
      datagen::GenerateClassification(inducing_params);
  dt::CartOptions cart;
  cart.max_depth = 8;
  cart.min_leaf_size = 50;
  const dt::DecisionTree tree = dt::BuildCartPresorted(inducing, cart);
  const core::FlatTreeRouter router(tree);
  const int num_classes = tree.schema().num_classes();
  std::printf("dataset: %lld rows, tree: %d leaves, depth %d\n",
              static_cast<long long>(dataset.num_rows()), tree.num_leaves(),
              tree.Depth());

  const int passes = 5;
  common::Timer timer;
  std::vector<int64_t> row_counts;
  for (int i = 0; i < passes; ++i) {
    row_counts = CountRowAtATime(router, dataset, tree.num_leaves(),
                                 num_classes, nullptr);
  }
  const double row_ms = timer.Millis() / passes;

  timer.Restart();
  std::vector<int64_t> batched;
  for (int i = 0; i < passes; ++i) {
    batched = CountBatched(router, dataset, tree.num_leaves(),
                           num_classes, nullptr);
  }
  const double batched_ms = timer.Millis() / passes;

  common::ThreadPool pool(4);
  timer.Restart();
  std::vector<int64_t> parallel;
  for (int i = 0; i < passes; ++i) {
    parallel = CountBatched(router, dataset, tree.num_leaves(),
                            num_classes, &pool);
  }
  const double parallel_ms = timer.Millis() / passes;

  FOCUS_CHECK(batched == row_counts);  // the bit-identical contract
  FOCUS_CHECK(parallel == row_counts);

  const double speedup = row_ms / batched_ms;
  std::printf("row-at-a-time %.3f ms/pass, batched %.3f ms/pass (%.2fx), "
              "batched+pool(4) %.3f ms/pass\n",
              row_ms, batched_ms, speedup, parallel_ms);

  // The other side of the PrefersBatchedRouting cutover: a deep
  // min_leaf=2 tree whose node array dwarfs the last-level cache, so
  // every descent is a chain of memory-latency loads. The paper's
  // functions are cleanly separable (CART stops at ~20 pure leaves
  // however lax the limits), so the big tree is induced from a
  // label-noised sample — the generator's perturbation factor — which
  // CART dutifully overfits into ~150k leaves (~12 MiB of nodes) at full
  // scale.
  dt::CartOptions big_cart;
  big_cart.max_depth = 48;
  big_cart.min_leaf_size = 2;
  big_cart.min_gain = 0.0;
  datagen::ClassGenParams big_inducing_params = params;
  big_inducing_params.label_noise = 0.25;
  const data::Dataset big_inducing =
      datagen::GenerateClassification(big_inducing_params);
  const dt::DecisionTree big_tree = dt::BuildCartPresorted(big_inducing,
                                                           big_cart);
  const core::FlatTreeRouter big_router(big_tree);
  std::printf("big tree: %d leaves, depth %d, %.1f KiB of nodes\n",
              big_tree.num_leaves(), big_tree.Depth(),
              static_cast<double>(big_router.nodes.size() *
                                  sizeof(core::FlatTreeRouter::Node)) /
                  1024.0);

  timer.Restart();
  std::vector<int64_t> big_row_counts;
  for (int i = 0; i < passes; ++i) {
    big_row_counts = CountRowAtATime(big_router, dataset,
                                     big_tree.num_leaves(), num_classes,
                                     nullptr);
  }
  const double big_row_ms = timer.Millis() / passes;

  timer.Restart();
  std::vector<int64_t> big_batched;
  for (int i = 0; i < passes; ++i) {
    big_batched = CountBatched(big_router, dataset, big_tree.num_leaves(),
                               num_classes, nullptr);
  }
  const double big_batched_ms = timer.Millis() / passes;
  FOCUS_CHECK(big_batched == big_row_counts);

  const double big_speedup = big_row_ms / big_batched_ms;
  std::printf("big tree: row-at-a-time %.3f ms/pass, batched %.3f ms/pass "
              "(%.2fx)\n",
              big_row_ms, big_batched_ms, big_speedup);

  char line[768];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"micro_dt_route\",\"rows\":%lld,\"leaves\":%d,"
      "\"row_at_a_time_ms_per_pass\":%.3f,\"batched_ms_per_pass\":%.3f,"
      "\"batched_parallel_ms_per_pass\":%.3f,\"speedup_batched\":%.2f,"
      "\"big_leaves\":%d,\"big_row_at_a_time_ms_per_pass\":%.3f,"
      "\"big_batched_ms_per_pass\":%.3f,\"speedup_batched_big\":%.2f,"
      "\"checked\":true}",
      static_cast<long long>(dataset.num_rows()), tree.num_leaves(), row_ms,
      batched_ms, parallel_ms, speedup, big_tree.num_leaves(), big_row_ms,
      big_batched_ms, big_speedup);
  bench::EmitBenchJson(line);
  return 0;
}

}  // namespace
}  // namespace focus

int main() { return focus::Run(); }

// Figure 12: same study as Figure 10 on the 0.5M-tuple dataset.

#include "bench_common.h"

int main() {
  focus::bench::RunDtSdVsSfFigure("Figure 12", /*default_small=*/10000,
                                  /*paper_full=*/500000);
  return 0;
}

// Ablation: Apriori (level-wise candidate generation) vs FP-Growth
// (pattern growth) on sparse and dense workloads, plus the incremental
// maintainer against full re-mining for growing snapshots.

#include <benchmark/benchmark.h>

#include "datagen/quest_gen.h"
#include "itemsets/apriori.h"
#include "itemsets/fp_growth.h"
#include "itemsets/incremental.h"

namespace focus {
namespace {

data::TransactionDb SparseDb(int64_t n) {
  datagen::QuestParams params;
  params.num_transactions = n;
  params.avg_transaction_length = 10;
  params.num_items = 800;
  params.num_patterns = 2000;
  params.avg_pattern_length = 4;
  params.seed = 1;
  return datagen::GenerateQuest(params);
}

data::TransactionDb DenseDb(int64_t n) {
  datagen::QuestParams params;
  params.num_transactions = n;
  params.avg_transaction_length = 14;
  params.num_items = 60;  // few items => heavy co-occurrence
  params.num_patterns = 30;
  params.avg_pattern_length = 5;
  params.seed = 1;
  return datagen::GenerateQuest(params);
}

void BM_AprioriSparse(benchmark::State& state) {
  const data::TransactionDb db = SparseDb(8000);
  lits::AprioriOptions options;
  options.min_support = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lits::Apriori(db, options).size());
  }
}
BENCHMARK(BM_AprioriSparse)->Unit(benchmark::kMillisecond);

void BM_FpGrowthSparse(benchmark::State& state) {
  const data::TransactionDb db = SparseDb(8000);
  lits::AprioriOptions options;
  options.min_support = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lits::FpGrowth(db, options).size());
  }
}
BENCHMARK(BM_FpGrowthSparse)->Unit(benchmark::kMillisecond);

void BM_AprioriDense(benchmark::State& state) {
  const data::TransactionDb db = DenseDb(3000);
  lits::AprioriOptions options;
  options.min_support = 0.05;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lits::Apriori(db, options).size());
  }
  state.counters["itemsets"] =
      static_cast<double>(lits::Apriori(db, options).size());
}
BENCHMARK(BM_AprioriDense)->Unit(benchmark::kMillisecond);

void BM_FpGrowthDense(benchmark::State& state) {
  const data::TransactionDb db = DenseDb(3000);
  lits::AprioriOptions options;
  options.min_support = 0.05;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lits::FpGrowth(db, options).size());
  }
}
BENCHMARK(BM_FpGrowthDense)->Unit(benchmark::kMillisecond);

void BM_IncrementalAppend(benchmark::State& state) {
  const data::TransactionDb initial = SparseDb(8000);
  lits::AprioriOptions options;
  options.min_support = 0.01;
  datagen::QuestParams block_params;
  block_params.num_transactions = 400;
  block_params.avg_transaction_length = 10;
  block_params.num_items = 800;
  block_params.num_patterns = 2000;
  block_params.avg_pattern_length = 4;
  uint64_t seed = 100;
  for (auto _ : state) {
    state.PauseTiming();
    lits::IncrementalMiner miner(initial, options);
    block_params.seed = ++seed;
    const data::TransactionDb block = datagen::GenerateQuest(block_params);
    state.ResumeTiming();
    miner.Append(block);
    benchmark::DoNotOptimize(miner.model().size());
  }
}
BENCHMARK(BM_IncrementalAppend)->Unit(benchmark::kMillisecond);

void BM_FullRemineAfterAppend(benchmark::State& state) {
  const data::TransactionDb initial = SparseDb(8000);
  lits::AprioriOptions options;
  options.min_support = 0.01;
  datagen::QuestParams block_params;
  block_params.num_transactions = 400;
  block_params.avg_transaction_length = 10;
  block_params.num_items = 800;
  block_params.num_patterns = 2000;
  block_params.avg_pattern_length = 4;
  block_params.seed = 101;
  const data::TransactionDb block = datagen::GenerateQuest(block_params);
  data::TransactionDb full = initial;
  full.Append(block);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lits::Apriori(full, options).size());
  }
}
BENCHMARK(BM_FullRemineAfterAppend)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace focus

// Figure 15: misclassification error of the tree built from D, evaluated
// against each comparison dataset, plotted against the FOCUS deviation
// between the datasets. Paper: strong positive correlation.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"
#include "core/dt_deviation.h"
#include "core/misclassification.h"
#include "datagen/class_gen.h"
#include "stats/descriptive.h"
#include "tree/cart_builder.h"

namespace focus::bench {
namespace {

void Run() {
  PrintHeader("Figure 15", "misclassification error vs deviation",
              "ME and deviation exhibit a strong positive correlation");

  const int64_t n = ScaledCount(12000, 1000000);
  const int64_t block = n / 20;
  using datagen::ClassFunction;

  const data::Dataset base = datagen::GenerateClassification(
      PaperClassParams(n, ClassFunction::kF1, /*seed=*/1));

  dt::CartOptions cart;
  cart.max_depth = 8;
  cart.min_leaf_size = 50;
  const core::DtModel base_model(dt::BuildCart(base, cart), base);

  struct Point {
    std::string label;
    data::Dataset db;
  };
  std::vector<Point> points;
  points.push_back({"N.F2", datagen::GenerateClassification(PaperClassParams(
                                n, ClassFunction::kF2, 3))});
  points.push_back({"N.F3", datagen::GenerateClassification(PaperClassParams(
                                n, ClassFunction::kF3, 4))});
  points.push_back({"N.F4", datagen::GenerateClassification(PaperClassParams(
                                n, ClassFunction::kF4, 5))});
  for (const ClassFunction f :
       {ClassFunction::kF2, ClassFunction::kF3, ClassFunction::kF4}) {
    data::Dataset extended = base;
    extended.Append(datagen::GenerateClassification(
        PaperClassParams(block, f, static_cast<uint64_t>(f) + 10)));
    char label[32];
    std::snprintf(label, sizeof(label), "D+block F%d", static_cast<int>(f));
    points.push_back({label, std::move(extended)});
  }

  core::DtDeviationOptions options;
  common::TablePrinter table({"dataset", "deviation", "ME"});
  std::vector<double> deviations;
  std::vector<double> errors;
  for (Point& point : points) {
    const core::DtModel other(dt::BuildCart(point.db, cart), point.db);
    const double deviation =
        core::DtDeviation(base_model, base, other, point.db, options);
    const double me = core::MisclassificationError(base_model.tree(), point.db);
    deviations.push_back(deviation);
    errors.push_back(me);
    table.AddRow({point.label, common::FormatDouble(deviation, 4),
                  common::FormatDouble(me, 4)});
  }
  table.Print();
  std::printf("\nPearson correlation(deviation, ME) = %.3f (paper: strongly "
              "positive)\n",
              stats::PearsonCorrelation(deviations, errors));
}

}  // namespace
}  // namespace focus::bench

int main() {
  focus::bench::Run();
  return 0;
}

// GCR-extension support counting: horizontal transaction scan vs the
// vertical TID-bitmap kernel (AND+popcount over a prebuilt
// data::VerticalIndex), the hot path behind LitsDeviation's extension step
// and Apriori's counting passes. Default is a scaled-down size; FOCUS_FULL=1
// runs the ISSUE target of 1M transactions x 64 itemsets. Emits one JSON
// line (appended to $FOCUS_BENCH_JSON when set):
//   {"bench":"micro_vertical_count","transactions":N,"itemsets":64,
//    "horizontal_ms_per_pass":…,"index_build_ms":…,
//    "vertical_ms_per_pass":…,"vertical_parallel_ms_per_pass":…,
//    "speedup_vertical":…,"passes_to_amortize_build":…,
//    "kernel_ms_per_pass":{"scalar":…,"avx2":…,"avx512":…},"checked":true}
// The kernel sweep pins the dispatcher to each level the hardware
// supports (ScopedLevelForTesting) and re-checks bit-identity per level.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "data/simd_kernels.h"
#include "data/vertical_index.h"
#include "datagen/quest_gen.h"
#include "itemsets/itemset.h"
#include "itemsets/support_counter.h"

namespace focus {
namespace {

// 64 probe itemsets over the 16 most frequent items: 16 singles, 32 pairs,
// 16 triples — the size mix a GCR of two mined models typically carries.
std::vector<lits::Itemset> ProbeItemsets(const data::TransactionDb& db) {
  std::vector<int64_t> frequency(db.num_items(), 0);
  for (int64_t t = 0; t < db.num_transactions(); ++t) {
    for (int32_t item : db.Transaction(t)) ++frequency[item];
  }
  std::vector<int32_t> order(db.num_items());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return frequency[a] != frequency[b] ? frequency[a] > frequency[b] : a < b;
  });
  const int top = std::min<int>(16, db.num_items());
  std::vector<lits::Itemset> itemsets;
  itemsets.reserve(64);
  for (int i = 0; i < top; ++i) {
    itemsets.push_back(lits::Itemset({order[i]}));
  }
  for (int i = 0; static_cast<int>(itemsets.size()) < 48; ++i) {
    const int a = i % top;
    const int b = (i * 7 + 1) % top;
    if (a == b) continue;
    itemsets.push_back(lits::Itemset({order[a], order[b]}));
  }
  for (int i = 0; static_cast<int>(itemsets.size()) < 64; ++i) {
    const int a = i % top;
    const int b = (i + 3) % top;
    const int c = (i * 5 + 2) % top;
    if (a == b || a == c || b == c) continue;
    itemsets.push_back(lits::Itemset({order[a], order[b], order[c]}));
  }
  return itemsets;
}

int Run() {
  const int64_t n = bench::ScaledCount(20000, 1000000);
  bench::PrintHeader(
      "micro_vertical_count",
      "GCR support counting: horizontal scan vs vertical TID bitmaps",
      "one scan per dataset (§3.3.1); vertical amortizes it across passes");

  const datagen::QuestParams params = bench::PaperQuestParams(
      n, /*num_patterns=*/500, /*pattern_length=*/4, /*seed=*/42);
  const data::TransactionDb db = datagen::GenerateQuest(params);
  const std::vector<lits::Itemset> itemsets = ProbeItemsets(db);
  const lits::SupportCounter counter(itemsets, db.num_items());
  std::printf("dataset: %lld transactions, %d items, %zu probe itemsets\n",
              static_cast<long long>(db.num_transactions()), db.num_items(),
              itemsets.size());

  const int horizontal_passes = 3;
  common::Timer timer;
  std::vector<int64_t> horizontal;
  for (int i = 0; i < horizontal_passes; ++i) {
    horizontal = counter.CountAbsolute(db);
  }
  const double horizontal_ms = timer.Millis() / horizontal_passes;

  timer.Restart();
  const data::VerticalIndex index(db);
  const double build_ms = timer.Millis();

  const int vertical_passes = 10;
  timer.Restart();
  std::vector<int64_t> vertical;
  for (int i = 0; i < vertical_passes; ++i) {
    vertical = counter.CountAbsolute(index);
  }
  const double vertical_ms = timer.Millis() / vertical_passes;

  common::ThreadPool pool(4);
  timer.Restart();
  std::vector<int64_t> parallel;
  for (int i = 0; i < vertical_passes; ++i) {
    parallel = counter.CountAbsoluteParallel(index, pool);
  }
  const double parallel_ms = timer.Millis() / vertical_passes;

  FOCUS_CHECK(vertical == horizontal);  // the bit-identical contract
  FOCUS_CHECK(parallel == horizontal);

  // Kernel sweep: the same vertical pass pinned to each dispatch level the
  // hardware can run. Counts must stay bit-identical; only time may move.
  std::string kernel_json = "{";
  for (const data::simd::Level level :
       {data::simd::Level::kScalar, data::simd::Level::kAvx2,
        data::simd::Level::kAvx512}) {
    if (!data::simd::LevelSupported(level)) continue;
    data::simd::ScopedLevelForTesting scoped(level);
    timer.Restart();
    std::vector<int64_t> leveled;
    for (int i = 0; i < vertical_passes; ++i) {
      leveled = counter.CountAbsolute(index);
    }
    const double level_ms = timer.Millis() / vertical_passes;
    FOCUS_CHECK(leveled == horizontal);
    char entry[64];
    std::snprintf(entry, sizeof(entry), "%s\"%s\":%.3f",
                  kernel_json.size() > 1 ? "," : "",
                  data::simd::LevelName(level), level_ms);
    kernel_json += entry;
    std::printf("kernel %-7s %.3f ms/pass\n", data::simd::LevelName(level),
                level_ms);
  }
  kernel_json += "}";

  const double speedup = horizontal_ms / vertical_ms;
  // Number of counting passes after which build + vertical probes beat
  // repeated horizontal scans.
  const double amortize =
      horizontal_ms > vertical_ms ? build_ms / (horizontal_ms - vertical_ms)
                                  : -1.0;
  char line[768];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"micro_vertical_count\",\"transactions\":%lld,"
      "\"itemsets\":%zu,\"horizontal_ms_per_pass\":%.3f,"
      "\"index_build_ms\":%.3f,\"index_mib\":%.1f,"
      "\"vertical_ms_per_pass\":%.3f,\"vertical_parallel_ms_per_pass\":%.3f,"
      "\"speedup_vertical\":%.2f,\"passes_to_amortize_build\":%.2f,"
      "\"kernel_ms_per_pass\":%s,\"checked\":true}",
      static_cast<long long>(db.num_transactions()), itemsets.size(),
      horizontal_ms, build_ms,
      static_cast<double>(index.MemoryBytes()) / (1024.0 * 1024.0),
      vertical_ms, parallel_ms, speedup, amortize, kernel_json.c_str());
  bench::EmitBenchJson(line);
  return 0;
}

}  // namespace
}  // namespace focus

int main() { return focus::Run(); }

// Figure 9: same study as Figure 7 on the 0.5M-transaction dataset.

#include "bench_common.h"

int main() {
  focus::bench::RunLitsSdVsSfFigure("Figure 9", /*default_small=*/6000,
                                    /*paper_full=*/500000);
  return 0;
}

// Figure 7: sample deviation vs sample fraction for lits-models on the
// paper's 1M.20L.1K.4000pats.4patlen dataset at minsup 0.01/0.008/0.006.

#include "bench_common.h"

int main() {
  focus::bench::RunLitsSdVsSfFigure("Figure 7", /*default_small=*/12000,
                                    /*paper_full=*/1000000);
  return 0;
}

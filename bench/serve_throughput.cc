// End-to-end MonitorService throughput: snapshots/second through the full
// ingest → mine/cache → screen → CUSUM pipeline, with and without cache
// hits. Emits JSON lines:
//   {"bench":"serve_throughput","snapshots":N,"seconds":…,
//    "snapshots_per_sec":…,"cache_hit_rate":…}

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "datagen/quest_gen.h"
#include "serve/metrics.h"
#include "serve/monitor_service.h"

namespace focus {
namespace {

data::TransactionDb SnapshotDb(int64_t num_transactions, uint64_t seed) {
  datagen::QuestParams params = bench::PaperQuestParams(
      num_transactions, /*num_patterns=*/500, /*pattern_length=*/4, seed);
  params.pattern_seed = 99;
  return datagen::GenerateQuest(params);
}

void RunConfig(const char* label, int num_snapshots, bool repeat_content,
               int64_t snapshot_size) {
  serve::MonitorServiceOptions options;
  options.monitor.apriori.min_support = 0.02;
  options.monitor.apriori.max_itemset_size = 2;
  options.monitor.calibration_replicates = 3;
  options.monitor.significance.num_replicates = 5;
  options.num_threads = 4;
  options.queue_capacity = 32;
  serve::MetricsRegistry metrics;
  serve::MonitorService service(options, &metrics);
  service.AddStream("bench", SnapshotDb(snapshot_size, /*seed=*/1000));

  // Pre-generate so generation cost stays out of the measured window.
  std::vector<serve::Snapshot> snapshots;
  snapshots.reserve(num_snapshots);
  for (int i = 0; i < num_snapshots; ++i) {
    serve::Snapshot snapshot;
    snapshot.stream = "bench";
    snapshot.sequence = i;
    snapshot.source = "bench";
    const uint64_t seed = repeat_content ? 2000 + (i % 4) : 2000 + i;
    snapshot.db = SnapshotDb(snapshot_size, seed);
    snapshots.push_back(std::move(snapshot));
  }

  const auto start = std::chrono::steady_clock::now();
  for (auto& snapshot : snapshots) service.Submit(std::move(snapshot));
  service.Flush();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  const auto stats = service.model_cache().stats();
  const double hit_rate =
      stats.hits + stats.misses == 0
          ? 0.0
          : static_cast<double>(stats.hits) / (stats.hits + stats.misses);
  char line[384];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"serve_throughput\",\"config\":\"%s\","
      "\"snapshots\":%d,\"snapshot_transactions\":%lld,"
      "\"seconds\":%.4f,\"snapshots_per_sec\":%.2f,"
      "\"cache_hit_rate\":%.3f,\"mean_inspect_ms\":%.3f}",
      label, num_snapshots, static_cast<long long>(snapshot_size),
      elapsed.count(), num_snapshots / elapsed.count(), hit_rate,
      metrics.GetHistogram("inspect_latency_ms").count() == 0
          ? 0.0
          : metrics.GetHistogram("inspect_latency_ms").sum() /
                metrics.GetHistogram("inspect_latency_ms").count());
  bench::EmitBenchJson(line);
}

int Run() {
  const int num_snapshots =
      static_cast<int>(bench::ScaledCount(100, 200));
  const int64_t snapshot_size = bench::ScaledCount(2000, 100000);
  RunConfig("unique_snapshots", num_snapshots, /*repeat_content=*/false,
            snapshot_size);
  RunConfig("repeated_snapshots", num_snapshots, /*repeat_content=*/true,
            snapshot_size);
  return 0;
}

}  // namespace
}  // namespace focus

int main() { return focus::Run(); }

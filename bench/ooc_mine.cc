// Out-of-core mining end to end: generate, mine, and compare two
// 1M-transaction Quest datasets (the paper's 1M.20L.1K family, same
// generating process, independent samples) WITHOUT ever materializing
// either database — against the in-memory pipeline doing the same work
// the fast way (flat VerticalIndex per dataset, vertical Apriori,
// index-extended deviation).
//
// Each phase runs in a forked child so /proc/self/status VmHWM is a
// per-phase peak (fork resets the high-water mark to the parent's small
// orchestration footprint):
//   generate_block  GenerateQuestTo -> BlockTransactionDbWriter, both
//                   datasets streamed straight to block files
//   mine_block      BlockTransactionDb + TxnSourceRef Apriori + streaming
//                   LitsDeviation, bounded by the block cache budget
//   mine_memory     GenerateQuest (materialize) + VerticalIndex + vertical
//                   Apriori + index deviation — fastest, but RSS-unbounded
//
// The deviation doubles from both pipelines are FOCUS_CHECKed identical.
// At FOCUS_FULL=1 the block phases must stay under --budget-mib (default
// 256) while the in-memory phase must exceed it — the point of the PR.
// Emits one JSON line (appended to $FOCUS_BENCH_JSON when set):
//   {"bench":"ooc_mine","transactions":…,"dataset":"1M.20L.1K…",
//    "block_size_kib":…,"budget_mib":…,"generate_block_s":…,
//    "generate_block_vm_hwm_mib":…,"block_file_mib":…,"mine_block_s":…,
//    "mine_block_vm_hwm_mib":…,"mine_block_txn_per_s":…,"mine_memory_s":…,
//    "mine_memory_vm_hwm_mib":…,"mine_memory_txn_per_s":…,"deviation":…,
//    "checked":true}
// Flags:
//   --budget-mib=N      RSS budget asserted at FOCUS_FULL (default 256)
//   --rlimit-as-mib=N   setrlimit(RLIMIT_AS) in the block-phase children —
//                       the ctest row proves the out-of-core mine really
//                       runs inside a hard address-space cap
//   --block-size-kib=N  block payload size (default 1024 = 1 MiB)

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>

#include "bench_common.h"
#include "common/check.h"
#include "common/env.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/functions.h"
#include "core/lits_deviation.h"
#include "data/block_store.h"
#include "data/block_txn_db.h"
#include "data/txn_source.h"
#include "data/vertical_index.h"
#include "datagen/quest_gen.h"
#include "itemsets/apriori.h"

namespace focus {
namespace {

int64_t ReadVmHwmKib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::atoll(line.c_str() + 6);
    }
  }
  return -1;
}

// What a phase child reports back through its pipe.
struct PhaseResult {
  int64_t vm_hwm_kib = 0;
  double seconds = 0.0;
  double deviation = 0.0;  // 0 for phases that compute none
  int64_t aux = 0;         // phase-specific (e.g. block file bytes)
};

// Runs `phase` in a forked child (optionally under RLIMIT_AS) and returns
// its timing, VmHWM, and payload. Any failure inside the child — a
// FOCUS_CHECK, an allocation over the rlimit — fails the parent.
PhaseResult RunPhase(const char* name, int64_t rlimit_as_mib,
                     const std::function<PhaseResult()>& phase) {
  int fds[2];
  FOCUS_CHECK_EQ(pipe(fds), 0);
  const pid_t pid = fork();
  FOCUS_CHECK_GE(pid, 0);
  if (pid == 0) {
    close(fds[0]);
    if (rlimit_as_mib > 0) {
      const rlim_t bytes = static_cast<rlim_t>(rlimit_as_mib) << 20;
      rlimit limit{bytes, bytes};
      if (setrlimit(RLIMIT_AS, &limit) != 0) _exit(3);
    }
    common::Timer timer;
    PhaseResult result = phase();
    result.seconds = timer.Seconds();
    result.vm_hwm_kib = ReadVmHwmKib();
    const ssize_t written = write(fds[1], &result, sizeof(result));
    _exit(written == static_cast<ssize_t>(sizeof(result)) ? 0 : 2);
  }
  close(fds[1]);
  PhaseResult result;
  const ssize_t got = read(fds[0], &result, sizeof(result));
  close(fds[0]);
  int status = 0;
  FOCUS_CHECK_EQ(waitpid(pid, &status, 0), pid);
  FOCUS_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "phase " << name << " failed (status " << status << ")";
  FOCUS_CHECK_EQ(got, static_cast<ssize_t>(sizeof(result)));
  std::printf("  %-14s %8.2fs  VmHWM %6.1f MiB\n", name, result.seconds,
              static_cast<double>(result.vm_hwm_kib) / 1024.0);
  return result;
}

datagen::QuestParams DatasetParams(int64_t n, uint64_t seed) {
  // Same generating process (shared pattern table), independent samples —
  // the paper's "same distribution" pair, so the deviation is the
  // interesting small-but-nonzero kind.
  datagen::QuestParams params = bench::PaperQuestParams(n, 4000, 4, seed);
  params.pattern_seed = 1;
  return params;
}

int64_t WriteQuestBlocks(const datagen::QuestParams& params,
                         const std::string& path, int64_t block_size) {
  auto out = data::OpenBlockFileForWrite(path);
  FOCUS_CHECK(out != nullptr) << path;
  data::BlockTransactionDbWriter writer(*out, params.num_items, block_size);
  datagen::GenerateQuestTo(params, [&writer](std::span<const int32_t> items) {
    writer.Add(items);
  });
  writer.Finish();
  FOCUS_CHECK_EQ(writer.num_transactions(), params.num_transactions);
  return static_cast<int64_t>(out->tellp());
}

std::unique_ptr<data::BlockTransactionDb> OpenBlocks(
    const std::string& path, common::ThreadPool* pool) {
  data::BlockStoreOptions options;
  options.pool = pool;
  std::string error;
  auto db = data::BlockTransactionDb::OpenFile(path, options, &error);
  FOCUS_CHECK(db != nullptr) << error;
  return db;
}

int Run(int argc, char** argv) {
  int64_t budget_mib = 256;
  int64_t rlimit_as_mib = 0;
  int64_t block_size_kib = 1024;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--budget-mib=", 13) == 0) {
      budget_mib = std::atoll(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--rlimit-as-mib=", 16) == 0) {
      rlimit_as_mib = std::atoll(argv[i] + 16);
    } else if (std::strncmp(argv[i], "--block-size-kib=", 17) == 0) {
      block_size_kib = std::atoll(argv[i] + 17);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }
  const int64_t block_size = block_size_kib << 10;
  const bool full = common::GetEnvBool("FOCUS_FULL", false);
  const int64_t n = bench::ScaledCount(20000, 1000000);
  const datagen::QuestParams p1 = DatasetParams(n, /*seed=*/1);
  const datagen::QuestParams p2 = DatasetParams(n, /*seed=*/2);

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string dir = tmpdir != nullptr ? tmpdir : "/tmp";
  const std::string path1 =
      dir + "/ooc_mine_d1_" + std::to_string(getpid()) + ".fblk";
  const std::string path2 =
      dir + "/ooc_mine_d2_" + std::to_string(getpid()) + ".fblk";

  lits::AprioriOptions apriori;
  apriori.min_support = 0.01;
  apriori.max_itemset_size = 3;
  const core::DeviationFunction fn;

  std::printf("ooc_mine: 2 x %s, block_size %lld KiB, budget %lld MiB%s\n",
              p1.Name().c_str(), static_cast<long long>(block_size_kib),
              static_cast<long long>(budget_mib),
              rlimit_as_mib > 0 ? " (RLIMIT_AS capped)" : "");

  const PhaseResult gen =
      RunPhase("generate_block", rlimit_as_mib, [&]() {
        PhaseResult result;
        result.aux = WriteQuestBlocks(p1, path1, block_size) +
                     WriteQuestBlocks(p2, path2, block_size);
        return result;
      });

  const PhaseResult mine_block =
      RunPhase("mine_block", rlimit_as_mib, [&]() {
        common::ThreadPool pool(2);
        const auto d1 = OpenBlocks(path1, &pool);
        const auto d2 = OpenBlocks(path2, &pool);
        const data::TxnSourceRef s1(*d1);
        const data::TxnSourceRef s2(*d2);
        const lits::LitsModel m1 = lits::Apriori(s1, apriori);
        const lits::LitsModel m2 = lits::Apriori(s2, apriori);
        PhaseResult result;
        result.deviation = core::LitsDeviation(m1, s1, m2, s2, fn);
        result.aux = static_cast<int64_t>(m1.size() + m2.size());
        return result;
      });

  const PhaseResult mine_memory = RunPhase("mine_memory", 0, [&]() {
    const data::TransactionDb d1 = datagen::GenerateQuest(p1);
    const data::TransactionDb d2 = datagen::GenerateQuest(p2);
    const data::VerticalIndex i1(d1);
    const data::VerticalIndex i2(d2);
    const lits::LitsModel m1 = lits::Apriori(d1, apriori, i1);
    const lits::LitsModel m2 = lits::Apriori(d2, apriori, i2);
    PhaseResult result;
    result.deviation = core::LitsDeviation(m1, i1, m2, i2, fn);
    result.aux = static_cast<int64_t>(m1.size() + m2.size());
    return result;
  });

  std::remove(path1.c_str());
  std::remove(path2.c_str());

  // The two pipelines must agree bit for bit: same models (streamed
  // horizontal counting vs. vertical AND+popcount), same deviation.
  FOCUS_CHECK_EQ(mine_block.aux, mine_memory.aux);
  FOCUS_CHECK(mine_block.deviation == mine_memory.deviation)
      << mine_block.deviation << " vs " << mine_memory.deviation;

  const double block_hwm_mib =
      static_cast<double>(mine_block.vm_hwm_kib) / 1024.0;
  const double gen_hwm_mib = static_cast<double>(gen.vm_hwm_kib) / 1024.0;
  const double memory_hwm_mib =
      static_cast<double>(mine_memory.vm_hwm_kib) / 1024.0;
  if (full) {
    // The point of the exercise: the paper-scale mine fits the budget out
    // of core and does not fit it in memory.
    FOCUS_CHECK_LE(gen_hwm_mib, static_cast<double>(budget_mib));
    FOCUS_CHECK_LE(block_hwm_mib, static_cast<double>(budget_mib));
    FOCUS_CHECK_GT(memory_hwm_mib, static_cast<double>(budget_mib));
  }

  char line[768];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"ooc_mine\",\"transactions\":%lld,\"dataset\":\"%s\","
      "\"block_size_kib\":%lld,\"budget_mib\":%lld,"
      "\"generate_block_s\":%.3f,\"generate_block_vm_hwm_mib\":%.1f,"
      "\"block_file_mib\":%.1f,"
      "\"mine_block_s\":%.3f,\"mine_block_vm_hwm_mib\":%.1f,"
      "\"mine_block_txn_per_s\":%.0f,"
      "\"mine_memory_s\":%.3f,\"mine_memory_vm_hwm_mib\":%.1f,"
      "\"mine_memory_txn_per_s\":%.0f,"
      "\"frequent_itemsets\":%lld,\"deviation\":%.17g,\"checked\":true}",
      static_cast<long long>(n), p1.Name().c_str(),
      static_cast<long long>(block_size_kib),
      static_cast<long long>(budget_mib), gen.seconds, gen_hwm_mib,
      static_cast<double>(gen.aux) / (1024.0 * 1024.0), mine_block.seconds,
      block_hwm_mib,
      static_cast<double>(2 * n) / mine_block.seconds, mine_memory.seconds,
      memory_hwm_mib, static_cast<double>(2 * n) / mine_memory.seconds,
      static_cast<long long>(mine_block.aux), mine_block.deviation);
  bench::EmitBenchJson(line);
  return 0;
}

}  // namespace
}  // namespace focus

int main(int argc, char** argv) { return focus::Run(argc, argv); }

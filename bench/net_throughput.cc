// Network serving throughput: loopback HTTP clients driving the full
// stack (HttpServer event loop → HttpApi → MonitorService) with the mixed
// workload a deployment sees — snapshot ingest, deviation polls, and
// cache-served compares. Emits JSON lines:
//   {"bench":"net_throughput","config":…,"clients":N,"requests":…,
//    "seconds":…,"requests_per_sec":…,"accepted":…,"overloaded":…}

#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "datagen/quest_gen.h"
#include "io/data_io.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "serve/http_api.h"
#include "serve/metrics.h"
#include "serve/monitor_service.h"

namespace focus {
namespace {

data::TransactionDb SnapshotDb(int64_t num_transactions, uint64_t seed) {
  datagen::QuestParams params = bench::PaperQuestParams(
      num_transactions, /*num_patterns=*/500, /*pattern_length=*/4, seed);
  params.pattern_seed = 99;
  return datagen::GenerateQuest(params);
}

std::string Serialize(const data::TransactionDb& db) {
  std::ostringstream out;
  io::SaveTransactionDb(db, out);
  return out.str();
}

std::string JsonField(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return "";
  const size_t begin = at + needle.size();
  return json.substr(begin, json.find('"', begin) - begin);
}

// One benchmark configuration: `clients` concurrent keep-alive
// connections, each issuing ingest/deviation/compare in an 2:3:1 mix.
void RunConfig(const char* label, int clients, int requests_per_client,
               int64_t snapshot_size, int unique_snapshots) {
  serve::MonitorServiceOptions options;
  options.monitor.apriori.min_support = 0.02;
  options.monitor.apriori.max_itemset_size = 2;
  options.monitor.calibration_replicates = 3;
  options.monitor.significance.num_replicates = 5;
  options.num_threads = 4;
  options.queue_capacity = 32;
  serve::MetricsRegistry metrics;
  serve::MonitorService service(options, &metrics);
  const data::TransactionDb reference = SnapshotDb(snapshot_size, 1000);

  serve::HttpApiOptions api_options;
  serve::HttpApi api(api_options, &service, &reference, &metrics);
  net::HttpServer server(net::HttpServerOptions{}, api.BuildRouter());
  api.AttachServer(&server);
  if (!server.Start()) {
    std::fprintf(stderr, "net_throughput: cannot start server\n");
    return;
  }

  // Pre-serialize the snapshot pool so generation cost stays out of the
  // measured window; a small pool keeps the cache-hit mix realistic.
  std::vector<std::string> bodies;
  bodies.reserve(unique_snapshots);
  for (int i = 0; i < unique_snapshots; ++i) {
    bodies.push_back(Serialize(SnapshotDb(snapshot_size, 2000 + i)));
  }

  std::atomic<int64_t> accepted{0}, overloaded{0}, reads{0}, compares{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c]() {
      net::HttpClient client;
      if (!client.Connect("127.0.0.1", server.port())) return;
      const std::string stream = "s" + std::to_string(c % 4);
      std::string left, right;  // content hashes seen on this connection
      for (int i = 0; i < requests_per_client; ++i) {
        switch (i % 6) {
          case 0:
          case 3: {  // ingest
            const auto response = client.Post(
                "/v1/streams/" + stream + "/snapshots",
                bodies[(c + i) % bodies.size()], "text/plain");
            if (!response.has_value()) return;
            if (response->status == 202) {
              accepted.fetch_add(1);
              left = right;
              right = JsonField(response->body, "content_hash");
            } else {
              overloaded.fetch_add(1);
            }
            break;
          }
          case 5: {  // compare two previously ingested snapshots
            if (left.empty() || right.empty()) break;
            const auto response = client.Post(
                "/v1/compare?left=" + left + "&right=" + right, "",
                "text/plain");
            if (!response.has_value()) return;
            compares.fetch_add(1);
            break;
          }
          default: {  // deviation poll
            const auto response =
                client.Get("/v1/streams/" + stream + "/deviation");
            if (!response.has_value()) return;
            reads.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  service.Flush();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  server.Stop();
  service.Shutdown();

  const net::HttpServerStats stats = server.stats();
  const int64_t total = stats.requests_handled;
  char line[448];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"net_throughput\",\"config\":\"%s\",\"clients\":%d,"
      "\"requests\":%lld,\"snapshot_transactions\":%lld,\"seconds\":%.4f,"
      "\"requests_per_sec\":%.2f,\"ingest_accepted\":%lld,"
      "\"ingest_overloaded\":%lld,\"deviation_reads\":%lld,"
      "\"compares\":%lld,\"snapshots_processed\":%lld}",
      label, clients, static_cast<long long>(total),
      static_cast<long long>(snapshot_size), elapsed.count(),
      total / elapsed.count(), static_cast<long long>(accepted.load()),
      static_cast<long long>(overloaded.load()),
      static_cast<long long>(reads.load()),
      static_cast<long long>(compares.load()),
      static_cast<long long>(service.processed()));
  bench::EmitBenchJson(line);
}

int Run() {
  const int requests_per_client =
      static_cast<int>(bench::ScaledCount(60, 300));
  const int64_t snapshot_size = bench::ScaledCount(1000, 20000);
  RunConfig("mixed_8_clients", /*clients=*/8, requests_per_client,
            snapshot_size, /*unique_snapshots=*/8);
  RunConfig("mixed_16_clients", /*clients=*/16, requests_per_client,
            snapshot_size, /*unique_snapshots=*/8);
  return 0;
}

}  // namespace
}  // namespace focus

int main() { return focus::Run(); }

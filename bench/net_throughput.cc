// Network serving throughput: loopback HTTP clients driving the full
// stack with the mixed workload a deployment sees — snapshot ingest,
// deviation polls, and cache-served compares. Two front ends:
//   default      HttpServer event loop → HttpApi → MonitorService
//   --shards=N   N SO_REUSEPORT reactors → ShardedApi → ShardRouter →
//                N in-process ShardWorkers (full wire codec per call)
// Emits JSON lines:
//   {"bench":"net_throughput","config":…,"clients":N,"shards":…,
//    "requests":…,"seconds":…,"requests_per_sec":…,…}

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "datagen/quest_gen.h"
#include "io/data_io.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "serve/http_api.h"
#include "serve/metrics.h"
#include "serve/monitor_service.h"
#include "shard/shard_router.h"
#include "shard/shard_worker.h"
#include "shard/sharded_api.h"

namespace focus {
namespace {

data::TransactionDb SnapshotDb(int64_t num_transactions, uint64_t seed) {
  datagen::QuestParams params = bench::PaperQuestParams(
      num_transactions, /*num_patterns=*/500, /*pattern_length=*/4, seed);
  params.pattern_seed = 99;
  return datagen::GenerateQuest(params);
}

std::string Serialize(const data::TransactionDb& db) {
  std::ostringstream out;
  io::SaveTransactionDb(db, out);
  return out.str();
}

std::string JsonField(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return "";
  const size_t begin = at + needle.size();
  return json.substr(begin, json.find('"', begin) - begin);
}

serve::MonitorServiceOptions ServiceConfig() {
  serve::MonitorServiceOptions options;
  options.monitor.apriori.min_support = 0.02;
  options.monitor.apriori.max_itemset_size = 2;
  options.monitor.calibration_replicates = 3;
  options.monitor.significance.num_replicates = 5;
  options.num_threads = 4;
  options.queue_capacity = 32;
  return options;
}

struct DriveCounts {
  int64_t accepted = 0;
  int64_t overloaded = 0;
  int64_t reads = 0;
  int64_t compares = 0;
  double seconds = 0.0;
};

// Drives `clients` concurrent keep-alive connections against the server
// at `port`, each issuing ingest/deviation/compare in a 2:3:1 mix. Both
// front ends (single-loop HttpApi and the sharded reactors) see the
// identical byte stream. `flush` runs inside the measured window so the
// figure includes draining the ingest queue, as a real deployment would.
DriveCounts DriveClients(uint16_t port, int clients, int requests_per_client,
                         const std::vector<std::string>& bodies,
                         const std::function<void()>& flush) {
  std::atomic<int64_t> accepted{0}, overloaded{0}, reads{0}, compares{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c]() {
      net::HttpClient client;
      if (!client.Connect("127.0.0.1", port)) return;
      const std::string stream = "s" + std::to_string(c % 4);
      std::string left, right;  // content hashes seen on this connection
      for (int i = 0; i < requests_per_client; ++i) {
        switch (i % 6) {
          case 0:
          case 3: {  // ingest
            const auto response = client.Post(
                "/v1/streams/" + stream + "/snapshots",
                bodies[(c + i) % bodies.size()], "text/plain");
            if (!response.has_value()) return;
            if (response->status == 202) {
              accepted.fetch_add(1);
              left = right;
              right = JsonField(response->body, "content_hash");
            } else {
              overloaded.fetch_add(1);
            }
            break;
          }
          case 5: {  // compare two previously ingested snapshots
            if (left.empty() || right.empty()) break;
            const auto response = client.Post(
                "/v1/compare?left=" + left + "&right=" + right, "",
                "text/plain");
            if (!response.has_value()) return;
            compares.fetch_add(1);
            break;
          }
          default: {  // deviation poll
            const auto response =
                client.Get("/v1/streams/" + stream + "/deviation");
            if (!response.has_value()) return;
            reads.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  flush();
  DriveCounts counts;
  counts.accepted = accepted.load();
  counts.overloaded = overloaded.load();
  counts.reads = reads.load();
  counts.compares = compares.load();
  counts.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return counts;
}

void EmitLine(const char* label, int clients, int shards, int64_t total,
              int64_t snapshot_size, const DriveCounts& counts,
              int64_t processed) {
  // host_cpus qualifies the scaling numbers: reactors and shard workers
  // only run concurrently when the host has cores to put them on, so a
  // sharded figure from a 1-cpu container measures protocol overhead
  // (parity with the single loop), not scale-out.
  char line[448];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"net_throughput\",\"config\":\"%s\",\"clients\":%d,"
      "\"shards\":%d,\"host_cpus\":%u,\"requests\":%lld,"
      "\"snapshot_transactions\":%lld,"
      "\"seconds\":%.4f,\"requests_per_sec\":%.2f,\"ingest_accepted\":%lld,"
      "\"ingest_overloaded\":%lld,\"deviation_reads\":%lld,"
      "\"compares\":%lld,\"snapshots_processed\":%lld}",
      label, clients, shards, std::thread::hardware_concurrency(),
      static_cast<long long>(total),
      static_cast<long long>(snapshot_size), counts.seconds,
      total / counts.seconds, static_cast<long long>(counts.accepted),
      static_cast<long long>(counts.overloaded),
      static_cast<long long>(counts.reads),
      static_cast<long long>(counts.compares),
      static_cast<long long>(processed));
  bench::EmitBenchJson(line);
}

// Pre-serialize the snapshot pool so generation cost stays out of the
// measured window; a small pool keeps the cache-hit mix realistic.
std::vector<std::string> SnapshotPool(int unique_snapshots,
                                      int64_t snapshot_size) {
  std::vector<std::string> bodies;
  bodies.reserve(unique_snapshots);
  for (int i = 0; i < unique_snapshots; ++i) {
    bodies.push_back(Serialize(SnapshotDb(snapshot_size, 2000 + i)));
  }
  return bodies;
}

// Single event loop front end: HttpServer → HttpApi → MonitorService.
void RunConfig(const char* label, int clients, int requests_per_client,
               int64_t snapshot_size, int unique_snapshots) {
  serve::MetricsRegistry metrics;
  serve::MonitorService service(ServiceConfig(), &metrics);
  const data::TransactionDb reference = SnapshotDb(snapshot_size, 1000);

  serve::HttpApiOptions api_options;
  serve::HttpApi api(api_options, &service, &reference, &metrics);
  net::HttpServer server(net::HttpServerOptions{}, api.BuildRouter());
  api.AttachServer(&server);
  if (!server.Start()) {
    std::fprintf(stderr, "net_throughput: cannot start server\n");
    return;
  }

  const std::vector<std::string> bodies =
      SnapshotPool(unique_snapshots, snapshot_size);
  const DriveCounts counts =
      DriveClients(server.port(), clients, requests_per_client, bodies,
                   [&]() { service.Flush(); });
  server.Stop();
  service.Shutdown();

  EmitLine(label, clients, /*shards=*/0, server.stats().requests_handled,
           snapshot_size, counts, service.processed());
}

// Sharded front end: one SO_REUSEPORT reactor per shard, each running its
// own ShardedApi + ShardRouter over in-process ShardWorkers (the law
// tests pin that this path answers bit-identically to the single node).
// Every call still encodes and decodes full wire frames, so the protocol
// cost is measured; only the kernel socket hop is elided. Each shard owns
// a full MonitorService, as in a real scale-out deployment.
void RunShardedConfig(const char* label, int clients, int requests_per_client,
                      int64_t snapshot_size, int unique_snapshots,
                      int num_shards) {
  serve::MetricsRegistry metrics;
  const data::TransactionDb reference = SnapshotDb(snapshot_size, 1000);

  std::vector<std::unique_ptr<shard::ShardWorker>> workers;
  std::vector<std::unique_ptr<shard::LocalShardChannel>> channels;
  std::vector<shard::ShardChannel*> channel_ptrs;
  for (int s = 0; s < num_shards; ++s) {
    shard::ShardWorkerOptions worker_options;
    worker_options.shard_index = static_cast<uint32_t>(s);
    worker_options.service = ServiceConfig();
    workers.push_back(std::make_unique<shard::ShardWorker>(
        worker_options, &reference, &metrics));
    channels.push_back(
        std::make_unique<shard::LocalShardChannel>(workers.back().get()));
    channel_ptrs.push_back(channels.back().get());
  }

  // Reactors share one listening port via SO_REUSEPORT; the kernel
  // spreads connections across them. Each owns its router + api so shard
  // calls never serialize across reactors.
  struct Reactor {
    std::unique_ptr<shard::ShardRouter> router;
    std::unique_ptr<shard::ShardedApi> api;
    std::unique_ptr<net::HttpServer> server;
  };
  std::vector<Reactor> reactors(static_cast<size_t>(num_shards));
  uint16_t port = 0;
  for (size_t r = 0; r < reactors.size(); ++r) {
    reactors[r].router = std::make_unique<shard::ShardRouter>(channel_ptrs);
    shard::ShardedApiOptions api_options;
    api_options.reactor_index = static_cast<int>(r);
    reactors[r].api = std::make_unique<shard::ShardedApi>(
        api_options, reactors[r].router.get(), &metrics);
    net::HttpServerOptions server_options;
    server_options.port = port;
    server_options.reuse_port = reactors.size() > 1;
    reactors[r].server = std::make_unique<net::HttpServer>(
        server_options, reactors[r].api->BuildRouter());
    reactors[r].api->AttachServer(reactors[r].server.get());
    if (!reactors[r].server->Start()) {
      std::fprintf(stderr, "net_throughput: cannot start reactor %zu\n", r);
      return;
    }
    port = reactors[r].server->port();
  }

  const std::vector<std::string> bodies =
      SnapshotPool(unique_snapshots, snapshot_size);
  const DriveCounts counts =
      DriveClients(port, clients, requests_per_client, bodies, [&]() {
        for (auto& worker : workers) worker->service().Flush();
      });
  int64_t total = 0;
  for (auto& reactor : reactors) {
    total += reactor.server->stats().requests_handled;
  }
  for (auto& reactor : reactors) reactor.server->Stop();
  int64_t processed = 0;
  for (auto& worker : workers) {
    processed += worker->service().processed();
    worker->service().Shutdown();
  }

  EmitLine(label, clients, num_shards, total, snapshot_size, counts,
           processed);
}

int Run(int argc, char** argv) {
  int shards = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::atoi(argv[i] + 9);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: net_throughput [--shards=N]\n");
      return 2;
    }
  }

  const int requests_per_client =
      static_cast<int>(bench::ScaledCount(60, 300));
  const int64_t snapshot_size = bench::ScaledCount(1000, 20000);
  const int kClients[] = {8, 16, 64, 128};
  for (int clients : kClients) {
    char label[64];
    if (shards > 0) {
      std::snprintf(label, sizeof(label), "mixed_%d_clients_shards%d",
                    clients, shards);
      RunShardedConfig(label, clients, requests_per_client, snapshot_size,
                       /*unique_snapshots=*/8, shards);
    } else {
      std::snprintf(label, sizeof(label), "mixed_%d_clients", clients);
      RunConfig(label, clients, requests_per_client, snapshot_size,
                /*unique_snapshots=*/8);
    }
  }
  return 0;
}

}  // namespace
}  // namespace focus

int main(int argc, char** argv) { return focus::Run(argc, argv); }

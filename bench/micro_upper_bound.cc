// Ablation: the delta* upper bound (models only, Theorem 4.2) vs the exact
// deviation (one scan of each dataset). This is the speed/quality tradeoff
// behind Figure 13's timing columns.

#include <benchmark/benchmark.h>

#include "core/lits_deviation.h"
#include "core/lits_upper_bound.h"
#include "datagen/quest_gen.h"
#include "itemsets/apriori.h"

namespace focus {
namespace {

struct Setup {
  data::TransactionDb d1;
  data::TransactionDb d2;
  lits::LitsModel m1;
  lits::LitsModel m2;
};

Setup MakeSetup(int64_t n) {
  datagen::QuestParams params;
  params.num_transactions = n;
  params.avg_transaction_length = 12;
  params.num_items = 600;
  params.num_patterns = 1000;
  params.avg_pattern_length = 4;
  params.seed = 1;
  data::TransactionDb d1 = datagen::GenerateQuest(params);
  params.avg_pattern_length = 5;
  params.seed = 2;
  data::TransactionDb d2 = datagen::GenerateQuest(params);
  lits::AprioriOptions apriori;
  apriori.min_support = 0.01;
  lits::LitsModel m1 = lits::Apriori(d1, apriori);
  lits::LitsModel m2 = lits::Apriori(d2, apriori);
  return {std::move(d1), std::move(d2), std::move(m1), std::move(m2)};
}

void BM_ExactDeviation(benchmark::State& state) {
  const Setup setup = MakeSetup(state.range(0));
  core::DeviationFunction fn;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::LitsDeviation(setup.m1, setup.d1, setup.m2, setup.d2, fn));
  }
}
BENCHMARK(BM_ExactDeviation)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);

void BM_UpperBound(benchmark::State& state) {
  const Setup setup = MakeSetup(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::LitsUpperBound(setup.m1, setup.m2, core::AggregateKind::kSum));
  }
}
BENCHMARK(BM_UpperBound)->Arg(4000)->Arg(16000)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace focus

// Extension beyond the paper: the Section-6 representativeness study for
// the THIRD model class, cluster-models. Expected to mirror Figures 7-12:
// sample deviation decreases with sample fraction, with diminishing
// returns past SF ~ 0.2-0.3.

#include <algorithm>
#include <cstdio>
#include <random>

#include "bench_common.h"
#include "common/timer.h"
#include "core/sampling_study.h"
#include "stats/rng.h"

namespace focus::bench {
namespace {

data::Dataset CityBlobs(int64_t n, uint64_t seed) {
  const data::Schema schema(
      {data::Schema::Numeric("x", 0.0, 20.0), data::Schema::Numeric("y", 0.0, 20.0)},
      0);
  std::mt19937_64 rng = stats::MakeRng(seed);
  std::normal_distribution<double> noise(0.0, 0.9);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const double centers[][2] = {{4, 4}, {10, 12}, {16, 5}, {7, 16}};
  data::Dataset dataset(schema);
  dataset.Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    const auto& c = centers[static_cast<int>(unit(rng) * 4.0) % 4];
    dataset.AddRow(
        std::vector<double>{std::clamp(c[0] + noise(rng), 0.0, 19.999),
                            std::clamp(c[1] + noise(rng), 0.0, 19.999)},
        0);
  }
  return dataset;
}

void Run() {
  PrintHeader("Extension", "cluster-models: SD vs SF (beyond-paper study)",
              "same monotone shape as Figures 7-12, third model class");
  const int64_t n = ScaledCount(20000, 1000000);
  std::printf("measured at %lld rows, %d samples per fraction\n\n",
              static_cast<long long>(n), SamplesPerFraction(5));

  common::Timer timer;
  const data::Dataset dataset = CityBlobs(n, 1);
  core::ClusterStudyConfig config;
  config.grid_attributes = {0, 1};
  config.grid_bins = 20;
  config.density_threshold = 0.002;
  config.samples_per_fraction = SamplesPerFraction(5);
  config.seed = 7;
  const auto points = core::ClusterSampleStudy(dataset, config);
  PrintSdSeries("f_a,g_sum over grid-density cluster-models", points);

  const auto significances = core::StepSignificances(points);
  std::printf("\n");
  PrintSignificanceTable(points, significances);
  std::printf("\ntotal time: %.1fs\n", timer.Seconds());
}

}  // namespace
}  // namespace focus::bench

int main() {
  focus::bench::Run();
  return 0;
}

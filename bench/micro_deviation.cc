// Microbenchmarks for the deviation computations themselves: lits GCR
// extension, dt GCR routing, and the focussed variants.

#include <benchmark/benchmark.h>

#include "core/dt_deviation.h"
#include "core/focus_region.h"
#include "core/lits_deviation.h"
#include "datagen/class_gen.h"
#include "datagen/quest_gen.h"
#include "itemsets/apriori.h"
#include "tree/cart_builder.h"

namespace focus {
namespace {

void BM_LitsDeviation(benchmark::State& state) {
  datagen::QuestParams params;
  params.num_transactions = state.range(0);
  params.avg_transaction_length = 10;
  params.num_items = 500;
  params.num_patterns = 300;
  params.seed = 1;
  const data::TransactionDb d1 = datagen::GenerateQuest(params);
  params.seed = 2;
  params.avg_pattern_length = 5;
  const data::TransactionDb d2 = datagen::GenerateQuest(params);
  lits::AprioriOptions apriori;
  apriori.min_support = 0.02;
  const lits::LitsModel m1 = lits::Apriori(d1, apriori);
  const lits::LitsModel m2 = lits::Apriori(d2, apriori);
  core::DeviationFunction fn;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::LitsDeviation(m1, d1, m2, d2, fn));
  }
}
BENCHMARK(BM_LitsDeviation)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_DtDeviation(benchmark::State& state) {
  datagen::ClassGenParams params;
  params.num_rows = state.range(0);
  params.function = datagen::ClassFunction::kF2;
  params.seed = 1;
  const data::Dataset d1 = datagen::GenerateClassification(params);
  params.function = datagen::ClassFunction::kF3;
  params.seed = 2;
  const data::Dataset d2 = datagen::GenerateClassification(params);
  dt::CartOptions cart;
  cart.max_depth = 8;
  const core::DtModel m1(dt::BuildCart(d1, cart), d1);
  const core::DtModel m2(dt::BuildCart(d2, cart), d2);
  core::DtDeviationOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::DtDeviation(m1, d1, m2, d2, options));
  }
  state.counters["gcr_cells"] =
      static_cast<double>(core::DtGcr(m1, m2).num_regions());
}
BENCHMARK(BM_DtDeviation)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_DtDeviationFocused(benchmark::State& state) {
  datagen::ClassGenParams params;
  params.num_rows = 10000;
  params.function = datagen::ClassFunction::kF2;
  params.seed = 1;
  const data::Dataset d1 = datagen::GenerateClassification(params);
  params.function = datagen::ClassFunction::kF4;
  params.seed = 2;
  const data::Dataset d2 = datagen::GenerateClassification(params);
  dt::CartOptions cart;
  cart.max_depth = 8;
  const core::DtModel m1(dt::BuildCart(d1, cart), d1);
  const core::DtModel m2(dt::BuildCart(d2, cart), d2);
  core::DtDeviationOptions options;
  options.focus = core::NumericPredicate(datagen::ClassGenSchema(),
                                         datagen::ClassGenColumns::kAge, 20.0,
                                         40.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::DtDeviation(m1, d1, m2, d2, options));
  }
}
BENCHMARK(BM_DtDeviationFocused)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace focus

// Figure 13 (table): deviations between D = 1M.20L.1K.4000pats.4patlen and
// seven variants, with bootstrap significance, the delta* upper bound, and
// computation times. Paper's shape:
//   D(1) same distribution      -> small delta, low sig
//   D(2..4) different pats/len  -> large delta, 99% sig
//   D + block(6K,4) (pats only) -> NOT significant
//   D + block with new patlen   -> significant
//   delta* >= delta, computed in ~0 time.

#include <cstdio>
#include <optional>

#include "bench_common.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/lits_deviation.h"
#include "core/lits_upper_bound.h"
#include "core/significance.h"
#include "datagen/quest_gen.h"

namespace focus::bench {
namespace {

struct RowSpec {
  std::string label;
  data::TransactionDb db;
  // Set for the "D + block" rows: the appended block, qualified with the
  // snapshot-growth null (block resampled from D) instead of the pooled
  // two-sample null.
  std::optional<data::TransactionDb> block;
};

void Run() {
  PrintHeader("Figure 13", "lits-models: deviation table vs D",
              "same-distribution D(1): low sig; new patlen: 99% sig; "
              "appended block differing only in pats: NOT significant; "
              "delta* >= delta at ~zero cost");
  std::printf(
      "paper rows (delta, sig%%, delta*): D(1) 0.091/1  D(2) 3.22/99  "
      "D(3) 6.10/99  D(4) 6.01/99  D+d(5) 0.151/2  D+d(6) 0.276/99  "
      "D+d(7) 0.278/99\n\n");

  const int64_t n = ScaledCount(8000, 1000000);
  const int64_t block = n / 20;  // the paper's 50K blocks on 1M

  datagen::QuestParams base_params = PaperQuestParams(n, 4000, 4, /*seed=*/1);
  base_params.pattern_seed = 777;  // D's generating process
  const data::TransactionDb base = datagen::GenerateQuest(base_params);

  std::vector<RowSpec> rows;
  // D(1): SAME process (same pattern table), independent sample.
  datagen::QuestParams d1_params = PaperQuestParams(n / 2, 4000, 4, /*seed=*/2);
  d1_params.pattern_seed = 777;
  rows.push_back({"D(1) 0.5N.(4K,4)", datagen::GenerateQuest(d1_params), std::nullopt});
  rows.push_back({"D(2) N.(6K,4)",
                  datagen::GenerateQuest(PaperQuestParams(n, 6000, 4, 3)),
                  std::nullopt});
  rows.push_back({"D(3) N.(4K,5)",
                  datagen::GenerateQuest(PaperQuestParams(n, 4000, 5, 4)),
                  std::nullopt});
  rows.push_back({"D(4) N.(5K,5)",
                  datagen::GenerateQuest(PaperQuestParams(n, 5000, 5, 5)),
                  std::nullopt});
  // Extensions of D with small blocks (qualified with the block null).
  // Blocks share D's pattern stream (pattern_seed): a (6K,4) block then
  // EXTENDS D's pattern table — the paper's "differs only in pats" case —
  // while patlen 5 diverges the pattern chain immediately.
  auto add_block_row = [&](const std::string& label,
                           datagen::QuestParams params) {
    params.pattern_seed = 777;
    data::TransactionDb delta = datagen::GenerateQuest(params);
    data::TransactionDb extended = base;
    extended.Append(delta);
    rows.push_back({label, std::move(extended), std::move(delta)});
  };
  add_block_row("D+d(5) block (6K,4)", PaperQuestParams(block, 6000, 4, 6));
  add_block_row("D+d(6) block (4K,5)", PaperQuestParams(block, 4000, 5, 7));
  add_block_row("D+d(7) block (5K,5)", PaperQuestParams(block, 5000, 5, 8));

  lits::AprioriOptions apriori;
  apriori.min_support = 0.01;
  core::DeviationFunction fn;
  core::SignificanceOptions sig_options;
  sig_options.num_replicates = BootstrapReplicates();

  const lits::LitsModel base_model = lits::Apriori(base, apriori);

  common::TablePrinter table({"dataset", "delta", "sig(delta)%", "delta*",
                              "t(delta) s", "t(delta*) s"});
  for (RowSpec& row : rows) {
    common::Timer sig_timer;
    const core::SignificanceResult result =
        row.block.has_value()
            ? core::LitsBlockSignificance(base, *row.block, apriori, fn,
                                          sig_options)
            : core::LitsDeviationSignificance(base, row.db, apriori, fn,
                                              sig_options);
    const double sig_seconds = sig_timer.Seconds();

    common::Timer exact_timer;
    const lits::LitsModel other_model = lits::Apriori(row.db, apriori);
    const double exact =
        core::LitsDeviation(base_model, base, other_model, row.db, fn);
    const double exact_seconds = exact_timer.Seconds();
    (void)exact;

    common::Timer bound_timer;
    const double bound =
        core::LitsUpperBound(base_model, other_model, core::AggregateKind::kSum);
    const double bound_seconds = bound_timer.Seconds();

    table.AddRow({row.label, common::FormatDouble(result.deviation, 4),
                  common::FormatDouble(result.significance_percent, 0),
                  common::FormatDouble(bound, 4),
                  common::FormatDouble(exact_seconds, 2),
                  common::FormatDouble(bound_seconds, 4)});
    (void)sig_seconds;
  }
  table.Print();
  std::printf(
      "\nnote: t(delta) includes model build + GCR extension scans; "
      "t(delta*) uses the two models only (Theorem 4.2).\n");
}

}  // namespace
}  // namespace focus::bench

int main() {
  focus::bench::Run();
  return 0;
}

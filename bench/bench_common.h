#ifndef FOCUS_BENCH_BENCH_COMMON_H_
#define FOCUS_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/sampling_study.h"
#include "datagen/class_gen.h"
#include "datagen/quest_gen.h"

namespace focus::bench {

// Shared plumbing for the per-table/figure reproduction binaries.
//
// Workload scale: every binary prints the paper's reference rows and then
// the measured reproduction at a scaled-down default size (this box has a
// single core). Environment knobs:
//   FOCUS_SCALE=<float>  multiply default sizes (default 1.0)
//   FOCUS_FULL=1         use the paper's original sizes
//   FOCUS_SAMPLES=<int>  samples per fraction in SD studies (default 10;
//                        the paper uses 50)
//   FOCUS_REPLICATES=<n> bootstrap replicates for sig(delta) (default 9)

// Chooses a workload size: the paper's `paper_full` under FOCUS_FULL,
// otherwise `default_small` scaled by FOCUS_SCALE.
int64_t ScaledCount(int64_t default_small, int64_t paper_full);

// Machine-readable results: prints `json_line` to stdout and, when the
// FOCUS_BENCH_JSON environment variable names a file, appends the line to
// it as well (JSONL). This is how the checked-in BENCH_*.json records are
// produced and how the CI bench-smoke job keeps them parseable.
void EmitBenchJson(const std::string& json_line);

int SamplesPerFraction(int default_samples = 10);
int BootstrapReplicates(int default_replicates = 9);

// Prints the standard experiment banner.
void PrintHeader(const std::string& experiment_id, const std::string& title,
                 const std::string& paper_expectation);

// Quest parameters for the paper's N.20L.1K.4000pats.4patlen family.
datagen::QuestParams PaperQuestParams(int64_t num_transactions,
                                      int32_t num_patterns, double pattern_length,
                                      uint64_t seed);

// Classification parameters for the paper's NM.Fnum family.
datagen::ClassGenParams PaperClassParams(int64_t num_rows,
                                         datagen::ClassFunction function,
                                         uint64_t seed);

// Renders one SD-vs-SF series as "SF sd" rows under a caption.
void PrintSdSeries(const std::string& caption,
                   const std::vector<core::SampleStudyPoint>& points);

// Renders a significance table row like the paper's Table 1/2.
void PrintSignificanceTable(const std::vector<core::SampleStudyPoint>& points,
                            const std::vector<double>& significances);

// Figures 7-9: SD-vs-SF curves for lits-models at three minimum-support
// levels (0.01 / 0.008 / 0.006) on a dataset of the given size.
void RunLitsSdVsSfFigure(const std::string& figure_id, int64_t default_small,
                         int64_t paper_full);

// Figures 10-12: SD-vs-SF curves for dt-models, one series per
// classification function F1..F4, on a dataset of the given size.
void RunDtSdVsSfFigure(const std::string& figure_id, int64_t default_small,
                       int64_t paper_full);

}  // namespace focus::bench

#endif  // FOCUS_BENCH_BENCH_COMMON_H_

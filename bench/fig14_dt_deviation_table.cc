// Figure 14 (table): dt-model deviations between D = 1M.F1 and seven
// variants with bootstrap significance. Paper's shape: D(1) (same
// distribution) sig 10; F2/F3/F4 and every 50K-block extension sig 99.

#include <cstdio>
#include <optional>

#include "bench_common.h"
#include "common/table_printer.h"
#include "core/significance.h"
#include "datagen/class_gen.h"

namespace focus::bench {
namespace {

void Run() {
  PrintHeader("Figure 14", "dt-models: deviation table vs D",
              "D(1) same distribution: insignificant; F2-F4 and all "
              "appended blocks: 99% significant");
  std::printf(
      "paper rows (delta, sig%%): D(1) 0.0022/10  D(2) 1.21/99  D(3) 0.81/99"
      "  D(4) 1.48/99  D+d(5) 0.057/99  D+d(6) 0.037/99  D+d(7) 0.069/99\n\n");

  const int64_t n = ScaledCount(10000, 1000000);
  const int64_t block = n / 20;

  using datagen::ClassFunction;
  const data::Dataset base = datagen::GenerateClassification(
      PaperClassParams(n, ClassFunction::kF1, /*seed=*/1));

  struct RowSpec {
    std::string label;
    data::Dataset db;
    // Set for "D + block" rows: qualified with the snapshot-growth null.
    std::optional<data::Dataset> block;
  };
  std::vector<RowSpec> rows;
  rows.push_back({"D(1) 0.5N.F1",
                  datagen::GenerateClassification(
                      PaperClassParams(n / 2, ClassFunction::kF1, 2)),
                  std::nullopt});
  rows.push_back({"D(2) N.F2",
                  datagen::GenerateClassification(
                      PaperClassParams(n, ClassFunction::kF2, 3)),
                  std::nullopt});
  rows.push_back({"D(3) N.F3",
                  datagen::GenerateClassification(
                      PaperClassParams(n, ClassFunction::kF3, 4)),
                  std::nullopt});
  rows.push_back({"D(4) N.F4",
                  datagen::GenerateClassification(
                      PaperClassParams(n, ClassFunction::kF4, 5)),
                  std::nullopt});
  for (const ClassFunction f :
       {ClassFunction::kF2, ClassFunction::kF3, ClassFunction::kF4}) {
    data::Dataset delta = datagen::GenerateClassification(
        PaperClassParams(block, f, /*seed=*/static_cast<uint64_t>(f) + 10));
    data::Dataset extended = base;
    extended.Append(delta);
    char label[32];
    std::snprintf(label, sizeof(label), "D+d block F%d", static_cast<int>(f));
    rows.push_back({label, std::move(extended), std::move(delta)});
  }

  dt::CartOptions cart;
  cart.max_depth = 8;
  cart.min_leaf_size = 50;
  core::DeviationFunction fn;
  core::SignificanceOptions sig_options;
  sig_options.num_replicates = BootstrapReplicates();

  common::TablePrinter table({"dataset", "delta", "sig(delta)%"});
  for (RowSpec& row : rows) {
    const core::SignificanceResult result =
        row.block.has_value()
            ? core::DtBlockSignificance(base, *row.block, cart, fn, sig_options)
            : core::DtDeviationSignificance(base, row.db, cart, fn,
                                            sig_options);
    table.AddRow({row.label, common::FormatDouble(result.deviation, 4),
                  common::FormatDouble(result.significance_percent, 0)});
  }
  table.Print();
}

}  // namespace
}  // namespace focus::bench

int main() {
  focus::bench::Run();
  return 0;
}

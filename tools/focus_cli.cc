// focus_cli — command-line front end to the FOCUS library.
//
// Workflows mirror the paper's deployment story: generate or import data,
// mine/persist models, measure deviations (with the fast delta* bound),
// and qualify them statistically.
//
//   focus_cli gen-quest  --out D.txns [--transactions N] [--items I]
//                        [--patterns P] [--patlen L] [--txnlen T]
//                        [--seed S] [--pattern-seed S2]
//   focus_cli gen-class  --out D.data [--rows N] [--function 1..7]
//                        [--noise p] [--seed S]
//   focus_cli mine       --db D.txns --out M.model [--minsup s] [--maxk k]
//   focus_cli train      --data D.data --out T.tree [--max-depth d]
//                        [--min-leaf n]
//   focus_cli deviate    --db1 A.txns --db2 B.txns [--minsup s]
//                        [--f fa|fs] [--g sum|max] [--replicates R]
//   focus_cli deviate-dt --data1 A.data --data2 B.data [--max-depth d]
//                        [--f fa|fs] [--g sum|max] [--replicates R]
//   focus_cli bound      --model1 A.model --model2 B.model [--g sum|max]
//   focus_cli rank       --db1 A.txns --db2 B.txns [--minsup s] [--top n]
//
// Exit status: 0 on success, 1 on usage errors, 2 on I/O failures.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/flags.h"
#include "focus/focus.h"
#include "io/data_io.h"

namespace focus::cli {
namespace {

// Shared hardened parser (also used by focus_monitord): unknown flags and
// flags missing their value are hard errors, not silently ignored.
using common::Flags;

core::DeviationFunction ParseDeviationFunction(const Flags& flags) {
  core::DeviationFunction fn;
  const std::string f = flags.Get("f", "fa");
  fn.f = (f == "fs") ? core::ScaledDiff() : core::AbsoluteDiff();
  const std::string g = flags.Get("g", "sum");
  fn.g = (g == "max") ? core::AggregateKind::kMax : core::AggregateKind::kSum;
  return fn;
}

int GenQuest(const Flags& flags) {
  datagen::QuestParams params;
  params.num_transactions = flags.GetInt("transactions", 10000);
  params.num_items = static_cast<int32_t>(flags.GetInt("items", 1000));
  params.num_patterns = static_cast<int32_t>(flags.GetInt("patterns", 4000));
  params.avg_pattern_length = flags.GetDouble("patlen", 4);
  params.avg_transaction_length = flags.GetDouble("txnlen", 20);
  params.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  params.pattern_seed = static_cast<uint64_t>(flags.GetInt("pattern-seed", 0));
  const std::string out = flags.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "gen-quest requires --out\n");
    return 1;
  }
  const data::TransactionDb db = datagen::GenerateQuest(params);
  if (!io::SaveTransactionDbToFile(db, out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 2;
  }
  std::printf("wrote %s: %lld transactions (%s)\n", out.c_str(),
              static_cast<long long>(db.num_transactions()),
              params.Name().c_str());
  return 0;
}

int GenClass(const Flags& flags) {
  datagen::ClassGenParams params;
  params.num_rows = flags.GetInt("rows", 10000);
  const int64_t function = flags.GetInt("function", 1);
  if (function < 1 || function > 7) {
    std::fprintf(stderr, "--function must be 1..7\n");
    return 1;
  }
  params.function = static_cast<datagen::ClassFunction>(function);
  params.label_noise = flags.GetDouble("noise", 0.0);
  params.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::string out = flags.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "gen-class requires --out\n");
    return 1;
  }
  const data::Dataset dataset = datagen::GenerateClassification(params);
  if (!io::SaveDatasetToFile(dataset, out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 2;
  }
  std::printf("wrote %s: %lld rows (%s)\n", out.c_str(),
              static_cast<long long>(dataset.num_rows()),
              params.Name().c_str());
  return 0;
}

int Mine(const Flags& flags) {
  const auto db = io::LoadTransactionDbFromFile(flags.Get("db", ""));
  if (!db.has_value()) {
    std::fprintf(stderr, "cannot read --db\n");
    return 2;
  }
  lits::AprioriOptions options;
  options.min_support = flags.GetDouble("minsup", 0.01);
  options.max_itemset_size = static_cast<int>(flags.GetInt("maxk", 0));
  const std::string miner = flags.Get("miner", "apriori");
  if (miner != "apriori" && miner != "fpgrowth") {
    std::fprintf(stderr, "--miner must be apriori or fpgrowth\n");
    return 1;
  }
  const lits::LitsModel model = miner == "fpgrowth"
                                    ? lits::FpGrowth(*db, options)
                                    : lits::Apriori(*db, options);
  const std::string out = flags.Get("out", "");
  if (out.empty() || !io::SaveLitsModelToFile(model, out)) {
    std::fprintf(stderr, "cannot write --out\n");
    return 2;
  }
  std::printf("mined %lld frequent itemsets at minsup %.4f -> %s\n",
              static_cast<long long>(model.size()), options.min_support,
              out.c_str());
  return 0;
}

int Train(const Flags& flags) {
  const auto dataset = io::LoadDatasetFromFile(flags.Get("data", ""));
  if (!dataset.has_value()) {
    std::fprintf(stderr, "cannot read --data\n");
    return 2;
  }
  dt::CartOptions options;
  options.max_depth = static_cast<int>(flags.GetInt("max-depth", 8));
  options.min_leaf_size = flags.GetInt("min-leaf", 50);
  if (flags.Get("criterion", "gini") == "entropy") {
    options.criterion = dt::SplitCriterion::kEntropy;
  }
  const dt::DecisionTree tree = flags.Get("builder", "recursive") == "presorted"
                                    ? dt::BuildCartPresorted(*dataset, options)
                                    : dt::BuildCart(*dataset, options);
  const std::string out = flags.Get("out", "");
  if (out.empty() || !io::SaveDecisionTreeToFile(tree, out)) {
    std::fprintf(stderr, "cannot write --out\n");
    return 2;
  }
  std::printf("trained tree: %d leaves, depth %d, training ME %.4f -> %s\n",
              tree.num_leaves(), tree.Depth(),
              core::MisclassificationError(tree, *dataset), out.c_str());
  return 0;
}

int Deviate(const Flags& flags) {
  const auto d1 = io::LoadTransactionDbFromFile(flags.Get("db1", ""));
  const auto d2 = io::LoadTransactionDbFromFile(flags.Get("db2", ""));
  if (!d1.has_value() || !d2.has_value()) {
    std::fprintf(stderr, "cannot read --db1/--db2\n");
    return 2;
  }
  lits::AprioriOptions apriori;
  apriori.min_support = flags.GetDouble("minsup", 0.01);
  const core::DeviationFunction fn = ParseDeviationFunction(flags);

  const lits::LitsModel m1 = lits::Apriori(*d1, apriori);
  const lits::LitsModel m2 = lits::Apriori(*d2, apriori);
  std::printf("delta  = %.6f\n", core::LitsDeviation(m1, *d1, m2, *d2, fn));
  std::printf("delta* = %.6f\n", core::LitsUpperBound(m1, m2, fn.g));

  const int replicates = static_cast<int>(flags.GetInt("replicates", 0));
  if (replicates > 0) {
    core::SignificanceOptions options;
    options.num_replicates = replicates;
    const auto result =
        core::LitsDeviationSignificance(*d1, *d2, apriori, fn, options);
    std::printf("sig(delta) = %.1f%% over %d bootstrap replicates\n",
                result.significance_percent, replicates);
  }
  return 0;
}

int DeviateDt(const Flags& flags) {
  const auto d1 = io::LoadDatasetFromFile(flags.Get("data1", ""));
  const auto d2 = io::LoadDatasetFromFile(flags.Get("data2", ""));
  if (!d1.has_value() || !d2.has_value()) {
    std::fprintf(stderr, "cannot read --data1/--data2\n");
    return 2;
  }
  dt::CartOptions cart;
  cart.max_depth = static_cast<int>(flags.GetInt("max-depth", 8));
  cart.min_leaf_size = flags.GetInt("min-leaf", 50);
  const core::DeviationFunction fn = ParseDeviationFunction(flags);

  const core::DtModel m1(dt::BuildCart(*d1, cart), *d1);
  const core::DtModel m2(dt::BuildCart(*d2, cart), *d2);
  core::DtDeviationOptions options;
  options.fn = fn;
  std::printf("delta = %.6f\n", core::DtDeviation(m1, *d1, m2, *d2, options));
  std::printf("ME(tree(D1), D2) = %.4f\n",
              core::MisclassificationError(m1.tree(), *d2));

  const int replicates = static_cast<int>(flags.GetInt("replicates", 0));
  if (replicates > 0) {
    core::SignificanceOptions sig_options;
    sig_options.num_replicates = replicates;
    const auto result =
        core::DtDeviationSignificance(*d1, *d2, cart, fn, sig_options);
    std::printf("sig(delta) = %.1f%% over %d bootstrap replicates\n",
                result.significance_percent, replicates);
  }
  return 0;
}

int Bound(const Flags& flags) {
  const auto m1 = io::LoadLitsModelFromFile(flags.Get("model1", ""));
  const auto m2 = io::LoadLitsModelFromFile(flags.Get("model2", ""));
  if (!m1.has_value() || !m2.has_value()) {
    std::fprintf(stderr, "cannot read --model1/--model2\n");
    return 2;
  }
  const core::AggregateKind g = flags.Get("g", "sum") == "max"
                                    ? core::AggregateKind::kMax
                                    : core::AggregateKind::kSum;
  std::printf("delta* = %.6f\n", core::LitsUpperBound(*m1, *m2, g));
  return 0;
}

int Rank(const Flags& flags) {
  const auto d1 = io::LoadTransactionDbFromFile(flags.Get("db1", ""));
  const auto d2 = io::LoadTransactionDbFromFile(flags.Get("db2", ""));
  if (!d1.has_value() || !d2.has_value()) {
    std::fprintf(stderr, "cannot read --db1/--db2\n");
    return 2;
  }
  lits::AprioriOptions apriori;
  apriori.min_support = flags.GetDouble("minsup", 0.01);
  const lits::LitsModel m1 = lits::Apriori(*d1, apriori);
  const lits::LitsModel m2 = lits::Apriori(*d2, apriori);
  const auto ranked = core::RankLitsRegions(core::LitsGcr(m1, m2), m1, *d1,
                                            m2, *d2, core::AbsoluteDiff());
  const size_t top = static_cast<size_t>(flags.GetInt("top", 10));
  for (const auto& entry : core::SelectTopN(ranked, top)) {
    std::printf("%-24s %.4f -> %.4f  |diff| %.4f\n",
                entry.itemset.ToString().c_str(), entry.support1,
                entry.support2, entry.deviation);
  }
  return 0;
}

// focus_cli embed --models a.model,b.model,... [--dims 2]
// FastMap embedding of a model collection over the delta* metric
// (§4.1.1's visual-comparison use).
int Embed(const Flags& flags) {
  const std::string list = flags.Get("models", "");
  if (list.empty()) {
    std::fprintf(stderr, "embed requires --models a.model,b.model,...\n");
    return 1;
  }
  std::vector<std::string> paths;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) paths.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (paths.size() < 2) {
    std::fprintf(stderr, "embed needs at least two models\n");
    return 1;
  }
  std::vector<lits::LitsModel> models;
  for (const std::string& path : paths) {
    auto model = io::LoadLitsModelFromFile(path);
    if (!model.has_value()) {
      std::fprintf(stderr, "cannot read model %s\n", path.c_str());
      return 2;
    }
    models.push_back(std::move(*model));
  }
  const int dims = static_cast<int>(flags.GetInt("dims", 2));
  const auto matrix = core::LitsUpperBoundMatrix(models, core::AggregateKind::kSum);
  const core::FastMapResult embedded = core::FastMapEmbedding(matrix, dims);
  for (size_t i = 0; i < paths.size(); ++i) {
    std::printf("%s", paths[i].c_str());
    for (double c : embedded.coordinates[i]) std::printf(" %.6f", c);
    std::printf("\n");
  }
  return 0;
}

// focus_cli monitor --reference D.txns --snapshots a.txns,b.txns,...
//                   [--minsup s] [--factor 2.0] [--replicates 9]
// Two-stage snapshot monitoring (delta* screen, then exact deviation +
// significance) over a list of snapshot files.
int MonitorCmd(const Flags& flags) {
  const auto reference =
      io::LoadTransactionDbFromFile(flags.Get("reference", ""));
  if (!reference.has_value()) {
    std::fprintf(stderr, "cannot read --reference\n");
    return 2;
  }
  const std::string list = flags.Get("snapshots", "");
  std::vector<std::string> paths;
  size_t start = 0;
  while (start <= list.size() && !list.empty()) {
    const size_t comma = list.find(',', start);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) paths.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (paths.empty()) {
    std::fprintf(stderr, "monitor requires --snapshots a.txns,b.txns,...\n");
    return 1;
  }
  core::MonitorOptions options;
  options.apriori.min_support = flags.GetDouble("minsup", 0.01);
  options.alert_factor = flags.GetDouble("factor", 2.0);
  options.significance.num_replicates =
      static_cast<int>(flags.GetInt("replicates", 9));
  const core::LitsChangeMonitor monitor(*reference, options);
  std::printf("alert threshold (delta*): %.4f\n", monitor.alert_threshold());
  std::printf("%-24s %10s %8s %10s %6s %s\n", "snapshot", "delta*", "screen",
              "delta", "sig%", "verdict");
  for (const std::string& path : paths) {
    const auto snapshot = io::LoadTransactionDbFromFile(path);
    if (!snapshot.has_value()) {
      std::fprintf(stderr, "cannot read snapshot %s\n", path.c_str());
      return 2;
    }
    const core::MonitorReport report = monitor.Inspect(*snapshot);
    if (report.screened_out) {
      std::printf("%-24s %10.4f %8s %10s %6s %s\n", path.c_str(),
                  report.upper_bound, "skip", "-", "-", "quiet");
    } else {
      std::printf("%-24s %10.4f %8s %10.4f %6.0f %s\n", path.c_str(),
                  report.upper_bound, "test", report.deviation,
                  report.significance_percent,
                  report.alert ? "ALERT" : "within noise");
    }
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: focus_cli <gen-quest|gen-class|mine|train|deviate|"
               "deviate-dt|bound|rank|embed|monitor> [--flag value ...]\n"
               "see the header of tools/focus_cli.cc for full flag lists\n");
  return 1;
}

struct Command {
  const char* name;
  std::vector<std::string> allowed_flags;
  int (*run)(const Flags&);
};

const std::vector<Command>& Commands() {
  static const std::vector<Command> commands = {
      {"gen-quest",
       {"out", "transactions", "items", "patterns", "patlen", "txnlen", "seed",
        "pattern-seed"},
       GenQuest},
      {"gen-class", {"out", "rows", "function", "noise", "seed"}, GenClass},
      {"mine", {"db", "out", "minsup", "maxk", "miner"}, Mine},
      {"train",
       {"data", "out", "max-depth", "min-leaf", "criterion", "builder"},
       Train},
      {"deviate", {"db1", "db2", "minsup", "f", "g", "replicates"}, Deviate},
      {"deviate-dt",
       {"data1", "data2", "max-depth", "min-leaf", "f", "g", "replicates"},
       DeviateDt},
      {"bound", {"model1", "model2", "g"}, Bound},
      {"rank", {"db1", "db2", "minsup", "top"}, Rank},
      {"embed", {"models", "dims"}, Embed},
      {"monitor",
       {"reference", "snapshots", "minsup", "factor", "replicates"},
       MonitorCmd},
  };
  return commands;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  for (const Command& candidate : Commands()) {
    if (command != candidate.name) continue;
    const auto flags =
        Flags::Parse(argc, argv, 2, candidate.allowed_flags);
    if (!flags.has_value()) return 1;
    return candidate.run(*flags);
  }
  return Usage();
}

}  // namespace
}  // namespace focus::cli

int main(int argc, char** argv) { return focus::cli::Main(argc, argv); }

// focus_monitord — streaming deviation-monitoring daemon.
//
// Watches a spool directory for incoming `focus-txns-v1` snapshot files,
// feeds them through the serve::MonitorService (two-stage delta* screen,
// bootstrap significance, CUSUM change-points), and appends alert events
// and metrics snapshots to JSONL logs.
//
//   focus_monitord --spool DIR --reference R.txns
//     [--minsup 0.01] [--factor 2.0] [--replicates 9] [--calibration 5]
//     [--warmup 5] [--slack 0.5] [--decision 5.0]
//     [--threads 4] [--queue 64] [--cache 64]
//     [--ooc 1]          (out-of-core ingest: each spool snapshot is
//                         stream-converted into a block file and served to
//                         the monitor block-by-block, never materialized
//                         flat; snapshot indexes use the roaring backend so
//                         ingest memory is bounded by the block cache plus
//                         occurrence-proportional index state. Reports are
//                         bit-identical to flat ingest.)
//     [--block-size-kib 1024]   (--ooc block size)
//     [--events PATH]    (default <spool>/events.jsonl)
//     [--metrics PATH]   (default <spool>/metrics.jsonl)
//     [--prom PATH]      (Prometheus textfile, atomically rewritten on
//                         every metrics tick; for node_exporter's
//                         textfile collector)
//     [--poll-ms 200] [--metrics-every-ms 2000]
//     [--once 1] [--max-snapshots N] [--idle-exit-ms M]
//
// Spool protocol: snapshot files are named `<stream>__<anything>.txns`
// (files without the `__` separator feed the stream "default"). Files in
// one stream are processed in lexicographic filename order — use a
// zero-padded sequence number. A consumed file moves to
// <spool>/processed/, a malformed one to <spool>/rejected/, so restarts
// never double-count.
//
// Exit conditions: --once scans the spool once, drains, and exits;
// --max-snapshots exits after N accepted snapshots; --idle-exit-ms exits
// after that long without new files. With none of these the daemon runs
// until killed.
//
// Exit status: 0 on success, 1 on usage errors, 2 on I/O failures.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/flags.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "data/block_store.h"
#include "data/block_txn_db.h"
#include "io/data_io.h"
#include "serve/metrics.h"
#include "serve/monitor_service.h"

namespace focus::daemon {
namespace {

namespace fs = std::filesystem;

// Stream name encoded in a spool filename: `<stream>__rest.txns`.
std::string StreamOfFile(const fs::path& path) {
  const std::string stem = path.stem().string();
  const size_t sep = stem.find("__");
  return sep == std::string::npos ? "default" : stem.substr(0, sep);
}

// Rewrites a Prometheus textfile atomically (write tmp, rename) so a
// scraping textfile collector never reads a torn file.
bool WritePromFile(const std::string& path,
                   const serve::MetricsRegistry& metrics) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << metrics.ToPrometheusText();
    if (!out.flush()) return false;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  return !ec;
}

// --ooc ingest: stream-converts one text spool snapshot into a block file
// beside it, opens the result as an out-of-core database, and unlinks the
// block path immediately (the reader's open stream keeps the inode alive),
// so neither a crash nor normal processing leaves block files behind.
// Null + `*error` on malformed input — same strictness as the flat loader.
std::shared_ptr<const data::BlockTransactionDb> OpenSpoolSnapshotBlocks(
    const fs::path& path, int64_t block_size, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open file";
    return nullptr;
  }
  const std::string block_path = path.string() + ".fblk";
  {
    const auto out = data::OpenBlockFileForWrite(block_path);
    if (out == nullptr) {
      *error = "cannot create block file";
      return nullptr;
    }
    if (!io::ConvertTransactionTextToBlocks(in, *out, block_size, error)) {
      std::remove(block_path.c_str());
      return nullptr;
    }
  }
  data::BlockStoreOptions options;
  options.block_size = block_size;
  std::string open_error;
  std::shared_ptr<const data::BlockTransactionDb> db =
      data::BlockTransactionDb::OpenFile(block_path, options, &open_error);
  std::remove(block_path.c_str());
  if (db == nullptr) *error = "block reopen: " + open_error;
  return db;
}

// Appends one JSONL line, flushing so tail -f and crash recovery see it.
class JsonlWriter {
 public:
  explicit JsonlWriter(const std::string& path)
      : out_(path, std::ios::app), path_(path) {}

  bool ok() const { return static_cast<bool>(out_); }
  const std::string& path() const { return path_; }

  // Serialized: the event sink thread and the metrics ticker both append.
  void WriteLine(const std::string& json) EXCLUDES(mutex_) {
    common::MutexLock lock(&mutex_);
    out_ << json << '\n';
    out_.flush();
  }

 private:
  common::Mutex mutex_;
  std::ofstream out_ GUARDED_BY(mutex_);
  std::string path_;
};

int Run(const common::Flags& flags) {
  const std::string spool = flags.Get("spool", "");
  const std::string reference_path = flags.Get("reference", "");
  if (spool.empty() || reference_path.empty()) {
    std::fprintf(stderr, "focus_monitord requires --spool and --reference\n");
    return 1;
  }
  std::error_code ec;
  fs::create_directories(fs::path(spool) / "processed", ec);
  fs::create_directories(fs::path(spool) / "rejected", ec);
  if (ec) {
    std::fprintf(stderr, "cannot prepare spool directory %s\n", spool.c_str());
    return 2;
  }

  const auto reference = io::LoadTransactionDbFromFile(reference_path);
  if (!reference.has_value()) {
    std::fprintf(stderr, "cannot read --reference %s\n",
                 reference_path.c_str());
    return 2;
  }

  serve::MonitorServiceOptions options;
  options.monitor.apriori.min_support = flags.GetDouble("minsup", 0.01);
  options.monitor.alert_factor = flags.GetDouble("factor", 2.0);
  options.monitor.calibration_replicates =
      static_cast<int>(flags.GetInt("calibration", 5));
  options.monitor.significance.num_replicates =
      static_cast<int>(flags.GetInt("replicates", 9));
  options.cusum.warmup = static_cast<int>(flags.GetInt("warmup", 5));
  options.cusum.slack = flags.GetDouble("slack", 0.5);
  options.cusum.decision_threshold = flags.GetDouble("decision", 5.0);
  options.num_threads = static_cast<int>(flags.GetInt("threads", 4));
  options.queue_capacity = static_cast<size_t>(flags.GetInt("queue", 64));
  options.model_cache_capacity =
      static_cast<size_t>(flags.GetInt("cache", 64));
  const bool ooc = flags.GetInt("ooc", 0) != 0;
  const int64_t block_size =
      std::max<int64_t>(1, flags.GetInt("block-size-kib", 1024)) * 1024;
  if (ooc) {
    // Occurrence-proportional snapshot indexes keep --ooc ingest memory
    // bounded; reports stay bit-identical to the flat backend.
    options.index_backend = data::IndexBackend::kRoaring;
  }

  JsonlWriter events(flags.Get("events", spool + "/events.jsonl"));
  JsonlWriter metrics_log(flags.Get("metrics", spool + "/metrics.jsonl"));
  const std::string prom_path = flags.Get("prom", "");
  if (!events.ok() || !metrics_log.ok()) {
    std::fprintf(stderr, "cannot open event/metrics logs for append\n");
    return 2;
  }

  serve::MetricsRegistry metrics;
  serve::MonitorService service(options, &metrics);
  service.SetEventSink([&events](const serve::StreamEvent& event) {
    events.WriteLine(event.ToJson());
    if (event.change_point || event.report.alert) {
      std::printf("[%s #%lld] %s%s delta*=%.4f cusum=%.2f\n",
                  event.stream.c_str(),
                  static_cast<long long>(event.sequence),
                  event.report.alert ? "ALERT " : "",
                  event.change_point ? "CHANGE-POINT" : "",
                  event.report.upper_bound, event.cusum);
    }
  });

  const bool once = flags.GetInt("once", 0) != 0;
  const int64_t max_snapshots = flags.GetInt("max-snapshots", 0);
  const int64_t idle_exit_ms = flags.GetInt("idle-exit-ms", 0);
  const int64_t poll_ms = std::max<int64_t>(1, flags.GetInt("poll-ms", 200));
  const int64_t metrics_every_ms = flags.GetInt("metrics-every-ms", 2000);

  std::printf("focus_monitord: spool=%s reference=%s (%lld txns) threads=%d\n",
              spool.c_str(), reference_path.c_str(),
              static_cast<long long>(reference->num_transactions()),
              options.num_threads);

  std::unordered_map<std::string, int64_t> next_sequence;
  int64_t accepted = 0;
  int64_t idle_ms = 0;
  int64_t since_metrics_ms = metrics_every_ms;  // emit one snapshot upfront

  for (;;) {
    // One spool scan: pick up *.txns files in lexicographic order.
    std::vector<fs::path> batch;
    for (const auto& entry : fs::directory_iterator(spool, ec)) {
      if (ec) break;
      if (!entry.is_regular_file()) continue;
      if (entry.path().extension() != ".txns") continue;
      batch.push_back(entry.path());
    }
    std::sort(batch.begin(), batch.end());

    for (const fs::path& path : batch) {
      std::string load_error;
      const std::string name = path.filename().string();
      serve::Snapshot snapshot;
      bool loaded = false;
      if (ooc) {
        snapshot.block_db =
            OpenSpoolSnapshotBlocks(path, block_size, &load_error);
        loaded = snapshot.block_db != nullptr;
      } else {
        auto snapshot_db =
            io::LoadTransactionDbFromFile(path.string(), &load_error);
        if (snapshot_db.has_value()) {
          snapshot.db = std::move(*snapshot_db);
          loaded = true;
        }
      }
      if (!loaded) {
        metrics.GetCounter("spool_rejected_files").Increment();
        fs::rename(path, fs::path(spool) / "rejected" / name, ec);
        std::fprintf(stderr, "rejected malformed snapshot %s: %s\n",
                     name.c_str(), load_error.c_str());
        continue;
      }
      const std::string stream = StreamOfFile(path);
      if (!service.HasStream(stream)) {
        std::printf("new stream '%s': calibrating against reference…\n",
                    stream.c_str());
        service.AddStream(stream, *reference);
      }
      snapshot.stream = stream;
      snapshot.sequence = next_sequence[stream]++;
      snapshot.source = name;
      service.Submit(std::move(snapshot));  // blocks on backpressure
      fs::rename(path, fs::path(spool) / "processed" / name, ec);
      ++accepted;
    }

    if (!batch.empty()) idle_ms = 0;

    if (since_metrics_ms >= metrics_every_ms) {
      metrics_log.WriteLine(metrics.ToJson());
      if (!prom_path.empty() && !WritePromFile(prom_path, metrics)) {
        std::fprintf(stderr, "cannot write --prom %s\n", prom_path.c_str());
      }
      since_metrics_ms = 0;
    }

    if (once || (max_snapshots > 0 && accepted >= max_snapshots) ||
        (idle_exit_ms > 0 && idle_ms >= idle_exit_ms)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    idle_ms += poll_ms;
    since_metrics_ms += poll_ms;
  }

  service.Flush();
  service.Shutdown();
  metrics_log.WriteLine(metrics.ToJson());
  if (!prom_path.empty() && !WritePromFile(prom_path, metrics)) {
    std::fprintf(stderr, "cannot write --prom %s\n", prom_path.c_str());
  }
  std::printf(
      "focus_monitord: %lld snapshots accepted, %lld processed; events -> %s, "
      "metrics -> %s\n",
      static_cast<long long>(accepted),
      static_cast<long long>(service.processed()), events.path().c_str(),
      metrics_log.path().c_str());
  return 0;
}

}  // namespace
}  // namespace focus::daemon

int main(int argc, char** argv) {
  const auto flags = focus::common::Flags::Parse(
      argc, argv, 1,
      {"spool", "reference", "minsup", "factor", "replicates", "calibration",
       "warmup", "slack", "decision", "threads", "queue", "cache", "ooc",
       "block-size-kib", "events", "metrics", "prom", "poll-ms",
       "metrics-every-ms", "once", "max-snapshots", "idle-exit-ms"});
  if (!flags.has_value()) return 1;
  return focus::daemon::Run(*flags);
}

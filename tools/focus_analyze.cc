// focus_analyze — the repo's static-analysis pipeline (successor to
// focus_lint). Stages: strip -> lex -> parse -> symbols -> dataflow ->
// checkers -> driver; docs/STATIC_ANALYSIS.md documents the checker
// catalog and the allow() escape hatch.
//
// Usage: focus_analyze [--root DIR] [--list-checkers] [paths...]
// Exit status: 0 clean, 1 findings, 2 usage or I/O errors.

#include "analyze/driver.h"

int main(int argc, char** argv) {
  return focus::analyze::AnalyzerMain(argc, argv, "focus_analyze");
}

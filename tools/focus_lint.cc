// focus_lint — repo-specific static checks the compiler cannot express.
//
// Clang's thread-safety analysis proves lock discipline
// (common/thread_annotations.h); this tool enforces the FOCUS-specific
// invariants on top of it:
//
//   raw-mutex                std synchronization primitives outside
//                            src/common/ (use common::Mutex / MutexLock /
//                            CondVar so the annotations keep working)
//   naked-mt19937            mt19937 engines constructed directly instead
//                            of through stats::MakeRng (breaks
//                            deterministic replay / seed derivation)
//   std-function-in-hot-loop std::function inside a loop body in core/,
//                            itemsets/, tree/ (type-erased calls defeat
//                            inlining in the per-row scan kernels)
//   unchecked-strtol         strto* with a null end pointer — or atoi
//                            and friends, which cannot report errors —
//                            in src/io/ (loaders must reject malformed
//                            numbers, PR-2 contract)
//
// Matching runs on a "code view" of each file with comments and string
// literals blanked out, so prose and patterns in strings never trip a
// rule. Escape hatch, same line or the line above the construct:
//
//   // focus-lint: allow(rule-name)  — why it is fine here
//
// Usage: focus_lint [--root DIR] [--list-rules] [paths...]
//   With no paths: scans src/ tools/ tests/ bench/ fuzz/ examples/ under
//   --root (default "."), skipping build trees, fuzz corpora, and
//   tests/lint_fixtures (the rules' own negative test data). Rule
//   applicability is decided by each file's path relative to --root.
// Exit status: 0 clean, 1 findings, 2 usage or I/O errors.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace focus::lint {
namespace {

namespace fs = std::filesystem;

struct Diagnostic {
  std::string file;  // display path
  int line = 0;
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------------
// Comment / string stripping.

struct StrippedFile {
  // Code with comments, string literals, and char literals replaced by
  // spaces; line structure preserved.
  std::vector<std::string> code;
  // The text of comments on each line (for allow() directives).
  std::vector<std::string> comments;
};

StrippedFile Strip(const std::string& text) {
  StrippedFile out;
  std::string code_line, comment_line;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  const size_t n = text.size();
  for (size_t i = 0; i < n; ++i) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';
    if (c == '\n') {
      out.code.push_back(code_line);
      out.comments.push_back(comment_line);
      code_line.clear();
      comment_line.clear();
      if (state == State::kLineComment) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (code_line.empty() ||
                    (!std::isalnum(static_cast<unsigned char>(
                         code_line.back())) &&
                     code_line.back() != '_'))) {
          // Raw string literal: R"delim( ... )delim"
          size_t j = i + 2;
          raw_delim.clear();
          while (j < n && text[j] != '(') raw_delim += text[j++];
          state = State::kRawString;
          code_line += ' ';
          code_line.append(j - i, ' ');
          i = j;  // at '('
        } else if (c == '"') {
          state = State::kString;
          code_line += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          code_line += ' ';
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        code_line += ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line += "  ";
          ++i;
        } else {
          comment_line += c;
          code_line += ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          code_line += ' ';
        } else {
          code_line += ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          code_line += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          code_line += ' ';
        } else {
          code_line += ' ';
        }
        break;
      case State::kRawString: {
        const std::string close = ")" + raw_delim + "\"";
        if (text.compare(i, close.size(), close) == 0) {
          state = State::kCode;
          code_line.append(close.size(), ' ');
          i += close.size() - 1;
        } else {
          code_line += ' ';
        }
        break;
      }
    }
  }
  out.code.push_back(code_line);
  out.comments.push_back(comment_line);
  return out;
}

// ---------------------------------------------------------------------------
// Tokenization (over the code view). Qualified identifiers are merged:
// "std :: mutex" becomes one token "std::mutex".

struct Token {
  std::string text;
  int line = 0;  // 1-based
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<Token> Tokenize(const StrippedFile& stripped) {
  std::vector<Token> tokens;
  for (size_t row = 0; row < stripped.code.size(); ++row) {
    const std::string& line = stripped.code[row];
    size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (IsIdentStart(c)) {
        size_t j = i + 1;
        while (j < line.size() && IsIdentChar(line[j])) ++j;
        tokens.push_back({line.substr(i, j - i), static_cast<int>(row) + 1});
        i = j;
        continue;
      }
      if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
        tokens.push_back({"::", static_cast<int>(row) + 1});
        i += 2;
        continue;
      }
      tokens.push_back({std::string(1, c), static_cast<int>(row) + 1});
      ++i;
    }
  }
  // Merge qualified names: id :: id (:: id)* — line number of the first
  // component wins.
  std::vector<Token> merged;
  size_t i = 0;
  while (i < tokens.size()) {
    if (IsIdentStart(tokens[i].text[0])) {
      Token qualified = tokens[i];
      size_t j = i + 1;
      while (j + 1 < tokens.size() && tokens[j].text == "::" &&
             IsIdentStart(tokens[j + 1].text[0])) {
        qualified.text += "::" + tokens[j + 1].text;
        j += 2;
      }
      merged.push_back(std::move(qualified));
      i = j;
      continue;
    }
    merged.push_back(tokens[i]);
    ++i;
  }
  return merged;
}

// ---------------------------------------------------------------------------
// allow() directives.

// Rules suppressed on each line (1-based) via `focus-lint: allow(...)` on
// that line or the line directly above.
std::unordered_map<int, std::set<std::string>> AllowedRules(
    const StrippedFile& stripped) {
  std::unordered_map<int, std::set<std::string>> allowed;
  for (size_t row = 0; row < stripped.comments.size(); ++row) {
    const std::string& comment = stripped.comments[row];
    const size_t at = comment.find("focus-lint:");
    if (at == std::string::npos) continue;
    const size_t open = comment.find("allow(", at);
    if (open == std::string::npos) continue;
    const size_t close = comment.find(')', open);
    if (close == std::string::npos) continue;
    std::string rules = comment.substr(open + 6, close - open - 6);
    std::replace(rules.begin(), rules.end(), ',', ' ');
    std::istringstream in(rules);
    std::string rule;
    const int line = static_cast<int>(row) + 1;
    while (in >> rule) {
      allowed[line].insert(rule);
      allowed[line + 1].insert(rule);  // directive on its own line above
    }
  }
  return allowed;
}

// ---------------------------------------------------------------------------
// Rules.

struct FileContext {
  std::string display_path;  // as printed in diagnostics
  std::string rel_path;      // relative to --root, '/'-separated
  StrippedFile stripped;
  std::vector<Token> tokens;
};

bool HasPrefix(const std::string& path, std::string_view prefix) {
  return path.rfind(prefix, 0) == 0;
}

void CheckRawMutex(const FileContext& file, std::vector<Diagnostic>* out) {
  if (HasPrefix(file.rel_path, "src/common/")) return;
  static const std::unordered_set<std::string> kBanned = {
      "std::mutex",          "std::timed_mutex",
      "std::recursive_mutex", "std::recursive_timed_mutex",
      "std::shared_mutex",   "std::shared_timed_mutex",
      "std::lock_guard",     "std::unique_lock",
      "std::scoped_lock",    "std::shared_lock",
      "std::condition_variable", "std::condition_variable_any",
  };
  for (const Token& token : file.tokens) {
    if (kBanned.count(token.text) == 0) continue;
    out->push_back({file.display_path, token.line, "raw-mutex",
                    token.text +
                        " outside src/common/ — use common::Mutex / "
                        "common::MutexLock / common::CondVar "
                        "(common/mutex.h) so thread-safety annotations "
                        "keep working"});
  }
}

bool IsEngineName(const std::string& text) {
  return text == "mt19937" || text == "mt19937_64" ||
         text == "std::mt19937" || text == "std::mt19937_64";
}

void CheckNakedMt19937(const FileContext& file, std::vector<Diagnostic>* out) {
  if (HasPrefix(file.rel_path, "src/stats/")) return;  // MakeRng's home
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!IsEngineName(tokens[i].text)) continue;
    size_t ctor = 0;  // index of the '(' / '{' opening a construction
    if (i + 1 < tokens.size() &&
        (tokens[i + 1].text == "(" || tokens[i + 1].text == "{")) {
      ctor = i + 1;  // temporary: std::mt19937_64(seed)
    } else if (i + 2 < tokens.size() && IsIdentStart(tokens[i + 1].text[0]) &&
               (tokens[i + 2].text == "(" || tokens[i + 2].text == "{")) {
      ctor = i + 2;  // named variable: std::mt19937_64 rng(seed)
    } else {
      continue;  // reference/param declaration, template argument, …
    }
    // Initialization through the sanctioned factory is fine:
    //   std::mt19937_64 rng = stats::MakeRng(seed);  (no direct ctor)
    //   std::mt19937_64 rng(stats::MakeRng(seed));   (copy from factory)
    bool via_factory = false;
    for (size_t j = ctor; j < tokens.size() && tokens[j].text != ";"; ++j) {
      if (tokens[j].text.find("MakeRng") != std::string::npos) {
        via_factory = true;
        break;
      }
    }
    if (via_factory) continue;
    out->push_back({file.display_path, tokens[i].line, "naked-mt19937",
                    tokens[i].text +
                        " constructed directly — seed RNGs via "
                        "stats::MakeRng so runs replay deterministically"});
  }
}

void CheckStdFunctionInHotLoop(const FileContext& file,
                               std::vector<Diagnostic>* out) {
  if (!HasPrefix(file.rel_path, "src/core/") &&
      !HasPrefix(file.rel_path, "src/itemsets/") &&
      !HasPrefix(file.rel_path, "src/tree/")) {
    return;
  }
  const std::vector<Token>& tokens = file.tokens;
  // Scope tracking: each '{' pushes whether it opens a loop body. A
  // pending loop (for/while whose '(…)' just closed) claims the next '{'.
  std::vector<bool> brace_is_loop;
  int loop_depth = 0;
  bool pending_loop = false;
  int paren_depth = 0;
  int pending_paren_depth = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if (t == "for" || t == "while") {
      pending_loop = true;
      pending_paren_depth = paren_depth;
      continue;
    }
    if (t == "(") {
      ++paren_depth;
      continue;
    }
    if (t == ")") {
      --paren_depth;
      continue;
    }
    if (t == "{") {
      const bool is_loop = pending_loop && paren_depth == pending_paren_depth;
      brace_is_loop.push_back(is_loop);
      if (is_loop) {
        ++loop_depth;
        pending_loop = false;
      }
      continue;
    }
    if (t == "}") {
      if (!brace_is_loop.empty()) {
        if (brace_is_loop.back()) --loop_depth;
        brace_is_loop.pop_back();
      }
      continue;
    }
    if (t == "std::function" && loop_depth > 0) {
      out->push_back(
          {file.display_path, tokens[i].line, "std-function-in-hot-loop",
           "std::function inside a loop body in a scan-kernel directory — "
           "type-erased calls defeat inlining; take the body as a template "
           "parameter (see core/parallel_count.h)"});
    }
  }
}

void CheckUncheckedStrtol(const FileContext& file,
                          std::vector<Diagnostic>* out) {
  if (!HasPrefix(file.rel_path, "src/io/")) return;
  static const std::unordered_set<std::string> kStrto = {
      "strtol",       "strtoul",      "strtoll",       "strtoull",
      "strtod",       "strtof",       "strtold",       "std::strtol",
      "std::strtoul", "std::strtoll", "std::strtoull", "std::strtod",
      "std::strtof",  "std::strtold",
  };
  static const std::unordered_set<std::string> kNoErrors = {
      "atoi", "atol", "atoll", "atof", "std::atoi", "std::atol",
      "std::atoll", "std::atof",
  };
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i + 1].text != "(") continue;
    if (kNoErrors.count(tokens[i].text) != 0) {
      out->push_back({file.display_path, tokens[i].line, "unchecked-strtol",
                      tokens[i].text +
                          " cannot report conversion errors — io loaders "
                          "must reject malformed numbers (use strtol with "
                          "a checked end pointer)"});
      continue;
    }
    if (kStrto.count(tokens[i].text) == 0) continue;
    // Extract the second top-level argument.
    int depth = 0;
    int arg = 0;
    std::vector<std::string> second_arg;
    for (size_t j = i + 1; j < tokens.size(); ++j) {
      const std::string& t = tokens[j].text;
      if (t == "(" || t == "[" || t == "{") {
        ++depth;
        if (depth > 1 && arg == 1) second_arg.push_back(t);
        continue;
      }
      if (t == ")" || t == "]" || t == "}") {
        --depth;
        if (depth == 0) break;
        if (arg == 1) second_arg.push_back(t);
        continue;
      }
      if (t == "," && depth == 1) {
        ++arg;
        continue;
      }
      if (arg == 1) second_arg.push_back(t);
    }
    const bool null_endptr =
        second_arg.size() == 1 &&
        (second_arg[0] == "nullptr" || second_arg[0] == "NULL" ||
         second_arg[0] == "0");
    if (null_endptr) {
      out->push_back({file.display_path, tokens[i].line, "unchecked-strtol",
                      tokens[i].text +
                          " with a null end pointer silently accepts "
                          "trailing garbage — pass an end pointer and "
                          "check it"});
    }
  }
}

struct Rule {
  const char* name;
  const char* scope;
  void (*check)(const FileContext&, std::vector<Diagnostic>*);
};

constexpr Rule kRules[] = {
    {"raw-mutex", "everywhere except src/common/", CheckRawMutex},
    {"naked-mt19937", "everywhere except src/stats/", CheckNakedMt19937},
    {"std-function-in-hot-loop", "src/core/, src/itemsets/, src/tree/",
     CheckStdFunctionInHotLoop},
    {"unchecked-strtol", "src/io/", CheckUncheckedStrtol},
};

// ---------------------------------------------------------------------------
// Driver.

bool LintableExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

bool SkippedDirectory(const std::string& name) {
  return name == "lint_fixtures" || name == "corpus" || name == ".git" ||
         name == "third_party" || HasPrefix(name, "build");
}

void CollectFiles(const fs::path& path, std::vector<fs::path>* files) {
  std::error_code ec;
  if (fs::is_regular_file(path, ec)) {
    if (LintableExtension(path)) files->push_back(path);
    return;
  }
  if (!fs::is_directory(path, ec)) return;
  for (fs::directory_iterator it(path, ec), end; it != end && !ec;
       it.increment(ec)) {
    const fs::path& entry = it->path();
    if (fs::is_directory(entry, ec)) {
      if (!SkippedDirectory(entry.filename().string())) {
        CollectFiles(entry, files);
      }
    } else if (LintableExtension(entry)) {
      files->push_back(entry);
    }
  }
}

std::string RelativeTo(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(path, root, ec);
  if (ec || rel.empty()) rel = path;
  return rel.generic_string();
}

int LintFile(const fs::path& path, const fs::path& root,
             std::vector<Diagnostic>* diagnostics) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "focus_lint: cannot read %s\n",
                 path.string().c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  FileContext file;
  file.rel_path = RelativeTo(path, root);
  file.display_path = file.rel_path;
  file.stripped = Strip(buffer.str());
  file.tokens = Tokenize(file.stripped);
  const auto allowed = AllowedRules(file.stripped);
  std::vector<Diagnostic> found;
  for (const Rule& rule : kRules) rule.check(file, &found);
  for (Diagnostic& diag : found) {
    const auto it = allowed.find(diag.line);
    if (it != allowed.end() && it->second.count(diag.rule) != 0) continue;
    diagnostics->push_back(std::move(diag));
  }
  return 0;
}

int Main(int argc, char** argv) {
  fs::path root = ".";
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "focus_lint: --root needs a directory\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--list-rules") {
      for (const Rule& rule : kRules) {
        std::printf("%-26s %s\n", rule.name, rule.scope);
      }
      return 0;
    } else if (arg == "--help") {
      std::printf("usage: focus_lint [--root DIR] [--list-rules] "
                  "[paths...]\n");
      return 0;
    } else if (HasPrefix(arg, "--")) {
      std::fprintf(stderr, "focus_lint: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    std::fprintf(stderr, "focus_lint: --root %s is not a directory\n",
                 root.string().c_str());
    return 2;
  }
  if (inputs.empty()) {
    for (const char* dir :
         {"src", "tools", "tests", "bench", "fuzz", "examples"}) {
      const fs::path path = root / dir;
      if (fs::exists(path, ec)) inputs.push_back(path);
    }
  }
  std::vector<fs::path> files;
  for (const fs::path& input : inputs) CollectFiles(input, &files);
  std::sort(files.begin(), files.end());

  std::vector<Diagnostic> diagnostics;
  for (const fs::path& file : files) {
    const int status = LintFile(file, root, &diagnostics);
    if (status != 0) return status;
  }
  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  for (const Diagnostic& diag : diagnostics) {
    std::printf("%s:%d: [%s] %s\n", diag.file.c_str(), diag.line,
                diag.rule.c_str(), diag.message.c_str());
  }
  if (!diagnostics.empty()) {
    std::printf("focus_lint: %zu finding(s) in %zu file(s) scanned\n",
                diagnostics.size(), files.size());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace focus::lint

int main(int argc, char** argv) { return focus::lint::Main(argc, argv); }

// focus_lint — DEPRECATED shim. The four lint rules now live in the
// focus_analyze checker registry (src/analyze/, docs/STATIC_ANALYSIS.md)
// alongside the flow-aware checkers; this wrapper keeps old scripts and
// muscle memory working. Behavior is identical to invoking
// focus_analyze, plus a deprecation note on stderr.

#include <cstdio>

#include "analyze/driver.h"

int main(int argc, char** argv) {
  std::fprintf(stderr,
               "focus_lint is deprecated: use focus_analyze (same flags; "
               "--list-rules is now --list-checkers)\n");
  return focus::analyze::AnalyzerMain(argc, argv, "focus_lint");
}

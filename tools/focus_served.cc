// focus_served — deviation monitoring over the network.
//
// Boots the serve::MonitorService behind the src/net/ HTTP/1.1 server and
// exposes the serving layer to remote producers:
//
//   POST /v1/streams/{name}/snapshots    ingest a focus-txns-v1 snapshot
//        202 {"stream","sequence","content_hash"}; 429 + Retry-After when
//        the ingest queue is saturated; 400 on malformed payloads
//   GET  /v1/streams/{name}/deviation?f=abs|scaled&g=sum|max
//        latest window deviation + CUSUM state
//   POST /v1/compare?left=H&right=H&f=…&g=…
//        deviation between two previously ingested snapshots (by content
//        hash, via the model cache — no raw-data rescan)
//   GET  /metrics   Prometheus text exposition (?format=json)
//   GET  /healthz   {"status":"ok"|"draining"}
//
//   focus_served --reference R.txns
//     [--address 127.0.0.1] [--port 8080] [--port-file PATH]
//     [--minsup 0.01] [--factor 2.0] [--replicates 9] [--calibration 5]
//     [--warmup 5] [--slack 0.5] [--decision 5.0]
//     [--threads 4] [--queue 64] [--cache 64]
//     [--max-connections 256] [--read-deadline-ms 10000]
//     [--ingest-wait-ms 20] [--events PATH] [--force-poll 0]
//
// --port 0 binds a kernel-assigned ephemeral port; --port-file writes the
// bound port as a single line once the server is listening (how the
// integration tests and scripts find it).
//
// SIGTERM/SIGINT trigger a graceful drain: /healthz flips to "draining",
// the listener closes, idle keep-alive connections are shut, in-flight
// requests finish, the ingest queue is flushed, and the process exits 0.
//
// Exit status: 0 on success (including signal-triggered drain), 1 on
// usage errors, 2 on I/O or bind failures.

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "common/flags.h"
#include "io/data_io.h"
#include "net/http_server.h"
#include "serve/http_api.h"
#include "serve/metrics.h"
#include "serve/monitor_service.h"

namespace focus::daemon {
namespace {

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int sig) { g_signal = sig; }

int Run(const common::Flags& flags) {
  const std::string reference_path = flags.Get("reference", "");
  if (reference_path.empty()) {
    std::fprintf(stderr, "focus_served requires --reference\n");
    return 1;
  }
  const auto reference = io::LoadTransactionDbFromFile(reference_path);
  if (!reference.has_value()) {
    std::fprintf(stderr, "cannot read --reference %s\n",
                 reference_path.c_str());
    return 2;
  }

  serve::MonitorServiceOptions options;
  options.monitor.apriori.min_support = flags.GetDouble("minsup", 0.01);
  options.monitor.alert_factor = flags.GetDouble("factor", 2.0);
  options.monitor.calibration_replicates =
      static_cast<int>(flags.GetInt("calibration", 5));
  options.monitor.significance.num_replicates =
      static_cast<int>(flags.GetInt("replicates", 9));
  options.cusum.warmup = static_cast<int>(flags.GetInt("warmup", 5));
  options.cusum.slack = flags.GetDouble("slack", 0.5);
  options.cusum.decision_threshold = flags.GetDouble("decision", 5.0);
  options.num_threads = static_cast<int>(flags.GetInt("threads", 4));
  options.queue_capacity = static_cast<size_t>(flags.GetInt("queue", 64));
  options.model_cache_capacity =
      static_cast<size_t>(flags.GetInt("cache", 64));

  serve::MetricsRegistry metrics;
  serve::MonitorService service(options, &metrics);

  const std::string events_path = flags.Get("events", "");
  std::ofstream events;
  if (!events_path.empty()) {
    events.open(events_path, std::ios::app);
    if (!events) {
      std::fprintf(stderr, "cannot open --events %s for append\n",
                   events_path.c_str());
      return 2;
    }
    service.SetEventSink([&events](const serve::StreamEvent& event) {
      events << event.ToJson() << '\n';
      events.flush();
    });
  }

  serve::HttpApiOptions api_options;
  api_options.ingest_wait_ms =
      static_cast<int>(flags.GetInt("ingest-wait-ms", 20));
  serve::HttpApi api(api_options, &service, &*reference, &metrics);

  net::HttpServerOptions server_options;
  server_options.bind_address = flags.Get("address", "127.0.0.1");
  server_options.port = static_cast<uint16_t>(flags.GetInt("port", 8080));
  server_options.max_connections =
      static_cast<int>(flags.GetInt("max-connections", 256));
  server_options.read_deadline_ms =
      static_cast<int>(flags.GetInt("read-deadline-ms", 10'000));
  server_options.force_poll = flags.GetInt("force-poll", 0) != 0;

  net::HttpServer server(server_options, api.BuildRouter());
  api.AttachServer(&server);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "cannot start server on %s:%d: %s\n",
                 server_options.bind_address.c_str(),
                 static_cast<int>(server_options.port), error.c_str());
    return 2;
  }

  const std::string port_file = flags.Get("port-file", "");
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << '\n';
    if (!out) {
      std::fprintf(stderr, "cannot write --port-file %s\n", port_file.c_str());
      return 2;
    }
  }

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
#ifdef SIGPIPE
  std::signal(SIGPIPE, SIG_IGN);
#endif

  std::printf("focus_served: listening on %s:%u, reference=%s (%lld txns)\n",
              server_options.bind_address.c_str(),
              static_cast<unsigned>(server.port()), reference_path.c_str(),
              static_cast<long long>(reference->num_transactions()));
  std::fflush(stdout);

  while (g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Graceful drain: stop accepting, let in-flight requests finish, flush
  // everything already accepted into the queue, then tear down.
  std::printf("focus_served: signal %d, draining…\n",
              static_cast<int>(g_signal));
  std::fflush(stdout);
  api.SetDraining(true);
  server.BeginDrain();
  server.WaitDrained(server_options.read_deadline_ms);
  server.Stop();
  service.Flush();
  service.Shutdown();

  const net::HttpServerStats stats = server.stats();
  std::printf(
      "focus_served: drained; %lld requests over %lld connections, "
      "%lld snapshots processed\n",
      static_cast<long long>(stats.requests_handled),
      static_cast<long long>(stats.connections_accepted),
      static_cast<long long>(service.processed()));
  return 0;
}

}  // namespace
}  // namespace focus::daemon

int main(int argc, char** argv) {
  const auto flags = focus::common::Flags::Parse(
      argc, argv, 1,
      {"reference", "address", "port", "port-file", "minsup", "factor",
       "replicates", "calibration", "warmup", "slack", "decision", "threads",
       "queue", "cache", "max-connections", "read-deadline-ms",
       "ingest-wait-ms", "events", "force-poll"});
  if (!flags.has_value()) return 1;
  return focus::daemon::Run(*flags);
}

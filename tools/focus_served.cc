// focus_served — deviation monitoring over the network.
//
// Boots the serve::MonitorService behind the src/net/ HTTP/1.1 server and
// exposes the serving layer to remote producers:
//
//   POST /v1/streams/{name}/snapshots    ingest a focus-txns-v1 snapshot
//        202 {"stream","sequence","content_hash"}; 429 + Retry-After when
//        the ingest queue is saturated; 400 on malformed payloads
//   GET  /v1/streams/{name}/deviation?f=abs|scaled&g=sum|max
//        latest window deviation + CUSUM state
//   POST /v1/compare?left=H&right=H&f=…&g=…
//        deviation between two previously ingested snapshots (by content
//        hash, via the model cache — no raw-data rescan)
//   GET  /metrics   Prometheus text exposition (?format=json)
//   GET  /healthz   {"status":"ok"|"draining"}
//
//   focus_served --reference R.txns
//     [--address 127.0.0.1] [--port 8080] [--port-file PATH]
//     [--minsup 0.01] [--factor 2.0] [--replicates 9] [--calibration 5]
//     [--warmup 5] [--slack 0.5] [--decision 5.0]
//     [--threads 4] [--queue 64] [--cache 64]
//     [--max-connections 256] [--read-deadline-ms 10000]
//     [--ingest-wait-ms 20] [--events PATH] [--force-poll 0]
//     [--shards 0] [--reactors 1] [--shard-dir PATH]
//
// --port 0 binds a kernel-assigned ephemeral port; --port-file writes the
// bound port as a single line once the server is listening (how the
// integration tests and scripts find it).
//
// --shards N (N >= 1) switches to the sharded deployment of
// docs/SHARDING.md: N worker processes are forked, each running a full
// MonitorService behind the shard wire protocol on a Unix socket under
// --shard-dir (default: a fresh temp directory), and the parent serves
// the same HTTP API through --reactors SO_REUSEPORT event loops that
// scatter-gather over the workers. Workers are forked before any thread
// exists, so the daemon stays clean under TSan. The answers are
// bit-identical to --shards 0 (tests/laws/laws_shard_test.cc).
//
// SIGTERM/SIGINT trigger a graceful drain: /healthz flips to "draining",
// the listener closes, idle keep-alive connections are shut, in-flight
// requests finish, the ingest queue is flushed — and in sharded mode
// every worker is SIGTERMed, drains the same way, and is reaped — then
// the process exits 0.
//
// Exit status: 0 on success (including signal-triggered drain), 1 on
// usage errors, 2 on I/O or bind failures (or a worker that did not
// drain cleanly).

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "io/data_io.h"
#include "net/http_server.h"
#include "serve/http_api.h"
#include "serve/metrics.h"
#include "serve/monitor_service.h"
#include "shard/shard_client.h"
#include "shard/shard_router.h"
#include "shard/shard_worker.h"
#include "shard/sharded_api.h"

namespace focus::daemon {
namespace {

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int sig) { g_signal = sig; }

void InstallSignalHandlers() {
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
#ifdef SIGPIPE
  std::signal(SIGPIPE, SIG_IGN);
#endif
}

serve::MonitorServiceOptions ServiceOptions(const common::Flags& flags) {
  serve::MonitorServiceOptions options;
  options.monitor.apriori.min_support = flags.GetDouble("minsup", 0.01);
  options.monitor.alert_factor = flags.GetDouble("factor", 2.0);
  options.monitor.calibration_replicates =
      static_cast<int>(flags.GetInt("calibration", 5));
  options.monitor.significance.num_replicates =
      static_cast<int>(flags.GetInt("replicates", 9));
  options.cusum.warmup = static_cast<int>(flags.GetInt("warmup", 5));
  options.cusum.slack = flags.GetDouble("slack", 0.5);
  options.cusum.decision_threshold = flags.GetDouble("decision", 5.0);
  options.num_threads = static_cast<int>(flags.GetInt("threads", 4));
  options.queue_capacity = static_cast<size_t>(flags.GetInt("queue", 64));
  options.model_cache_capacity =
      static_cast<size_t>(flags.GetInt("cache", 64));
  return options;
}

// ------------------------------------------------------------ sharded mode

// The forked worker process: one ShardWorker on one Unix socket, drained
// on SIGTERM exactly like the single-node daemon.
int WorkerMain(uint32_t shard_index, const common::Flags& flags,
               const data::TransactionDb& reference,
               const std::string& socket_path) {
  shard::ShardWorkerOptions worker_options;
  worker_options.shard_index = shard_index;
  worker_options.service = ServiceOptions(flags);
  worker_options.ingest_wait_ms =
      static_cast<int>(flags.GetInt("ingest-wait-ms", 20));

  shard::ShardWorker worker(worker_options, &reference, nullptr);
  shard::WireServerOptions server_options;
  server_options.unix_path = socket_path;
  server_options.read_deadline_ms =
      static_cast<int>(flags.GetInt("read-deadline-ms", 10'000));
  server_options.force_poll = flags.GetInt("force-poll", 0) != 0;
  std::string error;
  if (!worker.Serve(server_options, &error)) {
    std::fprintf(stderr, "focus_served[shard %u]: cannot listen on %s: %s\n",
                 shard_index, socket_path.c_str(), error.c_str());
    return 2;
  }

  while (g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  worker.BeginDrain();
  worker.WaitDrained(server_options.read_deadline_ms);
  worker.Stop();
  std::printf("focus_served[shard %u]: drained; %lld snapshots processed\n",
              shard_index,
              static_cast<long long>(worker.service().processed()));
  return 0;
}

// One SO_REUSEPORT front-end reactor: its own shard clients + router +
// api + event loop, so nothing serializes across reactors but the kernel
// accept queue.
struct Reactor {
  std::vector<std::unique_ptr<shard::ShardClient>> clients;
  std::unique_ptr<shard::ShardRouter> router;
  std::unique_ptr<shard::ShardedApi> api;
  std::unique_ptr<net::HttpServer> server;
};

int RunSharded(const common::Flags& flags,
               const data::TransactionDb& reference, int num_shards) {
  const int num_reactors =
      static_cast<int>(flags.GetInt("reactors", 1));
  if (num_reactors < 1) {
    std::fprintf(stderr, "--reactors must be >= 1\n");
    return 1;
  }

  std::string shard_dir = flags.Get("shard-dir", "");
  bool made_dir = false;
  if (shard_dir.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    std::string pattern =
        std::string(tmp != nullptr ? tmp : "/tmp") + "/focus_shard_XXXXXX";
    std::vector<char> buffer(pattern.begin(), pattern.end());
    buffer.push_back('\0');
    if (::mkdtemp(buffer.data()) == nullptr) {
      std::perror("focus_served: mkdtemp");
      return 2;
    }
    shard_dir.assign(buffer.data());
    made_dir = true;
  } else if (::mkdir(shard_dir.c_str(), 0700) == 0) {
    // Same contract as focus_monitord's spool dir: create a missing
    // --shard-dir instead of erroring (and clean it up on exit).
    made_dir = true;
  } else if (errno != EEXIST) {
    std::fprintf(stderr, "focus_served: cannot create shard dir %s: %s\n",
                 shard_dir.c_str(), std::strerror(errno));
    return 2;
  }

  // Handlers go in before the forks so workers inherit them; g_signal is
  // per-process after the fork.
  InstallSignalHandlers();

  // Fork every worker while this process is still single-threaded (no
  // servers, no clients yet) — the only fork() discipline that is safe
  // under TSan and avoids inheriting locked mutexes.
  std::vector<pid_t> worker_pids;
  std::vector<std::string> socket_paths;
  for (int i = 0; i < num_shards; ++i) {
    socket_paths.push_back(shard_dir + "/shard-" + std::to_string(i) +
                           ".sock");
  }
  for (int i = 0; i < num_shards; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("focus_served: fork");
      for (const pid_t child : worker_pids) ::kill(child, SIGKILL);
      return 2;
    }
    if (pid == 0) {
      std::exit(
          WorkerMain(static_cast<uint32_t>(i), flags, reference,
                     socket_paths[static_cast<size_t>(i)]));
    }
    worker_pids.push_back(pid);
  }

  auto shutdown_workers = [&](int sig) {
    for (const pid_t pid : worker_pids) ::kill(pid, sig);
    bool all_clean = true;
    for (const pid_t pid : worker_pids) {
      int status = 0;
      if (::waitpid(pid, &status, 0) != pid ||
          !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        all_clean = false;
      }
    }
    if (made_dir) {
      for (const std::string& path : socket_paths) ::unlink(path.c_str());
      ::rmdir(shard_dir.c_str());
    }
    return all_clean;
  };

  serve::MetricsRegistry metrics;
  const int num_connections =
      static_cast<int>(flags.GetInt("max-connections", 256));
  std::vector<Reactor> reactors(static_cast<size_t>(num_reactors));
  uint16_t bound_port = 0;
  for (int r = 0; r < num_reactors; ++r) {
    Reactor& reactor = reactors[static_cast<size_t>(r)];
    std::vector<shard::ShardChannel*> channels;
    for (const std::string& path : socket_paths) {
      reactor.clients.push_back(std::make_unique<shard::ShardClient>(path));
      channels.push_back(reactor.clients.back().get());
    }
    reactor.router = std::make_unique<shard::ShardRouter>(channels);
    shard::ShardedApiOptions api_options;
    api_options.reactor_index = r;
    reactor.api = std::make_unique<shard::ShardedApi>(
        api_options, reactor.router.get(), &metrics);

    net::HttpServerOptions server_options;
    server_options.bind_address = flags.Get("address", "127.0.0.1");
    // Reactor 0 binds the requested port (possibly ephemeral); the rest
    // join it through SO_REUSEPORT so the kernel spreads connections.
    server_options.port =
        r == 0 ? static_cast<uint16_t>(flags.GetInt("port", 8080))
               : bound_port;
    server_options.reuse_port = num_reactors > 1;
    server_options.max_connections = num_connections / num_reactors;
    server_options.read_deadline_ms =
        static_cast<int>(flags.GetInt("read-deadline-ms", 10'000));
    server_options.force_poll = flags.GetInt("force-poll", 0) != 0;
    reactor.server = std::make_unique<net::HttpServer>(
        server_options, reactor.api->BuildRouter());
    reactor.api->AttachServer(reactor.server.get());
    std::string error;
    if (!reactor.server->Start(&error)) {
      std::fprintf(stderr, "cannot start reactor %d on %s:%d: %s\n", r,
                   server_options.bind_address.c_str(),
                   static_cast<int>(server_options.port), error.c_str());
      shutdown_workers(SIGTERM);
      return 2;
    }
    if (r == 0) bound_port = reactor.server->port();
  }

  // Wait until every worker answers a ping (sockets appear as each child
  // binds); tolerate a slow start, not a dead child.
  {
    std::string error;
    bool up = false;
    for (int attempt = 0; attempt < 500 && g_signal == 0; ++attempt) {
      if (reactors[0].router->PingAll(&error)) {
        up = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (!up && g_signal == 0) {
      std::fprintf(stderr, "focus_served: shard workers not up: %s\n",
                   error.c_str());
      shutdown_workers(SIGTERM);
      return 2;
    }
  }

  const std::string port_file = flags.Get("port-file", "");
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << bound_port << '\n';
    if (!out) {
      std::fprintf(stderr, "cannot write --port-file %s\n",
                   port_file.c_str());
      shutdown_workers(SIGTERM);
      return 2;
    }
  }

  std::printf(
      "focus_served: listening on %s:%u, %d shards x %d reactors, "
      "reference %lld txns\n",
      flags.Get("address", "127.0.0.1").c_str(),
      static_cast<unsigned>(bound_port), num_shards, num_reactors,
      static_cast<long long>(reference.num_transactions()));
  std::fflush(stdout);

  while (g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("focus_served: signal %d, draining…\n",
              static_cast<int>(g_signal));
  std::fflush(stdout);
  // Front end first (stop taking requests), then the workers.
  for (Reactor& reactor : reactors) reactor.api->SetDraining(true);
  for (Reactor& reactor : reactors) reactor.server->BeginDrain();
  const int deadline_ms =
      static_cast<int>(flags.GetInt("read-deadline-ms", 10'000));
  for (Reactor& reactor : reactors) reactor.server->WaitDrained(deadline_ms);
  for (Reactor& reactor : reactors) reactor.server->Stop();
  const bool workers_clean = shutdown_workers(SIGTERM);

  int64_t requests = 0, connections = 0;
  for (const Reactor& reactor : reactors) {
    const net::HttpServerStats stats = reactor.server->stats();
    requests += stats.requests_handled;
    connections += stats.connections_accepted;
  }
  std::printf(
      "focus_served: drained; %lld requests over %lld connections, "
      "%d workers %s\n",
      static_cast<long long>(requests), static_cast<long long>(connections),
      num_shards, workers_clean ? "clean" : "UNCLEAN");
  return workers_clean ? 0 : 2;
}

// --------------------------------------------------------- single-node mode

int Run(const common::Flags& flags) {
  const std::string reference_path = flags.Get("reference", "");
  if (reference_path.empty()) {
    std::fprintf(stderr, "focus_served requires --reference\n");
    return 1;
  }
  const auto reference = io::LoadTransactionDbFromFile(reference_path);
  if (!reference.has_value()) {
    std::fprintf(stderr, "cannot read --reference %s\n",
                 reference_path.c_str());
    return 2;
  }

  const int num_shards = static_cast<int>(flags.GetInt("shards", 0));
  if (num_shards < 0) {
    std::fprintf(stderr, "--shards must be >= 0\n");
    return 1;
  }
  if (num_shards > 0) return RunSharded(flags, *reference, num_shards);

  const serve::MonitorServiceOptions options = ServiceOptions(flags);

  serve::MetricsRegistry metrics;
  serve::MonitorService service(options, &metrics);

  const std::string events_path = flags.Get("events", "");
  std::ofstream events;
  if (!events_path.empty()) {
    events.open(events_path, std::ios::app);
    if (!events) {
      std::fprintf(stderr, "cannot open --events %s for append\n",
                   events_path.c_str());
      return 2;
    }
    service.SetEventSink([&events](const serve::StreamEvent& event) {
      events << event.ToJson() << '\n';
      events.flush();
    });
  }

  serve::HttpApiOptions api_options;
  api_options.ingest_wait_ms =
      static_cast<int>(flags.GetInt("ingest-wait-ms", 20));
  serve::HttpApi api(api_options, &service, &*reference, &metrics);

  net::HttpServerOptions server_options;
  server_options.bind_address = flags.Get("address", "127.0.0.1");
  server_options.port = static_cast<uint16_t>(flags.GetInt("port", 8080));
  server_options.max_connections =
      static_cast<int>(flags.GetInt("max-connections", 256));
  server_options.read_deadline_ms =
      static_cast<int>(flags.GetInt("read-deadline-ms", 10'000));
  server_options.force_poll = flags.GetInt("force-poll", 0) != 0;

  net::HttpServer server(server_options, api.BuildRouter());
  api.AttachServer(&server);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "cannot start server on %s:%d: %s\n",
                 server_options.bind_address.c_str(),
                 static_cast<int>(server_options.port), error.c_str());
    return 2;
  }

  const std::string port_file = flags.Get("port-file", "");
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << '\n';
    if (!out) {
      std::fprintf(stderr, "cannot write --port-file %s\n", port_file.c_str());
      return 2;
    }
  }

  InstallSignalHandlers();

  std::printf("focus_served: listening on %s:%u, reference=%s (%lld txns)\n",
              server_options.bind_address.c_str(),
              static_cast<unsigned>(server.port()), reference_path.c_str(),
              static_cast<long long>(reference->num_transactions()));
  std::fflush(stdout);

  while (g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Graceful drain: stop accepting, let in-flight requests finish, flush
  // everything already accepted into the queue, then tear down.
  std::printf("focus_served: signal %d, draining…\n",
              static_cast<int>(g_signal));
  std::fflush(stdout);
  api.SetDraining(true);
  server.BeginDrain();
  server.WaitDrained(server_options.read_deadline_ms);
  server.Stop();
  service.Flush();
  service.Shutdown();

  const net::HttpServerStats stats = server.stats();
  std::printf(
      "focus_served: drained; %lld requests over %lld connections, "
      "%lld snapshots processed\n",
      static_cast<long long>(stats.requests_handled),
      static_cast<long long>(stats.connections_accepted),
      static_cast<long long>(service.processed()));
  return 0;
}

}  // namespace
}  // namespace focus::daemon

int main(int argc, char** argv) {
  const auto flags = focus::common::Flags::Parse(
      argc, argv, 1,
      {"reference", "address", "port", "port-file", "minsup", "factor",
       "replicates", "calibration", "warmup", "slack", "decision", "threads",
       "queue", "cache", "max-connections", "read-deadline-ms",
       "ingest-wait-ms", "events", "force-poll", "shards", "reactors",
       "shard-dir"});
  if (!flags.has_value()) return 1;
  return focus::daemon::Run(*flags);
}

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/grid_clustering.h"
#include "core/cluster_deviation.h"
#include "core/focus_region.h"

namespace focus::core {
namespace {

data::Schema XySchema() {
  return data::Schema(
      {data::Schema::Numeric("x", 0.0, 10.0), data::Schema::Numeric("y", 0.0, 10.0)},
      /*num_classes=*/0);
}

data::Dataset BlobAt(double cx, double cy, int n) {
  data::Dataset dataset(XySchema());
  for (int i = 0; i < n; ++i) {
    const double jitter = (i % 7) * 0.05;
    dataset.AddRow(std::vector<double>{cx + jitter, cy - jitter}, 0);
  }
  return dataset;
}

cluster::ClusterModel Model(const data::Dataset& d, const cluster::Grid& grid) {
  cluster::GridClusteringOptions options;
  options.density_threshold = 0.02;
  return cluster::GridClustering(d, grid, options);
}

TEST(ClusterGcrTest, IdenticalModelsPairUp) {
  const data::Dataset d = BlobAt(2.0, 2.0, 100);
  const cluster::Grid grid(XySchema(), {0, 1}, 10);
  const cluster::ClusterModel m = Model(d, grid);
  const auto gcr = ClusterGcr(m, m);
  ASSERT_EQ(gcr.size(), static_cast<size_t>(m.num_regions()));
  for (const auto& region : gcr) {
    EXPECT_EQ(region.region1, region.region2);
  }
}

TEST(ClusterGcrTest, DisjointModelsKeepBothSides) {
  data::Dataset d1 = BlobAt(2.0, 2.0, 100);
  data::Dataset d2 = BlobAt(8.0, 8.0, 100);
  const cluster::Grid grid(XySchema(), {0, 1}, 10);
  const cluster::ClusterModel m1 = Model(d1, grid);
  const cluster::ClusterModel m2 = Model(d2, grid);
  const auto gcr = ClusterGcr(m1, m2);
  // No shared cells: each GCR part is a one-sided remainder.
  for (const auto& region : gcr) {
    EXPECT_TRUE(region.region1 == -1 || region.region2 == -1);
  }
  ASSERT_EQ(gcr.size(),
            static_cast<size_t>(m1.num_regions() + m2.num_regions()));
}

TEST(ClusterGcrTest, RefinementPartitionsEachRegion) {
  // Every region of m1 must be exactly covered by its GCR parts.
  data::Dataset d1 = BlobAt(2.0, 2.0, 100);
  data::Dataset extra = BlobAt(3.0, 2.5, 60);
  d1.Append(extra);
  data::Dataset d2 = BlobAt(2.5, 2.2, 120);
  const cluster::Grid grid(XySchema(), {0, 1}, 10);
  const cluster::ClusterModel m1 = Model(d1, grid);
  const cluster::ClusterModel m2 = Model(d2, grid);
  const auto gcr = ClusterGcr(m1, m2);
  for (int r = 0; r < m1.num_regions(); ++r) {
    std::vector<int64_t> reassembled;
    for (const auto& part : gcr) {
      if (part.region1 == r) {
        reassembled.insert(reassembled.end(), part.cells.begin(),
                           part.cells.end());
      }
    }
    std::sort(reassembled.begin(), reassembled.end());
    EXPECT_EQ(reassembled, m1.region(r)) << "region " << r;
  }
}

TEST(ClusterDeviationTest, IdenticalDataZero) {
  const data::Dataset d = BlobAt(5.0, 5.0, 200);
  const cluster::Grid grid(XySchema(), {0, 1}, 10);
  const cluster::ClusterModel m = Model(d, grid);
  ClusterDeviationOptions options;
  EXPECT_NEAR(ClusterDeviation(m, d, m, d, options), 0.0, 1e-12);
}

TEST(ClusterDeviationTest, MovedBlobDetected) {
  const data::Dataset d1 = BlobAt(2.0, 2.0, 200);
  const data::Dataset d2 = BlobAt(8.0, 8.0, 200);
  const cluster::Grid grid(XySchema(), {0, 1}, 10);
  const cluster::ClusterModel m1 = Model(d1, grid);
  const cluster::ClusterModel m2 = Model(d2, grid);
  ClusterDeviationOptions options;
  // All mass moved: each remainder differs by its full selectivity => 2.0.
  EXPECT_NEAR(ClusterDeviation(m1, d1, m2, d2, options), 2.0, 1e-9);
}

TEST(ClusterDeviationTest, PartialOverlapBetweenZeroAndTwo) {
  data::Dataset d1 = BlobAt(2.0, 2.0, 150);
  data::Dataset tail1 = BlobAt(5.0, 5.0, 50);
  d1.Append(tail1);
  data::Dataset d2 = BlobAt(2.0, 2.0, 150);
  data::Dataset tail2 = BlobAt(8.0, 8.0, 50);
  d2.Append(tail2);
  const cluster::Grid grid(XySchema(), {0, 1}, 10);
  const cluster::ClusterModel m1 = Model(d1, grid);
  const cluster::ClusterModel m2 = Model(d2, grid);
  ClusterDeviationOptions options;
  const double deviation = ClusterDeviation(m1, d1, m2, d2, options);
  EXPECT_GT(deviation, 0.0);
  EXPECT_LT(deviation, 2.0);
}

TEST(ClusterDeviationTest, FocusRestrictsToRegion) {
  const data::Dataset d1 = BlobAt(2.0, 2.0, 200);
  data::Dataset d2 = BlobAt(2.0, 2.0, 100);
  data::Dataset moved = BlobAt(8.0, 8.0, 100);
  d2.Append(moved);
  const cluster::Grid grid(XySchema(), {0, 1}, 10);
  const cluster::ClusterModel m1 = Model(d1, grid);
  const cluster::ClusterModel m2 = Model(d2, grid);

  ClusterDeviationOptions unfocused;
  const double full = ClusterDeviation(m1, d1, m2, d2, unfocused);

  // Focus on the left half: only the (2,2) blob's change is visible.
  ClusterDeviationOptions left;
  left.focus = LessThanPredicate(XySchema(), 0, 5.0);
  const double left_dev = ClusterDeviation(m1, d1, m2, d2, left);
  EXPECT_LE(left_dev, full + 1e-12);
  EXPECT_GT(left_dev, 0.0);
}

TEST(ClusterDeviationDeathTest, RequiresSameGrid) {
  const data::Dataset d = BlobAt(5.0, 5.0, 100);
  const cluster::Grid g10(XySchema(), {0, 1}, 10);
  const cluster::Grid g8(XySchema(), {0, 1}, 8);
  const cluster::ClusterModel m1 = Model(d, g10);
  const cluster::ClusterModel m2 = Model(d, g8);
  EXPECT_DEATH(ClusterGcr(m1, m2), "grid");
}

}  // namespace
}  // namespace focus::core

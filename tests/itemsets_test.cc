#include <vector>

#include <gtest/gtest.h>

#include "datagen/quest_gen.h"
#include "itemsets/apriori.h"
#include "itemsets/itemset.h"
#include "itemsets/support_counter.h"

namespace focus::lits {
namespace {

data::TransactionDb TinyDb() {
  // 5 transactions over items {0..4}.
  data::TransactionDb db(5);
  db.AddTransaction(std::vector<int32_t>{0, 1, 2});
  db.AddTransaction(std::vector<int32_t>{0, 1});
  db.AddTransaction(std::vector<int32_t>{0, 2});
  db.AddTransaction(std::vector<int32_t>{1, 2, 3});
  db.AddTransaction(std::vector<int32_t>{0, 1, 2, 3});
  return db;
}

TEST(ItemsetTest, NormalizesOnConstruction) {
  const Itemset itemset(std::vector<int32_t>{3, 1, 3, 2});
  EXPECT_EQ(itemset.size(), 3);
  EXPECT_EQ(itemset.item(0), 1);
  EXPECT_EQ(itemset.item(2), 3);
  EXPECT_EQ(itemset.ToString(), "{1,2,3}");
}

TEST(ItemsetTest, SubsetChecks) {
  const Itemset ab({0, 1});
  const std::vector<int32_t> txn = {0, 1, 4};
  EXPECT_TRUE(ab.IsSubsetOfSorted(txn));
  const std::vector<int32_t> missing = {0, 2, 4};
  EXPECT_FALSE(ab.IsSubsetOfSorted(missing));
  EXPECT_TRUE(Itemset({0, 1, 4}).Contains(ab));
  EXPECT_FALSE(ab.Contains(Itemset({0, 2})));
  EXPECT_TRUE(ab.Contains(Itemset{}));
}

TEST(ItemsetTest, UnionMerges) {
  EXPECT_EQ(Itemset({0, 2}).Union(Itemset({1, 2})), Itemset({0, 1, 2}));
}

TEST(ItemsetTest, WithoutRemoves) {
  EXPECT_EQ(Itemset({0, 1, 2}).Without(1), Itemset({0, 2}));
}

TEST(ItemsetTest, OrderingIsSizeThenLex) {
  EXPECT_LT(Itemset({5}), Itemset({0, 1}));
  EXPECT_LT(Itemset({0, 1}), Itemset({0, 2}));
  EXPECT_FALSE(Itemset({0, 2}) < Itemset({0, 1}));
}

TEST(ItemsetTest, HashEqualForEqualSets) {
  const ItemsetHash hash;
  EXPECT_EQ(hash(Itemset({2, 1})), hash(Itemset({1, 2})));
}

TEST(SupportCounterTest, CountsMatchManualEnumeration) {
  const data::TransactionDb db = TinyDb();
  const std::vector<Itemset> itemsets = {Itemset({0}), Itemset({0, 1}),
                                         Itemset({1, 2}), Itemset({0, 1, 2, 3}),
                                         Itemset({4})};
  const std::vector<double> supports = CountSupports(db, itemsets);
  EXPECT_DOUBLE_EQ(supports[0], 4.0 / 5.0);   // {0}
  EXPECT_DOUBLE_EQ(supports[1], 3.0 / 5.0);   // {0,1}
  EXPECT_DOUBLE_EQ(supports[2], 3.0 / 5.0);   // {1,2}
  EXPECT_DOUBLE_EQ(supports[3], 1.0 / 5.0);   // {0,1,2,3}
  EXPECT_DOUBLE_EQ(supports[4], 0.0);         // {4}
}

TEST(SupportCounterTest, DuplicateItemsInInputCannotDoubleCount) {
  // Regression: a transaction carrying its minimum item twice would let
  // the horizontal probe loop visit that anchor's bucket twice and count
  // the candidate double. Two defenses are under test here: AddTransaction
  // dedupes on ingest (the sorted-unique invariant documented in
  // TransactionDb), and the probe loop skips repeated items regardless.
  data::TransactionDb db(4);
  db.AddTransaction(std::vector<int32_t>{1, 1, 2});     // min item twice
  db.AddTransaction(std::vector<int32_t>{2, 1, 2, 1});  // unsorted + dups
  db.AddTransaction(std::vector<int32_t>{3});

  ASSERT_EQ(db.Transaction(0).size(), 2u);  // stored deduped
  ASSERT_EQ(db.Transaction(1).size(), 2u);

  const std::vector<Itemset> itemsets = {Itemset({1}), Itemset({1, 2}),
                                         Itemset({2})};
  const SupportCounter counter(itemsets, db.num_items());
  const std::vector<int64_t> counts = counter.CountAbsolute(db);
  EXPECT_EQ(counts[0], 2);  // {1}: transactions 0 and 1, once each
  EXPECT_EQ(counts[1], 2);  // {1,2}: anchored at item 1, not doubled
  EXPECT_EQ(counts[2], 2);
}

TEST(SupportCounterTest, EmptyItemsetHasFullSupport) {
  const data::TransactionDb db = TinyDb();
  const std::vector<Itemset> itemsets = {Itemset{}};
  EXPECT_DOUBLE_EQ(CountSupports(db, itemsets)[0], 1.0);
}

TEST(AprioriTest, MinesTinyDbCorrectly) {
  const data::TransactionDb db = TinyDb();
  AprioriOptions options;
  options.min_support = 0.6;  // >= 3 of 5 transactions
  const LitsModel model = Apriori(db, options);
  EXPECT_TRUE(model.Contains(Itemset({0})));   // 4/5
  EXPECT_TRUE(model.Contains(Itemset({1})));   // 4/5
  EXPECT_TRUE(model.Contains(Itemset({2})));   // 4/5
  EXPECT_FALSE(model.Contains(Itemset({3})));  // 2/5
  EXPECT_TRUE(model.Contains(Itemset({0, 1})));  // 3/5
  EXPECT_TRUE(model.Contains(Itemset({1, 2})));  // 3/5
  EXPECT_FALSE(model.Contains(Itemset({0, 1, 2})));  // 2/5
  EXPECT_DOUBLE_EQ(model.SupportOr(Itemset({0, 1}), -1), 0.6);
}

TEST(AprioriTest, AgreesWithBruteForceOnRandomData) {
  datagen::QuestParams params;
  params.num_transactions = 300;
  params.num_items = 12;
  params.num_patterns = 6;
  params.avg_pattern_length = 3;
  params.avg_transaction_length = 5;
  params.seed = 21;
  const data::TransactionDb db = datagen::GenerateQuest(params);

  for (const double min_support : {0.05, 0.1, 0.2}) {
    AprioriOptions options;
    options.min_support = min_support;
    const LitsModel apriori = Apriori(db, options);
    const LitsModel brute = BruteForceFrequentItemsets(db, min_support, 0);
    EXPECT_EQ(apriori.size(), brute.size()) << "minsup " << min_support;
    for (const auto& [itemset, support] : brute.supports()) {
      EXPECT_TRUE(apriori.Contains(itemset)) << itemset.ToString();
      EXPECT_NEAR(apriori.SupportOr(itemset, -1), support, 1e-12);
    }
  }
}

TEST(AprioriTest, AbsoluteCountFloorProtectsTinySamples) {
  // A 4-transaction db with min_support low enough that a single
  // occurrence would qualify: the absolute-count floor (default 2) must
  // keep one-off itemsets out.
  data::TransactionDb db(6);
  db.AddTransaction(std::vector<int32_t>{0, 1, 2, 3});
  db.AddTransaction(std::vector<int32_t>{0, 1});
  db.AddTransaction(std::vector<int32_t>{4});
  db.AddTransaction(std::vector<int32_t>{5});
  AprioriOptions options;
  options.min_support = 0.01;  // 0.04 occurrences — degenerate
  const LitsModel floored = Apriori(db, options);
  EXPECT_FALSE(floored.Contains(Itemset({4})));        // appears once
  EXPECT_FALSE(floored.Contains(Itemset({2, 3})));     // appears once
  EXPECT_TRUE(floored.Contains(Itemset({0, 1})));      // appears twice

  options.min_absolute_count = 1;  // explicit opt-out restores raw minsup
  const LitsModel raw = Apriori(db, options);
  EXPECT_TRUE(raw.Contains(Itemset({4})));
  EXPECT_TRUE(raw.Contains(Itemset({0, 1, 2, 3})));
}

TEST(AprioriTest, MaxSizeCapsItemsets) {
  const data::TransactionDb db = TinyDb();
  AprioriOptions options;
  options.min_support = 0.2;
  options.max_itemset_size = 1;
  const LitsModel model = Apriori(db, options);
  for (const auto& [itemset, support] : model.supports()) {
    EXPECT_EQ(itemset.size(), 1);
  }
}

TEST(AprioriTest, StructuralComponentIsSortedAndComplete) {
  const data::TransactionDb db = TinyDb();
  AprioriOptions options;
  options.min_support = 0.4;
  const LitsModel model = Apriori(db, options);
  const std::vector<Itemset> gamma = model.StructuralComponent();
  EXPECT_EQ(static_cast<int64_t>(gamma.size()), model.size());
  EXPECT_TRUE(std::is_sorted(gamma.begin(), gamma.end()));
}

TEST(AprioriTest, AntiMonotonicity) {
  // Every subset of a frequent itemset must be frequent (Apriori
  // invariant) — property check on generated data.
  datagen::QuestParams params;
  params.num_transactions = 400;
  params.num_items = 20;
  params.num_patterns = 8;
  params.seed = 5;
  const data::TransactionDb db = datagen::GenerateQuest(params);
  AprioriOptions options;
  options.min_support = 0.05;
  const LitsModel model = Apriori(db, options);
  for (const auto& [itemset, support] : model.supports()) {
    if (itemset.size() < 2) continue;
    for (int32_t item : itemset.items()) {
      const Itemset subset = itemset.Without(item);
      EXPECT_TRUE(model.Contains(subset))
          << subset.ToString() << " missing though " << itemset.ToString()
          << " is frequent";
      EXPECT_GE(model.SupportOr(subset, -1), support - 1e-12);
    }
  }
}

}  // namespace
}  // namespace focus::lits

// Socket-level integration tests for the network serving stack: a real
// HttpServer on an ephemeral loopback port routing into serve::HttpApi →
// MonitorService. Run under TSan in CI: concurrent clients hammer ingest
// while the event loop, dispatcher, and worker pool all interact.

#include <gtest/gtest.h>

#include "common/mutex.h"

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "datagen/quest_gen.h"
#include "io/data_io.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "serve/http_api.h"
#include "serve/metrics.h"
#include "serve/monitor_service.h"

namespace focus::serve {
namespace {

data::TransactionDb QuestDb(uint64_t seed, int num_transactions = 300) {
  datagen::QuestParams params;
  params.num_transactions = num_transactions;
  params.num_items = 60;
  params.num_patterns = 100;
  params.avg_pattern_length = 4;
  params.avg_transaction_length = 8;
  params.seed = seed;
  params.pattern_seed = 99;
  return datagen::GenerateQuest(params);
}

std::string Serialize(const data::TransactionDb& db) {
  std::ostringstream out;
  io::SaveTransactionDb(db, out);
  return out.str();
}

// Pulls `"key":"value"` or `"key":number` out of a flat JSON response.
// (The payloads are machine-generated and flat, so this stays honest.)
std::string JsonField(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return "";
  size_t begin = at + needle.size();
  if (json[begin] == '"') {
    const size_t end = json.find('"', begin + 1);
    return json.substr(begin + 1, end - begin - 1);
  }
  size_t end = begin;
  while (end < json.size() && json[end] != ',' && json[end] != '}') ++end;
  return json.substr(begin, end - begin);
}

// Boots the whole stack (service + api + server) around one reference db.
class ApiStack {
 public:
  explicit ApiStack(MonitorServiceOptions service_options =
                        MonitorServiceOptions(),
                    HttpApiOptions api_options = HttpApiOptions())
      : reference_(QuestDb(1)),
        service_(service_options, &metrics_),
        api_(api_options, &service_, &reference_, &metrics_),
        server_(net::HttpServerOptions{}, api_.BuildRouter()) {
    api_.AttachServer(&server_);
    std::string error;
    started_ = server_.Start(&error);
    EXPECT_TRUE(started_) << error;
  }

  ~ApiStack() {
    server_.Stop();
    service_.Shutdown();
  }

  net::HttpClient Client(int timeout_ms = 10'000) {
    net::HttpClient client(timeout_ms);
    EXPECT_TRUE(client.Connect("127.0.0.1", server_.port()));
    return client;
  }

  MetricsRegistry metrics_;
  data::TransactionDb reference_;
  MonitorService service_;
  HttpApi api_;
  net::HttpServer server_;
  bool started_ = false;
};

TEST(HttpApiTest, IngestDeviationCompareRoundtrip) {
  ApiStack stack;
  auto client = stack.Client();

  const std::string snap_a = Serialize(QuestDb(2));
  const std::string snap_b = Serialize(QuestDb(3));

  const auto post_a =
      client.Post("/v1/streams/payments/snapshots", snap_a, "text/plain");
  ASSERT_TRUE(post_a.has_value());
  ASSERT_EQ(post_a->status, 202) << post_a->body;
  EXPECT_EQ(JsonField(post_a->body, "stream"), "payments");
  EXPECT_EQ(JsonField(post_a->body, "sequence"), "0");
  const std::string hash_a = JsonField(post_a->body, "content_hash");
  ASSERT_EQ(hash_a.size(), 16u);

  const auto post_b =
      client.Post("/v1/streams/payments/snapshots", snap_b, "text/plain");
  ASSERT_TRUE(post_b.has_value());
  ASSERT_EQ(post_b->status, 202);
  EXPECT_EQ(JsonField(post_b->body, "sequence"), "1");
  const std::string hash_b = JsonField(post_b->body, "content_hash");
  EXPECT_NE(hash_a, hash_b);

  stack.service_.Flush();

  const auto deviation =
      client.Get("/v1/streams/payments/deviation?f=scaled&g=max");
  ASSERT_TRUE(deviation.has_value());
  ASSERT_EQ(deviation->status, 200) << deviation->body;
  EXPECT_EQ(JsonField(deviation->body, "processed"), "2");
  EXPECT_EQ(JsonField(deviation->body, "seq"), "1");
  EXPECT_EQ(JsonField(deviation->body, "f"), "scaled");
  EXPECT_FALSE(JsonField(deviation->body, "deviation").empty());

  // Compare the two ingested snapshots by content hash — served from the
  // model cache, and symmetric under (abs,sum).
  const auto ab = client.Post(
      "/v1/compare?left=" + hash_a + "&right=" + hash_b + "&f=abs&g=sum", "",
      "text/plain");
  ASSERT_TRUE(ab.has_value());
  ASSERT_EQ(ab->status, 200) << ab->body;
  const std::string delta_ab = JsonField(ab->body, "deviation");
  EXPECT_FALSE(delta_ab.empty());

  // Same parameters via a form body instead of the query string.
  const auto ba = client.Post(
      "/v1/compare", "left=" + hash_b + "&right=" + hash_a + "&f=abs&g=sum",
      "application/x-www-form-urlencoded");
  ASSERT_TRUE(ba.has_value());
  ASSERT_EQ(ba->status, 200) << ba->body;
  EXPECT_EQ(JsonField(ba->body, "deviation"), delta_ab);

  // A snapshot compared against itself deviates by zero.
  const auto aa = client.Post(
      "/v1/compare?left=" + hash_a + "&right=" + hash_a, "", "text/plain");
  ASSERT_TRUE(aa.has_value());
  EXPECT_EQ(JsonField(aa->body, "deviation"), "0");
}

TEST(HttpApiTest, RejectsBadInputsWithPreciseStatuses) {
  ApiStack stack;
  auto client = stack.Client();

  const auto bad_body = client.Post("/v1/streams/s/snapshots",
                                    "this is not a snapshot", "text/plain");
  ASSERT_TRUE(bad_body.has_value());
  EXPECT_EQ(bad_body->status, 400);

  const auto empty_body =
      client.Post("/v1/streams/s/snapshots", "", "text/plain");
  ASSERT_TRUE(empty_body.has_value());
  EXPECT_EQ(empty_body->status, 400);

  const auto bad_name = client.Post("/v1/streams/bad%20name/snapshots",
                                    Serialize(QuestDb(2)), "text/plain");
  ASSERT_TRUE(bad_name.has_value());
  EXPECT_EQ(bad_name->status, 400);

  const auto unknown_stream = client.Get("/v1/streams/ghost/deviation");
  ASSERT_TRUE(unknown_stream.has_value());
  EXPECT_EQ(unknown_stream->status, 404);

  const auto bad_fn = client.Get("/v1/streams/ghost/deviation?f=cubed");
  ASSERT_TRUE(bad_fn.has_value());
  EXPECT_EQ(bad_fn->status, 400);

  const auto bad_hash =
      client.Post("/v1/compare?left=zzzz&right=0", "", "text/plain");
  ASSERT_TRUE(bad_hash.has_value());
  EXPECT_EQ(bad_hash->status, 400);

  const auto unknown_hash = client.Post(
      "/v1/compare?left=0123456789abcdef&right=fedcba9876543210", "",
      "text/plain");
  ASSERT_TRUE(unknown_hash.has_value());
  EXPECT_EQ(unknown_hash->status, 404);

  const auto wrong_method = client.Get("/v1/compare");
  ASSERT_TRUE(wrong_method.has_value());
  EXPECT_EQ(wrong_method->status, 405);
}

TEST(HttpApiTest, MetricsAndHealthEndpoints) {
  ApiStack stack;
  auto client = stack.Client();
  ASSERT_EQ(client
                .Post("/v1/streams/m/snapshots", Serialize(QuestDb(2)),
                      "text/plain")
                ->status,
            202);
  stack.service_.Flush();

  const auto prom = client.Get("/metrics");
  ASSERT_TRUE(prom.has_value());
  ASSERT_EQ(prom->status, 200);
  EXPECT_NE(prom->headers.at("content-type").find("text/plain"),
            std::string::npos);
  EXPECT_NE(prom->body.find("# TYPE focus_snapshots_processed_total counter"),
            std::string::npos);
  EXPECT_NE(prom->body.find("focus_snapshots_processed_total 1"),
            std::string::npos);
  EXPECT_NE(prom->body.find("focus_inspect_latency_ms_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(prom->body.find("focus_http_requests_total"), std::string::npos);

  const auto json = client.Get("/metrics?format=json");
  ASSERT_TRUE(json.has_value());
  EXPECT_NE(json->body.find("\"counters\""), std::string::npos);

  const auto health = client.Get("/healthz");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(JsonField(health->body, "status"), "ok");

  stack.api_.SetDraining(true);
  const auto draining = client.Get("/healthz");
  ASSERT_TRUE(draining.has_value());
  EXPECT_EQ(JsonField(draining->body, "status"), "draining");
}

// The contract the ISSUE pins: ≥8 concurrent connections, every accepted
// snapshot processed exactly once (no losses, no duplicates).
TEST(HttpApiTest, ConcurrentIngestLosesNothing) {
  ApiStack stack;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 6;

  common::Mutex mu;
  std::set<std::string> sequences;  // "<stream>#<seq>" pairs seen in 202s
  std::atomic<int> accepted{0}, rejected{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      auto client = stack.Client();
      // Two streams shared across threads: sequence assignment itself is
      // contended, not just the queue.
      const std::string stream = "s" + std::to_string(t % 2);
      for (int i = 0; i < kPerThread; ++i) {
        const std::string body =
            Serialize(QuestDb(100 + t * kPerThread + i, 120));
        const auto response = client.Post(
            "/v1/streams/" + stream + "/snapshots", body, "text/plain");
        ASSERT_TRUE(response.has_value());
        if (response->status == 202) {
          accepted.fetch_add(1);
          common::MutexLock lock(&mu);
          const bool fresh =
              sequences
                  .insert(stream + "#" + JsonField(response->body, "sequence"))
                  .second;
          EXPECT_TRUE(fresh) << "duplicate sequence handed out";
        } else {
          EXPECT_EQ(response->status, 429);
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  stack.service_.Flush();
  // Every 202 corresponds to exactly one processed snapshot; nothing is
  // lost in the server, the api, or the queue, and nothing runs twice.
  EXPECT_EQ(stack.service_.processed(), accepted.load());
  EXPECT_EQ(static_cast<int>(sequences.size()), accepted.load());
  EXPECT_EQ(accepted.load() + rejected.load(), kThreads * kPerThread);
  // Per-stream sequences are dense 0..n-1 (the 429 path never burns one).
  for (const std::string stream : {"s0", "s1"}) {
    int count = 0;
    while (sequences.count(stream + "#" + std::to_string(count)) > 0) ++count;
    for (const auto& entry : sequences) {
      if (entry.rfind(stream + "#", 0) == 0) {
        EXPECT_LT(std::stoi(entry.substr(stream.size() + 1)), count)
            << "hole in " << stream << " sequence numbering";
      }
    }
  }
}

// Saturate a tiny service so the bounded ingest wait expires: clients must
// see 429 + Retry-After, and accepted work still all completes.
TEST(HttpApiTest, BackpressureAnswers429WithRetryAfter) {
  MonitorServiceOptions service_options;
  service_options.num_threads = 1;
  service_options.queue_capacity = 1;  // in-flight bound: 1
  HttpApiOptions api_options;
  api_options.ingest_wait_ms = 1;
  ApiStack stack(service_options, api_options);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 4;
  std::atomic<int> accepted{0}, overloaded{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      auto client = stack.Client();
      for (int i = 0; i < kPerThread; ++i) {
        // Distinct snapshots: every accepted one is a cache miss that
        // must be mined, keeping the single worker busy.
        const std::string body =
            Serialize(QuestDb(500 + t * kPerThread + i, 200));
        const auto response =
            client.Post("/v1/streams/hot/snapshots", body, "text/plain");
        ASSERT_TRUE(response.has_value());
        if (response->status == 202) {
          accepted.fetch_add(1);
        } else {
          ASSERT_EQ(response->status, 429) << response->body;
          EXPECT_EQ(response->headers.at("retry-after"), "1");
          overloaded.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_GT(overloaded.load(), 0) << "saturation never produced a 429";
  EXPECT_GT(accepted.load(), 0);
  stack.service_.Flush();
  EXPECT_EQ(stack.service_.processed(), accepted.load());
  EXPECT_EQ(stack.metrics_.GetCounter("snapshots_shed").Value(),
            overloaded.load());
}

TEST(HttpApiTest, DrainRefusesNewConnectionsAndFinishesWork) {
  ApiStack stack;
  auto client = stack.Client();
  ASSERT_EQ(client
                .Post("/v1/streams/d/snapshots", Serialize(QuestDb(7)),
                      "text/plain")
                ->status,
            202);

  stack.api_.SetDraining(true);
  stack.server_.BeginDrain();
  EXPECT_TRUE(stack.server_.WaitDrained(2000));
  stack.service_.Flush();
  EXPECT_EQ(stack.service_.processed(), 1);
  EXPECT_EQ(stack.server_.stats().open_connections, 0);
}

}  // namespace
}  // namespace focus::serve

#include <cmath>

#include <gtest/gtest.h>

#include "datagen/class_gen.h"
#include "datagen/perturb.h"
#include "datagen/quest_gen.h"

namespace focus::datagen {
namespace {

using Cols = ClassGenColumns;

TEST(QuestGenTest, ProducesRequestedShape) {
  QuestParams params;
  params.num_transactions = 500;
  params.num_items = 100;
  params.num_patterns = 50;
  params.avg_pattern_length = 3;
  params.avg_transaction_length = 8;
  const data::TransactionDb db = GenerateQuest(params);
  EXPECT_EQ(db.num_transactions(), 500);
  EXPECT_EQ(db.num_items(), 100);
  int64_t total_items = 0;
  for (int64_t t = 0; t < db.num_transactions(); ++t) {
    EXPECT_GE(db.Transaction(t).size(), 1u);
    total_items += static_cast<int64_t>(db.Transaction(t).size());
  }
  // Average length should be in the vicinity of the requested mean
  // (corruption and dedup pull it down somewhat).
  const double avg = static_cast<double>(total_items) / 500.0;
  EXPECT_GT(avg, 2.0);
  EXPECT_LT(avg, 16.0);
}

TEST(QuestGenTest, DeterministicInSeed) {
  QuestParams params;
  params.num_transactions = 50;
  params.num_items = 40;
  params.num_patterns = 10;
  params.seed = 9;
  const data::TransactionDb a = GenerateQuest(params);
  const data::TransactionDb b = GenerateQuest(params);
  ASSERT_EQ(a.num_transactions(), b.num_transactions());
  for (int64_t t = 0; t < a.num_transactions(); ++t) {
    ASSERT_EQ(a.Transaction(t).size(), b.Transaction(t).size());
    for (size_t i = 0; i < a.Transaction(t).size(); ++i) {
      EXPECT_EQ(a.Transaction(t)[i], b.Transaction(t)[i]);
    }
  }
}

TEST(QuestGenTest, DifferentSeedsDiffer) {
  QuestParams params;
  params.num_transactions = 100;
  params.num_items = 50;
  params.num_patterns = 20;
  params.seed = 1;
  const data::TransactionDb a = GenerateQuest(params);
  params.seed = 2;
  const data::TransactionDb b = GenerateQuest(params);
  bool any_difference = false;
  for (int64_t t = 0; t < 100 && !any_difference; ++t) {
    if (a.Transaction(t).size() != b.Transaction(t).size()) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(QuestGenTest, SharedPatternSeedSharesTheProcess) {
  // Same pattern_seed + different seed = independent samples of ONE
  // process: item frequencies should be far closer than across two
  // unrelated processes.
  QuestParams params;
  params.num_transactions = 2000;
  params.num_items = 100;
  params.num_patterns = 20;
  params.avg_pattern_length = 4;
  params.avg_transaction_length = 8;
  params.pattern_seed = 555;
  params.seed = 1;
  const data::TransactionDb a = GenerateQuest(params);
  params.seed = 2;
  const data::TransactionDb b = GenerateQuest(params);
  params.pattern_seed = 556;  // different process
  params.seed = 3;
  const data::TransactionDb c = GenerateQuest(params);

  auto item_freqs = [](const data::TransactionDb& db) {
    std::vector<double> freqs(db.num_items(), 0.0);
    for (int64_t t = 0; t < db.num_transactions(); ++t) {
      for (int32_t item : db.Transaction(t)) freqs[item] += 1.0;
    }
    for (double& f : freqs) f /= static_cast<double>(db.num_transactions());
    return freqs;
  };
  auto l1_distance = [](const std::vector<double>& x,
                        const std::vector<double>& y) {
    double total = 0.0;
    for (size_t i = 0; i < x.size(); ++i) total += std::fabs(x[i] - y[i]);
    return total;
  };
  const auto fa = item_freqs(a);
  const auto fb = item_freqs(b);
  const auto fc = item_freqs(c);
  EXPECT_LT(l1_distance(fa, fb) * 2.0, l1_distance(fa, fc));
}

TEST(QuestGenTest, NameFollowsPaperConvention) {
  QuestParams params;
  params.num_transactions = 1000000;
  params.avg_transaction_length = 20;
  params.num_items = 1000;
  params.num_patterns = 4000;
  params.avg_pattern_length = 4;
  EXPECT_EQ(params.Name(), "1M.20L.1K.4000pats.4patlen");
}

TEST(ClassGenTest, SchemaShape) {
  const data::Schema schema = ClassGenSchema();
  EXPECT_EQ(schema.num_attributes(), 9);
  EXPECT_EQ(schema.num_classes(), 2);
  EXPECT_EQ(schema.attribute(Cols::kElevel).type,
            data::AttributeType::kCategorical);
  EXPECT_EQ(schema.attribute(Cols::kSalary).type,
            data::AttributeType::kNumeric);
}

TEST(ClassGenTest, AttributeDomains) {
  ClassGenParams params;
  params.num_rows = 2000;
  params.seed = 3;
  const data::Dataset dataset = GenerateClassification(params);
  ASSERT_EQ(dataset.num_rows(), 2000);
  for (int64_t i = 0; i < dataset.num_rows(); ++i) {
    EXPECT_GE(dataset.At(i, Cols::kSalary), 20000.0);
    EXPECT_LE(dataset.At(i, Cols::kSalary), 150000.0);
    EXPECT_GE(dataset.At(i, Cols::kAge), 20.0);
    EXPECT_LE(dataset.At(i, Cols::kAge), 80.0);
    const double elevel = dataset.At(i, Cols::kElevel);
    EXPECT_GE(elevel, 0.0);
    EXPECT_LE(elevel, 4.0);
    // Commission is 0 exactly when salary >= 75K.
    if (dataset.At(i, Cols::kSalary) >= 75000.0) {
      EXPECT_DOUBLE_EQ(dataset.At(i, Cols::kCommission), 0.0);
    } else {
      EXPECT_GE(dataset.At(i, Cols::kCommission), 10000.0);
    }
  }
}

TEST(ClassGenTest, F1LabelsMatchDefinition) {
  ClassGenParams params;
  params.num_rows = 500;
  params.function = ClassFunction::kF1;
  const data::Dataset dataset = GenerateClassification(params);
  for (int64_t i = 0; i < dataset.num_rows(); ++i) {
    const double age = dataset.At(i, Cols::kAge);
    const int expected = (age < 40.0 || age >= 60.0) ? 0 : 1;
    EXPECT_EQ(dataset.Label(i), expected);
  }
}

TEST(ClassGenTest, EveryFunctionProducesBothClasses) {
  for (const ClassFunction f :
       {ClassFunction::kF1, ClassFunction::kF2, ClassFunction::kF3,
        ClassFunction::kF4, ClassFunction::kF5, ClassFunction::kF6,
        ClassFunction::kF7}) {
    ClassGenParams params;
    params.num_rows = 3000;
    params.function = f;
    params.seed = 17;
    const data::Dataset dataset = GenerateClassification(params);
    int64_t class0 = 0;
    for (int64_t i = 0; i < dataset.num_rows(); ++i) {
      if (dataset.Label(i) == 0) ++class0;
    }
    EXPECT_GT(class0, 0) << "F" << static_cast<int>(f);
    EXPECT_LT(class0, dataset.num_rows()) << "F" << static_cast<int>(f);
  }
}

TEST(ClassGenTest, LabelNoiseFlipsRoughlyRequestedFraction) {
  ClassGenParams clean;
  clean.num_rows = 5000;
  clean.function = ClassFunction::kF2;
  clean.seed = 4;
  ClassGenParams noisy = clean;
  noisy.label_noise = 0.2;
  const data::Dataset a = GenerateClassification(clean);
  const data::Dataset b = GenerateClassification(noisy);
  // Same seed => identical attribute streams would require identical RNG
  // consumption; noise consumes extra draws, so just check the flip rate
  // against the function re-evaluated per row.
  int64_t flipped = 0;
  for (int64_t i = 0; i < b.num_rows(); ++i) {
    if (b.Label(i) != EvaluateClassFunction(ClassFunction::kF2, b.Row(i))) {
      ++flipped;
    }
  }
  const double rate = static_cast<double>(flipped) / 5000.0;
  EXPECT_NEAR(rate, 0.2, 0.03);
  (void)a;
}

TEST(ClassGenTest, NameFollowsPaperConvention) {
  ClassGenParams params;
  params.num_rows = 1000000;
  params.function = ClassFunction::kF3;
  EXPECT_EQ(params.Name(), "1M.F3");
}

TEST(PerturbTest, FlipLabelsRate) {
  ClassGenParams params;
  params.num_rows = 4000;
  const data::Dataset dataset = GenerateClassification(params);
  const data::Dataset flipped = FlipLabels(dataset, 0.3, 8);
  int64_t differs = 0;
  for (int64_t i = 0; i < dataset.num_rows(); ++i) {
    if (dataset.Label(i) != flipped.Label(i)) ++differs;
    // Attributes untouched.
    EXPECT_DOUBLE_EQ(dataset.At(i, 0), flipped.At(i, 0));
  }
  EXPECT_NEAR(static_cast<double>(differs) / 4000.0, 0.3, 0.03);
}

TEST(PerturbTest, JitterRespectsDomainsAndCategoricals) {
  ClassGenParams params;
  params.num_rows = 1000;
  const data::Dataset dataset = GenerateClassification(params);
  const data::Dataset jittered = JitterNumeric(dataset, 0.05, 8);
  bool any_changed = false;
  for (int64_t i = 0; i < dataset.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(dataset.At(i, Cols::kElevel), jittered.At(i, Cols::kElevel));
    EXPECT_GE(jittered.At(i, Cols::kSalary), 20000.0);
    EXPECT_LE(jittered.At(i, Cols::kSalary), 150000.0);
    if (dataset.At(i, Cols::kSalary) != jittered.At(i, Cols::kSalary)) {
      any_changed = true;
    }
  }
  EXPECT_TRUE(any_changed);
}

TEST(PerturbTest, ReplaceItemsKeepsUniverse) {
  QuestParams params;
  params.num_transactions = 200;
  params.num_items = 30;
  params.num_patterns = 10;
  const data::TransactionDb db = GenerateQuest(params);
  const data::TransactionDb replaced = ReplaceItems(db, 0.5, 8);
  EXPECT_EQ(replaced.num_transactions(), db.num_transactions());
  EXPECT_EQ(replaced.num_items(), db.num_items());
}

TEST(PerturbTest, ZeroProbabilityIsIdentityOnLabels) {
  ClassGenParams params;
  params.num_rows = 300;
  const data::Dataset dataset = GenerateClassification(params);
  const data::Dataset same = FlipLabels(dataset, 0.0, 8);
  for (int64_t i = 0; i < dataset.num_rows(); ++i) {
    EXPECT_EQ(dataset.Label(i), same.Label(i));
  }
}

}  // namespace
}  // namespace focus::datagen

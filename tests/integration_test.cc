// End-to-end flows across modules: generate -> mine/train -> deviate ->
// qualify, mirroring how the examples and the paper's experiments use the
// library.

#include <gtest/gtest.h>

#include "focus/focus.h"

namespace focus {
namespace {

TEST(IntegrationTest, LitsPipelineEndToEnd) {
  // Two snapshot datasets from slightly different processes.
  datagen::QuestParams params;
  params.num_transactions = 1500;
  params.num_items = 100;
  params.num_patterns = 30;
  params.avg_pattern_length = 3;
  params.avg_transaction_length = 10;
  params.seed = 1;
  const data::TransactionDb d1 = datagen::GenerateQuest(params);
  params.avg_pattern_length = 5;  // drift in pattern length
  params.seed = 2;
  const data::TransactionDb d2 = datagen::GenerateQuest(params);

  lits::AprioriOptions apriori;
  apriori.min_support = 0.02;
  const lits::LitsModel m1 = lits::Apriori(d1, apriori);
  const lits::LitsModel m2 = lits::Apriori(d2, apriori);

  core::DeviationFunction fn;
  const double deviation = core::LitsDeviation(m1, d1, m2, d2, fn);
  const double bound = core::LitsUpperBound(m1, m2, core::AggregateKind::kSum);
  EXPECT_GT(deviation, 0.0);
  EXPECT_GE(bound, deviation - 1e-12);

  // Ranked drill-down into the most-changed itemsets.
  const auto ranked = core::RankLitsRegions(core::LitsGcr(m1, m2), m1, d1, m2,
                                            d2, core::AbsoluteDiff());
  ASSERT_FALSE(ranked.empty());
  EXPECT_GE(ranked.front().deviation, ranked.back().deviation);
}

TEST(IntegrationTest, DtPipelineEndToEnd) {
  datagen::ClassGenParams params;
  params.num_rows = 3000;
  params.function = datagen::ClassFunction::kF2;
  params.seed = 1;
  const data::Dataset d1 = datagen::GenerateClassification(params);
  params.function = datagen::ClassFunction::kF4;
  params.seed = 2;
  const data::Dataset d2 = datagen::GenerateClassification(params);

  dt::CartOptions cart;
  cart.max_depth = 5;
  cart.min_leaf_size = 40;
  const core::DtModel m1(dt::BuildCart(d1, cart), d1);
  const core::DtModel m2(dt::BuildCart(d2, cart), d2);

  core::DtDeviationOptions options;
  const double deviation = core::DtDeviation(m1, d1, m2, d2, options);
  EXPECT_GT(deviation, 0.0);

  // Deviation correlates with misclassification (Figure 15's shape):
  // identical data has both ~0.
  const double me = core::MisclassificationError(m1.tree(), d2);
  EXPECT_GT(me, 0.0);

  core::DtDeviationOptions self_options;
  EXPECT_NEAR(core::DtDeviation(m1, d1, m1, d1, self_options), 0.0, 1e-12);
  EXPECT_LT(core::MisclassificationError(m1.tree(), d1), me);
}

TEST(IntegrationTest, ClusterPipelineEndToEnd) {
  const data::Schema schema(
      {data::Schema::Numeric("x", 0.0, 10.0), data::Schema::Numeric("y", 0.0, 10.0)},
      0);
  data::Dataset d1(schema);
  data::Dataset d2(schema);
  for (int i = 0; i < 300; ++i) {
    const double jitter = (i % 10) * 0.04;
    d1.AddRow(std::vector<double>{2.0 + jitter, 2.0 + jitter}, 0);
    d2.AddRow(std::vector<double>{(i % 2 == 0) ? 2.0 + jitter : 7.5 + jitter,
                                  2.0 + jitter},
              0);
  }
  const cluster::Grid grid(schema, {0, 1}, 10);
  cluster::GridClusteringOptions clustering;
  clustering.density_threshold = 0.02;
  const cluster::ClusterModel m1 = cluster::GridClustering(d1, grid, clustering);
  const cluster::ClusterModel m2 = cluster::GridClustering(d2, grid, clustering);

  core::ClusterDeviationOptions options;
  const double deviation = core::ClusterDeviation(m1, d1, m2, d2, options);
  EXPECT_GT(deviation, 0.4);  // half the mass moved
}

TEST(IntegrationTest, SnapshotGrowthMonitoring) {
  // The paper's Section-7 block-append experiment in miniature: appending
  // a block from a DIFFERENT process should deviate more than appending a
  // same-process block.
  datagen::ClassGenParams params;
  params.num_rows = 2000;
  params.function = datagen::ClassFunction::kF1;
  params.seed = 1;
  const data::Dataset base = datagen::GenerateClassification(params);

  params.num_rows = 400;
  params.seed = 2;
  const data::Dataset same_block = datagen::GenerateClassification(params);
  params.function = datagen::ClassFunction::kF3;
  params.seed = 3;
  const data::Dataset drift_block = datagen::GenerateClassification(params);

  data::Dataset with_same = base;
  with_same.Append(same_block);
  data::Dataset with_drift = base;
  with_drift.Append(drift_block);

  dt::CartOptions cart;
  cart.max_depth = 4;
  const core::DtModel m_base(dt::BuildCart(base, cart), base);
  const core::DtModel m_same(dt::BuildCart(with_same, cart), with_same);
  const core::DtModel m_drift(dt::BuildCart(with_drift, cart), with_drift);

  core::DtDeviationOptions options;
  const double dev_same = core::DtDeviation(m_base, base, m_same, with_same, options);
  const double dev_drift =
      core::DtDeviation(m_base, base, m_drift, with_drift, options);
  EXPECT_GT(dev_drift, dev_same);
}

TEST(IntegrationTest, UmbrellaHeaderExposesEverything) {
  // Compile-time check that focus/focus.h pulls in the full public API.
  core::DeviationFunction fn;
  EXPECT_EQ(fn.g, core::AggregateKind::kSum);
  stats::WilcoxonResult wilcoxon;
  EXPECT_DOUBLE_EQ(wilcoxon.p_two_sided, 1.0);
  EXPECT_GT(stats::ChiSquaredCdf(1.0, 1.0), 0.0);
}

}  // namespace
}  // namespace focus

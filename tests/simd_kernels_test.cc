// Unit tests for data::simd — the dispatched AND/AND-NOT popcount kernels.
// The contract under test is exactness: every dispatch level returns the
// same integers as a std::popcount reference loop, on every length
// (vector-width remainders included) and on adversarial word patterns.

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "data/simd_kernels.h"
#include "stats/rng.h"

namespace focus::data::simd {
namespace {

std::vector<Level> SupportedLevels() {
  std::vector<Level> levels = {Level::kScalar};
  if (LevelSupported(Level::kAvx2)) levels.push_back(Level::kAvx2);
  if (LevelSupported(Level::kAvx512)) levels.push_back(Level::kAvx512);
  return levels;
}

int64_t ReferencePopcount(const std::vector<uint64_t>& words) {
  int64_t count = 0;
  for (uint64_t word : words) count += std::popcount(word);
  return count;
}

TEST(SimdKernelsTest, LevelNamesRoundTripThroughParse) {
  for (Level level : {Level::kScalar, Level::kAvx2, Level::kAvx512}) {
    const auto parsed = ParseLevel(LevelName(level));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(ParseLevel("sse2").has_value());
  EXPECT_FALSE(ParseLevel("").has_value());
  EXPECT_FALSE(ParseLevel("AVX2").has_value());  // case-sensitive
}

TEST(SimdKernelsTest, ScalarAlwaysSupportedAndDetectIsSupported) {
  EXPECT_TRUE(LevelSupported(Level::kScalar));
  EXPECT_TRUE(LevelSupported(DetectLevel()));
  EXPECT_EQ(CurrentLevel(), DetectLevel());
}

TEST(SimdKernelsTest, ScopedLevelOverridesAndRestores) {
  const Level before = CurrentLevel();
  {
    ScopedLevelForTesting scoped(Level::kScalar);
    EXPECT_EQ(CurrentLevel(), Level::kScalar);
    {
      // Nested scopes restore the OUTER override, not the detected level.
      ScopedLevelForTesting inner(Level::kScalar);
      EXPECT_EQ(CurrentLevel(), Level::kScalar);
    }
    EXPECT_EQ(CurrentLevel(), Level::kScalar);
  }
  EXPECT_EQ(CurrentLevel(), before);
}

TEST(SimdKernelsTest, PopcountMatchesReferenceAtEveryLevelAndLength) {
  std::mt19937_64 rng = stats::MakeRng(0xC0FFEE);
  // Lengths straddle the 4-word (AVX2) and 8-word (AVX-512) strides so
  // every tail path runs.
  for (const int64_t n : {0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 64, 1000}) {
    std::vector<uint64_t> words(static_cast<size_t>(n));
    for (uint64_t& word : words) word = rng();
    const int64_t expected = ReferencePopcount(words);
    for (Level level : SupportedLevels()) {
      ScopedLevelForTesting scoped(level);
      EXPECT_EQ(PopcountWords(words.data(), n), expected)
          << "n=" << n << " level=" << LevelName(level);
    }
  }
}

TEST(SimdKernelsTest, AndAndAndNotMatchReferenceAtEveryLevel) {
  std::mt19937_64 rng = stats::MakeRng(0xBEEF);
  for (const int64_t n : {1, 7, 8, 9, 31, 32, 33, 500}) {
    std::vector<uint64_t> a(static_cast<size_t>(n));
    std::vector<uint64_t> b(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      a[static_cast<size_t>(i)] = rng();
      b[static_cast<size_t>(i)] = rng();
    }
    int64_t expected_and = 0;
    int64_t expected_andnot = 0;
    for (int64_t i = 0; i < n; ++i) {
      expected_and += std::popcount(a[static_cast<size_t>(i)] &
                                    b[static_cast<size_t>(i)]);
      expected_andnot += std::popcount(a[static_cast<size_t>(i)] &
                                       ~b[static_cast<size_t>(i)]);
    }
    for (Level level : SupportedLevels()) {
      ScopedLevelForTesting scoped(level);
      EXPECT_EQ(AndPopcountWords(a.data(), b.data(), n), expected_and)
          << "n=" << n << " level=" << LevelName(level);
      EXPECT_EQ(AndNotPopcountWords(a.data(), b.data(), n), expected_andnot)
          << "n=" << n << " level=" << LevelName(level);
    }
  }
}

TEST(SimdKernelsTest, KWayIntersectWithExcludeMatchesReference) {
  std::mt19937_64 rng = stats::MakeRng(0xFACADE);
  constexpr int64_t kWords = 77;  // not a multiple of any vector stride
  for (const int k : {1, 2, 3, 5, 9}) {
    std::vector<std::vector<uint64_t>> streams(
        static_cast<size_t>(k), std::vector<uint64_t>(kWords));
    std::vector<uint64_t> exclude(kWords);
    std::vector<const uint64_t*> ptrs;
    for (auto& stream : streams) {
      for (uint64_t& word : stream) word = rng();
      ptrs.push_back(stream.data());
    }
    for (uint64_t& word : exclude) word = rng();

    int64_t expected = 0;
    int64_t expected_excluded = 0;
    for (int64_t i = 0; i < kWords; ++i) {
      uint64_t acc = ~uint64_t{0};
      for (const auto& stream : streams) acc &= stream[static_cast<size_t>(i)];
      expected += std::popcount(acc);
      expected_excluded +=
          std::popcount(acc & ~exclude[static_cast<size_t>(i)]);
    }
    for (Level level : SupportedLevels()) {
      ScopedLevelForTesting scoped(level);
      EXPECT_EQ(IntersectPopcountWords(ptrs.data(), k, nullptr, kWords),
                expected)
          << "k=" << k << " level=" << LevelName(level);
      EXPECT_EQ(IntersectPopcountWords(ptrs.data(), k, exclude.data(), kWords),
                expected_excluded)
          << "k=" << k << " level=" << LevelName(level);
    }
  }
}

TEST(SimdKernelsTest, AndWordsInPlaceMatchesScalarFold) {
  std::mt19937_64 rng = stats::MakeRng(0xDADA);
  for (const int64_t n : {1, 4, 8, 13, 1024}) {
    std::vector<uint64_t> original(static_cast<size_t>(n));
    std::vector<uint64_t> src(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      original[static_cast<size_t>(i)] = rng();
      src[static_cast<size_t>(i)] = rng();
    }
    std::vector<uint64_t> expected(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      expected[static_cast<size_t>(i)] = original[static_cast<size_t>(i)] &
                                         src[static_cast<size_t>(i)];
    }
    for (Level level : SupportedLevels()) {
      std::vector<uint64_t> dst = original;
      ScopedLevelForTesting scoped(level);
      AndWordsInPlace(dst.data(), src.data(), n);
      EXPECT_EQ(dst, expected) << "n=" << n << " level=" << LevelName(level);
    }
  }
}

TEST(SimdKernelsTest, ExtremeDensityWords) {
  // All-ones and all-zeros are where a miscounted LUT nibble or a double-
  // counted tail shows up most clearly.
  for (const int64_t n : {9, 16, 129}) {
    const std::vector<uint64_t> ones(static_cast<size_t>(n), ~uint64_t{0});
    const std::vector<uint64_t> zeros(static_cast<size_t>(n), 0);
    for (Level level : SupportedLevels()) {
      ScopedLevelForTesting scoped(level);
      EXPECT_EQ(PopcountWords(ones.data(), n), 64 * n);
      EXPECT_EQ(PopcountWords(zeros.data(), n), 0);
      EXPECT_EQ(AndPopcountWords(ones.data(), zeros.data(), n), 0);
      EXPECT_EQ(AndNotPopcountWords(ones.data(), zeros.data(), n), 64 * n);
      EXPECT_EQ(AndNotPopcountWords(ones.data(), ones.data(), n), 0);
    }
  }
}

}  // namespace
}  // namespace focus::data::simd

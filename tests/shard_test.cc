// Unit tests for the sharded scale-out stack: wire codec + incremental
// decoder, consistent-hash ring, the Unix-socket WireServer/ShardClient
// pair, and ShardWorker frame dispatch. The equivalence laws (sharded ≡
// single-node, bit-identical) live in tests/laws/laws_shard_test.cc; this
// file pins the byte-level and transport-level contracts.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "datagen/quest_gen.h"
#include "io/data_io.h"
#include "shard/hash_ring.h"
#include "shard/shard_client.h"
#include "shard/shard_router.h"
#include "shard/shard_worker.h"
#include "shard/wire.h"
#include "shard/wire_server.h"

namespace focus::shard {
namespace {

data::TransactionDb QuestDb(uint64_t seed, int num_transactions = 300) {
  datagen::QuestParams params;
  params.num_transactions = num_transactions;
  params.num_items = 60;
  params.num_patterns = 100;
  params.avg_pattern_length = 4;
  params.avg_transaction_length = 8;
  params.seed = seed;
  params.pattern_seed = 99;
  return datagen::GenerateQuest(params);
}

std::string Serialize(const data::TransactionDb& db) {
  std::ostringstream out;
  io::SaveTransactionDb(db, out);
  return out.str();
}

// A fresh Unix-socket path under TMPDIR, unique per test.
std::string SocketPath(const std::string& tag) {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = tmp != nullptr ? tmp : "/tmp";
  return dir + "/focus_shard_test_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

// ------------------------------------------------------------------ codec

TEST(WireCodecTest, PayloadPrimitivesRoundTrip) {
  PayloadWriter writer;
  writer.PutU8(7);
  writer.PutU16(0xBEEF);
  writer.PutU32(0xDEADBEEF);
  writer.PutU64(0x0123456789ABCDEFull);
  writer.PutI64(-42);
  writer.PutDouble(0.1 + 0.2);  // not representable exactly: bits must match
  writer.PutString("hello");
  writer.PutItemset(lits::Itemset{1, 5, 9});

  PayloadReader reader(writer.bytes());
  uint8_t u8 = 0;
  uint16_t u16 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double d = 0;
  std::string text;
  lits::Itemset itemset;
  EXPECT_TRUE(reader.GetU8(&u8));
  EXPECT_TRUE(reader.GetU16(&u16));
  EXPECT_TRUE(reader.GetU32(&u32));
  EXPECT_TRUE(reader.GetU64(&u64));
  EXPECT_TRUE(reader.GetI64(&i64));
  EXPECT_TRUE(reader.GetDouble(&d));
  EXPECT_TRUE(reader.GetString(&text));
  EXPECT_TRUE(reader.GetItemset(&itemset));
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEF);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(d, 0.1 + 0.2);  // exact: IEEE-754 bits travel unchanged
  EXPECT_EQ(text, "hello");
  EXPECT_EQ(itemset, (lits::Itemset{1, 5, 9}));
  EXPECT_TRUE(reader.AtEnd());
  // One more read past the end flips ok().
  EXPECT_FALSE(reader.GetU8(&u8));
  EXPECT_FALSE(reader.ok());
}

TEST(WireCodecTest, TruncatedPayloadRejected) {
  PayloadWriter writer;
  writer.PutString("stream-name");
  const std::string bytes = writer.bytes();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    PayloadReader reader(std::string_view(bytes).substr(0, cut));
    std::string text;
    EXPECT_FALSE(reader.GetString(&text)) << "cut=" << cut;
  }
}

TEST(WireCodecTest, HostileListLengthCannotForceAllocation) {
  // A regions list claiming 2^31 entries but carrying 4 bytes must fail
  // fast instead of reserving gigabytes.
  PayloadWriter writer;
  writer.PutU32(0x80000000u);
  writer.PutU32(0);  // a lone itemset length
  PayloadReader reader(writer.bytes());
  std::vector<lits::Itemset> regions;
  EXPECT_FALSE(reader.GetRegions(&regions));
}

TEST(WireCodecTest, MessageBodiesRoundTrip) {
  {
    SubmitSnapshotBody body;
    body.stream = "payments";
    body.source = "10.0.0.1:9";
    body.snapshot = "focus-txns-v1\n...";
    SubmitSnapshotBody out;
    ASSERT_TRUE(out.Decode(body.Encode()));
    EXPECT_EQ(out.stream, body.stream);
    EXPECT_EQ(out.source, body.source);
    EXPECT_EQ(out.snapshot, body.snapshot);
  }
  {
    SubmitResultBody body;
    body.status = 429;
    body.sequence = 17;
    body.content_hash = 0xABCDEF0011223344ull;
    body.error = "ingest queue is full; retry later";
    SubmitResultBody out;
    ASSERT_TRUE(out.Decode(body.Encode()));
    EXPECT_EQ(out.status, body.status);
    EXPECT_EQ(out.sequence, body.sequence);
    EXPECT_EQ(out.content_hash, body.content_hash);
    EXPECT_EQ(out.error, body.error);
  }
  {
    DeviationResultBody body;
    body.found = 1;
    body.has_deviation = 1;
    body.deviation = 0.125;
    body.status.processed = 3;
    body.status.has_snapshot = true;
    body.status.sequence = 2;
    body.status.num_transactions = 300;
    body.status.delta_star = 0.5;
    body.status.deviation = 0.25;
    body.status.significance_percent = 99.0;
    body.status.alert = true;
    body.status.cusum = 1.5;
    body.status.change_point = true;
    body.status.baseline_ready = true;
    body.status.baseline_mean = 0.1;
    body.status.baseline_sd = 0.01;
    DeviationResultBody out;
    ASSERT_TRUE(out.Decode(body.Encode()));
    EXPECT_EQ(out.found, 1);
    EXPECT_EQ(out.deviation, body.deviation);
    EXPECT_EQ(out.status.sequence, 2);
    EXPECT_EQ(out.status.num_transactions, 300);
    EXPECT_EQ(out.status.significance_percent, 99.0);
    EXPECT_TRUE(out.status.alert);
    EXPECT_TRUE(out.status.change_point);
    EXPECT_EQ(out.status.baseline_sd, 0.01);
  }
  {
    ModelRegionsResultBody body;
    body.found = 1;
    body.num_transactions = 300;
    body.regions = {{1}, {1, 2}, {4, 7, 9}};
    ModelRegionsResultBody out;
    ASSERT_TRUE(out.Decode(body.Encode()));
    EXPECT_EQ(out.regions, body.regions);
    EXPECT_EQ(out.num_transactions, 300);
  }
  {
    PartialAggregateBody body;
    body.entries = {{"a", 1, 0.5}, {"b", 0, 0.0}};
    body.partial_sum = 0.5;
    body.partial_max = 0.5;
    body.value_count = 1;
    PartialAggregateBody out;
    ASSERT_TRUE(out.Decode(body.Encode()));
    ASSERT_EQ(out.entries.size(), 2u);
    EXPECT_EQ(out.entries[0].stream, "a");
    EXPECT_EQ(out.entries[0].deviation, 0.5);
    EXPECT_EQ(out.entries[1].has_deviation, 0);
    EXPECT_EQ(out.value_count, 1u);
  }
  {  // trailing garbage after a valid body must be rejected (AtEnd check)
    ErrorBody body;
    body.message = "boom";
    ErrorBody out;
    ASSERT_TRUE(out.Decode(body.Encode()));
    EXPECT_FALSE(out.Decode(body.Encode() + "x"));
  }
}

TEST(WireCodecTest, DeviationCodeMapping) {
  uint8_t f = 99, g = 99;
  ASSERT_TRUE(DeviationCodesFromNames("scaled", "max", &f, &g));
  EXPECT_EQ(f, kDiffScaled);
  EXPECT_EQ(g, kAggMax);
  EXPECT_FALSE(DeviationCodesFromNames("cubed", "max", &f, &g));

  core::DeviationFunction fn;
  ASSERT_TRUE(DeviationFunctionFromCodes(kDiffAbs, kAggSum, &fn));
  EXPECT_FALSE(DeviationFunctionFromCodes(7, kAggSum, &fn));
}

// ---------------------------------------------------------------- decoder

TEST(WireDecoderTest, ByteAtATimeMatchesOneShot) {
  Frame ping{MessageType::kPing, 1, ""};
  Frame query{MessageType::kDeviationQuery, 2,
              DeviationQueryBody{"s1", kDiffAbs, kAggMax}.Encode()};
  const std::string wire = EncodeFrame(ping) + EncodeFrame(query);

  WireDecoder one_shot;
  ASSERT_EQ(one_shot.Consume(wire), WireDecoder::Status::kComplete);
  EXPECT_EQ(one_shot.frame().type, MessageType::kPing);
  EXPECT_EQ(one_shot.frame().request_id, 1u);
  ASSERT_EQ(one_shot.Reset(), WireDecoder::Status::kComplete);
  EXPECT_EQ(one_shot.frame().type, MessageType::kDeviationQuery);
  EXPECT_EQ(one_shot.frame().request_id, 2u);
  EXPECT_EQ(one_shot.Reset(), WireDecoder::Status::kNeedMore);
  EXPECT_TRUE(one_shot.idle());

  WireDecoder dribble;
  std::vector<Frame> frames;
  for (char c : wire) {
    auto status = dribble.Consume(std::string_view(&c, 1));
    while (status == WireDecoder::Status::kComplete) {
      frames.push_back(dribble.frame());
      status = dribble.Reset();
    }
    ASSERT_NE(status, WireDecoder::Status::kError);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, MessageType::kPing);
  EXPECT_EQ(frames[1].payload, query.payload);
}

TEST(WireDecoderTest, OversizedPayloadIsTerminal) {
  WireLimits limits;
  limits.max_payload_bytes = 16;
  WireDecoder decoder(limits);
  Frame big{MessageType::kPing, 1, std::string(17, 'x')};
  EXPECT_EQ(decoder.Consume(EncodeFrame(big)), WireDecoder::Status::kError);
  EXPECT_FALSE(decoder.error().empty());
}

TEST(WireDecoderTest, UnknownTypeIsTerminal) {
  WireDecoder decoder;
  std::string wire = EncodeFrame(Frame{MessageType::kPing, 1, ""});
  wire[4] = '\x63';  // type byte out of range
  EXPECT_EQ(decoder.Consume(wire), WireDecoder::Status::kError);
}

TEST(WireDecoderTest, EncodeDecodeIsIdentity) {
  Frame frame{MessageType::kSubmitSnapshot, 0xFEEDF00Du,
              SubmitSnapshotBody{"s", "src", "payload"}.Encode()};
  WireDecoder decoder;
  ASSERT_EQ(decoder.Consume(EncodeFrame(frame)),
            WireDecoder::Status::kComplete);
  EXPECT_EQ(decoder.frame().type, frame.type);
  EXPECT_EQ(decoder.frame().request_id, frame.request_id);
  EXPECT_EQ(decoder.frame().payload, frame.payload);
  EXPECT_EQ(EncodeFrame(decoder.frame()), EncodeFrame(frame));
}

// -------------------------------------------------------------- hash ring

TEST(HashRingTest, AssignmentsAreDeterministicAndInRange) {
  HashRing ring(4);
  HashRing again(4);
  for (int i = 0; i < 200; ++i) {
    const std::string stream = "stream-" + std::to_string(i);
    const int shard = ring.ShardFor(stream);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 4);
    EXPECT_EQ(shard, again.ShardFor(stream));
  }
}

TEST(HashRingTest, SingleShardOwnsEverything) {
  HashRing ring(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ring.ShardFor("s" + std::to_string(i)), 0);
  }
}

TEST(HashRingTest, LoadSpreadsAcrossShards) {
  HashRing ring(8);
  std::vector<int> counts(8, 0);
  const int kStreams = 4000;
  for (int i = 0; i < kStreams; ++i) {
    ++counts[ring.ShardFor("stream-" + std::to_string(i))];
  }
  // With 64 vnodes per shard the spread is loose but every shard must get
  // a meaningful share — no empty and no >2.5x-average shard.
  for (int shard = 0; shard < 8; ++shard) {
    EXPECT_GT(counts[shard], kStreams / 8 / 4) << "shard " << shard;
    EXPECT_LT(counts[shard], kStreams / 8 * 5 / 2) << "shard " << shard;
  }
}

TEST(HashRingTest, ResizeOnlyMovesABoundedFraction) {
  // Consistent hashing's point: going 4 -> 5 shards should move roughly
  // 1/5 of the keys, not reshuffle everything.
  HashRing four(4), five(5);
  const int kStreams = 4000;
  int moved = 0;
  for (int i = 0; i < kStreams; ++i) {
    const std::string stream = "stream-" + std::to_string(i);
    if (four.ShardFor(stream) != five.ShardFor(stream)) ++moved;
  }
  EXPECT_LT(moved, kStreams / 2);  // far below the ~100% of mod-N hashing
  EXPECT_GT(moved, 0);
}

// ------------------------------------------------- socket server + client

class WireSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reference_ = QuestDb(1);
    ShardWorkerOptions options;
    options.shard_index = 3;
    worker_ = std::make_unique<ShardWorker>(options, &reference_, nullptr);
    WireServerOptions server_options;
    server_options.unix_path = SocketPath("socket");
    std::string error;
    ASSERT_TRUE(worker_->Serve(server_options, &error)) << error;
    path_ = server_options.unix_path;
  }

  void TearDown() override {
    worker_->Stop();
    ::unlink(path_.c_str());
  }

  data::TransactionDb reference_;
  std::unique_ptr<ShardWorker> worker_;
  std::string path_;
};

TEST_F(WireSocketTest, PingRoundTripOverUnixSocket) {
  ShardClient client(path_);
  Frame response;
  std::string error;
  ASSERT_TRUE(client.Call(MessageType::kPing, "", &response, &error))
      << error;
  ASSERT_EQ(response.type, MessageType::kPong);
  PongBody pong;
  ASSERT_TRUE(pong.Decode(response.payload));
  EXPECT_EQ(pong.shard_index, 3u);
  EXPECT_EQ(pong.draining, 0);
}

TEST_F(WireSocketTest, SubmitThenQueryOverSocket) {
  ShardClient client(path_);
  Frame response;
  std::string error;

  SubmitSnapshotBody submit;
  submit.stream = "payments";
  submit.source = "test";
  submit.snapshot = Serialize(QuestDb(2));
  ASSERT_TRUE(client.Call(MessageType::kSubmitSnapshot, submit.Encode(),
                          &response, &error))
      << error;
  SubmitResultBody result;
  ASSERT_TRUE(result.Decode(response.payload));
  EXPECT_EQ(result.status, 202);
  EXPECT_EQ(result.sequence, 0);
  EXPECT_NE(result.content_hash, 0u);

  worker_->service().Flush();

  DeviationQueryBody query{"payments", kDiffAbs, kAggSum};
  ASSERT_TRUE(client.Call(MessageType::kDeviationQuery, query.Encode(),
                          &response, &error))
      << error;
  DeviationResultBody deviation;
  ASSERT_TRUE(deviation.Decode(response.payload));
  EXPECT_EQ(deviation.found, 1);
  EXPECT_EQ(deviation.has_deviation, 1);
  EXPECT_GT(deviation.deviation, 0.0);

  DeviationQueryBody unknown{"nope", kDiffAbs, kAggSum};
  ASSERT_TRUE(client.Call(MessageType::kDeviationQuery, unknown.Encode(),
                          &response, &error))
      << error;
  ASSERT_TRUE(deviation.Decode(response.payload));
  EXPECT_EQ(deviation.found, 0);
}

TEST_F(WireSocketTest, MalformedBodyAnswersErrorFrame) {
  ShardClient client(path_);
  Frame response;
  std::string error;
  // Valid frame, garbage body: the worker answers kError; the client
  // surfaces it as a failed call with the worker's message.
  EXPECT_FALSE(client.Call(MessageType::kDeviationQuery, "\x01garbage",
                           &response, &error));
  EXPECT_FALSE(error.empty());

  // The connection was poisoned by the failure; the next call transparently
  // reconnects and succeeds.
  ASSERT_TRUE(client.Call(MessageType::kPing, "", &response, &error))
      << error;
  EXPECT_EQ(response.type, MessageType::kPong);
}

TEST_F(WireSocketTest, ClientReportsServerGone) {
  ShardClient client(path_);
  Frame response;
  std::string error;
  ASSERT_TRUE(client.Call(MessageType::kPing, "", &response, &error));
  worker_->Stop();
  EXPECT_FALSE(client.Call(MessageType::kPing, "", &response, &error));
  EXPECT_FALSE(error.empty());
}

// --------------------------------------------------------- worker dispatch

TEST(ShardWorkerTest, RejectsMalformedSnapshotWithoutBurningSequence) {
  const data::TransactionDb reference = QuestDb(1);
  ShardWorker worker(ShardWorkerOptions{}, &reference, nullptr);

  SubmitSnapshotBody bad;
  bad.stream = "s";
  bad.snapshot = "this is not focus-txns-v1";
  Frame response = worker.HandleFrame(
      Frame{MessageType::kSubmitSnapshot, 1, bad.Encode()});
  SubmitResultBody result;
  ASSERT_TRUE(result.Decode(response.payload));
  EXPECT_EQ(result.status, 400);
  EXPECT_FALSE(result.error.empty());

  SubmitSnapshotBody good;
  good.stream = "s";
  good.snapshot = Serialize(QuestDb(2));
  response = worker.HandleFrame(
      Frame{MessageType::kSubmitSnapshot, 2, good.Encode()});
  ASSERT_TRUE(result.Decode(response.payload));
  EXPECT_EQ(result.status, 202);
  EXPECT_EQ(result.sequence, 0);  // the 400 did not consume a sequence
  worker.Stop();
}

TEST(ShardWorkerTest, DrainingWorkerAnswers503) {
  const data::TransactionDb reference = QuestDb(1);
  ShardWorker worker(ShardWorkerOptions{}, &reference, nullptr);
  worker.BeginDrain();

  SubmitSnapshotBody submit;
  submit.stream = "s";
  submit.snapshot = Serialize(QuestDb(2));
  const Frame response = worker.HandleFrame(
      Frame{MessageType::kSubmitSnapshot, 1, submit.Encode()});
  SubmitResultBody result;
  ASSERT_TRUE(result.Decode(response.payload));
  EXPECT_EQ(result.status, 503);
  worker.Stop();
}

TEST(ShardWorkerTest, ResponseEchoesRequestId) {
  const data::TransactionDb reference = QuestDb(1);
  ShardWorker worker(ShardWorkerOptions{}, &reference, nullptr);
  const Frame response =
      worker.HandleFrame(Frame{MessageType::kPing, 0xCAFE, ""});
  EXPECT_EQ(response.request_id, 0xCAFEu);
  worker.Stop();
}

// ----------------------------------------------------------------- router

TEST(ShardRouterTest, RoutesIngestAndQueriesToOwningShard) {
  const data::TransactionDb reference = QuestDb(1);
  std::vector<std::unique_ptr<ShardWorker>> workers;
  std::vector<std::unique_ptr<LocalShardChannel>> channels;
  std::vector<ShardChannel*> shards;
  for (uint32_t i = 0; i < 3; ++i) {
    ShardWorkerOptions options;
    options.shard_index = i;
    workers.push_back(
        std::make_unique<ShardWorker>(options, &reference, nullptr));
    channels.push_back(
        std::make_unique<LocalShardChannel>(workers.back().get()));
    shards.push_back(channels.back().get());
  }
  ShardRouter router(shards);

  std::string error;
  EXPECT_TRUE(router.PingAll(&error)) << error;

  const std::string snapshot = Serialize(QuestDb(2));
  for (int i = 0; i < 6; ++i) {
    const std::string stream = "stream-" + std::to_string(i);
    SubmitResultBody result;
    ASSERT_EQ(router.Submit(stream, "test", snapshot, &result, &error),
              ShardRouter::Status::kOk)
        << error;
    EXPECT_EQ(result.status, 202);
    EXPECT_EQ(result.sequence, 0);  // every stream's first snapshot
  }
  for (auto& worker : workers) worker->service().Flush();

  for (int i = 0; i < 6; ++i) {
    const std::string stream = "stream-" + std::to_string(i);
    DeviationResultBody result;
    ASSERT_EQ(router.QueryDeviation(stream, kDiffAbs, kAggSum, &result,
                                    &error),
              ShardRouter::Status::kOk)
        << error;
    EXPECT_EQ(result.found, 1);
    EXPECT_EQ(result.has_deviation, 1);
    // The stream landed on exactly the shard the ring names.
    const int owner = router.ShardFor(stream);
    EXPECT_TRUE(workers[owner]->service().HasStream(stream));
    for (int other = 0; other < 3; ++other) {
      if (other != owner) {
        EXPECT_FALSE(workers[other]->service().HasStream(stream));
      }
    }
  }

  DeviationResultBody result;
  EXPECT_EQ(router.QueryDeviation("absent", kDiffAbs, kAggSum, &result,
                                  &error),
            ShardRouter::Status::kNotFound);

  std::vector<serve::SummaryEntry> entries;
  serve::SummaryResult summary;
  ASSERT_EQ(router.Summary(kDiffAbs, kAggSum, &entries, &summary, &error),
            ShardRouter::Status::kOk)
      << error;
  EXPECT_EQ(summary.num_streams, 6);
  EXPECT_EQ(summary.num_values, 6);
  EXPECT_TRUE(summary.has_aggregate);
  // Entries come back merged in canonical sorted order.
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].stream, entries[i].stream);
  }

  for (auto& worker : workers) worker->Stop();
}

TEST(ShardRouterTest, CompareAcrossShards) {
  const data::TransactionDb reference = QuestDb(1);
  std::vector<std::unique_ptr<ShardWorker>> workers;
  std::vector<std::unique_ptr<LocalShardChannel>> channels;
  std::vector<ShardChannel*> shards;
  for (uint32_t i = 0; i < 2; ++i) {
    ShardWorkerOptions options;
    options.shard_index = i;
    workers.push_back(
        std::make_unique<ShardWorker>(options, &reference, nullptr));
    channels.push_back(
        std::make_unique<LocalShardChannel>(workers.back().get()));
    shards.push_back(channels.back().get());
  }
  ShardRouter router(shards);
  std::string error;

  // Find two streams owned by different shards.
  std::string left_stream, right_stream;
  for (int i = 0; i < 100 && (left_stream.empty() || right_stream.empty());
       ++i) {
    const std::string stream = "s" + std::to_string(i);
    if (router.ShardFor(stream) == 0 && left_stream.empty()) {
      left_stream = stream;
    }
    if (router.ShardFor(stream) == 1 && right_stream.empty()) {
      right_stream = stream;
    }
  }
  ASSERT_FALSE(left_stream.empty());
  ASSERT_FALSE(right_stream.empty());

  SubmitResultBody left_submit, right_submit;
  ASSERT_EQ(router.Submit(left_stream, "t", Serialize(QuestDb(2)),
                          &left_submit, &error),
            ShardRouter::Status::kOk);
  ASSERT_EQ(router.Submit(right_stream, "t", Serialize(QuestDb(3)),
                          &right_submit, &error),
            ShardRouter::Status::kOk);
  for (auto& worker : workers) worker->service().Flush();

  // Cross-shard: the two hashes live on different workers.
  double cross = 0.0;
  std::vector<uint64_t> missing;
  ASSERT_EQ(router.Compare(left_submit.content_hash,
                           right_submit.content_hash, kDiffAbs, kAggSum,
                           &cross, &missing, &error),
            ShardRouter::Status::kOk)
      << error;
  EXPECT_GT(cross, 0.0);

  // Self-compare of one hash: same shard holds both, deviation 0.
  double self = 1.0;
  ASSERT_EQ(router.Compare(left_submit.content_hash,
                           left_submit.content_hash, kDiffAbs, kAggSum,
                           &self, &missing, &error),
            ShardRouter::Status::kOk)
      << error;
  EXPECT_EQ(self, 0.0);

  // Unknown hashes are reported, not 500s.
  ASSERT_EQ(router.Compare(0x1111, 0x2222, kDiffAbs, kAggSum, &cross,
                           &missing, &error),
            ShardRouter::Status::kNotFound);
  EXPECT_EQ(missing.size(), 2u);

  EXPECT_EQ(router.Compare(left_submit.content_hash,
                           right_submit.content_hash, 9, 9, &cross, &missing,
                           &error),
            ShardRouter::Status::kInvalid);

  for (auto& worker : workers) worker->Stop();
}

TEST(ShardRouterTest, DeadShardSurfacesAsShardDown) {
  // A client pointed at a socket nobody serves: every router operation
  // reports kShardDown rather than wedging or crashing.
  ShardClient client(SocketPath("dead"));
  std::vector<ShardChannel*> shards = {&client};
  ShardRouter router(shards);
  std::string error;
  SubmitResultBody result;
  EXPECT_EQ(router.Submit("s", "t", "snapshot", &result, &error),
            ShardRouter::Status::kShardDown);
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(router.PingAll(&error));
}

}  // namespace
}  // namespace focus::shard

// Fixture: must trigger exactly one unchecked-strtol finding (null end
// pointer below — trailing garbage would be silently accepted).

#include <cstdlib>

namespace focus::io {

long ParseBad(const char* text) {
  return std::strtol(text, nullptr, 10);
}

}  // namespace focus::io

// Fixture: strtol with a real, checked end pointer is the sanctioned
// pattern — must produce no findings.

#include <cstdlib>

namespace focus::io {

bool ParseChecked(const char* text, long* out) {
  char* end = nullptr;
  *out = std::strtol(text, &end, 10);
  return end != text && *end == '\0';
}

}  // namespace focus::io

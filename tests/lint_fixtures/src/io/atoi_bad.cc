// Fixture: must trigger exactly one unchecked-strtol finding — atoi
// cannot report conversion errors at all.

#include <cstdlib>

namespace focus::io {

int ParseAtoiBad(const char* text) { return std::atoi(text); }

}  // namespace focus::io

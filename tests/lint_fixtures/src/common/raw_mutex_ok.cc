// Fixture: std synchronization primitives are legal inside src/common/ —
// it is where the annotated wrappers live. Must produce no findings.

#include <mutex>

namespace focus::common {

class WrapperInternals {
 private:
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace focus::common

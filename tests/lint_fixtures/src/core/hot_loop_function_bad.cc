// Fixture: must trigger exactly one std-function-in-hot-loop finding
// (the declaration inside the for body below).

#include <functional>

namespace focus::core {

int SumRowsBad(const int* rows, int count) {
  int total = 0;
  for (int i = 0; i < count; ++i) {
    std::function<int(int)> op = [](int value) { return value; };
    total += op(rows[i]);
  }
  return total;
}

}  // namespace focus::core

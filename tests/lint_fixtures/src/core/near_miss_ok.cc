// Fixture: near-miss patterns that must stay clean — the sanctioned RNG
// factory, std::function outside any loop body, and banned names that
// appear only in comments (std::mutex, mt19937) or string literals.

#include <cstdint>
#include <functional>
#include <random>

namespace focus::core {

// A type-erased callback at namespace scope is fine; the rule only bans
// it inside loop bodies, where it defeats inlining.
using RowFn = std::function<double(int)>;

inline const char* kProse = "std::mutex and atoi( live in a string here";

inline double MeanDraw(std::uint64_t seed, int draws) {
  std::mt19937_64 rng = stats::MakeRng(seed);
  RowFn identity = [](int value) { return static_cast<double>(value); };
  double total = 0.0;
  for (int i = 0; i < draws; ++i) {
    total += identity(static_cast<int>(rng()));
  }
  return total / (draws > 0 ? draws : 1);
}

}  // namespace focus::core

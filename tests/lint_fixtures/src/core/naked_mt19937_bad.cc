// Fixture: must trigger exactly one naked-mt19937 finding (the direct
// engine construction below).

#include <cstdint>
#include <random>

namespace focus::core {

std::uint64_t DrawBad(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return rng();
}

}  // namespace focus::core

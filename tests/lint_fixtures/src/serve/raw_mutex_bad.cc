// Fixture: must trigger exactly one raw-mutex finding (the std::mutex
// member below). Outside src/common/, synchronization goes through
// common::Mutex so thread-safety annotations keep working.

namespace focus::serve {

class BadCounter {
 public:
  void Increment();

 private:
  std::mutex mutex_;
  int value_ = 0;
};

}  // namespace focus::serve

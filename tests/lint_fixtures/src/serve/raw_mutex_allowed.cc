// Fixture: the escape hatch must suppress the raw-mutex finding below,
// leaving this file clean.

namespace focus::serve {

// focus-lint: allow(raw-mutex) — fixture exercising the escape hatch
std::timed_mutex legacy_mutex;

}  // namespace focus::serve

#include <sstream>

#include <gtest/gtest.h>

#include "datagen/class_gen.h"
#include "datagen/quest_gen.h"
#include "io/data_io.h"

namespace focus::io {
namespace {

TEST(TransactionDbIoTest, RoundTrip) {
  datagen::QuestParams params;
  params.num_transactions = 200;
  params.num_items = 40;
  params.num_patterns = 10;
  params.seed = 4;
  const data::TransactionDb original = datagen::GenerateQuest(params);

  std::stringstream buffer;
  SaveTransactionDb(original, buffer);
  const auto loaded = LoadTransactionDb(buffer);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->num_transactions(), original.num_transactions());
  EXPECT_EQ(loaded->num_items(), original.num_items());
  for (int64_t t = 0; t < original.num_transactions(); ++t) {
    const auto a = original.Transaction(t);
    const auto b = loaded->Transaction(t);
    ASSERT_EQ(a.size(), b.size()) << "transaction " << t;
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(TransactionDbIoTest, RejectsMalformed) {
  std::stringstream wrong_magic("something-else\n5 1\n0 1\n");
  EXPECT_FALSE(LoadTransactionDb(wrong_magic).has_value());
  std::stringstream item_out_of_range("focus-txns-v1\n5 1\n0 9\n");
  EXPECT_FALSE(LoadTransactionDb(item_out_of_range).has_value());
  std::stringstream truncated("focus-txns-v1\n5 3\n0 1\n");
  EXPECT_FALSE(LoadTransactionDb(truncated).has_value());
}

TEST(DatasetIoTest, RoundTrip) {
  datagen::ClassGenParams params;
  params.num_rows = 150;
  params.function = datagen::ClassFunction::kF3;
  params.seed = 4;
  const data::Dataset original = datagen::GenerateClassification(params);

  std::stringstream buffer;
  SaveDataset(original, buffer);
  const auto loaded = LoadDataset(buffer);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->num_rows(), original.num_rows());
  EXPECT_TRUE(loaded->schema() == original.schema());
  for (int64_t row = 0; row < original.num_rows(); ++row) {
    EXPECT_EQ(loaded->Label(row), original.Label(row));
    for (int a = 0; a < original.num_attributes(); ++a) {
      EXPECT_DOUBLE_EQ(loaded->At(row, a), original.At(row, a));
    }
  }
}

TEST(DatasetIoTest, RejectsBadLabel) {
  std::stringstream bad(
      "focus-data-v1\nfocus-schema-v1\n1 2\nnumeric 0 1 x\n1\n7 0.5\n");
  EXPECT_FALSE(LoadDataset(bad).has_value());
}

TEST(DatasetIoTest, RejectsMissingValues) {
  std::stringstream bad(
      "focus-data-v1\nfocus-schema-v1\n2 2\nnumeric 0 1 x\nnumeric 0 1 y\n"
      "1\n0 0.5\n");
  EXPECT_FALSE(LoadDataset(bad).has_value());
}

TEST(DataIoFileTest, RoundTripThroughDisk) {
  datagen::QuestParams params;
  params.num_transactions = 50;
  params.num_items = 20;
  params.num_patterns = 5;
  const data::TransactionDb db = datagen::GenerateQuest(params);
  const std::string path = ::testing::TempDir() + "/focus_txns.txt";
  ASSERT_TRUE(SaveTransactionDbToFile(db, path));
  const auto loaded = LoadTransactionDbFromFile(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_transactions(), db.num_transactions());
  EXPECT_FALSE(LoadTransactionDbFromFile("/no/such/file").has_value());
}

}  // namespace
}  // namespace focus::io

#include <vector>

#include <gtest/gtest.h>

#include "datagen/quest_gen.h"
#include "itemsets/apriori.h"
#include "itemsets/fp_growth.h"

namespace focus::lits {
namespace {

data::TransactionDb TinyDb() {
  data::TransactionDb db(5);
  db.AddTransaction(std::vector<int32_t>{0, 1, 2});
  db.AddTransaction(std::vector<int32_t>{0, 1});
  db.AddTransaction(std::vector<int32_t>{0, 2});
  db.AddTransaction(std::vector<int32_t>{1, 2, 3});
  db.AddTransaction(std::vector<int32_t>{0, 1, 2, 3});
  return db;
}

void ExpectSameModel(const LitsModel& a, const LitsModel& b,
                     const std::string& context) {
  EXPECT_EQ(a.size(), b.size()) << context;
  for (const auto& [itemset, support] : a.supports()) {
    EXPECT_NEAR(b.SupportOr(itemset, -1.0), support, 1e-12)
        << context << " itemset " << itemset.ToString();
  }
}

TEST(FpGrowthTest, MatchesAprioriOnTinyDb) {
  for (const double min_support : {0.2, 0.4, 0.6, 0.8}) {
    AprioriOptions options;
    options.min_support = min_support;
    ExpectSameModel(Apriori(TinyDb(), options), FpGrowth(TinyDb(), options),
                    "minsup " + std::to_string(min_support));
  }
}

TEST(FpGrowthTest, MatchesAprioriOnGeneratedData) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    datagen::QuestParams params;
    params.num_transactions = 600;
    params.num_items = 60;
    params.num_patterns = 15;
    params.avg_pattern_length = 3 + seed % 3;
    params.avg_transaction_length = 8;
    params.seed = seed;
    const data::TransactionDb db = datagen::GenerateQuest(params);
    for (const double min_support : {0.02, 0.05, 0.1}) {
      AprioriOptions options;
      options.min_support = min_support;
      ExpectSameModel(Apriori(db, options), FpGrowth(db, options),
                      "seed " + std::to_string(seed));
    }
  }
}

TEST(FpGrowthTest, RespectsMaxItemsetSize) {
  AprioriOptions options;
  options.min_support = 0.2;
  options.max_itemset_size = 2;
  const LitsModel model = FpGrowth(TinyDb(), options);
  for (const auto& [itemset, support] : model.supports()) {
    EXPECT_LE(itemset.size(), 2);
  }
  // Same count as Apriori with the same cap.
  EXPECT_EQ(model.size(), Apriori(TinyDb(), options).size());
}

TEST(FpGrowthTest, RespectsAbsoluteCountFloor) {
  data::TransactionDb db(6);
  db.AddTransaction(std::vector<int32_t>{0, 1});
  db.AddTransaction(std::vector<int32_t>{0, 1});
  db.AddTransaction(std::vector<int32_t>{2});
  db.AddTransaction(std::vector<int32_t>{3});
  AprioriOptions options;
  options.min_support = 0.01;  // degenerate; the floor must kick in
  const LitsModel model = FpGrowth(db, options);
  EXPECT_TRUE(model.Contains(Itemset({0, 1})));
  EXPECT_FALSE(model.Contains(Itemset({2})));
}

TEST(FpGrowthTest, EmptyModelWhenNothingFrequent) {
  data::TransactionDb db(8);
  for (int32_t i = 0; i < 8; ++i) {
    db.AddTransaction(std::vector<int32_t>{i});
  }
  AprioriOptions options;
  options.min_support = 0.5;
  EXPECT_EQ(FpGrowth(db, options).size(), 0);
}

TEST(FpGrowthTest, DenseDbDeepItemsets) {
  // Every transaction is identical: all subsets of {0,1,2,3} frequent.
  data::TransactionDb db(4);
  for (int i = 0; i < 10; ++i) {
    db.AddTransaction(std::vector<int32_t>{0, 1, 2, 3});
  }
  AprioriOptions options;
  options.min_support = 0.9;
  const LitsModel model = FpGrowth(db, options);
  EXPECT_EQ(model.size(), 15);  // 2^4 - 1
  EXPECT_DOUBLE_EQ(model.SupportOr(Itemset({0, 1, 2, 3}), -1), 1.0);
}

}  // namespace
}  // namespace focus::lits

#include <gtest/gtest.h>

#include "core/significance.h"
#include "datagen/class_gen.h"
#include "datagen/quest_gen.h"

namespace focus::core {
namespace {

using datagen::ClassFunction;
using datagen::ClassGenParams;
using datagen::GenerateClassification;
using datagen::GenerateQuest;
using datagen::QuestParams;

QuestParams SmallQuest(uint64_t seed, int32_t num_patterns = 20,
                       double pattern_length = 3,
                       uint64_t pattern_seed = 0) {
  QuestParams params;
  params.num_transactions = 600;
  params.num_items = 80;
  params.num_patterns = num_patterns;
  params.avg_pattern_length = pattern_length;
  params.avg_transaction_length = 8;
  params.seed = seed;
  params.pattern_seed = pattern_seed;
  return params;
}

TEST(LitsSignificanceTest, SameProcessIsInsignificant) {
  // Same pattern table (= same generating process), independent samples.
  const data::TransactionDb d1 = GenerateQuest(SmallQuest(1, 20, 3, 777));
  const data::TransactionDb d2 = GenerateQuest(SmallQuest(2, 20, 3, 777));

  lits::AprioriOptions apriori;
  apriori.min_support = 0.03;
  SignificanceOptions options;
  options.num_replicates = 19;
  DeviationFunction fn;
  const SignificanceResult result =
      LitsDeviationSignificance(d1, d2, apriori, fn, options);
  EXPECT_GE(result.deviation, 0.0);
  // Same generator, different seed: the deviation should NOT be extreme
  // relative to the bootstrap null distribution.
  EXPECT_LT(result.significance_percent, 100.0);
}

TEST(LitsSignificanceTest, DifferentPatternsAreSignificant) {
  const data::TransactionDb d1 = GenerateQuest(SmallQuest(1));
  // Very different pattern structure (length 6 instead of 3).
  const data::TransactionDb d2 = GenerateQuest(SmallQuest(2, 5, 6));

  lits::AprioriOptions apriori;
  apriori.min_support = 0.03;
  SignificanceOptions options;
  options.num_replicates = 19;
  DeviationFunction fn;
  const SignificanceResult result =
      LitsDeviationSignificance(d1, d2, apriori, fn, options);
  // The observed deviation should exceed every bootstrap replicate.
  EXPECT_DOUBLE_EQ(result.significance_percent, 100.0);
}

TEST(DtSignificanceTest, SameProcessIsInsignificant) {
  ClassGenParams params;
  params.num_rows = 800;
  params.function = ClassFunction::kF1;
  params.seed = 1;
  const data::Dataset d1 = GenerateClassification(params);
  params.seed = 2;
  const data::Dataset d2 = GenerateClassification(params);

  dt::CartOptions cart;
  cart.max_depth = 3;
  cart.min_leaf_size = 30;
  SignificanceOptions options;
  options.num_replicates = 19;
  DeviationFunction fn;
  const SignificanceResult result =
      DtDeviationSignificance(d1, d2, cart, fn, options);
  EXPECT_LT(result.significance_percent, 100.0);
}

TEST(DtSignificanceTest, DifferentFunctionIsSignificant) {
  ClassGenParams params;
  params.num_rows = 800;
  params.function = ClassFunction::kF1;
  params.seed = 1;
  const data::Dataset d1 = GenerateClassification(params);
  params.function = ClassFunction::kF4;
  params.seed = 2;
  const data::Dataset d2 = GenerateClassification(params);

  dt::CartOptions cart;
  cart.max_depth = 3;
  cart.min_leaf_size = 30;
  SignificanceOptions options;
  options.num_replicates = 19;
  DeviationFunction fn;
  const SignificanceResult result =
      DtDeviationSignificance(d1, d2, cart, fn, options);
  EXPECT_DOUBLE_EQ(result.significance_percent, 100.0);
  EXPECT_GT(result.deviation, 0.0);
}

TEST(LitsBlockSignificanceTest, SameProcessBlockInsignificant) {
  const data::TransactionDb base = GenerateQuest(SmallQuest(1, 20, 3, 777));
  // Block from the SAME process.
  QuestParams block_params = SmallQuest(5, 20, 3, 777);
  block_params.num_transactions = 60;
  const data::TransactionDb block = GenerateQuest(block_params);

  lits::AprioriOptions apriori;
  apriori.min_support = 0.03;
  SignificanceOptions options;
  options.num_replicates = 19;
  DeviationFunction fn;
  const SignificanceResult result =
      LitsBlockSignificance(base, block, apriori, fn, options);
  EXPECT_LT(result.significance_percent, 100.0);
}

TEST(LitsBlockSignificanceTest, DriftedBlockSignificant) {
  const data::TransactionDb base = GenerateQuest(SmallQuest(1, 20, 3, 777));
  // Block from a very different process (long patterns).
  QuestParams block_params = SmallQuest(6, 5, 7);
  block_params.num_transactions = 120;
  const data::TransactionDb block = GenerateQuest(block_params);

  lits::AprioriOptions apriori;
  apriori.min_support = 0.03;
  SignificanceOptions options;
  options.num_replicates = 19;
  DeviationFunction fn;
  const SignificanceResult result =
      LitsBlockSignificance(base, block, apriori, fn, options);
  EXPECT_DOUBLE_EQ(result.significance_percent, 100.0);
}

TEST(DtBlockSignificanceTest, SeparatesSameFromDrifted) {
  ClassGenParams params;
  params.num_rows = 1500;
  params.function = ClassFunction::kF1;
  params.seed = 1;
  const data::Dataset base = GenerateClassification(params);
  params.num_rows = 150;
  params.seed = 2;
  const data::Dataset same_block = GenerateClassification(params);
  params.function = ClassFunction::kF4;
  params.seed = 3;
  const data::Dataset drift_block = GenerateClassification(params);

  dt::CartOptions cart;
  cart.max_depth = 4;
  cart.min_leaf_size = 30;
  SignificanceOptions options;
  options.num_replicates = 19;
  DeviationFunction fn;
  const SignificanceResult same =
      DtBlockSignificance(base, same_block, cart, fn, options);
  const SignificanceResult drift =
      DtBlockSignificance(base, drift_block, cart, fn, options);
  // A drifted block must be flagged, and must deviate far more than a
  // same-process block. (At this tiny scale the same-process block's
  // significance itself is unstable: a bootstrap-resampled block keeps
  // CART's split thresholds frozen while any FRESH sample jiggles them,
  // so the null understates fresh-sample variance — see significance.h.)
  EXPECT_DOUBLE_EQ(drift.significance_percent, 100.0);
  EXPECT_GT(drift.deviation, 2.0 * same.deviation);
}

TEST(SignificanceTest, DeterministicGivenSeed) {
  const data::TransactionDb d1 = GenerateQuest(SmallQuest(1));
  const data::TransactionDb d2 = GenerateQuest(SmallQuest(9));
  lits::AprioriOptions apriori;
  apriori.min_support = 0.05;
  SignificanceOptions options;
  options.num_replicates = 7;
  options.seed = 123;
  DeviationFunction fn;
  const SignificanceResult a =
      LitsDeviationSignificance(d1, d2, apriori, fn, options);
  const SignificanceResult b =
      LitsDeviationSignificance(d1, d2, apriori, fn, options);
  EXPECT_DOUBLE_EQ(a.deviation, b.deviation);
  EXPECT_DOUBLE_EQ(a.significance_percent, b.significance_percent);
}

}  // namespace
}  // namespace focus::core

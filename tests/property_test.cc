// Parameterized property tests sweeping the FOCUS invariants across
// generated workloads:
//   * Theorem 4.1/4.3 — the GCR minimizes the deviation among refinements
//   * Theorem 4.2      — delta* upper-bounds delta and is a pseudo-metric
//   * Theorem 5.2      — ME == 1/2 delta_(f_a,g_sum)
//   * Definition 3.4   — GCR parts re-assemble every parent region measure
//   * symmetry / identity of delta under f_a
//   * focus monotonicity for (f_a, g_sum)

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/dt_deviation.h"
#include "core/focus_region.h"
#include "core/lits_deviation.h"
#include "core/lits_upper_bound.h"
#include "core/misclassification.h"
#include "core/region_algebra.h"
#include "datagen/class_gen.h"
#include "datagen/quest_gen.h"
#include "itemsets/apriori.h"
#include "tree/cart_builder.h"

namespace focus::core {
namespace {

// ---------- lits sweeps ----------

struct LitsCase {
  uint64_t seed1;
  uint64_t seed2;
  int32_t patterns2;
  double patlen2;
  double min_support;
};

class LitsPropertyTest : public ::testing::TestWithParam<LitsCase> {
 protected:
  static data::TransactionDb Generate(uint64_t seed, int32_t patterns,
                                      double patlen) {
    datagen::QuestParams params;
    params.num_transactions = 700;
    params.num_items = 80;
    params.num_patterns = patterns;
    params.avg_pattern_length = patlen;
    params.avg_transaction_length = 8;
    params.seed = seed;
    return datagen::GenerateQuest(params);
  }

  void SetUp() override {
    const LitsCase& param = GetParam();
    d1_ = Generate(param.seed1, 20, 3);
    d2_ = Generate(param.seed2, param.patterns2, param.patlen2);
    lits::AprioriOptions options;
    options.min_support = param.min_support;
    m1_ = lits::Apriori(d1_, options);
    m2_ = lits::Apriori(d2_, options);
  }

  data::TransactionDb d1_{0};
  data::TransactionDb d2_{0};
  lits::LitsModel m1_;
  lits::LitsModel m2_;
};

TEST_P(LitsPropertyTest, SelfDeviationIsZero) {
  for (const AggregateKind g : {AggregateKind::kSum, AggregateKind::kMax}) {
    DeviationFunction fn{AbsoluteDiff(), g};
    EXPECT_DOUBLE_EQ(LitsDeviation(m1_, d1_, m1_, d1_, fn), 0.0);
    fn.f = ScaledDiff();
    EXPECT_DOUBLE_EQ(LitsDeviation(m1_, d1_, m1_, d1_, fn), 0.0);
  }
}

TEST_P(LitsPropertyTest, SymmetryUnderAbsoluteAndScaled) {
  for (const AggregateKind g : {AggregateKind::kSum, AggregateKind::kMax}) {
    for (const bool scaled : {false, true}) {
      DeviationFunction fn{scaled ? ScaledDiff() : AbsoluteDiff(), g};
      EXPECT_NEAR(LitsDeviation(m1_, d1_, m2_, d2_, fn),
                  LitsDeviation(m2_, d2_, m1_, d1_, fn), 1e-9);
    }
  }
}

TEST_P(LitsPropertyTest, GcrMinimizesAmongRefinements) {
  std::vector<lits::Itemset> gcr = LitsGcr(m1_, m2_);
  // A strictly finer common refinement: add arbitrary extra itemsets.
  std::vector<lits::Itemset> finer = gcr;
  finer.push_back(lits::Itemset({0, 1}));
  finer.push_back(lits::Itemset({2, 3, 4}));
  finer.push_back(lits::Itemset({7}));
  finer = NormalizeItemsets(std::move(finer));
  for (const AggregateKind g : {AggregateKind::kSum, AggregateKind::kMax}) {
    for (const bool scaled : {false, true}) {
      DeviationFunction fn{scaled ? ScaledDiff() : AbsoluteDiff(), g};
      EXPECT_LE(LitsDeviationOverRegions(gcr, d1_, d2_, fn),
                LitsDeviationOverRegions(finer, d1_, d2_, fn) + 1e-9);
    }
  }
}

TEST_P(LitsPropertyTest, UpperBoundDominatesExact) {
  for (const AggregateKind g : {AggregateKind::kSum, AggregateKind::kMax}) {
    DeviationFunction fn{AbsoluteDiff(), g};
    EXPECT_GE(LitsUpperBound(m1_, m2_, g) + 1e-12,
              LitsDeviation(m1_, d1_, m2_, d2_, fn));
  }
}

TEST_P(LitsPropertyTest, UpperBoundTriangleViaThirdModel) {
  const data::TransactionDb d3 = Generate(GetParam().seed1 + 999, 10, 5);
  lits::AprioriOptions options;
  options.min_support = GetParam().min_support;
  const lits::LitsModel m3 = lits::Apriori(d3, options);
  for (const AggregateKind g : {AggregateKind::kSum, AggregateKind::kMax}) {
    const double ab = LitsUpperBound(m1_, m2_, g);
    const double bc = LitsUpperBound(m2_, m3, g);
    const double ac = LitsUpperBound(m1_, m3, g);
    EXPECT_LE(ac, ab + bc + 1e-9);
  }
}

TEST_P(LitsPropertyTest, FocusNeverExceedsFullForAbsoluteSum) {
  DeviationFunction fn;
  const double full = LitsDeviation(m1_, d1_, m2_, d2_, fn);
  for (const int32_t pivot : {0, 5, 11}) {
    const double focused =
        LitsDeviationFocused(m1_, d1_, m2_, d2_, ContainsItem(pivot), fn);
    EXPECT_LE(focused, full + 1e-9) << "pivot " << pivot;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LitsPropertyTest,
    ::testing::Values(
        LitsCase{1, 2, 20, 3, 0.05},    // same params, different sample
        LitsCase{1, 3, 40, 3, 0.05},    // more patterns
        LitsCase{1, 4, 20, 5, 0.05},    // longer patterns
        LitsCase{5, 6, 10, 6, 0.02},    // low support, long patterns
        LitsCase{7, 8, 20, 3, 0.10},    // high support
        LitsCase{9, 10, 30, 4, 0.01})); // very low support

// ---------- dt sweeps ----------

struct DtCase {
  datagen::ClassFunction f1;
  datagen::ClassFunction f2;
  int max_depth;
};

class DtPropertyTest : public ::testing::TestWithParam<DtCase> {
 protected:
  void SetUp() override {
    const DtCase& param = GetParam();
    datagen::ClassGenParams gen;
    gen.num_rows = 2500;
    gen.function = param.f1;
    gen.seed = 1;
    d1_ = datagen::GenerateClassification(gen);
    gen.function = param.f2;
    gen.seed = 2;
    d2_ = datagen::GenerateClassification(gen);
    dt::CartOptions cart;
    cart.max_depth = param.max_depth;
    cart.min_leaf_size = 40;
    m1_ = std::make_unique<DtModel>(dt::BuildCart(d1_, cart), d1_);
    m2_ = std::make_unique<DtModel>(dt::BuildCart(d2_, cart), d2_);
  }

  data::Dataset d1_;
  data::Dataset d2_;
  std::unique_ptr<DtModel> m1_;
  std::unique_ptr<DtModel> m2_;
};

TEST_P(DtPropertyTest, MeasuresFormProbabilityDistribution) {
  double total = 0.0;
  for (int leaf = 0; leaf < m1_->num_leaves(); ++leaf) {
    for (int c = 0; c < m1_->num_classes(); ++c) {
      const double m = m1_->measure(leaf, c);
      EXPECT_GE(m, 0.0);
      total += m;
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(DtPropertyTest, GcrPartsReassembleParents) {
  const DtGcr gcr(*m1_, *m2_);
  const std::vector<double> measures =
      gcr.Measures(m1_->tree(), m2_->tree(), d2_, std::nullopt);
  const std::vector<double> parent2 = DtMeasuresOverTree(m2_->tree(), d2_);
  const int k = gcr.num_classes();
  for (int leaf = 0; leaf < m2_->num_leaves(); ++leaf) {
    for (int c = 0; c < k; ++c) {
      double sum = 0.0;
      for (int r = 0; r < gcr.num_regions(); ++r) {
        if (gcr.regions()[r].leaf2 == leaf) sum += measures[r * k + c];
      }
      EXPECT_NEAR(sum, parent2[leaf * k + c], 1e-9);
    }
  }
}

TEST_P(DtPropertyTest, SelfDeviationZeroAndSymmetry) {
  DtDeviationOptions options;
  EXPECT_NEAR(DtDeviation(*m1_, d1_, *m1_, d1_, options), 0.0, 1e-12);
  EXPECT_NEAR(DtDeviation(*m1_, d1_, *m2_, d2_, options),
              DtDeviation(*m2_, d2_, *m1_, d1_, options), 1e-9);
}

TEST_P(DtPropertyTest, MisclassificationTheorem) {
  EXPECT_NEAR(MisclassificationError(m1_->tree(), d2_),
              MisclassificationErrorViaFocus(m1_->tree(), d2_), 1e-12);
  EXPECT_NEAR(MisclassificationError(m2_->tree(), d1_),
              MisclassificationErrorViaFocus(m2_->tree(), d1_), 1e-12);
}

TEST_P(DtPropertyTest, ClassFilteredPiecesSumToWhole) {
  // With g_sum and f_a, the deviation decomposes over class labels.
  DtDeviationOptions all;
  DtDeviationOptions class0;
  class0.class_filter = 0;
  DtDeviationOptions class1;
  class1.class_filter = 1;
  const double whole = DtDeviation(*m1_, d1_, *m2_, d2_, all);
  const double parts = DtDeviation(*m1_, d1_, *m2_, d2_, class0) +
                       DtDeviation(*m1_, d1_, *m2_, d2_, class1);
  EXPECT_NEAR(whole, parts, 1e-9);
}

TEST_P(DtPropertyTest, FocusMonotoneOverNestedAgeBands) {
  const data::Schema schema = datagen::ClassGenSchema();
  const int age = datagen::ClassGenColumns::kAge;
  DtDeviationOptions narrow;
  narrow.focus = NumericPredicate(schema, age, 30.0, 50.0);
  DtDeviationOptions wide;
  wide.focus = NumericPredicate(schema, age, 20.0, 70.0);
  DtDeviationOptions full;
  const double a = DtDeviation(*m1_, d1_, *m2_, d2_, narrow);
  const double b = DtDeviation(*m1_, d1_, *m2_, d2_, wide);
  const double c = DtDeviation(*m1_, d1_, *m2_, d2_, full);
  EXPECT_LE(a, b + 1e-9);
  EXPECT_LE(b, c + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DtPropertyTest,
    ::testing::Values(
        DtCase{datagen::ClassFunction::kF1, datagen::ClassFunction::kF1, 4},
        DtCase{datagen::ClassFunction::kF1, datagen::ClassFunction::kF2, 4},
        DtCase{datagen::ClassFunction::kF2, datagen::ClassFunction::kF3, 6},
        DtCase{datagen::ClassFunction::kF3, datagen::ClassFunction::kF4, 6},
        DtCase{datagen::ClassFunction::kF4, datagen::ClassFunction::kF5, 5},
        DtCase{datagen::ClassFunction::kF6, datagen::ClassFunction::kF7, 5}));

}  // namespace
}  // namespace focus::core

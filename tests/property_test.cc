// Property tests sweeping the paper's theorems across SEEDED random
// workloads, on the src/proptest harness (replayable via
// FOCUS_PROPTEST_SEED; see docs/TESTING.md):
//   * Theorem 4.1/4.3 — the GCR minimizes the deviation among refinements
//   * Theorem 4.2      — delta* upper-bounds delta_(f_a,g)
//   * Theorem 5.2      — ME == 1/2 delta_(f_a,g_sum) over Γ_T
//   * Definition 3.4   — GCR parts re-assemble every parent region measure
//   * symmetry / identity of delta, class-filter decomposition
// The algebraic-law and differential-oracle suites live in tests/laws/.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dt_deviation.h"
#include "core/focus_region.h"
#include "core/lits_deviation.h"
#include "core/lits_upper_bound.h"
#include "core/misclassification.h"
#include "core/region_algebra.h"
#include "datagen/class_gen.h"
#include "proptest/generators.h"
#include "proptest/proptest.h"
#include "tree/cart_builder.h"

namespace focus::core {
namespace {

using proptest::Check;
using proptest::PropResult;
using proptest::Rng;

// ---------- lits sweeps ----------

TEST(LitsProperty, SelfDeviationZeroAndSymmetry) {
  EXPECT_TRUE(Check<proptest::LitsPair>(
      "property/lits-self-zero-symmetry", proptest::LitsPairDomain(),
      [](const proptest::LitsPair& pair) {
        const data::TransactionDb d1 = proptest::MaterializeDb(pair.a);
        const data::TransactionDb d2 = proptest::MaterializeDb(pair.b);
        const lits::LitsModel m1 = proptest::Mine(pair.a, d1);
        const lits::LitsModel m2 = proptest::Mine(pair.b, d2);
        for (const AggregateKind g :
             {AggregateKind::kSum, AggregateKind::kMax}) {
          for (const bool scaled : {false, true}) {
            const DeviationFunction fn{scaled ? ScaledDiff() : AbsoluteDiff(),
                                       g};
            if (LitsDeviation(m1, d1, m1, d1, fn) != 0.0)
              return PropResult::Fail("self-deviation nonzero");
            if (std::fabs(LitsDeviation(m1, d1, m2, d2, fn) -
                          LitsDeviation(m2, d2, m1, d1, fn)) > 1e-9)
              return PropResult::Fail("deviation not symmetric");
          }
        }
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(10)));
}

TEST(LitsProperty, GcrMinimizesAmongRefinements) {
  // Theorem 4.1/4.3: any strictly finer common refinement (the GCR plus
  // random extra itemsets) can only raise the deviation.
  EXPECT_TRUE(Check<proptest::LitsPair>(
      "property/lits-gcr-minimizes", proptest::LitsPairDomain(),
      [](const proptest::LitsPair& pair) {
        const data::TransactionDb d1 = proptest::MaterializeDb(pair.a);
        const data::TransactionDb d2 = proptest::MaterializeDb(pair.b);
        const lits::LitsModel m1 = proptest::Mine(pair.a, d1);
        const lits::LitsModel m2 = proptest::Mine(pair.b, d2);
        const std::vector<lits::Itemset> gcr = LitsGcr(m1, m2);

        Rng extra_rng(pair.a.quest.seed * 977 + pair.b.quest.seed);
        std::vector<lits::Itemset> finer = gcr;
        const int extras = static_cast<int>(extra_rng.IntIn(1, 8));
        for (int i = 0; i < extras; ++i) {
          finer.push_back(
              proptest::GenItemset(extra_rng, d1.num_items(), 4));
        }
        finer = NormalizeItemsets(std::move(finer));
        for (const AggregateKind g :
             {AggregateKind::kSum, AggregateKind::kMax}) {
          for (const bool scaled : {false, true}) {
            const DeviationFunction fn{scaled ? ScaledDiff() : AbsoluteDiff(),
                                       g};
            if (LitsDeviationOverRegions(gcr, d1, d2, fn) >
                LitsDeviationOverRegions(finer, d1, d2, fn) + 1e-9)
              return PropResult::Fail("a finer refinement beat the GCR");
          }
        }
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(10)));
}

TEST(LitsProperty, UpperBoundDominatesExact) {
  // Theorem 4.2: delta* needs no dataset scan yet bounds the exact
  // deviation from above (both models share one mining threshold).
  EXPECT_TRUE(Check<proptest::LitsPair>(
      "property/lits-upper-bound-dominates", proptest::LitsPairDomain(),
      [](const proptest::LitsPair& pair) {
        const data::TransactionDb d1 = proptest::MaterializeDb(pair.a);
        const data::TransactionDb d2 = proptest::MaterializeDb(pair.b);
        const lits::LitsModel m1 = proptest::Mine(pair.a, d1);
        const lits::LitsModel m2 = proptest::Mine(pair.b, d2);
        for (const AggregateKind g :
             {AggregateKind::kSum, AggregateKind::kMax}) {
          const DeviationFunction fn{AbsoluteDiff(), g};
          if (LitsUpperBound(m1, m2, g) + 1e-12 <
              LitsDeviation(m1, d1, m2, d2, fn))
            return PropResult::Fail("delta* below the exact deviation");
        }
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(10)));
}

TEST(LitsProperty, FocusNeverExceedsFullForAbsoluteSum) {
  // For lits-models a focussing predicate DROPS whole regions from a sum
  // of non-negative terms, so delta^R <= delta (contrast with dt-models,
  // where tuple-level restriction makes this false in general).
  EXPECT_TRUE(Check<proptest::LitsPair>(
      "property/lits-focus-bounded-by-full", proptest::LitsPairDomain(),
      [](const proptest::LitsPair& pair) {
        const data::TransactionDb d1 = proptest::MaterializeDb(pair.a);
        const data::TransactionDb d2 = proptest::MaterializeDb(pair.b);
        const lits::LitsModel m1 = proptest::Mine(pair.a, d1);
        const lits::LitsModel m2 = proptest::Mine(pair.b, d2);
        const DeviationFunction fn;  // (f_a, g_sum)
        const double full = LitsDeviation(m1, d1, m2, d2, fn);
        Rng pivot_rng(pair.b.quest.seed * 31 + 5);
        for (int probe = 0; probe < 3; ++probe) {
          const auto pivot =
              static_cast<int32_t>(pivot_rng.IntIn(0, d1.num_items() - 1));
          const double focused = LitsDeviationFocused(
              m1, d1, m2, d2, ContainsItem(pivot), fn);
          if (focused > full + 1e-9)
            return PropResult::Fail("focused deviation exceeds full, pivot " +
                                    std::to_string(pivot));
        }
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(10)));
}

// ---------- dt sweeps ----------

TEST(DtProperty, MeasuresFormProbabilityDistribution) {
  EXPECT_TRUE(Check<proptest::DtWorkload>(
      "property/dt-measures-distribution", proptest::DtWorkloadDomain(),
      [](const proptest::DtWorkload& workload) {
        const data::Dataset d = proptest::MaterializeDataset(workload);
        const DtModel model(proptest::BuildTree(workload, d), d);
        double total = 0.0;
        for (int leaf = 0; leaf < model.num_leaves(); ++leaf) {
          for (int c = 0; c < model.num_classes(); ++c) {
            const double m = model.measure(leaf, c);
            if (m < 0.0) return PropResult::Fail("negative measure");
            total += m;
          }
        }
        if (std::fabs(total - 1.0) > 1e-9)
          return PropResult::Fail("measures sum to " + std::to_string(total));
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(10)));
}

TEST(DtProperty, GcrPartsReassembleParents) {
  // Definition 3.4: summing GCR-part measures grouped by a parent leaf
  // reproduces that leaf's measure exactly, for either parent tree.
  EXPECT_TRUE(Check<proptest::DtPair>(
      "property/dt-gcr-reassembles-parents", proptest::DtPairDomain(),
      [](const proptest::DtPair& pair) {
        const data::Dataset d1 = proptest::MaterializeDataset(pair.a);
        const data::Dataset d2 = proptest::MaterializeDataset(pair.b);
        const DtModel m1(proptest::BuildTree(pair.a, d1), d1);
        const DtModel m2(proptest::BuildTree(pair.b, d2), d2);
        const DtGcr gcr(m1, m2);
        const int k = gcr.num_classes();
        const std::vector<double> measures =
            gcr.Measures(m1.tree(), m2.tree(), d2, std::nullopt);
        const std::vector<double> parent2 =
            DtMeasuresOverTree(m2.tree(), d2);
        for (int leaf = 0; leaf < m2.num_leaves(); ++leaf) {
          for (int c = 0; c < k; ++c) {
            double sum = 0.0;
            for (int r = 0; r < gcr.num_regions(); ++r) {
              if (gcr.regions()[r].leaf2 == leaf) sum += measures[r * k + c];
            }
            if (std::fabs(sum - parent2[leaf * k + c]) > 1e-9)
              return PropResult::Fail("leaf " + std::to_string(leaf) +
                                      " class " + std::to_string(c) +
                                      " does not reassemble");
          }
        }
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(8)));
}

TEST(DtProperty, SelfDeviationZeroAndSymmetry) {
  EXPECT_TRUE(Check<proptest::DtPair>(
      "property/dt-self-zero-symmetry", proptest::DtPairDomain(),
      [](const proptest::DtPair& pair) {
        const data::Dataset d1 = proptest::MaterializeDataset(pair.a);
        const data::Dataset d2 = proptest::MaterializeDataset(pair.b);
        const DtModel m1(proptest::BuildTree(pair.a, d1), d1);
        const DtModel m2(proptest::BuildTree(pair.b, d2), d2);
        DtDeviationOptions options;
        if (std::fabs(DtDeviation(m1, d1, m1, d1, options)) > 1e-12)
          return PropResult::Fail("self-deviation nonzero");
        if (std::fabs(DtDeviation(m1, d1, m2, d2, options) -
                      DtDeviation(m2, d2, m1, d1, options)) > 1e-9)
          return PropResult::Fail("deviation not symmetric");
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(8)));
}

TEST(DtProperty, MisclassificationTheorem) {
  // Theorem 5.2: ME of an old tree on new data equals half the focussed
  // (f_a, g_sum) deviation over the shared structural component.
  EXPECT_TRUE(Check<proptest::DtPair>(
      "property/dt-misclassification-theorem", proptest::DtPairDomain(),
      [](const proptest::DtPair& pair) {
        const data::Dataset d1 = proptest::MaterializeDataset(pair.a);
        const data::Dataset d2 = proptest::MaterializeDataset(pair.b);
        const dt::DecisionTree t1 = proptest::BuildTree(pair.a, d1);
        const dt::DecisionTree t2 = proptest::BuildTree(pair.b, d2);
        if (std::fabs(MisclassificationError(t1, d2) -
                      MisclassificationErrorViaFocus(t1, d2)) > 1e-12)
          return PropResult::Fail("Theorem 5.2 violated for t1 on d2");
        if (std::fabs(MisclassificationError(t2, d1) -
                      MisclassificationErrorViaFocus(t2, d1)) > 1e-12)
          return PropResult::Fail("Theorem 5.2 violated for t2 on d1");
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(8)));
}

TEST(DtProperty, ClassFilteredPiecesSumToWhole) {
  // With (f_a, g_sum) the deviation decomposes over class labels.
  EXPECT_TRUE(Check<proptest::DtPair>(
      "property/dt-class-filter-decomposition", proptest::DtPairDomain(),
      [](const proptest::DtPair& pair) {
        const data::Dataset d1 = proptest::MaterializeDataset(pair.a);
        const data::Dataset d2 = proptest::MaterializeDataset(pair.b);
        const DtModel m1(proptest::BuildTree(pair.a, d1), d1);
        const DtModel m2(proptest::BuildTree(pair.b, d2), d2);
        DtDeviationOptions all;
        const double whole = DtDeviation(m1, d1, m2, d2, all);
        double parts = 0.0;
        for (int c = 0; c < d1.schema().num_classes(); ++c) {
          DtDeviationOptions one;
          one.class_filter = c;
          parts += DtDeviation(m1, d1, m2, d2, one);
        }
        if (std::fabs(whole - parts) > 1e-9)
          return PropResult::Fail("class pieces sum to " +
                                  std::to_string(parts) + ", whole is " +
                                  std::to_string(whole));
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(8)));
}

// Focus monotonicity over nested age bands is NOT a theorem for dt-models
// (tuple-level restriction can break cancellation outside the band), but
// it does hold on these specific distribution pairs — kept as a fixed
// regression sweep, matching the paper's Section 5 running example.
TEST(DtProperty, FocusMonotoneOverNestedAgeBandsRegression) {
  const std::pair<datagen::ClassFunction, datagen::ClassFunction> sweeps[] = {
      {datagen::ClassFunction::kF1, datagen::ClassFunction::kF1},
      {datagen::ClassFunction::kF1, datagen::ClassFunction::kF2},
      {datagen::ClassFunction::kF2, datagen::ClassFunction::kF3},
      {datagen::ClassFunction::kF3, datagen::ClassFunction::kF4},
      {datagen::ClassFunction::kF4, datagen::ClassFunction::kF5},
      {datagen::ClassFunction::kF6, datagen::ClassFunction::kF7},
  };
  const data::Schema schema = datagen::ClassGenSchema();
  const int age = datagen::ClassGenColumns::kAge;
  for (const auto& [f1, f2] : sweeps) {
    datagen::ClassGenParams gen;
    gen.num_rows = 2500;
    gen.function = f1;
    gen.seed = 1;
    const data::Dataset d1 = datagen::GenerateClassification(gen);
    gen.function = f2;
    gen.seed = 2;
    const data::Dataset d2 = datagen::GenerateClassification(gen);
    dt::CartOptions cart;
    cart.max_depth = 5;
    cart.min_leaf_size = 40;
    const DtModel m1(dt::BuildCart(d1, cart), d1);
    const DtModel m2(dt::BuildCart(d2, cart), d2);

    DtDeviationOptions narrow;
    narrow.focus = NumericPredicate(schema, age, 30.0, 50.0);
    DtDeviationOptions wide;
    wide.focus = NumericPredicate(schema, age, 20.0, 70.0);
    DtDeviationOptions full;
    const double a = DtDeviation(m1, d1, m2, d2, narrow);
    const double b = DtDeviation(m1, d1, m2, d2, wide);
    const double c = DtDeviation(m1, d1, m2, d2, full);
    EXPECT_LE(a, b + 1e-9);
    EXPECT_LE(b, c + 1e-9);
  }
}

}  // namespace
}  // namespace focus::core

#include <vector>

#include <gtest/gtest.h>

#include "core/functions.h"

namespace focus::core {
namespace {

TEST(AbsoluteDiffTest, MatchesDefinition) {
  const DiffFn f = AbsoluteDiff();
  // f_a(c1, c2, n1, n2) = |c1/n1 - c2/n2|.
  EXPECT_DOUBLE_EQ(f(50, 10, 100, 100), 0.4);
  EXPECT_DOUBLE_EQ(f(50, 25, 100, 50), 0.0);
  EXPECT_DOUBLE_EQ(f(0, 0, 10, 10), 0.0);
  EXPECT_DOUBLE_EQ(f(0, 5, 10, 100), 0.05);
}

TEST(ScaledDiffTest, MatchesDefinition) {
  const DiffFn f = ScaledDiff();
  // s1=0.5, s2=0.55 -> |diff| / mean = 0.05 / 0.525.
  EXPECT_NEAR(f(50, 55, 100, 100), 0.05 / 0.525, 1e-12);
  // Both zero counts -> 0 by definition.
  EXPECT_DOUBLE_EQ(f(0, 0, 100, 100), 0.0);
  // s1=0, s2=0.05: scaled diff = 0.05 / 0.025 = 2 (maximal relative change).
  EXPECT_NEAR(f(0, 5, 100, 100), 2.0, 1e-12);
}

TEST(ScaledDiffTest, EmphasizesAppearanceOverGrowth) {
  const DiffFn fs = ScaledDiff();
  const DiffFn fa = AbsoluteDiff();
  // The paper's §3.3.2 example: X1 moves 50% -> 55%, X2 moves 0% -> 5%.
  const double x1_scaled = fs(50, 55, 100, 100);
  const double x2_scaled = fs(0, 5, 100, 100);
  EXPECT_GT(x2_scaled, x1_scaled);  // appearance is more significant
  EXPECT_NEAR(fa(50, 55, 100, 100), fa(0, 5, 100, 100), 1e-12);  // f_a: equal
}

TEST(ChiSquaredDiffTest, MatchesProposition51) {
  const DiffFn f = ChiSquaredDiff(0.5);
  // s1 = 0.5 from D1 (n1=100), s2 = 0.4 from D2 (n2=200):
  // n2 * (s1-s2)^2 / s1 = 200 * 0.01 / 0.5 = 4.
  EXPECT_NEAR(f(50, 80, 100, 200), 4.0, 1e-12);
  // Zero expected measure contributes the constant c.
  EXPECT_DOUBLE_EQ(f(0, 10, 100, 200), 0.5);
}

TEST(AggregateTest, SumAndMax) {
  const std::vector<double> values = {0.4, 0.1, 0.4, 0.2, 0.15};
  EXPECT_NEAR(AggregateValues(AggregateKind::kSum, values), 1.25, 1e-12);
  EXPECT_DOUBLE_EQ(AggregateValues(AggregateKind::kMax, values), 0.4);
}

TEST(AggregateTest, EmptySetAggregatesToZero) {
  EXPECT_DOUBLE_EQ(AggregateValues(AggregateKind::kSum, {}), 0.0);
  EXPECT_DOUBLE_EQ(AggregateValues(AggregateKind::kMax, {}), 0.0);
}

TEST(AggregateTest, Names) {
  EXPECT_EQ(ToString(AggregateKind::kSum), "g_sum");
  EXPECT_EQ(ToString(AggregateKind::kMax), "g_max");
}

TEST(DeviationFunctionTest, DefaultIsAbsoluteSum) {
  const DeviationFunction fn;
  EXPECT_EQ(fn.g, AggregateKind::kSum);
  EXPECT_DOUBLE_EQ(fn.f(30, 10, 100, 100), 0.2);
}

}  // namespace
}  // namespace focus::core

#include <random>

#include <gtest/gtest.h>

#include "core/sampling_study.h"
#include "datagen/class_gen.h"
#include "datagen/quest_gen.h"
#include "stats/rng.h"

namespace focus::core {
namespace {

using datagen::ClassFunction;
using datagen::ClassGenParams;
using datagen::GenerateClassification;
using datagen::GenerateQuest;
using datagen::QuestParams;

TEST(LitsSampleStudyTest, SdDecreasesWithSampleFraction) {
  QuestParams params;
  params.num_transactions = 2000;
  params.num_items = 100;
  params.num_patterns = 40;
  params.avg_pattern_length = 3;
  params.avg_transaction_length = 8;
  params.seed = 7;
  const data::TransactionDb db = GenerateQuest(params);

  LitsStudyConfig config;
  config.apriori.min_support = 0.02;
  config.fractions = {0.05, 0.2, 0.6};
  config.samples_per_fraction = 5;
  const auto points = LitsSampleStudy(db, config);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].sample_deviations.size(), 5u);
  // Mean SD decreases with sample fraction (the central Section-6 shape).
  EXPECT_GT(points[0].mean_sd, points[1].mean_sd);
  EXPECT_GT(points[1].mean_sd, points[2].mean_sd);
}

TEST(DtSampleStudyTest, SdDecreasesWithSampleFraction) {
  ClassGenParams params;
  params.num_rows = 4000;
  params.function = ClassFunction::kF2;
  params.seed = 7;
  const data::Dataset dataset = GenerateClassification(params);

  DtStudyConfig config;
  config.cart.max_depth = 4;
  config.cart.min_leaf_size = 20;
  config.fractions = {0.05, 0.3, 0.8};
  config.samples_per_fraction = 5;
  const auto points = DtSampleStudy(dataset, config);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_GT(points[0].mean_sd, points[2].mean_sd);
}

TEST(ClusterSampleStudyTest, SdDecreasesWithSampleFraction) {
  // Two-dimensional blobs; the cluster-model sample study (our extension
  // of §6 to the third model class) must show the same monotone shape.
  const data::Schema schema(
      {data::Schema::Numeric("x", 0.0, 10.0), data::Schema::Numeric("y", 0.0, 10.0)},
      0);
  data::Dataset dataset(schema);
  std::mt19937_64 rng = stats::MakeRng(4);
  std::normal_distribution<double> noise(0.0, 0.5);
  for (int i = 0; i < 4000; ++i) {
    const double cx = (i % 2 == 0) ? 2.5 : 7.5;
    dataset.AddRow(
        std::vector<double>{std::clamp(cx + noise(rng), 0.0, 9.999),
                            std::clamp(cx + noise(rng), 0.0, 9.999)},
        0);
  }
  core::ClusterStudyConfig config;
  config.grid_attributes = {0, 1};
  config.grid_bins = 10;
  config.density_threshold = 0.005;
  config.fractions = {0.05, 0.3, 0.8};
  config.samples_per_fraction = 5;
  const auto points = ClusterSampleStudy(dataset, config);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_GT(points[0].mean_sd, points[2].mean_sd);
}

TEST(SampleStudyTest, StepSignificancesShapeAndRange) {
  SampleStudyPoint a;
  a.fraction = 0.1;
  a.sample_deviations = {1.0, 1.1, 0.9, 1.05, 0.95};
  SampleStudyPoint b;
  b.fraction = 0.5;
  b.sample_deviations = {0.2, 0.25, 0.15, 0.22, 0.18};
  SampleStudyPoint c;
  c.fraction = 0.8;
  c.sample_deviations = {0.21, 0.24, 0.16, 0.2, 0.19};  // ~same as b

  const auto significances = StepSignificances({a, b, c});
  ASSERT_EQ(significances.size(), 2u);
  EXPECT_GT(significances[0], 98.0);  // clear decrease
  EXPECT_LT(significances[1], 90.0);  // no real decrease
  for (double s : significances) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 99.99);
  }
}

TEST(SampleStudyTest, DeterministicGivenSeed) {
  QuestParams params;
  params.num_transactions = 800;
  params.num_items = 60;
  params.num_patterns = 20;
  params.seed = 3;
  const data::TransactionDb db = GenerateQuest(params);
  LitsStudyConfig config;
  config.apriori.min_support = 0.05;
  config.fractions = {0.2, 0.5};
  config.samples_per_fraction = 3;
  config.seed = 99;
  const auto p1 = LitsSampleStudy(db, config);
  const auto p2 = LitsSampleStudy(db, config);
  ASSERT_EQ(p1.size(), p2.size());
  for (size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i].sample_deviations, p2[i].sample_deviations);
  }
}

TEST(SampleStudyTest, FullFractionHasNearZeroSd) {
  // A "sample" of 100% induces the same model: SD must be ~0.
  QuestParams params;
  params.num_transactions = 500;
  params.num_items = 50;
  params.num_patterns = 15;
  params.seed = 3;
  const data::TransactionDb db = GenerateQuest(params);
  LitsStudyConfig config;
  config.apriori.min_support = 0.05;
  config.fractions = {1.0};
  config.samples_per_fraction = 2;
  const auto points = LitsSampleStudy(db, config);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_NEAR(points[0].mean_sd, 0.0, 1e-9);
}

}  // namespace
}  // namespace focus::core

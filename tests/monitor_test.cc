#include <gtest/gtest.h>

#include "core/monitor.h"
#include "datagen/quest_gen.h"

namespace focus::core {
namespace {

data::TransactionDb MakeSnapshot(uint64_t seed, bool drifted) {
  datagen::QuestParams params;
  params.num_transactions = 1200;
  params.num_items = 100;
  params.num_patterns = 40;
  params.avg_pattern_length = drifted ? 6 : 4;
  params.avg_transaction_length = 8;
  params.pattern_seed = drifted ? 43 : 42;
  params.seed = seed;
  return datagen::GenerateQuest(params);
}

MonitorOptions TestOptions() {
  MonitorOptions options;
  options.apriori.min_support = 0.02;
  options.calibration_replicates = 5;
  options.significance.num_replicates = 9;
  return options;
}

TEST(LitsChangeMonitorTest, ScreensOutSameProcessSnapshots) {
  const LitsChangeMonitor monitor(MakeSnapshot(1, false), TestOptions());
  EXPECT_GT(monitor.alert_threshold(), 0.0);
  int screened = 0;
  for (uint64_t seed = 2; seed <= 5; ++seed) {
    const MonitorReport report = monitor.Inspect(MakeSnapshot(seed, false));
    if (report.screened_out) ++screened;
    EXPECT_FALSE(report.alert && report.screened_out);
  }
  // Most quiet snapshots pass stage 1 without the expensive stage 2.
  EXPECT_GE(screened, 3);
}

TEST(LitsChangeMonitorTest, AlertsOnDrift) {
  const LitsChangeMonitor monitor(MakeSnapshot(1, false), TestOptions());
  const MonitorReport report = monitor.Inspect(MakeSnapshot(9, true));
  EXPECT_FALSE(report.screened_out);
  EXPECT_TRUE(report.alert);
  EXPECT_GT(report.deviation, 0.0);
  EXPECT_GE(report.significance_percent, 95.0);
  // Theorem 4.2: bound dominates the exact deviation.
  EXPECT_GE(report.upper_bound, report.deviation - 1e-9);
}

TEST(LitsChangeMonitorTest, RebaseAdoptsNewRegime) {
  LitsChangeMonitor monitor(MakeSnapshot(1, false), TestOptions());
  // Drifted snapshot fires...
  EXPECT_TRUE(monitor.Inspect(MakeSnapshot(9, true)).alert);
  // ...after rebasing onto the new regime, its siblings are quiet.
  monitor.Rebase(MakeSnapshot(9, true));
  const MonitorReport report = monitor.Inspect(MakeSnapshot(10, true));
  EXPECT_FALSE(report.alert);
  // And the old regime now alerts.
  EXPECT_TRUE(monitor.Inspect(MakeSnapshot(2, false)).alert);
}

TEST(LitsChangeMonitorTest, SelfInspectionIsQuiet) {
  const data::TransactionDb reference = MakeSnapshot(1, false);
  const LitsChangeMonitor monitor(reference, TestOptions());
  const MonitorReport report = monitor.Inspect(reference);
  EXPECT_TRUE(report.screened_out);
  EXPECT_DOUBLE_EQ(report.upper_bound, 0.0);
}

}  // namespace
}  // namespace focus::core

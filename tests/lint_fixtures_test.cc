// End-to-end tests for tools/focus_lint: every rule is proven live by a
// fixture that trips it, the escape hatch and path exemptions are proven
// inert, and the repo itself must scan clean (this is the lint gate that
// keeps `ctest` equivalent to CI's static-analysis job).
//
// The binary path and fixture root are injected at compile time
// (FOCUS_LINT_PATH / FOCUS_LINT_FIXTURES / FOCUS_LINT_REPO_ROOT, see
// tests/CMakeLists.txt) so the test works from any build directory.

#include <sys/wait.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace focus::lint {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult RunLint(const std::string& args) {
  RunResult result;
  const std::string command =
      std::string(FOCUS_LINT_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  size_t got = 0;
  while ((got = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.output.append(buffer, got);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

// Parses "file:line: [rule] message" diagnostics into (file, rule) pairs,
// ignoring the trailing summary line.
std::vector<std::pair<std::string, std::string>> ParseFindings(
    const std::string& output) {
  std::vector<std::pair<std::string, std::string>> findings;
  size_t start = 0;
  while (start < output.size()) {
    size_t end = output.find('\n', start);
    if (end == std::string::npos) end = output.size();
    const std::string line = output.substr(start, end - start);
    start = end + 1;
    const size_t open = line.find(": [");
    const size_t close = line.find(']', open == std::string::npos ? 0 : open);
    if (open == std::string::npos || close == std::string::npos) continue;
    const size_t colon = line.find(':');
    findings.emplace_back(line.substr(0, colon),
                          line.substr(open + 3, close - open - 3));
  }
  return findings;
}

int CountFindings(
    const std::vector<std::pair<std::string, std::string>>& findings,
    const std::string& file, const std::string& rule) {
  int count = 0;
  for (const auto& [found_file, found_rule] : findings) {
    if (found_file == file && found_rule == rule) ++count;
  }
  return count;
}

TEST(FocusLintTest, ListRulesNamesEveryRule) {
  const RunResult result = RunLint("--list-rules");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  for (const char* rule : {"raw-mutex", "naked-mt19937",
                           "std-function-in-hot-loop", "unchecked-strtol"}) {
    EXPECT_NE(result.output.find(rule), std::string::npos)
        << "missing rule " << rule << " in:\n"
        << result.output;
  }
}

TEST(FocusLintTest, UnknownFlagIsUsageError) {
  const RunResult result = RunLint("--no-such-flag");
  EXPECT_EQ(result.exit_code, 2) << result.output;
}

TEST(FocusLintTest, FixturesTriggerExactlyTheirRules) {
  const RunResult result =
      RunLint(std::string("--root ") + FOCUS_LINT_FIXTURES);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  const auto findings = ParseFindings(result.output);

  // Each *_bad.cc fixture trips exactly one finding of exactly its rule.
  const std::vector<std::pair<std::string, std::string>> expected = {
      {"src/serve/raw_mutex_bad.cc", "raw-mutex"},
      {"src/core/naked_mt19937_bad.cc", "naked-mt19937"},
      {"src/core/hot_loop_function_bad.cc", "std-function-in-hot-loop"},
      {"src/io/unchecked_strtol_bad.cc", "unchecked-strtol"},
      {"src/io/atoi_bad.cc", "unchecked-strtol"},
  };
  for (const auto& [file, rule] : expected) {
    EXPECT_EQ(CountFindings(findings, file, rule), 1)
        << file << " should trigger " << rule << " exactly once:\n"
        << result.output;
  }
  EXPECT_EQ(findings.size(), expected.size())
      << "unexpected extra findings:\n"
      << result.output;

  // The ok / allowed fixtures must not appear at all.
  for (const char* clean : {"raw_mutex_allowed.cc", "raw_mutex_ok.cc",
                            "near_miss_ok.cc", "checked_strtol_ok.cc"}) {
    EXPECT_EQ(result.output.find(clean), std::string::npos)
        << clean << " should be clean:\n"
        << result.output;
  }
}

// The repo-wide gate: the tree this test was built from lints clean. A
// failure here means a banned pattern landed in src/, tools/, tests/,
// bench/, fuzz/, or examples/ — fix the call site or justify an inline
// `// focus-lint: allow(<rule>)`.
TEST(FocusLintTest, RepositoryScansClean) {
  const RunResult result =
      RunLint(std::string("--root ") + FOCUS_LINT_REPO_ROOT);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_TRUE(ParseFindings(result.output).empty()) << result.output;
}

}  // namespace
}  // namespace focus::lint

#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_model.h"
#include "cluster/grid_clustering.h"

namespace focus::cluster {
namespace {

data::Schema XySchema() {
  return data::Schema(
      {data::Schema::Numeric("x", 0.0, 10.0), data::Schema::Numeric("y", 0.0, 10.0)},
      /*num_classes=*/0);
}

// Two blobs: one near (2,2), one near (8,8).
data::Dataset TwoBlobs(int per_blob) {
  data::Dataset dataset(XySchema());
  for (int i = 0; i < per_blob; ++i) {
    const double jitter = (i % 10) * 0.05;
    dataset.AddRow(std::vector<double>{2.0 + jitter, 2.0 + jitter}, 0);
    dataset.AddRow(std::vector<double>{8.0 + jitter, 8.0 - jitter}, 0);
  }
  return dataset;
}

TEST(GridTest, CellIndexingRoundTrips) {
  const Grid grid(XySchema(), {0, 1}, 5);
  EXPECT_EQ(grid.num_cells(), 25);
  // (x=2.5, y=7.5) -> bins (1, 3) -> cell 1*5+3 = 8.
  EXPECT_EQ(grid.CellOf(std::vector<double>{2.5, 7.5}), 8);
  // Out-of-domain values clamp into boundary bins.
  EXPECT_EQ(grid.CellOf(std::vector<double>{-5.0, 100.0}), 4);
}

TEST(GridTest, CellBoxContainsItsPoints) {
  const Grid grid(XySchema(), {0, 1}, 4);
  const std::vector<double> point = {3.3, 6.7};
  const int64_t cell = grid.CellOf(point);
  EXPECT_TRUE(grid.CellBox(cell).Contains(grid.schema(), point));
}

TEST(GridTest, NeighborsAreAdjacent) {
  const Grid grid(XySchema(), {0, 1}, 5);
  // Interior cell (2,2) = 12 has 4 neighbors.
  EXPECT_EQ(grid.Neighbors(12).size(), 4u);
  // Corner cell (0,0) = 0 has 2 neighbors.
  EXPECT_EQ(grid.Neighbors(0).size(), 2u);
}

TEST(GridTest, SameShapeComparison) {
  const Grid a(XySchema(), {0, 1}, 5);
  const Grid b(XySchema(), {0, 1}, 5);
  const Grid c(XySchema(), {0, 1}, 6);
  const Grid d(XySchema(), {0}, 5);
  EXPECT_TRUE(a.SameShape(b));
  EXPECT_FALSE(a.SameShape(c));
  EXPECT_FALSE(a.SameShape(d));
}

TEST(CountCellsTest, HistogramsSumToRows) {
  const data::Dataset dataset = TwoBlobs(50);
  const Grid grid(XySchema(), {0, 1}, 10);
  const std::vector<int64_t> counts = CountCells(dataset, grid);
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  EXPECT_EQ(total, dataset.num_rows());
}

TEST(GridClusteringTest, FindsTwoBlobs) {
  const data::Dataset dataset = TwoBlobs(100);
  const Grid grid(XySchema(), {0, 1}, 10);
  GridClusteringOptions options;
  options.density_threshold = 0.05;
  const ClusterModel model = GridClustering(dataset, grid, options);
  EXPECT_EQ(model.num_regions(), 2);
  // Both blobs hold half the data each.
  EXPECT_NEAR(model.selectivity(0), 0.5, 1e-9);
  EXPECT_NEAR(model.selectivity(1), 0.5, 1e-9);
  EXPECT_NEAR(model.CoveredSelectivity(), 1.0, 1e-9);
}

TEST(GridClusteringTest, SparseNoiseExcluded) {
  data::Dataset dataset = TwoBlobs(100);
  // A few scattered noise points, below any density threshold.
  dataset.AddRow(std::vector<double>{5.0, 1.0}, 0);
  dataset.AddRow(std::vector<double>{1.0, 9.0}, 0);
  const Grid grid(XySchema(), {0, 1}, 10);
  GridClusteringOptions options;
  options.density_threshold = 0.05;
  const ClusterModel model = GridClustering(dataset, grid, options);
  EXPECT_EQ(model.num_regions(), 2);
  EXPECT_LT(model.CoveredSelectivity(), 1.0);
}

TEST(GridClusteringTest, RegionsAreDisjointSortedCells) {
  const data::Dataset dataset = TwoBlobs(100);
  const Grid grid(XySchema(), {0, 1}, 8);
  GridClusteringOptions options;
  options.density_threshold = 0.01;
  const ClusterModel model = GridClustering(dataset, grid, options);
  std::vector<int64_t> all;
  for (int r = 0; r < model.num_regions(); ++r) {
    EXPECT_TRUE(std::is_sorted(model.region(r).begin(), model.region(r).end()));
    all.insert(all.end(), model.region(r).begin(), model.region(r).end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
}

TEST(GridClusteringTest, ThresholdOneClusterEverythingDense) {
  // Threshold so low that every non-empty cell is dense.
  data::Dataset dataset(XySchema());
  for (int i = 0; i < 100; ++i) {
    dataset.AddRow(std::vector<double>{i * 0.1, i * 0.1}, 0);  // diagonal line
  }
  const Grid grid(XySchema(), {0, 1}, 10);
  GridClusteringOptions options;
  options.density_threshold = 1e-9;
  const ClusterModel model = GridClustering(dataset, grid, options);
  // Diagonal cells are axis-connected? Diagonal adjacency is NOT
  // connectivity here, so each diagonal cell is its own cluster.
  EXPECT_EQ(model.num_regions(), 10);
  EXPECT_NEAR(model.CoveredSelectivity(), 1.0, 1e-9);
}

}  // namespace
}  // namespace focus::cluster

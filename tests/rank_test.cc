#include <vector>

#include <gtest/gtest.h>

#include "cluster/grid_clustering.h"
#include "core/rank.h"
#include "datagen/class_gen.h"
#include "datagen/quest_gen.h"
#include "itemsets/apriori.h"
#include "tree/cart_builder.h"
#include "tree/leaf_regions.h"

namespace focus::core {
namespace {

using datagen::ClassFunction;
using datagen::ClassGenParams;
using datagen::GenerateClassification;
using lits::Itemset;

TEST(SelectTest, TopMinTopNBottomN) {
  struct Item {
    int id;
    double deviation;
  };
  const std::vector<Item> ranked = {{1, 0.9}, {2, 0.5}, {3, 0.2}, {4, 0.1}};
  EXPECT_EQ(SelectTop(ranked).id, 1);
  EXPECT_EQ(SelectMin(ranked).id, 4);
  const auto top2 = SelectTopN(ranked, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].id, 1);
  EXPECT_EQ(top2[1].id, 2);
  const auto bottom2 = SelectBottomN(ranked, 2);
  ASSERT_EQ(bottom2.size(), 2u);
  EXPECT_EQ(bottom2[0].id, 3);
  EXPECT_EQ(bottom2[1].id, 4);
  // Requesting more than available returns everything.
  EXPECT_EQ(SelectTopN(ranked, 10).size(), 4u);
}

TEST(RankLitsTest, OrdersByDeviation) {
  // Hand-built models over a 4-item universe; dummy databases supply only
  // the sizes.
  data::TransactionDb d1(4);
  data::TransactionDb d2(4);
  for (int i = 0; i < 10; ++i) {
    d1.AddTransaction(std::vector<int32_t>{0});
    d2.AddTransaction(std::vector<int32_t>{1});
  }
  lits::LitsModel m1(0.1, 10, 4);
  m1.Add(Itemset({0}), 1.0);
  m1.Add(Itemset({1}), 0.0);
  lits::LitsModel m2(0.1, 10, 4);
  m2.Add(Itemset({0}), 0.0);
  m2.Add(Itemset({1}), 1.0);
  m2.Add(Itemset({2}), 0.3);

  const ItemsetSet regions = {Itemset({0}), Itemset({1}), Itemset({2})};
  const auto ranked = RankLitsRegions(regions, m1, d1, m2, d2, AbsoluteDiff());
  ASSERT_EQ(ranked.size(), 3u);
  // {0} and {1} both deviate by 1.0; {2} by 0.3.
  EXPECT_DOUBLE_EQ(ranked[0].deviation, 1.0);
  EXPECT_DOUBLE_EQ(ranked[1].deviation, 1.0);
  EXPECT_DOUBLE_EQ(ranked[2].deviation, 0.3);
  EXPECT_EQ(ranked[2].itemset, Itemset({2}));
}

TEST(RankLitsTest, CountsMissingSupportsFromData) {
  data::TransactionDb d1(3);
  data::TransactionDb d2(3);
  for (int i = 0; i < 8; ++i) d1.AddTransaction(std::vector<int32_t>{0, 1});
  for (int i = 0; i < 2; ++i) d1.AddTransaction(std::vector<int32_t>{2});
  for (int i = 0; i < 5; ++i) d2.AddTransaction(std::vector<int32_t>{0});
  for (int i = 0; i < 5; ++i) d2.AddTransaction(std::vector<int32_t>{1, 2});
  // Empty models: every support must be counted from the data.
  lits::LitsModel m1(0.5, 10, 3);
  lits::LitsModel m2(0.5, 10, 3);
  const ItemsetSet regions = {Itemset({0}), Itemset({1, 2})};
  const auto ranked = RankLitsRegions(regions, m1, d1, m2, d2, AbsoluteDiff());
  ASSERT_EQ(ranked.size(), 2u);
  // {0}: 0.8 vs 0.5 -> 0.3; {1,2}: 0.0 vs 0.5 -> 0.5.
  EXPECT_EQ(ranked[0].itemset, Itemset({1, 2}));
  EXPECT_NEAR(ranked[0].deviation, 0.5, 1e-12);
  EXPECT_NEAR(ranked[1].deviation, 0.3, 1e-12);
}

TEST(RankDtTest, FindsTheChangedRegion) {
  // D1 and D2 agree except for young ages where the class flips.
  ClassGenParams params;
  params.num_rows = 6000;
  params.function = ClassFunction::kF1;
  params.seed = 5;
  const data::Dataset d1 = GenerateClassification(params);

  data::Dataset d2(d1.schema());
  for (int64_t i = 0; i < d1.num_rows(); ++i) {
    int label = d1.Label(i);
    if (d1.At(i, datagen::ClassGenColumns::kAge) < 40.0) {
      label = 1 - label;  // change concentrated in age < 40
    }
    d2.AddRow(d1.Row(i), label);
  }

  dt::CartOptions cart;
  cart.max_depth = 4;
  const DtModel m1(dt::BuildCart(d1, cart), d1);
  const DtModel m2(dt::BuildCart(d2, cart), d2);

  // Candidate regions: leaves of both trees (the paper's
  // σ_top(ρ(Γ_T1 ∪ Γ_T2, δ)) expression).
  const BoxSet candidates = PlainUnion(m1.leaf_boxes(), m2.leaf_boxes());
  DeviationFunction fn;
  const auto ranked = RankDtRegions(candidates, m1, d1, m2, d2, fn);
  ASSERT_FALSE(ranked.empty());
  // Deviations must be sorted descending.
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].deviation, ranked[i].deviation);
  }
  // The top region must lie in the changed zone: age bound below 40.
  const data::AttributeBound& age_bound =
      ranked[0].region.bound(datagen::ClassGenColumns::kAge);
  EXPECT_LE(age_bound.lo, 40.0);
  EXPECT_GT(ranked[0].deviation, 0.1);
}

TEST(RankDtTest, RegionDeviationMatchesFocusedDeviation) {
  // ρ's per-region deviation must equal delta^R computed by DtDeviation
  // with focus=R.
  ClassGenParams params;
  params.num_rows = 2000;
  params.function = ClassFunction::kF2;
  params.seed = 1;
  const data::Dataset d1 = GenerateClassification(params);
  params.function = ClassFunction::kF3;
  params.seed = 2;
  const data::Dataset d2 = GenerateClassification(params);

  dt::CartOptions cart;
  cart.max_depth = 3;
  const DtModel m1(dt::BuildCart(d1, cart), d1);
  const DtModel m2(dt::BuildCart(d2, cart), d2);

  const BoxSet candidates = SelectTopN(m1.leaf_boxes(), 3);
  DeviationFunction fn;
  const auto ranked = RankDtRegions(candidates, m1, d1, m2, d2, fn);
  for (const RankedBox& entry : ranked) {
    DtDeviationOptions options;
    options.focus = entry.region;
    const double focused = DtDeviation(m1, d1, m2, d2, options);
    EXPECT_NEAR(entry.deviation, focused, 1e-9);
  }
}

TEST(RankClusterTest, MovedMassRanksFirst) {
  const data::Schema schema(
      {data::Schema::Numeric("x", 0.0, 10.0), data::Schema::Numeric("y", 0.0, 10.0)},
      0);
  data::Dataset d1(schema);
  data::Dataset d2(schema);
  for (int i = 0; i < 300; ++i) {
    const double jitter = (i % 9) * 0.05;
    // Stable blob at (2,2) in both datasets.
    d1.AddRow(std::vector<double>{2.0 + jitter, 2.0 + jitter}, 0);
    d2.AddRow(std::vector<double>{2.0 + jitter, 2.0 + jitter}, 0);
    // Blob that moves from (7,7) to (7,2).
    d1.AddRow(std::vector<double>{7.0 + jitter, 7.0 - jitter}, 0);
    d2.AddRow(std::vector<double>{7.0 + jitter, 2.0 + jitter}, 0);
  }
  const cluster::Grid grid(schema, {0, 1}, 10);
  cluster::GridClusteringOptions clustering;
  clustering.density_threshold = 0.01;
  const cluster::ClusterModel m1 = cluster::GridClustering(d1, grid, clustering);
  const cluster::ClusterModel m2 = cluster::GridClustering(d2, grid, clustering);

  const auto ranked = RankClusterRegions(m1, d1, m2, d2, AbsoluteDiff());
  ASSERT_GE(ranked.size(), 2u);
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].deviation, ranked[i].deviation);
  }
  // The top regions are the moved blob's source (present only in m1) and
  // target (present only in m2); the stable blob ranks at the bottom with
  // ~zero deviation.
  EXPECT_GT(ranked.front().deviation, 0.3);
  EXPECT_NEAR(ranked.back().deviation, 0.0, 0.05);
  // Moved-mass regions are one-sided in the GCR.
  EXPECT_TRUE(ranked[0].region1 == -1 || ranked[0].region2 == -1);
}

}  // namespace
}  // namespace focus::core

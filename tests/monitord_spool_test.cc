// End-to-end coverage of focus_monitord's rejected-file path: the REAL
// daemon binary (compiled path in FOCUS_MONITORD_PATH) is run over a
// spool seeded with malformed snapshot fixtures, and every fixture must
// be quarantined in <spool>/rejected/ EXACTLY once with a reason logged
// to stderr, while well-formed snapshots flow to <spool>/processed/.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/transaction_db.h"
#include "io/data_io.h"

namespace focus {
namespace {

namespace fs = std::filesystem;

// Malformed spool fixtures and the loader reason each must be rejected
// with. Kept in one table so the test both writes the fixtures and
// checks the logged reasons.
struct MalformedFixture {
  const char* name;            // spool filename
  const char* content;         // raw file bytes
  const char* reason_substring;  // must appear in the stderr log line
};

const MalformedFixture kMalformed[] = {
    {"s1__000_badmagic.txns", "focus-txns-v9\n3 1\n0 1\n", "bad magic"},
    {"s1__001_badheader.txns", "focus-txns-v1\nthree 1\n0\n",
     "unparseable header counts"},
    {"s1__002_negitems.txns", "focus-txns-v1\n-2 1\n0\n",
     "header counts out of range"},
    {"s1__003_truncated.txns", "focus-txns-v1\n3 5\n0 1\n",
     "truncated: missing transaction"},
    {"s1__004_outofrange.txns", "focus-txns-v1\n3 1\n0 99\n",
     "item id out of range"},
    {"s1__005_garbage.txns", "focus-txns-v1\n3 1\n0 zebra\n",
     "non-numeric token"},
    {"s1__006_trailing.txns", "focus-txns-v1\n3 1\n0 1\n2\n",
     "trailing content"},
    {"s1__007_empty.txns", "", "empty file"},
};

std::string Slurp(const fs::path& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

data::TransactionDb SmallDb(int32_t num_items, int64_t transactions) {
  data::TransactionDb db(num_items);
  std::vector<int32_t> items;
  for (int64_t t = 0; t < transactions; ++t) {
    items.clear();
    for (int32_t i = 0; i < num_items; ++i) {
      if ((t + i) % 2 == 0) items.push_back(i);
    }
    db.AddTransaction(items);
  }
  return db;
}

class MonitordSpoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("monitord_spool_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::remove_all(root_);
    fs::create_directories(root_ / "spool");
    reference_ = (root_ / "reference.txns").string();
    ASSERT_TRUE(io::SaveTransactionDbToFile(SmallDb(8, 40), reference_));
  }

  void TearDown() override { fs::remove_all(root_); }

  // Runs the daemon once over the spool; returns its exit code and fills
  // the captured stderr text.
  int RunOnce(std::string* captured_stderr) {
    const fs::path err_file = root_ / "stderr.txt";
    const fs::path out_file = root_ / "stdout.txt";
    const std::string cmd =
        std::string(FOCUS_MONITORD_PATH) + " --spool " +
        (root_ / "spool").string() + " --reference " + reference_ +
        " --once 1 --threads 2 --queue 8 --replicates 1 --calibration 1" +
        " --warmup 2 > " + out_file.string() + " 2> " + err_file.string();
    const int status = std::system(cmd.c_str());
    *captured_stderr = Slurp(err_file);
    return status;
  }

  void WriteSpoolFile(const std::string& name, const std::string& content) {
    std::ofstream out(root_ / "spool" / name);
    out << content;
  }

  std::vector<std::string> FilesIn(const std::string& subdir) {
    std::vector<std::string> names;
    const fs::path dir = root_ / "spool" / subdir;
    if (!fs::exists(dir)) return names;
    for (const auto& entry : fs::directory_iterator(dir)) {
      names.push_back(entry.path().filename().string());
    }
    return names;
  }

  fs::path root_;
  std::string reference_;
};

TEST_F(MonitordSpoolTest, EveryMalformedFixtureRejectedOnceWithReason) {
  for (const MalformedFixture& fixture : kMalformed) {
    WriteSpoolFile(fixture.name, fixture.content);
  }
  // Two well-formed snapshots mixed in; they must NOT be rejected.
  std::stringstream good;
  io::SaveTransactionDb(SmallDb(8, 30), good);
  WriteSpoolFile("s1__100_good.txns", good.str());
  WriteSpoolFile("s2__000_good.txns", good.str());

  std::string log;
  ASSERT_EQ(RunOnce(&log), 0) << log;

  // Exactly the malformed fixtures land in rejected/, each exactly once.
  std::map<std::string, int> rejected;
  for (const std::string& name : FilesIn("rejected")) ++rejected[name];
  EXPECT_EQ(rejected.size(), std::size(kMalformed));
  for (const MalformedFixture& fixture : kMalformed) {
    EXPECT_EQ(rejected[fixture.name], 1) << fixture.name;
    // The daemon logged the loader's reason next to the filename.
    const size_t at = log.find(std::string("rejected malformed snapshot ") +
                               fixture.name + ": ");
    ASSERT_NE(at, std::string::npos) << fixture.name << "\nlog:\n" << log;
    const std::string line = log.substr(at, log.find('\n', at) - at);
    EXPECT_NE(line.find(fixture.reason_substring), std::string::npos)
        << "expected reason '" << fixture.reason_substring << "' in: " << line;
  }

  // The good snapshots were consumed, not quarantined.
  std::map<std::string, int> processed;
  for (const std::string& name : FilesIn("processed")) ++processed[name];
  EXPECT_EQ(processed["s1__100_good.txns"], 1);
  EXPECT_EQ(processed["s2__000_good.txns"], 1);

  // Nothing is left behind in the spool root.
  for (const auto& entry : fs::directory_iterator(root_ / "spool")) {
    if (entry.is_regular_file()) {
      EXPECT_NE(entry.path().extension(), ".txns")
          << entry.path() << " left unconsumed";
    }
  }

  // The metrics log counted every rejection.
  const std::string metrics = Slurp(root_ / "spool" / "metrics.jsonl");
  EXPECT_NE(metrics.find("\"spool_rejected_files\":" +
                         std::to_string(std::size(kMalformed))),
            std::string::npos)
      << metrics;
}

TEST_F(MonitordSpoolTest, RerunDoesNotDoubleCountRejections) {
  WriteSpoolFile(kMalformed[0].name, kMalformed[0].content);
  std::string log;
  ASSERT_EQ(RunOnce(&log), 0) << log;
  ASSERT_EQ(FilesIn("rejected").size(), 1u);

  // A second scan of the (now empty) spool must not re-reject or move
  // anything — quarantine is idempotent across restarts.
  std::string second_log;
  ASSERT_EQ(RunOnce(&second_log), 0) << second_log;
  EXPECT_EQ(FilesIn("rejected").size(), 1u);
  EXPECT_EQ(second_log.find("rejected malformed snapshot"),
            std::string::npos);
}

TEST(DataIoErrorReasons, LoaderReportsSpecificReasons) {
  // The loader's out-param carries the same reasons the daemon logs.
  for (const MalformedFixture& fixture : kMalformed) {
    std::istringstream in(fixture.content);
    std::string error;
    ASSERT_FALSE(io::LoadTransactionDb(in, &error).has_value())
        << fixture.name;
    EXPECT_NE(error.find(fixture.reason_substring), std::string::npos)
        << fixture.name << ": got '" << error << "'";
  }
  // A clean load leaves no reason behind and the error param is optional.
  std::stringstream good;
  io::SaveTransactionDb(SmallDb(4, 5), good);
  EXPECT_TRUE(io::LoadTransactionDb(good).has_value());
}

}  // namespace
}  // namespace focus

// Property tests for the pool-parallel scan kernels: every parallel path
// must produce results BIT-IDENTICAL to its serial counterpart (integer
// counts, deterministic shard merge) across randomized inputs and pool
// sizes {1, 2, 8}.

#include <gtest/gtest.h>

#include <vector>

#include "cluster/grid_clustering.h"
#include "common/thread_pool.h"
#include "core/cluster_deviation.h"
#include "core/dt_deviation.h"
#include "core/lits_deviation.h"
#include "datagen/class_gen.h"
#include "datagen/quest_gen.h"
#include "itemsets/apriori.h"
#include "itemsets/support_counter.h"
#include "tree/cart_builder.h"

namespace focus {
namespace {

const int kPoolSizes[] = {1, 2, 8};

data::TransactionDb SmallQuest(uint64_t seed) {
  datagen::QuestParams params;
  params.num_transactions = 2000;
  params.num_items = 200;
  params.num_patterns = 400;
  params.avg_pattern_length = 4;
  params.avg_transaction_length = 10;
  params.seed = seed;
  return datagen::GenerateQuest(params);
}

TEST(ParallelScanTest, SupportCountsMatchSerialOnQuestData) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    const data::TransactionDb d1 = SmallQuest(seed);
    const data::TransactionDb d2 = SmallQuest(seed + 100);
    lits::AprioriOptions options;
    options.min_support = 0.02;
    const lits::LitsModel m1 = lits::Apriori(d1, options);
    const lits::LitsModel m2 = lits::Apriori(d2, options);
    // The GCR (union of both structural components) is the region set the
    // monitoring path extends over.
    const std::vector<lits::Itemset> regions = core::LitsGcr(m1, m2);
    ASSERT_FALSE(regions.empty());
    const lits::SupportCounter counter(regions, d1.num_items());
    const std::vector<int64_t> serial = counter.CountAbsolute(d1);
    for (int threads : kPoolSizes) {
      common::ThreadPool pool(threads);
      EXPECT_EQ(counter.CountAbsoluteParallel(d1, pool), serial)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(counter.CountRelativeParallel(d1, pool),
                counter.CountRelative(d1));
    }
  }
}

TEST(ParallelScanTest, SupportCountsMatchSerialWithEmptyItemset) {
  const data::TransactionDb db = SmallQuest(3);
  // Include the empty itemset (support |D|) among the candidates.
  const std::vector<lits::Itemset> regions = {
      lits::Itemset(), lits::Itemset({1}), lits::Itemset({2, 3})};
  const lits::SupportCounter counter(regions, db.num_items());
  const std::vector<int64_t> serial = counter.CountAbsolute(db);
  EXPECT_EQ(serial[0], db.num_transactions());
  for (int threads : kPoolSizes) {
    common::ThreadPool pool(threads);
    EXPECT_EQ(counter.CountAbsoluteParallel(db, pool), serial);
  }
}

TEST(ParallelScanTest, DtDeviationMatchesSerialOnClassGenData) {
  for (uint64_t seed : {1u, 9u}) {
    datagen::ClassGenParams params;
    params.num_rows = 2000;
    params.function = datagen::ClassFunction::kF2;
    params.seed = seed;
    const data::Dataset d1 = datagen::GenerateClassification(params);
    params.seed = seed + 50;
    params.function = datagen::ClassFunction::kF3;
    const data::Dataset d2 = datagen::GenerateClassification(params);

    dt::CartOptions cart;
    cart.max_depth = 6;
    cart.min_leaf_size = 20;
    const core::DtModel m1(dt::BuildCart(d1, cart), d1);
    const core::DtModel m2(dt::BuildCart(d2, cart), d2);

    core::DtDeviationOptions options;
    const double serial = core::DtDeviation(m1, d1, m2, d2, options);
    const double serial_over_tree =
        core::DtDeviationOverTree(m1.tree(), d1, d2, options);
    for (int threads : kPoolSizes) {
      common::ThreadPool pool(threads);
      options.pool = &pool;
      EXPECT_EQ(core::DtDeviation(m1, d1, m2, d2, options), serial)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(core::DtDeviationOverTree(m1.tree(), d1, d2, options),
                serial_over_tree);
      EXPECT_EQ(core::DtMeasuresOverTree(m1.tree(), d2, &pool),
                core::DtMeasuresOverTree(m1.tree(), d2));
      options.pool = nullptr;
    }
  }
}

TEST(ParallelScanTest, ClusterDeviationMatchesSerial) {
  const data::Schema schema(
      {data::Schema::Numeric("x", 0.0, 10.0),
       data::Schema::Numeric("y", 0.0, 10.0)},
      /*num_classes=*/0);
  auto blob = [&](double cx, double cy, int n, int phase) {
    data::Dataset dataset(schema);
    for (int i = 0; i < n; ++i) {
      const double jitter = ((i + phase) % 23) * 0.08;
      dataset.AddRow(std::vector<double>{cx + jitter, cy - jitter}, 0);
    }
    return dataset;
  };
  data::Dataset d1 = blob(2.0, 3.0, 700, 0);
  data::Dataset d2 = blob(6.5, 7.0, 900, 5);
  const cluster::Grid grid(schema, {0, 1}, 10);
  cluster::GridClusteringOptions cluster_options;
  cluster_options.density_threshold = 0.02;
  const cluster::ClusterModel m1 =
      cluster::GridClustering(d1, grid, cluster_options);
  const cluster::ClusterModel m2 =
      cluster::GridClustering(d2, grid, cluster_options);

  core::ClusterDeviationOptions options;
  const double serial = core::ClusterDeviation(m1, d1, m2, d2, options);
  for (int threads : kPoolSizes) {
    common::ThreadPool pool(threads);
    options.pool = &pool;
    EXPECT_EQ(core::ClusterDeviation(m1, d1, m2, d2, options), serial)
        << "threads " << threads;
    options.pool = nullptr;
  }
}

}  // namespace
}  // namespace focus

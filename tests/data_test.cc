#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "data/box.h"
#include "data/dataset.h"
#include "data/sampling.h"
#include "data/schema.h"
#include "data/transaction_db.h"
#include "stats/rng.h"

namespace focus::data {
namespace {

Schema TwoAttrSchema() {
  return Schema({Schema::Numeric("x", 0.0, 10.0), Schema::Categorical("c", 4)},
                /*num_classes=*/2);
}

TEST(SchemaTest, BasicAccessors) {
  const Schema schema = TwoAttrSchema();
  EXPECT_EQ(schema.num_attributes(), 2);
  EXPECT_EQ(schema.num_classes(), 2);
  EXPECT_EQ(schema.attribute(0).name, "x");
  EXPECT_EQ(schema.attribute(1).cardinality, 4);
}

TEST(SchemaTest, EqualityComparesStructure) {
  EXPECT_TRUE(TwoAttrSchema() == TwoAttrSchema());
  const Schema other({Schema::Numeric("x", 0.0, 5.0),
                      Schema::Categorical("c", 4)}, 2);
  EXPECT_FALSE(TwoAttrSchema() == other);
}

TEST(SchemaDeathTest, RejectsOversizedCategorical) {
  EXPECT_DEATH(Schema({Schema::Categorical("huge", 65)}, 0), "FOCUS_CHECK");
}

TEST(DatasetTest, AddAndReadRows) {
  Dataset dataset(TwoAttrSchema());
  dataset.AddRow(std::vector<double>{1.5, 2.0}, 0);
  dataset.AddRow(std::vector<double>{3.0, 1.0}, 1);
  ASSERT_EQ(dataset.num_rows(), 2);
  EXPECT_DOUBLE_EQ(dataset.At(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(dataset.At(1, 1), 1.0);
  EXPECT_EQ(dataset.Label(0), 0);
  EXPECT_EQ(dataset.Label(1), 1);
  EXPECT_EQ(dataset.Row(1).size(), 2u);
}

TEST(DatasetTest, AppendConcatenates) {
  Dataset a(TwoAttrSchema());
  a.AddRow(std::vector<double>{1.0, 0.0}, 0);
  Dataset b(TwoAttrSchema());
  b.AddRow(std::vector<double>{2.0, 1.0}, 1);
  a.Append(b);
  ASSERT_EQ(a.num_rows(), 2);
  EXPECT_DOUBLE_EQ(a.At(1, 0), 2.0);
  EXPECT_EQ(a.Label(1), 1);
}

TEST(DatasetDeathTest, RejectsBadLabel) {
  Dataset dataset(TwoAttrSchema());
  EXPECT_DEATH(dataset.AddRow(std::vector<double>{1.0, 0.0}, 5), "FOCUS_CHECK");
}

TEST(DatasetDeathTest, RejectsWrongArity) {
  Dataset dataset(TwoAttrSchema());
  EXPECT_DEATH(dataset.AddRow(std::vector<double>{1.0}, 0), "FOCUS_CHECK");
}

TEST(TransactionDbTest, SortsAndDeduplicates) {
  TransactionDb db(10);
  db.AddTransaction(std::vector<int32_t>{5, 1, 5, 3});
  ASSERT_EQ(db.num_transactions(), 1);
  const auto txn = db.Transaction(0);
  ASSERT_EQ(txn.size(), 3u);
  EXPECT_EQ(txn[0], 1);
  EXPECT_EQ(txn[1], 3);
  EXPECT_EQ(txn[2], 5);
}

TEST(TransactionDbTest, AppendPreservesContents) {
  TransactionDb a(5);
  a.AddTransaction(std::vector<int32_t>{0, 1});
  TransactionDb b(5);
  b.AddTransaction(std::vector<int32_t>{2});
  b.AddTransaction(std::vector<int32_t>{3, 4});
  a.Append(b);
  ASSERT_EQ(a.num_transactions(), 3);
  EXPECT_EQ(a.Transaction(2)[1], 4);
}

TEST(TransactionDbDeathTest, RejectsOutOfUniverseItem) {
  TransactionDb db(3);
  EXPECT_DEATH(db.AddTransaction(std::vector<int32_t>{3}), "FOCUS_CHECK");
}

TEST(SamplingTest, WithoutReplacementSizesAndUniqueness) {
  std::mt19937_64 rng = stats::MakeRng(7);
  const auto indices = SampleIndicesWithoutReplacement(100, 0.3, rng);
  EXPECT_EQ(indices.size(), 30u);
  std::vector<int64_t> sorted = indices;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
  EXPECT_GE(sorted.front(), 0);
  EXPECT_LT(sorted.back(), 100);
}

TEST(SamplingTest, FullFractionIsPermutation) {
  std::mt19937_64 rng = stats::MakeRng(7);
  auto indices = SampleIndicesWithoutReplacement(50, 1.0, rng);
  std::sort(indices.begin(), indices.end());
  for (int64_t i = 0; i < 50; ++i) EXPECT_EQ(indices[i], i);
}

TEST(SamplingTest, WithReplacementBounds) {
  std::mt19937_64 rng = stats::MakeRng(7);
  const auto indices = SampleIndicesWithReplacement(10, 1000, rng);
  EXPECT_EQ(indices.size(), 1000u);
  for (int64_t i : indices) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 10);
  }
}

TEST(SamplingTest, SampleDatasetIsDeterministicInSeed) {
  Dataset dataset(TwoAttrSchema());
  for (int i = 0; i < 100; ++i) {
    dataset.AddRow(std::vector<double>{static_cast<double>(i), 0.0}, i % 2);
  }
  std::mt19937_64 rng1 = stats::MakeRng(3);
  std::mt19937_64 rng2 = stats::MakeRng(3);
  const Dataset s1 = SampleDataset(dataset, 0.5, rng1);
  const Dataset s2 = SampleDataset(dataset, 0.5, rng2);
  ASSERT_EQ(s1.num_rows(), s2.num_rows());
  for (int64_t i = 0; i < s1.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(s1.At(i, 0), s2.At(i, 0));
  }
}

TEST(SamplingTest, SampleTransactionsFraction) {
  TransactionDb db(4);
  for (int i = 0; i < 40; ++i) db.AddTransaction(std::vector<int32_t>{i % 4});
  std::mt19937_64 rng = stats::MakeRng(11);
  const TransactionDb sample = SampleTransactions(db, 0.25, rng);
  EXPECT_EQ(sample.num_transactions(), 10);
}

// ---- Box ----

TEST(BoxTest, FullBoxContainsEverything) {
  const Schema schema = TwoAttrSchema();
  const Box box = Box::Full(schema);
  EXPECT_FALSE(box.IsEmpty(schema));
  EXPECT_TRUE(box.Contains(schema, std::vector<double>{5.0, 3.0}));
  EXPECT_TRUE(box.Contains(schema, std::vector<double>{-100.0, 0.0}));
}

TEST(BoxTest, NumericClampRestricts) {
  const Schema schema = TwoAttrSchema();
  Box box = Box::Full(schema);
  box.ClampNumeric(0, 2.0, 5.0);
  EXPECT_TRUE(box.Contains(schema, std::vector<double>{2.0, 0.0}));
  EXPECT_TRUE(box.Contains(schema, std::vector<double>{4.99, 0.0}));
  EXPECT_FALSE(box.Contains(schema, std::vector<double>{5.0, 0.0}));
  EXPECT_FALSE(box.Contains(schema, std::vector<double>{1.99, 0.0}));
}

TEST(BoxTest, CategoricalClampRestricts) {
  const Schema schema = TwoAttrSchema();
  Box box = Box::Full(schema);
  box.ClampCategorical(1, 0b0101);  // codes {0, 2}
  EXPECT_TRUE(box.Contains(schema, std::vector<double>{0.0, 0.0}));
  EXPECT_TRUE(box.Contains(schema, std::vector<double>{0.0, 2.0}));
  EXPECT_FALSE(box.Contains(schema, std::vector<double>{0.0, 1.0}));
}

TEST(BoxTest, IntersectionAndEmptiness) {
  const Schema schema = TwoAttrSchema();
  Box a = Box::Full(schema);
  a.ClampNumeric(0, 0.0, 4.0);
  Box b = Box::Full(schema);
  b.ClampNumeric(0, 2.0, 6.0);
  const Box ab = a.Intersect(b);
  EXPECT_FALSE(ab.IsEmpty(schema));
  EXPECT_TRUE(ab.Contains(schema, std::vector<double>{3.0, 0.0}));
  EXPECT_FALSE(ab.Contains(schema, std::vector<double>{1.0, 0.0}));

  Box c = Box::Full(schema);
  c.ClampNumeric(0, 5.0, 9.0);
  EXPECT_TRUE(a.Intersect(c).IsEmpty(schema));

  Box d = Box::Full(schema);
  d.ClampCategorical(1, 0b0001);
  Box e = Box::Full(schema);
  e.ClampCategorical(1, 0b0010);
  EXPECT_TRUE(d.Intersect(e).IsEmpty(schema));
}

TEST(BoxTest, CoversIsContainment) {
  const Schema schema = TwoAttrSchema();
  Box outer = Box::Full(schema);
  outer.ClampNumeric(0, 0.0, 10.0);
  Box inner = Box::Full(schema);
  inner.ClampNumeric(0, 2.0, 5.0);
  EXPECT_TRUE(outer.Covers(schema, inner));
  EXPECT_FALSE(inner.Covers(schema, outer));
  EXPECT_TRUE(Box::Full(schema).Covers(schema, outer));
}

TEST(BoxTest, ToStringMentionsConstraints) {
  const Schema schema = TwoAttrSchema();
  Box box = Box::Full(schema);
  EXPECT_EQ(box.ToString(schema), "<all>");
  box.ClampNumeric(0, 1.0, 2.0);
  box.ClampCategorical(1, 0b0011);
  const std::string text = box.ToString(schema);
  EXPECT_NE(text.find("x in [1,2)"), std::string::npos);
  EXPECT_NE(text.find("c in {0,1}"), std::string::npos);
}

TEST(BoxTest, EqualityIsStructural) {
  const Schema schema = TwoAttrSchema();
  Box a = Box::Full(schema);
  a.ClampNumeric(0, 1.0, 2.0);
  Box b = Box::Full(schema);
  b.ClampNumeric(0, 1.0, 2.0);
  EXPECT_TRUE(a == b);
  b.ClampCategorical(1, 0b1);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace focus::data

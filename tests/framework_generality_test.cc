// The framework's central claim: the difference function f and aggregate
// g are MODEL-INDEPENDENT parameters (§3.3.2). These tests exercise
// combinations the paper never shows explicitly — e.g. the chi-squared f
// over lits-models, f_s over dt-models, custom f everywhere — to pin
// that every instantiation composes with every model class.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/grid_clustering.h"
#include "core/cluster_deviation.h"
#include "core/dt_deviation.h"
#include "core/lits_deviation.h"
#include "datagen/class_gen.h"
#include "datagen/quest_gen.h"
#include "itemsets/apriori.h"
#include "tree/cart_builder.h"

namespace focus::core {
namespace {

struct LitsFixture {
  data::TransactionDb d1{0};
  data::TransactionDb d2{0};
  lits::LitsModel m1;
  lits::LitsModel m2;

  static LitsFixture Make() {
    LitsFixture fixture;
    datagen::QuestParams params;
    params.num_transactions = 600;
    params.num_items = 60;
    params.num_patterns = 15;
    params.avg_pattern_length = 3;
    params.avg_transaction_length = 8;
    params.seed = 1;
    fixture.d1 = datagen::GenerateQuest(params);
    params.avg_pattern_length = 5;
    params.seed = 2;
    fixture.d2 = datagen::GenerateQuest(params);
    lits::AprioriOptions options;
    options.min_support = 0.03;
    fixture.m1 = lits::Apriori(fixture.d1, options);
    fixture.m2 = lits::Apriori(fixture.d2, options);
    return fixture;
  }
};

TEST(FrameworkGeneralityTest, ChiSquaredDiffOverLitsModels) {
  // The paper instantiates chi-squared for dt-models only (§5.2.2), but f
  // is model-independent: plugging it into the lits deviation must work
  // and behave like a goodness-of-fit statistic (0 for identical data,
  // positive for different data).
  const LitsFixture fx = LitsFixture::Make();
  DeviationFunction fn{ChiSquaredDiff(0.5), AggregateKind::kSum};
  const double self = LitsDeviation(fx.m1, fx.d1, fx.m1, fx.d1, fn);
  const double cross = LitsDeviation(fx.m1, fx.d1, fx.m2, fx.d2, fn);
  EXPECT_DOUBLE_EQ(self, 0.0);
  EXPECT_GT(cross, 0.0);
}

TEST(FrameworkGeneralityTest, ScaledDiffOverDtModels) {
  datagen::ClassGenParams params;
  params.num_rows = 2000;
  params.function = datagen::ClassFunction::kF2;
  params.seed = 1;
  const data::Dataset d1 = datagen::GenerateClassification(params);
  params.function = datagen::ClassFunction::kF3;
  params.seed = 2;
  const data::Dataset d2 = datagen::GenerateClassification(params);
  dt::CartOptions cart;
  cart.max_depth = 4;
  const DtModel m1(dt::BuildCart(d1, cart), d1);
  const DtModel m2(dt::BuildCart(d2, cart), d2);

  DtDeviationOptions options;
  options.fn = {ScaledDiff(), AggregateKind::kMax};
  const double cross = DtDeviation(m1, d1, m2, d2, options);
  EXPECT_GT(cross, 0.0);
  EXPECT_LE(cross, 2.0 + 1e-12);  // f_s is bounded by 2
  EXPECT_NEAR(DtDeviation(m1, d1, m1, d1, options), 0.0, 1e-12);
}

TEST(FrameworkGeneralityTest, CustomDifferenceFunctionEverywhere) {
  // A user-defined f: squared selectivity difference.
  const DiffFn squared = [](double c1, double c2, double n1, double n2) {
    const double diff = c1 / n1 - c2 / n2;
    return diff * diff;
  };
  const LitsFixture fx = LitsFixture::Make();
  DeviationFunction fn{squared, AggregateKind::kSum};
  const double lits_dev = LitsDeviation(fx.m1, fx.d1, fx.m2, fx.d2, fn);
  EXPECT_GT(lits_dev, 0.0);

  // Same f over cluster-models.
  const data::Schema schema(
      {data::Schema::Numeric("x", 0.0, 10.0), data::Schema::Numeric("y", 0.0, 10.0)},
      0);
  data::Dataset c1(schema);
  data::Dataset c2(schema);
  for (int i = 0; i < 200; ++i) {
    const double jitter = (i % 7) * 0.05;
    c1.AddRow(std::vector<double>{2.0 + jitter, 2.0 + jitter}, 0);
    c2.AddRow(std::vector<double>{7.0 + jitter, 7.0 + jitter}, 0);
  }
  const cluster::Grid grid(schema, {0, 1}, 10);
  cluster::GridClusteringOptions clustering;
  clustering.density_threshold = 0.02;
  const cluster::ClusterModel cm1 = cluster::GridClustering(c1, grid, clustering);
  const cluster::ClusterModel cm2 = cluster::GridClustering(c2, grid, clustering);
  ClusterDeviationOptions cluster_options;
  cluster_options.fn = fn;
  EXPECT_GT(ClusterDeviation(cm1, c1, cm2, c2, cluster_options), 0.0);
}

TEST(FrameworkGeneralityTest, MaxAggregateBoundsSumAggregate) {
  // g_max <= g_sum for non-negative per-region differences, across model
  // classes — a structural sanity relation between the two aggregates.
  const LitsFixture fx = LitsFixture::Make();
  DeviationFunction sum_fn{AbsoluteDiff(), AggregateKind::kSum};
  DeviationFunction max_fn{AbsoluteDiff(), AggregateKind::kMax};
  EXPECT_LE(LitsDeviation(fx.m1, fx.d1, fx.m2, fx.d2, max_fn),
            LitsDeviation(fx.m1, fx.d1, fx.m2, fx.d2, sum_fn) + 1e-12);
}

TEST(FrameworkGeneralityTest, FsNotMonotoneUnderFocusIsPossible) {
  // §5 remarks delta^R is monotone in R for f_a but NOT necessarily for
  // f_s. Construct the counterexample: a region where the relative change
  // is huge but the absolute mass tiny.
  data::TransactionDb d1(3);
  data::TransactionDb d2(3);
  // Item 0: 50% vs 55% (small relative change). Item 1: 1% vs 5% in d2
  // only (maximal relative change).
  for (int i = 0; i < 100; ++i) {
    d1.AddTransaction(std::vector<int32_t>{i < 50 ? 0 : 2});
    d2.AddTransaction(std::vector<int32_t>{i < 55 ? 0 : (i < 60 ? 1 : 2)});
  }
  d1.AddTransaction(std::vector<int32_t>{1});  // sup(1, d1) ~ 1%

  lits::LitsModel m1(0.005, d1.num_transactions(), 3);
  m1.Add(lits::Itemset({0}), 50.0 / 101.0);
  m1.Add(lits::Itemset({1}), 1.0 / 101.0);
  lits::LitsModel m2(0.005, d2.num_transactions(), 3);
  m2.Add(lits::Itemset({0}), 0.55);
  m2.Add(lits::Itemset({1}), 0.05);

  DeviationFunction fs_max{ScaledDiff(), AggregateKind::kMax};
  // Focus on {1} alone: the scaled deviation there EXCEEDS the scaled
  // deviation focussed on the larger region {0} — non-monotone ranking
  // relative to region size.
  const double only_0 = LitsDeviationFocused(
      m1, d1, m2, d2, [](const lits::Itemset& x) { return x == lits::Itemset({0}); },
      fs_max);
  const double only_1 = LitsDeviationFocused(
      m1, d1, m2, d2, [](const lits::Itemset& x) { return x == lits::Itemset({1}); },
      fs_max);
  EXPECT_GT(only_1, only_0);
}

}  // namespace
}  // namespace focus::core

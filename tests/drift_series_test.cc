#include <vector>

#include <gtest/gtest.h>

#include "core/drift_series.h"
#include "core/lits_deviation.h"
#include "datagen/quest_gen.h"
#include "itemsets/apriori.h"

namespace focus::core {
namespace {

TEST(DriftSeriesTest, QuietSeriesNeverFlags) {
  CusumOptions options;
  options.warmup = 5;
  std::vector<double> series;
  for (int i = 0; i < 40; ++i) {
    series.push_back(1.0 + 0.01 * ((i * 37) % 10));  // tame wiggle
  }
  const auto points = DetectDrift(series, options);
  for (const DriftPoint& point : points) {
    EXPECT_FALSE(point.change_point);
  }
}

TEST(DriftSeriesTest, StepShiftIsFlaggedOnce) {
  CusumOptions options;
  options.warmup = 5;
  options.decision_threshold = 5.0;
  std::vector<double> series;
  for (int i = 0; i < 10; ++i) series.push_back(1.0 + 0.02 * (i % 5));
  for (int i = 0; i < 10; ++i) series.push_back(2.0 + 0.02 * (i % 5));  // jump
  const auto points = DetectDrift(series, options);
  int first_flag = -1;
  for (size_t i = 0; i < points.size(); ++i) {
    if (points[i].change_point) {
      first_flag = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(first_flag, 10);  // not before the shift
  EXPECT_LE(first_flag, 13);  // within a few observations after it
}

TEST(DriftSeriesTest, SlowRampEventuallyFlags) {
  CusumOptions options;
  options.warmup = 5;
  std::vector<double> series;
  for (int i = 0; i < 5; ++i) series.push_back(1.0 + 0.01 * i);
  for (int i = 0; i < 30; ++i) series.push_back(1.0 + 0.03 * i);  // ramp
  const auto points = DetectDrift(series, options);
  bool flagged = false;
  for (const DriftPoint& point : points) flagged |= point.change_point;
  EXPECT_TRUE(flagged);
}

TEST(DriftSeriesTest, StatisticResetsAfterFlag) {
  CusumOptions options;
  options.warmup = 3;
  options.decision_threshold = 3.0;
  DeviationCusum detector(options);
  for (double v : {1.0, 1.02, 0.98}) detector.Observe(v);
  ASSERT_TRUE(detector.baseline_ready());
  // Push a massive outlier: flags, then the statistic starts from 0.
  const DriftPoint flagged = detector.Observe(10.0);
  EXPECT_TRUE(flagged.change_point);
  const DriftPoint next = detector.Observe(1.0);
  EXPECT_FALSE(next.change_point);
  EXPECT_DOUBLE_EQ(next.cusum, 0.0);
}

TEST(DriftSeriesTest, ConstantWarmupHandled) {
  CusumOptions options;
  options.warmup = 4;
  DeviationCusum detector(options);
  for (int i = 0; i < 4; ++i) detector.Observe(2.0);
  EXPECT_TRUE(detector.baseline_ready());
  EXPECT_GT(detector.baseline_sd(), 0.0);
  // A clear jump is still caught.
  bool flagged = false;
  for (int i = 0; i < 10; ++i) flagged |= detector.Observe(4.0).change_point;
  EXPECT_TRUE(flagged);
}

TEST(DriftSeriesTest, EndToEndOverLitsDeviations) {
  // Deviation-vs-reference per weekly snapshot; drift begins at week 10.
  lits::AprioriOptions apriori;
  apriori.min_support = 0.03;
  auto make_week = [&](uint64_t week, bool drifted) {
    datagen::QuestParams params;
    params.num_transactions = 700;
    params.num_items = 80;
    params.num_patterns = 25;
    params.avg_pattern_length = drifted ? 6 : 3;
    params.avg_transaction_length = 8;
    params.pattern_seed = drifted ? 5 : 4;
    params.seed = 100 + week;
    return datagen::GenerateQuest(params);
  };
  const data::TransactionDb reference = make_week(0, false);
  const lits::LitsModel reference_model = lits::Apriori(reference, apriori);

  std::vector<double> deviations;
  for (uint64_t week = 1; week <= 16; ++week) {
    const data::TransactionDb snapshot = make_week(week, week >= 10);
    const lits::LitsModel model = lits::Apriori(snapshot, apriori);
    deviations.push_back(core::LitsDeviation(reference_model, reference,
                                             model, snapshot,
                                             DeviationFunction{}));
  }
  CusumOptions options;
  options.warmup = 5;
  const auto points = DetectDrift(deviations, options);
  int first_flag = -1;
  for (size_t i = 0; i < points.size(); ++i) {
    if (points[i].change_point) {
      first_flag = static_cast<int>(i);
      break;
    }
  }
  // Weeks are 1-based in generation, 0-based here; drift starts at index 9.
  ASSERT_GE(first_flag, 9);
  EXPECT_LE(first_flag, 11);
}

}  // namespace
}  // namespace focus::core

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/focus_region.h"
#include "core/query_estimator.h"
#include "datagen/class_gen.h"
#include "datagen/quest_gen.h"
#include "itemsets/apriori.h"
#include "tree/cart_builder.h"

namespace focus::core {
namespace {

using datagen::ClassGenColumns;

double ExactSelectivity(const data::Dataset& dataset, const data::Box& query) {
  int64_t matching = 0;
  for (int64_t i = 0; i < dataset.num_rows(); ++i) {
    if (query.Contains(dataset.schema(), dataset.Row(i))) ++matching;
  }
  return static_cast<double>(matching) / static_cast<double>(dataset.num_rows());
}

class DtEstimatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::ClassGenParams params;
    params.num_rows = 20000;
    params.function = datagen::ClassFunction::kF2;
    params.seed = 3;
    dataset_ = datagen::GenerateClassification(params);
    dt::CartOptions cart;
    cart.max_depth = 8;
    cart.min_leaf_size = 100;
    model_ = std::make_unique<DtModel>(dt::BuildCart(dataset_, cart), dataset_);
    estimator_ = std::make_unique<DtSelectivityEstimator>(*model_);
  }

  data::Dataset dataset_;
  std::unique_ptr<DtModel> model_;
  std::unique_ptr<DtSelectivityEstimator> estimator_;
};

TEST_F(DtEstimatorTest, FullSpaceIsOne) {
  const data::Box everything = data::Box::Full(dataset_.schema());
  EXPECT_NEAR(estimator_->EstimateSelectivity(everything), 1.0, 1e-9);
}

TEST_F(DtEstimatorTest, EmptyQueryIsZero) {
  data::Box impossible = data::Box::Full(dataset_.schema());
  impossible.ClampNumeric(ClassGenColumns::kAge, 300.0, 400.0);
  EXPECT_NEAR(estimator_->EstimateSelectivity(impossible), 0.0, 1e-9);
}

TEST_F(DtEstimatorTest, UniformAttributeEstimatesWell) {
  // Age is uniform on [20, 80]: a [30, 50) band holds 1/3 of the data.
  const data::Box band =
      NumericPredicate(dataset_.schema(), ClassGenColumns::kAge, 30.0, 50.0);
  const double estimate = estimator_->EstimateSelectivity(band);
  const double exact = ExactSelectivity(dataset_, band);
  EXPECT_NEAR(estimate, exact, 0.03);
  EXPECT_NEAR(exact, 1.0 / 3.0, 0.02);
}

TEST_F(DtEstimatorTest, ConjunctiveQueryReasonable) {
  data::Box query =
      NumericPredicate(dataset_.schema(), ClassGenColumns::kAge, 25.0, 45.0);
  query = query.Intersect(NumericPredicate(
      dataset_.schema(), ClassGenColumns::kSalary, 40000.0, 90000.0));
  const double estimate = estimator_->EstimateSelectivity(query);
  const double exact = ExactSelectivity(dataset_, query);
  EXPECT_NEAR(estimate, exact, 0.05);
}

TEST_F(DtEstimatorTest, CategoricalQuery) {
  const data::Box query = CategoryPredicate(
      dataset_.schema(), ClassGenColumns::kElevel, {0, 1});
  const double estimate = estimator_->EstimateSelectivity(query);
  const double exact = ExactSelectivity(dataset_, query);  // ~0.4
  EXPECT_NEAR(estimate, exact, 0.05);
}

TEST_F(DtEstimatorTest, ClassSelectivitiesSumToTotal) {
  const data::Box band =
      NumericPredicate(dataset_.schema(), ClassGenColumns::kAge, 35.0, 55.0);
  const double total = estimator_->EstimateSelectivity(band);
  const double by_class = estimator_->EstimateClassSelectivity(band, 0) +
                          estimator_->EstimateClassSelectivity(band, 1);
  EXPECT_NEAR(total, by_class, 1e-9);
}

TEST_F(DtEstimatorTest, ClassAwareEstimateUsesTreeStructure) {
  // F2 ties class to (age, salary); the tree carves those regions, so a
  // class-0 estimate inside a class-0-dominant region should be high.
  const data::Box young_midsalary = NumericPredicate(dataset_.schema(),
                                                     ClassGenColumns::kAge,
                                                     20.0, 40.0)
      .Intersect(NumericPredicate(dataset_.schema(), ClassGenColumns::kSalary,
                                  55000.0, 95000.0));
  // Group A (class 0) iff salary in [50K, 100K] for age < 40.
  const double class0 =
      estimator_->EstimateClassSelectivity(young_midsalary, 0);
  const double class1 =
      estimator_->EstimateClassSelectivity(young_midsalary, 1);
  EXPECT_GT(class0, 5.0 * class1);
}

TEST_F(DtEstimatorTest, CountScalesWithRows) {
  const data::Box band =
      NumericPredicate(dataset_.schema(), ClassGenColumns::kAge, 30.0, 50.0);
  const double selectivity = estimator_->EstimateSelectivity(band);
  EXPECT_NEAR(estimator_->EstimateCount(band, 3000), selectivity * 3000.0,
              1e-9);
}

// ---- lits support bounds ----

TEST(LitsSupportBoundTest, ExactForStoredItemsets) {
  lits::LitsModel model(0.1, 100, 5);
  model.Add(lits::Itemset({0}), 0.6);
  model.Add(lits::Itemset({1}), 0.5);
  model.Add(lits::Itemset({0, 1}), 0.3);
  EXPECT_DOUBLE_EQ(EstimateSupportUpperBound(model, lits::Itemset({0, 1})),
                   0.3);
}

TEST(LitsSupportBoundTest, SubsetBoundForMissingItemsets) {
  lits::LitsModel model(0.1, 100, 5);
  model.Add(lits::Itemset({0}), 0.6);
  model.Add(lits::Itemset({1}), 0.5);
  model.Add(lits::Itemset({2}), 0.4);
  model.Add(lits::Itemset({0, 1}), 0.3);
  // {0,1,2} missing: bounded by min(stored subsets, minsup) = 0.1.
  EXPECT_DOUBLE_EQ(EstimateSupportUpperBound(model, lits::Itemset({0, 1, 2})),
                   0.1);
}

TEST(LitsSupportBoundTest, InfrequentItemCapsAtMinSupport) {
  lits::LitsModel model(0.05, 100, 5);
  model.Add(lits::Itemset({0}), 0.6);
  // Item 4 not frequent: any superset is below the threshold.
  EXPECT_DOUBLE_EQ(EstimateSupportUpperBound(model, lits::Itemset({0, 4})),
                   0.05);
}

TEST(LitsSupportBoundTest, EmptyItemsetIsOne) {
  lits::LitsModel model(0.1, 100, 5);
  EXPECT_DOUBLE_EQ(EstimateSupportUpperBound(model, lits::Itemset{}), 1.0);
}

TEST(LitsSupportBoundTest, BoundHoldsOnRealData) {
  datagen::QuestParams params;
  params.num_transactions = 1000;
  params.num_items = 40;
  params.num_patterns = 10;
  params.avg_pattern_length = 4;
  params.seed = 3;
  const data::TransactionDb db = datagen::GenerateQuest(params);
  lits::AprioriOptions options;
  options.min_support = 0.05;
  const lits::LitsModel model = lits::Apriori(db, options);

  // For a sample of itemsets, the estimated bound must dominate the true
  // support.
  const double n = static_cast<double>(db.num_transactions());
  for (int32_t a = 0; a < 10; ++a) {
    for (int32_t b = a + 1; b < 10; ++b) {
      const lits::Itemset candidate({a, b, a + 20});
      int64_t count = 0;
      for (int64_t t = 0; t < db.num_transactions(); ++t) {
        if (candidate.IsSubsetOfSorted(db.Transaction(t))) ++count;
      }
      const double truth = static_cast<double>(count) / n;
      EXPECT_LE(truth, EstimateSupportUpperBound(model, candidate) + 1e-12);
    }
  }
}

}  // namespace
}  // namespace focus::core

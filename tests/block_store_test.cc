// Unit tests for the block file substrate (data/block_store.h) and the
// out-of-core transaction container (data/block_txn_db.h): varint and CRC
// codec laws, writer/reader round trips, hostile-input rejection at Open,
// the save -> load -> save byte fixed point, block directory lookups,
// cache eviction vs. pinning, and read-ahead shutdown races.

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "data/block_store.h"
#include "data/block_txn_db.h"
#include "data/transaction_db.h"
#include "datagen/quest_gen.h"
#include "io/data_io.h"

namespace focus::data {
namespace {

TransactionDb MakeDb(int64_t num_transactions, int32_t num_items,
                     uint64_t seed) {
  datagen::QuestParams params;
  params.num_transactions = num_transactions;
  params.num_items = num_items;
  params.avg_transaction_length = 8;
  params.num_patterns = 50;
  params.avg_pattern_length = 3;
  params.seed = seed;
  return datagen::GenerateQuest(params);
}

std::string WriteBlockBytes(const TransactionDb& db, int64_t block_size) {
  std::ostringstream out;
  BlockTransactionDbWriter writer(out, db.num_items(), block_size);
  for (int64_t t = 0; t < db.num_transactions(); ++t) {
    writer.Add(db.Transaction(t));
  }
  writer.Finish();
  return std::move(out).str();
}

std::unique_ptr<BlockTransactionDb> OpenBytes(std::string bytes,
                                              const BlockStoreOptions& options,
                                              std::string* error) {
  return BlockTransactionDb::Open(
      std::make_unique<std::istringstream>(std::move(bytes)), options, error);
}

std::vector<std::vector<int32_t>> AllTransactions(
    const BlockTransactionDb& db) {
  std::vector<std::vector<int32_t>> out(
      static_cast<size_t>(db.num_transactions()));
  db.ForEachTransaction([&](int64_t txn, std::span<const int32_t> items) {
    out[static_cast<size_t>(txn)].assign(items.begin(), items.end());
  });
  return out;
}

void ExpectSameTransactions(const TransactionDb& expected,
                            const BlockTransactionDb& actual) {
  ASSERT_EQ(expected.num_items(), actual.num_items());
  ASSERT_EQ(expected.num_transactions(), actual.num_transactions());
  const std::vector<std::vector<int32_t>> got = AllTransactions(actual);
  for (int64_t t = 0; t < expected.num_transactions(); ++t) {
    const std::span<const int32_t> want = expected.Transaction(t);
    ASSERT_EQ(std::vector<int32_t>(want.begin(), want.end()),
              got[static_cast<size_t>(t)])
        << "transaction " << t;
  }
}

TEST(Varint, RoundTripsEveryWidth) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             0xFFFFFFFFu,
                             uint64_t{1} << 56,
                             ~uint64_t{0}};
  for (const uint64_t value : values) {
    std::string bytes;
    AppendVarint(bytes, value);
    size_t pos = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(ReadVarint(bytes, &pos, &decoded)) << value;
    EXPECT_EQ(decoded, value);
    EXPECT_EQ(pos, bytes.size()) << value;
  }
}

TEST(Varint, RejectsNonMinimalTruncatedAndOverlong) {
  size_t pos = 0;
  uint64_t value = 0;
  // 0 encoded in two bytes: final group is zero -> non-minimal.
  EXPECT_FALSE(ReadVarint(std::string("\x80\x00", 2), &pos, &value));
  // 1 encoded in two bytes.
  pos = 0;
  EXPECT_FALSE(ReadVarint(std::string("\x81\x00", 2), &pos, &value));
  // Truncated continuation.
  pos = 0;
  EXPECT_FALSE(ReadVarint(std::string("\x80", 1), &pos, &value));
  pos = 0;
  EXPECT_FALSE(ReadVarint(std::string(), &pos, &value));
  // Eleven continuation bytes overflow uint64.
  pos = 0;
  EXPECT_FALSE(ReadVarint(std::string(11, '\x80'), &pos, &value));
}

TEST(Crc32, SeedChainsIncrementalComputation) {
  const std::string a = "The quick brown fox ";
  const std::string b = "jumps over the lazy dog";
  const std::string ab = a + b;
  EXPECT_EQ(Crc32(ab.data(), ab.size()),
            Crc32(b.data(), b.size(), Crc32(a.data(), a.size())));
  // Known IEEE vector.
  const std::string check = "123456789";
  EXPECT_EQ(Crc32(check.data(), check.size()), 0xCBF43926u);
}

TEST(BlockFile, WriterReaderRoundTripPreservesStructure) {
  const std::vector<std::string> payloads = {"alpha", "bb",
                                             std::string(1000, 'x')};
  const std::vector<uint64_t> metas = {3, 0, ~uint64_t{0}};
  std::ostringstream out;
  BlockFileWriter writer(out, kBlockKindScratch);
  for (size_t i = 0; i < payloads.size(); ++i) {
    writer.AppendBlock(payloads[i], metas[i]);
  }
  const std::vector<uint64_t> file_meta = {7, 9, 11};
  writer.Finish(file_meta);
  EXPECT_EQ(writer.num_blocks(), 3);

  std::string error;
  auto reader = BlockFileReader::Open(
      std::make_unique<std::istringstream>(std::move(out).str()),
      kBlockKindScratch, &error);
  ASSERT_NE(reader, nullptr) << error;
  EXPECT_EQ(reader->kind(), kBlockKindScratch);
  ASSERT_EQ(reader->num_blocks(), 3);
  ASSERT_EQ(reader->file_meta().size(), file_meta.size());
  for (size_t i = 0; i < file_meta.size(); ++i) {
    EXPECT_EQ(reader->file_meta()[i], file_meta[i]);
  }
  int64_t total = 0;
  for (int64_t b = 0; b < 3; ++b) {
    EXPECT_EQ(reader->block_meta(b), metas[static_cast<size_t>(b)]);
    EXPECT_EQ(reader->block_size_bytes(b),
              static_cast<int64_t>(payloads[static_cast<size_t>(b)].size()));
    std::string payload;
    ASSERT_TRUE(reader->ReadBlock(b, &payload, &error)) << error;
    EXPECT_EQ(payload, payloads[static_cast<size_t>(b)]);
    total += static_cast<int64_t>(payload.size());
  }
  EXPECT_EQ(reader->total_payload_bytes(), total);
}

TEST(BlockFile, WrongKindIsRejected) {
  std::ostringstream out;
  BlockFileWriter writer(out, kBlockKindScratch);
  writer.AppendBlock("payload", 0);
  writer.Finish({});
  std::string error;
  auto reader = BlockFileReader::Open(
      std::make_unique<std::istringstream>(std::move(out).str()),
      kBlockKindTransactions, &error);
  EXPECT_EQ(reader, nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(BlockFile, HostileImagesFailCleanly) {
  const TransactionDb db = MakeDb(200, 60, 7);
  const std::string good = WriteBlockBytes(db, 512);
  std::string error;
  ASSERT_NE(OpenBytes(good, {}, &error), nullptr) << error;

  // Garbage magic.
  std::string bad = good;
  bad[0] ^= 0x5A;
  error.clear();
  EXPECT_EQ(OpenBytes(bad, {}, &error), nullptr);
  EXPECT_FALSE(error.empty());

  // A flipped payload byte (offset 20 is inside the first payload block,
  // which starts right after the 16-byte file header).
  bad = good;
  bad[20] ^= 0x01;
  error.clear();
  EXPECT_EQ(OpenBytes(bad, {}, &error), nullptr);
  EXPECT_FALSE(error.empty());

  // Truncations at every region: mid-payload, mid-directory, mid-footer.
  for (const size_t keep :
       {size_t{0}, size_t{8}, size_t{40}, good.size() - 20, good.size() - 1}) {
    error.clear();
    EXPECT_EQ(OpenBytes(good.substr(0, keep), {}, &error), nullptr)
        << "keep=" << keep;
    EXPECT_FALSE(error.empty()) << "keep=" << keep;
  }

  // Trailing junk breaks the byte-exact length check.
  error.clear();
  EXPECT_EQ(OpenBytes(good + "x", {}, &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(BlockTxnDb, RoundTripMatchesInMemoryAcrossBlockSizes) {
  const TransactionDb db = MakeDb(500, 80, 11);
  for (const int64_t block_size : {int64_t{256}, int64_t{4096}, int64_t{1}
                                                                    << 20}) {
    std::string error;
    auto block_db = OpenBytes(WriteBlockBytes(db, block_size), {}, &error);
    ASSERT_NE(block_db, nullptr) << error;
    if (block_size == 256) EXPECT_GT(block_db->num_blocks(), 1);
    ExpectSameTransactions(db, *block_db);
  }
}

TEST(BlockTxnDb, DirectoryLookupsAreConsistent) {
  const TransactionDb db = MakeDb(400, 60, 13);
  std::string error;
  auto block_db = OpenBytes(WriteBlockBytes(db, 512), {}, &error);
  ASSERT_NE(block_db, nullptr) << error;
  ASSERT_GT(block_db->num_blocks(), 2);

  EXPECT_EQ(block_db->BlockFirstTransaction(0), 0);
  int64_t covered = 0;
  for (int64_t b = 0; b < block_db->num_blocks(); ++b) {
    EXPECT_EQ(block_db->BlockFirstTransaction(b), covered);
    const int64_t n = block_db->BlockNumTransactions(b);
    EXPECT_GT(n, 0);
    EXPECT_EQ(n, block_db->Block(b)->num_transactions());
    covered += n;
  }
  EXPECT_EQ(covered, block_db->num_transactions());
  for (int64_t t = 0; t < block_db->num_transactions(); ++t) {
    const int64_t b = block_db->BlockContaining(t);
    EXPECT_LE(block_db->BlockFirstTransaction(b), t);
    EXPECT_LT(t,
              block_db->BlockFirstTransaction(b) +
                  block_db->BlockNumTransactions(b));
  }
}

TEST(BlockTxnDb, SaveLoadSaveIsByteFixedPoint) {
  const TransactionDb db = MakeDb(300, 50, 17);
  for (const int64_t block_size : {int64_t{256}, int64_t{1} << 20}) {
    const std::string bytes = WriteBlockBytes(db, block_size);
    std::string error;
    auto block_db = OpenBytes(bytes, {}, &error);
    ASSERT_NE(block_db, nullptr) << error;
    std::ostringstream resaved;
    block_db->SaveTo(resaved);
    EXPECT_EQ(std::move(resaved).str(), bytes) << "block_size=" << block_size;
  }
}

TEST(BlockTxnDb, OversizedTransactionGetsItsOwnBlock) {
  TransactionDb db(2000);
  std::vector<int32_t> huge;
  for (int32_t i = 0; i < 1500; ++i) huge.push_back(i);
  const std::vector<int32_t> small = {1, 2, 3};
  const std::vector<int32_t> tail = {7, 9};
  db.AddTransaction(small);
  db.AddTransaction(huge);
  db.AddTransaction(tail);

  const std::string bytes = WriteBlockBytes(db, 64);
  std::string error;
  auto block_db = OpenBytes(bytes, {}, &error);
  ASSERT_NE(block_db, nullptr) << error;
  ExpectSameTransactions(db, *block_db);

  const int64_t huge_block = block_db->BlockContaining(1);
  EXPECT_EQ(block_db->BlockNumTransactions(huge_block), 1);

  std::ostringstream resaved;
  block_db->SaveTo(resaved);
  EXPECT_EQ(std::move(resaved).str(), bytes);
}

TEST(BlockTxnDb, EmptyDatabaseRoundTrips) {
  const TransactionDb db(42);
  const std::string bytes = WriteBlockBytes(db, 512);
  std::string error;
  auto block_db = OpenBytes(bytes, {}, &error);
  ASSERT_NE(block_db, nullptr) << error;
  EXPECT_EQ(block_db->num_items(), 42);
  EXPECT_EQ(block_db->num_transactions(), 0);
  EXPECT_EQ(block_db->num_blocks(), 0);
  std::ostringstream resaved;
  block_db->SaveTo(resaved);
  EXPECT_EQ(std::move(resaved).str(), bytes);
}

TEST(BlockTxnDb, WriterSortsDedupesLikeTransactionDb) {
  std::ostringstream out;
  BlockTransactionDbWriter writer(out, 100);
  const std::vector<int32_t> messy = {5, 1, 5, 3, 1};
  writer.Add(messy);
  writer.Finish();
  std::string error;
  auto block_db = OpenBytes(std::move(out).str(), {}, &error);
  ASSERT_NE(block_db, nullptr) << error;
  const std::vector<std::vector<int32_t>> got = AllTransactions(*block_db);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (std::vector<int32_t>{1, 3, 5}));
}

TEST(BlockTxnDb, CacheEvictsUnderBudgetButPinsStayValid) {
  const TransactionDb db = MakeDb(600, 60, 19);
  BlockStoreOptions options;
  options.cache_budget_bytes = 1;  // every Put evicts the previous block
  std::string error;
  auto block_db = OpenBytes(WriteBlockBytes(db, 256), options, &error);
  ASSERT_NE(block_db, nullptr) << error;
  ASSERT_GT(block_db->num_blocks(), 4);

  // Pin every block while the cache churns underneath.
  std::vector<std::shared_ptr<const TransactionDb>> pins;
  for (int64_t b = 0; b < block_db->num_blocks(); ++b) {
    pins.push_back(block_db->Block(b));
  }
  EXPECT_GT(block_db->cache_evictions(), 0);

  // Evicted blocks stay readable through their pins, and re-reads decode
  // fresh copies that agree with the pinned ones.
  for (int64_t b = 0; b < block_db->num_blocks(); ++b) {
    const auto& pinned = *pins[static_cast<size_t>(b)];
    const auto reread = block_db->Block(b);
    ASSERT_EQ(pinned.num_transactions(), reread->num_transactions());
    for (int64_t t = 0; t < pinned.num_transactions(); ++t) {
      const std::span<const int32_t> a = pinned.Transaction(t);
      const std::span<const int32_t> c = reread->Transaction(t);
      ASSERT_EQ(std::vector<int32_t>(a.begin(), a.end()),
                std::vector<int32_t>(c.begin(), c.end()));
    }
  }
  EXPECT_GT(block_db->cache_misses(), block_db->num_blocks());
}

TEST(BlockTxnDb, GenerousBudgetCachesEveryBlock) {
  const TransactionDb db = MakeDb(400, 60, 23);
  std::string error;
  auto block_db = OpenBytes(WriteBlockBytes(db, 512), {}, &error);
  ASSERT_NE(block_db, nullptr) << error;
  for (int pass = 0; pass < 3; ++pass) {
    block_db->ForEachBlock([](int64_t, const TransactionDb&) {});
  }
  EXPECT_EQ(block_db->cache_evictions(), 0);
  EXPECT_GT(block_db->cache_hits(), 0);
  // Passes after the first hit the cache for every block.
  EXPECT_EQ(block_db->cache_misses(), block_db->num_blocks());
}

TEST(BlockTxnDb, PrefetchShutdownRaceIsClean) {
  const TransactionDb db = MakeDb(800, 60, 29);
  const std::string bytes = WriteBlockBytes(db, 256);
  common::ThreadPool pool(4);
  BlockStoreOptions options;
  options.pool = &pool;
  options.readahead_blocks = 4;
  options.cache_budget_bytes = 1 << 12;  // churn during the race
  for (int iter = 0; iter < 25; ++iter) {
    std::string error;
    auto block_db = OpenBytes(bytes, options, &error);
    ASSERT_NE(block_db, nullptr) << error;
    for (int64_t b = 0; b < block_db->num_blocks(); ++b) {
      block_db->Prefetch(b);
    }
    // Destructor must drain in-flight decodes before the file goes away.
  }
}

TEST(BlockTxnDb, ReadAheadScanMatchesSerialScan) {
  const TransactionDb db = MakeDb(700, 60, 31);
  const std::string bytes = WriteBlockBytes(db, 256);
  common::ThreadPool pool(4);
  BlockStoreOptions options;
  options.pool = &pool;
  options.readahead_blocks = 3;
  std::string error;
  auto block_db = OpenBytes(bytes, options, &error);
  ASSERT_NE(block_db, nullptr) << error;
  ExpectSameTransactions(db, *block_db);
}

TEST(BlockTxnDb, ConvertTextSpoolMatchesLoader) {
  const TransactionDb db = MakeDb(250, 50, 37);
  std::ostringstream text;
  io::SaveTransactionDb(db, text);
  const std::string snapshot = std::move(text).str();

  std::istringstream in(snapshot);
  std::ostringstream blocks;
  std::string error;
  ASSERT_TRUE(io::ConvertTransactionTextToBlocks(in, blocks, 512, &error))
      << error;
  auto block_db = OpenBytes(std::move(blocks).str(), {}, &error);
  ASSERT_NE(block_db, nullptr) << error;
  ExpectSameTransactions(db, *block_db);

  // Malformed text is rejected by BOTH paths (equally strict validation).
  const std::string corrupt = snapshot + "not a transaction line\n";
  std::istringstream corrupt_text(corrupt);
  EXPECT_FALSE(io::LoadTransactionDb(corrupt_text, &error).has_value());
  std::istringstream corrupt_again(corrupt);
  std::ostringstream discard;
  error.clear();
  EXPECT_FALSE(
      io::ConvertTransactionTextToBlocks(corrupt_again, discard, 512, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace focus::data

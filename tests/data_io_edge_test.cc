// Malformed-input edge cases for the text loaders. The monitoring daemon
// feeds untrusted spool files through LoadTransactionDb, so every bad
// input must come back std::nullopt — never a crash, never a silently
// truncated/padded result.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "data/dataset.h"
#include "data/transaction_db.h"
#include "io/data_io.h"

namespace focus::io {
namespace {

std::optional<data::TransactionDb> LoadTxns(const std::string& text) {
  std::istringstream in(text);
  return LoadTransactionDb(in);
}

std::optional<data::Dataset> LoadData(const std::string& text) {
  std::istringstream in(text);
  return LoadDataset(in);
}

std::string SaveTxns(const data::TransactionDb& db) {
  std::ostringstream out;
  SaveTransactionDb(db, out);
  return out.str();
}

data::TransactionDb TinyDb() {
  data::TransactionDb db(5);
  db.AddTransaction(std::vector<int32_t>{0, 2});
  db.AddTransaction(std::vector<int32_t>{1, 3, 4});
  db.AddTransaction(std::vector<int32_t>{});
  return db;
}

TEST(DataIoEdgeTest, TransactionRoundTripStillWorks) {
  const auto loaded = LoadTxns(SaveTxns(TinyDb()));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_items(), 5);
  EXPECT_EQ(loaded->num_transactions(), 3);
  EXPECT_EQ(loaded->Transaction(1).size(), 3u);
}

TEST(DataIoEdgeTest, TransactionEmptyInputRejected) {
  EXPECT_FALSE(LoadTxns("").has_value());
}

TEST(DataIoEdgeTest, TransactionWrongMagicRejected) {
  EXPECT_FALSE(LoadTxns("focus-data-v1\n5 1\n0\n").has_value());
  EXPECT_FALSE(LoadTxns("garbage\n5 1\n0\n").has_value());
}

TEST(DataIoEdgeTest, TransactionTruncatedHeaderRejected) {
  // Magic but no counts line.
  EXPECT_FALSE(LoadTxns("focus-txns-v1\n").has_value());
  // Counts line missing the transaction count.
  EXPECT_FALSE(LoadTxns("focus-txns-v1\n5\n").has_value());
}

TEST(DataIoEdgeTest, TransactionNonPositiveItemCountRejected) {
  EXPECT_FALSE(LoadTxns("focus-txns-v1\n0 1\n\n").has_value());
  EXPECT_FALSE(LoadTxns("focus-txns-v1\n-5 1\n0\n").has_value());
}

TEST(DataIoEdgeTest, TransactionNegativeTransactionCountRejected) {
  EXPECT_FALSE(LoadTxns("focus-txns-v1\n5 -1\n").has_value());
}

TEST(DataIoEdgeTest, TransactionOverflowingCountRejected) {
  // 2^40 overflows the int32 item count; extraction sets failbit.
  EXPECT_FALSE(LoadTxns("focus-txns-v1\n1099511627776 1\n0\n").has_value());
  EXPECT_FALSE(
      LoadTxns("focus-txns-v1\n5 99999999999999999999999999\n").has_value());
}

TEST(DataIoEdgeTest, TransactionHeaderTrailingGarbageRejected) {
  EXPECT_FALSE(LoadTxns("focus-txns-v1\n5 1 surprise\n0\n").has_value());
}

TEST(DataIoEdgeTest, TransactionFewerLinesThanDeclaredRejected) {
  EXPECT_FALSE(LoadTxns("focus-txns-v1\n5 3\n0 2\n1 3\n").has_value());
}

TEST(DataIoEdgeTest, TransactionItemIdOutOfRangeRejected) {
  // Item id == num_items.
  EXPECT_FALSE(LoadTxns("focus-txns-v1\n5 1\n0 5\n").has_value());
  // Negative item id.
  EXPECT_FALSE(LoadTxns("focus-txns-v1\n5 1\n-1\n").has_value());
}

TEST(DataIoEdgeTest, TransactionNonNumericItemRejected) {
  EXPECT_FALSE(LoadTxns("focus-txns-v1\n5 2\n0 two\n1\n").has_value());
}

TEST(DataIoEdgeTest, TransactionTrailingGarbageAfterPayloadRejected) {
  std::string good = SaveTxns(TinyDb());
  ASSERT_TRUE(LoadTxns(good).has_value());
  EXPECT_FALSE(LoadTxns(good + "4\n").has_value());       // extra transaction
  EXPECT_FALSE(LoadTxns(good + "garbage\n").has_value());  // extra junk
  // Trailing whitespace/newlines remain acceptable.
  EXPECT_TRUE(LoadTxns(good + "\n  \n").has_value());
}

data::Dataset TinyDataset() {
  const data::Schema schema(
      {data::Schema::Numeric("x", 0.0, 1.0), data::Schema::Numeric("y", 0.0, 1.0)},
      /*num_classes=*/2);
  data::Dataset dataset(schema);
  dataset.AddRow(std::vector<double>{0.25, 0.5}, 0);
  dataset.AddRow(std::vector<double>{0.75, 0.1}, 1);
  return dataset;
}

std::string SaveData(const data::Dataset& dataset) {
  std::ostringstream out;
  SaveDataset(dataset, out);
  return out.str();
}

TEST(DataIoEdgeTest, DatasetRoundTripStillWorks) {
  const auto loaded = LoadData(SaveData(TinyDataset()));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_rows(), 2);
  EXPECT_EQ(loaded->Label(1), 1);
}

TEST(DataIoEdgeTest, DatasetEmptyAndWrongMagicRejected) {
  EXPECT_FALSE(LoadData("").has_value());
  EXPECT_FALSE(LoadData("focus-txns-v1\n").has_value());
}

TEST(DataIoEdgeTest, DatasetTruncatedAfterSchemaRejected) {
  std::string good = SaveData(TinyDataset());
  // Chop off the last row and the loader must notice the short payload.
  const size_t cut = good.rfind('\n', good.size() - 2);
  EXPECT_FALSE(LoadData(good.substr(0, cut + 1)).has_value());
}

TEST(DataIoEdgeTest, DatasetNegativeRowCountRejected) {
  std::string good = SaveData(TinyDataset());
  const size_t pos = good.find("\n2\n");
  ASSERT_NE(pos, std::string::npos);
  std::string bad = good.substr(0, pos) + "\n-2\n" + good.substr(pos + 3);
  EXPECT_FALSE(LoadData(bad).has_value());
}

TEST(DataIoEdgeTest, DatasetRowCountTrailingGarbageRejected) {
  std::string good = SaveData(TinyDataset());
  const size_t pos = good.find("\n2\n");
  ASSERT_NE(pos, std::string::npos);
  std::string bad = good.substr(0, pos) + "\n2 rows\n" + good.substr(pos + 3);
  EXPECT_FALSE(LoadData(bad).has_value());
}

TEST(DataIoEdgeTest, DatasetLabelOutOfRangeRejected) {
  std::string good = SaveData(TinyDataset());
  // Labels are 0/1 under num_classes=2; a 7 must reject.
  const size_t pos = good.find("\n1 ");
  ASSERT_NE(pos, std::string::npos);
  std::string bad = good;
  bad.replace(pos + 1, 1, "7");
  EXPECT_FALSE(LoadData(bad).has_value());
}

TEST(DataIoEdgeTest, DatasetNonNumericValueRejected) {
  std::string good = SaveData(TinyDataset());
  const size_t pos = good.find("0.25");
  ASSERT_NE(pos, std::string::npos);
  std::string bad = good;
  bad.replace(pos, 4, "oops");
  EXPECT_FALSE(LoadData(bad).has_value());
}

TEST(DataIoEdgeTest, DatasetExtraColumnsRejected) {
  std::string good = SaveData(TinyDataset());
  const size_t line_start = good.find("\n1 ");
  ASSERT_NE(line_start, std::string::npos);
  const size_t line_end = good.find('\n', line_start + 1);
  std::string bad = good;
  bad.insert(line_end, " 9.9");
  EXPECT_FALSE(LoadData(bad).has_value());
}

TEST(DataIoEdgeTest, DatasetTrailingGarbageAfterPayloadRejected) {
  std::string good = SaveData(TinyDataset());
  EXPECT_FALSE(LoadData(good + "0 0.1 0.2\n").has_value());
  EXPECT_TRUE(LoadData(good + "\n\n").has_value());
}

TEST(DataIoEdgeTest, FileLoadersHandleMissingFiles) {
  EXPECT_FALSE(LoadTransactionDbFromFile("/nonexistent/a.txns").has_value());
  EXPECT_FALSE(LoadDatasetFromFile("/nonexistent/a.data").has_value());
}

}  // namespace
}  // namespace focus::io

// Fixture: std::function inside a while-loop body.
#include <cstddef>
#include <functional>

namespace focus::itemsets {

int Sum(const int* data, size_t n) {
  int total = 0;
  size_t i = 0;
  while (i < n) {
    std::function<int(int)> weigh = [](int x) { return x * 2; };
    total += weigh(data[i]);
    ++i;
  }
  return total;
}

}  // namespace focus::itemsets

// Fixture: a decoded length reaches new[] unchecked.
#include <cstdint>

namespace focus::net {

class WireDecoder {
 public:
  bool GetU64(uint64_t* out);
};

char* ReadBlob(WireDecoder& dec) {
  uint64_t len = 0;
  if (!dec.GetU64(&len)) return nullptr;
  return new char[len];
}

}  // namespace focus::net

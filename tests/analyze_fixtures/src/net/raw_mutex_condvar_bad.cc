// Fixture: std::condition_variable outside src/common/ trips raw-mutex.
#include <condition_variable>

namespace focus::net {

class Waiter {
 private:
  std::condition_variable cv_;
};

}  // namespace focus::net

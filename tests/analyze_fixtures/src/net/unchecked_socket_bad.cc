// Fixture: a discarded SetNonBlocking result leaves a blocking fd in an
// event loop.
namespace focus::net {

bool SetNonBlocking(int fd);

void Prepare(int fd) {
  SetNonBlocking(fd);
}

}  // namespace focus::net

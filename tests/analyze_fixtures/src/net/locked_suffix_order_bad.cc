// Fixture: evidence must come BEFORE the call — the first DropLocked()
// runs unguarded, the second is covered by the MutexLock.
#include "common/mutex.h"

namespace focus::net {

class Registry {
 public:
  void Tidy();

 private:
  void DropLocked();
  common::Mutex mu_;
};

void Registry::Tidy() {
  DropLocked();
  common::MutexLock lock(&mu_);
  DropLocked();
}

}  // namespace focus::net

// Fixture: engines initialized through stats::MakeRng are sanctioned.
#include <random>

namespace focus::core {

unsigned long Draw(unsigned seed) {
  std::mt19937_64 rng(stats::MakeRng(seed));
  return rng();
}

}  // namespace focus::core

// Fixture: floating-point fold in hash-iteration order.
#include <unordered_map>

namespace focus::core {

double TotalSupport(const std::unordered_map<int, double>& counts) {
  double total = 0.0;
  for (const auto& [item, support] : counts) {
    total += support;
  }
  return total;
}

}  // namespace focus::core

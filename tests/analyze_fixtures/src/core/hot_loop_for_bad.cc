// Fixture: std::function inside a for-loop body in a scan-kernel dir.
#include <functional>
#include <vector>

namespace focus::core {

int Fold(const std::vector<int>& v) {
  int acc = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    std::function<int(int, int)> step = [](int a, int b) { return a + b; };
    acc = step(acc, v[i]);
  }
  return acc;
}

}  // namespace focus::core

// Fixture: std::shared_mutex outside src/common/ trips raw-mutex.
#include <shared_mutex>

namespace focus::core {

class Table {
 private:
  std::shared_mutex mu_;
};

}  // namespace focus::core

// Fixture: a *Locked() helper calling a sibling *Locked() helper — the
// caller already owns the mutex by its own contract.
namespace focus::core {

class Engine {
 public:
  void RebuildLocked();

 private:
  void EvictLocked();
};

void Engine::RebuildLocked() {
  EvictLocked();
}

}  // namespace focus::core

// Fixture: direct std::mt19937 construction trips naked-mt19937.
#include <random>

namespace focus::core {

int Draw(unsigned seed) {
  std::mt19937 rng(seed);
  return static_cast<int>(rng());
}

}  // namespace focus::core

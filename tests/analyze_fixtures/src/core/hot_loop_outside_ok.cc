// Fixture: std::function built once before the loop is fine — only the
// per-iteration construction defeats inlining.
#include <functional>
#include <vector>

namespace focus::core {

int Apply(const std::vector<int>& v) {
  std::function<int(int)> f = [](int x) { return x; };
  int acc = 0;
  for (int x : v) {
    acc += f(x);
  }
  return acc;
}

}  // namespace focus::core

// Fixture: a *Locked() call through a member object, still unguarded.
namespace focus::core {

class Cache {
 public:
  void RebuildLocked();
};

class Engine {
 public:
  void Refresh();

 private:
  Cache cache_;
};

void Engine::Refresh() {
  cache_.RebuildLocked();
}

}  // namespace focus::core

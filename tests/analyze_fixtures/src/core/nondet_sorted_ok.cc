// Fixture: collect-then-sort is the sanctioned canonicalization — the
// append target appears in a std::sort call, so it is blessed.
#include <algorithm>
#include <unordered_map>
#include <vector>

namespace focus::core {

std::vector<int> SortedKeys(const std::unordered_map<int, double>& counts) {
  std::vector<int> keys;
  for (const auto& [item, support] : counts) {
    keys.push_back(item);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace focus::core

// Fixture: src/common/ is where the wrapper lives — exempt from raw-mutex.
#include <mutex>

namespace focus::common {

class Mutex {
 private:
  std::mutex mu_;
};

}  // namespace focus::common

// Fixture: a discarded Open result through a member call.
#include <string>

namespace focus::shard {

class BlockStore {
 public:
  bool Open(const std::string& path);
  void Warm(const std::string& path);
};

void BlockStore::Warm(const std::string& path) {
  Open(path);
}

}  // namespace focus::shard

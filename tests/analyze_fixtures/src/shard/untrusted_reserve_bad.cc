// Fixture: a ReadLe32 return value reaches reserve() unchecked.
#include <cstdint>
#include <vector>

namespace focus::shard {

uint32_t ReadLe32(const uint8_t* p);

void Grow(const uint8_t* p, std::vector<uint8_t>* buf) {
  uint32_t n = ReadLe32(p);
  buf->reserve(n);
}

}  // namespace focus::shard

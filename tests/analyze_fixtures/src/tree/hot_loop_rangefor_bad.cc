// Fixture: std::function inside a range-for body.
#include <functional>
#include <vector>

namespace focus::tree {

int Walk(const std::vector<int>& nodes) {
  int total = 0;
  for (int node : nodes) {
    std::function<int(int)> weigh = [](int x) { return x + 1; };
    total += weigh(node);
  }
  return total;
}

}  // namespace focus::tree

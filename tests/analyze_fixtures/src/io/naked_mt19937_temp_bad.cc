// Fixture: a temporary engine passed straight to an algorithm.
#include <algorithm>
#include <random>
#include <vector>

namespace focus::io {

void Scramble(std::vector<int>* v, unsigned seed) {
  std::shuffle(v->begin(), v->end(), std::mt19937(seed));
}

}  // namespace focus::io

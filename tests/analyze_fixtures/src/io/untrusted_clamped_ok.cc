// Fixture: std::min in the sink's own argument list bounds the request.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace focus::io {

class PayloadReader {
 public:
  bool GetU32(uint32_t* out);
};

constexpr size_t kMaxCount = 1u << 20;

bool ReadList(PayloadReader& in, std::vector<uint32_t>* out) {
  uint32_t count = 0;
  if (!in.GetU32(&count)) return false;
  out->resize(std::min<size_t>(count, kMaxCount));
  return true;
}

}  // namespace focus::io

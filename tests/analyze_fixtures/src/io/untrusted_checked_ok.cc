// Fixture: the repo's combined decode-and-bound idiom — the relational
// check in the same condition sanitizes the taint.
#include <cstdint>
#include <vector>

namespace focus::io {

class PayloadReader {
 public:
  bool GetU32(uint32_t* out);
};

constexpr uint32_t kMaxCount = 1u << 20;

bool ReadList(PayloadReader& in, std::vector<uint32_t>* out) {
  uint32_t count = 0;
  if (!in.GetU32(&count) || count > kMaxCount) return false;
  out->resize(count);
  return true;
}

}  // namespace focus::io

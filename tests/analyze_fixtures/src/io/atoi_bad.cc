// Fixture: atoi cannot report conversion errors.
#include <cstdlib>

namespace focus::io {

int ParseCount(const char* s) { return atoi(s); }

}  // namespace focus::io

// Fixture: serializing while iterating an unordered container — the byte
// stream follows the hash seed.
#include <cstdint>
#include <unordered_map>

namespace focus::io {

class Writer {
 public:
  void PutU32(uint32_t v);
};

void WriteCounts(Writer& w, const std::unordered_map<uint32_t, uint32_t>& m) {
  for (const auto& [key, value] : m) {
    w.PutU32(key);
  }
}

}  // namespace focus::io

// Fixture: branching on the result consumes it.
#include <string>

namespace focus::io {

class Dataset;
bool SaveDatasetToFile(const Dataset& ds, const std::string& path);

bool Checkpoint(const Dataset& ds, const std::string& path) {
  if (!SaveDatasetToFile(ds, path)) return false;
  return true;
}

}  // namespace focus::io

// Fixture: a decoded out-param count reaches resize() unchecked.
#include <cstdint>
#include <vector>

namespace focus::io {

class PayloadReader {
 public:
  bool GetU32(uint32_t* out);
};

bool ReadList(PayloadReader& in, std::vector<uint32_t>* out) {
  uint32_t count = 0;
  if (!in.GetU32(&count)) return false;
  out->resize(count);
  return true;
}

}  // namespace focus::io

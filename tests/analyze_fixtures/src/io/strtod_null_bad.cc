// Fixture: std::strtod with NULL end pointer accepts trailing garbage.
#include <cstdlib>

namespace focus::io {

double ParseSupport(const char* s) { return std::strtod(s, NULL); }

}  // namespace focus::io

// Fixture: a discarded Save* result silently drops ENOSPC.
#include <string>

namespace focus::io {

class Dataset;
bool SaveDatasetToFile(const Dataset& ds, const std::string& path);

void Checkpoint(const Dataset& ds, const std::string& path) {
  SaveDatasetToFile(ds, path);
}

}  // namespace focus::io

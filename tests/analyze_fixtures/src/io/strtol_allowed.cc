// Fixture: allow() suppresses unchecked-strtol at this site only.
#include <cstdlib>

namespace focus::io {

int ParseTrusted(const char* s) {
  // Input here is produced by our own writer, never external.
  // focus-analyze: allow(unchecked-strtol)
  return atoi(s);
}

}  // namespace focus::io

// Fixture: strtol with a null end pointer accepts trailing garbage.
#include <cstdlib>

namespace focus::io {

long ParseOffset(const char* s) { return strtol(s, nullptr, 10); }

}  // namespace focus::io

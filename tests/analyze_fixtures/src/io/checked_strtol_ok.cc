// Fixture: strtol with a real end pointer that gets checked is the
// sanctioned pattern.
#include <cstdlib>

namespace focus::io {

bool ParseCount(const char* s, long* out) {
  char* end = nullptr;
  *out = strtol(s, &end, 10);
  return end != s && *end == '\0';
}

}  // namespace focus::io

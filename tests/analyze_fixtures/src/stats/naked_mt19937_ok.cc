// Fixture: src/stats/ is MakeRng's home — exempt from naked-mt19937.
#include <random>

namespace focus::stats {

std::mt19937_64 MakeRngFixture(unsigned seed) {
  std::mt19937_64 rng(seed);
  return rng;
}

}  // namespace focus::stats

// Fixture: a MutexLock earlier in the body is lock evidence.
#include "common/mutex.h"

namespace focus::serve {

class Monitor {
 public:
  void Flush();

 private:
  void FlushLocked();
  common::Mutex mu_;
};

void Monitor::Flush() {
  common::MutexLock lock(&mu_);
  FlushLocked();
}

}  // namespace focus::serve

// Fixture: appending to an outer vector in hash-iteration order with no
// canonicalizing sort afterwards.
#include <string>
#include <unordered_set>
#include <vector>

namespace focus::serve {

std::vector<std::string> Names(const std::unordered_set<std::string>& live) {
  std::vector<std::string> out;
  for (const std::string& name : live) {
    out.push_back(name);
  }
  return out;
}

}  // namespace focus::serve

// Fixture: src/serve/ is not a scan-kernel directory — out of scope for
// std-function-in-hot-loop.
#include <functional>
#include <vector>

namespace focus::serve {

int Apply(const std::vector<int>& v) {
  int acc = 0;
  for (int x : v) {
    std::function<int(int)> f = [](int y) { return y; };
    acc += f(x);
  }
  return acc;
}

}  // namespace focus::serve

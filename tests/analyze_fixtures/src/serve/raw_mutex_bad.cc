// Fixture: std::mutex outside src/common/ trips raw-mutex.
#include <mutex>

namespace focus::serve {

class Session {
 private:
  std::mutex mu_;
};

}  // namespace focus::serve

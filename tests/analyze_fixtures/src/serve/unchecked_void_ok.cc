// Fixture: a void Save*(ostream&) serializer has nothing to discard —
// its error state lives in the stream, checked by the *ToFile wrapper.
#include <iosfwd>

namespace focus::serve {

void SaveSummary(std::ostream& out);

void Emit(std::ostream& out) {
  SaveSummary(out);
}

}  // namespace focus::serve

// Fixture: allow() suppresses nondet-iteration at this site only.
#include <string>
#include <unordered_set>
#include <vector>

namespace focus::serve {

std::vector<std::string> Snapshot(const std::unordered_set<std::string>& s) {
  std::vector<std::string> out;
  for (const std::string& name : s) {
    // Order is re-established by the caller before use.
    // focus-analyze: allow(nondet-iteration)
    out.push_back(name);
  }
  return out;
}

}  // namespace focus::serve

// Fixture: a *Locked() helper called with no lock evidence in scope.
namespace focus::serve {

class Monitor {
 public:
  void Flush();

 private:
  void FlushLocked();
};

void Monitor::Flush() {
  FlushLocked();
}

}  // namespace focus::serve

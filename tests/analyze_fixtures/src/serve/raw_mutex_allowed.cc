// Fixture: the legacy focus-lint allow() spelling still suppresses.
#include <mutex>

namespace focus::serve {

class Legacy {
 private:
  // Interop with a vendored API that hands out std::unique_lock.
  // focus-lint: allow(raw-mutex)
  std::mutex vendored_mu_;
};

}  // namespace focus::serve

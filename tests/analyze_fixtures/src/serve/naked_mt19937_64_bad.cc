// Fixture: brace-constructed std::mt19937_64 trips naked-mt19937.
#include <random>

namespace focus::serve {

unsigned long Draw64() {
  std::mt19937_64 rng{7};
  return rng();
}

}  // namespace focus::serve

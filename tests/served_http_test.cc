// End-to-end test of the REAL focus_served binary (compiled path in
// FOCUS_SERVED_PATH): boot it on an ephemeral loopback port, drive the
// HTTP API from this process, then deliver an actual SIGTERM and verify
// the graceful drain — accepted work finishes, the process exits 0.

#include <csignal>
#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/transaction_db.h"
#include "io/data_io.h"
#include "net/http_client.h"

namespace focus {
namespace {

namespace fs = std::filesystem;

data::TransactionDb SmallDb(int32_t num_items, int64_t transactions,
                            int64_t salt = 0) {
  data::TransactionDb db(num_items);
  std::vector<int32_t> items;
  for (int64_t t = 0; t < transactions; ++t) {
    items.clear();
    for (int32_t i = 0; i < num_items; ++i) {
      if ((t + i + salt) % 3 != 0) items.push_back(i);
    }
    db.AddTransaction(items);
  }
  return db;
}

std::string Serialize(const data::TransactionDb& db) {
  std::ostringstream out;
  io::SaveTransactionDb(db, out);
  return out.str();
}

class ServedHttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("served_http_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
    reference_path_ = (root_ / "reference.txns").string();
    port_file_ = (root_ / "port.txt").string();
    ASSERT_TRUE(io::SaveTransactionDbToFile(SmallDb(10, 60), reference_path_));
  }

  void TearDown() override {
    if (pid_ > 0) {  // a test failed before the clean shutdown
      kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
    }
    fs::remove_all(root_);
  }

  // Spawns the daemon and waits for --port-file to announce the bound
  // port. Returns false (failing the test) on a boot timeout.
  bool StartDaemon() {
    pid_ = fork();
    if (pid_ == 0) {
      // Child: exec the daemon on an ephemeral port, logs to files.
      const int out = open((root_ / "stdout.txt").c_str(),
                           O_WRONLY | O_CREAT | O_TRUNC, 0644);
      dup2(out, STDOUT_FILENO);
      dup2(out, STDERR_FILENO);
      execl(FOCUS_SERVED_PATH, FOCUS_SERVED_PATH, "--reference",
            reference_path_.c_str(), "--port", "0", "--port-file",
            port_file_.c_str(), "--calibration", "1", "--replicates", "1",
            "--threads", "2", "--queue", "8", static_cast<char*>(nullptr));
      _exit(127);  // exec failed
    }
    for (int i = 0; i < 200; ++i) {
      std::ifstream in(port_file_);
      int port = 0;
      if (in >> port && port > 0) {
        port_ = static_cast<uint16_t>(port);
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    ADD_FAILURE() << "daemon never wrote " << port_file_;
    return false;
  }

  // SIGTERM + waitpid; returns the daemon's exit code (-1 on signal death).
  int TerminateDaemon() {
    kill(pid_, SIGTERM);
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  fs::path root_;
  std::string reference_path_;
  std::string port_file_;
  pid_t pid_ = -1;
  uint16_t port_ = 0;
};

TEST_F(ServedHttpTest, ServesIngestAndDrainsOnSigterm) {
  ASSERT_TRUE(StartDaemon());

  net::HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port_));
  const auto health = client.Get("/healthz");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);
  EXPECT_NE(health->body.find("\"ok\""), std::string::npos);

  // Ingest a few snapshots across two streams, then read state back.
  for (int i = 0; i < 3; ++i) {
    const auto response = client.Post(
        "/v1/streams/alpha/snapshots", Serialize(SmallDb(10, 40, i)),
        "text/plain");
    ASSERT_TRUE(response.has_value());
    ASSERT_EQ(response->status, 202) << response->body;
  }
  ASSERT_EQ(client
                .Post("/v1/streams/beta/snapshots",
                      Serialize(SmallDb(10, 40, 9)), "text/plain")
                ->status,
            202);

  // The deviation endpoint converges once the snapshots are processed.
  bool processed = false;
  for (int i = 0; i < 200 && !processed; ++i) {
    const auto deviation = client.Get("/v1/streams/alpha/deviation");
    ASSERT_TRUE(deviation.has_value());
    ASSERT_EQ(deviation->status, 200);
    processed =
        deviation->body.find("\"processed\":3") != std::string::npos;
    if (!processed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }
  EXPECT_TRUE(processed);

  const auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_NE(metrics->body.find("focus_snapshots_submitted_total 4"),
            std::string::npos)
      << metrics->body;

  // Real SIGTERM: the daemon must drain and exit 0 on its own.
  EXPECT_EQ(TerminateDaemon(), 0);

  // Its stdout records the drain and the final counts.
  std::ifstream log(root_ / "stdout.txt");
  std::stringstream text;
  text << log.rdbuf();
  EXPECT_NE(text.str().find("draining"), std::string::npos) << text.str();
  EXPECT_NE(text.str().find("4 snapshots processed"), std::string::npos)
      << text.str();
}

TEST_F(ServedHttpTest, SigtermFinishesQueuedSnapshotsBeforeExit) {
  ASSERT_TRUE(StartDaemon());
  net::HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port_));

  // Queue several distinct (cache-missing) snapshots and SIGTERM straight
  // away: the drain contract is that everything answered 202 is still
  // processed before exit.
  int accepted = 0;
  for (int i = 0; i < 5; ++i) {
    const auto response = client.Post(
        "/v1/streams/burst/snapshots", Serialize(SmallDb(10, 50, 20 + i)),
        "text/plain");
    ASSERT_TRUE(response.has_value());
    if (response->status == 202) ++accepted;
  }
  ASSERT_GT(accepted, 0);
  EXPECT_EQ(TerminateDaemon(), 0);

  std::ifstream log(root_ / "stdout.txt");
  std::stringstream text;
  text << log.rdbuf();
  EXPECT_NE(text.str().find(std::to_string(accepted) +
                            " snapshots processed"),
            std::string::npos)
      << text.str();
}

}  // namespace
}  // namespace focus

#include "common/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace focus::common {
namespace {

std::optional<Flags> ParseArgs(std::vector<const char*> argv,
                               const std::vector<std::string>& allowed) {
  return Flags::Parse(static_cast<int>(argv.size()),
                      const_cast<char* const*>(argv.data()), 1, allowed);
}

TEST(FlagsTest, ParsesFlagValuePairs) {
  const auto flags = ParseArgs({"tool", "--out", "a.txns", "--seed", "7"},
                               {"out", "seed", "items"});
  ASSERT_TRUE(flags.has_value());
  EXPECT_EQ(flags->Get("out", ""), "a.txns");
  EXPECT_EQ(flags->GetInt("seed", 0), 7);
  EXPECT_EQ(flags->GetInt("items", 123), 123);  // fallback
  EXPECT_TRUE(flags->Has("out"));
  EXPECT_FALSE(flags->Has("items"));
}

TEST(FlagsTest, EmptyCommandLineIsValid) {
  EXPECT_TRUE(ParseArgs({"tool"}, {"out"}).has_value());
}

TEST(FlagsTest, TrailingFlagWithoutValueIsAnError) {
  EXPECT_FALSE(ParseArgs({"tool", "--out", "a.txns", "--seed"},
                         {"out", "seed"})
                   .has_value());
  EXPECT_FALSE(ParseArgs({"tool", "--seed"}, {"seed"}).has_value());
}

TEST(FlagsTest, UnknownFlagIsAnError) {
  EXPECT_FALSE(ParseArgs({"tool", "--typo", "1"}, {"out", "seed"}).has_value());
}

TEST(FlagsTest, NonFlagTokenIsAnError) {
  EXPECT_FALSE(ParseArgs({"tool", "out", "a.txns"}, {"out"}).has_value());
  EXPECT_FALSE(ParseArgs({"tool", "--", "a"}, {"out"}).has_value());
}

TEST(FlagsTest, DuplicateFlagIsAnError) {
  EXPECT_FALSE(
      ParseArgs({"tool", "--seed", "1", "--seed", "2"}, {"seed"}).has_value());
}

TEST(FlagsTest, NumericAccessors) {
  const auto flags =
      ParseArgs({"tool", "--minsup", "0.25", "--top", "12"}, {"minsup", "top"});
  ASSERT_TRUE(flags.has_value());
  EXPECT_DOUBLE_EQ(flags->GetDouble("minsup", 0.0), 0.25);
  EXPECT_EQ(flags->GetInt("top", 0), 12);
}

}  // namespace
}  // namespace focus::common

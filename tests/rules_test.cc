#include <vector>

#include <gtest/gtest.h>

#include "datagen/quest_gen.h"
#include "itemsets/apriori.h"
#include "itemsets/rules.h"

namespace focus::lits {
namespace {

// A model where rules are fully hand-computable.
LitsModel HandModel() {
  LitsModel model(0.1, 100, 5);
  model.Add(Itemset({0}), 0.6);
  model.Add(Itemset({1}), 0.5);
  model.Add(Itemset({2}), 0.4);
  model.Add(Itemset({0, 1}), 0.4);
  model.Add(Itemset({0, 2}), 0.2);
  return model;
}

const AssociationRule* FindRule(const std::vector<AssociationRule>& rules,
                                const Itemset& a, const Itemset& c) {
  for (const AssociationRule& rule : rules) {
    if (rule.antecedent == a && rule.consequent == c) return &rule;
  }
  return nullptr;
}

TEST(RulesTest, HandComputedConfidences) {
  RuleOptions options;
  options.min_confidence = 0.3;
  const auto rules = GenerateRules(HandModel(), options);
  // {0}=>{1}: 0.4/0.6; {1}=>{0}: 0.4/0.5; {0}=>{2}: 0.2/0.6;
  // {2}=>{0}: 0.2/0.4.
  const AssociationRule* r01 = FindRule(rules, Itemset({0}), Itemset({1}));
  ASSERT_NE(r01, nullptr);
  EXPECT_NEAR(r01->confidence, 0.4 / 0.6, 1e-12);
  EXPECT_NEAR(r01->lift, (0.4 / 0.6) / 0.5, 1e-12);
  const AssociationRule* r10 = FindRule(rules, Itemset({1}), Itemset({0}));
  ASSERT_NE(r10, nullptr);
  EXPECT_NEAR(r10->confidence, 0.8, 1e-12);
  const AssociationRule* r20 = FindRule(rules, Itemset({2}), Itemset({0}));
  ASSERT_NE(r20, nullptr);
  EXPECT_NEAR(r20->confidence, 0.5, 1e-12);
  // {0}=>{2} has confidence 1/3 >= 0.3: present.
  EXPECT_NE(FindRule(rules, Itemset({0}), Itemset({2})), nullptr);
}

TEST(RulesTest, ConfidenceThresholdFilters) {
  RuleOptions options;
  options.min_confidence = 0.75;
  const auto rules = GenerateRules(HandModel(), options);
  // Only {1}=>{0} (conf 0.8) survives.
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_TRUE(rules[0].antecedent == Itemset({1}));
}

TEST(RulesTest, SortedByConfidenceThenSupport) {
  RuleOptions options;
  options.min_confidence = 0.2;
  const auto rules = GenerateRules(HandModel(), options);
  for (size_t i = 1; i < rules.size(); ++i) {
    EXPECT_GE(rules[i - 1].confidence, rules[i].confidence);
  }
}

TEST(RulesTest, MultiItemRulesFromTriple) {
  LitsModel model(0.1, 100, 4);
  model.Add(Itemset({0}), 0.5);
  model.Add(Itemset({1}), 0.5);
  model.Add(Itemset({2}), 0.5);
  model.Add(Itemset({0, 1}), 0.4);
  model.Add(Itemset({0, 2}), 0.4);
  model.Add(Itemset({1, 2}), 0.4);
  model.Add(Itemset({0, 1, 2}), 0.3);
  RuleOptions options;
  options.min_confidence = 0.5;
  const auto rules = GenerateRules(model, options);
  // {0,1}=>{2} has confidence 0.3/0.4 = 0.75.
  const AssociationRule* rule =
      FindRule(rules, Itemset({0, 1}), Itemset({2}));
  ASSERT_NE(rule, nullptr);
  EXPECT_NEAR(rule->confidence, 0.75, 1e-12);
  EXPECT_NEAR(rule->support, 0.3, 1e-12);
}

TEST(RulesTest, GeneratedDataRulesAreInternallyConsistent) {
  datagen::QuestParams params;
  params.num_transactions = 1000;
  params.num_items = 60;
  params.num_patterns = 15;
  params.avg_pattern_length = 4;
  params.seed = 3;
  const data::TransactionDb db = datagen::GenerateQuest(params);
  AprioriOptions apriori;
  apriori.min_support = 0.03;
  const LitsModel model = Apriori(db, apriori);
  RuleOptions options;
  options.min_confidence = 0.6;
  const auto rules = GenerateRules(model, options);
  for (const AssociationRule& rule : rules) {
    EXPECT_GE(rule.confidence, 0.6);
    EXPECT_LE(rule.confidence, 1.0 + 1e-12);
    EXPECT_GE(rule.support, apriori.min_support - 1e-12);
    // support(rule) equals the model's support of the union.
    EXPECT_NEAR(rule.support,
                model.SupportOr(rule.antecedent.Union(rule.consequent), -1.0),
                1e-12);
  }
}

TEST(RuleDeviationTest, IdenticalModelsZero) {
  const LitsModel model = HandModel();
  RuleOptions options;
  options.min_confidence = 0.3;
  const auto rules = GenerateRules(model, options);
  EXPECT_DOUBLE_EQ(RuleDeviation(rules, model, rules, model), 0.0);
}

TEST(RuleDeviationTest, ConfidenceShiftMeasured) {
  const LitsModel m1 = HandModel();
  LitsModel m2(0.1, 100, 5);
  m2.Add(Itemset({0}), 0.6);
  m2.Add(Itemset({1}), 0.5);
  m2.Add(Itemset({2}), 0.4);
  m2.Add(Itemset({0, 1}), 0.1);  // implication {0}=>{1} collapses
  m2.Add(Itemset({0, 2}), 0.2);

  RuleOptions options;
  options.min_confidence = 0.3;
  const auto rules1 = GenerateRules(m1, options);
  const auto rules2 = GenerateRules(m2, options);
  const double deviation = RuleDeviation(rules1, m1, rules2, m2);
  // {0}=>{1} moved 0.667->0.167 and {1}=>{0} moved 0.8->0.2: the
  // deviation must reflect at least those 1.1 points of confidence mass.
  EXPECT_GT(deviation, 1.0);
}

TEST(RuleDeviationTest, MissingRuleExtendsViaModel) {
  // A rule above threshold only in m1 still gets its true (low)
  // confidence from m2's supports rather than a hard 0.
  LitsModel m1(0.1, 100, 3);
  m1.Add(Itemset({0}), 0.5);
  m1.Add(Itemset({1}), 0.5);
  m1.Add(Itemset({0, 1}), 0.45);  // conf 0.9
  LitsModel m2(0.1, 100, 3);
  m2.Add(Itemset({0}), 0.5);
  m2.Add(Itemset({1}), 0.5);
  m2.Add(Itemset({0, 1}), 0.2);  // conf 0.4 < threshold 0.5

  RuleOptions options;
  options.min_confidence = 0.5;
  const auto rules1 = GenerateRules(m1, options);
  const auto rules2 = GenerateRules(m2, options);
  ASSERT_FALSE(rules1.empty());
  EXPECT_TRUE(rules2.empty());
  // Deviation = |0.9-0.4| per direction = 2 * 0.5.
  EXPECT_NEAR(RuleDeviation(rules1, m1, rules2, m2), 1.0, 1e-9);
}

TEST(ConfidenceUnderTest, ZeroWhenNotFrequent) {
  const LitsModel model = HandModel();
  EXPECT_DOUBLE_EQ(ConfidenceUnder(model, Itemset({4}), Itemset({0})), 0.0);
  EXPECT_NEAR(ConfidenceUnder(model, Itemset({0}), Itemset({1})), 0.4 / 0.6,
              1e-12);
}

}  // namespace
}  // namespace focus::lits

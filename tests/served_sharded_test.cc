// End-to-end test of the REAL focus_served binary in sharded mode
// (--shards 2 --reactors 2): boot it on an ephemeral loopback port with
// two forked shard workers, drive the scatter-gather HTTP API from this
// process, then deliver an actual SIGTERM and verify the full-tree drain
// — every worker reaps cleanly and the parent exits 0.

#include <csignal>
#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/transaction_db.h"
#include "io/data_io.h"
#include "net/http_client.h"

namespace focus {
namespace {

namespace fs = std::filesystem;

data::TransactionDb SmallDb(int32_t num_items, int64_t transactions,
                            int64_t salt = 0) {
  data::TransactionDb db(num_items);
  std::vector<int32_t> items;
  for (int64_t t = 0; t < transactions; ++t) {
    items.clear();
    for (int32_t i = 0; i < num_items; ++i) {
      if ((t + i + salt) % 3 != 0) items.push_back(i);
    }
    db.AddTransaction(items);
  }
  return db;
}

std::string Serialize(const data::TransactionDb& db) {
  std::ostringstream out;
  io::SaveTransactionDb(db, out);
  return out.str();
}

// Pulls the string value of `key` out of a flat JSON object body.
std::string JsonString(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t at = body.find(needle);
  if (at == std::string::npos) return "";
  const size_t start = at + needle.size();
  const size_t end = body.find('"', start);
  if (end == std::string::npos) return "";
  return body.substr(start, end - start);
}

class ServedShardedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("served_sharded_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::remove_all(root_);
    // The daemon must create the missing --shard-dir itself (same
    // contract as focus_monitord's spool directory).
    fs::create_directories(root_);
    reference_path_ = (root_ / "reference.txns").string();
    port_file_ = (root_ / "port.txt").string();
    ASSERT_TRUE(io::SaveTransactionDbToFile(SmallDb(10, 60), reference_path_));
  }

  void TearDown() override {
    if (pid_ > 0) {  // a test failed before the clean shutdown
      kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
    }
    fs::remove_all(root_);
  }

  // Spawns the sharded daemon (2 workers, 2 reactors) and waits for
  // --port-file to announce the bound port. The port file is only written
  // after every worker answered a ping, so a successful boot already
  // proves fork + Unix-socket serve + PingAll.
  bool StartDaemon() {
    pid_ = fork();
    if (pid_ == 0) {
      const int out = open((root_ / "stdout.txt").c_str(),
                           O_WRONLY | O_CREAT | O_TRUNC, 0644);
      dup2(out, STDOUT_FILENO);
      dup2(out, STDERR_FILENO);
      execl(FOCUS_SERVED_PATH, FOCUS_SERVED_PATH, "--reference",
            reference_path_.c_str(), "--port", "0", "--port-file",
            port_file_.c_str(), "--shards", "2", "--reactors", "2",
            "--shard-dir", (root_ / "shards").c_str(), "--minsup", "0.3",
            "--calibration", "1", "--replicates", "1", "--threads", "2",
            "--queue", "8", static_cast<char*>(nullptr));
      _exit(127);  // exec failed
    }
    for (int i = 0; i < 400; ++i) {
      std::ifstream in(port_file_);
      int port = 0;
      if (in >> port && port > 0) {
        port_ = static_cast<uint16_t>(port);
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    ADD_FAILURE() << "daemon never wrote " << port_file_;
    return false;
  }

  // SIGTERM + waitpid; returns the daemon's exit code (-1 on signal death).
  int TerminateDaemon() {
    kill(pid_, SIGTERM);
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  std::string ReadLog() {
    std::ifstream log(root_ / "stdout.txt");
    std::stringstream text;
    text << log.rdbuf();
    return text.str();
  }

  fs::path root_;
  std::string reference_path_;
  std::string port_file_;
  pid_t pid_ = -1;
  uint16_t port_ = 0;
};

TEST_F(ServedShardedTest, ScatterGathersAndSigtermDrainsAllWorkers) {
  ASSERT_TRUE(StartDaemon());

  net::HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port_));
  const auto health = client.Get("/healthz");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);
  EXPECT_NE(health->body.find("\"ok\""), std::string::npos);

  // Enough distinct streams that the hash ring spreads work across both
  // shards; each first snapshot must come back with a dense sequence 0.
  const std::vector<std::string> streams = {"alpha", "beta",  "gamma",
                                            "delta", "omega", "sigma"};
  std::vector<std::string> hashes;
  for (size_t s = 0; s < streams.size(); ++s) {
    const auto response = client.Post(
        "/v1/streams/" + streams[s] + "/snapshots",
        Serialize(SmallDb(10, 40, static_cast<int64_t>(s))), "text/plain");
    ASSERT_TRUE(response.has_value());
    ASSERT_EQ(response->status, 202) << response->body;
    EXPECT_NE(response->body.find("\"sequence\":0"), std::string::npos)
        << response->body;
    const std::string hash = JsonString(response->body, "content_hash");
    ASSERT_FALSE(hash.empty()) << response->body;
    hashes.push_back(hash);
  }
  ASSERT_EQ(client
                .Post("/v1/streams/alpha/snapshots",
                      Serialize(SmallDb(10, 40, 17)), "text/plain")
                ->status,
            202);

  // Every stream's deviation converges — routed to whichever worker owns
  // it on the ring.
  for (size_t s = 0; s < streams.size(); ++s) {
    const std::string want =
        streams[s] == "alpha" ? "\"processed\":2" : "\"processed\":1";
    bool processed = false;
    for (int i = 0; i < 200 && !processed; ++i) {
      const auto deviation =
          client.Get("/v1/streams/" + streams[s] + "/deviation");
      ASSERT_TRUE(deviation.has_value());
      ASSERT_EQ(deviation->status, 200) << deviation->body;
      processed = deviation->body.find(want) != std::string::npos;
      if (!processed) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    }
    EXPECT_TRUE(processed) << streams[s];
  }

  // The summary endpoint gathers every shard's streams into one answer.
  const auto summary = client.Get("/v1/deviation/summary");
  ASSERT_TRUE(summary.has_value());
  ASSERT_EQ(summary->status, 200) << summary->body;
  for (const std::string& stream : streams) {
    EXPECT_NE(summary->body.find("\"" + stream + "\""), std::string::npos)
        << summary->body;
  }

  // Cross-shard compare: distinct snapshots give a positive deviation,
  // a snapshot against itself is exactly zero.
  const auto differ = client.Post(
      "/v1/compare", "left=" + hashes[0] + "&right=" + hashes[1],
      "application/x-www-form-urlencoded");
  ASSERT_TRUE(differ.has_value());
  ASSERT_EQ(differ->status, 200) << differ->body;
  EXPECT_NE(differ->body.find("\"deviation\":"), std::string::npos);
  const auto same = client.Post(
      "/v1/compare", "left=" + hashes[2] + "&right=" + hashes[2],
      "application/x-www-form-urlencoded");
  ASSERT_TRUE(same.has_value());
  ASSERT_EQ(same->status, 200) << same->body;
  EXPECT_NE(same->body.find("\"deviation\":0}"), std::string::npos)
      << same->body;

  // Real SIGTERM: parent drains both workers and reaps them cleanly.
  EXPECT_EQ(TerminateDaemon(), 0);

  const std::string log = ReadLog();
  EXPECT_NE(log.find("draining"), std::string::npos) << log;
  EXPECT_NE(log.find("[shard 0]: drained"), std::string::npos) << log;
  EXPECT_NE(log.find("[shard 1]: drained"), std::string::npos) << log;
  EXPECT_NE(log.find("2 workers clean"), std::string::npos) << log;
}

TEST_F(ServedShardedTest, SigtermFinishesAcceptedWorkAcrossShards) {
  ASSERT_TRUE(StartDaemon());
  net::HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port_));

  // Accept work on several ring positions, then SIGTERM straight away:
  // the drain contract is that every 202 is processed before the workers
  // exit, and both workers still report a clean drain.
  int accepted = 0;
  const std::vector<std::string> streams = {"burst-a", "burst-b", "burst-c",
                                            "burst-d"};
  for (size_t s = 0; s < streams.size(); ++s) {
    const auto response = client.Post(
        "/v1/streams/" + streams[s] + "/snapshots",
        Serialize(SmallDb(10, 50, 20 + static_cast<int64_t>(s))),
        "text/plain");
    ASSERT_TRUE(response.has_value());
    if (response->status == 202) ++accepted;
  }
  ASSERT_GT(accepted, 0);
  EXPECT_EQ(TerminateDaemon(), 0);

  const std::string log = ReadLog();
  EXPECT_NE(log.find("2 workers clean"), std::string::npos) << log;
  // Per-worker drain lines carry the processed counts; summed they must
  // equal every accepted snapshot.
  int processed = 0;
  size_t at = 0;
  while ((at = log.find("]: drained; ", at)) != std::string::npos) {
    at += std::string("]: drained; ").size();
    processed += std::stoi(log.substr(at));
  }
  EXPECT_EQ(processed, accepted) << log;
}

}  // namespace
}  // namespace focus

// Boundary behaviour across the public API: empty models, single-leaf
// trees, degenerate embeddings, extreme focus regions.

#include <vector>

#include <gtest/gtest.h>

#include "core/dt_deviation.h"
#include "core/embedding.h"
#include "core/lits_deviation.h"
#include "core/lits_upper_bound.h"
#include "core/rank.h"
#include "datagen/class_gen.h"
#include "tree/cart_builder.h"

namespace focus::core {
namespace {

TEST(EdgeCaseTest, EmptyLitsModelsHaveZeroDeviation) {
  data::TransactionDb d1(4);
  data::TransactionDb d2(4);
  d1.AddTransaction(std::vector<int32_t>{0});
  d2.AddTransaction(std::vector<int32_t>{1});
  const lits::LitsModel empty1(0.9, 1, 4);
  const lits::LitsModel empty2(0.9, 1, 4);
  DeviationFunction fn;
  EXPECT_DOUBLE_EQ(LitsDeviation(empty1, d1, empty2, d2, fn), 0.0);
  EXPECT_DOUBLE_EQ(LitsUpperBound(empty1, empty2, AggregateKind::kSum), 0.0);
  EXPECT_TRUE(LitsGcr(empty1, empty2).empty());
}

TEST(EdgeCaseTest, OneSidedEmptyModelDeviatesByTheOtherSide) {
  data::TransactionDb d1(3);
  data::TransactionDb d2(3);
  for (int i = 0; i < 10; ++i) {
    d1.AddTransaction(std::vector<int32_t>{0});
    d2.AddTransaction(std::vector<int32_t>{i % 2 == 0 ? 0 : 1});
  }
  lits::LitsModel m1(0.5, 10, 3);
  m1.Add(lits::Itemset({0}), 1.0);
  const lits::LitsModel empty(0.5, 10, 3);
  DeviationFunction fn;
  // GCR = {{0}}; supports 1.0 vs 0.5 (counted from d2).
  EXPECT_NEAR(LitsDeviation(m1, d1, empty, d2, fn), 0.5, 1e-12);
}

TEST(EdgeCaseTest, SingleLeafTreesGcrIsOneCell) {
  datagen::ClassGenParams params;
  params.num_rows = 200;
  params.function = datagen::ClassFunction::kF1;
  const data::Dataset d = datagen::GenerateClassification(params);
  dt::DecisionTree t1(d.schema());
  t1.AddLeafNode({100, 100});
  dt::DecisionTree t2(d.schema());
  t2.AddLeafNode({100, 100});
  const DtModel m1(std::move(t1), d);
  const DtModel m2(std::move(t2), d);
  const DtGcr gcr(m1, m2);
  EXPECT_EQ(gcr.num_regions(), 1);
  DtDeviationOptions options;
  EXPECT_NEAR(DtDeviation(m1, d, m2, d, options), 0.0, 1e-12);
}

TEST(EdgeCaseTest, FocusOutsideTheDataYieldsZero) {
  datagen::ClassGenParams params;
  params.num_rows = 500;
  params.function = datagen::ClassFunction::kF1;
  params.seed = 1;
  const data::Dataset d1 = datagen::GenerateClassification(params);
  params.function = datagen::ClassFunction::kF2;
  params.seed = 2;
  const data::Dataset d2 = datagen::GenerateClassification(params);
  dt::CartOptions cart;
  cart.max_depth = 3;
  const DtModel m1(dt::BuildCart(d1, cart), d1);
  const DtModel m2(dt::BuildCart(d2, cart), d2);
  DtDeviationOptions options;
  data::Box nowhere = data::Box::Full(d1.schema());
  // Age domain is [20, 80]; focus far outside it.
  nowhere.ClampNumeric(datagen::ClassGenColumns::kAge, 500.0, 600.0);
  options.focus = nowhere;
  EXPECT_DOUBLE_EQ(DtDeviation(m1, d1, m2, d2, options), 0.0);
}

TEST(EdgeCaseTest, RankWithNoCandidateRegions) {
  datagen::ClassGenParams params;
  params.num_rows = 300;
  params.function = datagen::ClassFunction::kF1;
  const data::Dataset d = datagen::GenerateClassification(params);
  dt::CartOptions cart;
  cart.max_depth = 2;
  const DtModel m(dt::BuildCart(d, cart), d);
  const auto ranked =
      RankDtRegions(BoxSet{}, m, d, m, d, DeviationFunction{});
  EXPECT_TRUE(ranked.empty());
}

TEST(EdgeCaseTest, FastMapMoreDimsThanInformation) {
  // 2 objects cannot support 3 informative dimensions; extra dims are 0.
  std::vector<std::vector<double>> d = {{0.0, 4.0}, {4.0, 0.0}};
  const FastMapResult r = FastMapEmbedding(d, 3);
  EXPECT_NEAR(EmbeddedDistance(r.coordinates[0], r.coordinates[1]), 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.coordinates[0][1], 0.0);
  EXPECT_DOUBLE_EQ(r.coordinates[0][2], 0.0);
}

TEST(EdgeCaseTest, SingleObjectEmbedding) {
  const std::vector<std::vector<double>> d = {{0.0}};
  const FastMapResult r = FastMapEmbedding(d, 2);
  ASSERT_EQ(r.coordinates.size(), 1u);
  EXPECT_DOUBLE_EQ(r.coordinates[0][0], 0.0);
}

TEST(EdgeCaseDeathTest, LitsDeviationRejectsEmptyDatabase) {
  const data::TransactionDb empty(4);
  data::TransactionDb d(4);
  d.AddTransaction(std::vector<int32_t>{0});
  lits::LitsModel m1(0.5, 1, 4);
  m1.Add(lits::Itemset({0}), 1.0);
  lits::LitsModel m2(0.5, 1, 4);
  m2.Add(lits::Itemset({1}), 1.0);
  DeviationFunction fn;
  // Counting over an empty database has no defined selectivity.
  EXPECT_DEATH(LitsDeviation(m1, empty, m2, d, fn), "FOCUS_CHECK");
}

}  // namespace
}  // namespace focus::core

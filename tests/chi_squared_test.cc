#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/chi_squared_instance.h"
#include "core/dt_deviation.h"
#include "datagen/class_gen.h"
#include "tree/cart_builder.h"
#include "tree/leaf_regions.h"

namespace focus::core {
namespace {

using datagen::ClassFunction;
using datagen::ClassGenParams;
using datagen::GenerateClassification;

dt::DecisionTree TrainTree(const data::Dataset& dataset, int max_depth = 4) {
  dt::CartOptions options;
  options.max_depth = max_depth;
  options.min_leaf_size = 50;
  return dt::BuildCart(dataset, options);
}

// Direct textbook computation of X^2 over the tree's (leaf × class) cells.
double DirectChiSquared(const dt::DecisionTree& tree, const data::Dataset& d1,
                        const data::Dataset& d2, double c) {
  const std::vector<double> expected_sel = DtMeasuresOverTree(tree, d1);
  const std::vector<double> observed_sel = DtMeasuresOverTree(tree, d2);
  const double n2 = static_cast<double>(d2.num_rows());
  double statistic = 0.0;
  for (size_t i = 0; i < expected_sel.size(); ++i) {
    const double expected = expected_sel[i] * n2;
    const double observed = observed_sel[i] * n2;
    if (expected <= 0.0) {
      statistic += c;
    } else {
      statistic += (observed - expected) * (observed - expected) / expected;
    }
  }
  return statistic;
}

TEST(ChiSquaredTest, Proposition51MatchesDirectComputation) {
  ClassGenParams params;
  params.num_rows = 3000;
  params.function = ClassFunction::kF2;
  params.seed = 1;
  const data::Dataset d1 = GenerateClassification(params);
  params.function = ClassFunction::kF3;
  params.seed = 2;
  const data::Dataset d2 = GenerateClassification(params);
  const dt::DecisionTree tree = TrainTree(d1);
  const ChiSquaredResult result = ChiSquaredFit(tree, d1, d2, 0.5);
  EXPECT_NEAR(result.statistic, DirectChiSquared(tree, d1, d2, 0.5), 1e-6);
}

TEST(ChiSquaredTest, SameDistributionHasSmallStatistic) {
  ClassGenParams params;
  params.num_rows = 4000;
  params.function = ClassFunction::kF1;
  params.seed = 1;
  const data::Dataset d1 = GenerateClassification(params);
  params.seed = 2;
  const data::Dataset d2 = GenerateClassification(params);
  const dt::DecisionTree tree = TrainTree(d1);
  const ChiSquaredResult result = ChiSquaredFit(tree, d1, d2);
  // Statistic near dof, p-value not extreme.
  EXPECT_GT(result.asymptotic_p_value, 0.0001);
}

TEST(ChiSquaredTest, DifferentDistributionHasLargeStatistic) {
  ClassGenParams params;
  params.num_rows = 4000;
  params.function = ClassFunction::kF1;
  params.seed = 1;
  const data::Dataset d1 = GenerateClassification(params);
  params.function = ClassFunction::kF4;
  params.seed = 2;
  const data::Dataset d2 = GenerateClassification(params);
  const dt::DecisionTree tree = TrainTree(d1);
  const ChiSquaredResult same = ChiSquaredFit(tree, d1, d1);
  const ChiSquaredResult diff = ChiSquaredFit(tree, d1, d2);
  EXPECT_GT(diff.statistic, same.statistic);
  EXPECT_LT(diff.asymptotic_p_value, 0.001);
}

TEST(ChiSquaredTest, BootstrapPValueSeparatesNullFromShift) {
  ClassGenParams params;
  params.num_rows = 1500;
  params.function = ClassFunction::kF2;
  params.seed = 1;
  const data::Dataset d1 = GenerateClassification(params);
  params.seed = 2;
  const data::Dataset d2_null = GenerateClassification(params);
  params.function = ClassFunction::kF3;
  params.seed = 3;
  const data::Dataset d2_shift = GenerateClassification(params);
  const dt::DecisionTree tree = TrainTree(d1, 3);

  const double p_null = ChiSquaredBootstrapPValue(tree, d1, d2_null, 0.5, 49);
  const double p_shift = ChiSquaredBootstrapPValue(tree, d1, d2_shift, 0.5, 49);
  EXPECT_GT(p_null, 0.02);
  EXPECT_LE(p_shift, 0.02);
}

TEST(ChiSquaredTest, ConstantAffectsOnlyZeroExpectedCells) {
  // Build a tiny pure-leaf tree so some (leaf, class) cells have zero
  // expected measure.
  data::Schema schema({data::Schema::Numeric("x", 0.0, 1.0)}, 2);
  data::Dataset d1(schema);
  for (int i = 0; i < 50; ++i) d1.AddRow(std::vector<double>{0.2}, 0);
  for (int i = 0; i < 50; ++i) d1.AddRow(std::vector<double>{0.8}, 1);
  data::Dataset d2 = d1;
  dt::CartOptions cart;
  cart.min_leaf_size = 10;
  const dt::DecisionTree tree = dt::BuildCart(d1, cart);
  ASSERT_EQ(tree.num_leaves(), 2);  // pure split at x=0.5

  const double with_half = ChiSquaredFit(tree, d1, d2, 0.5).statistic;
  const double with_two = ChiSquaredFit(tree, d1, d2, 2.0).statistic;
  // Two zero-expected cells (class 1 in left leaf, class 0 in right leaf):
  // statistic = 2c since observed == expected elsewhere.
  EXPECT_NEAR(with_half, 1.0, 1e-9);
  EXPECT_NEAR(with_two, 4.0, 1e-9);
}

}  // namespace
}  // namespace focus::core

// Unit tests for data::SplitterTree — the branchless perfect-tree bucket
// classifier behind the radix-partitioned RoaringIndex build. The whole
// contract: Classify(key) == number of splitters <= key, for any splitter
// count (powers of two, off-by-one, empty) and any key position (below,
// equal, between, above).

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "data/splitter_tree.h"

namespace focus::data {
namespace {

int32_t ReferenceClassify(const std::vector<int32_t>& splitters, int32_t key) {
  int32_t bucket = 0;
  for (int32_t splitter : splitters) bucket += (splitter <= key);
  return bucket;
}

TEST(SplitterTreeTest, NoSplittersIsOneBucket) {
  const SplitterTree tree(std::vector<int32_t>{});
  EXPECT_EQ(tree.num_buckets(), 1);
  EXPECT_EQ(tree.Classify(-100), 0);
  EXPECT_EQ(tree.Classify(0), 0);
  EXPECT_EQ(tree.Classify(1 << 30), 0);
}

TEST(SplitterTreeTest, SingleSplitterSplitsAtBoundary) {
  const std::vector<int32_t> splitters = {10};
  const SplitterTree tree(splitters);
  EXPECT_EQ(tree.num_buckets(), 2);
  EXPECT_EQ(tree.Classify(9), 0);
  EXPECT_EQ(tree.Classify(10), 1);  // splitter belongs to the right bucket
  EXPECT_EQ(tree.Classify(11), 1);
}

TEST(SplitterTreeTest, MatchesLinearScanForAllSizesAndKeys) {
  // Sizes cover perfect trees (1, 3, 7, 15) and every padded shape in
  // between; keys probe each boundary and each gap.
  for (int32_t num_splitters = 0; num_splitters <= 17; ++num_splitters) {
    std::vector<int32_t> splitters;
    for (int32_t s = 0; s < num_splitters; ++s) {
      splitters.push_back(5 * (s + 1));  // 5, 10, 15, ...
    }
    const SplitterTree tree(splitters);
    ASSERT_EQ(tree.num_buckets(), num_splitters + 1);
    for (int32_t key = -1; key <= 5 * (num_splitters + 1); ++key) {
      EXPECT_EQ(tree.Classify(key), ReferenceClassify(splitters, key))
          << "splitters=" << num_splitters << " key=" << key;
    }
  }
}

TEST(SplitterTreeTest, UnevenGapsClassifyExactly) {
  const std::vector<int32_t> splitters = {2, 3, 100, 1000, 1001};
  const SplitterTree tree(splitters);
  for (const int32_t key :
       {0, 1, 2, 3, 4, 99, 100, 101, 999, 1000, 1001, 1002, 1 << 20}) {
    EXPECT_EQ(tree.Classify(key), ReferenceClassify(splitters, key))
        << "key=" << key;
  }
}

}  // namespace
}  // namespace focus::data

#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/birch.h"
#include "cluster/grid_clustering.h"
#include "core/cluster_deviation.h"
#include "stats/rng.h"

namespace focus::cluster {
namespace {

data::Schema XySchema() {
  return data::Schema(
      {data::Schema::Numeric("x", 0.0, 10.0), data::Schema::Numeric("y", 0.0, 10.0)},
      /*num_classes=*/0);
}

data::Dataset Blobs(uint64_t seed, const std::vector<std::pair<double, double>>&
                                       centers, int per_blob) {
  std::mt19937_64 rng = stats::MakeRng(seed);
  std::normal_distribution<double> noise(0.0, 0.3);
  data::Dataset dataset(XySchema());
  for (const auto& [cx, cy] : centers) {
    for (int i = 0; i < per_blob; ++i) {
      dataset.AddRow(
          std::vector<double>{std::clamp(cx + noise(rng), 0.0, 9.999),
                              std::clamp(cy + noise(rng), 0.0, 9.999)},
          0);
    }
  }
  return dataset;
}

TEST(ClusteringFeatureTest, SufficientStatistics) {
  ClusteringFeature cf;
  cf.Absorb(std::vector<double>{1.0, 2.0});
  cf.Absorb(std::vector<double>{3.0, 4.0});
  EXPECT_EQ(cf.n, 2);
  const std::vector<double> centroid = cf.Centroid();
  EXPECT_DOUBLE_EQ(centroid[0], 2.0);
  EXPECT_DOUBLE_EQ(centroid[1], 3.0);
  // Each point is sqrt(2) from the centroid => radius = sqrt(2).
  EXPECT_NEAR(cf.Radius(), std::sqrt(2.0), 1e-12);
}

TEST(ClusteringFeatureTest, MergeEqualsBulkAbsorb) {
  ClusteringFeature a;
  a.Absorb(std::vector<double>{1.0, 1.0});
  a.Absorb(std::vector<double>{2.0, 2.0});
  ClusteringFeature b;
  b.Absorb(std::vector<double>{3.0, 3.0});
  a.Merge(b);
  ClusteringFeature bulk;
  for (double v : {1.0, 2.0, 3.0}) bulk.Absorb(std::vector<double>{v, v});
  EXPECT_EQ(a.n, bulk.n);
  EXPECT_NEAR(a.Radius(), bulk.Radius(), 1e-12);
}

TEST(BirchTest, FindsWellSeparatedBlobs) {
  const data::Dataset dataset = Blobs(1, {{2.0, 2.0}, {8.0, 8.0}}, 400);
  const Grid grid(XySchema(), {0, 1}, 20);
  BirchOptions options;
  options.threshold = 0.8;
  options.density_threshold = 0.002;
  const ClusterModel model = BirchClustering(dataset, grid, options);
  EXPECT_EQ(model.num_regions(), 2);
  EXPECT_NEAR(model.selectivity(0) + model.selectivity(1), 1.0, 0.05);
}

TEST(BirchTest, ThreeBlobs) {
  const data::Dataset dataset =
      Blobs(2, {{2.0, 2.0}, {8.0, 8.0}, {2.0, 8.0}}, 300);
  const Grid grid(XySchema(), {0, 1}, 20);
  BirchOptions options;
  options.threshold = 0.8;
  options.density_threshold = 0.002;
  const ClusterModel model = BirchClustering(dataset, grid, options);
  EXPECT_EQ(model.num_regions(), 3);
}

TEST(BirchTest, LooseThresholdMergesEverything) {
  const data::Dataset dataset = Blobs(3, {{2.0, 2.0}, {8.0, 8.0}}, 200);
  const Grid grid(XySchema(), {0, 1}, 10);
  BirchOptions options;
  options.threshold = 50.0;  // radius can cover the whole domain
  const ClusterModel model = BirchClustering(dataset, grid, options);
  EXPECT_EQ(model.num_regions(), 1);
}

TEST(BirchTest, DeviationAgainstGridClusteringWorks) {
  // Cross-algorithm FOCUS: a BIRCH model and a grid-density model over
  // the SAME grid are refinable against each other; identical data gives
  // a small (not necessarily zero) deviation since the algorithms carve
  // slightly different noise cells.
  const data::Dataset dataset = Blobs(4, {{2.0, 2.0}, {8.0, 8.0}}, 400);
  const Grid grid(XySchema(), {0, 1}, 20);
  BirchOptions birch;
  birch.threshold = 0.8;
  birch.density_threshold = 0.002;
  const ClusterModel birch_model = BirchClustering(dataset, grid, birch);
  GridClusteringOptions density;
  density.density_threshold = 0.002;
  const ClusterModel grid_model = GridClustering(dataset, grid, density);

  core::ClusterDeviationOptions options;
  const double self = core::ClusterDeviation(birch_model, dataset, grid_model,
                                             dataset, options);
  EXPECT_LT(self, 0.1);

  // Drifted data deviates much more, regardless of inducing algorithm.
  const data::Dataset drifted = Blobs(5, {{5.0, 5.0}, {8.0, 2.0}}, 400);
  const ClusterModel drifted_model = BirchClustering(drifted, grid, birch);
  const double drift = core::ClusterDeviation(birch_model, dataset,
                                              drifted_model, drifted, options);
  EXPECT_GT(drift, 10.0 * self);
}

TEST(BirchTest, RegionsAreDisjointCells) {
  const data::Dataset dataset = Blobs(6, {{3.0, 3.0}, {7.0, 7.0}}, 300);
  const Grid grid(XySchema(), {0, 1}, 15);
  BirchOptions options;
  options.threshold = 0.8;
  const ClusterModel model = BirchClustering(dataset, grid, options);
  std::vector<int64_t> all;
  for (int r = 0; r < model.num_regions(); ++r) {
    EXPECT_TRUE(std::is_sorted(model.region(r).begin(), model.region(r).end()));
    all.insert(all.end(), model.region(r).begin(), model.region(r).end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
}

}  // namespace
}  // namespace focus::cluster

#include <vector>

#include <gtest/gtest.h>

#include "core/misclassification.h"
#include "datagen/class_gen.h"
#include "datagen/perturb.h"
#include "tree/cart_builder.h"
#include "tree/pruning.h"

namespace focus::dt {
namespace {

using datagen::ClassFunction;
using datagen::ClassGenParams;
using datagen::GenerateClassification;

TEST(PruningTest, NoisyTreeShrinks) {
  // Overfit a deep tree on noisy labels; pruning on clean validation data
  // must reduce its size and not hurt validation accuracy.
  ClassGenParams params;
  params.num_rows = 6000;
  params.function = ClassFunction::kF2;
  params.label_noise = 0.15;
  params.seed = 1;
  const data::Dataset noisy_train = GenerateClassification(params);
  params.label_noise = 0.0;
  params.seed = 2;
  params.num_rows = 3000;
  const data::Dataset validation = GenerateClassification(params);

  CartOptions cart;
  cart.max_depth = 12;
  cart.min_leaf_size = 10;
  cart.min_gain = 1e-6;
  const DecisionTree overfit = BuildCart(noisy_train, cart);
  const DecisionTree pruned = PruneReducedError(overfit, validation);

  EXPECT_LT(pruned.num_leaves(), overfit.num_leaves());
  const double before = core::MisclassificationError(overfit, validation);
  const double after = core::MisclassificationError(pruned, validation);
  EXPECT_LE(after, before + 1e-12);
}

TEST(PruningTest, CleanPerfectTreeSurvives) {
  // A tree that fits noiseless F1 exactly should barely change.
  ClassGenParams params;
  params.num_rows = 5000;
  params.function = ClassFunction::kF1;
  params.seed = 1;
  const data::Dataset train = GenerateClassification(params);
  params.seed = 2;
  const data::Dataset validation = GenerateClassification(params);

  CartOptions cart;
  cart.max_depth = 6;
  cart.min_leaf_size = 50;
  const DecisionTree tree = BuildCart(train, cart);
  const DecisionTree pruned = PruneReducedError(tree, validation);
  const double error = core::MisclassificationError(pruned, validation);
  EXPECT_LT(error, 0.02);
  EXPECT_GE(pruned.num_leaves(), 3);  // the F1 age rule needs 3 leaves
}

TEST(PruningTest, SingleLeafIsFixedPoint) {
  data::Schema schema({data::Schema::Numeric("x", 0.0, 1.0)}, 2);
  DecisionTree tree(schema);
  tree.AddLeafNode({10, 5});
  data::Dataset validation(schema);
  validation.AddRow(std::vector<double>{0.5}, 0);
  const DecisionTree pruned = PruneReducedError(tree, validation);
  EXPECT_EQ(pruned.num_leaves(), 1);
  EXPECT_EQ(pruned.Predict(std::vector<double>{0.3}), 0);
}

TEST(PruningTest, PrunedTreePredictionsAreConsistent) {
  // Predictions of the pruned tree equal majority-training labels of the
  // collapsed regions; routing must stay total (every row lands in a
  // leaf).
  ClassGenParams params;
  params.num_rows = 3000;
  params.function = ClassFunction::kF4;
  params.label_noise = 0.2;
  params.seed = 3;
  const data::Dataset train = GenerateClassification(params);
  params.seed = 4;
  const data::Dataset validation = GenerateClassification(params);

  CartOptions cart;
  cart.max_depth = 10;
  cart.min_leaf_size = 10;
  const DecisionTree tree = BuildCart(train, cart);
  const DecisionTree pruned = PruneReducedError(tree, validation);
  for (int64_t i = 0; i < validation.num_rows(); i += 17) {
    const int prediction = pruned.Predict(validation.Row(i));
    EXPECT_GE(prediction, 0);
    EXPECT_LT(prediction, 2);
  }
}

}  // namespace
}  // namespace focus::dt

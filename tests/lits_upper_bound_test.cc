#include <vector>

#include <gtest/gtest.h>

#include "core/lits_deviation.h"
#include "core/lits_upper_bound.h"
#include "datagen/quest_gen.h"
#include "itemsets/apriori.h"

namespace focus::core {
namespace {

using lits::Itemset;
using lits::LitsModel;

data::TransactionDb GenDb(uint64_t seed, int32_t num_patterns = 15,
                          double pattern_length = 3) {
  datagen::QuestParams params;
  params.num_transactions = 800;
  params.num_items = 60;
  params.num_patterns = num_patterns;
  params.avg_pattern_length = pattern_length;
  params.avg_transaction_length = 8;
  params.seed = seed;
  return datagen::GenerateQuest(params);
}

TEST(LitsUpperBoundTest, HandComputedExample) {
  LitsModel m1(0.2, 100, 4);
  m1.Add(Itemset({0}), 0.5);
  m1.Add(Itemset({1}), 0.4);
  LitsModel m2(0.2, 100, 4);
  m2.Add(Itemset({1}), 0.3);
  m2.Add(Itemset({2}), 0.25);
  // Terms: |0.5 - 0| + |0.4 - 0.3| + |0.25| = 0.85 (sum); 0.5 (max).
  EXPECT_NEAR(LitsUpperBound(m1, m2, AggregateKind::kSum), 0.85, 1e-12);
  EXPECT_NEAR(LitsUpperBound(m1, m2, AggregateKind::kMax), 0.5, 1e-12);
}

TEST(LitsUpperBoundTest, ZeroForIdenticalModels) {
  LitsModel m(0.1, 100, 4);
  m.Add(Itemset({0}), 0.5);
  m.Add(Itemset({0, 1}), 0.2);
  EXPECT_DOUBLE_EQ(LitsUpperBound(m, m, AggregateKind::kSum), 0.0);
}

TEST(LitsUpperBoundTest, Theorem42UpperBoundsTrueDeviation) {
  // delta*(M1,M2) >= delta_(f_a,g)(M1,M2) for g in {sum, max}, across
  // several generated dataset pairs (property sweep).
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const data::TransactionDb d1 = GenDb(seed);
    const data::TransactionDb d2 = GenDb(seed + 100, 20, 4);
    lits::AprioriOptions options;
    options.min_support = 0.02;
    const LitsModel m1 = lits::Apriori(d1, options);
    const LitsModel m2 = lits::Apriori(d2, options);
    for (const AggregateKind g : {AggregateKind::kSum, AggregateKind::kMax}) {
      DeviationFunction fn{AbsoluteDiff(), g};
      const double exact = LitsDeviation(m1, d1, m2, d2, fn);
      const double bound = LitsUpperBound(m1, m2, g);
      EXPECT_GE(bound, exact - 1e-12)
          << "seed " << seed << " g=" << ToString(g);
    }
  }
}

TEST(LitsUpperBoundTest, Theorem42TriangleInequality) {
  lits::AprioriOptions options;
  options.min_support = 0.02;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const data::TransactionDb da = GenDb(seed);
    const data::TransactionDb db = GenDb(seed + 50, 25, 4);
    const data::TransactionDb dc = GenDb(seed + 200, 10, 2);
    const LitsModel ma = lits::Apriori(da, options);
    const LitsModel mb = lits::Apriori(db, options);
    const LitsModel mc = lits::Apriori(dc, options);
    for (const AggregateKind g : {AggregateKind::kSum, AggregateKind::kMax}) {
      const double ab = LitsUpperBound(ma, mb, g);
      const double bc = LitsUpperBound(mb, mc, g);
      const double ac = LitsUpperBound(ma, mc, g);
      EXPECT_LE(ac, ab + bc + 1e-12) << "seed " << seed << " " << ToString(g);
      EXPECT_LE(ab, ac + bc + 1e-12);
      EXPECT_LE(bc, ab + ac + 1e-12);
    }
  }
}

TEST(LitsUpperBoundTest, SymmetricInArguments) {
  const data::TransactionDb d1 = GenDb(7);
  const data::TransactionDb d2 = GenDb(8);
  lits::AprioriOptions options;
  options.min_support = 0.03;
  const LitsModel m1 = lits::Apriori(d1, options);
  const LitsModel m2 = lits::Apriori(d2, options);
  EXPECT_NEAR(LitsUpperBound(m1, m2, AggregateKind::kSum),
              LitsUpperBound(m2, m1, AggregateKind::kSum), 1e-12);
}

TEST(LitsUpperBoundTest, EqualsExactWhenStructuresIdentical) {
  // When both models contain the same itemsets, delta* degenerates to the
  // exact deviation computed from the stored supports.
  LitsModel m1(0.1, 100, 4);
  m1.Add(Itemset({0}), 0.5);
  m1.Add(Itemset({1}), 0.4);
  LitsModel m2(0.1, 100, 4);
  m2.Add(Itemset({0}), 0.45);
  m2.Add(Itemset({1}), 0.35);
  EXPECT_NEAR(LitsUpperBound(m1, m2, AggregateKind::kSum), 0.1, 1e-12);
}

TEST(LitsUpperBoundTest, FoldOrderIsCanonicalAcrossInsertionOrders) {
  // Regression: the fold used to follow supports() hash-iteration order,
  // so two models with identical content but different insertion
  // histories could disagree in the last FP bits for g_sum (caught by
  // focus_analyze's nondet-iteration checker). Supports with spread
  // magnitudes make the sum rounding order-sensitive; the results must
  // be bit-identical, not merely close.
  const int kItemsets = 40;
  std::vector<std::pair<Itemset, double>> content;
  content.reserve(kItemsets);
  for (int i = 0; i < kItemsets; ++i) {
    // 1/3 scaled across ~12 binades: inexact mantissas at many scales.
    content.emplace_back(Itemset({i}),
                         (1.0 / 3.0) / static_cast<double>(1 << (i % 12)));
  }
  LitsModel forward(0.001, 1000, kItemsets);
  for (const auto& [itemset, support] : content) {
    forward.Add(itemset, support);
  }
  LitsModel reversed(0.001, 1000, kItemsets);
  for (auto it = content.rbegin(); it != content.rend(); ++it) {
    reversed.Add(it->first, it->second);
  }
  LitsModel other(0.001, 1000, kItemsets);
  other.Add(Itemset({0}), 0.125);
  for (const AggregateKind g : {AggregateKind::kSum, AggregateKind::kMax}) {
    EXPECT_EQ(LitsUpperBound(forward, other, g),
              LitsUpperBound(reversed, other, g));
    EXPECT_EQ(LitsUpperBound(other, forward, g),
              LitsUpperBound(other, reversed, g));
  }
}

}  // namespace
}  // namespace focus::core

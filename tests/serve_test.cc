// Tests for the serving layer: snapshot queue semantics, the mined-model
// LRU cache, the metrics registry/JSON export, and the MonitorService
// end-to-end (per-stream ordering, cross-stream concurrency, change-point
// detection on a shifted stream).

#include <gtest/gtest.h>

#include "common/mutex.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/functions.h"
#include "core/lits_deviation.h"
#include "core/monitor.h"
#include "data/vertical_index.h"
#include "datagen/quest_gen.h"
#include "itemsets/apriori.h"
#include "serve/metrics.h"
#include "serve/model_cache.h"
#include "serve/monitor_service.h"
#include "serve/snapshot_queue.h"

namespace focus::serve {
namespace {

data::TransactionDb QuestDb(uint64_t seed, uint64_t pattern_seed = 99) {
  datagen::QuestParams params;
  params.num_transactions = 400;
  params.num_items = 60;
  params.num_patterns = 100;
  params.avg_pattern_length = 4;
  params.avg_transaction_length = 8;
  params.seed = seed;
  params.pattern_seed = pattern_seed;
  return datagen::GenerateQuest(params);
}

Snapshot MakeSnapshot(const std::string& stream, int64_t sequence,
                      uint64_t seed, uint64_t pattern_seed = 99) {
  Snapshot snapshot;
  snapshot.stream = stream;
  snapshot.sequence = sequence;
  snapshot.source = "test";
  snapshot.db = QuestDb(seed, pattern_seed);
  return snapshot;
}

// ---------------------------------------------------------------- queue

TEST(SnapshotQueueTest, DeliversInFifoOrder) {
  SnapshotQueue queue(8);
  for (int i = 0; i < 5; ++i) {
    Snapshot s;
    s.stream = "a";
    s.sequence = i;
    s.db = data::TransactionDb(1);
    ASSERT_TRUE(queue.Push(std::move(s)));
  }
  for (int i = 0; i < 5; ++i) {
    auto popped = queue.Pop();
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(popped->sequence, i);
  }
}

TEST(SnapshotQueueTest, TryPushFailsWhenFull) {
  SnapshotQueue queue(2);
  Snapshot s;
  s.db = data::TransactionDb(1);
  EXPECT_TRUE(queue.TryPush(s));
  EXPECT_TRUE(queue.TryPush(s));
  EXPECT_FALSE(queue.TryPush(s));  // full
  EXPECT_EQ(queue.size(), 2u);
}

TEST(SnapshotQueueTest, PushBlocksUntilPopMakesRoom) {
  SnapshotQueue queue(1);
  Snapshot s;
  s.db = data::TransactionDb(1);
  ASSERT_TRUE(queue.Push(s));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    Snapshot t;
    t.sequence = 2;
    t.db = data::TransactionDb(1);
    queue.Push(std::move(t));
    second_pushed = true;
  });
  // The producer must be parked until a Pop frees a slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_TRUE(queue.Pop().has_value());
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(queue.Pop()->sequence, 2);
}

TEST(SnapshotQueueTest, CloseDrainsThenSignalsEnd) {
  SnapshotQueue queue(4);
  Snapshot s;
  s.sequence = 7;
  s.db = data::TransactionDb(1);
  ASSERT_TRUE(queue.Push(std::move(s)));
  queue.Close();
  Snapshot rejected;
  rejected.db = data::TransactionDb(1);
  EXPECT_FALSE(queue.Push(std::move(rejected)));  // closed to producers
  auto popped = queue.Pop();                      // queued item still delivered
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->sequence, 7);
  EXPECT_FALSE(queue.Pop().has_value());  // drained + closed => end
}

// Shutdown race: producers blocked in Push on a FULL queue while another
// thread calls Close. Every blocked Push must wake and return false (the
// snapshot is dropped, not enqueued past capacity), and the consumer must
// still drain exactly the pre-close items. Run under TSan in CI.
TEST(SnapshotQueueTest, CloseWakesProducersBlockedOnFullQueue) {
  SnapshotQueue queue(2);
  for (int i = 0; i < 2; ++i) {
    Snapshot s;
    s.sequence = i;
    s.db = data::TransactionDb(1);
    ASSERT_TRUE(queue.Push(std::move(s)));
  }

  constexpr int kProducers = 4;
  std::atomic<int> refused{0};
  std::atomic<int> started{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &refused, &started, p] {
      Snapshot s;
      s.sequence = 100 + p;
      s.db = data::TransactionDb(1);
      started.fetch_add(1);
      if (!queue.Push(std::move(s))) refused.fetch_add(1);
    });
  }
  // Give every producer a chance to park inside Push; none can proceed
  // while the queue is at capacity.
  while (started.load() < kProducers) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(queue.size(), 2u);

  queue.Close();
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(refused.load(), kProducers);

  // Only the two pre-close snapshots drain; then closed+empty = end.
  EXPECT_EQ(queue.Pop()->sequence, 0);
  EXPECT_EQ(queue.Pop()->sequence, 1);
  EXPECT_FALSE(queue.Pop().has_value());
}

// Close racing Pop on an EMPTY queue: a consumer parked in Pop must wake
// and observe end-of-stream rather than deadlock.
TEST(SnapshotQueueTest, CloseWakesConsumerBlockedOnEmptyQueue) {
  SnapshotQueue queue(2);
  std::atomic<bool> got_end{false};
  std::thread consumer([&queue, &got_end] {
    got_end.store(!queue.Pop().has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  consumer.join();
  EXPECT_TRUE(got_end.load());
}

// Producers, a consumer, and Close all racing: no snapshot may be lost or
// duplicated — every Push that returned true is Popped exactly once.
TEST(SnapshotQueueTest, CloseMidTrafficLosesNothingAccepted) {
  SnapshotQueue queue(3);
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 50;
  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &accepted, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        Snapshot s;
        s.sequence = p * kPerProducer + i;
        s.db = data::TransactionDb(1);
        if (queue.Push(std::move(s))) accepted.fetch_add(1);
      }
    });
  }
  std::atomic<int> popped{0};
  std::thread consumer([&queue, &popped] {
    while (queue.Pop().has_value()) popped.fetch_add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  for (std::thread& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(popped.load(), accepted.load());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(SnapshotQueueTest, TryPushForTimesOutOnAFullQueue) {
  SnapshotQueue queue(1);
  Snapshot s;
  s.db = data::TransactionDb(1);
  ASSERT_TRUE(queue.Push(s));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(queue.TryPushFor(s, std::chrono::milliseconds(30)));
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_GE(waited, std::chrono::milliseconds(25));  // it really waited
  EXPECT_FALSE(queue.closed());  // timeout, not closure
  EXPECT_EQ(queue.size(), 1u);

  // Zero timeout degenerates to TryPush.
  EXPECT_FALSE(queue.TryPushFor(s, std::chrono::milliseconds(0)));
}

TEST(SnapshotQueueTest, TryPushForSucceedsWhenRoomAppears) {
  SnapshotQueue queue(1);
  Snapshot s;
  s.sequence = 1;
  s.db = data::TransactionDb(1);
  ASSERT_TRUE(queue.Push(s));
  std::thread consumer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.Pop();
  });
  Snapshot t;
  t.sequence = 2;
  t.db = data::TransactionDb(1);
  EXPECT_TRUE(queue.TryPushFor(std::move(t), std::chrono::seconds(5)));
  consumer.join();
  EXPECT_EQ(queue.Pop()->sequence, 2);
}

TEST(SnapshotQueueTest, TryPushForRacingCloseNeverHangsOrLies) {
  // Producers spin TryPushFor while Close lands mid-traffic: every true
  // return must correspond to a popped snapshot, every false to nothing,
  // and nobody may hang past the bounded wait.
  SnapshotQueue queue(2);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 40;
  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &accepted] {
      for (int i = 0; i < kPerProducer; ++i) {
        Snapshot s;
        s.db = data::TransactionDb(1);
        if (queue.TryPushFor(std::move(s), std::chrono::milliseconds(5))) {
          accepted.fetch_add(1);
        }
      }
    });
  }
  std::atomic<int> popped{0};
  std::thread consumer([&queue, &popped] {
    while (queue.Pop().has_value()) popped.fetch_add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  queue.Close();
  for (std::thread& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(popped.load(), accepted.load());
  // Snapshot() (value-init), not Snapshot{}: list-init of the aggregate
  // trips GCC's explicit-constructor warning on the TransactionDb member.
  EXPECT_FALSE(queue.TryPushFor(Snapshot(), std::chrono::milliseconds(1)));
  EXPECT_TRUE(queue.closed());
}

// ------------------------------------------------------------ model cache

TEST(ModelCacheTest, ContentHashIsContentBased) {
  const data::TransactionDb a = QuestDb(1);
  const data::TransactionDb b = QuestDb(1);  // same content, fresh object
  const data::TransactionDb c = QuestDb(2);
  EXPECT_EQ(TransactionDbContentHash(a), TransactionDbContentHash(b));
  EXPECT_NE(TransactionDbContentHash(a), TransactionDbContentHash(c));
}

TEST(ModelCacheTest, HitsOnRepeatedSnapshotMissesOnNew) {
  lits::AprioriOptions options;
  options.min_support = 0.05;
  ModelCache cache(4, options);
  bool hit = true;
  const auto first = cache.GetOrMine(QuestDb(1), &hit);
  EXPECT_FALSE(hit);
  const auto again = cache.GetOrMine(QuestDb(1), &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), again.get());  // same cached object
  cache.GetOrMine(QuestDb(2), &hit);
  EXPECT_FALSE(hit);
  const ModelCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ModelCacheTest, EvictsLeastRecentlyUsed) {
  lits::AprioriOptions options;
  options.min_support = 0.05;
  ModelCache cache(2, options);
  cache.GetOrMine(QuestDb(1));
  cache.GetOrMine(QuestDb(2));
  cache.GetOrMine(QuestDb(1));  // promote db1; db2 is now LRU
  cache.GetOrMine(QuestDb(3));  // evicts db2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  bool hit = false;
  cache.GetOrMine(QuestDb(1), &hit);
  EXPECT_TRUE(hit);  // survivor
  cache.GetOrMine(QuestDb(2), &hit);
  EXPECT_FALSE(hit);  // was evicted
}

TEST(ModelCacheTest, CachedModelMatchesDirectMining) {
  lits::AprioriOptions options;
  options.min_support = 0.05;
  ModelCache cache(2, options);
  const data::TransactionDb db = QuestDb(5);
  const auto cached = cache.GetOrMine(db);
  const lits::LitsModel direct = lits::Apriori(db, options);
  ASSERT_EQ(cached->size(), direct.size());
  for (const lits::Itemset& itemset : direct.StructuralComponent()) {
    EXPECT_DOUBLE_EQ(cached->SupportOr(itemset, -1.0),
                     direct.SupportOr(itemset, -1.0));
  }
}

TEST(ModelCacheTest, LookupMinedResolvesOnlyCachedHashes) {
  lits::AprioriOptions options;
  options.min_support = 0.05;
  ModelCache cache(2, options);
  const data::TransactionDb db = QuestDb(1);
  const MinedSnapshot mined = cache.GetOrMineIndexed(db);
  const uint64_t hash = TransactionDbContentHash(db);

  const auto found = cache.LookupMined(hash);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->model.get(), mined.model.get());
  EXPECT_EQ(found->index.get(), mined.index.get());
  EXPECT_FALSE(cache.LookupMined(hash ^ 1).has_value());

  // Lookup promotes: after touching db1, inserting two more evicts db2,
  // not db1.
  cache.GetOrMine(QuestDb(2));
  ASSERT_TRUE(cache.LookupMined(hash).has_value());
  cache.GetOrMine(QuestDb(3));
  EXPECT_TRUE(cache.LookupMined(hash).has_value());
  EXPECT_FALSE(
      cache.LookupMined(TransactionDbContentHash(QuestDb(2))).has_value());
}

TEST(ModelCacheTest, SurfacesCountersThroughMetricsRegistry) {
  lits::AprioriOptions options;
  options.min_support = 0.05;
  MetricsRegistry registry;
  ModelCache cache(1, options, &registry);
  cache.GetOrMine(QuestDb(1));  // miss
  cache.GetOrMine(QuestDb(1));  // hit
  cache.GetOrMine(QuestDb(2));  // miss + evicts db1
  EXPECT_EQ(registry.GetCounter("cache_hits").Value(), 1);
  EXPECT_EQ(registry.GetCounter("cache_misses").Value(), 2);
  EXPECT_EQ(registry.GetCounter("cache_evictions").Value(), 1);
  // The registry mirrors the cache's own stats exactly.
  const ModelCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.evictions, 1);
}

// --------------------------------------------------------------- metrics

TEST(MetricsTest, CountersAndGauges) {
  MetricsRegistry registry;
  registry.GetCounter("snapshots").Increment();
  registry.GetCounter("snapshots").Increment(4);
  registry.GetGauge("depth").Set(2.5);
  EXPECT_EQ(registry.GetCounter("snapshots").Value(), 5);
  EXPECT_DOUBLE_EQ(registry.GetGauge("depth").Value(), 2.5);
  // Same name must return the same object.
  EXPECT_EQ(&registry.GetCounter("snapshots"), &registry.GetCounter("snapshots"));
}

TEST(MetricsTest, HistogramStatsAndQuantiles) {
  Histogram histogram({1.0, 10.0, 100.0});
  for (double v : {0.5, 2.0, 3.0, 20.0}) histogram.Observe(v);
  EXPECT_EQ(histogram.count(), 4);
  EXPECT_DOUBLE_EQ(histogram.sum(), 25.5);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.5);
  EXPECT_DOUBLE_EQ(histogram.max(), 20.0);
  const double p50 = histogram.Quantile(0.5);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 10.0);  // median falls in the (1,10] bucket
  EXPECT_LE(histogram.Quantile(0.99), 100.0);
}

TEST(MetricsTest, EmptyHistogramIsSafe) {
  Histogram histogram({1.0});
  EXPECT_EQ(histogram.count(), 0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 0.0);
}

TEST(MetricsTest, JsonExportIsWellFormed) {
  MetricsRegistry registry;
  registry.GetCounter("a").Increment(3);
  registry.GetGauge("b").Set(1.5);
  registry.GetHistogram("c").Observe(2.0);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"unix_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"counters\":{\"a\":3}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"b\":1.5}"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{\"c\":{"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsTest, JsonHelpers) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonNumber(1.5), "1.5");
  EXPECT_EQ(JsonNumber(0.0), "0");
  // Shortest representation must round-trip.
  EXPECT_EQ(std::stod(JsonNumber(0.1)), 0.1);
}

TEST(MetricsTest, PrometheusTextExposition) {
  MetricsRegistry registry;
  registry.GetCounter("snapshots_processed").Increment(7);
  registry.GetGauge("queue_depth").Set(3);
  Histogram& histogram = registry.GetHistogram("latency_ms");
  // Defaults span 0.1ms..~100s; observe into known buckets.
  histogram.Observe(0.05);
  histogram.Observe(50.0);
  const std::string text = registry.ToPrometheusText();

  EXPECT_NE(text.find("# TYPE focus_snapshots_processed_total counter\n"
                      "focus_snapshots_processed_total 7\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE focus_queue_depth gauge\n"
                      "focus_queue_depth 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE focus_latency_ms histogram"),
            std::string::npos);
  // Cumulative buckets end at +Inf == _count, and _sum matches.
  EXPECT_NE(text.find("focus_latency_ms_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("focus_latency_ms_sum 50.05"), std::string::npos);
  EXPECT_NE(text.find("focus_latency_ms_count 2"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');

  // Bucket counts are cumulative: every le series is >= the previous one.
  int64_t previous = -1;
  size_t at = 0;
  int buckets = 0;
  while ((at = text.find("focus_latency_ms_bucket{le=", at)) !=
         std::string::npos) {
    const size_t space = text.find("} ", at);
    const int64_t count = std::stoll(text.substr(space + 2));
    EXPECT_GE(count, previous);
    previous = count;
    ++buckets;
    ++at;
  }
  EXPECT_GT(buckets, 2);
}

TEST(MetricsTest, PrometheusNameSanitization) {
  EXPECT_EQ(PrometheusName("inspect_latency_ms"), "inspect_latency_ms");
  EXPECT_EQ(PrometheusName("weird-name.with spaces"),
            "weird_name_with_spaces");
  EXPECT_EQ(PrometheusName("9starts_with_digit"), "_9starts_with_digit");
  MetricsRegistry registry;
  registry.GetCounter("dotted.counter").Increment();
  EXPECT_NE(registry.ToPrometheusText().find("focus_dotted_counter_total 1"),
            std::string::npos);
}

// --------------------------------------------------------------- service

MonitorServiceOptions SmallServiceOptions() {
  MonitorServiceOptions options;
  options.monitor.apriori.min_support = 0.05;
  options.monitor.apriori.max_itemset_size = 2;
  options.monitor.calibration_replicates = 3;
  options.monitor.significance.num_replicates = 5;
  options.cusum.warmup = 4;
  options.cusum.decision_threshold = 4.0;
  options.num_threads = 2;
  options.queue_capacity = 8;
  options.model_cache_capacity = 8;
  return options;
}

TEST(MonitorServiceTest, ProcessesStreamInSubmissionOrder) {
  MetricsRegistry metrics;
  MonitorService service(SmallServiceOptions(), &metrics);
  service.AddStream("s", QuestDb(1000));
  EXPECT_TRUE(service.HasStream("s"));
  EXPECT_FALSE(service.HasStream("other"));

  std::vector<int64_t> order;
  service.SetEventSink(
      [&order](const StreamEvent& event) { order.push_back(event.sequence); });
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(service.Submit(MakeSnapshot("s", i, 2000 + i)));
  }
  service.Flush();
  ASSERT_EQ(order.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(service.processed(), 6);
  EXPECT_EQ(metrics.GetCounter("snapshots_processed").Value(), 6);
}

TEST(MonitorServiceTest, UnknownStreamIsRejectedNotProcessed) {
  MetricsRegistry metrics;
  MonitorService service(SmallServiceOptions(), &metrics);
  service.AddStream("known", QuestDb(1000));
  std::atomic<int> events{0};
  service.SetEventSink([&events](const StreamEvent&) { ++events; });
  EXPECT_TRUE(service.Submit(MakeSnapshot("unknown", 0, 1)));
  EXPECT_TRUE(service.Submit(MakeSnapshot("known", 0, 2)));
  service.Flush();
  EXPECT_EQ(events.load(), 1);
  EXPECT_EQ(metrics.GetCounter("snapshots_rejected").Value(), 1);
  EXPECT_EQ(service.processed(), 1);
}

TEST(MonitorServiceTest, RepeatedSnapshotHitsModelCache) {
  MetricsRegistry metrics;
  MonitorService service(SmallServiceOptions(), &metrics);
  service.AddStream("s", QuestDb(1000));
  bool saw_cache_hit = false;
  service.SetEventSink([&saw_cache_hit](const StreamEvent& event) {
    if (event.cache_hit) saw_cache_hit = true;
  });
  // The same snapshot content submitted twice: second mine must be skipped.
  ASSERT_TRUE(service.Submit(MakeSnapshot("s", 0, 77)));
  ASSERT_TRUE(service.Submit(MakeSnapshot("s", 1, 77)));
  service.Flush();
  EXPECT_TRUE(saw_cache_hit);
  EXPECT_GE(service.model_cache().stats().hits, 1);
  EXPECT_EQ(metrics.GetCounter("cache_hits").Value(), 1);
}

TEST(MonitorServiceTest, TwoStreamsProcessIndependently) {
  MetricsRegistry metrics;
  MonitorService service(SmallServiceOptions(), &metrics);
  service.AddStream("a", QuestDb(1000));
  service.AddStream("b", QuestDb(1001, /*pattern_seed=*/123));
  std::vector<std::string> seen_a, seen_b;
  common::Mutex mutex;
  service.SetEventSink([&](const StreamEvent& event) {
    common::MutexLock lock(&mutex);
    (event.stream == "a" ? seen_a : seen_b).push_back(event.stream);
  });
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.Submit(MakeSnapshot("a", i, 3000 + i)));
    ASSERT_TRUE(
        service.Submit(MakeSnapshot("b", i, 4000 + i, /*pattern_seed=*/123)));
  }
  service.Flush();
  EXPECT_EQ(seen_a.size(), 3u);
  EXPECT_EQ(seen_b.size(), 3u);
}

TEST(MonitorServiceTest, RegimeShiftTripsCusumChangePoint) {
  MonitorServiceOptions options = SmallServiceOptions();
  options.cusum.warmup = 5;
  options.cusum.decision_threshold = 4.0;
  MetricsRegistry metrics;
  MonitorService service(options, &metrics);
  // Reference and the first snapshots share pattern_seed 99: same
  // generating process, independent samples.
  service.AddStream("s", QuestDb(1000));
  bool change_point = false;
  service.SetEventSink([&change_point](const StreamEvent& event) {
    if (event.change_point) change_point = true;
  });
  int64_t seq = 0;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(service.Submit(MakeSnapshot("s", seq++, 5000 + i)));
  }
  // Regime shift: a different pattern table => different process.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        service.Submit(MakeSnapshot("s", seq++, 6000 + i, /*pattern_seed=*/7)));
  }
  service.Flush();
  EXPECT_TRUE(change_point);
  EXPECT_GE(metrics.GetCounter("change_points").Value(), 1);
}

TEST(MonitorServiceTest, SubmitAfterShutdownIsRefused) {
  MonitorService service(SmallServiceOptions(), /*metrics=*/nullptr);
  service.AddStream("s", QuestDb(1000));
  service.Shutdown();
  EXPECT_FALSE(service.Submit(MakeSnapshot("s", 0, 1)));
  service.Shutdown();  // idempotent
}

TEST(MonitorServiceTest, TrySubmitForShedsUnderSaturationThenRecovers) {
  MonitorServiceOptions options = SmallServiceOptions();
  options.num_threads = 1;
  options.queue_capacity = 1;  // in-flight bound: 1
  MetricsRegistry metrics;
  MonitorService service(options, &metrics);
  service.AddStream("s", QuestDb(1000));

  // The event sink runs on the worker BEFORE the snapshot stops counting
  // as in flight — blocking it holds the service at capacity
  // deterministically.
  common::Mutex gate_mutex;
  common::CondVar gate_cv;
  bool gate_open = false;
  std::atomic<int> events{0};
  service.SetEventSink([&](const StreamEvent&) {
    events.fetch_add(1);
    common::MutexLock lock(&gate_mutex);
    gate_cv.Wait(gate_mutex, [&] { return gate_open; });
  });

  ASSERT_EQ(service.TrySubmitFor(MakeSnapshot("s", 0, 7000),
                                 std::chrono::milliseconds(200)),
            SubmitResult::kAccepted);
  while (events.load() == 0) {  // the worker now sits inside the sink
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(service.TrySubmitFor(MakeSnapshot("s", 1, 7001),
                                 std::chrono::milliseconds(5)),
            SubmitResult::kOverloaded);
  EXPECT_EQ(metrics.GetCounter("snapshots_shed").Value(), 1);

  {
    common::MutexLock lock(&gate_mutex);
    gate_open = true;
  }
  gate_cv.NotifyAll();
  service.Flush();
  EXPECT_EQ(service.processed(), 1);  // the shed snapshot was dropped clean

  // After the backlog clears there is room again.
  EXPECT_EQ(service.TrySubmitFor(MakeSnapshot("s", 1, 7002),
                                 std::chrono::seconds(5)),
            SubmitResult::kAccepted);
  service.Flush();
  EXPECT_EQ(service.processed(), 2);

  service.Shutdown();
  EXPECT_EQ(service.TrySubmitFor(MakeSnapshot("s", 99, 8001),
                                 std::chrono::milliseconds(1)),
            SubmitResult::kShutdown);
}

TEST(MonitorServiceTest, StatusAndQueryDeviationTrackLatestSnapshot) {
  MonitorService service(SmallServiceOptions(), /*metrics=*/nullptr);
  service.AddStream("s", QuestDb(1000));

  EXPECT_FALSE(service.GetStreamStatus("ghost").has_value());
  auto empty = service.GetStreamStatus("s");
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(empty->processed, 0);
  EXPECT_FALSE(empty->has_snapshot);

  // Before any snapshot, QueryDeviation reports status but no deviation.
  core::DeviationFunction fn;
  fn.f = core::AbsoluteDiff();
  fn.g = core::AggregateKind::kSum;
  auto no_data = service.QueryDeviation("s", fn);
  ASSERT_TRUE(no_data.has_value());
  EXPECT_FALSE(no_data->has_deviation);

  ASSERT_TRUE(service.Submit(MakeSnapshot("s", 0, 42)));
  ASSERT_TRUE(service.Submit(MakeSnapshot("s", 1, 43)));
  service.Flush();

  const auto status = service.GetStreamStatus("s");
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->processed, 2);
  EXPECT_TRUE(status->has_snapshot);
  EXPECT_EQ(status->sequence, 1);
  EXPECT_GT(status->num_transactions, 0);

  // The query recomputes from the CACHED model+index of snapshot 43 and
  // must agree with a direct vertical LitsDeviation over the same data.
  const auto result = service.QueryDeviation("s", fn);
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->has_deviation);
  core::LitsChangeMonitor direct(QuestDb(1000),
                                 SmallServiceOptions().monitor);
  const data::TransactionDb latest = QuestDb(43);
  const data::VerticalIndex latest_index(latest);
  const lits::LitsModel latest_model = lits::Apriori(
      latest, SmallServiceOptions().monitor.apriori, &latest_index);
  EXPECT_DOUBLE_EQ(result->deviation,
                   core::LitsDeviation(direct.reference_model(),
                                       direct.reference_index(), latest_model,
                                       latest_index, fn));

  // Different (f,g) choices answer from the same cached state.
  core::DeviationFunction scaled_max;
  scaled_max.f = core::ScaledDiff();
  scaled_max.g = core::AggregateKind::kMax;
  const auto other = service.QueryDeviation("s", scaled_max);
  ASSERT_TRUE(other.has_value());
  EXPECT_TRUE(other->has_deviation);
}

TEST(StreamEventTest, ToJsonContainsCoreFields) {
  StreamEvent event;
  event.stream = "payments";
  event.sequence = 12;
  event.source = "spool/x.txns";
  event.num_transactions = 400;
  event.report.upper_bound = 0.25;
  event.report.screened_out = true;
  event.cusum = 1.5;
  event.cache_hit = true;
  const std::string json = event.ToJson();
  EXPECT_NE(json.find("\"type\":\"event\""), std::string::npos);
  EXPECT_NE(json.find("\"stream\":\"payments\""), std::string::npos);
  EXPECT_NE(json.find("\"seq\":12"), std::string::npos);
  EXPECT_NE(json.find("\"delta_star\":0.25"), std::string::npos);
  EXPECT_NE(json.find("\"screened_out\":true"), std::string::npos);
  EXPECT_NE(json.find("\"cusum\":1.5"), std::string::npos);
  // Screened-out events carry no exact deviation.
  EXPECT_EQ(json.find("\"delta\":"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace focus::serve

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include "common/mutex.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace focus::common {
namespace {

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&executed]() { ++executed; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(executed.load(), 100);
}

TEST(ThreadPoolTest, SubmitReturnsTaskValue) {
  ThreadPool pool(2);
  std::future<int> future = pool.Submit([]() { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  std::future<void> future =
      pool.Submit([]() { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&executed]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++executed;
      });
    }
    // Destructor must finish everything already queued.
  }
  EXPECT_EQ(executed.load(), 32);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(0, 1000, [&](int /*shard*/, int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) ++touched[i];
  });
  for (const auto& count : touched) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, ParallelForShardBoundsAreContiguous) {
  ThreadPool pool(3);
  common::Mutex mutex;
  std::vector<std::pair<int64_t, int64_t>> ranges;
  pool.ParallelFor(10, 107, 5, [&](int /*shard*/, int64_t begin, int64_t end) {
    common::MutexLock lock(&mutex);
    ranges.emplace_back(begin, end);
  });
  std::sort(ranges.begin(), ranges.end());
  ASSERT_EQ(ranges.size(), 5u);
  EXPECT_EQ(ranges.front().first, 10);
  EXPECT_EQ(ranges.back().second, 107);
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i - 1].second, ranges[i].first);
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoOp) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](int, int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ParallelForMoreShardsThanElements) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> touched(3);
  pool.ParallelFor(0, 3, 8, [&](int /*shard*/, int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) ++touched[i];
  });
  for (const auto& count : touched) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, ParallelForRethrowsBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 4,
                       [](int shard, int64_t, int64_t) {
                         if (shard == 2) throw std::runtime_error("shard 2");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForWorksWithSingleThread) {
  ThreadPool pool(1);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(1, 101, [&](int, int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 5050);
}

// The caller participates in shard execution, so ParallelFor invoked from
// INSIDE a pool task cannot deadlock even when every worker is busy.
TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::vector<std::future<int64_t>> futures;
  for (int task = 0; task < 4; ++task) {
    futures.push_back(pool.Submit([&pool]() {
      std::atomic<int64_t> sum{0};
      pool.ParallelFor(0, 1000, [&](int, int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) sum += i;
      });
      return sum.load();
    }));
  }
  for (auto& future : futures) EXPECT_EQ(future.get(), 499500);
}

}  // namespace
}  // namespace focus::common

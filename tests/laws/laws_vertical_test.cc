// Differential oracles for the vertical (TID-bitmap) counting path: on
// every generated workload the vertical kernels must be BIT-IDENTICAL to
// the horizontal scan — integer counts equal, relative supports equal as
// doubles (same integers divided by the same |D|), and the
// parallel-over-itemsets variant equal for every pool size. The same
// contract lifted through the stack: Apriori mining and the GCR-extension
// deviation must not change when handed a prebuilt index.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/lits_deviation.h"
#include "data/vertical_index.h"
#include "itemsets/apriori.h"
#include "itemsets/support_counter.h"
#include "proptest/generators.h"
#include "proptest/proptest.h"

namespace focus::core {
namespace {

using proptest::Check;
using proptest::PropResult;
using proptest::Rng;

constexpr int kPoolSizes[] = {1, 2, 4, 8};

TEST(LawsVertical, SupportCountsIdenticalToHorizontalAndAllPoolSizes) {
  EXPECT_TRUE(Check<proptest::LitsWorkload>(
      "vertical/support-counts-identical", proptest::LitsWorkloadDomain(),
      [](const proptest::LitsWorkload& workload) {
        const data::TransactionDb db = proptest::MaterializeDb(workload);
        const data::VerticalIndex index(db);

        Rng itemset_rng(workload.quest.seed + 211);
        std::vector<lits::Itemset> itemsets;
        const int count = static_cast<int>(itemset_rng.IntIn(0, 30));
        for (int i = 0; i < count; ++i) {
          itemsets.push_back(proptest::GenItemset(
              itemset_rng, workload.quest.num_items, 5));
        }
        const lits::SupportCounter counter(itemsets,
                                           workload.quest.num_items);
        const std::vector<int64_t> horizontal = counter.CountAbsolute(db);
        const std::vector<double> horizontal_rel = counter.CountRelative(db);

        if (counter.CountAbsolute(index) != horizontal)
          return PropResult::Fail("vertical absolute counts differ");
        if (counter.CountRelative(index) != horizontal_rel)
          return PropResult::Fail("vertical relative supports differ");
        for (const int threads : kPoolSizes) {
          common::ThreadPool pool(threads);
          if (counter.CountAbsoluteParallel(index, pool) != horizontal)
            return PropResult::Fail(
                "vertical-parallel absolute counts differ with " +
                std::to_string(threads) + " threads");
          if (counter.CountRelativeParallel(index, pool) != horizontal_rel)
            return PropResult::Fail(
                "vertical-parallel relative supports differ with " +
                std::to_string(threads) + " threads");
        }
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(10)));
}

TEST(LawsVertical, AprioriWithIndexMinesTheSameModel) {
  EXPECT_TRUE(Check<proptest::LitsWorkload>(
      "vertical/apriori-index-identical", proptest::LitsWorkloadDomain(),
      [](const proptest::LitsWorkload& workload) {
        const data::TransactionDb db = proptest::MaterializeDb(workload);
        const data::VerticalIndex index(db);
        const lits::LitsModel plain = lits::Apriori(db, workload.apriori);
        const lits::LitsModel indexed =
            lits::Apriori(db, workload.apriori, &index);
        if (indexed.size() != plain.size())
          return PropResult::Fail("indexed model has different size");
        for (const auto& [itemset, support] : plain.supports()) {
          const auto it = indexed.supports().find(itemset);
          if (it == indexed.supports().end())
            return PropResult::Fail("indexed model missing " +
                                    itemset.ToString());
          if (it->second != support)  // bit-identical doubles
            return PropResult::Fail("support differs for " +
                                    itemset.ToString());
        }
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(10)));
}

TEST(LawsVertical, LitsDeviationIdenticalWithPrebuiltIndexes) {
  EXPECT_TRUE(Check<proptest::LitsPair>(
      "vertical/deviation-index-identical", proptest::LitsPairDomain(),
      [](const proptest::LitsPair& pair) {
        const data::TransactionDb da = proptest::MaterializeDb(pair.a);
        const data::TransactionDb db = proptest::MaterializeDb(pair.b);
        const lits::LitsModel ma = proptest::Mine(pair.a, da);
        const lits::LitsModel mb = proptest::Mine(pair.b, db);
        const data::VerticalIndex ia(da);
        const data::VerticalIndex ib(db);

        const DeviationFunction fn;  // (f_a, g_sum)
        const double horizontal = LitsDeviation(ma, da, mb, db, fn);
        const double vertical = LitsDeviation(ma, ia, mb, ib, fn);
        if (vertical != horizontal)  // bit-identical, not approximately
          return PropResult::Fail("indexed deviation differs");

        const std::vector<lits::Itemset> gcr = LitsGcr(ma, mb);
        if (LitsDeviationOverRegions(gcr, ia, ib, fn) !=
            LitsDeviationOverRegions(gcr, da, db, fn))
          return PropResult::Fail("indexed over-regions deviation differs");
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(8)));
}

}  // namespace
}  // namespace focus::core

// Differential oracles for the io layer: save → load must be the
// identity for every substrate and model family (all doubles are written
// with setprecision(17), so equality below is EXACT), and loaders fed
// randomly mutated bytes must reject or load cleanly — never crash.
// Round-trip fidelity is what lets focus_monitord compare a freshly
// mined model against a reference persisted by an earlier process.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dt_deviation.h"
#include "core/lits_upper_bound.h"
#include "io/data_io.h"
#include "io/model_io.h"
#include "proptest/generators.h"
#include "proptest/proptest.h"
#include "serve/model_cache.h"

namespace focus::io {
namespace {

using proptest::Check;
using proptest::PropResult;
using proptest::Rng;

bool SameDb(const data::TransactionDb& x, const data::TransactionDb& y) {
  if (x.num_items() != y.num_items()) return false;
  if (x.num_transactions() != y.num_transactions()) return false;
  for (int64_t t = 0; t < x.num_transactions(); ++t) {
    const auto tx = x.Transaction(t);
    const auto ty = y.Transaction(t);
    if (!std::equal(tx.begin(), tx.end(), ty.begin(), ty.end())) return false;
  }
  return true;
}

TEST(DiffRoundtrip, TransactionDbSaveLoadIsIdentity) {
  EXPECT_TRUE(Check<proptest::LitsWorkload>(
      "diff/txndb-roundtrip", proptest::LitsWorkloadDomain(),
      [](const proptest::LitsWorkload& workload) {
        const data::TransactionDb db = proptest::MaterializeDb(workload);
        std::stringstream buffer;
        SaveTransactionDb(db, buffer);
        const std::optional<data::TransactionDb> loaded =
            LoadTransactionDb(buffer);
        if (!loaded.has_value())
          return PropResult::Fail("loader rejected its own output");
        if (!SameDb(db, *loaded))
          return PropResult::Fail("loaded db differs from the original");
        if (serve::TransactionDbContentHash(db) !=
            serve::TransactionDbContentHash(*loaded))
          return PropResult::Fail("content hash changed across round-trip");
        return PropResult::Ok();
      }));
}

TEST(DiffRoundtrip, DatasetSaveLoadIsIdentity) {
  EXPECT_TRUE(Check<proptest::DtWorkload>(
      "diff/dataset-roundtrip", proptest::DtWorkloadDomain(),
      [](const proptest::DtWorkload& workload) {
        const data::Dataset dataset = proptest::MaterializeDataset(workload);
        std::stringstream buffer;
        SaveDataset(dataset, buffer);
        const std::optional<data::Dataset> loaded = LoadDataset(buffer);
        if (!loaded.has_value())
          return PropResult::Fail("loader rejected its own output");
        if (loaded->num_rows() != dataset.num_rows() ||
            loaded->num_attributes() != dataset.num_attributes() ||
            loaded->schema().num_classes() != dataset.schema().num_classes())
          return PropResult::Fail("shape changed across round-trip");
        for (int64_t row = 0; row < dataset.num_rows(); ++row) {
          if (loaded->Label(row) != dataset.Label(row))
            return PropResult::Fail("label changed across round-trip");
          for (int attr = 0; attr < dataset.num_attributes(); ++attr) {
            // setprecision(17) makes this exact, not approximate.
            if (loaded->At(row, attr) != dataset.At(row, attr))
              return PropResult::Fail("value changed across round-trip");
          }
        }
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(10)));
}

TEST(DiffRoundtrip, LitsModelSaveLoadPreservesDeviations) {
  EXPECT_TRUE(Check<proptest::LitsWorkload>(
      "diff/lits-model-roundtrip", proptest::LitsWorkloadDomain(),
      [](const proptest::LitsWorkload& workload) {
        const data::TransactionDb db = proptest::MaterializeDb(workload);
        const lits::LitsModel model = proptest::Mine(workload, db);
        std::stringstream buffer;
        SaveLitsModel(model, buffer);
        const std::optional<lits::LitsModel> loaded = LoadLitsModel(buffer);
        if (!loaded.has_value()) {
          // Empty models (no frequent itemsets) still carry a valid header
          // and must round-trip too.
          return PropResult::Fail("loader rejected its own output");
        }
        if (loaded->size() != model.size() ||
            loaded->num_items() != model.num_items() ||
            loaded->num_transactions() != model.num_transactions() ||
            loaded->min_support() != model.min_support())
          return PropResult::Fail("model header changed across round-trip");
        for (const lits::Itemset& itemset : model.StructuralComponent()) {
          if (loaded->SupportOr(itemset, -1.0) !=
              model.SupportOr(itemset, -1.0))
            return PropResult::Fail("support changed across round-trip");
        }
        // delta*(original, loaded) = 0: equal models are deviation-free
        // without any dataset scan (Theorem 4.2's self-distance axiom).
        for (const core::AggregateKind g :
             {core::AggregateKind::kSum, core::AggregateKind::kMax}) {
          if (core::LitsUpperBound(model, *loaded, g) != 0.0)
            return PropResult::Fail("delta*(M, load(save(M))) != 0");
        }
        return PropResult::Ok();
      }));
}

TEST(DiffRoundtrip, DecisionTreeSaveLoadPreservesRouting) {
  EXPECT_TRUE(Check<proptest::DtPair>(
      "diff/dt-tree-roundtrip", proptest::DtPairDomain(),
      [](const proptest::DtPair& pair) {
        const data::Dataset d1 = proptest::MaterializeDataset(pair.a);
        const data::Dataset d2 = proptest::MaterializeDataset(pair.b);
        const dt::DecisionTree tree = proptest::BuildTree(pair.a, d1);
        std::stringstream buffer;
        SaveDecisionTree(tree, buffer);
        const std::optional<dt::DecisionTree> loaded =
            LoadDecisionTree(buffer);
        if (!loaded.has_value())
          return PropResult::Fail("loader rejected its own output");
        if (loaded->num_nodes() != tree.num_nodes() ||
            loaded->num_leaves() != tree.num_leaves())
          return PropResult::Fail("tree shape changed across round-trip");
        // The loaded tree must route every tuple of an UNRELATED dataset
        // exactly as the original: measures over d2 are bit-identical.
        if (core::DtMeasuresOverTree(*loaded, d2) !=
            core::DtMeasuresOverTree(tree, d2))
          return PropResult::Fail("routing changed across round-trip");
        // And the derived 2-component models are deviation-free twins.
        const core::DtModel m(tree, d1);
        const core::DtModel m_loaded(*loaded, d1);
        core::DtDeviationOptions options;
        const double dev = core::DtDeviation(m, d1, m_loaded, d1, options);
        if (dev != 0.0)
          return PropResult::Fail("deviation(M, load(save(M))) != 0");
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(8)));
}

// Flip/insert/delete random bytes in a valid serialized artifact and run
// the loader. It must never crash; when it still accepts the input, a
// second save→load must be stable (load is a retraction: load∘save∘load
// = load).
TEST(DiffRoundtrip, LoadersSurviveRandomByteMutations) {
  EXPECT_TRUE(Check<proptest::LitsWorkload>(
      "diff/loader-mutation-robustness", proptest::LitsWorkloadDomain(),
      [](const proptest::LitsWorkload& workload) {
        const data::TransactionDb db = proptest::MaterializeDb(workload);
        const lits::LitsModel model = proptest::Mine(workload, db);
        std::stringstream db_bytes;
        SaveTransactionDb(db, db_bytes);
        std::stringstream model_bytes;
        SaveLitsModel(model, model_bytes);

        Rng mutate_rng(workload.quest.seed * 31 + 7);
        for (const std::string& pristine :
             {db_bytes.str(), model_bytes.str()}) {
          for (int round = 0; round < 8; ++round) {
            std::string bytes = pristine;
            const int edits = static_cast<int>(mutate_rng.IntIn(1, 4));
            for (int e = 0; e < edits && !bytes.empty(); ++e) {
              const size_t pos = static_cast<size_t>(
                  mutate_rng.IntIn(0, static_cast<int64_t>(bytes.size()) - 1));
              switch (mutate_rng.IntIn(0, 2)) {
                case 0:
                  bytes[pos] = static_cast<char>(mutate_rng.IntIn(0, 255));
                  break;
                case 1:
                  bytes.erase(pos, 1);
                  break;
                default:
                  bytes.insert(pos, 1,
                               static_cast<char>(mutate_rng.IntIn(32, 126)));
              }
            }
            std::istringstream mutated(bytes);
            if (pristine == db_bytes.str()) {
              const auto result = LoadTransactionDb(mutated);
              if (result.has_value()) {
                std::stringstream resaved;
                SaveTransactionDb(*result, resaved);
                const auto again = LoadTransactionDb(resaved);
                if (!again.has_value() || !SameDb(*result, *again))
                  return PropResult::Fail("accepted mutant is not stable");
              }
            } else {
              const auto result = LoadLitsModel(mutated);
              if (result.has_value()) {
                std::stringstream resaved;
                SaveLitsModel(*result, resaved);
                if (!LoadLitsModel(resaved).has_value())
                  return PropResult::Fail("accepted mutant is not stable");
              }
            }
          }
        }
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(10)));
}

}  // namespace
}  // namespace focus::io

// Container-algebra laws for data::RoaringIndex on generated workloads.
// Three obligations the hybrid containers must honor no matter which
// representation (array / bitmap / run) each chunk promoted to:
//   1. Round-trip: the TID set materialized from the containers equals
//      the set observable in the raw database, and survives save→load
//      unchanged (promotion and demotion lose nothing).
//   2. Commutativity: pairwise intersect-count is symmetric even though
//      the implementation dispatches on an (ordered) container-type pair.
//   3. Cardinality: every k-way intersect-count equals the size of the
//      materialized intersection of the per-item TID sets.

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/roaring_index.h"
#include "data/transaction_db.h"
#include "proptest/generators.h"
#include "proptest/proptest.h"

namespace focus::data {
namespace {

using proptest::Check;
using proptest::PropResult;
using proptest::Rng;

std::vector<uint32_t> ReferenceTids(const TransactionDb& db, int32_t item) {
  std::vector<uint32_t> tids;
  for (int64_t t = 0; t < db.num_transactions(); ++t) {
    for (int32_t candidate : db.Transaction(t)) {
      if (candidate == item) {
        tids.push_back(static_cast<uint32_t>(t));
        break;
      }
    }
  }
  return tids;
}

TEST(LawsRoaring, TidSetsRoundTripThroughContainersAndSaveLoad) {
  EXPECT_TRUE(Check<proptest::LitsWorkload>(
      "roaring/tid-round-trip", proptest::LitsWorkloadDomain(),
      [](const proptest::LitsWorkload& workload) {
        const TransactionDb db = proptest::MaterializeDb(workload);
        const RoaringIndex index(db);

        for (int32_t item = 0; item < db.num_items(); ++item) {
          if (index.ItemTids(item) != ReferenceTids(db, item)) {
            return PropResult::Fail("materialized TIDs differ for item " +
                                    std::to_string(item));
          }
        }

        std::ostringstream out;
        index.SaveTo(out);
        std::istringstream in(out.str());
        std::string error;
        const auto loaded = RoaringIndex::LoadFrom(in, &error);
        if (!loaded.has_value()) {
          return PropResult::Fail("LoadFrom rejected its own image: " +
                                  error);
        }
        if (!(*loaded == index)) {
          return PropResult::Fail("loaded index differs from original");
        }
        for (int32_t item = 0; item < db.num_items(); ++item) {
          if (loaded->ItemTids(item) != index.ItemTids(item)) {
            return PropResult::Fail("TIDs changed across save/load for item " +
                                    std::to_string(item));
          }
        }
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(8)));
}

TEST(LawsRoaring, PairIntersectCountIsCommutative) {
  EXPECT_TRUE(Check<proptest::LitsWorkload>(
      "roaring/pair-commutative", proptest::LitsWorkloadDomain(),
      [](const proptest::LitsWorkload& workload) {
        const TransactionDb db = proptest::MaterializeDb(workload);
        const RoaringIndex index(db);
        for (int32_t a = 0; a < db.num_items(); ++a) {
          for (int32_t b = a; b < db.num_items(); ++b) {
            const int64_t ab = index.CountPairIntersection(a, b);
            const int64_t ba = index.CountPairIntersection(b, a);
            if (ab != ba) {
              return PropResult::Fail(
                  "pair count not symmetric for (" + std::to_string(a) +
                  ", " + std::to_string(b) + "): " + std::to_string(ab) +
                  " vs " + std::to_string(ba));
            }
            if (a == b && ab != index.ItemCount(a)) {
              return PropResult::Fail("self-intersection != cardinality for " +
                                      std::to_string(a));
            }
          }
        }
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(8)));
}

TEST(LawsRoaring, IntersectCountEqualsMaterializedIntersectionSize) {
  EXPECT_TRUE(Check<proptest::LitsWorkload>(
      "roaring/cardinality-law", proptest::LitsWorkloadDomain(),
      [](const proptest::LitsWorkload& workload) {
        const TransactionDb db = proptest::MaterializeDb(workload);
        const RoaringIndex index(db);

        Rng rng(workload.quest.seed + 4451);
        for (int trial = 0; trial < 12; ++trial) {
          const lits::Itemset itemset =
              proptest::GenItemset(rng, workload.quest.num_items, 6);
          // Materialize: fold set-intersections over the per-item TID sets.
          std::vector<uint32_t> acc;
          bool first = true;
          for (int32_t item : itemset.items()) {
            const std::vector<uint32_t> tids = index.ItemTids(item);
            if (first) {
              acc = tids;
              first = false;
              continue;
            }
            std::vector<uint32_t> next;
            std::set_intersection(acc.begin(), acc.end(), tids.begin(),
                                  tids.end(), std::back_inserter(next));
            acc = std::move(next);
          }
          const int64_t expected =
              first ? db.num_transactions()
                    : static_cast<int64_t>(acc.size());
          if (index.CountIntersection(itemset.items()) != expected) {
            return PropResult::Fail("intersect count != materialized size "
                                    "for " +
                                    itemset.ToString());
          }
          // The AND-NOT variant against the same materialization: pick an
          // excluded item and subtract its TIDs from the accumulator.
          const int32_t excluded = static_cast<int32_t>(
              rng.IntIn(0, workload.quest.num_items - 1));
          const std::vector<uint32_t> excluded_tids = index.ItemTids(excluded);
          int64_t expected_diff = 0;
          if (first) {
            expected_diff = db.num_transactions() -
                            static_cast<int64_t>(excluded_tids.size());
          } else {
            std::vector<uint32_t> remain;
            std::set_difference(acc.begin(), acc.end(), excluded_tids.begin(),
                                excluded_tids.end(),
                                std::back_inserter(remain));
            expected_diff = static_cast<int64_t>(remain.size());
          }
          if (index.CountDifference(itemset.items(), excluded) !=
              expected_diff) {
            return PropResult::Fail("AND-NOT count != materialized size "
                                    "for " +
                                    itemset.ToString());
          }
        }
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(8)));
}

}  // namespace
}  // namespace focus::data

// Laws of the dt and cluster instantiations over generated workloads:
// focussed deviation restricts consistently through CHAINS of random
// nested boxes (Definition 5.2), and the cluster GCR is a true refinement
// — each model region is the disjoint union of its GCR parts (Definition
// 3.4), self-deviation is zero, and deviation is symmetric. Degenerate
// single-leaf trees and empty cluster models flow through the generators.

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cluster_deviation.h"
#include "core/dt_deviation.h"
#include "proptest/generators.h"
#include "proptest/proptest.h"

namespace focus::core {
namespace {

using proptest::Check;
using proptest::PropResult;
using proptest::Rng;

TEST(DtLaws, FocusRestrictionLaws) {
  // Definition 5.1/5.2 invariants that hold for ANY focussing box R:
  // the trivial focus (the whole space) is a no-op, the empty focus
  // yields deviation 0, the focussed measures sum to the in-R tuple
  // fraction per dataset, and the (f_a, g_sum) focussed deviation is
  // bounded by the total focussed measure mass of the two datasets.
  // (Monotonicity over nested R is deliberately NOT asserted — tuple-level
  // restriction can break cancellation outside R, so it is not a theorem.)
  EXPECT_TRUE(Check<proptest::DtPair>(
      "dt/focus-restriction-laws", proptest::DtPairDomain(),
      [](const proptest::DtPair& pair) {
        const data::Dataset d1 = proptest::MaterializeDataset(pair.a);
        const data::Dataset d2 = proptest::MaterializeDataset(pair.b);
        const DtModel m1(proptest::BuildTree(pair.a, d1), d1);
        const DtModel m2(proptest::BuildTree(pair.b, d2), d2);
        const data::Schema& schema = d1.schema();

        DtDeviationOptions full;
        const double whole = DtDeviation(m1, d1, m2, d2, full);

        DtDeviationOptions trivial;
        trivial.focus = data::Box::Full(schema);
        if (std::fabs(DtDeviation(m1, d1, m2, d2, trivial) - whole) > 1e-12)
          return PropResult::Fail("trivial focus changed the deviation");

        data::Box empty_box = data::Box::Full(schema);
        empty_box.ClampNumeric(0, 0.0, 0.0);  // lo == hi: contains nothing
        DtDeviationOptions empty_focus;
        empty_focus.focus = empty_box;
        if (DtDeviation(m1, d1, m2, d2, empty_focus) != 0.0)
          return PropResult::Fail("empty focus gave nonzero deviation");

        Rng box_rng(pair.a.gen.seed ^ (pair.b.gen.seed << 1));
        const data::Box focus = proptest::GenBox(box_rng, schema);
        const DtGcr gcr(m1, m2);
        double mass1 = 0.0;
        double mass2 = 0.0;
        for (const double m :
             gcr.Measures(m1.tree(), m2.tree(), d1, focus)) {
          mass1 += m;
        }
        for (const double m :
             gcr.Measures(m1.tree(), m2.tree(), d2, focus)) {
          mass2 += m;
        }
        // Focussed measures are exactly the in-R tuple fractions.
        const auto fraction_in = [&](const data::Dataset& d) {
          int64_t inside = 0;
          for (int64_t row = 0; row < d.num_rows(); ++row) {
            if (focus.Contains(schema, d.Row(row))) ++inside;
          }
          return static_cast<double>(inside) /
                 static_cast<double>(d.num_rows());
        };
        if (std::fabs(mass1 - fraction_in(d1)) > 1e-9 ||
            std::fabs(mass2 - fraction_in(d2)) > 1e-9)
          return PropResult::Fail("focussed measures != in-R fraction");

        DtDeviationOptions focused;
        focused.focus = focus;
        const double dev = DtDeviation(m1, d1, m2, d2, focused);
        if (dev < 0.0) return PropResult::Fail("focussed deviation negative");
        // Triangle bound: sum |a_i - b_i| <= sum a_i + sum b_i.
        if (dev > mass1 + mass2 + 1e-9)
          return PropResult::Fail("focussed deviation exceeds mass bound");
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(8)));
}

TEST(DtLaws, DeviationNonNegativeAndScaledConsistent) {
  EXPECT_TRUE(Check<proptest::DtPair>(
      "dt/deviation-nonnegative-all-fn", proptest::DtPairDomain(),
      [](const proptest::DtPair& pair) {
        const data::Dataset d1 = proptest::MaterializeDataset(pair.a);
        const data::Dataset d2 = proptest::MaterializeDataset(pair.b);
        const DtModel m1(proptest::BuildTree(pair.a, d1), d1);
        const DtModel m2(proptest::BuildTree(pair.b, d2), d2);
        for (const AggregateKind g : {AggregateKind::kSum,
                                      AggregateKind::kMax}) {
          for (const bool scaled : {false, true}) {
            DtDeviationOptions options;
            options.fn =
                DeviationFunction{scaled ? ScaledDiff() : AbsoluteDiff(), g};
            const double dev = DtDeviation(m1, d1, m2, d2, options);
            if (!(dev >= 0.0))
              return PropResult::Fail("deviation negative or NaN");
            const double self = DtDeviation(m1, d1, m1, d1, options);
            if (std::fabs(self) > 1e-12)
              return PropResult::Fail("self-deviation nonzero");
          }
        }
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(6)));
}

// ----------------------------------------------------------- cluster

TEST(ClusterLaws, GcrPartsPartitionEveryModelRegion) {
  EXPECT_TRUE(Check<proptest::ClusterPair>(
      "cluster/gcr-parts-partition-regions", proptest::ClusterPairDomain(),
      [](const proptest::ClusterPair& pair) {
        const data::Dataset d1 = proptest::MaterializeBlobs(pair.a);
        const data::Dataset d2 = proptest::MaterializeBlobs(pair.b);
        const cluster::ClusterModel m1 = proptest::MineCluster(pair.a, d1);
        const cluster::ClusterModel m2 = proptest::MineCluster(pair.b, d2);
        const std::vector<ClusterGcrRegion> gcr = ClusterGcr(m1, m2);

        // No cell appears in two GCR parts (disjointness).
        std::set<int64_t> seen;
        for (const ClusterGcrRegion& part : gcr) {
          for (int64_t cell : part.cells) {
            if (!seen.insert(cell).second)
              return PropResult::Fail("cell in two GCR parts");
          }
        }

        // Each original region is exactly the union of its parts
        // (Definition 3.4's refinement property), on both sides.
        for (int side = 0; side < 2; ++side) {
          const cluster::ClusterModel& model = side == 0 ? m1 : m2;
          for (int r = 0; r < model.num_regions(); ++r) {
            std::set<int64_t> reassembled;
            for (const ClusterGcrRegion& part : gcr) {
              if ((side == 0 ? part.region1 : part.region2) != r) continue;
              reassembled.insert(part.cells.begin(), part.cells.end());
            }
            const std::set<int64_t> original(model.region(r).begin(),
                                             model.region(r).end());
            if (reassembled != original)
              return PropResult::Fail(
                  "region " + std::to_string(r) + " of M" +
                  std::to_string(side + 1) + " != union of its GCR parts");
          }
        }
        return PropResult::Ok();
      }));
}

TEST(ClusterLaws, SelfZeroSymmetryAndFocus) {
  EXPECT_TRUE(Check<proptest::ClusterPair>(
      "cluster/self-zero-symmetry-focus", proptest::ClusterPairDomain(),
      [](const proptest::ClusterPair& pair) {
        const data::Dataset d1 = proptest::MaterializeBlobs(pair.a);
        const data::Dataset d2 = proptest::MaterializeBlobs(pair.b);
        const cluster::ClusterModel m1 = proptest::MineCluster(pair.a, d1);
        const cluster::ClusterModel m2 = proptest::MineCluster(pair.b, d2);
        ClusterDeviationOptions options;  // (f_a, g_sum)
        const double self = ClusterDeviation(m1, d1, m1, d1, options);
        if (std::fabs(self) > 1e-12)
          return PropResult::Fail("self-deviation nonzero");
        const double ab = ClusterDeviation(m1, d1, m2, d2, options);
        const double ba = ClusterDeviation(m2, d2, m1, d1, options);
        if (std::fabs(ab - ba) > 1e-9)
          return PropResult::Fail("deviation not symmetric");

        // Trivial focus is a no-op; empty focus yields zero; any focus
        // keeps the deviation non-negative.
        const data::Schema schema = proptest::ClusterSchema(pair.a);
        ClusterDeviationOptions trivial = options;
        trivial.focus = data::Box::Full(schema);
        if (std::fabs(ClusterDeviation(m1, d1, m2, d2, trivial) - ab) >
            1e-12)
          return PropResult::Fail("trivial focus changed the deviation");

        ClusterDeviationOptions empty_focus = options;
        data::Box empty_box = data::Box::Full(schema);
        empty_box.ClampNumeric(0, 0.5, 0.5);  // lo == hi: contains nothing
        empty_focus.focus = empty_box;
        if (ClusterDeviation(m1, d1, m2, d2, empty_focus) != 0.0)
          return PropResult::Fail("empty focus gave nonzero deviation");

        ClusterDeviationOptions focused = options;
        Rng box_rng(pair.a.seed + 3 * pair.b.seed);
        focused.focus = proptest::GenBox(box_rng, schema);
        if (ClusterDeviation(m1, d1, m2, d2, focused) < 0.0)
          return PropResult::Fail("focussed deviation negative");
        return PropResult::Ok();
      }));
}

}  // namespace
}  // namespace focus::core

// Differential oracles for serve::ModelCache: a cache hit must return a
// model indistinguishable from mining cold (the cache is a pure
// memoization of Apriori keyed by content hash), and LRU eviction under
// random access must never change WHAT is returned — only how often
// mining runs.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/lits_upper_bound.h"
#include "itemsets/apriori.h"
#include "proptest/generators.h"
#include "proptest/proptest.h"
#include "serve/model_cache.h"

namespace focus::serve {
namespace {

using proptest::Check;
using proptest::PropResult;
using proptest::Rng;

bool SameModel(const lits::LitsModel& x, const lits::LitsModel& y) {
  if (x.size() != y.size() || x.num_items() != y.num_items() ||
      x.num_transactions() != y.num_transactions() ||
      x.min_support() != y.min_support())
    return false;
  for (const lits::Itemset& itemset : x.StructuralComponent()) {
    if (y.SupportOr(itemset, -1.0) != x.SupportOr(itemset, -1.0))
      return false;
  }
  return true;
}

TEST(DiffCache, HitEqualsColdMiss) {
  EXPECT_TRUE(Check<proptest::LitsWorkload>(
      "diff/cache-hit-equals-cold-miss", proptest::LitsWorkloadDomain(),
      [](const proptest::LitsWorkload& workload) {
        const data::TransactionDb db = proptest::MaterializeDb(workload);
        const lits::LitsModel cold = lits::Apriori(db, workload.apriori);

        ModelCache cache(4, workload.apriori);
        bool hit = true;
        const auto missed = cache.GetOrMine(db, &hit);
        if (hit) return PropResult::Fail("first access reported a hit");
        if (!SameModel(*missed, cold))
          return PropResult::Fail("cached miss differs from cold mining");

        const auto served = cache.GetOrMine(db, &hit);
        if (!hit) return PropResult::Fail("second access reported a miss");
        if (served.get() != missed.get())
          return PropResult::Fail("hit returned a different object");
        if (core::LitsUpperBound(*served, cold, core::AggregateKind::kSum) !=
            0.0)
          return PropResult::Fail("delta*(hit, cold) != 0");

        const auto looked_up = cache.Lookup(TransactionDbContentHash(db));
        if (looked_up.get() != missed.get())
          return PropResult::Fail("Lookup by content hash missed");

        const ModelCacheStats stats = cache.stats();
        if (stats.hits != 2 || stats.misses != 1 || stats.evictions != 0)
          return PropResult::Fail(
              "stats wrong: hits=" + std::to_string(stats.hits) +
              " misses=" + std::to_string(stats.misses) +
              " evictions=" + std::to_string(stats.evictions));
        return PropResult::Ok();
      }));
}

TEST(DiffCache, EvictionNeverChangesServedModels) {
  // Three distinct snapshots churning through a capacity-2 cache with a
  // random access pattern: every GetOrMine must still serve exactly the
  // cold-mined model for its snapshot, and the hit/miss/eviction ledger
  // must add up.
  EXPECT_TRUE(Check<proptest::LitsTriple>(
      "diff/cache-eviction-consistency", proptest::LitsTripleDomain(),
      [](const proptest::LitsTriple& triple) {
        const std::vector<proptest::LitsWorkload> workloads = {
            triple.a, triple.b, triple.c};
        std::vector<data::TransactionDb> dbs;
        std::vector<lits::LitsModel> cold;
        for (const proptest::LitsWorkload& workload : workloads) {
          dbs.push_back(proptest::MaterializeDb(workload));
          cold.push_back(lits::Apriori(dbs.back(), triple.a.apriori));
        }

        ModelCache cache(2, triple.a.apriori);
        Rng access_rng(triple.a.quest.seed ^ 0x5EEDu);
        int64_t accesses = 0;
        for (int step = 0; step < 24; ++step) {
          const auto pick =
              static_cast<size_t>(access_rng.IntIn(0, 2));
          const auto served = cache.GetOrMine(dbs[pick]);
          ++accesses;
          if (!SameModel(*served, cold[pick]))
            return PropResult::Fail("served model differs from cold mining");
        }
        const ModelCacheStats stats = cache.stats();
        if (stats.hits + stats.misses != accesses)
          return PropResult::Fail("hits + misses != accesses");
        if (stats.evictions > stats.misses)
          return PropResult::Fail("more evictions than misses");
        if (cache.size() > cache.capacity())
          return PropResult::Fail("cache exceeded its capacity");
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(8)));
}

}  // namespace
}  // namespace focus::serve

// Algebraic laws of the region algebra (§5): the structural operators
// ⊔ ⊓ − over both carrier kinds — itemset collections (lits-models) and
// box collections (dt-models) — checked over generated region sets.
// ⟨Γ_M, ≤⟩ is a meet-semilattice (§3), so ⊔ must be commutative,
// associative, and idempotent, ⊓ must absorb with ⊔, and − must be the
// symmetric difference; results must stay normalized (closure).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dt_deviation.h"
#include "core/region_algebra.h"
#include "proptest/generators.h"
#include "proptest/proptest.h"

namespace focus::core {
namespace {

using proptest::Check;
using proptest::Domain;
using proptest::PropResult;
using proptest::Rng;

// ------------------------------------------------------- itemset carrier

// Two/three generated itemset collections over one item universe.
struct SetCase {
  int32_t num_items = 1;
  ItemsetSet a;
  ItemsetSet b;
  ItemsetSet c;
};

Domain<SetCase> SetCaseDomain() {
  Domain<SetCase> domain;
  domain.generate = [](Rng& rng) {
    SetCase set_case;
    set_case.num_items = static_cast<int32_t>(rng.IntIn(1, 40));
    set_case.a = proptest::GenItemsetSet(rng, set_case.num_items, 12, 4);
    set_case.b = proptest::GenItemsetSet(rng, set_case.num_items, 12, 4);
    set_case.c = proptest::GenItemsetSet(rng, set_case.num_items, 12, 4);
    return set_case;
  };
  domain.describe = [](const SetCase& set_case) {
    return "items=" + std::to_string(set_case.num_items) +
           " a=" + proptest::Describe(set_case.a) +
           " b=" + proptest::Describe(set_case.b) +
           " c=" + proptest::Describe(set_case.c);
  };
  domain.shrink = [](const SetCase& set_case) {
    std::vector<SetCase> candidates;
    for (int member = 0; member < 3; ++member) {
      const ItemsetSet& set =
          member == 0 ? set_case.a : (member == 1 ? set_case.b : set_case.c);
      if (set.empty()) continue;
      SetCase candidate = set_case;
      ItemsetSet& target =
          member == 0 ? candidate.a
                      : (member == 1 ? candidate.b : candidate.c);
      target.assign(set.begin(), set.begin() + set.size() / 2);
      candidates.push_back(std::move(candidate));
    }
    return candidates;
  };
  return domain;
}

bool SameSet(const ItemsetSet& x, const ItemsetSet& y) { return x == y; }

TEST(RegionAlgebraLaws, LitsUnionSemilattice) {
  EXPECT_TRUE(Check<SetCase>(
      "region-algebra/lits-union-semilattice", SetCaseDomain(),
      [](const SetCase& sc) {
        const ItemsetSet empty;
        if (!SameSet(StructuralUnion(sc.a, sc.b), StructuralUnion(sc.b, sc.a)))
          return PropResult::Fail("union not commutative");
        if (!SameSet(StructuralUnion(StructuralUnion(sc.a, sc.b), sc.c),
                     StructuralUnion(sc.a, StructuralUnion(sc.b, sc.c))))
          return PropResult::Fail("union not associative");
        if (!SameSet(StructuralUnion(sc.a, sc.a), NormalizeItemsets(sc.a)))
          return PropResult::Fail("union not idempotent");
        if (!SameSet(StructuralUnion(sc.a, empty), NormalizeItemsets(sc.a)))
          return PropResult::Fail("empty set is not a union identity");
        return PropResult::Ok();
      }));
}

TEST(RegionAlgebraLaws, LitsIntersectionAbsorption) {
  EXPECT_TRUE(Check<SetCase>(
      "region-algebra/lits-intersection-absorption", SetCaseDomain(),
      [](const SetCase& sc) {
        if (!SameSet(StructuralIntersection(sc.a, sc.b),
                     StructuralIntersection(sc.b, sc.a)))
          return PropResult::Fail("intersection not commutative");
        if (!SameSet(
                StructuralIntersection(StructuralIntersection(sc.a, sc.b),
                                       sc.c),
                StructuralIntersection(sc.a,
                                       StructuralIntersection(sc.b, sc.c))))
          return PropResult::Fail("intersection not associative");
        if (!SameSet(StructuralIntersection(sc.a, sc.a),
                     NormalizeItemsets(sc.a)))
          return PropResult::Fail("intersection not idempotent");
        // Absorption: A ⊔ (A ⊓ B) = A and A ⊓ (A ⊔ B) = A.
        if (!SameSet(
                StructuralUnion(sc.a, StructuralIntersection(sc.a, sc.b)),
                NormalizeItemsets(sc.a)))
          return PropResult::Fail("union/intersection absorption fails");
        if (!SameSet(
                StructuralIntersection(sc.a, StructuralUnion(sc.a, sc.b)),
                NormalizeItemsets(sc.a)))
          return PropResult::Fail("intersection/union absorption fails");
        return PropResult::Ok();
      }));
}

TEST(RegionAlgebraLaws, LitsSymmetricDifference) {
  EXPECT_TRUE(Check<SetCase>(
      "region-algebra/lits-symmetric-difference", SetCaseDomain(),
      [](const SetCase& sc) {
        const ItemsetSet empty;
        if (!StructuralDifference(sc.a, sc.a).empty())
          return PropResult::Fail("A − A is not empty");
        if (!SameSet(StructuralDifference(sc.a, empty),
                     NormalizeItemsets(sc.a)))
          return PropResult::Fail("A − ∅ is not A");
        if (!SameSet(StructuralDifference(sc.a, sc.b),
                     StructuralDifference(sc.b, sc.a)))
          return PropResult::Fail("difference not symmetric");
        // − is (⊔) minus (⊓) elementwise.
        const ItemsetSet unioned = StructuralUnion(sc.a, sc.b);
        const ItemsetSet intersected = StructuralIntersection(sc.a, sc.b);
        ItemsetSet expected;
        for (const lits::Itemset& itemset : unioned) {
          bool in_both = false;
          for (const lits::Itemset& other : intersected) {
            if (itemset == other) {
              in_both = true;
              break;
            }
          }
          if (!in_both) expected.push_back(itemset);
        }
        if (!SameSet(StructuralDifference(sc.a, sc.b), expected))
          return PropResult::Fail("difference != union minus intersection");
        return PropResult::Ok();
      }));
}

TEST(RegionAlgebraLaws, LitsOperatorsStayNormalized) {
  EXPECT_TRUE(Check<SetCase>(
      "region-algebra/lits-closure-normalized", SetCaseDomain(),
      [](const SetCase& sc) {
        for (const ItemsetSet& out :
             {StructuralUnion(sc.a, sc.b), StructuralIntersection(sc.a, sc.b),
              StructuralDifference(sc.a, sc.b)}) {
          if (!SameSet(out, NormalizeItemsets(out)))
            return PropResult::Fail("operator result not normalized");
        }
        return PropResult::Ok();
      }));
}

// --------------------------------------------------------- box carrier

bool SameBoxSet(const BoxSet& x, const BoxSet& y) {
  if (x.size() != y.size()) return false;
  for (const data::Box& box : x) {
    bool found = false;
    for (const data::Box& other : y) {
      if (box == other) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

TEST(RegionAlgebraLaws, BoxOverlayOfLeafPartitions) {
  EXPECT_TRUE(Check<proptest::DtPair>(
      "region-algebra/box-overlay-partition", proptest::DtPairDomain(),
      [](const proptest::DtPair& pair) {
        const data::Dataset d1 = proptest::MaterializeDataset(pair.a);
        const data::Dataset d2 = proptest::MaterializeDataset(pair.b);
        const data::Schema& schema = d1.schema();
        const DtModel m1(proptest::BuildTree(pair.a, d1), d1);
        const DtModel m2(proptest::BuildTree(pair.b, d2), d2);
        const BoxSet& g1 = m1.leaf_boxes();
        const BoxSet& g2 = m2.leaf_boxes();

        // Self-overlay of a partition is the partition itself; ⊓ and −
        // behave as identity / annihilator on it.
        if (!SameBoxSet(StructuralUnion(schema, g1, g1), g1))
          return PropResult::Fail("self-overlay is not the partition");
        if (!SameBoxSet(StructuralIntersection(schema, g1, g1), g1))
          return PropResult::Fail("self-intersection is not the partition");
        if (!StructuralDifference(schema, g1, g1).empty())
          return PropResult::Fail("self-difference is not empty");

        // The overlay GCR is order-independent.
        const BoxSet overlay = StructuralUnion(schema, g1, g2);
        if (!SameBoxSet(overlay, StructuralUnion(schema, g2, g1)))
          return PropResult::Fail("overlay not commutative");

        // Refinement (Definition 3.4): every overlay region lies inside
        // one region of EACH parent.
        for (const data::Box& region : overlay) {
          bool in1 = false;
          for (const data::Box& parent : g1) {
            if (parent.Covers(schema, region)) {
              in1 = true;
              break;
            }
          }
          bool in2 = false;
          for (const data::Box& parent : g2) {
            if (parent.Covers(schema, region)) {
              in2 = true;
              break;
            }
          }
          if (!in1 || !in2)
            return PropResult::Fail("overlay region not covered by parents");
        }

        // The overlay is itself a partition of the populated space: every
        // tuple of both datasets lands in exactly one overlay region.
        for (const data::Dataset* dataset : {&d1, &d2}) {
          const int64_t probes = std::min<int64_t>(dataset->num_rows(), 64);
          for (int64_t row = 0; row < probes; ++row) {
            int hits = 0;
            for (const data::Box& region : overlay) {
              if (region.Contains(schema, dataset->Row(row))) ++hits;
            }
            if (hits != 1)
              return PropResult::Fail("tuple lies in " +
                                      std::to_string(hits) +
                                      " overlay regions (want 1)");
          }
        }
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(8)));
}

}  // namespace
}  // namespace focus::core

// Algebraic laws of the lits instantiation that go beyond the theorem
// sweeps in tests/property_test.cc: delta* is a pseudo-metric with the
// triangle inequality (Theorem 4.2) over arbitrary generated model
// triples, the difference functions f_a / f_s obey their definitional
// bounds, and the aggregates g_sum / g_max satisfy their combination
// identities. Workloads include empty models (min_support too high) and
// near-degenerate databases by construction.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/functions.h"
#include "core/lits_deviation.h"
#include "core/lits_upper_bound.h"
#include "proptest/generators.h"
#include "proptest/proptest.h"

namespace focus::core {
namespace {

using proptest::Check;
using proptest::Domain;
using proptest::PropResult;
using proptest::Rng;

TEST(LitsLaws, UpperBoundIsPseudoMetric) {
  EXPECT_TRUE(Check<proptest::LitsPair>(
      "lits/upper-bound-pseudometric", proptest::LitsPairDomain(),
      [](const proptest::LitsPair& pair) {
        const data::TransactionDb da = proptest::MaterializeDb(pair.a);
        const data::TransactionDb db = proptest::MaterializeDb(pair.b);
        const lits::LitsModel ma = proptest::Mine(pair.a, da);
        const lits::LitsModel mb = proptest::Mine(pair.b, db);
        for (const AggregateKind g : {AggregateKind::kSum,
                                      AggregateKind::kMax}) {
          if (LitsUpperBound(ma, ma, g) != 0.0)
            return PropResult::Fail("delta*(M, M) != 0");
          const double ab = LitsUpperBound(ma, mb, g);
          const double ba = LitsUpperBound(mb, ma, g);
          if (std::fabs(ab - ba) > 1e-12)
            return PropResult::Fail("delta* not symmetric");
          if (ab < 0.0) return PropResult::Fail("delta* negative");
        }
        return PropResult::Ok();
      }));
}

TEST(LitsLaws, UpperBoundTriangleInequality) {
  EXPECT_TRUE(Check<proptest::LitsTriple>(
      "lits/upper-bound-triangle", proptest::LitsTripleDomain(),
      [](const proptest::LitsTriple& triple) {
        const data::TransactionDb da = proptest::MaterializeDb(triple.a);
        const data::TransactionDb db = proptest::MaterializeDb(triple.b);
        const data::TransactionDb dc = proptest::MaterializeDb(triple.c);
        const lits::LitsModel ma = proptest::Mine(triple.a, da);
        const lits::LitsModel mb = proptest::Mine(triple.b, db);
        const lits::LitsModel mc = proptest::Mine(triple.c, dc);
        for (const AggregateKind g : {AggregateKind::kSum,
                                      AggregateKind::kMax}) {
          const double ab = LitsUpperBound(ma, mb, g);
          const double bc = LitsUpperBound(mb, mc, g);
          const double ac = LitsUpperBound(ma, mc, g);
          if (ac > ab + bc + 1e-9)
            return PropResult::Fail(
                "triangle violated: " + std::to_string(ac) + " > " +
                std::to_string(ab) + " + " + std::to_string(bc));
        }
        return PropResult::Ok();
      }));
}

TEST(LitsLaws, RefinementMonotonicityOverRandomRefinements) {
  // Extending the GCR with ANY extra generated regions (a strictly finer
  // common refinement) can only grow the g_sum deviation — Theorem 4.1's
  // minimality, checked against random refinements rather than a fixed
  // hand-picked one.
  EXPECT_TRUE(Check<proptest::LitsPair>(
      "lits/refinement-monotonicity", proptest::LitsPairDomain(),
      [](const proptest::LitsPair& pair) {
        const data::TransactionDb da = proptest::MaterializeDb(pair.a);
        const data::TransactionDb db = proptest::MaterializeDb(pair.b);
        const lits::LitsModel ma = proptest::Mine(pair.a, da);
        const lits::LitsModel mb = proptest::Mine(pair.b, db);
        const std::vector<lits::Itemset> gcr = LitsGcr(ma, mb);

        // Derive the refinement from the pair's own seeds so the case
        // stays replayable from one seed.
        Rng refine_rng(pair.a.quest.seed ^ pair.b.quest.seed);
        std::vector<lits::Itemset> finer = gcr;
        const core::ItemsetSet extra = proptest::GenItemsetSet(
            refine_rng, pair.a.quest.num_items, 8, 4);
        finer.insert(finer.end(), extra.begin(), extra.end());
        finer = NormalizeItemsets(std::move(finer));

        for (const bool scaled : {false, true}) {
          DeviationFunction fn{scaled ? ScaledDiff() : AbsoluteDiff(),
                               AggregateKind::kSum};
          const double over_gcr = LitsDeviationOverRegions(gcr, da, db, fn);
          const double over_finer =
              LitsDeviationOverRegions(finer, da, db, fn);
          if (over_gcr > over_finer + 1e-9)
            return PropResult::Fail("GCR deviation exceeds a refinement's");
        }
        return PropResult::Ok();
      }));
}

// --------------------------------------------------- difference functions

struct DiffFnCase {
  double c1 = 0;
  double c2 = 0;
  double n1 = 1;
  double n2 = 1;
};

Domain<DiffFnCase> DiffFnDomain() {
  Domain<DiffFnCase> domain;
  domain.generate = [](Rng& rng) {
    DiffFnCase diff_case;
    diff_case.n1 = static_cast<double>(rng.IntIn(1, 100000));
    diff_case.n2 = static_cast<double>(rng.IntIn(1, 100000));
    diff_case.c1 = static_cast<double>(
        rng.IntIn(0, static_cast<int64_t>(diff_case.n1)));
    diff_case.c2 = static_cast<double>(
        rng.IntIn(0, static_cast<int64_t>(diff_case.n2)));
    return diff_case;
  };
  domain.describe = [](const DiffFnCase& diff_case) {
    return "c1=" + std::to_string(diff_case.c1) +
           " c2=" + std::to_string(diff_case.c2) +
           " n1=" + std::to_string(diff_case.n1) +
           " n2=" + std::to_string(diff_case.n2);
  };
  return domain;
}

TEST(LitsLaws, DifferenceFunctionBounds) {
  EXPECT_TRUE(Check<DiffFnCase>(
      "functions/difference-fn-laws", DiffFnDomain(),
      [](const DiffFnCase& dc) {
        const DiffFn fa = AbsoluteDiff();
        const DiffFn fs = ScaledDiff();
        const double a = fa(dc.c1, dc.c2, dc.n1, dc.n2);
        const double s = fs(dc.c1, dc.c2, dc.n1, dc.n2);
        if (a < 0.0 || s < 0.0)
          return PropResult::Fail("difference function went negative");
        if (a > 1.0 + 1e-12)
          return PropResult::Fail("f_a exceeded 1 (selectivities are in "
                                  "[0,1])");
        // f_s = |s1-s2| / ((s1+s2)/2) is bounded by 2.
        if (s > 2.0 + 1e-12) return PropResult::Fail("f_s exceeded 2");
        // Both are symmetric in their arguments.
        if (std::fabs(a - fa(dc.c2, dc.c1, dc.n2, dc.n1)) > 1e-12)
          return PropResult::Fail("f_a not symmetric");
        if (std::fabs(s - fs(dc.c2, dc.c1, dc.n2, dc.n1)) > 1e-12)
          return PropResult::Fail("f_s not symmetric");
        // Identity of indiscernibles at the selectivity level.
        if (dc.c1 * dc.n2 == dc.c2 * dc.n1 && (a != 0.0 || s != 0.0))
          return PropResult::Fail("equal selectivities gave nonzero diff");
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(50)));
}

// ----------------------------------------------------------- aggregates

struct AggregateCase {
  std::vector<double> values;
  size_t split = 0;  // concatenation point for the combination identities
};

Domain<AggregateCase> AggregateDomain() {
  Domain<AggregateCase> domain;
  domain.generate = [](Rng& rng) {
    AggregateCase agg_case;
    const int n = static_cast<int>(rng.IntIn(0, 24));
    agg_case.values.reserve(n);
    for (int i = 0; i < n; ++i) {
      agg_case.values.push_back(rng.DoubleIn(0.0, 5.0));
    }
    agg_case.split = static_cast<size_t>(rng.IntIn(0, n));
    return agg_case;
  };
  domain.describe = [](const AggregateCase& agg_case) {
    std::string out = "values[" + std::to_string(agg_case.values.size()) +
                      "] split=" + std::to_string(agg_case.split);
    return out;
  };
  domain.shrink = [](const AggregateCase& agg_case) {
    std::vector<AggregateCase> candidates;
    if (!agg_case.values.empty()) {
      AggregateCase candidate = agg_case;
      candidate.values.resize(agg_case.values.size() / 2);
      candidate.split = std::min(candidate.split, candidate.values.size());
      candidates.push_back(std::move(candidate));
    }
    return candidates;
  };
  return domain;
}

TEST(LitsLaws, AggregateCombinationIdentities) {
  EXPECT_TRUE(Check<AggregateCase>(
      "functions/aggregate-identities", AggregateDomain(),
      [](const AggregateCase& ac) {
        const std::span<const double> all(ac.values);
        const auto head = all.subspan(0, ac.split);
        const auto tail = all.subspan(ac.split);
        const double sum = AggregateValues(AggregateKind::kSum, all);
        const double max = AggregateValues(AggregateKind::kMax, all);
        // g_sum distributes over concatenation; g_max combines by max.
        const double sum_parts =
            AggregateValues(AggregateKind::kSum, head) +
            AggregateValues(AggregateKind::kSum, tail);
        if (std::fabs(sum - sum_parts) > 1e-9)
          return PropResult::Fail("g_sum not additive over concatenation");
        const double max_parts =
            std::max(AggregateValues(AggregateKind::kMax, head),
                     AggregateValues(AggregateKind::kMax, tail));
        if (max != max_parts)
          return PropResult::Fail("g_max not max over concatenation");
        // Dominance on non-negative inputs, and the empty identity.
        if (max > sum + 1e-12)
          return PropResult::Fail("g_max exceeded g_sum on non-negatives");
        if (ac.values.empty() && (sum != 0.0 || max != 0.0))
          return PropResult::Fail("empty aggregate is not 0");
        // Permutation invariance.
        std::vector<double> reversed(ac.values.rbegin(), ac.values.rend());
        if (std::fabs(sum - AggregateValues(AggregateKind::kSum, reversed)) >
            1e-9)
          return PropResult::Fail("g_sum not permutation invariant");
        if (max != AggregateValues(AggregateKind::kMax, reversed))
          return PropResult::Fail("g_max not permutation invariant");
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(50)));
}

TEST(LitsLaws, FocusedDeviationRestrictsConsistently) {
  // Definition 5.1/5.2: focussing on a random pivot item, then focussing
  // the focussed region again, never increases the (f_a, g_sum) deviation;
  // focussing on everything changes nothing.
  EXPECT_TRUE(Check<proptest::LitsPair>(
      "lits/focus-restriction-chain", proptest::LitsPairDomain(),
      [](const proptest::LitsPair& pair) {
        const data::TransactionDb da = proptest::MaterializeDb(pair.a);
        const data::TransactionDb db = proptest::MaterializeDb(pair.b);
        const lits::LitsModel ma = proptest::Mine(pair.a, da);
        const lits::LitsModel mb = proptest::Mine(pair.b, db);
        DeviationFunction fn;  // (f_a, g_sum)
        const double full = LitsDeviation(ma, da, mb, db, fn);

        Rng pivot_rng(pair.a.quest.seed + 17);
        const int32_t pivot = static_cast<int32_t>(
            pivot_rng.IntIn(0, pair.a.quest.num_items - 1));
        const double focused = LitsDeviationFocused(
            ma, da, mb, db, ContainsItem(pivot), fn);
        if (focused > full + 1e-9)
          return PropResult::Fail("focussed deviation exceeds full");

        const auto everything = [](const lits::Itemset&) { return true; };
        const double unrestricted =
            LitsDeviationFocused(ma, da, mb, db, everything, fn);
        if (std::fabs(unrestricted - full) > 1e-9)
          return PropResult::Fail("trivial focus changed the deviation");
        return PropResult::Ok();
      }));
}

}  // namespace
}  // namespace focus::core

// The kernel oracle: ONE differential law swept over every registered
// counting kernel (horizontal scan, flat VerticalIndex, RoaringIndex) ×
// every runnable simd dispatch level (scalar, avx2, avx512) × pool sizes
// 1/2/4/8. The horizontal scan is the baseline; every other combination
// must return EXACTLY the same integers (and the same doubles for
// relative supports and deviations — same integers divided by the same
// |D|). Workloads come from the proptest generators plus a fixed set of
// adversarial density fixtures: all-dense, all-sparse, run-heavy, empty
// items, and TID cardinalities straddling the array→bitmap promotion
// threshold and the 65536-TID chunk boundary.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/lits_deviation.h"
#include "data/item_index.h"
#include "data/roaring_index.h"
#include "data/simd_kernels.h"
#include "data/transaction_db.h"
#include "data/vertical_index.h"
#include "itemsets/apriori.h"
#include "itemsets/support_counter.h"
#include "proptest/generators.h"
#include "proptest/proptest.h"

namespace focus::core {
namespace {

using proptest::Check;
using proptest::PropResult;
using proptest::Rng;

constexpr int kPoolSizes[] = {1, 2, 4, 8};

std::vector<data::simd::Level> RunnableLevels() {
  std::vector<data::simd::Level> levels = {data::simd::Level::kScalar};
  if (data::simd::LevelSupported(data::simd::Level::kAvx2)) {
    levels.push_back(data::simd::Level::kAvx2);
  }
  if (data::simd::LevelSupported(data::simd::Level::kAvx512)) {
    levels.push_back(data::simd::Level::kAvx512);
  }
  return levels;
}

// Checks every (backend × pool) combination of `counter` against the
// horizontal baseline, under whatever dispatch level is active. Returns
// an empty string on success, a diagnostic on the first mismatch.
std::string CheckAllKernels(const lits::SupportCounter& counter,
                            const data::VerticalIndex& flat,
                            const data::RoaringIndex& roaring,
                            const std::vector<int64_t>& horizontal,
                            const std::vector<double>& horizontal_rel) {
  const struct {
    const char* name;
    data::ItemIndexRef ref;
  } backends[] = {{"flat", flat}, {"roaring", roaring}};
  for (const auto& backend : backends) {
    if (counter.CountAbsolute(backend.ref) != horizontal) {
      return std::string(backend.name) + " absolute counts differ";
    }
    if (counter.CountRelative(backend.ref) != horizontal_rel) {
      return std::string(backend.name) + " relative supports differ";
    }
    for (const int threads : kPoolSizes) {
      common::ThreadPool pool(threads);
      if (counter.CountAbsoluteParallel(backend.ref, pool) != horizontal) {
        return std::string(backend.name) + " parallel counts differ with " +
               std::to_string(threads) + " threads";
      }
    }
  }
  return "";
}

TEST(LawsKernelOracle, CountsIdenticalAcrossKernelsLevelsAndPools) {
  EXPECT_TRUE(Check<proptest::LitsWorkload>(
      "kernel-oracle/counts-identical", proptest::LitsWorkloadDomain(),
      [](const proptest::LitsWorkload& workload) {
        const data::TransactionDb db = proptest::MaterializeDb(workload);
        const data::VerticalIndex flat(db);
        const data::RoaringIndex roaring(db);

        Rng itemset_rng(workload.quest.seed + 977);
        std::vector<lits::Itemset> itemsets;
        const int count = static_cast<int>(itemset_rng.IntIn(0, 24));
        for (int i = 0; i < count; ++i) {
          itemsets.push_back(proptest::GenItemset(
              itemset_rng, workload.quest.num_items, 5));
        }
        const lits::SupportCounter counter(itemsets,
                                           workload.quest.num_items);
        const std::vector<int64_t> horizontal = counter.CountAbsolute(db);
        const std::vector<double> horizontal_rel = counter.CountRelative(db);

        for (const data::simd::Level level : RunnableLevels()) {
          data::simd::ScopedLevelForTesting scoped(level);
          const std::string failure = CheckAllKernels(
              counter, flat, roaring, horizontal, horizontal_rel);
          if (!failure.empty()) {
            return PropResult::Fail(
                failure + " at level " + data::simd::LevelName(level));
          }
        }
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(8)));
}

TEST(LawsKernelOracle, DeviationsIdenticalAcrossKernelsAndLevels) {
  EXPECT_TRUE(Check<proptest::LitsPair>(
      "kernel-oracle/deviations-identical", proptest::LitsPairDomain(),
      [](const proptest::LitsPair& pair) {
        const data::TransactionDb da = proptest::MaterializeDb(pair.a);
        const data::TransactionDb db = proptest::MaterializeDb(pair.b);
        const lits::LitsModel ma = proptest::Mine(pair.a, da);
        const lits::LitsModel mb = proptest::Mine(pair.b, db);
        const data::VerticalIndex fa(da);
        const data::VerticalIndex fb(db);
        const data::RoaringIndex ra(da);
        const data::RoaringIndex rb(db);

        const DeviationFunction fn;  // (f_a, g_sum)
        const double horizontal = LitsDeviation(ma, da, mb, db, fn);
        const std::vector<lits::Itemset> gcr = LitsGcr(ma, mb);
        const double horizontal_regions =
            LitsDeviationOverRegions(gcr, da, db, fn);

        for (const data::simd::Level level : RunnableLevels()) {
          data::simd::ScopedLevelForTesting scoped(level);
          const struct {
            const char* name;
            data::ItemIndexRef a;
            data::ItemIndexRef b;
          } backends[] = {{"flat", fa, fb},
                          {"roaring", ra, rb},
                          {"mixed", fa, rb}};
          for (const auto& backend : backends) {
            if (LitsDeviation(ma, backend.a, mb, backend.b, fn) !=
                horizontal) {
              return PropResult::Fail(
                  std::string(backend.name) + " deviation differs at level " +
                  data::simd::LevelName(level));
            }
            if (LitsDeviationOverRegions(gcr, backend.a, backend.b, fn) !=
                horizontal_regions) {
              return PropResult::Fail(std::string(backend.name) +
                                      " over-regions deviation differs at "
                                      "level " +
                                      data::simd::LevelName(level));
            }
          }
        }
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(6)));
}

TEST(LawsKernelOracle, AndNotDeviationKernelIdenticalAcrossBackends) {
  EXPECT_TRUE(Check<proptest::LitsWorkload>(
      "kernel-oracle/and-not-identical", proptest::LitsWorkloadDomain(),
      [](const proptest::LitsWorkload& workload) {
        const data::TransactionDb db = proptest::MaterializeDb(workload);
        const data::VerticalIndex flat(db);
        const data::RoaringIndex roaring(db);

        Rng rng(workload.quest.seed + 1299);
        for (int probe = 0; probe < 8; ++probe) {
          const lits::Itemset itemset =
              proptest::GenItemset(rng, workload.quest.num_items, 4);
          const int32_t excluded = static_cast<int32_t>(
              rng.IntIn(0, workload.quest.num_items - 1));
          // Horizontal reference: |T(items)| - |T(items ∪ {excluded})|.
          std::vector<int32_t> with_excluded = itemset.items();
          if (!std::binary_search(with_excluded.begin(), with_excluded.end(),
                                  excluded)) {
            with_excluded.push_back(excluded);
            std::sort(with_excluded.begin(), with_excluded.end());
          }
          const std::vector<lits::Itemset> both = {
              itemset, lits::Itemset(std::move(with_excluded))};
          const std::vector<int64_t> counts =
              lits::SupportCounter(both, workload.quest.num_items)
                  .CountAbsolute(db);
          const int64_t expected = counts[0] - counts[1];

          for (const data::simd::Level level : RunnableLevels()) {
            data::simd::ScopedLevelForTesting scoped(level);
            if (flat.CountDifference(itemset.items(), excluded) != expected) {
              return PropResult::Fail(
                  std::string("flat AND-NOT differs at level ") +
                  data::simd::LevelName(level));
            }
            if (roaring.CountDifference(itemset.items(), excluded) !=
                expected) {
              return PropResult::Fail(
                  std::string("roaring AND-NOT differs at level ") +
                  data::simd::LevelName(level));
            }
          }
        }
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(8)));
}

// ------------------------------------------------------------ fixtures

// Fixture databases with hand-picked densities. Each returns a db plus a
// set of probe itemsets covering singles, pairs, and wider sets.
struct DensityFixture {
  std::string name;
  data::TransactionDb db;
  std::vector<lits::Itemset> itemsets;
};

data::TransactionDb DbFromItemTids(
    int32_t num_items, int64_t num_transactions,
    const std::vector<std::vector<int64_t>>& tids) {
  std::vector<std::vector<int32_t>> transactions(
      static_cast<size_t>(num_transactions));
  for (int32_t item = 0; item < static_cast<int32_t>(tids.size()); ++item) {
    for (int64_t t : tids[static_cast<size_t>(item)]) {
      transactions[static_cast<size_t>(t)].push_back(item);
    }
  }
  data::TransactionDb db(num_items);
  for (const auto& txn : transactions) db.AddTransaction(txn);
  return db;
}

std::vector<lits::Itemset> ProbeItemsets(int32_t num_items) {
  std::vector<lits::Itemset> itemsets;
  itemsets.push_back(lits::Itemset{});  // whole space
  std::vector<int32_t> all;
  for (int32_t item = 0; item < num_items; ++item) {
    itemsets.push_back(lits::Itemset({item}));
    all.push_back(item);
  }
  for (int32_t a = 0; a < num_items; ++a) {
    for (int32_t b = a + 1; b < num_items; ++b) {
      itemsets.push_back(lits::Itemset({a, b}));
    }
  }
  itemsets.push_back(lits::Itemset(std::move(all)));
  return itemsets;
}

std::vector<DensityFixture> DensityFixtures() {
  std::vector<DensityFixture> fixtures;

  {
    // All-dense: every item in (almost) every transaction — bitmap/run
    // containers, full words, counts near |D|.
    constexpr int64_t kN = 70000;
    std::vector<std::vector<int64_t>> tids(4);
    for (int64_t t = 0; t < kN; ++t) {
      tids[0].push_back(t);
      tids[1].push_back(t);
      if (t % 2 == 0) tids[2].push_back(t);
      if (t % 3 != 0) tids[3].push_back(t);
    }
    fixtures.push_back(
        {"all-dense", DbFromItemTids(4, kN, tids), ProbeItemsets(4)});
  }
  {
    // All-sparse: a handful of scattered TIDs per item — tiny array
    // containers, most chunks absent.
    constexpr int64_t kN = 200000;
    std::vector<std::vector<int64_t>> tids(6);
    for (int32_t item = 0; item < 6; ++item) {
      for (int64_t j = 0; j < 40; ++j) {
        tids[static_cast<size_t>(item)].push_back(
            (item * 37 + j * 4813) % kN);
      }
      std::sort(tids[static_cast<size_t>(item)].begin(),
                tids[static_cast<size_t>(item)].end());
      tids[static_cast<size_t>(item)].erase(
          std::unique(tids[static_cast<size_t>(item)].begin(),
                      tids[static_cast<size_t>(item)].end()),
          tids[static_cast<size_t>(item)].end());
    }
    fixtures.push_back(
        {"all-sparse", DbFromItemTids(6, kN, tids), ProbeItemsets(6)});
  }
  {
    // Run-heavy: solid overlapping blocks spanning chunk boundaries.
    constexpr int64_t kN = 150000;
    std::vector<std::vector<int64_t>> tids(4);
    for (int32_t item = 0; item < 4; ++item) {
      const int64_t begin = item * 20000;
      const int64_t end = begin + 50000;
      for (int64_t t = begin; t < end; ++t) {
        tids[static_cast<size_t>(item)].push_back(t);
      }
    }
    fixtures.push_back(
        {"run-heavy", DbFromItemTids(4, kN, tids), ProbeItemsets(4)});
  }
  {
    // Empty items: items 3 and 4 never occur; every itemset containing
    // them must count 0 on every kernel.
    constexpr int64_t kN = 5000;
    std::vector<std::vector<int64_t>> tids(5);
    for (int64_t t = 0; t < kN; t += 3) tids[0].push_back(t);
    for (int64_t t = 1; t < kN; t += 3) tids[1].push_back(t);
    for (int64_t t = 0; t < kN; t += 7) tids[2].push_back(t);
    fixtures.push_back(
        {"empty-items", DbFromItemTids(5, kN, tids), ProbeItemsets(5)});
  }
  {
    // Promotion boundary: scattered cardinalities 4095 / 4096 / 4097 in
    // one chunk (array, array, bitmap) plus 4097 CONTIGUOUS (a run
    // container above the array threshold).
    constexpr int64_t kN = 16384;
    std::vector<std::vector<int64_t>> tids(4);
    for (int64_t i = 0; i < 4095; ++i) tids[0].push_back(2 * i);
    for (int64_t i = 0; i < 4096; ++i) tids[1].push_back(2 * i + 1);
    for (int64_t i = 0; i < 4097; ++i) tids[2].push_back(3 * i);
    for (int64_t i = 0; i < 4097; ++i) tids[3].push_back(6000 + i);
    fixtures.push_back({"promotion-boundary", DbFromItemTids(4, kN, tids),
                        ProbeItemsets(4)});
  }
  {
    // Chunk boundary: TIDs packed tight around 65535/65536 and 131071,
    // so containers split exactly at chunk edges.
    constexpr int64_t kN = 131073;
    std::vector<std::vector<int64_t>> tids(3);
    tids[0] = {65535, 65536, 131071, 131072};
    for (int64_t t = 65000; t <= 66000; ++t) tids[1].push_back(t);
    for (int64_t t = 0; t < kN; t += 65536) tids[2].push_back(t);
    fixtures.push_back({"chunk-boundary", DbFromItemTids(3, kN, tids),
                        ProbeItemsets(3)});
  }
  return fixtures;
}

TEST(LawsKernelOracle, AdversarialDensityFixtures) {
  for (const DensityFixture& fixture : DensityFixtures()) {
    SCOPED_TRACE(fixture.name);
    const data::VerticalIndex flat(fixture.db);
    const data::RoaringIndex roaring(fixture.db);
    const lits::SupportCounter counter(fixture.itemsets,
                                       fixture.db.num_items());
    const std::vector<int64_t> horizontal = counter.CountAbsolute(fixture.db);
    const std::vector<double> horizontal_rel =
        counter.CountRelative(fixture.db);
    for (const data::simd::Level level : RunnableLevels()) {
      data::simd::ScopedLevelForTesting scoped(level);
      EXPECT_EQ(CheckAllKernels(counter, flat, roaring, horizontal,
                                horizontal_rel),
                "")
          << "level=" << data::simd::LevelName(level);
    }
  }
}

}  // namespace
}  // namespace focus::core

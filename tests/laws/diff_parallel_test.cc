// Differential oracles: the parallel scan kernels must be BIT-IDENTICAL
// to their serial counterparts for every pool size, because shard
// boundaries depend only on (|D|, num_shards) and per-shard integer
// counts merge in shard order. Checked across generated workloads and
// pool sizes 1/2/4/8 (the PR-1 guarantee every later perf PR must keep).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/cluster_deviation.h"
#include "core/dt_deviation.h"
#include "core/lits_deviation.h"
#include "itemsets/support_counter.h"
#include "proptest/generators.h"
#include "proptest/proptest.h"

namespace focus::core {
namespace {

using proptest::Check;
using proptest::PropResult;
using proptest::Rng;

constexpr int kPoolSizes[] = {1, 2, 4, 8};

TEST(DiffParallel, SupportCounterIdenticalAcrossPoolSizes) {
  EXPECT_TRUE(Check<proptest::LitsWorkload>(
      "diff/support-counter-parallel", proptest::LitsWorkloadDomain(),
      [](const proptest::LitsWorkload& workload) {
        const data::TransactionDb db = proptest::MaterializeDb(workload);
        Rng itemset_rng(workload.quest.seed + 101);
        std::vector<lits::Itemset> itemsets;
        const int count = static_cast<int>(itemset_rng.IntIn(0, 30));
        for (int i = 0; i < count; ++i) {
          itemsets.push_back(proptest::GenItemset(
              itemset_rng, workload.quest.num_items, 5));
        }
        const lits::SupportCounter counter(itemsets,
                                           workload.quest.num_items);
        const std::vector<int64_t> serial = counter.CountAbsolute(db);
        const std::vector<double> serial_rel = counter.CountRelative(db);
        for (const int threads : kPoolSizes) {
          common::ThreadPool pool(threads);
          if (counter.CountAbsoluteParallel(db, pool) != serial)
            return PropResult::Fail(
                "absolute counts differ with " + std::to_string(threads) +
                " threads");
          if (counter.CountRelativeParallel(db, pool) != serial_rel)
            return PropResult::Fail(
                "relative supports differ with " + std::to_string(threads) +
                " threads");
        }
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(10)));
}

TEST(DiffParallel, DtMeasuresAndDeviationIdenticalAcrossPoolSizes) {
  EXPECT_TRUE(Check<proptest::DtPair>(
      "diff/dt-parallel-scan", proptest::DtPairDomain(),
      [](const proptest::DtPair& pair) {
        const data::Dataset d1 = proptest::MaterializeDataset(pair.a);
        const data::Dataset d2 = proptest::MaterializeDataset(pair.b);
        const DtModel m1(proptest::BuildTree(pair.a, d1), d1);
        const DtModel m2(proptest::BuildTree(pair.b, d2), d2);
        const DtGcr gcr(m1, m2);

        Rng box_rng(pair.a.gen.seed + 7);
        const std::optional<data::Box> focus =
            box_rng.Chance(0.5)
                ? std::optional<data::Box>(
                      proptest::GenBox(box_rng, d1.schema()))
                : std::nullopt;

        const std::vector<double> serial_measures =
            gcr.Measures(m1.tree(), m2.tree(), d1, focus);
        const std::vector<double> serial_tree =
            DtMeasuresOverTree(m1.tree(), d2);
        DtDeviationOptions serial_options;
        const double serial_dev = DtDeviation(m1, d1, m2, d2, serial_options);

        for (const int threads : kPoolSizes) {
          common::ThreadPool pool(threads);
          if (gcr.Measures(m1.tree(), m2.tree(), d1, focus, &pool) !=
              serial_measures)
            return PropResult::Fail("GCR measures differ with " +
                                    std::to_string(threads) + " threads");
          if (DtMeasuresOverTree(m1.tree(), d2, &pool) != serial_tree)
            return PropResult::Fail("tree measures differ with " +
                                    std::to_string(threads) + " threads");
          DtDeviationOptions pooled = serial_options;
          pooled.pool = &pool;
          if (DtDeviation(m1, d1, m2, d2, pooled) != serial_dev)
            return PropResult::Fail("deviation differs with " +
                                    std::to_string(threads) + " threads");
        }
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(6)));
}

TEST(DiffParallel, ClusterDeviationIdenticalAcrossPoolSizes) {
  EXPECT_TRUE(Check<proptest::ClusterPair>(
      "diff/cluster-parallel-scan", proptest::ClusterPairDomain(),
      [](const proptest::ClusterPair& pair) {
        const data::Dataset d1 = proptest::MaterializeBlobs(pair.a);
        const data::Dataset d2 = proptest::MaterializeBlobs(pair.b);
        const cluster::ClusterModel m1 = proptest::MineCluster(pair.a, d1);
        const cluster::ClusterModel m2 = proptest::MineCluster(pair.b, d2);

        Rng box_rng(pair.a.seed + 13);
        ClusterDeviationOptions options;
        if (box_rng.Chance(0.5)) {
          options.focus =
              proptest::GenBox(box_rng, proptest::ClusterSchema(pair.a));
        }
        const double serial = ClusterDeviation(m1, d1, m2, d2, options);
        for (const int threads : kPoolSizes) {
          common::ThreadPool pool(threads);
          ClusterDeviationOptions pooled = options;
          pooled.pool = &pool;
          if (ClusterDeviation(m1, d1, m2, d2, pooled) != serial)
            return PropResult::Fail("cluster deviation differs with " +
                                    std::to_string(threads) + " threads");
        }
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(8)));
}

TEST(DiffParallel, SharedPoolReusedAcrossCallsStaysIdentical) {
  // One long-lived pool serving many scans (the serving-layer usage
  // pattern) must behave exactly like fresh pools per call.
  EXPECT_TRUE(Check<proptest::LitsPair>(
      "diff/shared-pool-reuse", proptest::LitsPairDomain(),
      [](const proptest::LitsPair& pair) {
        const data::TransactionDb da = proptest::MaterializeDb(pair.a);
        const data::TransactionDb db = proptest::MaterializeDb(pair.b);
        const lits::LitsModel ma = proptest::Mine(pair.a, da);
        const lits::LitsModel mb = proptest::Mine(pair.b, db);
        const std::vector<lits::Itemset> gcr = LitsGcr(ma, mb);
        if (gcr.empty()) return PropResult::Ok();
        const lits::SupportCounter counter(gcr, da.num_items());
        common::ThreadPool shared(3);
        const std::vector<int64_t> first =
            counter.CountAbsoluteParallel(da, shared);
        for (int repeat = 0; repeat < 3; ++repeat) {
          if (counter.CountAbsoluteParallel(da, shared) != first)
            return PropResult::Fail("repeat scan on a shared pool differed");
        }
        if (counter.CountAbsolute(da) != first)
          return PropResult::Fail("shared-pool scan differs from serial");
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(8)));
}

}  // namespace
}  // namespace focus::core

// Backend-exactness laws for the out-of-core block store: every consumer
// of a data::TxnSourceRef must produce EXPECT_EQ-exact results whether
// the transactions come from the in-memory TransactionDb or from a
// BlockTransactionDb — across block sizes (4 KiB / 64 KiB / 1 MiB), cache
// budgets that force eviction mid-scan, and pool sizes 1/2/4/8. Every
// count is an integer and every derived double divides the same integers,
// so nothing here allows a tolerance. Pinned consumers: SupportCounter
// (serial + parallel), VerticalIndex and RoaringIndex builds (including
// the spilled roaring build), Apriori mining, LitsDeviation, bootstrap
// significance, sampling extraction (plain and pooled), the serving
// layer's content hash, and the two-stage change monitor.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/functions.h"
#include "core/lits_deviation.h"
#include "core/monitor.h"
#include "core/significance.h"
#include "data/block_store.h"
#include "data/block_txn_db.h"
#include "data/roaring_index.h"
#include "data/sampling.h"
#include "data/transaction_db.h"
#include "data/txn_source.h"
#include "data/vertical_index.h"
#include "stats/rng.h"
#include "datagen/quest_gen.h"
#include "itemsets/apriori.h"
#include "itemsets/itemset.h"
#include "itemsets/support_counter.h"
#include "serve/model_cache.h"

namespace focus::data {
namespace {

TransactionDb MakeDb(int64_t num_transactions, int32_t num_items,
                     uint64_t seed, uint64_t pattern_seed = 0) {
  datagen::QuestParams params;
  params.num_transactions = num_transactions;
  params.num_items = num_items;
  params.avg_transaction_length = 8;
  params.num_patterns = 60;
  params.avg_pattern_length = 3;
  params.seed = seed;
  params.pattern_seed = pattern_seed;
  return datagen::GenerateQuest(params);
}

std::string WriteBlockBytes(const TransactionDb& db, int64_t block_size) {
  std::ostringstream out;
  BlockTransactionDbWriter writer(out, db.num_items(), block_size);
  for (int64_t t = 0; t < db.num_transactions(); ++t) {
    writer.Add(db.Transaction(t));
  }
  writer.Finish();
  return std::move(out).str();
}

std::unique_ptr<BlockTransactionDb> MustOpen(std::string bytes,
                                             const BlockStoreOptions& options) {
  std::string error;
  auto db = BlockTransactionDb::Open(
      std::make_unique<std::istringstream>(std::move(bytes)), options, &error);
  EXPECT_NE(db, nullptr) << error;
  return db;
}

void ExpectSameDb(const TransactionDb& a, const TransactionDb& b) {
  ASSERT_EQ(a.num_items(), b.num_items());
  ASSERT_EQ(a.num_transactions(), b.num_transactions());
  for (int64_t t = 0; t < a.num_transactions(); ++t) {
    const std::span<const int32_t> x = a.Transaction(t);
    const std::span<const int32_t> y = b.Transaction(t);
    ASSERT_EQ(std::vector<int32_t>(x.begin(), x.end()),
              std::vector<int32_t>(y.begin(), y.end()))
        << "transaction " << t;
  }
}

void ExpectSameModel(const lits::LitsModel& a, const lits::LitsModel& b) {
  EXPECT_EQ(a.min_support(), b.min_support());
  EXPECT_EQ(a.num_transactions(), b.num_transactions());
  EXPECT_EQ(a.num_items(), b.num_items());
  EXPECT_EQ(a.supports(), b.supports());
}

std::vector<lits::Itemset> ProbeItemsets(int32_t num_items) {
  std::vector<lits::Itemset> probes;
  for (int32_t i = 0; i < 10 && i < num_items; ++i) {
    probes.push_back(lits::Itemset{i});
  }
  probes.push_back(lits::Itemset{0, 1});
  probes.push_back(lits::Itemset{2, 5});
  probes.push_back(lits::Itemset{10, 11});
  probes.push_back(lits::Itemset{3, 7, 9});
  probes.push_back(lits::Itemset{1, 2, 3, 4});
  return probes;
}

const int64_t kBlockSizes[] = {int64_t{4} << 10, int64_t{64} << 10,
                               int64_t{1} << 20};

TEST(LawsBlockStore, CountsExactAcrossBlockSizesBudgetsAndPools) {
  const TransactionDb db = MakeDb(4000, 80, 101);
  // SupportCounter holds pointers into the probe vector; keep it alive.
  const std::vector<lits::Itemset> probes = ProbeItemsets(db.num_items());
  const lits::SupportCounter counter(probes, db.num_items());
  const std::vector<int64_t> ref_abs = counter.CountAbsolute(db);
  const std::vector<double> ref_rel = counter.CountRelative(db);

  bool saw_eviction = false;
  for (const int64_t block_size : kBlockSizes) {
    const std::string bytes = WriteBlockBytes(db, block_size);
    for (const int64_t budget : {int64_t{1}, int64_t{32} << 20}) {
      BlockStoreOptions options;
      options.cache_budget_bytes = budget;
      const auto block_db = MustOpen(bytes, options);
      ASSERT_NE(block_db, nullptr);
      const TxnSourceRef source(*block_db);

      EXPECT_EQ(counter.CountAbsolute(source), ref_abs);
      EXPECT_EQ(counter.CountRelative(source), ref_rel);

      for (const int num_threads : {1, 2, 4, 8}) {
        common::ThreadPool pool(num_threads);
        BlockStoreOptions pooled = options;
        pooled.pool = &pool;
        const auto pooled_db = MustOpen(bytes, pooled);
        ASSERT_NE(pooled_db, nullptr);
        const TxnSourceRef pooled_source(*pooled_db);
        EXPECT_EQ(counter.CountAbsoluteParallel(pooled_source, pool), ref_abs)
            << "block_size=" << block_size << " budget=" << budget
            << " threads=" << num_threads;
        EXPECT_EQ(counter.CountRelativeParallel(pooled_source, pool), ref_rel);
        saw_eviction = saw_eviction || pooled_db->cache_evictions() > 0;
      }
    }
  }
  // The 1-byte budget at the smallest block size must have churned.
  EXPECT_TRUE(saw_eviction);
}

TEST(LawsBlockStore, IndexBuildsExactAcrossBlockSizes) {
  const TransactionDb db = MakeDb(3000, 120, 103);
  const VerticalIndex vertical_ref(db);
  const RoaringIndex roaring_ref(db);

  common::ThreadPool pool(4);
  for (const int64_t block_size : kBlockSizes) {
    BlockStoreOptions options;
    options.pool = &pool;
    options.cache_budget_bytes = 1;  // every scan decodes under churn
    const auto block_db = MustOpen(WriteBlockBytes(db, block_size), options);
    ASSERT_NE(block_db, nullptr);
    const TxnSourceRef source(*block_db);

    EXPECT_EQ(VerticalIndex(source), vertical_ref)
        << "block_size=" << block_size;
    EXPECT_EQ(RoaringIndex(source), roaring_ref)
        << "block_size=" << block_size;
  }
}

TEST(LawsBlockStore, RoaringSpilledBuildIdenticalToDirect) {
  const TransactionDb db = MakeDb(3000, 120, 105);
  const RoaringIndex direct(db);
  const std::string scratch =
      ::testing::TempDir() + "/laws_block_store_spill.blk";

  common::ThreadPool pool(2);
  BlockStoreOptions options;
  options.pool = &pool;
  const auto block_db = MustOpen(WriteBlockBytes(db, int64_t{4} << 10),
                                 options);
  ASSERT_NE(block_db, nullptr);
  const TxnSourceRef source(*block_db);

  RoaringBuildOptions spill;
  spill.spill = RoaringBuildOptions::Spill::kAlways;
  spill.scratch_path = scratch;
  spill.scratch_block_size = int64_t{4} << 10;
  EXPECT_EQ(RoaringIndex(source, spill), direct);
  // The scratch file is deleted once the build finishes.
  EXPECT_EQ(std::remove(scratch.c_str()), -1);

  RoaringBuildOptions auto_spill = spill;
  auto_spill.spill = RoaringBuildOptions::Spill::kAuto;
  auto_spill.spill_budget_bytes = 1;  // always above budget -> spills
  EXPECT_EQ(RoaringIndex(source, auto_spill), direct);
}

TEST(LawsBlockStore, MiningDeviationAndSignificanceExact) {
  const TransactionDb d1 = MakeDb(1500, 80, 201, /*pattern_seed=*/777);
  const TransactionDb d2 = MakeDb(1500, 80, 202, /*pattern_seed=*/777);

  lits::AprioriOptions apriori;
  apriori.min_support = 0.02;
  apriori.max_itemset_size = 3;
  const core::DeviationFunction fn;

  const lits::LitsModel m1 = lits::Apriori(d1, apriori);
  const lits::LitsModel m2 = lits::Apriori(d2, apriori);
  const double dev_mem = core::LitsDeviation(m1, d1, m2, d2, fn);

  core::SignificanceOptions significance;
  significance.num_replicates = 5;
  const core::SignificanceResult sig_mem =
      core::LitsDeviationSignificance(d1, d2, apriori, fn, significance);

  common::ThreadPool pool(4);
  BlockStoreOptions options;
  options.pool = &pool;
  for (const int64_t block_size :
       {int64_t{4} << 10, int64_t{1} << 20}) {
    const auto b1 = MustOpen(WriteBlockBytes(d1, block_size), options);
    const auto b2 = MustOpen(WriteBlockBytes(d2, block_size), options);
    ASSERT_NE(b1, nullptr);
    ASSERT_NE(b2, nullptr);
    const TxnSourceRef s1(*b1);
    const TxnSourceRef s2(*b2);

    const lits::LitsModel bm1 = lits::Apriori(s1, apriori);
    const lits::LitsModel bm2 = lits::Apriori(s2, apriori);
    ExpectSameModel(m1, bm1);
    ExpectSameModel(m2, bm2);

    EXPECT_EQ(core::LitsDeviation(bm1, s1, bm2, s2, fn), dev_mem)
        << "block_size=" << block_size;

    const core::SignificanceResult sig_blk =
        core::LitsDeviationSignificance(s1, s2, apriori, fn, significance);
    EXPECT_EQ(sig_blk.deviation, sig_mem.deviation);
    EXPECT_EQ(sig_blk.significance_percent, sig_mem.significance_percent);
  }
}

TEST(LawsBlockStore, SamplingPooledAndContentHashExact) {
  const TransactionDb d1 = MakeDb(1200, 80, 301);
  const TransactionDb d2 = MakeDb(900, 80, 302);

  common::ThreadPool pool(2);
  BlockStoreOptions options;
  options.pool = &pool;
  options.cache_budget_bytes = 1 << 12;
  const auto b1 = MustOpen(WriteBlockBytes(d1, int64_t{4} << 10), options);
  const auto b2 = MustOpen(WriteBlockBytes(d2, int64_t{4} << 10), options);
  ASSERT_NE(b1, nullptr);
  ASSERT_NE(b2, nullptr);
  const TxnSourceRef s1(*b1);
  const TxnSourceRef s2(*b2);

  std::mt19937_64 rng = stats::MakeRng(42);
  const std::vector<int64_t> indices = SampleIndicesWithReplacement(
      d1.num_transactions(), d1.num_transactions(), rng);
  ExpectSameDb(TakeTransactions(d1, indices), TakeTransactions(s1, indices));

  // Pooled extraction over the logical concatenation d1 ++ d2 equals
  // extraction from the materialized pool.
  TransactionDb pool_db(d1.num_items());
  for (int64_t t = 0; t < d1.num_transactions(); ++t) {
    pool_db.AddTransaction(d1.Transaction(t));
  }
  for (int64_t t = 0; t < d2.num_transactions(); ++t) {
    pool_db.AddTransaction(d2.Transaction(t));
  }
  const std::vector<int64_t> pooled_indices = SampleIndicesWithReplacement(
      pool_db.num_transactions(), pool_db.num_transactions(), rng);
  ExpectSameDb(TakeTransactions(pool_db, pooled_indices),
               TakeTransactionsPooled(s1, s2, pooled_indices));
  // Mixed backends pool too.
  ExpectSameDb(TakeTransactions(pool_db, pooled_indices),
               TakeTransactionsPooled(d1, s2, pooled_indices));

  EXPECT_EQ(serve::TxnSourceContentHash(s1),
            serve::TransactionDbContentHash(d1));
  EXPECT_EQ(serve::TxnSourceContentHash(d1),
            serve::TransactionDbContentHash(d1));
}

TEST(LawsBlockStore, MonitorReportsExactAcrossBackends) {
  const TransactionDb reference = MakeDb(1200, 80, 401, /*pattern_seed=*/555);
  const TransactionDb snapshot = MakeDb(1200, 80, 402, /*pattern_seed=*/555);

  core::MonitorOptions options;
  options.apriori.min_support = 0.02;
  options.apriori.max_itemset_size = 3;
  options.calibration_replicates = 3;
  options.significance.num_replicates = 5;
  const core::LitsChangeMonitor monitor(reference, options);

  const core::MonitorReport mem = monitor.Inspect(snapshot);

  common::ThreadPool pool(4);
  BlockStoreOptions store;
  store.pool = &pool;
  store.cache_budget_bytes = 1 << 12;
  const auto block_snapshot =
      MustOpen(WriteBlockBytes(snapshot, int64_t{4} << 10), store);
  ASSERT_NE(block_snapshot, nullptr);
  const core::MonitorReport blk =
      monitor.Inspect(TxnSourceRef(*block_snapshot));

  EXPECT_EQ(blk.upper_bound, mem.upper_bound);
  EXPECT_EQ(blk.screened_out, mem.screened_out);
  EXPECT_EQ(blk.deviation, mem.deviation);
  EXPECT_EQ(blk.significance_percent, mem.significance_percent);
  EXPECT_EQ(blk.alert, mem.alert);
}

}  // namespace
}  // namespace focus::data

// Sharding equivalence laws: a sharded deployment must be OBSERVATIONALLY
// IDENTICAL to a single-node MonitorService — not approximately, but to
// the last bit of every double. Per-stream deviations trivially so (each
// stream lives wholly on one shard); cross-shard compares because the
// scatter-gather path composes the exact functions (LitsGcr-equivalent
// set_union + LitsExtendModel + LitsAggregateRegionDiffs) the single-node
// LitsDeviation composes; cross-stream summaries because both sides fold
// per-stream values through serve::AggregateSummary in canonical
// sorted-name order (FP addition is order-sensitive, so the order IS the
// contract). Checked for shard counts 1/2/4/8 over every (f,g).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/functions.h"
#include "core/lits_deviation.h"
#include "datagen/quest_gen.h"
#include "io/data_io.h"
#include "serve/api_util.h"
#include "serve/monitor_service.h"
#include "shard/shard_router.h"
#include "shard/shard_worker.h"
#include "shard/wire.h"

namespace focus::shard {
namespace {

constexpr int kShardCounts[] = {1, 2, 4, 8};
constexpr int kNumStreams = 10;

data::TransactionDb QuestDb(uint64_t seed, int num_transactions = 250) {
  datagen::QuestParams params;
  params.num_transactions = num_transactions;
  params.num_items = 50;
  params.num_patterns = 80;
  params.avg_pattern_length = 4;
  params.avg_transaction_length = 8;
  params.seed = seed;
  params.pattern_seed = 99;
  return datagen::GenerateQuest(params);
}

std::string Serialize(const data::TransactionDb& db) {
  std::ostringstream out;
  io::SaveTransactionDb(db, out);
  return out.str();
}

std::string StreamName(int i) { return "stream-" + std::to_string(i); }

// Every (f_code, g_code) pair the wire can carry.
struct FgCase {
  uint8_t f, g;
};
constexpr FgCase kFgCases[] = {
    {kDiffAbs, kAggSum}, {kDiffAbs, kAggMax},
    {kDiffScaled, kAggSum}, {kDiffScaled, kAggMax}};

// Large caches so no mined model is evicted mid-test (evictions would
// turn compares into 404s, not wrong answers).
serve::MonitorServiceOptions ServiceOptions() {
  serve::MonitorServiceOptions options;
  options.model_cache_capacity = 256;
  return options;
}

// The single-node oracle: one MonitorService holding every stream.
class SingleNode {
 public:
  explicit SingleNode(const data::TransactionDb* reference)
      : service_(ServiceOptions(), nullptr) {
    for (int i = 0; i < kNumStreams; ++i) {
      service_.AddStream(StreamName(i), *reference);
    }
  }

  ~SingleNode() { service_.Shutdown(); }

  void Submit(int stream, int64_t sequence, const data::TransactionDb& db) {
    serve::Snapshot snapshot;
    snapshot.stream = StreamName(stream);
    snapshot.sequence = sequence;
    snapshot.source = "laws";
    snapshot.db = db;
    ASSERT_TRUE(service_.Submit(std::move(snapshot)));
  }

  serve::MonitorService service_;
};

// A sharded deployment over in-process workers (LocalShardChannel runs
// the same frame codecs as the socket path, without the sockets).
class Sharded {
 public:
  Sharded(int num_shards, const data::TransactionDb* reference) {
    for (int i = 0; i < num_shards; ++i) {
      ShardWorkerOptions options;
      options.shard_index = static_cast<uint32_t>(i);
      options.service = ServiceOptions();
      workers_.push_back(
          std::make_unique<ShardWorker>(options, reference, nullptr));
      channels_.push_back(
          std::make_unique<LocalShardChannel>(workers_.back().get()));
      shards_.push_back(channels_.back().get());
    }
    router_ = std::make_unique<ShardRouter>(shards_);
  }

  ~Sharded() {
    for (auto& worker : workers_) worker->Stop();
  }

  void Flush() {
    for (auto& worker : workers_) worker->service().Flush();
  }

  ShardRouter& router() { return *router_; }

 private:
  std::vector<std::unique_ptr<ShardWorker>> workers_;
  std::vector<std::unique_ptr<LocalShardChannel>> channels_;
  std::vector<ShardChannel*> shards_;
  std::unique_ptr<ShardRouter> router_;
};

// Feeds the identical snapshot schedule to both sides: two snapshots for
// even streams, one for odd (so "latest processed" differs per stream),
// and returns each stream's final content hash from the sharded submits.
std::map<int, uint64_t> FeedBoth(SingleNode* single, Sharded* sharded) {
  std::map<int, uint64_t> hashes;
  for (int i = 0; i < kNumStreams; ++i) {
    const data::TransactionDb first = QuestDb(10 + i);
    single->Submit(i, 0, first);
    SubmitResultBody result;
    std::string error;
    EXPECT_EQ(sharded->router().Submit(StreamName(i), "laws",
                                       Serialize(first), &result, &error),
              ShardRouter::Status::kOk)
        << error;
    EXPECT_EQ(result.status, 202);
    EXPECT_EQ(result.sequence, 0);
    hashes[i] = result.content_hash;
    if (i % 2 == 0) {
      const data::TransactionDb second = QuestDb(100 + i);
      single->Submit(i, 1, second);
      EXPECT_EQ(sharded->router().Submit(StreamName(i), "laws",
                                         Serialize(second), &result, &error),
                ShardRouter::Status::kOk)
          << error;
      EXPECT_EQ(result.status, 202);
      EXPECT_EQ(result.sequence, 1);
      hashes[i] = result.content_hash;
    }
  }
  single->service_.Flush();
  sharded->Flush();
  return hashes;
}

TEST(LawsShard, PerStreamDeviationIdenticalToSingleNode) {
  const data::TransactionDb reference = QuestDb(1);
  for (const int num_shards : kShardCounts) {
    // A fresh oracle per shard count: CUSUM is sequential, so re-feeding
    // one long-lived single node would accumulate state the fresh sharded
    // deployment never saw.
    SingleNode single(&reference);
    Sharded sharded(num_shards, &reference);
    FeedBoth(&single, &sharded);
    for (int i = 0; i < kNumStreams; ++i) {
      for (const FgCase& fg : kFgCases) {
        core::DeviationFunction fn;
        ASSERT_TRUE(DeviationFunctionFromCodes(fg.f, fg.g, &fn));
        const auto expected =
            single.service_.QueryDeviation(StreamName(i), fn);
        ASSERT_TRUE(expected.has_value());

        DeviationResultBody actual;
        std::string error;
        ASSERT_EQ(sharded.router().QueryDeviation(StreamName(i), fg.f, fg.g,
                                                  &actual, &error),
                  ShardRouter::Status::kOk)
            << error;
        ASSERT_EQ(actual.found, 1);
        EXPECT_EQ(actual.has_deviation ? 1 : 0,
                  expected->has_deviation ? 1 : 0);
        // Bit-identical, not nearly-equal.
        EXPECT_EQ(actual.deviation, expected->deviation)
            << "shards=" << num_shards << " stream=" << i << " f="
            << int{fg.f} << " g=" << int{fg.g};
        EXPECT_EQ(actual.status.sequence, expected->status.sequence);
        EXPECT_EQ(actual.status.delta_star, expected->status.delta_star);
        EXPECT_EQ(actual.status.deviation, expected->status.deviation);
        EXPECT_EQ(actual.status.cusum, expected->status.cusum);
        EXPECT_EQ(actual.status.num_transactions,
                  expected->status.num_transactions);
      }
    }
  }
}

TEST(LawsShard, CompareIdenticalToSingleNodeIncludingCrossShard) {
  const data::TransactionDb reference = QuestDb(1);
  SingleNode single(&reference);
  for (const int num_shards : kShardCounts) {
    Sharded sharded(num_shards, &reference);
    const std::map<int, uint64_t> hashes = FeedBoth(&single, &sharded);

    auto single_compare = [&](uint64_t left, uint64_t right,
                              const core::DeviationFunction& fn) {
      const auto left_mined =
          single.service_.model_cache().LookupMined(left);
      const auto right_mined =
          single.service_.model_cache().LookupMined(right);
      EXPECT_TRUE(left_mined.has_value());
      EXPECT_TRUE(right_mined.has_value());
      return core::LitsDeviation(*left_mined->model, left_mined->index_ref(),
                                 *right_mined->model, right_mined->index_ref(),
                                 fn);
    };

    // All ordered pairs: covers same-shard pairs, cross-shard pairs, and
    // self-compare, under every (f,g).
    for (int a = 0; a < kNumStreams; ++a) {
      for (int b = 0; b < kNumStreams; ++b) {
        for (const FgCase& fg : kFgCases) {
          core::DeviationFunction fn;
          ASSERT_TRUE(DeviationFunctionFromCodes(fg.f, fg.g, &fn));
          const double expected =
              single_compare(hashes.at(a), hashes.at(b), fn);

          double actual = -1.0;
          std::vector<uint64_t> missing;
          std::string error;
          ASSERT_EQ(sharded.router().Compare(hashes.at(a), hashes.at(b),
                                             fg.f, fg.g, &actual, &missing,
                                             &error),
                    ShardRouter::Status::kOk)
              << error;
          EXPECT_EQ(actual, expected)
              << "shards=" << num_shards << " pair=(" << a << "," << b
              << ") f=" << int{fg.f} << " g=" << int{fg.g};
        }
      }
    }
  }
}

TEST(LawsShard, SummaryIdenticalToSingleNodeFold) {
  const data::TransactionDb reference = QuestDb(1);
  SingleNode single(&reference);
  for (const int num_shards : kShardCounts) {
    Sharded sharded(num_shards, &reference);
    FeedBoth(&single, &sharded);
    for (const FgCase& fg : kFgCases) {
      core::DeviationFunction fn;
      ASSERT_TRUE(DeviationFunctionFromCodes(fg.f, fg.g, &fn));

      // The single-node fold, exactly as HandleSummary performs it.
      std::vector<serve::SummaryEntry> expected_entries;
      for (const std::string& name : single.service_.ListStreams()) {
        const auto deviation = single.service_.QueryDeviation(name, fn);
        ASSERT_TRUE(deviation.has_value());
        expected_entries.push_back(serve::SummaryEntry{
            name, deviation->has_deviation, deviation->deviation});
      }
      const serve::SummaryResult expected =
          serve::AggregateSummary(&expected_entries, fn.g);

      std::vector<serve::SummaryEntry> entries;
      serve::SummaryResult actual;
      std::string error;
      ASSERT_EQ(sharded.router().Summary(fg.f, fg.g, &entries, &actual,
                                         &error),
                ShardRouter::Status::kOk)
          << error;
      EXPECT_EQ(actual.num_streams, expected.num_streams);
      EXPECT_EQ(actual.num_values, expected.num_values);
      EXPECT_EQ(actual.has_aggregate, expected.has_aggregate);
      EXPECT_EQ(actual.aggregate, expected.aggregate)
          << "shards=" << num_shards << " f=" << int{fg.f} << " g="
          << int{fg.g};
      ASSERT_EQ(entries.size(), expected_entries.size());
      for (size_t i = 0; i < entries.size(); ++i) {
        EXPECT_EQ(entries[i].stream, expected_entries[i].stream);
        EXPECT_EQ(entries[i].deviation, expected_entries[i].deviation);
      }
    }
  }
}

TEST(LawsShard, SequencesStayDensePerStreamAcrossShardCounts) {
  // Submitting k snapshots to a stream yields sequences 0..k-1 whatever
  // the shard count — the worker owns numbering, not the front end.
  const data::TransactionDb reference = QuestDb(1);
  const std::string snapshot = Serialize(QuestDb(2));
  for (const int num_shards : kShardCounts) {
    Sharded sharded(num_shards, &reference);
    for (int64_t k = 0; k < 3; ++k) {
      SubmitResultBody result;
      std::string error;
      ASSERT_EQ(sharded.router().Submit("one-stream", "laws", snapshot,
                                        &result, &error),
                ShardRouter::Status::kOk)
          << error;
      EXPECT_EQ(result.status, 202);
      EXPECT_EQ(result.sequence, k) << "shards=" << num_shards;
    }
    sharded.Flush();
  }
}

}  // namespace
}  // namespace focus::shard

// Laws pinning the 8-row lockstep routing batches (FlatTreeRouter::
// RouteRows and the CountRowRangesMaybeParallel drivers) bit-identical to
// row-at-a-time routing: every batched leaf equals both Route and the
// tree's own LeafIndexOf — under arbitrary batch widths 1..8 and gathered
// (non-contiguous, unsorted) row lists — and the dt measure scans and
// deviations are EXPECT_EQ-exact across forced FOCUS_DT_BATCH modes
// (ScopedBatchRoutingForTesting both ways, since tiny proptest trees
// would otherwise never take the batched product path) and serial vs
// pool sizes 1/2/4/8, with and without a focussing box.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/dt_deviation.h"
#include "core/flat_router.h"
#include "proptest/generators.h"
#include "proptest/proptest.h"

namespace focus::core {
namespace {

using proptest::Check;
using proptest::PropResult;
using proptest::Rng;

TEST(DtBatchLaws, RouteRowsMatchesRouteAndLeafIndexOf) {
  EXPECT_TRUE(Check<proptest::DtPair>(
      "dt/route-rows-matches-route", proptest::DtPairDomain(),
      [](const proptest::DtPair& pair) {
        const data::Dataset dataset = proptest::MaterializeDataset(pair.a);
        const dt::DecisionTree tree = proptest::BuildTree(pair.a, dataset);
        const FlatTreeRouter router(tree);

        // Row-at-a-time reference: the flat router agrees with the tree's
        // own traversal on every row.
        std::vector<int> reference(dataset.num_rows());
        for (int64_t row = 0; row < dataset.num_rows(); ++row) {
          reference[row] = router.Route(dataset.Row(row));
          if (reference[row] != tree.LeafIndexOf(dataset.Row(row)))
            return PropResult::Fail("Route != LeafIndexOf at row " +
                                    std::to_string(row));
        }

        // Contiguous batches of every width 1..kBatch, including the
        // short remainder batch at the end of the scan.
        for (int width = 1; width <= FlatTreeRouter::kBatch; ++width) {
          for (int64_t begin = 0; begin < dataset.num_rows();
               begin += width) {
            const int n = static_cast<int>(
                std::min<int64_t>(width, dataset.num_rows() - begin));
            int64_t rows[FlatTreeRouter::kBatch];
            for (int i = 0; i < n; ++i) rows[i] = begin + i;
            int leaves[FlatTreeRouter::kBatch];
            router.RouteRows(dataset, rows, n, leaves);
            for (int i = 0; i < n; ++i) {
              if (leaves[i] != reference[rows[i]])
                return PropResult::Fail(
                    "contiguous batch width " + std::to_string(width) +
                    " diverged at row " + std::to_string(rows[i]));
            }
          }
        }

        // Gathered batches: random unsorted row subsets, the shape the
        // focussed GCR scan produces after filtering a range.
        Rng rng(pair.a.gen.seed ^ (pair.b.gen.seed << 1) ^ 0x9e3779b9u);
        for (int trial = 0; trial < 32; ++trial) {
          const int n =
              static_cast<int>(rng.IntIn(1, FlatTreeRouter::kBatch));
          int64_t rows[FlatTreeRouter::kBatch];
          for (int i = 0; i < n; ++i) {
            rows[i] = rng.IntIn(0, dataset.num_rows() - 1);
          }
          int leaves[FlatTreeRouter::kBatch];
          router.RouteRows(dataset, rows, n, leaves);
          for (int i = 0; i < n; ++i) {
            if (leaves[i] != reference[rows[i]])
              return PropResult::Fail("gathered batch diverged at row " +
                                      std::to_string(rows[i]));
          }
        }
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(10)));
}

TEST(DtBatchLaws, MeasuresExactAcrossPoolSizes) {
  EXPECT_TRUE(Check<proptest::DtPair>(
      "dt/batched-measures-pool-invariant", proptest::DtPairDomain(),
      [](const proptest::DtPair& pair) {
        const data::Dataset d1 = proptest::MaterializeDataset(pair.a);
        const data::Dataset d2 = proptest::MaterializeDataset(pair.b);
        const DtModel m1(proptest::BuildTree(pair.a, d1), d1);
        const DtModel m2(proptest::BuildTree(pair.b, d2), d2);
        const DtGcr gcr(m1, m2);

        Rng box_rng(pair.a.gen.seed + 7 * pair.b.gen.seed);
        const data::Box focus = proptest::GenBox(box_rng, d1.schema());

        // Row-at-a-time references: proptest trees are tiny, so kAuto
        // would never take the batched product path — pin the mode both
        // ways so every scan shape is exercised regardless of tree size.
        std::vector<double> serial;
        std::vector<double> serial_focus;
        std::vector<double> leaf_serial;
        {
          ScopedBatchRoutingForTesting row_mode(BatchRouting::kNever);
          serial = gcr.Measures(m1.tree(), m2.tree(), d1, std::nullopt);
          serial_focus = gcr.Measures(m1.tree(), m2.tree(), d1, focus);
          leaf_serial = DtMeasuresOverTree(m1.tree(), d1);
        }
        ScopedBatchRoutingForTesting batch_mode(BatchRouting::kAlways);
        if (gcr.Measures(m1.tree(), m2.tree(), d1, std::nullopt) != serial)
          return PropResult::Fail("batched GCR measures != row-at-a-time");
        if (gcr.Measures(m1.tree(), m2.tree(), d1, focus) != serial_focus)
          return PropResult::Fail(
              "batched focussed GCR measures != row-at-a-time");
        if (DtMeasuresOverTree(m1.tree(), d1) != leaf_serial)
          return PropResult::Fail("batched leaf measures != row-at-a-time");
        for (const int threads : {1, 2, 4, 8}) {
          common::ThreadPool pool(threads);
          // Integer counts merged in shard order: the sharded batched
          // scans must be EXACTLY the serial ones, not merely close.
          if (gcr.Measures(m1.tree(), m2.tree(), d1, std::nullopt, &pool) !=
              serial)
            return PropResult::Fail("GCR measures moved under pool " +
                                    std::to_string(threads));
          if (gcr.Measures(m1.tree(), m2.tree(), d1, focus, &pool) !=
              serial_focus)
            return PropResult::Fail(
                "focussed GCR measures moved under pool " +
                std::to_string(threads));
          if (DtMeasuresOverTree(m1.tree(), d1, &pool) != leaf_serial)
            return PropResult::Fail("leaf measures moved under pool " +
                                    std::to_string(threads));
        }

        DtDeviationOptions serial_options;
        const double deviation = DtDeviation(m1, d1, m2, d2, serial_options);
        common::ThreadPool pool(4);
        DtDeviationOptions pooled = serial_options;
        pooled.pool = &pool;
        if (DtDeviation(m1, d1, m2, d2, pooled) != deviation)
          return PropResult::Fail("pooled deviation != serial deviation");
        return PropResult::Ok();
      },
      proptest::Config::FromEnv(8)));
}

}  // namespace
}  // namespace focus::core

#include <vector>

#include <gtest/gtest.h>

#include "datagen/quest_gen.h"
#include "itemsets/apriori.h"
#include "itemsets/incremental.h"

namespace focus::lits {
namespace {

data::TransactionDb GenBlock(uint64_t seed, int64_t n,
                             double pattern_length = 3,
                             uint64_t pattern_seed = 99) {
  datagen::QuestParams params;
  params.num_transactions = n;
  params.num_items = 60;
  params.num_patterns = 15;
  params.avg_pattern_length = pattern_length;
  params.avg_transaction_length = 8;
  params.seed = seed;
  params.pattern_seed = pattern_seed;
  return datagen::GenerateQuest(params);
}

void ExpectModelsEqual(const LitsModel& incremental, const LitsModel& batch) {
  EXPECT_EQ(incremental.size(), batch.size());
  for (const auto& [itemset, support] : batch.supports()) {
    EXPECT_NEAR(incremental.SupportOr(itemset, -1.0), support, 1e-12)
        << itemset.ToString();
  }
}

TEST(IncrementalMinerTest, MatchesBatchAfterOneAppend) {
  const data::TransactionDb initial = GenBlock(1, 800);
  const data::TransactionDb block = GenBlock(2, 200);

  AprioriOptions options;
  options.min_support = 0.03;
  IncrementalMiner miner(initial, options);
  miner.Append(block);

  data::TransactionDb full = initial;
  full.Append(block);
  ExpectModelsEqual(miner.model(), Apriori(full, options));
  EXPECT_EQ(miner.database().num_transactions(), 1000);
}

TEST(IncrementalMinerTest, MatchesBatchAcrossManyAppends) {
  const data::TransactionDb initial = GenBlock(1, 500);
  AprioriOptions options;
  options.min_support = 0.04;
  IncrementalMiner miner(initial, options);

  data::TransactionDb full = initial;
  for (uint64_t step = 0; step < 5; ++step) {
    // Alternate same-process and drifting blocks of varying size.
    const data::TransactionDb block =
        GenBlock(10 + step, 100 + 40 * step,
                 step % 2 == 0 ? 3 : 5, step % 2 == 0 ? 99 : 7);
    miner.Append(block);
    full.Append(block);
    ExpectModelsEqual(miner.model(), Apriori(full, options));
  }
}

TEST(IncrementalMinerTest, SameProcessBlocksNeedFewCandidateScans) {
  const data::TransactionDb initial = GenBlock(1, 1000);
  AprioriOptions options;
  options.min_support = 0.05;
  IncrementalMiner miner(initial, options);
  for (uint64_t step = 0; step < 4; ++step) {
    miner.Append(GenBlock(20 + step, 100));
  }
  // Some appends may surface winner candidates, but the count is bounded
  // by the number of appends.
  EXPECT_LE(miner.old_database_scans(), 4);
}

TEST(IncrementalMinerTest, DriftIsReflectedInTheModel) {
  const data::TransactionDb initial = GenBlock(1, 400);
  AprioriOptions options;
  options.min_support = 0.05;
  IncrementalMiner miner(initial, options);
  const int64_t before = miner.model().size();
  // Massive drifted block with longer patterns: the model must change.
  miner.Append(GenBlock(50, 1200, 6, 7));
  data::TransactionDb full = initial;
  full.Append(GenBlock(50, 1200, 6, 7));
  ExpectModelsEqual(miner.model(), Apriori(full, options));
  EXPECT_NE(miner.model().size(), before);
}

TEST(IncrementalMinerTest, ThresholdFloorRespected) {
  // Tiny initial database: the absolute-count floor applies identically
  // to batch and incremental mining.
  data::TransactionDb initial(5);
  initial.AddTransaction(std::vector<int32_t>{0, 1});
  initial.AddTransaction(std::vector<int32_t>{0, 1});
  initial.AddTransaction(std::vector<int32_t>{2});
  AprioriOptions options;
  options.min_support = 0.01;
  IncrementalMiner miner(initial, options);
  data::TransactionDb block(5);
  block.AddTransaction(std::vector<int32_t>{2});
  block.AddTransaction(std::vector<int32_t>{3, 4});
  miner.Append(block);

  data::TransactionDb full = initial;
  full.Append(block);
  ExpectModelsEqual(miner.model(), Apriori(full, options));
  EXPECT_TRUE(miner.model().Contains(Itemset({2})));   // now appears twice
  EXPECT_FALSE(miner.model().Contains(Itemset({3})));  // still once
}

}  // namespace
}  // namespace focus::lits

// Unit tests for data::RoaringIndex — the array/bitmap/run hybrid vertical
// index. Covered here: container promotion at its exact thresholds, the
// 65536-TID chunk boundary, mixed-container intersections, the AND-NOT
// deviation kernel, the materialized-TID reference view, save/load (round
// trip, canonical fixed point, and hostile-input rejection), and parity
// with the flat VerticalIndex on generated data.

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/roaring_index.h"
#include "data/transaction_db.h"
#include "data/vertical_index.h"
#include "datagen/quest_gen.h"

namespace focus::data {
namespace {

// Builds a database of `num_transactions` transactions over `num_items`
// items where item i appears exactly at the TIDs listed in tids[i].
TransactionDb DbFromItemTids(int32_t num_items, int64_t num_transactions,
                             const std::vector<std::vector<int64_t>>& tids) {
  std::vector<std::vector<int32_t>> transactions(
      static_cast<size_t>(num_transactions));
  for (int32_t item = 0; item < static_cast<int32_t>(tids.size()); ++item) {
    for (int64_t t : tids[static_cast<size_t>(item)]) {
      transactions[static_cast<size_t>(t)].push_back(item);
    }
  }
  TransactionDb db(num_items);
  for (const auto& txn : transactions) db.AddTransaction(txn);
  return db;
}

std::vector<uint32_t> AsU32(const std::vector<int64_t>& tids) {
  std::vector<uint32_t> out;
  out.reserve(tids.size());
  for (int64_t t : tids) out.push_back(static_cast<uint32_t>(t));
  return out;
}

// Intersection size of sorted TID lists — the reference the index's
// counts are checked against.
int64_t ReferenceIntersect(const std::vector<std::vector<int64_t>>& tids,
                           const std::vector<int32_t>& items) {
  if (items.empty()) return 0;
  std::set<int64_t> acc(tids[static_cast<size_t>(items[0])].begin(),
                        tids[static_cast<size_t>(items[0])].end());
  for (size_t m = 1; m < items.size(); ++m) {
    std::set<int64_t> next;
    for (int64_t t : tids[static_cast<size_t>(items[m])]) {
      if (acc.count(t)) next.insert(t);
    }
    acc = std::move(next);
  }
  return static_cast<int64_t>(acc.size());
}

TEST(RoaringIndexTest, TinyDbCountsMatchManualEnumeration) {
  // Same shape as the VerticalIndex tiny test: 5 transactions, 5 items.
  TransactionDb db(5);
  db.AddTransaction(std::vector<int32_t>{0, 1, 2});
  db.AddTransaction(std::vector<int32_t>{0, 1});
  db.AddTransaction(std::vector<int32_t>{0, 2});
  db.AddTransaction(std::vector<int32_t>{1, 2, 3});
  db.AddTransaction(std::vector<int32_t>{0, 1, 2, 3});
  const RoaringIndex index(db);

  EXPECT_EQ(index.num_items(), 5);
  EXPECT_EQ(index.num_transactions(), 5);
  EXPECT_EQ(index.ItemCount(0), 4);
  EXPECT_EQ(index.ItemCount(3), 2);
  EXPECT_EQ(index.ItemCount(4), 0);
  EXPECT_EQ(index.CountIntersection({}), 5);
  EXPECT_EQ(index.CountIntersection(std::vector<int32_t>{0, 1}), 3);
  EXPECT_EQ(index.CountIntersection(std::vector<int32_t>{0, 1, 2, 3}), 1);
  EXPECT_EQ(index.CountIntersection(std::vector<int32_t>{0, 4}), 0);
  EXPECT_EQ(index.CountPairIntersection(1, 2), 3);
  EXPECT_EQ(index.CountPairIntersection(2, 1), 3);
  // {1,2} but not 0: transaction 3 only.
  EXPECT_EQ(index.CountDifference(std::vector<int32_t>{1, 2}, 0), 1);
  // not-0 over the whole space: transaction 3.
  EXPECT_EQ(index.CountDifference({}, 0), 1);
}

TEST(RoaringIndexTest, EmptyDatabaseAndEmptyItems) {
  const TransactionDb db(3);
  const RoaringIndex index(db);
  EXPECT_EQ(index.num_items(), 3);
  EXPECT_EQ(index.num_transactions(), 0);
  EXPECT_EQ(index.ItemCount(1), 0);
  EXPECT_EQ(index.CountIntersection({}), 0);
  EXPECT_EQ(index.CountIntersection(std::vector<int32_t>{0, 1}), 0);
  EXPECT_TRUE(index.ItemTids(2).empty());
  const auto counts = index.CountContainers();
  EXPECT_EQ(counts.arrays + counts.bitmaps + counts.runs, 0);
}

TEST(RoaringIndexTest, PromotionAtTheArrayBitmapBoundary) {
  // Every-other TIDs make run compression useless (one run per TID), so
  // the encoding decision is purely array vs bitmap: 4096 scattered TIDs
  // stay an array, 4097 promote to a bitmap.
  for (const int64_t card : {4095, 4096, 4097}) {
    std::vector<std::vector<int64_t>> tids(1);
    for (int64_t i = 0; i < card; ++i) tids[0].push_back(2 * i);
    const TransactionDb db = DbFromItemTids(1, 2 * card, tids);
    const RoaringIndex index(db);
    const auto counts = index.CountContainers();
    if (card <= 4096) {
      EXPECT_EQ(counts.arrays, 1) << "card=" << card;
      EXPECT_EQ(counts.bitmaps, 0) << "card=" << card;
    } else {
      EXPECT_EQ(counts.arrays, 0) << "card=" << card;
      EXPECT_EQ(counts.bitmaps, 1) << "card=" << card;
    }
    EXPECT_EQ(counts.runs, 0) << "card=" << card;
    EXPECT_EQ(index.ItemCount(0), card);
    EXPECT_EQ(index.ItemTids(0), AsU32(tids[0]));
  }
}

TEST(RoaringIndexTest, ContiguousBlocksBecomeRunContainers) {
  // One solid block of 10000 TIDs: a single run beats both array (2B/TID)
  // and bitmap (8 KiB).
  std::vector<std::vector<int64_t>> tids(1);
  for (int64_t t = 100; t < 10100; ++t) tids[0].push_back(t);
  const TransactionDb db = DbFromItemTids(1, 20000, tids);
  const RoaringIndex index(db);
  const auto counts = index.CountContainers();
  EXPECT_EQ(counts.runs, 1);
  EXPECT_EQ(counts.arrays + counts.bitmaps, 0);
  EXPECT_EQ(index.ItemCount(0), 10000);
  EXPECT_EQ(index.ItemTids(0), AsU32(tids[0]));
}

TEST(RoaringIndexTest, ChunkBoundarySplitsContainers) {
  // TIDs 65535 and 65536 are adjacent but live in different chunks.
  std::vector<std::vector<int64_t>> tids = {{65535, 65536}, {65535}, {65536}};
  const TransactionDb db = DbFromItemTids(3, 65537, tids);
  const RoaringIndex index(db);
  const auto counts = index.CountContainers();
  EXPECT_EQ(counts.arrays, 4);  // item 0 has one per chunk, items 1/2 one
  EXPECT_EQ(index.ItemCount(0), 2);
  EXPECT_EQ(index.CountPairIntersection(0, 1), 1);
  EXPECT_EQ(index.CountPairIntersection(0, 2), 1);
  EXPECT_EQ(index.CountPairIntersection(1, 2), 0);
  EXPECT_EQ(index.ItemTids(0), AsU32(tids[0]));
}

TEST(RoaringIndexTest, MixedContainerIntersections) {
  // Item 0: bitmap (every even TID of chunk 0 → 32768 scattered TIDs).
  // Item 1: run (solid block 1000..29999).
  // Item 2: array (multiples of 100, 656 TIDs).
  constexpr int64_t kN = 65536;
  std::vector<std::vector<int64_t>> tids(3);
  for (int64_t t = 0; t < kN; t += 2) tids[0].push_back(t);
  for (int64_t t = 1000; t < 30000; ++t) tids[1].push_back(t);
  for (int64_t t = 0; t < kN; t += 100) tids[2].push_back(t);
  const TransactionDb db = DbFromItemTids(3, kN, tids);
  const RoaringIndex index(db);

  const auto counts = index.CountContainers();
  EXPECT_EQ(counts.bitmaps, 1);
  EXPECT_EQ(counts.runs, 1);
  EXPECT_EQ(counts.arrays, 1);

  for (const std::vector<int32_t>& items :
       {std::vector<int32_t>{0, 1}, std::vector<int32_t>{0, 2},
        std::vector<int32_t>{1, 2}, std::vector<int32_t>{0, 1, 2}}) {
    EXPECT_EQ(index.CountIntersection(items), ReferenceIntersect(tids, items));
    if (items.size() == 2) {
      EXPECT_EQ(index.CountPairIntersection(items[0], items[1]),
                index.CountPairIntersection(items[1], items[0]));
    }
  }
  // AND-NOT across mixed types.
  for (int32_t excluded = 0; excluded < 3; ++excluded) {
    std::vector<int32_t> rest;
    for (int32_t item = 0; item < 3; ++item) {
      if (item != excluded) rest.push_back(item);
    }
    const std::vector<int32_t> all = {0, 1, 2};
    EXPECT_EQ(index.CountDifference(rest, excluded),
              index.CountIntersection(rest) - index.CountIntersection(all));
  }
}

TEST(RoaringIndexTest, MatchesFlatIndexOnGeneratedData) {
  datagen::QuestParams params;
  params.num_transactions = 4000;
  params.num_items = 60;
  params.num_patterns = 12;
  params.seed = 77;
  const TransactionDb db = datagen::GenerateQuest(params);
  const RoaringIndex roaring(db);
  const VerticalIndex flat(db);

  ASSERT_EQ(roaring.num_items(), flat.num_items());
  ASSERT_EQ(roaring.num_transactions(), flat.num_transactions());
  for (int32_t item = 0; item < flat.num_items(); ++item) {
    EXPECT_EQ(roaring.ItemCount(item), flat.ItemCount(item)) << item;
  }
  for (int32_t a = 0; a < 20; ++a) {
    for (int32_t b = a + 1; b < 20; ++b) {
      const std::vector<int32_t> pair = {a, b};
      EXPECT_EQ(roaring.CountIntersection(pair), flat.CountIntersection(pair));
      const std::vector<int32_t> triple = {a, b, (b + 17) % 60};
      if (triple[2] > b) {
        EXPECT_EQ(roaring.CountIntersection(triple),
                  flat.CountIntersection(triple));
      }
      EXPECT_EQ(roaring.CountDifference(std::vector<int32_t>{a}, b),
                flat.CountDifference(std::vector<int32_t>{a}, b));
    }
  }
}

TEST(RoaringIndexTest, SaveLoadRoundTripsAndIsAFixedPoint) {
  datagen::QuestParams params;
  params.num_transactions = 3000;
  params.num_items = 40;
  params.num_patterns = 8;
  params.seed = 5;
  const TransactionDb db = datagen::GenerateQuest(params);
  const RoaringIndex index(db);

  std::ostringstream out;
  index.SaveTo(out);
  const std::string bytes = out.str();

  std::istringstream in(bytes);
  std::string error;
  const auto loaded = RoaringIndex::LoadFrom(in, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(*loaded, index);

  std::ostringstream out2;
  loaded->SaveTo(out2);
  EXPECT_EQ(out2.str(), bytes);  // save ∘ load == identity on saved bytes
}

TEST(RoaringIndexTest, SaveLoadCoversEveryContainerType) {
  constexpr int64_t kN = 65536;
  std::vector<std::vector<int64_t>> tids(3);
  for (int64_t t = 0; t < kN; t += 2) tids[0].push_back(t);   // bitmap
  for (int64_t t = 50; t < 20000; ++t) tids[1].push_back(t);  // run
  for (int64_t t = 0; t < kN; t += 1000) tids[2].push_back(t);  // array
  const TransactionDb db = DbFromItemTids(3, kN, tids);
  const RoaringIndex index(db);
  const auto counts = index.CountContainers();
  ASSERT_EQ(counts.arrays, 1);
  ASSERT_EQ(counts.bitmaps, 1);
  ASSERT_EQ(counts.runs, 1);

  std::ostringstream out;
  index.SaveTo(out);
  std::istringstream in(out.str());
  const auto loaded = RoaringIndex::LoadFrom(in, nullptr);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, index);
  for (int32_t item = 0; item < 3; ++item) {
    EXPECT_EQ(loaded->ItemTids(item), AsU32(tids[static_cast<size_t>(item)]));
  }
}

TEST(RoaringIndexTest, LoadRejectsHostileInputs) {
  TransactionDb db(2);
  db.AddTransaction(std::vector<int32_t>{0, 1});
  db.AddTransaction(std::vector<int32_t>{0});
  const RoaringIndex index(db);
  std::ostringstream out;
  index.SaveTo(out);
  const std::string bytes = out.str();

  const auto rejects = [](std::string corrupted, const char* what) {
    std::istringstream in(corrupted);
    std::string error;
    EXPECT_FALSE(RoaringIndex::LoadFrom(in, &error).has_value()) << what;
    EXPECT_FALSE(error.empty()) << what;
  };

  rejects("", "empty input");
  rejects(bytes.substr(0, bytes.size() - 1), "truncated");
  rejects(bytes + "x", "trailing bytes");
  {
    std::string bad = bytes;
    bad[0] ^= 0x1;
    rejects(bad, "bad magic");
  }
  {
    std::string bad = bytes;
    bad[4] ^= 0x2;
    rejects(bad, "bad version");
  }
  {
    // Claim an absurd item count.
    std::string bad = bytes;
    bad[8] = '\xff';
    bad[9] = '\xff';
    bad[10] = '\xff';
    bad[11] = '\x7f';
    rejects(bad, "oversized item count");
  }
}

TEST(RoaringIndexTest, SparseDataIsSmallerThanFlatBitmaps) {
  // 200 items over 200k transactions, each item in ~0.1% of them: the
  // flat index pays 8 bytes per 64 transactions per item regardless;
  // roaring pays ~2 bytes per occurrence.
  datagen::QuestParams params;
  params.num_transactions = 200000;
  params.num_items = 200;
  params.avg_transaction_length = 4;
  params.num_patterns = 20;
  params.seed = 11;
  const TransactionDb db = datagen::GenerateQuest(params);
  const RoaringIndex roaring(db);
  const VerticalIndex flat(db);
  EXPECT_LT(roaring.MemoryBytes(), flat.MemoryBytes() / 2);
}

}  // namespace
}  // namespace focus::data

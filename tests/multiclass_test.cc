// dt-models with MORE than two classes: the paper's framework is
// k-class throughout (§2.1: "each leaf node ... is associated with k
// regions"); these tests pin that the substrate and the deviation
// machinery hold beyond the binary generators used in the evaluation.

#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/dt_deviation.h"
#include "core/misclassification.h"
#include "tree/cart_builder.h"
#include "stats/rng.h"
#include "tree/pruning.h"

namespace focus::core {
namespace {

data::Schema XySchema() {
  return data::Schema(
      {data::Schema::Numeric("x", 0.0, 1.0), data::Schema::Numeric("y", 0.0, 1.0)},
      /*num_classes=*/3);
}

// Three class bands over x, optionally shifted.
data::Dataset ThreeBands(uint64_t seed, double shift, int64_t n) {
  std::mt19937_64 rng = stats::MakeRng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  data::Dataset dataset(XySchema());
  for (int64_t i = 0; i < n; ++i) {
    const double x = unit(rng);
    const double y = unit(rng);
    int label;
    if (x < 0.33 + shift) {
      label = 0;
    } else if (x < 0.66 + shift) {
      label = 1;
    } else {
      label = 2;
    }
    dataset.AddRow(std::vector<double>{x, y}, label);
  }
  return dataset;
}

TEST(MulticlassTest, CartLearnsThreeBands) {
  const data::Dataset dataset = ThreeBands(1, 0.0, 4000);
  dt::CartOptions cart;
  cart.max_depth = 4;
  cart.min_leaf_size = 50;
  const dt::DecisionTree tree = dt::BuildCart(dataset, cart);
  int64_t correct = 0;
  for (int64_t i = 0; i < dataset.num_rows(); ++i) {
    if (tree.Predict(dataset.Row(i)) == dataset.Label(i)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / 4000.0, 0.97);
}

TEST(MulticlassTest, MeasuresSumToOneAcrossThreeClasses) {
  const data::Dataset dataset = ThreeBands(2, 0.0, 3000);
  dt::CartOptions cart;
  cart.max_depth = 4;
  const DtModel model(dt::BuildCart(dataset, cart), dataset);
  double total = 0.0;
  for (int leaf = 0; leaf < model.num_leaves(); ++leaf) {
    for (int c = 0; c < 3; ++c) total += model.measure(leaf, c);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(MulticlassTest, DeviationDetectsBandShift) {
  const data::Dataset d1 = ThreeBands(1, 0.0, 4000);
  const data::Dataset d2_same = ThreeBands(2, 0.0, 4000);
  const data::Dataset d2_shift = ThreeBands(3, 0.15, 4000);
  dt::CartOptions cart;
  cart.max_depth = 4;
  const DtModel m1(dt::BuildCart(d1, cart), d1);
  const DtModel m_same(dt::BuildCart(d2_same, cart), d2_same);
  const DtModel m_shift(dt::BuildCart(d2_shift, cart), d2_shift);

  DtDeviationOptions options;
  const double same = DtDeviation(m1, d1, m_same, d2_same, options);
  const double shifted = DtDeviation(m1, d1, m_shift, d2_shift, options);
  EXPECT_GT(shifted, 3.0 * same);
}

TEST(MulticlassTest, ClassFilteredPiecesSumToWhole) {
  const data::Dataset d1 = ThreeBands(1, 0.0, 2000);
  const data::Dataset d2 = ThreeBands(2, 0.1, 2000);
  dt::CartOptions cart;
  cart.max_depth = 3;
  const DtModel m1(dt::BuildCart(d1, cart), d1);
  const DtModel m2(dt::BuildCart(d2, cart), d2);
  DtDeviationOptions all;
  double parts = 0.0;
  for (int c = 0; c < 3; ++c) {
    DtDeviationOptions one;
    one.class_filter = c;
    parts += DtDeviation(m1, d1, m2, d2, one);
  }
  EXPECT_NEAR(DtDeviation(m1, d1, m2, d2, all), parts, 1e-9);
}

TEST(MulticlassTest, MisclassificationTheoremHoldsForThreeClasses) {
  const data::Dataset d1 = ThreeBands(1, 0.0, 3000);
  const data::Dataset d2 = ThreeBands(4, 0.2, 2000);
  dt::CartOptions cart;
  cart.max_depth = 4;
  const dt::DecisionTree tree = dt::BuildCart(d1, cart);
  EXPECT_NEAR(MisclassificationError(tree, d2),
              MisclassificationErrorViaFocus(tree, d2), 1e-12);
}

TEST(MulticlassTest, PruningWorksWithThreeClasses) {
  data::Dataset noisy = ThreeBands(5, 0.0, 4000);
  std::mt19937_64 rng = stats::MakeRng(9);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int64_t i = 0; i < noisy.num_rows(); ++i) {
    if (unit(rng) < 0.2) {
      noisy.SetLabel(i, static_cast<int>(unit(rng) * 3.0) % 3);
    }
  }
  const data::Dataset validation = ThreeBands(6, 0.0, 2000);
  dt::CartOptions cart;
  cart.max_depth = 10;
  cart.min_leaf_size = 10;
  cart.min_gain = 1e-6;
  const dt::DecisionTree overfit = dt::BuildCart(noisy, cart);
  const dt::DecisionTree pruned = dt::PruneReducedError(overfit, validation);
  EXPECT_LE(pruned.num_leaves(), overfit.num_leaves());
  EXPECT_LE(MisclassificationError(pruned, validation),
            MisclassificationError(overfit, validation) + 1e-12);
}

}  // namespace
}  // namespace focus::core

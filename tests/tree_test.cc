#include <vector>

#include <gtest/gtest.h>

#include "datagen/class_gen.h"
#include "tree/cart_builder.h"
#include "tree/decision_tree.h"
#include "tree/leaf_regions.h"

namespace focus::dt {
namespace {

using datagen::ClassFunction;
using datagen::ClassGenColumns;
using datagen::ClassGenParams;
using datagen::GenerateClassification;

data::Schema XySchema() {
  return data::Schema(
      {data::Schema::Numeric("x", 0.0, 1.0), data::Schema::Numeric("y", 0.0, 1.0)},
      /*num_classes=*/2);
}

// A checkerboard-ish dataset separable by x < 0.5.
data::Dataset SeparableDataset(int64_t n) {
  data::Dataset dataset(XySchema());
  for (int64_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i % 100) / 100.0;
    const double y = static_cast<double>((i * 37) % 100) / 100.0;
    dataset.AddRow(std::vector<double>{x, y}, x < 0.5 ? 0 : 1);
  }
  return dataset;
}

TEST(DecisionTreeTest, ManualConstructionRoutesCorrectly) {
  DecisionTree tree(XySchema());
  const int root = tree.AddInternalNode(0, 0.5, 0);
  const int left = tree.AddLeafNode({10, 0});
  const int right = tree.AddLeafNode({0, 10});
  tree.SetChildren(root, left, right);

  EXPECT_EQ(tree.num_leaves(), 2);
  EXPECT_EQ(tree.Predict(std::vector<double>{0.2, 0.9}), 0);
  EXPECT_EQ(tree.Predict(std::vector<double>{0.7, 0.1}), 1);
  EXPECT_EQ(tree.LeafIndexOf(std::vector<double>{0.2, 0.9}), 0);
  EXPECT_EQ(tree.LeafIndexOf(std::vector<double>{0.7, 0.1}), 1);
  EXPECT_EQ(tree.Depth(), 1);
}

TEST(DecisionTreeTest, SingleLeafTree) {
  DecisionTree tree(XySchema());
  tree.AddLeafNode({3, 7});
  EXPECT_EQ(tree.Predict(std::vector<double>{0.5, 0.5}), 1);
  EXPECT_EQ(tree.Depth(), 0);
  EXPECT_EQ(tree.num_leaves(), 1);
}

TEST(CartTest, LearnsSeparableBoundary) {
  const data::Dataset dataset = SeparableDataset(2000);
  CartOptions options;
  options.max_depth = 4;
  options.min_leaf_size = 20;
  const DecisionTree tree = BuildCart(dataset, options);

  int64_t correct = 0;
  for (int64_t i = 0; i < dataset.num_rows(); ++i) {
    if (tree.Predict(dataset.Row(i)) == dataset.Label(i)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / 2000.0, 0.99);
}

TEST(CartTest, RespectsDepthLimit) {
  ClassGenParams params;
  params.num_rows = 3000;
  params.function = ClassFunction::kF2;
  const data::Dataset dataset = GenerateClassification(params);
  CartOptions options;
  options.max_depth = 3;
  options.min_leaf_size = 10;
  const DecisionTree tree = BuildCart(dataset, options);
  EXPECT_LE(tree.Depth(), 3);
  EXPECT_LE(tree.num_leaves(), 8);
}

TEST(CartTest, PureDataYieldsSingleLeaf) {
  data::Dataset dataset(XySchema());
  for (int i = 0; i < 100; ++i) {
    dataset.AddRow(std::vector<double>{i / 100.0, 0.5}, 0);
  }
  const DecisionTree tree = BuildCart(dataset, CartOptions{});
  EXPECT_EQ(tree.num_leaves(), 1);
}

TEST(CartTest, LearnsCategoricalSplit) {
  // Class determined entirely by a categorical attribute.
  data::Schema schema({data::Schema::Numeric("x", 0.0, 1.0),
                       data::Schema::Categorical("c", 6)},
                      2);
  data::Dataset dataset(schema);
  for (int i = 0; i < 1200; ++i) {
    const int code = i % 6;
    dataset.AddRow(std::vector<double>{(i % 97) / 97.0,
                                       static_cast<double>(code)},
                   (code == 1 || code == 4) ? 0 : 1);
  }
  CartOptions options;
  options.max_depth = 2;
  options.min_leaf_size = 10;
  const DecisionTree tree = BuildCart(dataset, options);
  int64_t correct = 0;
  for (int64_t i = 0; i < dataset.num_rows(); ++i) {
    if (tree.Predict(dataset.Row(i)) == dataset.Label(i)) ++correct;
  }
  EXPECT_EQ(correct, dataset.num_rows());
}

TEST(CartTest, F1TreeIsAccurate) {
  ClassGenParams params;
  params.num_rows = 10000;
  params.function = ClassFunction::kF1;
  const data::Dataset dataset = GenerateClassification(params);
  CartOptions options;
  options.max_depth = 6;
  options.min_leaf_size = 50;
  const DecisionTree tree = BuildCart(dataset, options);
  int64_t correct = 0;
  for (int64_t i = 0; i < dataset.num_rows(); ++i) {
    if (tree.Predict(dataset.Row(i)) == dataset.Label(i)) ++correct;
  }
  // F1 is a pure age rule; CART should nail it almost exactly.
  EXPECT_GT(static_cast<double>(correct) / 10000.0, 0.98);
}

// ---- leaf regions ----

TEST(LeafRegionsTest, BoxesMatchRouting) {
  ClassGenParams params;
  params.num_rows = 5000;
  params.function = ClassFunction::kF4;
  const data::Dataset dataset = GenerateClassification(params);
  CartOptions options;
  options.max_depth = 5;
  options.min_leaf_size = 50;
  const DecisionTree tree = BuildCart(dataset, options);
  const std::vector<data::Box> boxes = ExtractLeafBoxes(tree);
  ASSERT_EQ(static_cast<int>(boxes.size()), tree.num_leaves());

  // Every tuple's routed leaf box must contain the tuple, and no other
  // leaf box may (the leaf regions partition the attribute space, §2.1).
  for (int64_t i = 0; i < 500; ++i) {
    const auto row = dataset.Row(i * 10);
    const int leaf = tree.LeafIndexOf(row);
    int containing = 0;
    for (int b = 0; b < static_cast<int>(boxes.size()); ++b) {
      if (boxes[b].Contains(tree.schema(), row)) {
        ++containing;
        EXPECT_EQ(b, leaf);
      }
    }
    EXPECT_EQ(containing, 1);
  }
}

TEST(LeafRegionsTest, SingleLeafIsFullSpace) {
  DecisionTree tree(XySchema());
  tree.AddLeafNode({1, 1});
  const std::vector<data::Box> boxes = ExtractLeafBoxes(tree);
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_TRUE(boxes[0] == data::Box::Full(tree.schema()));
}

TEST(LeafRegionsTest, CategoricalSplitPartitionsMask) {
  data::Schema schema({data::Schema::Categorical("c", 4)}, 2);
  DecisionTree tree(schema);
  const int root = tree.AddInternalNode(0, 0.0, 0b0011);
  const int left = tree.AddLeafNode({5, 0});
  const int right = tree.AddLeafNode({0, 5});
  tree.SetChildren(root, left, right);
  const std::vector<data::Box> boxes = ExtractLeafBoxes(tree);
  const uint64_t domain = 0b1111;
  EXPECT_EQ(boxes[0].bound(0).mask & domain, 0b0011u);
  EXPECT_EQ(boxes[1].bound(0).mask & domain, 0b1100u);
}

}  // namespace
}  // namespace focus::dt

#include <sstream>

#include <gtest/gtest.h>

#include "datagen/class_gen.h"
#include "datagen/quest_gen.h"
#include "io/model_io.h"
#include "itemsets/apriori.h"
#include "tree/cart_builder.h"
#include "tree/leaf_regions.h"

namespace focus::io {
namespace {

lits::LitsModel MineSomething() {
  datagen::QuestParams params;
  params.num_transactions = 400;
  params.num_items = 50;
  params.num_patterns = 15;
  params.seed = 11;
  const data::TransactionDb db = datagen::GenerateQuest(params);
  lits::AprioriOptions options;
  options.min_support = 0.03;
  return lits::Apriori(db, options);
}

TEST(LitsModelIoTest, RoundTripPreservesEverything) {
  const lits::LitsModel original = MineSomething();
  std::stringstream buffer;
  SaveLitsModel(original, buffer);
  const auto loaded = LoadLitsModel(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_DOUBLE_EQ(loaded->min_support(), original.min_support());
  EXPECT_EQ(loaded->num_transactions(), original.num_transactions());
  EXPECT_EQ(loaded->num_items(), original.num_items());
  EXPECT_EQ(loaded->size(), original.size());
  for (const auto& [itemset, support] : original.supports()) {
    EXPECT_DOUBLE_EQ(loaded->SupportOr(itemset, -1.0), support)
        << itemset.ToString();
  }
}

TEST(LitsModelIoTest, RejectsGarbage) {
  std::stringstream bad("not a model at all");
  EXPECT_FALSE(LoadLitsModel(bad).has_value());
  std::stringstream truncated("focus-lits-v1\n0.01 100 50 5\n0.5 1 2\n");
  EXPECT_FALSE(LoadLitsModel(truncated).has_value());
  std::stringstream out_of_universe("focus-lits-v1\n0.01 100 50 1\n0.5 99\n");
  EXPECT_FALSE(LoadLitsModel(out_of_universe).has_value());
  std::stringstream bad_support("focus-lits-v1\n0.01 100 50 1\n1.5 3\n");
  EXPECT_FALSE(LoadLitsModel(bad_support).has_value());
}

TEST(SchemaIoTest, RoundTrip) {
  const data::Schema original = datagen::ClassGenSchema();
  std::stringstream buffer;
  SaveSchema(original, buffer);
  const auto loaded = LoadSchema(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(*loaded == original);
}

TEST(SchemaIoTest, RejectsMalformed) {
  std::stringstream bad("focus-schema-v1\n2 2\nnumeric 0 1 x\nweird 3 y\n");
  EXPECT_FALSE(LoadSchema(bad).has_value());
  std::stringstream inverted("focus-schema-v1\n1 0\nnumeric 5 1 x\n");
  EXPECT_FALSE(LoadSchema(inverted).has_value());
}

TEST(DecisionTreeIoTest, RoundTripPreservesRouting) {
  datagen::ClassGenParams params;
  params.num_rows = 3000;
  params.function = datagen::ClassFunction::kF4;
  params.seed = 5;
  const data::Dataset dataset = datagen::GenerateClassification(params);
  dt::CartOptions cart;
  cart.max_depth = 6;
  cart.min_leaf_size = 40;
  const dt::DecisionTree original = dt::BuildCart(dataset, cart);

  std::stringstream buffer;
  SaveDecisionTree(original, buffer);
  const auto loaded = LoadDecisionTree(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded->num_leaves(), original.num_leaves());
  EXPECT_TRUE(loaded->schema() == original.schema());
  for (int64_t i = 0; i < dataset.num_rows(); i += 7) {
    EXPECT_EQ(loaded->LeafIndexOf(dataset.Row(i)),
              original.LeafIndexOf(dataset.Row(i)));
    EXPECT_EQ(loaded->Predict(dataset.Row(i)), original.Predict(dataset.Row(i)));
  }
  // Leaf regions identical too.
  const auto boxes1 = dt::ExtractLeafBoxes(original);
  const auto boxes2 = dt::ExtractLeafBoxes(*loaded);
  ASSERT_EQ(boxes1.size(), boxes2.size());
  for (size_t i = 0; i < boxes1.size(); ++i) {
    EXPECT_TRUE(boxes1[i] == boxes2[i]);
  }
}

TEST(DecisionTreeIoTest, RejectsOutOfRangeChildren) {
  std::stringstream bad(
      "focus-dt-v1\nfocus-schema-v1\n1 2\nnumeric 0 1 x\n1\n"
      "split 0 0.5 0 7 8\n");
  EXPECT_FALSE(LoadDecisionTree(bad).has_value());
}

TEST(FileIoTest, RoundTripThroughDisk) {
  const lits::LitsModel model = MineSomething();
  const std::string path = ::testing::TempDir() + "/focus_model.txt";
  ASSERT_TRUE(SaveLitsModelToFile(model, path));
  const auto loaded = LoadLitsModelFromFile(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), model.size());
  EXPECT_FALSE(LoadLitsModelFromFile("/nonexistent/nowhere.txt").has_value());
}

}  // namespace
}  // namespace focus::io

#include <vector>

#include <gtest/gtest.h>

#include "core/misclassification.h"
#include "datagen/class_gen.h"
#include "datagen/perturb.h"
#include "tree/cart_builder.h"

namespace focus::core {
namespace {

using datagen::ClassFunction;
using datagen::ClassGenParams;
using datagen::GenerateClassification;

dt::DecisionTree TrainTree(const data::Dataset& dataset) {
  dt::CartOptions options;
  options.max_depth = 6;
  options.min_leaf_size = 30;
  return dt::BuildCart(dataset, options);
}

TEST(MisclassificationTest, ZeroOnPerfectlyModeledData) {
  ClassGenParams params;
  params.num_rows = 5000;
  params.function = ClassFunction::kF1;
  const data::Dataset d = GenerateClassification(params);
  const dt::DecisionTree tree = TrainTree(d);
  // F1 is exactly representable; training error should be ~0.
  EXPECT_LT(MisclassificationError(tree, d), 0.01);
}

TEST(MisclassificationTest, LabelNoiseRaisesError) {
  ClassGenParams params;
  params.num_rows = 5000;
  params.function = ClassFunction::kF2;
  const data::Dataset d = GenerateClassification(params);
  const dt::DecisionTree tree = TrainTree(d);
  const double clean_error = MisclassificationError(tree, d);
  const data::Dataset noisy = datagen::FlipLabels(d, 0.25, 7);
  const double noisy_error = MisclassificationError(tree, noisy);
  EXPECT_GT(noisy_error, clean_error + 0.1);
}

TEST(MisclassificationTest, Theorem52FocusEquivalence) {
  // ME_T(D2) == 1/2 * delta_(f_a,g_sum)(<Γ_T,Σ(Γ_T,D2)>, <Γ_T,Σ(Γ_T,D2^T)>)
  // — exercised across several train/test function pairs.
  const ClassFunction functions[] = {ClassFunction::kF1, ClassFunction::kF2,
                                     ClassFunction::kF3, ClassFunction::kF4};
  for (const ClassFunction train_f : functions) {
    for (const ClassFunction test_f : functions) {
      ClassGenParams train_params;
      train_params.num_rows = 3000;
      train_params.function = train_f;
      train_params.seed = 1;
      ClassGenParams test_params;
      test_params.num_rows = 2000;
      test_params.function = test_f;
      test_params.seed = 2;
      const data::Dataset d1 = GenerateClassification(train_params);
      const data::Dataset d2 = GenerateClassification(test_params);
      const dt::DecisionTree tree = TrainTree(d1);
      const double direct = MisclassificationError(tree, d2);
      const double via_focus = MisclassificationErrorViaFocus(tree, d2);
      EXPECT_NEAR(direct, via_focus, 1e-12)
          << "train F" << static_cast<int>(train_f) << " test F"
          << static_cast<int>(test_f);
    }
  }
}

TEST(MisclassificationTest, PredictedDatasetHasConsistentLabels) {
  ClassGenParams params;
  params.num_rows = 1000;
  params.function = ClassFunction::kF3;
  const data::Dataset d = GenerateClassification(params);
  const dt::DecisionTree tree = TrainTree(d);
  const data::Dataset predicted = PredictedDataset(tree, d);
  ASSERT_EQ(predicted.num_rows(), d.num_rows());
  for (int64_t i = 0; i < d.num_rows(); ++i) {
    EXPECT_EQ(predicted.Label(i), tree.Predict(d.Row(i)));
    EXPECT_DOUBLE_EQ(predicted.At(i, 0), d.At(i, 0));
  }
  // The tree never misclassifies its own predictions.
  EXPECT_DOUBLE_EQ(MisclassificationError(tree, predicted), 0.0);
}

TEST(MisclassificationTest, CrossFunctionErrorIsLarge) {
  ClassGenParams params;
  params.num_rows = 4000;
  params.function = ClassFunction::kF1;
  const data::Dataset d1 = GenerateClassification(params);
  params.function = ClassFunction::kF4;
  params.seed = 9;
  const data::Dataset d2 = GenerateClassification(params);
  const dt::DecisionTree tree = TrainTree(d1);
  // A tree for F1 misrepresents F4-labeled data noticeably.
  EXPECT_GT(MisclassificationError(tree, d2), 0.1);
}

}  // namespace
}  // namespace focus::core

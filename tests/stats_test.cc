#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "stats/bootstrap.h"
#include "stats/descriptive.h"
#include "stats/distributions.h"
#include "stats/rng.h"
#include "stats/wilcoxon.h"

namespace focus::stats {
namespace {

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
  EXPECT_NEAR(NormalCdf(3.0), 0.99865, 1e-4);
}

TEST(ChiSquaredCdfTest, KnownCriticalValues) {
  // 95th percentile of chi2(1) is 3.841; of chi2(5) is 11.070.
  EXPECT_NEAR(ChiSquaredCdf(3.841, 1), 0.95, 1e-3);
  EXPECT_NEAR(ChiSquaredCdf(11.070, 5), 0.95, 1e-3);
  EXPECT_NEAR(ChiSquaredCdf(0.0, 3), 0.0, 1e-12);
  EXPECT_NEAR(ChiSquaredPValue(3.841, 1), 0.05, 1e-3);
}

TEST(ChiSquaredCdfTest, MonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x < 30.0; x += 0.5) {
    const double cdf = ChiSquaredCdf(x, 4);
    EXPECT_GE(cdf, prev);
    prev = cdf;
  }
  EXPECT_NEAR(prev, 1.0, 1e-4);
}

TEST(RegularizedGammaTest, MatchesErfForHalf) {
  // P(1/2, x) = erf(sqrt(x)).
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(RegularizedGammaP(0.5, x), std::erf(std::sqrt(x)), 1e-10);
  }
}

TEST(RngTest, DeterministicGivenSeed) {
  auto a = MakeRng(99);
  auto b = MakeRng(99);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DeriveSeedDecorrelatesStreams) {
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(1, 1));
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(2, 0));
}

TEST(RngTest, PoissonMeanRoughlyCorrect) {
  auto rng = MakeRng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(PoissonVariate(rng, 7.0));
  EXPECT_NEAR(sum / n, 7.0, 0.2);
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  auto rng = MakeRng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += ExponentialVariate(rng, 2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(RngTest, UniformBounds) {
  auto rng = MakeRng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = UniformVariate(rng, 2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
    const int64_t k = UniformInt(rng, -2, 2);
    EXPECT_GE(k, -2);
    EXPECT_LE(k, 2);
  }
}

TEST(DescriptiveTest, MeanVarianceStdDev) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(values), 2.5);
  EXPECT_NEAR(Variance(values), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(StdDev(values), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(Min(values), 1.0);
  EXPECT_DOUBLE_EQ(Max(values), 4.0);
}

TEST(DescriptiveTest, VarianceOfSingletonIsZero) {
  const std::vector<double> one = {3.0};
  EXPECT_DOUBLE_EQ(Variance(one), 0.0);
}

TEST(DescriptiveTest, QuantileInterpolates) {
  const std::vector<double> values = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.25), 20.0);
}

TEST(DescriptiveTest, PearsonPerfectAndInverse) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  const std::vector<double> z = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
  const std::vector<double> constant = {5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, constant), 0.0);
}

TEST(WilcoxonTest, ClearlyShiftedSamples) {
  // a values are all larger than b values.
  const std::vector<double> a = {10, 11, 12, 13, 14, 15, 16, 17, 18, 19};
  const std::vector<double> b = {1, 2, 3, 4, 5, 6, 7, 8, 9, 9.5};
  const WilcoxonResult r = WilcoxonRankSum(a, b);
  EXPECT_LT(r.p_greater, 0.001);
  EXPECT_GT(r.p_less, 0.999);
}

TEST(WilcoxonTest, IdenticalSamplesAreInconclusive) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const WilcoxonResult r = WilcoxonRankSum(a, a);
  EXPECT_GT(r.p_greater, 0.3);
  EXPECT_GT(r.p_less, 0.3);
}

TEST(WilcoxonTest, AllTiedValuesHandled) {
  const std::vector<double> a = {2, 2, 2};
  const std::vector<double> b = {2, 2, 2};
  const WilcoxonResult r = WilcoxonRankSum(a, b);
  EXPECT_DOUBLE_EQ(r.z, 0.0);
  EXPECT_DOUBLE_EQ(r.p_two_sided, 1.0);
}

TEST(WilcoxonTest, SignificanceOfDecreaseDetectsShift) {
  // SDs at the smaller size are larger => significant decrease.
  std::vector<double> smaller_size(30);
  std::vector<double> larger_size(30);
  auto rng = MakeRng(1);
  for (int i = 0; i < 30; ++i) {
    smaller_size[i] = 1.0 + 0.05 * NormalVariate(rng);
    larger_size[i] = 0.5 + 0.05 * NormalVariate(rng);
  }
  EXPECT_GT(SignificanceOfDecreasePercent(smaller_size, larger_size), 99.9);
  // Reversed direction: no significance.
  EXPECT_LT(SignificanceOfDecreasePercent(larger_size, smaller_size), 5.0);
}

TEST(WilcoxonTest, SignificanceCappedAt9999) {
  std::vector<double> high(50, 0.0);
  std::vector<double> low(50, 0.0);
  for (int i = 0; i < 50; ++i) {
    high[i] = 100.0 + i;
    low[i] = i * 0.01;
  }
  EXPECT_LE(SignificanceOfDecreasePercent(high, low), 99.99);
}

TEST(WilcoxonExactTest, TinyHandComputedCase) {
  // a = {2}, b = {1}: rank of a is 2; P(W >= 2) = 1/2, P(W <= 2) = 1.
  const std::vector<double> a = {2.0};
  const std::vector<double> b = {1.0};
  const WilcoxonResult r = WilcoxonRankSumExact(a, b);
  EXPECT_DOUBLE_EQ(r.p_greater, 0.5);
  EXPECT_DOUBLE_EQ(r.p_less, 1.0);
}

TEST(WilcoxonExactTest, CompleteSeparationSmallSamples) {
  // a = {4, 5, 6}, b = {1, 2, 3}: W_a = 15, the single largest
  // configuration among C(6,3) = 20 => P(W >= 15) = 1/20.
  const std::vector<double> a = {4.0, 5.0, 6.0};
  const std::vector<double> b = {1.0, 2.0, 3.0};
  const WilcoxonResult r = WilcoxonRankSumExact(a, b);
  EXPECT_DOUBLE_EQ(r.p_greater, 1.0 / 20.0);
}

TEST(WilcoxonExactTest, AgreesWithNormalApproximationMidSample) {
  std::vector<double> a;
  std::vector<double> b;
  auto rng = MakeRng(17);
  for (int i = 0; i < 10; ++i) {
    a.push_back(1.0 + 0.3 * NormalVariate(rng));
    b.push_back(0.6 + 0.3 * NormalVariate(rng));
  }
  ASSERT_TRUE(WilcoxonExactApplicable(a, b));
  const WilcoxonResult exact = WilcoxonRankSumExact(a, b);
  const WilcoxonResult approx = WilcoxonRankSum(a, b);
  EXPECT_NEAR(exact.p_greater, approx.p_greater, 0.03);
  EXPECT_NEAR(exact.p_less, approx.p_less, 0.03);
}

TEST(WilcoxonExactTest, ApplicabilityRules) {
  const std::vector<double> small = {1.0, 2.0};
  const std::vector<double> tied = {2.0, 3.0};
  EXPECT_FALSE(WilcoxonExactApplicable(small, tied));  // value 2 tied
  const std::vector<double> clean = {4.0, 5.0};
  EXPECT_TRUE(WilcoxonExactApplicable(small, clean));
  std::vector<double> big(20, 0.0);
  std::vector<double> big2(20, 0.0);
  for (int i = 0; i < 20; ++i) {
    big[i] = i;
    big2[i] = 100 + i;
  }
  EXPECT_FALSE(WilcoxonExactApplicable(big, big2));  // 40 > 30 pooled
}

TEST(BootstrapTest, NullDistributionSizeAndDeterminism) {
  auto statistic = [](std::span<const int64_t> s1,
                      std::span<const int64_t> s2) {
    return static_cast<double>(s1[0] + s2[0]);
  };
  BootstrapOptions options;
  options.num_replicates = 25;
  options.seed = 3;
  const auto null1 = BootstrapNullDistribution(10, 12, statistic, options);
  const auto null2 = BootstrapNullDistribution(10, 12, statistic, options);
  ASSERT_EQ(null1.size(), 25u);
  EXPECT_EQ(null1, null2);
}

TEST(BootstrapTest, SignificancePercentCountsStrictlyBelow) {
  const std::vector<double> null_values = {0.1, 0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(SignificancePercent(0.35, null_values), 75.0);
  EXPECT_DOUBLE_EQ(SignificancePercent(0.05, null_values), 0.0);
  EXPECT_DOUBLE_EQ(SignificancePercent(1.0, null_values), 100.0);
}

}  // namespace
}  // namespace focus::stats

#include <cmath>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/dt_deviation.h"
#include "core/focus_region.h"
#include "datagen/class_gen.h"
#include "tree/cart_builder.h"

namespace focus::core {
namespace {

using datagen::ClassFunction;
using datagen::ClassGenParams;
using datagen::GenerateClassification;

data::Schema AgeSalarySchema() {
  return data::Schema({data::Schema::Numeric("age", 0.0, 100.0),
                       data::Schema::Numeric("salary", 0.0, 200000.0)},
                      /*num_classes=*/2);
}

// T1 (Figure 1 shape): age < 30 -> leaf0; else salary < 100K -> leaf1,
// else leaf2.
dt::DecisionTree TreeT1() {
  dt::DecisionTree tree(AgeSalarySchema());
  const int root = tree.AddInternalNode(0, 30.0, 0);
  const int leaf0 = tree.AddLeafNode({0, 6});
  const int salary_split = tree.AddInternalNode(1, 100000.0, 0);
  tree.SetChildren(root, leaf0, salary_split);
  const int leaf1 = tree.AddLeafNode({2, 0});
  const int leaf2 = tree.AddLeafNode({1, 11});
  tree.SetChildren(salary_split, leaf1, leaf2);
  return tree;
}

// T2 (Figure 5 shape): age < 50 -> (salary < 80K -> leaf0, else leaf1),
// else leaf2.
dt::DecisionTree TreeT2() {
  dt::DecisionTree tree(AgeSalarySchema());
  const int root = tree.AddInternalNode(0, 50.0, 0);
  const int salary_split = tree.AddInternalNode(1, 80000.0, 0);
  const int leaf2 = tree.AddLeafNode({2, 2});
  const int leaf0 = tree.AddLeafNode({8, 4});
  const int leaf1 = tree.AddLeafNode({2, 2});
  tree.SetChildren(root, salary_split, leaf2);
  tree.SetChildren(salary_split, leaf0, leaf1);
  return tree;
}

// A small dataset over the age/salary space; labels arbitrary.
data::Dataset GridDataset(int per_cell, int label_rule) {
  data::Dataset dataset(AgeSalarySchema());
  const double ages[] = {20.0, 40.0, 60.0};
  const double salaries[] = {50000.0, 90000.0, 150000.0};
  for (double age : ages) {
    for (double salary : salaries) {
      for (int i = 0; i < per_cell; ++i) {
        const int label =
            label_rule == 0
                ? (age < 30.0 ? 0 : 1)
                : ((age < 50.0 && salary < 80000.0) ? 0 : 1);
        dataset.AddRow(std::vector<double>{age + i * 0.001, salary}, label);
      }
    }
  }
  return dataset;
}

TEST(DtModelTest, MeasuresArePartitionSelectivities) {
  const data::Dataset dataset = GridDataset(4, 0);
  const DtModel model(TreeT1(), dataset);
  double total = 0.0;
  for (int leaf = 0; leaf < model.num_leaves(); ++leaf) {
    for (int c = 0; c < model.num_classes(); ++c) {
      total += model.measure(leaf, c);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(model.num_rows(), dataset.num_rows());
}

TEST(DtGcrTest, OverlayCountsRegions) {
  const data::Dataset dataset = GridDataset(4, 0);
  const DtModel m1(TreeT1(), dataset);
  const DtModel m2(TreeT2(), dataset);
  const DtGcr gcr(m1, m2);
  // T1 partitions: age<30 | age>=30 & sal<100K | age>=30 & sal>=100K.
  // T2 partitions: age<50 & sal<80K | age<50 & sal>=80K | age>=50.
  // Overlay: (age<30,sal<80K), (age<30,sal>=80K), (30..50,sal<80K),
  // (30..50, 80..100K), (30..50, >=100K), (>=50, <100K), (>=50, >=100K)
  // ... exactly the non-empty pairwise intersections.
  EXPECT_EQ(gcr.num_regions(), 7);
  // Each GCR region's box is covered by both parents.
  for (const DtGcrRegion& region : gcr.regions()) {
    EXPECT_TRUE(m1.leaf_box(region.leaf1)
                    .Covers(m1.tree().schema(), region.box));
    EXPECT_TRUE(m2.leaf_box(region.leaf2)
                    .Covers(m2.tree().schema(), region.box));
  }
}

TEST(DtGcrTest, RefinementPropertyMeasuresAddUp) {
  // Definition 3.4: for ANY dataset, each parent region's measure equals
  // the sum of the measures of its GCR parts.
  const data::Dataset d = GridDataset(5, 1);
  const DtModel m1(TreeT1(), d);
  const DtModel m2(TreeT2(), d);
  const DtGcr gcr(m1, m2);
  const std::vector<double> gcr_measures =
      gcr.Measures(m1.tree(), m2.tree(), d, std::nullopt);
  const int k = gcr.num_classes();

  for (int leaf = 0; leaf < m1.num_leaves(); ++leaf) {
    for (int c = 0; c < k; ++c) {
      double sum = 0.0;
      for (int r = 0; r < gcr.num_regions(); ++r) {
        if (gcr.regions()[r].leaf1 == leaf) sum += gcr_measures[r * k + c];
      }
      EXPECT_NEAR(sum, m1.measure(leaf, c), 1e-12)
          << "leaf " << leaf << " class " << c;
    }
  }
}

TEST(DtDeviationTest, IdenticalDatasetsZero) {
  const data::Dataset d = GridDataset(5, 0);
  const DtModel m1(TreeT1(), d);
  const DtModel m2(TreeT2(), d);
  DtDeviationOptions options;
  EXPECT_NEAR(DtDeviation(m1, d, m2, d, options), 0.0, 1e-12);
}

TEST(DtDeviationTest, HandComputedTwoRegionExample) {
  // One-level trees over 'age': T1 splits at 30, T2 splits at 60.
  dt::DecisionTree t1(AgeSalarySchema());
  {
    const int root = t1.AddInternalNode(0, 30.0, 0);
    const int l = t1.AddLeafNode({1, 1});
    const int r = t1.AddLeafNode({1, 1});
    t1.SetChildren(root, l, r);
  }
  dt::DecisionTree t2(AgeSalarySchema());
  {
    const int root = t2.AddInternalNode(0, 60.0, 0);
    const int l = t2.AddLeafNode({1, 1});
    const int r = t2.AddLeafNode({1, 1});
    t2.SetChildren(root, l, r);
  }
  // D1: 10 tuples age 20 (class0), 10 tuples age 40 (class1).
  data::Dataset d1(AgeSalarySchema());
  for (int i = 0; i < 10; ++i) d1.AddRow(std::vector<double>{20.0, 1.0}, 0);
  for (int i = 0; i < 10; ++i) d1.AddRow(std::vector<double>{40.0, 1.0}, 1);
  // D2: 5 age 20 (class0), 10 age 40 (class1), 5 age 70 (class0).
  data::Dataset d2(AgeSalarySchema());
  for (int i = 0; i < 5; ++i) d2.AddRow(std::vector<double>{20.0, 1.0}, 0);
  for (int i = 0; i < 10; ++i) d2.AddRow(std::vector<double>{40.0, 1.0}, 1);
  for (int i = 0; i < 5; ++i) d2.AddRow(std::vector<double>{70.0, 1.0}, 0);

  const DtModel m1(std::move(t1), d1);
  const DtModel m2(std::move(t2), d2);
  // GCR cells: age<30, 30<=age<60, age>=60. Measures (class0, class1):
  //   D1: (0.5, 0), (0, 0.5), (0, 0)
  //   D2: (0.25, 0), (0, 0.5), (0.25, 0)
  // f_a/g_sum over all class-regions: 0.25 + 0 + 0 + 0 + 0.25 + 0 = 0.5.
  DtDeviationOptions options;
  EXPECT_NEAR(DtDeviation(m1, d1, m2, d2, options), 0.5, 1e-12);

  // g_max picks the largest single-region difference: 0.25.
  options.fn.g = AggregateKind::kMax;
  EXPECT_NEAR(DtDeviation(m1, d1, m2, d2, options), 0.25, 1e-12);

  // Class filter: class 1 contributes nothing.
  options.fn.g = AggregateKind::kSum;
  options.class_filter = 1;
  EXPECT_NEAR(DtDeviation(m1, d1, m2, d2, options), 0.0, 1e-12);
  options.class_filter = 0;
  EXPECT_NEAR(DtDeviation(m1, d1, m2, d2, options), 0.5, 1e-12);

  // Focussing on age < 60 drops the age>=60 cell: deviation 0.25.
  options.class_filter = -1;
  options.focus = LessThanPredicate(AgeSalarySchema(), 0, 60.0);
  EXPECT_NEAR(DtDeviation(m1, d1, m2, d2, options), 0.25, 1e-12);
}

TEST(DtDeviationTest, FocusMonotoneForAbsoluteSum) {
  ClassGenParams params;
  params.num_rows = 4000;
  params.function = ClassFunction::kF2;
  params.seed = 11;
  const data::Dataset d1 = GenerateClassification(params);
  params.function = ClassFunction::kF3;
  params.seed = 12;
  const data::Dataset d2 = GenerateClassification(params);

  dt::CartOptions cart;
  cart.max_depth = 4;
  const DtModel m1(dt::BuildCart(d1, cart), d1);
  const DtModel m2(dt::BuildCart(d2, cart), d2);

  const data::Schema schema = datagen::ClassGenSchema();
  DtDeviationOptions narrow_options;
  narrow_options.focus = NumericPredicate(
      schema, datagen::ClassGenColumns::kAge, 20.0, 40.0);
  DtDeviationOptions wide_options;
  wide_options.focus = NumericPredicate(
      schema, datagen::ClassGenColumns::kAge, 20.0, 60.0);
  DtDeviationOptions full_options;

  const double narrow = DtDeviation(m1, d1, m2, d2, narrow_options);
  const double wide = DtDeviation(m1, d1, m2, d2, wide_options);
  const double full = DtDeviation(m1, d1, m2, d2, full_options);
  EXPECT_LE(narrow, wide + 1e-12);
  EXPECT_LE(wide, full + 1e-12);
  EXPECT_GT(full, 0.0);
}

TEST(DtDeviationTest, Theorem43GcrBeatsFinerRefinementForSum) {
  // A common refinement finer than the GCR (overlay with a third tree)
  // cannot yield a smaller deviation under g_sum.
  ClassGenParams params;
  params.num_rows = 3000;
  params.function = ClassFunction::kF1;
  params.seed = 3;
  const data::Dataset d1 = GenerateClassification(params);
  params.seed = 4;
  params.function = ClassFunction::kF2;
  const data::Dataset d2 = GenerateClassification(params);

  dt::CartOptions cart;
  cart.max_depth = 3;
  const DtModel m1(dt::BuildCart(d1, cart), d1);
  const DtModel m2(dt::BuildCart(d2, cart), d2);

  DtDeviationOptions options;
  const double on_gcr = DtDeviation(m1, d1, m2, d2, options);

  // Finer refinement: overlay the GCR of (m1, m2) with a third model m3 —
  // equivalently delta over GCR(m1, m3') where m3' routes via (m2, m3).
  // We emulate it by computing the deviation over GCR(m1*, m2*) where both
  // trees are the SAME overlay tree... simplest honest check: the overlay
  // of (m1, m2) with extra splits = GCR(m1, m2) cells further cut by m3's
  // leaves; measure it by summing per-(cell of m1,m2,m3) differences.
  params.seed = 5;
  params.function = ClassFunction::kF3;
  const data::Dataset d3 = GenerateClassification(params);
  const DtModel m3(dt::BuildCart(d3, cart), d3);

  // Count per (leaf1, leaf2, leaf3, class) for both datasets.
  auto fine_counts = [&](const data::Dataset& d) {
    std::map<std::tuple<int, int, int, int>, int64_t> counts;
    for (int64_t row = 0; row < d.num_rows(); ++row) {
      const auto values = d.Row(row);
      counts[{m1.tree().LeafIndexOf(values), m2.tree().LeafIndexOf(values),
              m3.tree().LeafIndexOf(values), d.Label(row)}]++;
    }
    return counts;
  };
  const auto c1 = fine_counts(d1);
  const auto c2 = fine_counts(d2);
  std::set<std::tuple<int, int, int, int>> keys;
  for (const auto& [k, v] : c1) keys.insert(k);
  for (const auto& [k, v] : c2) keys.insert(k);
  double finer = 0.0;
  const double n1 = static_cast<double>(d1.num_rows());
  const double n2 = static_cast<double>(d2.num_rows());
  for (const auto& key : keys) {
    const auto it1 = c1.find(key);
    const auto it2 = c2.find(key);
    const double a = it1 == c1.end() ? 0.0 : static_cast<double>(it1->second);
    const double b = it2 == c2.end() ? 0.0 : static_cast<double>(it2->second);
    finer += std::fabs(a / n1 - b / n2);
  }
  EXPECT_LE(on_gcr, finer + 1e-9);
}

TEST(DtDeviationOverTreeTest, SharedStructureDefinition35) {
  const data::Dataset d1 = GridDataset(5, 0);
  const data::Dataset d2 = GridDataset(5, 1);
  const dt::DecisionTree tree = TreeT1();
  DtDeviationOptions options;
  const double deviation = DtDeviationOverTree(tree, d1, d2, options);
  EXPECT_GE(deviation, 0.0);
  // Same dataset twice: zero.
  EXPECT_NEAR(DtDeviationOverTree(tree, d1, d1, options), 0.0, 1e-12);
}

TEST(DtMeasuresOverTreeTest, SumsToOnePerDataset) {
  const data::Dataset d = GridDataset(3, 1);
  const dt::DecisionTree tree = TreeT2();
  const std::vector<double> measures = DtMeasuresOverTree(tree, d);
  double total = 0.0;
  for (double m : measures) total += m;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

}  // namespace
}  // namespace focus::core

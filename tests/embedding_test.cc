#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/embedding.h"
#include "datagen/quest_gen.h"
#include "itemsets/apriori.h"

namespace focus::core {
namespace {

TEST(FastMapTest, PerfectLineIsRecoveredInOneDimension) {
  // Objects at positions 0, 1, 3, 7 on a line.
  const std::vector<double> positions = {0.0, 1.0, 3.0, 7.0};
  std::vector<std::vector<double>> d(4, std::vector<double>(4));
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) d[i][j] = std::fabs(positions[i] - positions[j]);
  }
  const FastMapResult result = FastMapEmbedding(d, 1);
  // Pairwise embedded distances must match the originals exactly.
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(EmbeddedDistance(result.coordinates[i],
                                   result.coordinates[j]),
                  d[i][j], 1e-9);
    }
  }
}

TEST(FastMapTest, IdenticalObjectsCollapse) {
  std::vector<std::vector<double>> d(3, std::vector<double>(3, 0.0));
  const FastMapResult result = FastMapEmbedding(d, 2);
  for (int i = 0; i < 3; ++i) {
    for (double c : result.coordinates[i]) EXPECT_DOUBLE_EQ(c, 0.0);
  }
}

TEST(FastMapTest, PreservesClusterStructureOfLitsModels) {
  // 6 datasets: 3 from process A, 3 from process B. In the embedded
  // space, same-process pairs must be closer than cross-process pairs.
  std::vector<lits::LitsModel> models;
  lits::AprioriOptions apriori;
  apriori.min_support = 0.03;
  for (int i = 0; i < 6; ++i) {
    datagen::QuestParams params;
    params.num_transactions = 800;
    params.num_items = 80;
    params.num_patterns = 20;
    params.avg_pattern_length = i < 3 ? 3 : 6;
    params.pattern_seed = i < 3 ? 7 : 8;
    params.seed = 100 + static_cast<uint64_t>(i);
    models.push_back(
        lits::Apriori(datagen::GenerateQuest(params), apriori));
  }
  const auto matrix = LitsUpperBoundMatrix(models, AggregateKind::kSum);
  const FastMapResult embedded = FastMapEmbedding(matrix, 2);

  double max_within = 0.0;
  double min_across = 1e300;
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) {
      const double distance = EmbeddedDistance(embedded.coordinates[i],
                                               embedded.coordinates[j]);
      const bool same_group = (i < 3) == (j < 3);
      if (same_group) {
        max_within = std::max(max_within, distance);
      } else {
        min_across = std::min(min_across, distance);
      }
    }
  }
  EXPECT_LT(max_within, min_across);
}

TEST(FastMapTest, ResidualsShrinkWithDimensions) {
  // Random-ish metric from points in 3-D; 3 dimensions should capture it
  // much better than 1.
  std::vector<std::vector<double>> points = {
      {0, 0, 0}, {1, 0, 0}, {0, 2, 0}, {0, 0, 3}, {1, 2, 3}, {2, 1, 0}};
  const int n = static_cast<int>(points.size());
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double s = 0.0;
      for (int k = 0; k < 3; ++k) {
        s += (points[i][k] - points[j][k]) * (points[i][k] - points[j][k]);
      }
      d[i][j] = std::sqrt(s);
    }
  }
  auto stress = [&](int dims) {
    const FastMapResult r = FastMapEmbedding(d, dims);
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const double e =
            EmbeddedDistance(r.coordinates[i], r.coordinates[j]) - d[i][j];
        total += e * e;
      }
    }
    return total;
  };
  EXPECT_LT(stress(3), stress(1) + 1e-12);
}

TEST(LitsUpperBoundMatrixTest, SymmetricZeroDiagonal) {
  std::vector<lits::LitsModel> models;
  for (int i = 0; i < 3; ++i) {
    lits::LitsModel model(0.1, 100, 5);
    model.Add(lits::Itemset({i}), 0.5);
    models.push_back(std::move(model));
  }
  const auto matrix = LitsUpperBoundMatrix(models, AggregateKind::kSum);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(matrix[i][i], 0.0);
    for (int j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(matrix[i][j], matrix[j][i]);
    }
  }
  EXPECT_DOUBLE_EQ(matrix[0][1], 1.0);  // disjoint singleton supports
}

}  // namespace
}  // namespace focus::core

#include <vector>

#include <gtest/gtest.h>

#include "core/focus_region.h"
#include "datagen/class_gen.h"
#include "tree/decision_tree.h"

namespace focus::core {
namespace {

using Cols = datagen::ClassGenColumns;

TEST(FocusRegionTest, NumericPredicateBounds) {
  const data::Schema schema = datagen::ClassGenSchema();
  const data::Box band = NumericPredicate(schema, Cols::kAge, 30.0, 50.0);
  std::vector<double> row(9, 0.0);
  row[Cols::kElevel] = 0;
  row[Cols::kCar] = 0;
  row[Cols::kZipcode] = 0;
  row[Cols::kAge] = 40.0;
  EXPECT_TRUE(band.Contains(schema, row));
  row[Cols::kAge] = 50.0;
  EXPECT_FALSE(band.Contains(schema, row));  // half-open on the right
  row[Cols::kAge] = 30.0;
  EXPECT_TRUE(band.Contains(schema, row));  // closed on the left
}

TEST(FocusRegionTest, LessThanAndAtLeastComplementEachOther) {
  const data::Schema schema = datagen::ClassGenSchema();
  const data::Box young = LessThanPredicate(schema, Cols::kAge, 40.0);
  const data::Box old = AtLeastPredicate(schema, Cols::kAge, 40.0);
  std::vector<double> row(9, 0.0);
  for (double age : {20.0, 39.99, 40.0, 79.0}) {
    row[Cols::kAge] = age;
    EXPECT_NE(young.Contains(schema, row), old.Contains(schema, row))
        << "age " << age;
  }
  // The two halves are geometrically disjoint.
  EXPECT_TRUE(young.Intersect(old).IsEmpty(schema));
}

TEST(FocusRegionTest, CategoryPredicateMask) {
  const data::Schema schema = datagen::ClassGenSchema();
  const data::Box low_ed = CategoryPredicate(schema, Cols::kElevel, {0, 1});
  std::vector<double> row(9, 0.0);
  row[Cols::kElevel] = 1.0;
  EXPECT_TRUE(low_ed.Contains(schema, row));
  row[Cols::kElevel] = 2.0;
  EXPECT_FALSE(low_ed.Contains(schema, row));
}

TEST(FocusRegionTest, PredicatesCompose) {
  const data::Schema schema = datagen::ClassGenSchema();
  const data::Box combined =
      NumericPredicate(schema, Cols::kAge, 30.0, 50.0)
          .Intersect(CategoryPredicate(schema, Cols::kElevel, {2, 3, 4}))
          .Intersect(LessThanPredicate(schema, Cols::kSalary, 100000.0));
  std::vector<double> row(9, 0.0);
  row[Cols::kAge] = 40.0;
  row[Cols::kElevel] = 3.0;
  row[Cols::kSalary] = 80000.0;
  EXPECT_TRUE(combined.Contains(schema, row));
  row[Cols::kSalary] = 120000.0;
  EXPECT_FALSE(combined.Contains(schema, row));
}

TEST(FocusRegionDeathTest, RejectsWrongAttributeKind) {
  const data::Schema schema = datagen::ClassGenSchema();
  EXPECT_DEATH(NumericPredicate(schema, Cols::kElevel, 0.0, 1.0),
               "FOCUS_CHECK");
  EXPECT_DEATH(CategoryPredicate(schema, Cols::kAge, {0}), "FOCUS_CHECK");
}

TEST(FocusRegionDeathTest, RejectsOutOfRangeCategory) {
  const data::Schema schema = datagen::ClassGenSchema();
  EXPECT_DEATH(CategoryPredicate(schema, Cols::kElevel, {7}), "FOCUS_CHECK");
}

TEST(DecisionTreeToStringTest, MentionsSplitsAndLeaves) {
  data::Schema schema({data::Schema::Numeric("age", 0.0, 100.0)}, 2);
  dt::DecisionTree tree(schema);
  const int root = tree.AddInternalNode(0, 42.0, 0);
  const int left = tree.AddLeafNode({3, 1});
  const int right = tree.AddLeafNode({0, 7});
  tree.SetChildren(root, left, right);
  const std::string text = tree.ToString();
  EXPECT_NE(text.find("age < 42"), std::string::npos);
  EXPECT_NE(text.find("leaf#0 counts=[3,1]"), std::string::npos);
  EXPECT_NE(text.find("leaf#1 counts=[0,7]"), std::string::npos);
}

}  // namespace
}  // namespace focus::core

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/class_gen.h"
#include "tree/cart_builder.h"
#include "tree/presorted_builder.h"

namespace focus::dt {
namespace {

using datagen::ClassFunction;
using datagen::ClassGenParams;
using datagen::GenerateClassification;

void ExpectEquivalentTrees(const DecisionTree& a, const DecisionTree& b,
                           const data::Dataset& dataset) {
  EXPECT_EQ(a.num_leaves(), b.num_leaves());
  EXPECT_EQ(a.Depth(), b.Depth());
  for (int64_t i = 0; i < dataset.num_rows(); ++i) {
    ASSERT_EQ(a.Predict(dataset.Row(i)), b.Predict(dataset.Row(i)))
        << "row " << i;
  }
}

TEST(PresortedBuilderTest, MatchesRecursiveBuilderAcrossFunctions) {
  for (const ClassFunction f : {ClassFunction::kF1, ClassFunction::kF2,
                                ClassFunction::kF3, ClassFunction::kF4}) {
    ClassGenParams params;
    params.num_rows = 3000;
    params.function = f;
    params.seed = 5;
    const data::Dataset dataset = GenerateClassification(params);
    CartOptions options;
    options.max_depth = 6;
    options.min_leaf_size = 40;
    const DecisionTree recursive = BuildCart(dataset, options);
    const DecisionTree presorted = BuildCartPresorted(dataset, options);
    ExpectEquivalentTrees(recursive, presorted, dataset);
  }
}

TEST(PresortedBuilderTest, MatchesWithEntropyCriterion) {
  ClassGenParams params;
  params.num_rows = 2500;
  params.function = ClassFunction::kF4;
  params.seed = 2;
  const data::Dataset dataset = GenerateClassification(params);
  CartOptions options;
  options.max_depth = 5;
  options.min_leaf_size = 30;
  options.criterion = SplitCriterion::kEntropy;
  const DecisionTree recursive = BuildCart(dataset, options);
  const DecisionTree presorted = BuildCartPresorted(dataset, options);
  ExpectEquivalentTrees(recursive, presorted, dataset);
}

TEST(PresortedBuilderTest, PureDataSingleLeaf) {
  data::Schema schema({data::Schema::Numeric("x", 0.0, 1.0)}, 2);
  data::Dataset dataset(schema);
  for (int i = 0; i < 200; ++i) {
    dataset.AddRow(std::vector<double>{i / 200.0}, 0);
  }
  const DecisionTree tree = BuildCartPresorted(dataset, CartOptions{});
  EXPECT_EQ(tree.num_leaves(), 1);
}

TEST(PresortedBuilderTest, CategoricalOnlyDataset) {
  data::Schema schema({data::Schema::Categorical("c", 8)}, 2);
  data::Dataset dataset(schema);
  for (int i = 0; i < 1600; ++i) {
    const int code = i % 8;
    dataset.AddRow(std::vector<double>{static_cast<double>(code)},
                   (code < 3) ? 0 : 1);
  }
  CartOptions options;
  options.max_depth = 3;
  options.min_leaf_size = 20;
  const DecisionTree recursive = BuildCart(dataset, options);
  const DecisionTree presorted = BuildCartPresorted(dataset, options);
  ExpectEquivalentTrees(recursive, presorted, dataset);
  // Both must separate perfectly.
  int64_t correct = 0;
  for (int64_t i = 0; i < dataset.num_rows(); ++i) {
    if (presorted.Predict(dataset.Row(i)) == dataset.Label(i)) ++correct;
  }
  EXPECT_EQ(correct, dataset.num_rows());
}

TEST(EntropyCriterionTest, GiniAndEntropyBothLearnF2) {
  ClassGenParams params;
  params.num_rows = 4000;
  params.function = ClassFunction::kF2;
  params.seed = 1;
  const data::Dataset dataset = GenerateClassification(params);
  for (const SplitCriterion criterion :
       {SplitCriterion::kGini, SplitCriterion::kEntropy}) {
    CartOptions options;
    options.max_depth = 10;
    options.min_leaf_size = 20;
    options.min_gain = 1e-6;
    options.criterion = criterion;
    const DecisionTree tree = BuildCart(dataset, options);
    int64_t correct = 0;
    for (int64_t i = 0; i < dataset.num_rows(); ++i) {
      if (tree.Predict(dataset.Row(i)) == dataset.Label(i)) ++correct;
    }
    EXPECT_GT(static_cast<double>(correct) / 4000.0, 0.92);
  }
}

TEST(ImpurityTest, KnownValues) {
  // 50/50 two-class: gini 0.5, entropy 1 bit. Pure: both 0.
  EXPECT_DOUBLE_EQ(internal::Impurity({5, 5}, 10, SplitCriterion::kGini), 0.5);
  EXPECT_DOUBLE_EQ(internal::Impurity({5, 5}, 10, SplitCriterion::kEntropy),
                   1.0);
  EXPECT_DOUBLE_EQ(internal::Impurity({10, 0}, 10, SplitCriterion::kGini), 0.0);
  EXPECT_DOUBLE_EQ(internal::Impurity({10, 0}, 10, SplitCriterion::kEntropy),
                   0.0);
  // Uniform three-class: gini 2/3, entropy log2(3).
  EXPECT_NEAR(internal::Impurity({4, 4, 4}, 12, SplitCriterion::kGini),
              2.0 / 3.0, 1e-12);
  EXPECT_NEAR(internal::Impurity({4, 4, 4}, 12, SplitCriterion::kEntropy),
              std::log2(3.0), 1e-12);
}

}  // namespace
}  // namespace focus::dt

// Tests for the src/net/ layer in isolation: the incremental HTTP/1.1
// parser (framing, limits, malformed input), request/response types, the
// router, the poller (both engines), and the event-loop server driven over
// real loopback sockets by the blocking test client.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "net/http_client.h"
#include "net/http_parser.h"
#include "net/http_server.h"
#include "net/http_types.h"
#include "net/poller.h"
#include "net/router.h"
#include "net/socket_util.h"

namespace focus::net {
namespace {

// ---------------------------------------------------------------- types

TEST(HttpTypesTest, PercentDecode) {
  EXPECT_EQ(PercentDecode("abc"), "abc");
  EXPECT_EQ(PercentDecode("a%20b"), "a b");
  EXPECT_EQ(PercentDecode("a+b"), "a b");
  EXPECT_EQ(PercentDecode("%41%62%63"), "Abc");
  // Invalid escapes pass through verbatim.
  EXPECT_EQ(PercentDecode("%zz"), "%zz");
  EXPECT_EQ(PercentDecode("%4"), "%4");
  EXPECT_EQ(PercentDecode("100%"), "100%");
}

TEST(HttpTypesTest, ParseQueryString) {
  const auto q = ParseQueryString("f=abs&g=sum&name=a%20b&flag");
  EXPECT_EQ(q.at("f"), "abs");
  EXPECT_EQ(q.at("g"), "sum");
  EXPECT_EQ(q.at("name"), "a b");
  EXPECT_EQ(q.at("flag"), "");
  EXPECT_TRUE(ParseQueryString("").empty());
}

TEST(HttpTypesTest, SerializeResponseFramesWithContentLength) {
  HttpResponse response;
  response.status = 404;
  response.body = "{\"error\":\"x\"}";
  const std::string wire = SerializeResponse(response, /*keep_alive=*/true);
  EXPECT_NE(wire.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 13\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n{\"error\":\"x\"}"), std::string::npos);

  const std::string closing = SerializeResponse(response, /*keep_alive=*/false);
  EXPECT_NE(closing.find("Connection: close\r\n"), std::string::npos);
}

// --------------------------------------------------------------- parser

HttpParser::Status Feed(HttpParser* parser, std::string_view bytes) {
  return parser->Consume(bytes);
}

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpParser parser;
  const auto status =
      Feed(&parser, "GET /v1/streams/s1/deviation?f=abs&g=max HTTP/1.1\r\n"
                    "Host: localhost\r\nAccept: */*\r\n\r\n");
  ASSERT_EQ(status, HttpParser::Status::kComplete);
  const HttpRequest& request = parser.request();
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/v1/streams/s1/deviation");
  EXPECT_EQ(request.query.at("f"), "abs");
  EXPECT_EQ(request.query.at("g"), "max");
  EXPECT_EQ(*request.FindHeader("host"), "localhost");
  EXPECT_TRUE(request.keep_alive);
  EXPECT_TRUE(request.body.empty());
}

TEST(HttpParserTest, ParsesPostBodyByContentLength) {
  HttpParser parser;
  const auto status = Feed(&parser,
                           "POST /v1/compare HTTP/1.1\r\nHost: x\r\n"
                           "Content-Length: 11\r\n\r\nhello world");
  ASSERT_EQ(status, HttpParser::Status::kComplete);
  EXPECT_EQ(parser.request().body, "hello world");
}

TEST(HttpParserTest, DecodesChunkedBody) {
  HttpParser parser;
  const auto status = Feed(&parser,
                           "POST /v1/compare HTTP/1.1\r\nHost: x\r\n"
                           "Transfer-Encoding: chunked\r\n\r\n"
                           "5\r\nhello\r\n"
                           "6;ext=ignored\r\n world\r\n"
                           "0\r\n\r\n");
  ASSERT_EQ(status, HttpParser::Status::kComplete);
  EXPECT_EQ(parser.request().body, "hello world");
  EXPECT_TRUE(parser.request().keep_alive);
}

TEST(HttpParserTest, ChunkedByteAtATimeMatchesOneShot) {
  const std::string wire =
      "POST /x HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: CHUNKED\r\n\r\n"
      "4\r\nbody\r\nA\r\n0123456789\r\n0\r\n"
      "X-Trailer: discarded\r\n\r\n";
  HttpParser one_shot;
  ASSERT_EQ(one_shot.Consume(wire), HttpParser::Status::kComplete);
  EXPECT_EQ(one_shot.request().body, "body0123456789");

  HttpParser dribble;
  HttpParser::Status status = HttpParser::Status::kNeedMore;
  for (char c : wire) {
    status = dribble.Consume(std::string_view(&c, 1));
    if (status != HttpParser::Status::kNeedMore) break;
  }
  ASSERT_EQ(status, HttpParser::Status::kComplete);
  EXPECT_EQ(dribble.request().body, one_shot.request().body);
  // Trailer fields are consumed but never surfaced as headers.
  EXPECT_EQ(dribble.request().FindHeader("x-trailer"), nullptr);
}

TEST(HttpParserTest, ChunkedPipelinesWithFollowingRequest) {
  HttpParser parser;
  const auto first = Feed(&parser,
                          "POST /a HTTP/1.1\r\nHost: x\r\n"
                          "Transfer-Encoding: chunked\r\n\r\n"
                          "2\r\nab\r\n0\r\n\r\n"
                          "GET /b HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_EQ(first, HttpParser::Status::kComplete);
  EXPECT_EQ(parser.request().path, "/a");
  EXPECT_EQ(parser.request().body, "ab");
  ASSERT_EQ(parser.Reset(), HttpParser::Status::kComplete);
  EXPECT_EQ(parser.request().path, "/b");
}

TEST(HttpParserTest, ChunkedBodyHonorsBodyLimit) {
  HttpParserLimits limits;
  limits.max_body_bytes = 16;
  {  // single over-limit chunk, rejected from the size line alone
    HttpParser parser(limits);
    EXPECT_EQ(parser.Consume("POST / HTTP/1.1\r\n"
                             "Transfer-Encoding: chunked\r\n\r\n"
                             "FFFFFFFFFFFFFFFFFF\r\n"),
              HttpParser::Status::kError);
    EXPECT_EQ(parser.error_status(), 413);
  }
  {  // many small chunks whose total crosses the cap
    HttpParser parser(limits);
    std::string wire =
        "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
    for (int i = 0; i < 5; ++i) wire += "4\r\nabcd\r\n";
    EXPECT_EQ(parser.Consume(wire), HttpParser::Status::kError);
    EXPECT_EQ(parser.error_status(), 413);
  }
  {  // unbounded trailers -> 431
    HttpParserLimits tight;
    tight.max_headers = 4;
    HttpParser parser(tight);
    std::string wire =
        "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n";
    for (int i = 0; i < 6; ++i) wire += "t" + std::to_string(i) + ": v\r\n";
    wire += "\r\n";
    EXPECT_EQ(parser.Consume(wire), HttpParser::Status::kError);
    EXPECT_EQ(parser.error_status(), 431);
  }
}

TEST(HttpParserTest, ByteAtATimeMatchesOneShot) {
  const std::string wire =
      "POST /x?a=1 HTTP/1.1\r\nHost: h\r\ncontent-length: 4\r\n"
      "X-Extra:  padded value \r\n\r\nbody";
  HttpParser one_shot;
  ASSERT_EQ(one_shot.Consume(wire), HttpParser::Status::kComplete);

  HttpParser dribble;
  HttpParser::Status status = HttpParser::Status::kNeedMore;
  for (char c : wire) {
    status = dribble.Consume(std::string_view(&c, 1));
    if (status != HttpParser::Status::kNeedMore) break;
  }
  ASSERT_EQ(status, HttpParser::Status::kComplete);
  EXPECT_EQ(dribble.request().method, one_shot.request().method);
  EXPECT_EQ(dribble.request().path, one_shot.request().path);
  EXPECT_EQ(dribble.request().body, one_shot.request().body);
  EXPECT_EQ(*dribble.request().FindHeader("x-extra"), "padded value");
}

TEST(HttpParserTest, PipelinedRequestsSurviveReset) {
  HttpParser parser;
  const auto first = Feed(&parser,
                          "GET /a HTTP/1.1\r\nHost: x\r\n\r\n"
                          "GET /b HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_EQ(first, HttpParser::Status::kComplete);
  EXPECT_EQ(parser.request().path, "/a");
  // Reset must immediately produce the buffered second request.
  ASSERT_EQ(parser.Reset(), HttpParser::Status::kComplete);
  EXPECT_EQ(parser.request().path, "/b");
  EXPECT_EQ(parser.Reset(), HttpParser::Status::kNeedMore);
  EXPECT_TRUE(parser.idle());
}

TEST(HttpParserTest, BareLfLineEndingsAccepted) {
  HttpParser parser;
  const auto status =
      Feed(&parser, "GET /lf HTTP/1.1\nHost: x\n\n");
  ASSERT_EQ(status, HttpParser::Status::kComplete);
  EXPECT_EQ(parser.request().path, "/lf");
}

TEST(HttpParserTest, ConnectionHeaderAndVersionDefaults) {
  HttpParser p10;
  ASSERT_EQ(Feed(&p10, "GET / HTTP/1.0\r\n\r\n"),
            HttpParser::Status::kComplete);
  EXPECT_FALSE(p10.request().keep_alive);  // 1.0 defaults to close

  HttpParser p10ka;
  ASSERT_EQ(Feed(&p10ka,
                 "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"),
            HttpParser::Status::kComplete);
  EXPECT_TRUE(p10ka.request().keep_alive);

  HttpParser p11close;
  ASSERT_EQ(Feed(&p11close, "GET / HTTP/1.1\r\nConnection: close\r\n\r\n"),
            HttpParser::Status::kComplete);
  EXPECT_FALSE(p11close.request().keep_alive);
}

struct MalformedCase {
  const char* name;
  std::string wire;
  int want_status;
};

TEST(HttpParserTest, MalformedRequestsGetPreciseStatuses) {
  const std::vector<MalformedCase> cases = {
      {"no_target", "GET\r\n\r\n", 400},
      {"relative_target", "GET foo HTTP/1.1\r\n\r\n", 400},
      {"bad_version", "GET / HTTP/2.0\r\n\r\n", 505},
      {"garbage_version", "GET / TROLL\r\n\r\n", 400},
      {"space_in_header_name", "GET / HTTP/1.1\r\nBad Name: x\r\n\r\n", 400},
      {"header_without_colon", "GET / HTTP/1.1\r\nnocolon\r\n\r\n", 400},
      {"obs_fold", "GET / HTTP/1.1\r\nA: 1\r\n  folded\r\n\r\n", 400},
      {"nonnumeric_content_length",
       "POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n", 400},
      {"negative_content_length",
       "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n", 400},
      {"conflicting_content_length",
       "POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
       400},
      {"transfer_encoding_gzip", "POST / HTTP/1.1\r\nTransfer-Encoding: gzip"
                                 "\r\n\r\n", 501},
      {"transfer_encoding_list",
       "POST / HTTP/1.1\r\nTransfer-Encoding: gzip, chunked\r\n\r\n", 501},
      {"te_then_content_length",
       "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
       "Content-Length: 4\r\n\r\n", 400},
      {"content_length_then_te",
       "POST / HTTP/1.1\r\nContent-Length: 4\r\n"
       "Transfer-Encoding: chunked\r\n\r\n", 400},
      {"duplicate_te",
       "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
       "Transfer-Encoding: chunked\r\n\r\n", 400},
      {"bad_chunk_size",
       "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n", 400},
      {"empty_chunk_size",
       "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\r\n", 400},
      {"bad_chunk_terminator",
       "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
       "3\r\nabcXX", 400},
      {"nul_in_header", std::string("GET / HTTP/1.1\r\nA: b\0c\r\n\r\n", 26),
       400},
  };
  for (const auto& c : cases) {
    HttpParser parser;
    EXPECT_EQ(parser.Consume(c.wire), HttpParser::Status::kError) << c.name;
    EXPECT_EQ(parser.error_status(), c.want_status) << c.name;
    EXPECT_FALSE(parser.error().empty()) << c.name;
  }
}

TEST(HttpParserTest, LimitsAreEnforced) {
  HttpParserLimits limits;
  limits.max_line_bytes = 64;
  limits.max_headers = 4;
  limits.max_body_bytes = 16;

  {  // over-long request line -> 414
    HttpParser parser(limits);
    const std::string line = "GET /" + std::string(100, 'a') + " HTTP/1.1\r\n";
    EXPECT_EQ(parser.Consume(line), HttpParser::Status::kError);
    EXPECT_EQ(parser.error_status(), 414);
  }
  {  // over-long header line -> 431
    HttpParser parser(limits);
    const std::string wire =
        "GET / HTTP/1.1\r\nX: " + std::string(100, 'v') + "\r\n\r\n";
    EXPECT_EQ(parser.Consume(wire), HttpParser::Status::kError);
    EXPECT_EQ(parser.error_status(), 431);
  }
  {  // too many headers -> 431
    HttpParser parser(limits);
    std::string wire = "GET / HTTP/1.1\r\n";
    for (int i = 0; i < 6; ++i) {
      wire += "h" + std::to_string(i) + ": v\r\n";
    }
    wire += "\r\n";
    EXPECT_EQ(parser.Consume(wire), HttpParser::Status::kError);
    EXPECT_EQ(parser.error_status(), 431);
  }
  {  // declared body beyond the cap -> 413, detected before any body bytes
    HttpParser parser(limits);
    EXPECT_EQ(parser.Consume("POST / HTTP/1.1\r\nContent-Length: 1000"
                             "\r\n\r\n"),
              HttpParser::Status::kError);
    EXPECT_EQ(parser.error_status(), 413);
  }
  {  // a huge Content-Length value must not overflow into acceptance
    HttpParser parser(limits);
    EXPECT_EQ(parser.Consume("POST / HTTP/1.1\r\nContent-Length: "
                             "999999999999999999999999\r\n\r\n"),
              HttpParser::Status::kError);
    EXPECT_NE(parser.error_status(), 200);
  }
}

TEST(HttpParserTest, IdleTracksRequestBoundaries) {
  HttpParser parser;
  EXPECT_TRUE(parser.idle());
  EXPECT_EQ(parser.Consume("GET /"), HttpParser::Status::kNeedMore);
  EXPECT_FALSE(parser.idle());  // mid-request: not safe to drop silently
  EXPECT_EQ(parser.Consume(" HTTP/1.1\r\n\r\n"),
            HttpParser::Status::kComplete);
  parser.Reset();
  EXPECT_TRUE(parser.idle());
}

// --------------------------------------------------------------- router

TEST(RouterTest, DispatchesLiteralsAndCaptures) {
  Router router;
  router.Handle("GET", "/healthz", [](const HttpRequest&, const PathParams&) {
    HttpResponse r;
    r.body = "ok";
    return r;
  });
  router.Handle("POST", "/v1/streams/{name}/snapshots",
                [](const HttpRequest&, const PathParams& params) {
                  HttpResponse r;
                  r.body = params.at("name");
                  return r;
                });

  HttpRequest get;
  get.method = "GET";
  get.path = "/healthz";
  EXPECT_EQ(router.Dispatch(get).body, "ok");

  HttpRequest post;
  post.method = "POST";
  post.path = "/v1/streams/payments/snapshots";
  EXPECT_EQ(router.Dispatch(post).body, "payments");

  HttpRequest missing;
  missing.method = "GET";
  missing.path = "/v1/streams/payments/unknown";
  EXPECT_EQ(router.Dispatch(missing).status, 404);

  // Segment counts must match exactly; an empty capture segment is a 404.
  HttpRequest short_path;
  short_path.method = "POST";
  short_path.path = "/v1/streams/snapshots";
  EXPECT_EQ(router.Dispatch(short_path).status, 404);
}

TEST(RouterTest, WrongMethodGets405WithAllow) {
  Router router;
  router.Handle("GET", "/thing", [](const HttpRequest&, const PathParams&) {
    return HttpResponse{};
  });
  HttpRequest del;
  del.method = "DELETE";
  del.path = "/thing";
  const HttpResponse response = router.Dispatch(del);
  EXPECT_EQ(response.status, 405);
  bool has_allow = false;
  for (const auto& [name, value] : response.headers) {
    if (name == "allow") {
      has_allow = true;
      EXPECT_NE(value.find("GET"), std::string::npos);
    }
  }
  EXPECT_TRUE(has_allow);
}

// --------------------------------------------------------------- poller

class PollerEngineTest : public ::testing::TestWithParam<bool> {};

TEST_P(PollerEngineTest, ReportsReadinessOnAPipe) {
  Poller poller(/*force_poll=*/GetParam());
#if defined(__linux__)
  EXPECT_EQ(poller.using_epoll(), !GetParam());
#else
  EXPECT_FALSE(poller.using_epoll());
#endif
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  UniqueFd reader(fds[0]), writer(fds[1]);
  ASSERT_TRUE(poller.Add(reader.get(), /*want_read=*/true,
                         /*want_write=*/false));

  std::vector<Poller::Event> events;
  EXPECT_EQ(poller.Wait(0, &events), 0);  // nothing readable yet

  ASSERT_EQ(write(writer.get(), "x", 1), 1);
  ASSERT_EQ(poller.Wait(1000, &events), 1);
  EXPECT_EQ(events[0].fd, reader.get());
  EXPECT_TRUE(events[0].readable);

  // Level-triggered: the byte is still buffered, so it reports again.
  ASSERT_EQ(poller.Wait(0, &events), 1);

  // Interest can be switched off and the fd removed.
  ASSERT_TRUE(poller.Update(reader.get(), false, false));
  EXPECT_EQ(poller.Wait(0, &events), 0);
  poller.Remove(reader.get());
  EXPECT_EQ(poller.size(), 0u);
}

// The name-generator parameter avoids `info`: INSTANTIATE_TEST_SUITE_P
// expands the lambda inside a function whose own parameter is named
// `info`, which -Wshadow rejects.
INSTANTIATE_TEST_SUITE_P(Engines, PollerEngineTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& param) {
                           return param.param ? "poll" : "native";
                         });

// --------------------------------------------------------------- server

Router EchoRouter() {
  Router router;
  router.Handle("GET", "/ping", [](const HttpRequest&, const PathParams&) {
    HttpResponse r;
    r.body = "pong";
    return r;
  });
  router.Handle("POST", "/echo",
                [](const HttpRequest& request, const PathParams&) {
                  HttpResponse r;
                  r.body = request.body;
                  return r;
                });
  return router;
}

class HttpServerEngineTest : public ::testing::TestWithParam<bool> {};

TEST_P(HttpServerEngineTest, ServesRequestsOverLoopback) {
  HttpServerOptions options;
  options.force_poll = GetParam();
  HttpServer server(options, EchoRouter());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_NE(server.port(), 0);

  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;

  const auto pong = client.Get("/ping");
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->status, 200);
  EXPECT_EQ(pong->body, "pong");

  // Keep-alive: same connection carries more requests, bodies included.
  const std::string payload(10'000, 'z');
  const auto echoed = client.Post("/echo", payload, "text/plain");
  ASSERT_TRUE(echoed.has_value());
  EXPECT_EQ(echoed->status, 200);
  EXPECT_EQ(echoed->body, payload);

  const auto missing = client.Get("/nope");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, 404);

  server.Stop();
  const HttpServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 1);
  EXPECT_EQ(stats.requests_handled, 3);
  EXPECT_EQ(stats.parse_errors, 0);
}

INSTANTIATE_TEST_SUITE_P(Engines, HttpServerEngineTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& param) {
                           return param.param ? "poll" : "native";
                         });

TEST(HttpServerTest, PipelinedRequestsAllAnswered) {
  HttpServer server(HttpServerOptions{}, EchoRouter());
  ASSERT_TRUE(server.Start());
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(client.SendRaw("GET /ping HTTP/1.1\r\nHost: x\r\n\r\n"
                             "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n"
                             "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n"));
  const int want_statuses[] = {200, 200, 404};
  for (int want : want_statuses) {
    const auto response = client.ReadResponse();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, want);
  }
}

TEST(HttpServerTest, MalformedRequestGets400AndClose) {
  HttpServer server(HttpServerOptions{}, EchoRouter());
  ASSERT_TRUE(server.Start());
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(client.SendRaw("NOT A REQUEST\r\n\r\n"));
  const auto response = client.ReadResponse();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 400);
  EXPECT_EQ(response->headers.at("connection"), "close");
  EXPECT_EQ(server.stats().parse_errors, 1);
}

TEST(HttpServerTest, OversizedBodyGets413) {
  HttpServerOptions options;
  options.limits.max_body_bytes = 128;
  HttpServer server(options, EchoRouter());
  ASSERT_TRUE(server.Start());
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  const auto response =
      client.Post("/echo", std::string(4096, 'x'), "text/plain");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 413);
}

TEST(HttpServerTest, ConnectionCapAnswers503) {
  HttpServerOptions options;
  options.max_connections = 2;
  HttpServer server(options, EchoRouter());
  ASSERT_TRUE(server.Start());

  HttpClient a, b;
  ASSERT_TRUE(a.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(b.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(a.Get("/ping").has_value());  // both really open
  ASSERT_TRUE(b.Get("/ping").has_value());

  HttpClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server.port()));
  const auto refused = c.ReadResponse();  // server sends 503 unprompted
  ASSERT_TRUE(refused.has_value());
  EXPECT_EQ(refused->status, 503);
  EXPECT_GE(server.stats().connections_refused, 1);

  // Capacity frees up once an occupant leaves.
  a.Close();
  HttpClient d;
  std::optional<HttpClientResponse> ok;
  for (int attempt = 0; attempt < 50 && !ok.has_value(); ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (!d.Connect("127.0.0.1", server.port())) continue;
    ok = d.Get("/ping");
  }
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->status, 200);
}

TEST(HttpServerTest, ReadDeadlineClosesSilentConnections) {
  HttpServerOptions options;
  options.read_deadline_ms = 100;
  HttpServer server(options, EchoRouter());
  ASSERT_TRUE(server.Start());
  HttpClient client(/*timeout_ms=*/2000);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(client.SendRaw("GET /ping HTTP/1."));  // stall mid-request
  const auto response = client.ReadResponse();
  EXPECT_FALSE(response.has_value());  // server hung up, no bytes
  for (int i = 0; i < 100 && server.stats().deadline_closes == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.stats().deadline_closes, 1);
  EXPECT_EQ(server.stats().open_connections, 0);
}

TEST(HttpServerTest, DrainStopsAcceptingAndFinishesInFlight) {
  HttpServer server(HttpServerOptions{}, EchoRouter());
  ASSERT_TRUE(server.Start());
  const uint16_t port = server.port();

  HttpClient idle_conn;
  ASSERT_TRUE(idle_conn.Connect("127.0.0.1", port));
  ASSERT_TRUE(idle_conn.Get("/ping").has_value());  // now idle keep-alive

  server.BeginDrain();
  EXPECT_TRUE(server.WaitDrained(2000));

  // The idle connection was closed by the drain...
  EXPECT_EQ(server.stats().open_connections, 0);
  // ...and new connections are not accepted (connect may succeed against
  // a dead backlog, but no response ever comes).
  HttpClient late(/*timeout_ms=*/300);
  if (late.Connect("127.0.0.1", port)) {
    EXPECT_FALSE(late.Get("/ping").has_value());
  }
  server.Stop();
}

TEST(HttpServerTest, ConcurrentClientsAllServed) {
  HttpServer server(HttpServerOptions{}, EchoRouter());
  ASSERT_TRUE(server.Start());
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 25;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      HttpClient client;
      if (!client.Connect("127.0.0.1", server.port())) return;
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const std::string body =
            "t" + std::to_string(t) + ":" + std::to_string(i);
        const auto response = client.Post("/echo", body, "text/plain");
        if (response.has_value() && response->status == 200 &&
            response->body == body) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ok.load(), kThreads * kRequestsPerThread);
  EXPECT_EQ(server.stats().requests_handled, kThreads * kRequestsPerThread);
}

}  // namespace
}  // namespace focus::net

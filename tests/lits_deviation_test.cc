#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/lits_deviation.h"
#include "datagen/quest_gen.h"
#include "itemsets/apriori.h"
#include "itemsets/support_counter.h"

namespace focus::core {
namespace {

using lits::Itemset;
using lits::LitsModel;

// The paper's Figure 6 example, realized as concrete databases over items
// a=0, b=1, c=2 (20 transactions each so the supports are exact):
//   D1: sup(a)=0.5, sup(b)=0.4, sup(ab)=0.25, sup(c)=0.1,  sup(bc)=0.05
//   D2: sup(a)=0.1, sup(b)=0.3, sup(ab)=0.05, sup(c)=0.5,  sup(bc)=0.2
data::TransactionDb Figure6D1() {
  data::TransactionDb db(3);
  // 5 x {a,b}; 5 x {a}; 2 x {b}; 1 x {b,c}; 1 x {c}; 6 x {}-filler (item
  // universe has no empty transactions, so use a spare item? Instead use
  // carefully chosen singletons.)
  // Recount: a: 10, b: 8, ab: 5, c: 2, bc: 1 of 20.
  for (int i = 0; i < 5; ++i) db.AddTransaction(std::vector<int32_t>{0, 1});
  for (int i = 0; i < 5; ++i) db.AddTransaction(std::vector<int32_t>{0});
  for (int i = 0; i < 2; ++i) db.AddTransaction(std::vector<int32_t>{1});
  db.AddTransaction(std::vector<int32_t>{1, 2});
  db.AddTransaction(std::vector<int32_t>{2});
  // 6 transactions containing none of a,b,c are impossible in a 3-item
  // universe without an empty transaction; instead repeat {c}? That would
  // change sup(c). Use 6 copies of a 4th item by widening the universe.
  return db;
}

// Building exact Figure-6 supports needs padding transactions containing
// none of a, b, c. The padding is spread over two spare items so neither
// ever reaches the minimum supports used in these tests.
data::TransactionDb MakeDb(int num_ab, int num_a_only, int num_b_only,
                           int num_bc, int num_c_only, int num_pad,
                           int32_t num_items = 5) {
  data::TransactionDb db(num_items);
  for (int i = 0; i < num_ab; ++i) db.AddTransaction(std::vector<int32_t>{0, 1});
  for (int i = 0; i < num_a_only; ++i) db.AddTransaction(std::vector<int32_t>{0});
  for (int i = 0; i < num_b_only; ++i) db.AddTransaction(std::vector<int32_t>{1});
  for (int i = 0; i < num_bc; ++i) db.AddTransaction(std::vector<int32_t>{1, 2});
  for (int i = 0; i < num_c_only; ++i) db.AddTransaction(std::vector<int32_t>{2});
  for (int i = 0; i < num_pad; ++i) {
    db.AddTransaction(std::vector<int32_t>{i % 2 == 0 ? 3 : 4});
  }
  return db;
}

TEST(LitsGcrTest, GcrIsUnionOfStructuralComponents) {
  LitsModel m1(0.2, 20, 4);
  m1.Add(Itemset({0}), 0.5);
  m1.Add(Itemset({1}), 0.4);
  m1.Add(Itemset({0, 1}), 0.25);
  LitsModel m2(0.2, 20, 4);
  m2.Add(Itemset({1}), 0.3);
  m2.Add(Itemset({2}), 0.5);
  m2.Add(Itemset({0, 1}), 0.05);
  m2.Add(Itemset({1, 2}), 0.2);

  const std::vector<Itemset> gcr = LitsGcr(m1, m2);
  ASSERT_EQ(gcr.size(), 5u);  // {a},{b},{c},{ab},{bc}
  EXPECT_EQ(gcr[0], Itemset({0}));
  EXPECT_EQ(gcr[1], Itemset({1}));
  EXPECT_EQ(gcr[2], Itemset({2}));
  EXPECT_EQ(gcr[3], Itemset({0, 1}));
  EXPECT_EQ(gcr[4], Itemset({1, 2}));
}

TEST(LitsDeviationTest, Figure6WorkedExample) {
  // D1: 20 transactions; a in 10 (ab 5, a-only 5), b in 8 (ab 5, b-only 2,
  // bc 1), c in 2 (bc 1, c-only 1), 6 padding.
  const data::TransactionDb d1 = MakeDb(5, 5, 2, 1, 1, 6);
  // D2: a in 2 (ab 1, a-only 1), b in 6 (ab 1, b-only 1, bc 4), c in 10
  // (bc 4, c-only 6), 8 padding.
  const data::TransactionDb d2 = MakeDb(1, 1, 1, 4, 6, 7);
  ASSERT_EQ(d1.num_transactions(), 20);
  ASSERT_EQ(d2.num_transactions(), 20);

  // Mine with min-support such that the models match Figure 6:
  // L1 (minsup 0.25): {a}:0.5, {b}:0.4, {ab}:0.25.
  lits::AprioriOptions options;
  options.min_support = 0.25;
  const LitsModel m1 = lits::Apriori(d1, options);
  EXPECT_DOUBLE_EQ(m1.SupportOr(Itemset({0}), -1), 0.5);
  EXPECT_DOUBLE_EQ(m1.SupportOr(Itemset({1}), -1), 0.4);
  EXPECT_DOUBLE_EQ(m1.SupportOr(Itemset({0, 1}), -1), 0.25);

  // L2 (minsup 0.1): {a}:0.1, {b}:0.3, {c}:0.5, {bc}:0.2, {ab}... ab=0.05
  // is below 0.1; the paper's L2 = {b, c, ab, bc}. Emulate the paper's L2
  // exactly by assembling the model by hand.
  LitsModel m2(0.05, 20, 4);
  m2.Add(Itemset({1}), 0.3);
  m2.Add(Itemset({2}), 0.5);
  m2.Add(Itemset({0, 1}), 0.05);
  m2.Add(Itemset({1, 2}), 0.2);

  // Drop {c} and {bc} from m1's mined model to match L1 = {a, b, ab}:
  // (minsup 0.25 already excludes them).
  DeviationFunction fn{AbsoluteDiff(), AggregateKind::kSum};
  const double deviation = LitsDeviation(m1, d1, m2, d2, fn);
  // |0.5-0.1| + |0.4-0.3| + |0.1-0.5| + |0.25-0.05| + |0.05-0.2| = 1.25
  // (the paper's §2.2/§4.1 walk-through lists these same five terms).
  EXPECT_NEAR(deviation, 1.25, 1e-9);

  DeviationFunction fn_max{AbsoluteDiff(), AggregateKind::kMax};
  EXPECT_NEAR(LitsDeviation(m1, d1, m2, d2, fn_max), 0.4, 1e-9);
}

TEST(LitsDeviationTest, IdenticalDatasetsHaveZeroDeviation) {
  const data::TransactionDb db = MakeDb(5, 5, 2, 1, 1, 6);
  lits::AprioriOptions options;
  options.min_support = 0.1;
  const LitsModel m = lits::Apriori(db, options);
  DeviationFunction fn;
  EXPECT_DOUBLE_EQ(LitsDeviation(m, db, m, db, fn), 0.0);
}

TEST(LitsDeviationTest, SymmetricForAbsoluteDiff) {
  const data::TransactionDb d1 = MakeDb(5, 5, 2, 1, 1, 6);
  const data::TransactionDb d2 = MakeDb(1, 1, 1, 4, 6, 7);
  lits::AprioriOptions options;
  options.min_support = 0.1;
  const LitsModel m1 = lits::Apriori(d1, options);
  const LitsModel m2 = lits::Apriori(d2, options);
  DeviationFunction fn;
  EXPECT_NEAR(LitsDeviation(m1, d1, m2, d2, fn),
              LitsDeviation(m2, d2, m1, d1, fn), 1e-12);
}

TEST(LitsDeviationTest, Theorem41GcrGivesLeastDeviation) {
  // Any common refinement (superset of the GCR) yields a deviation at
  // least as large as the GCR's, for f in {f_a, f_s}, g in {sum, max}.
  const data::TransactionDb d1 = MakeDb(5, 5, 2, 1, 1, 6);
  const data::TransactionDb d2 = MakeDb(1, 1, 1, 4, 6, 7);
  lits::AprioriOptions options;
  options.min_support = 0.2;
  const LitsModel m1 = lits::Apriori(d1, options);
  const LitsModel m2 = lits::Apriori(d2, options);

  std::vector<Itemset> gcr = LitsGcr(m1, m2);
  std::vector<Itemset> finer = gcr;
  finer.push_back(Itemset({0, 2}));
  finer.push_back(Itemset({0, 1, 2}));
  finer.push_back(Itemset({3}));

  for (const AggregateKind g : {AggregateKind::kSum, AggregateKind::kMax}) {
    for (const bool scaled : {false, true}) {
      DeviationFunction fn;
      fn.f = scaled ? ScaledDiff() : AbsoluteDiff();
      fn.g = g;
      const double on_gcr = LitsDeviationOverRegions(gcr, d1, d2, fn);
      const double on_finer = LitsDeviationOverRegions(finer, d1, d2, fn);
      EXPECT_LE(on_gcr, on_finer + 1e-12)
          << "g=" << ToString(g) << " scaled=" << scaled;
    }
  }
}

TEST(LitsDeviationTest, FocusedWithinDepartment) {
  const data::TransactionDb d1 = MakeDb(5, 5, 2, 1, 1, 6);
  const data::TransactionDb d2 = MakeDb(1, 1, 1, 4, 6, 7);
  LitsModel m1(0.2, 20, 4);
  m1.Add(Itemset({0}), 0.5);
  m1.Add(Itemset({1}), 0.4);
  m1.Add(Itemset({0, 1}), 0.25);
  LitsModel m2(0.05, 20, 4);
  m2.Add(Itemset({1}), 0.3);
  m2.Add(Itemset({2}), 0.5);
  m2.Add(Itemset({0, 1}), 0.05);
  m2.Add(Itemset({1, 2}), 0.2);

  DeviationFunction fn;
  // Department = {a, b}: GCR members {a},{b},{ab} qualify.
  const double dept_ab = LitsDeviationFocused(m1, d1, m2, d2,
                                              WithinItems({0, 1}), fn);
  EXPECT_NEAR(dept_ab, 0.4 + 0.1 + 0.2, 1e-9);
  // Itemsets containing c: {c}, {bc}.
  const double with_c =
      LitsDeviationFocused(m1, d1, m2, d2, ContainsItem(2), fn);
  EXPECT_NEAR(with_c, 0.4 + 0.15, 1e-9);
  // Focus on everything == unfocused deviation.
  const double all = LitsDeviationFocused(
      m1, d1, m2, d2, [](const Itemset&) { return true; }, fn);
  EXPECT_NEAR(all, LitsDeviation(m1, d1, m2, d2, fn), 1e-12);
}

TEST(LitsDeviationTest, FocusMonotoneForAbsoluteSum) {
  // delta^R <= delta^R' when R ⊆ R' (holds for f_a; §5's remark).
  const data::TransactionDb d1 = MakeDb(5, 5, 2, 1, 1, 6);
  const data::TransactionDb d2 = MakeDb(1, 1, 1, 4, 6, 7);
  lits::AprioriOptions options;
  options.min_support = 0.05;
  const LitsModel m1 = lits::Apriori(d1, options);
  const LitsModel m2 = lits::Apriori(d2, options);
  DeviationFunction fn;
  const double narrow =
      LitsDeviationFocused(m1, d1, m2, d2, WithinItems({0}), fn);
  const double wide =
      LitsDeviationFocused(m1, d1, m2, d2, WithinItems({0, 1}), fn);
  const double full = LitsDeviation(m1, d1, m2, d2, fn);
  EXPECT_LE(narrow, wide + 1e-12);
  EXPECT_LE(wide, full + 1e-12);
}

TEST(LitsPerRegionTest, ReportsSupportsAndDiffs) {
  const data::TransactionDb d1 = MakeDb(5, 5, 2, 1, 1, 6);
  const data::TransactionDb d2 = MakeDb(1, 1, 1, 4, 6, 7);
  lits::AprioriOptions options;
  options.min_support = 0.25;
  const LitsModel m1 = lits::Apriori(d1, options);
  const LitsModel m2 = lits::Apriori(d2, options);
  const auto regions = LitsPerRegionDeviations(m1, d1, m2, d2, AbsoluteDiff());
  ASSERT_FALSE(regions.empty());
  for (const auto& region : regions) {
    EXPECT_NEAR(region.deviation,
                std::fabs(region.support1 - region.support2), 1e-12);
  }
}

TEST(LitsDeviationTest, ScanOnlyCountsMissingItemsets) {
  // A model containing all GCR itemsets should not need any counting;
  // verify by corrupting the stored support and observing it is used.
  const data::TransactionDb d1 = MakeDb(5, 5, 2, 1, 1, 6);
  const data::TransactionDb d2 = MakeDb(5, 5, 2, 1, 1, 6);
  LitsModel m1(0.2, 20, 4);
  m1.Add(Itemset({0}), 0.77);  // deliberately wrong "stored" support
  LitsModel m2(0.2, 20, 4);
  m2.Add(Itemset({0}), 0.5);
  DeviationFunction fn;
  // If stored supports are trusted (they must be — the model IS the
  // measure component), the deviation is |0.77 - 0.5|.
  EXPECT_NEAR(LitsDeviation(m1, d1, m2, d2, fn), 0.27, 1e-12);
}

TEST(LitsDeviationTest, UnusedHelperBuildsFine) {
  // Guard: Figure6D1 is illustrative; ensure it stays valid.
  EXPECT_EQ(Figure6D1().num_transactions(), 14);
}

}  // namespace
}  // namespace focus::core

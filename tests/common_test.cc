#include <cstdlib>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/env.h"
#include "common/table_printer.h"
#include "common/timer.h"

namespace focus::common {
namespace {

TEST(CheckTest, PassingCheckDoesNothing) {
  FOCUS_CHECK(true);
  FOCUS_CHECK_EQ(1, 1);
  FOCUS_CHECK_LT(1, 2);
  FOCUS_CHECK_LE(2, 2);
  FOCUS_CHECK_GT(3, 2);
  FOCUS_CHECK_GE(3, 3);
  FOCUS_CHECK_NE(1, 2);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(FOCUS_CHECK(false) << "context " << 42, "context 42");
  EXPECT_DEATH(FOCUS_CHECK_EQ(1, 2), "FOCUS_CHECK failed");
}

TEST(EnvTest, DefaultsWhenUnset) {
  ::unsetenv("FOCUS_TEST_UNSET");
  EXPECT_DOUBLE_EQ(GetEnvDouble("FOCUS_TEST_UNSET", 2.5), 2.5);
  EXPECT_EQ(GetEnvInt("FOCUS_TEST_UNSET", 7), 7);
  EXPECT_TRUE(GetEnvBool("FOCUS_TEST_UNSET", true));
  EXPECT_FALSE(GetEnvBool("FOCUS_TEST_UNSET", false));
}

TEST(EnvTest, ParsesValues) {
  ::setenv("FOCUS_TEST_VAL", "3.25", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("FOCUS_TEST_VAL", 0.0), 3.25);
  ::setenv("FOCUS_TEST_VAL", "12", 1);
  EXPECT_EQ(GetEnvInt("FOCUS_TEST_VAL", 0), 12);
  ::setenv("FOCUS_TEST_VAL", "1", 1);
  EXPECT_TRUE(GetEnvBool("FOCUS_TEST_VAL", false));
  ::setenv("FOCUS_TEST_VAL", "0", 1);
  EXPECT_FALSE(GetEnvBool("FOCUS_TEST_VAL", true));
  ::unsetenv("FOCUS_TEST_VAL");
}

TEST(EnvTest, MalformedFallsBackToDefault) {
  ::setenv("FOCUS_TEST_BAD", "xyz", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("FOCUS_TEST_BAD", 1.5), 1.5);
  EXPECT_EQ(GetEnvInt("FOCUS_TEST_BAD", 9), 9);
  ::unsetenv("FOCUS_TEST_BAD");
}

TEST(BenchScaleTest, FullOverridesScale) {
  ::setenv("FOCUS_FULL", "1", 1);
  ::setenv("FOCUS_SCALE", "0.1", 1);
  EXPECT_DOUBLE_EQ(BenchScale(20.0), 20.0);
  ::unsetenv("FOCUS_FULL");
  EXPECT_DOUBLE_EQ(BenchScale(20.0), 0.1);
  ::unsetenv("FOCUS_SCALE");
  EXPECT_DOUBLE_EQ(BenchScale(20.0), 1.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "2.5"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("name   | value"), std::string::npos);
  EXPECT_NE(rendered.find("longer | 2.5"), std::string::npos);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  EXPECT_NE(table.ToString().find("only"), std::string::npos);
}

TEST(TablePrinterDeathTest, RejectsOverlongRow) {
  TablePrinter table({"a"});
  EXPECT_DEATH(table.AddRow({"1", "2"}), "FOCUS_CHECK");
}

TEST(FormatTest, FormatsNumbers) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(0.5, 4), "0.5000");
  EXPECT_EQ(FormatInt(12345), "12345");
  EXPECT_EQ(FormatInt(-7), "-7");
}

TEST(TimerTest, MeasuresNonNegativeElapsed) {
  Timer timer;
  EXPECT_GE(timer.Seconds(), 0.0);
  timer.Restart();
  EXPECT_GE(timer.Millis(), 0.0);
}

}  // namespace
}  // namespace focus::common

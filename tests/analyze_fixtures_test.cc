// End-to-end tests for tools/focus_analyze: every checker is proven live
// by fixtures that trip it at pinned file:line positions, the sanctioned
// patterns / allow() escapes / path exemptions are proven inert, and the
// repo itself must scan clean (this is the gate that keeps `ctest -L
// analyze` equivalent to CI's static-analysis job). The deprecated
// focus_lint shim is also pinned to keep forwarding.
//
// Binary paths and the fixture root are injected at compile time
// (FOCUS_ANALYZE_PATH / FOCUS_LINT_PATH / FOCUS_ANALYZE_FIXTURES /
// FOCUS_ANALYZE_REPO_ROOT, see tests/CMakeLists.txt) so the test works
// from any build directory.

#include <sys/wait.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"

namespace focus::analyze {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult RunTool(const std::string& binary, const std::string& args) {
  RunResult result;
  const std::string command = binary + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  size_t got = 0;
  while ((got = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.output.append(buffer, got);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

RunResult RunAnalyze(const std::string& args) {
  return RunTool(FOCUS_ANALYZE_PATH, args);
}

using Finding = std::tuple<std::string, int, std::string>;  // file, line, checker

// Parses "file:line: [checker] message" diagnostics, ignoring the
// trailing summary line and anything that does not match the shape.
std::vector<Finding> ParseFindings(const std::string& output) {
  std::vector<Finding> findings;
  size_t start = 0;
  while (start < output.size()) {
    size_t end = output.find('\n', start);
    if (end == std::string::npos) end = output.size();
    const std::string line = output.substr(start, end - start);
    start = end + 1;
    const size_t open = line.find(": [");
    const size_t close = line.find(']', open == std::string::npos ? 0 : open);
    if (open == std::string::npos || close == std::string::npos) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos || colon >= open) continue;
    findings.emplace_back(
        line.substr(0, colon),
        std::atoi(line.c_str() + colon + 1),
        line.substr(open + 3, close - open - 3));
  }
  return findings;
}

const char* const kAllCheckers[] = {
    "raw-mutex",
    "naked-mt19937",
    "std-function-in-hot-loop",
    "unchecked-strtol",
    "nondet-iteration",
    "untrusted-length-alloc",
    "unchecked-status",
    "locked-suffix",
};

TEST(FocusAnalyzeTest, ListCheckersNamesEveryChecker) {
  const RunResult result = RunAnalyze("--list-checkers");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  for (const char* checker : kAllCheckers) {
    EXPECT_NE(result.output.find(checker), std::string::npos)
        << "missing checker " << checker << " in:\n"
        << result.output;
  }
}

TEST(FocusAnalyzeTest, ListRulesIsAnAliasForListCheckers) {
  const RunResult rules = RunAnalyze("--list-rules");
  const RunResult checkers = RunAnalyze("--list-checkers");
  EXPECT_EQ(rules.exit_code, 0) << rules.output;
  EXPECT_EQ(rules.output, checkers.output);
}

TEST(FocusAnalyzeTest, UnknownFlagIsUsageError) {
  const RunResult result = RunAnalyze("--no-such-flag");
  EXPECT_EQ(result.exit_code, 2) << result.output;
}

// The heart of the corpus: every *_bad.cc fixture trips its checker at
// exactly the pinned line, and nothing else fires — which also proves
// every *_ok.cc / *_allowed.cc fixture is clean.
TEST(FocusAnalyzeTest, FixturesTriggerExactPinnedDiagnostics) {
  const RunResult result =
      RunAnalyze(std::string("--root ") + FOCUS_ANALYZE_FIXTURES);
  EXPECT_EQ(result.exit_code, 1) << result.output;

  std::vector<Finding> expected = {
      // raw-mutex: 3 shapes, outside src/common/.
      {"src/serve/raw_mutex_bad.cc", 8, "raw-mutex"},
      {"src/net/raw_mutex_condvar_bad.cc", 8, "raw-mutex"},
      {"src/core/raw_mutex_shared_bad.cc", 8, "raw-mutex"},
      // naked-mt19937: named, braced, and temporary construction.
      {"src/core/naked_mt19937_bad.cc", 7, "naked-mt19937"},
      {"src/serve/naked_mt19937_64_bad.cc", 7, "naked-mt19937"},
      {"src/io/naked_mt19937_temp_bad.cc", 9, "naked-mt19937"},
      // std-function-in-hot-loop: for / while / range-for bodies.
      {"src/core/hot_loop_for_bad.cc", 10, "std-function-in-hot-loop"},
      {"src/itemsets/hot_loop_while_bad.cc", 11, "std-function-in-hot-loop"},
      {"src/tree/hot_loop_rangefor_bad.cc", 10, "std-function-in-hot-loop"},
      // unchecked-strtol: atoi, strtol(nullptr), std::strtod(NULL).
      {"src/io/atoi_bad.cc", 6, "unchecked-strtol"},
      {"src/io/strtol_null_bad.cc", 6, "unchecked-strtol"},
      {"src/io/strtod_null_bad.cc", 6, "unchecked-strtol"},
      // nondet-iteration: FP fold, unsorted append, serialization.
      {"src/core/nondet_fp_accum_bad.cc", 9, "nondet-iteration"},
      {"src/serve/nondet_append_bad.cc", 12, "nondet-iteration"},
      {"src/io/nondet_serialize_bad.cc", 15, "nondet-iteration"},
      // untrusted-length-alloc: resize, new[], reserve sinks.
      {"src/io/untrusted_resize_bad.cc", 15, "untrusted-length-alloc"},
      {"src/net/untrusted_new_bad.cc", 14, "untrusted-length-alloc"},
      {"src/shard/untrusted_reserve_bad.cc", 11, "untrusted-length-alloc"},
      // unchecked-status: free function, socket helper, member call.
      {"src/io/unchecked_save_bad.cc", 10, "unchecked-status"},
      {"src/net/unchecked_socket_bad.cc", 8, "unchecked-status"},
      {"src/shard/unchecked_open_bad.cc", 13, "unchecked-status"},
      // locked-suffix: plain, member-chain, and evidence-after-call
      // (only the first DropLocked in locked_suffix_order_bad fires).
      {"src/serve/locked_suffix_bad.cc", 13, "locked-suffix"},
      {"src/core/locked_suffix_chain_bad.cc", 18, "locked-suffix"},
      {"src/net/locked_suffix_order_bad.cc", 17, "locked-suffix"},
  };
  std::vector<Finding> actual = ParseFindings(result.output);
  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected) << "fixture diagnostics moved:\n"
                              << result.output;

  // Belt and braces: the clean fixtures never appear even in passing.
  for (const char* clean :
       {"raw_mutex_allowed.cc", "raw_mutex_ok.cc", "make_rng_ok.cc",
        "naked_mt19937_ok.cc", "hot_loop_outside_ok.cc",
        "hot_loop_scope_ok.cc", "checked_strtol_ok.cc", "strtol_allowed.cc",
        "nondet_sorted_ok.cc", "nondet_allowed.cc", "untrusted_checked_ok.cc",
        "untrusted_clamped_ok.cc", "checked_save_ok.cc",
        "unchecked_void_ok.cc", "locked_suffix_ok.cc",
        "locked_suffix_helper_ok.cc"}) {
    EXPECT_EQ(result.output.find(clean), std::string::npos)
        << clean << " should be clean:\n"
        << result.output;
  }
}

// The repo-wide gate: the tree this test was built from analyzes clean.
// A failure here means an invariant-breaking pattern landed in src/,
// tools/, tests/, bench/, fuzz/, or examples/ — fix the call site or
// justify an inline `// focus-analyze: allow(<checker>)`.
TEST(FocusAnalyzeTest, RepositoryScansClean) {
  const RunResult result =
      RunAnalyze(std::string("--root ") + FOCUS_ANALYZE_REPO_ROOT);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_TRUE(ParseFindings(result.output).empty()) << result.output;
}

// focus_lint is a deprecated shim over the same driver: same flags, same
// checkers, plus a one-line notice on stderr.
TEST(FocusAnalyzeTest, FocusLintShimForwardsWithDeprecationNotice) {
  const RunResult result = RunTool(FOCUS_LINT_PATH, "--list-rules");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("deprecated"), std::string::npos)
      << result.output;
  for (const char* checker : kAllCheckers) {
    EXPECT_NE(result.output.find(checker), std::string::npos)
        << "missing checker " << checker << " in:\n"
        << result.output;
  }
}

TEST(FocusAnalyzeTest, FocusLintShimStillEnforcesTheGate) {
  const RunResult result = RunTool(
      FOCUS_LINT_PATH, std::string("--root ") + FOCUS_ANALYZE_FIXTURES);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_EQ(ParseFindings(result.output).size(), 24u) << result.output;
}

}  // namespace
}  // namespace focus::analyze

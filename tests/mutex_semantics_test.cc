// Runtime semantics of the annotated common::Mutex / MutexLock / CondVar
// wrappers (common/mutex.h), plus a lock-ordering regression: a child
// process that takes two mutexes in opposite orders with a rendezvous in
// between MUST deadlock, proving the primitives really block (a mutex
// that silently no-ops would pass every other test here). The child is
// killed by a parent-side watchdog, so the suite never hangs.
//
// Deliberately absent from the TSan CI target list: the deadlock child is
// the point, and fork+threads is outside TSan's supported model.

#include "common/mutex.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "common/thread_annotations.h"

namespace focus::common {
namespace {

using std::chrono::milliseconds;

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mutex;
  mutex.Lock();
  bool acquired = true;
  std::thread contender([&mutex, &acquired]() {
    acquired = mutex.TryLock();
    if (acquired) mutex.Unlock();
  });
  contender.join();
  EXPECT_FALSE(acquired);
  mutex.Unlock();
  ASSERT_TRUE(mutex.TryLock());
  mutex.Unlock();
}

TEST(MutexTest, MutexLockSerializesIncrements) {
  Mutex mutex;
  int counter = 0;  // guarded by `mutex` (GUARDED_BY is member/global-only)
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mutex, &counter]() {
      for (int i = 0; i < kPerThread; ++i) {
        MutexLock lock(&mutex);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  MutexLock lock(&mutex);
  EXPECT_EQ(counter, kThreads * kPerThread);
}

TEST(CondVarTest, WaitForTimesOutWithMutexStillHeld) {
  Mutex mutex;
  CondVar cv;
  mutex.Lock();
  const auto start = std::chrono::steady_clock::now();
  const bool satisfied =
      cv.WaitFor(mutex, milliseconds(50), []() { return false; });
  EXPECT_FALSE(satisfied);
  EXPECT_GE(std::chrono::steady_clock::now() - start, milliseconds(45));
  // The mutex must still be held on timeout: a competing TryLock fails.
  bool stolen = true;
  std::thread contender([&mutex, &stolen]() {
    stolen = mutex.TryLock();
    if (stolen) mutex.Unlock();
  });
  contender.join();
  EXPECT_FALSE(stolen);
  mutex.Unlock();
}

TEST(CondVarTest, NotifyWakesPredicateWait) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;  // guarded by `mutex`
  std::thread producer([&]() {
    {
      MutexLock lock(&mutex);
      ready = true;
    }
    cv.NotifyOne();
  });
  {
    MutexLock lock(&mutex);
    cv.Wait(mutex, [&ready]() { return ready; });
    EXPECT_TRUE(ready);
  }
  producer.join();
}

// ---------------------------------------------------------------------------
// Lock-ordering regression, run in a forked child so the deadlock cannot
// take the test runner down. The child rendezvouses both threads after
// their FIRST acquisition, so the cross-order second acquisition is a
// guaranteed deadlock, not a racy maybe.

// Child body; never returns normally on deadlock. Exits 0 if both
// threads complete (i.e. no deadlock — a failure for the inconsistent
// ordering, the expectation for the consistent one).
void LockPairInChild(bool consistent_order) NO_THREAD_SAFETY_ANALYSIS {
  static Mutex mutex_a;
  static Mutex mutex_b;
  static std::atomic<int> holding_first{0};
  // The hold-your-first-mutex barrier only makes sense when the threads
  // grab DIFFERENT first mutexes; with a shared first mutex the spinner
  // would wait forever for the thread blocked behind it.
  const bool rendezvous = !consistent_order;
  auto grab = [rendezvous](Mutex* first, Mutex* second)
                  NO_THREAD_SAFETY_ANALYSIS {
    first->Lock();
    if (rendezvous) {
      holding_first.fetch_add(1);
      while (holding_first.load() < 2) {
        std::this_thread::yield();  // both must hold their first mutex
      }
    }
    second->Lock();
    second->Unlock();
    first->Unlock();
  };
  std::thread t1(grab, &mutex_a, &mutex_b);
  std::thread t2(grab, consistent_order ? &mutex_a : &mutex_b,
                 consistent_order ? &mutex_b : &mutex_a);
  t1.join();
  t2.join();
  _exit(0);
}

TEST(LockOrderingTest, InconsistentOrderDeadlocksUntilKilled) {
  const pid_t child = fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    LockPairInChild(/*consistent_order=*/false);
    _exit(3);  // unreachable
  }
  // Watchdog: the child must STILL be blocked after ~1.5s of polling.
  bool exited = false;
  int status = 0;
  for (int i = 0; i < 15 && !exited; ++i) {
    std::this_thread::sleep_for(milliseconds(100));
    exited = waitpid(child, &status, WNOHANG) == child;
  }
  EXPECT_FALSE(exited)
      << "child escaped a guaranteed lock-order deadlock; common::Mutex "
         "is not actually blocking (status "
      << status << ")";
  if (!exited) {
    kill(child, SIGKILL);
    waitpid(child, &status, 0);
  }
}

TEST(LockOrderingTest, ConsistentOrderExitsCleanly) {
  const pid_t child = fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    LockPairInChild(/*consistent_order=*/true);
    _exit(3);  // unreachable: LockPairInChild exits 0 itself
  }
  // Same acquisition pattern minus the inversion finishes promptly.
  bool exited = false;
  int status = 0;
  for (int i = 0; i < 100 && !exited; ++i) {
    std::this_thread::sleep_for(milliseconds(100));
    exited = waitpid(child, &status, WNOHANG) == child;
  }
  if (!exited) {
    kill(child, SIGKILL);
    waitpid(child, nullptr, 0);
    FAIL() << "consistently-ordered child did not finish within 10s";
  }
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace focus::common

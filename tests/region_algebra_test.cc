#include <vector>

#include <gtest/gtest.h>

#include "core/region_algebra.h"

namespace focus::core {
namespace {

using lits::Itemset;

TEST(ItemsetAlgebraTest, UnionIsGcr) {
  const ItemsetSet g1 = {Itemset({0}), Itemset({1}), Itemset({0, 1})};
  const ItemsetSet g2 = {Itemset({1}), Itemset({2})};
  const ItemsetSet u = StructuralUnion(g1, g2);
  ASSERT_EQ(u.size(), 4u);
  EXPECT_EQ(u[0], Itemset({0}));
  EXPECT_EQ(u[1], Itemset({1}));
  EXPECT_EQ(u[2], Itemset({2}));
  EXPECT_EQ(u[3], Itemset({0, 1}));
}

TEST(ItemsetAlgebraTest, IntersectionKeepsShared) {
  const ItemsetSet g1 = {Itemset({0}), Itemset({1}), Itemset({0, 1})};
  const ItemsetSet g2 = {Itemset({1}), Itemset({0, 1}), Itemset({2})};
  const ItemsetSet i = StructuralIntersection(g1, g2);
  ASSERT_EQ(i.size(), 2u);
  EXPECT_EQ(i[0], Itemset({1}));
  EXPECT_EQ(i[1], Itemset({0, 1}));
}

TEST(ItemsetAlgebraTest, DifferenceIsSymmetric) {
  const ItemsetSet g1 = {Itemset({0}), Itemset({1})};
  const ItemsetSet g2 = {Itemset({1}), Itemset({2})};
  const ItemsetSet d = StructuralDifference(g1, g2);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0], Itemset({0}));
  EXPECT_EQ(d[1], Itemset({2}));
  // (g1 ⊔ g2) − (g1 ⊓ g2) definition: check via the other operators.
  const ItemsetSet u = StructuralUnion(g1, g2);
  const ItemsetSet i = StructuralIntersection(g1, g2);
  EXPECT_EQ(d.size(), u.size() - i.size());
}

TEST(ItemsetAlgebraTest, NormalizeDedupes) {
  ItemsetSet messy = {Itemset({1, 0}), Itemset({0, 1}), Itemset({2})};
  const ItemsetSet clean = NormalizeItemsets(std::move(messy));
  EXPECT_EQ(clean.size(), 2u);
}

// ---- boxes ----

data::Schema XSchema() {
  return data::Schema({data::Schema::Numeric("x", 0.0, 10.0)}, 0);
}

data::Box XRange(double lo, double hi) {
  data::Box box = data::Box::Full(XSchema());
  box.ClampNumeric(0, lo, hi);
  return box;
}

TEST(BoxAlgebraTest, StructuralUnionIsOverlay) {
  const data::Schema schema = XSchema();
  // Partition A: [0,5), [5,inf). Partition B: [0,3), [3,inf).
  const BoxSet a = {XRange(-1e300, 5.0), XRange(5.0, 1e300)};
  const BoxSet b = {XRange(-1e300, 3.0), XRange(3.0, 1e300)};
  const BoxSet overlay = StructuralUnion(schema, a, b);
  // Overlay cells: (<3), [3,5), [5,inf) — 3 non-empty intersections.
  EXPECT_EQ(overlay.size(), 3u);
}

TEST(BoxAlgebraTest, PlainUnionDeduplicates) {
  const data::Schema schema = XSchema();
  const BoxSet a = {XRange(0.0, 5.0), XRange(5.0, 10.0)};
  const BoxSet b = {XRange(5.0, 10.0), XRange(0.0, 2.0)};
  const BoxSet u = PlainUnion(a, b);
  EXPECT_EQ(u.size(), 3u);
}

TEST(BoxAlgebraTest, IntersectionKeepsExactMatches) {
  const data::Schema schema = XSchema();
  const BoxSet a = {XRange(0.0, 5.0), XRange(5.0, 10.0)};
  const BoxSet b = {XRange(5.0, 10.0), XRange(2.0, 3.0)};
  const BoxSet i = StructuralIntersection(schema, a, b);
  ASSERT_EQ(i.size(), 1u);
  EXPECT_TRUE(i[0] == XRange(5.0, 10.0));
}

TEST(BoxAlgebraTest, DifferenceExcludesShared) {
  const data::Schema schema = XSchema();
  const BoxSet a = {XRange(0.0, 5.0)};
  const BoxSet b = {XRange(0.0, 5.0)};
  // Identical partitions: overlay = the shared box, intersection = it too.
  EXPECT_TRUE(StructuralDifference(schema, a, b).empty());

  const BoxSet c = {XRange(0.0, 3.0)};
  const BoxSet diff = StructuralDifference(schema, a, c);
  // Overlay = [0,3); intersection = {} => difference = overlay.
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_TRUE(diff[0] == XRange(0.0, 3.0));
}

TEST(BoxAlgebraTest, OverlayDropsEmptyIntersections) {
  const data::Schema schema = XSchema();
  const BoxSet a = {XRange(0.0, 2.0)};
  const BoxSet b = {XRange(5.0, 7.0)};
  EXPECT_TRUE(StructuralUnion(schema, a, b).empty());
}

}  // namespace
}  // namespace focus::core

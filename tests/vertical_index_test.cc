// Unit tests for data::VerticalIndex — the per-item TID-bitmap
// representation behind the vertical counting kernels. Edge cases the
// bitmap layout must get right: the empty itemset (whole space), tail-word
// masking when num_transactions is not a multiple of 64, item universes
// that are not a multiple of 64, and absent/empty extremes.

#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "data/transaction_db.h"
#include "data/vertical_index.h"
#include "datagen/quest_gen.h"
#include "itemsets/itemset.h"
#include "itemsets/support_counter.h"

namespace focus::data {
namespace {

TransactionDb TinyDb() {
  // 5 transactions over items {0..4}.
  TransactionDb db(5);
  db.AddTransaction(std::vector<int32_t>{0, 1, 2});
  db.AddTransaction(std::vector<int32_t>{0, 1});
  db.AddTransaction(std::vector<int32_t>{0, 2});
  db.AddTransaction(std::vector<int32_t>{1, 2, 3});
  db.AddTransaction(std::vector<int32_t>{0, 1, 2, 3});
  return db;
}

TEST(VerticalIndexTest, DimensionsAndSingleWordBitmaps) {
  const TransactionDb db = TinyDb();
  const VerticalIndex index(db);
  EXPECT_EQ(index.num_items(), 5);
  EXPECT_EQ(index.num_transactions(), 5);
  EXPECT_EQ(index.num_words(), 1);

  // Item 0 occurs in transactions 0,1,2,4; item 3 in 3,4; item 4 nowhere.
  EXPECT_EQ(index.ItemBits(0)[0], 0b10111ULL);
  EXPECT_EQ(index.ItemBits(3)[0], 0b11000ULL);
  EXPECT_EQ(index.ItemBits(4)[0], 0ULL);
  EXPECT_EQ(index.ItemCount(0), 4);
  EXPECT_EQ(index.ItemCount(3), 2);
  EXPECT_EQ(index.ItemCount(4), 0);
}

TEST(VerticalIndexTest, CountIntersectionMatchesManualEnumeration) {
  const VerticalIndex index(TinyDb());
  const std::vector<int32_t> set01 = {0, 1};
  const std::vector<int32_t> set12 = {1, 2};
  const std::vector<int32_t> set0123 = {0, 1, 2, 3};
  const std::vector<int32_t> with_absent = {0, 4};
  EXPECT_EQ(index.CountIntersection(set01), 3);
  EXPECT_EQ(index.CountIntersection(set12), 3);
  EXPECT_EQ(index.CountIntersection(set0123), 1);
  EXPECT_EQ(index.CountIntersection(with_absent), 0);
}

TEST(VerticalIndexTest, EmptyItemsetCountsEveryTransaction) {
  const VerticalIndex index(TinyDb());
  EXPECT_EQ(index.CountIntersection({}), 5);
}

TEST(VerticalIndexTest, EmptyDatabase) {
  const TransactionDb db(3);
  const VerticalIndex index(db);
  EXPECT_EQ(index.num_transactions(), 0);
  EXPECT_EQ(index.num_words(), 0);
  EXPECT_EQ(index.ItemCount(0), 0);
  EXPECT_EQ(index.CountIntersection({}), 0);
  const std::vector<int32_t> single = {1};
  EXPECT_EQ(index.CountIntersection(single), 0);
}

TEST(VerticalIndexTest, TailWordBitsBeyondLastTransactionAreZero) {
  // 70 transactions → 2 words, 6 live bits in the tail word. Every
  // transaction contains item 0, so a stray tail bit would inflate the
  // count past num_transactions.
  TransactionDb db(2);
  for (int t = 0; t < 70; ++t) {
    db.AddTransaction(std::vector<int32_t>{0});
  }
  const VerticalIndex index(db);
  EXPECT_EQ(index.num_words(), 2);
  EXPECT_EQ(index.ItemBits(0)[0], ~0ULL);
  EXPECT_EQ(index.ItemBits(0)[1], (1ULL << 6) - 1);
  EXPECT_EQ(index.ItemCount(0), 70);
  EXPECT_EQ(index.CountIntersection({}), 70);
}

TEST(VerticalIndexTest, TransactionCountsNotMultipleOf64) {
  // Word boundaries at 63/64/65 transactions: the itemset {0,1} holds in
  // every even transaction; the exact count must survive the tail word.
  for (const int64_t n : {63, 64, 65, 128, 129}) {
    TransactionDb db(2);
    for (int64_t t = 0; t < n; ++t) {
      if (t % 2 == 0) {
        db.AddTransaction(std::vector<int32_t>{0, 1});
      } else {
        db.AddTransaction(std::vector<int32_t>{0});
      }
    }
    const VerticalIndex index(db);
    EXPECT_EQ(index.num_words(), (n + 63) / 64);
    EXPECT_EQ(index.ItemCount(0), n);
    const std::vector<int32_t> both = {0, 1};
    EXPECT_EQ(index.CountIntersection(both), (n + 1) / 2) << "n=" << n;
  }
}

TEST(VerticalIndexTest, ItemUniverseNotMultipleOf64) {
  // 67 items: the last bitmap row must be fully addressable and isolated
  // from its neighbours.
  TransactionDb db(67);
  db.AddTransaction(std::vector<int32_t>{66});
  db.AddTransaction(std::vector<int32_t>{0, 66});
  db.AddTransaction(std::vector<int32_t>{65});
  const VerticalIndex index(db);
  EXPECT_EQ(index.num_items(), 67);
  EXPECT_EQ(index.ItemCount(66), 2);
  EXPECT_EQ(index.ItemCount(65), 1);
  EXPECT_EQ(index.ItemCount(64), 0);
  const std::vector<int32_t> pair = {0, 66};
  EXPECT_EQ(index.CountIntersection(pair), 1);
}

TEST(VerticalIndexTest, MemoryBytesCoversBitmapsAndCounts) {
  const VerticalIndex index(TinyDb());
  // 5 items x 1 word x 8 bytes + 5 cached counts x 8 bytes, at minimum.
  EXPECT_GE(index.MemoryBytes(), 5 * 8 + 5 * 8);
}

TEST(VerticalIndexTest, AgreesWithHorizontalCountingOnGeneratedData) {
  datagen::QuestParams params;
  params.num_transactions = 777;  // deliberately not a multiple of 64
  params.num_items = 50;
  params.num_patterns = 10;
  params.seed = 21;
  const TransactionDb db = datagen::GenerateQuest(params);
  const VerticalIndex index(db);

  const std::vector<lits::Itemset> itemsets = {
      lits::Itemset{},          lits::Itemset({0}),
      lits::Itemset({1, 2}),    lits::Itemset({3, 7, 11}),
      lits::Itemset({49}),      lits::Itemset({0, 1, 2, 3, 4})};
  const lits::SupportCounter counter(itemsets, db.num_items());
  const std::vector<int64_t> horizontal = counter.CountAbsolute(db);
  const std::vector<int64_t> vertical = counter.CountAbsolute(index);
  EXPECT_EQ(vertical, horizontal);

  const std::vector<double> rel_h = counter.CountRelative(db);
  const std::vector<double> rel_v = counter.CountRelative(index);
  EXPECT_EQ(rel_v, rel_h);  // same integers / same n ⇒ identical doubles

  common::ThreadPool pool(4);
  EXPECT_EQ(counter.CountAbsoluteParallel(index, pool), horizontal);
  EXPECT_EQ(counter.CountRelativeParallel(index, pool), rel_h);
}

TEST(VerticalIndexTest, SinglePassBuildMatchesTwoPassReference) {
  // Regression pin for the build-path change: the constructor used to
  // fill the bitmaps in one pass and then popcount them in a SECOND pass
  // to get item_counts_; counting now folds into the fill pass. This
  // reimplements the old two-pass builder and requires the new one to
  // produce identical bitmaps and identical counts on a fixed seed.
  datagen::QuestParams params;
  params.num_transactions = 2000;
  params.num_items = 80;
  params.num_patterns = 15;
  params.seed = 1234;
  const TransactionDb db = datagen::GenerateQuest(params);

  const int64_t words = (db.num_transactions() + 63) / 64;
  std::vector<uint64_t> reference_bits(
      static_cast<size_t>(db.num_items()) * words, 0);
  for (int64_t t = 0; t < db.num_transactions(); ++t) {
    const uint64_t bit = 1ULL << (t & 63);
    const int64_t word = t >> 6;
    for (int32_t item : db.Transaction(t)) {
      reference_bits[static_cast<size_t>(item) * words + word] |= bit;
    }
  }
  std::vector<int64_t> reference_counts(db.num_items(), 0);
  for (int32_t item = 0; item < db.num_items(); ++item) {
    for (int64_t w = 0; w < words; ++w) {
      reference_counts[item] += std::popcount(
          reference_bits[static_cast<size_t>(item) * words + w]);
    }
  }

  const VerticalIndex index(db);
  ASSERT_EQ(index.num_words(), words);
  for (int32_t item = 0; item < db.num_items(); ++item) {
    const auto bits = index.ItemBits(item);
    for (int64_t w = 0; w < words; ++w) {
      ASSERT_EQ(bits[static_cast<size_t>(w)],
                reference_bits[static_cast<size_t>(item) * words + w])
          << "item=" << item << " word=" << w;
    }
    EXPECT_EQ(index.ItemCount(item), reference_counts[item]) << item;
  }
}

}  // namespace
}  // namespace focus::data

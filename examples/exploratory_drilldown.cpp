// Exploratory analysis over dt-models (§5.1): two customer datasets with a
// localized change; the analyst uses the structural operators and the
// Rank/Select operators to find WHERE the datasets differ, then focusses
// the deviation on a specific region.

#include <cstdio>

#include "focus/focus.h"

int main() {
  using namespace focus;
  using Cols = datagen::ClassGenColumns;

  // D1: baseline customer base labeled by F2 (age-banded salary rule).
  datagen::ClassGenParams params;
  params.num_rows = 8000;
  params.function = datagen::ClassFunction::kF2;
  params.seed = 1;
  const data::Dataset d1 = datagen::GenerateClassification(params);

  // D2: identical process EXCEPT customers younger than 35 flip class —
  // a localized change the analyst wants to pinpoint.
  data::Dataset d2(d1.schema());
  for (int64_t i = 0; i < d1.num_rows(); ++i) {
    int label = d1.Label(i);
    if (d1.At(i, Cols::kAge) < 35.0) label = 1 - label;
    d2.AddRow(d1.Row(i), label);
  }

  dt::CartOptions cart;
  cart.max_depth = 5;
  cart.min_leaf_size = 100;
  const core::DtModel m1(dt::BuildCart(d1, cart), d1);
  const core::DtModel m2(dt::BuildCart(d2, cart), d2);
  std::printf("tree sizes: %d and %d leaves\n", m1.num_leaves(),
              m2.num_leaves());

  core::DeviationFunction fn;
  core::DtDeviationOptions options;
  const double total = core::DtDeviation(m1, d1, m2, d2, options);
  std::printf("overall deviation delta = %.4f\n\n", total);

  // sigma_top-n(rho(Gamma_T1 u Gamma_T2)): rank leaf regions of BOTH trees.
  const core::BoxSet candidates =
      core::PlainUnion(m1.leaf_boxes(), m2.leaf_boxes());
  const auto ranked = core::RankDtRegions(candidates, m1, d1, m2, d2, fn);
  std::printf("top 3 changed regions (of %zu candidates):\n", ranked.size());
  for (const auto& entry : core::SelectTopN(ranked, 3)) {
    std::printf("  delta^R = %.4f  where  %s\n", entry.deviation,
                entry.region.ToString(d1.schema()).c_str());
  }

  // And the GCR overlay regions (sigma_top(rho(Gamma_T1 ⊔ Gamma_T2))):
  const core::BoxSet overlay = core::StructuralUnion(
      d1.schema(), m1.leaf_boxes(), m2.leaf_boxes());
  const auto overlay_ranked =
      core::RankDtRegions(overlay, m1, d1, m2, d2, fn);
  std::printf("\ntop overlay (GCR) region:\n  delta^R = %.4f  where  %s\n",
              overlay_ranked.front().deviation,
              overlay_ranked.front().region.ToString(d1.schema()).c_str());

  // Focussed deviation w.r.t. an analyst-chosen predicate region.
  core::DtDeviationOptions young;
  young.focus = core::LessThanPredicate(d1.schema(), Cols::kAge, 35.0);
  core::DtDeviationOptions old;
  old.focus = core::AtLeastPredicate(d1.schema(), Cols::kAge, 35.0);
  std::printf("\nfocussed deviations: age<35 -> %.4f, age>=35 -> %.4f\n",
              core::DtDeviation(m1, d1, m2, d2, young),
              core::DtDeviation(m1, d1, m2, d2, old));
  std::printf("(the injected change lives entirely below age 35)\n");
  return 0;
}

// Sample-size tuning (§6): how big a sample is enough? The sample
// deviation SD(S) = delta(M, M_S) quantifies how representative a sample
// is of the full dataset's model. This tool sweeps sample fractions and
// recommends the smallest one whose mean SD is within a target of the
// full-data model.

#include <cstdio>

#include "focus/focus.h"

int main() {
  using namespace focus;

  datagen::QuestParams params;
  params.num_transactions = 8000;
  params.num_items = 300;
  params.num_patterns = 150;
  params.avg_pattern_length = 4;
  params.avg_transaction_length = 10;
  params.seed = 1;
  const data::TransactionDb db = datagen::GenerateQuest(params);

  core::LitsStudyConfig config;
  config.apriori.min_support = 0.01;
  config.fractions = {0.05, 0.1, 0.2, 0.3, 0.5, 0.8};
  config.samples_per_fraction = 5;
  config.seed = 3;
  const auto points = core::LitsSampleStudy(db, config);

  std::printf("SF    mean SD   significance of decrease to next size\n");
  const auto significances = core::StepSignificances(points);
  for (size_t i = 0; i < points.size(); ++i) {
    std::printf("%.2f  %8.4f", points[i].fraction, points[i].mean_sd);
    if (i < significances.size()) {
      std::printf("   %.2f%%", significances[i]);
    }
    std::printf("\n");
  }

  // Recommendation: the smallest fraction that eliminates most of the
  // representativeness gap — mean SD within 35% of the smallest studied
  // fraction's SD (the paper's "rate of additional information decreases
  // with increasing sample size" elbow).
  const double worst_sd = points.front().mean_sd;
  double recommended = points.back().fraction;
  for (const auto& point : points) {
    if (point.mean_sd <= 0.35 * worst_sd) {
      recommended = point.fraction;
      break;
    }
  }
  std::printf("\nrecommended sample fraction: %.0f%%\n", 100.0 * recommended);
  std::printf("(the paper's conclusion: decreases stay statistically "
              "significant to 70-80%%, but 20-30%% suffices for many "
              "applications)\n");
  return 0;
}

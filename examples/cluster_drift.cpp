// Cluster-model change detection (§2.4): spatial customer data whose
// cluster structure shifts between two periods. Cluster-models are sets
// of non-overlapping dense regions; the deviation localizes how much of
// the probability mass moved, and focussing restricts the question to a
// district of interest.

#include <cstdio>
#include <random>

#include "focus/focus.h"

namespace {

focus::data::Schema CitySchema() {
  return focus::data::Schema(
      {focus::data::Schema::Numeric("x_km", 0.0, 20.0),
       focus::data::Schema::Numeric("y_km", 0.0, 20.0)},
      /*num_classes=*/0);
}

// Customers concentrated around shopping centers; `new_mall` moves 30% of
// the traffic from the center at (5,5) to a new site at (15,12).
focus::data::Dataset Period(uint64_t seed, bool new_mall, int n) {
  std::mt19937_64 rng = focus::stats::MakeRng(seed);
  std::normal_distribution<double> noise(0.0, 0.8);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  focus::data::Dataset dataset(CitySchema());
  for (int i = 0; i < n; ++i) {
    double cx;
    double cy;
    const double u = unit(rng);
    if (u < 0.4) {
      cx = 10.0;  // downtown, stable
      cy = 10.0;
    } else if (u < 0.7) {
      if (new_mall && unit(rng) < 0.8) {
        cx = 15.0;  // new mall absorbs the old site's traffic
        cy = 12.0;
      } else {
        cx = 5.0;  // old mall
        cy = 5.0;
      }
    } else {
      cx = 17.0;  // industrial park, stable
      cy = 3.0;
    }
    const double x = std::clamp(cx + noise(rng), 0.0, 19.999);
    const double y = std::clamp(cy + noise(rng), 0.0, 19.999);
    dataset.AddRow(std::vector<double>{x, y}, 0);
  }
  return dataset;
}

}  // namespace

int main() {
  using namespace focus;

  const data::Dataset before = Period(1, false, 8000);
  const data::Dataset after = Period(2, true, 8000);

  const cluster::Grid grid(CitySchema(), {0, 1}, 20);
  cluster::GridClusteringOptions clustering;
  clustering.density_threshold = 0.002;
  const cluster::ClusterModel m1 =
      cluster::GridClustering(before, grid, clustering);
  const cluster::ClusterModel m2 =
      cluster::GridClustering(after, grid, clustering);
  std::printf("clusters before: %d (%.0f%% of mass), after: %d (%.0f%%)\n",
              m1.num_regions(), 100.0 * m1.CoveredSelectivity(),
              m2.num_regions(), 100.0 * m2.CoveredSelectivity());

  core::ClusterDeviationOptions options;
  const double total = core::ClusterDeviation(m1, before, m2, after, options);
  std::printf("city-wide deviation: %.4f\n\n", total);

  struct District {
    const char* name;
    double lo_x, hi_x;
  };
  for (const District& d : {District{"west (old mall)", 0.0, 8.0},
                            District{"center (downtown)", 8.0, 13.0},
                            District{"east (new mall + industry)", 13.0, 20.0}}) {
    core::ClusterDeviationOptions focused = options;
    focused.focus = core::NumericPredicate(CitySchema(), 0, d.lo_x, d.hi_x);
    std::printf("  %-28s delta^R = %.4f\n", d.name,
                core::ClusterDeviation(m1, before, m2, after, focused));
  }
  std::printf("\nexpected: the change concentrates in the west (traffic "
              "lost) and east (traffic gained); downtown is quiet.\n");
  return 0;
}

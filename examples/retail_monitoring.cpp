// Retail snapshot monitoring (the paper's motivating example): a sales
// analyst watches weekly snapshots and wants to deep-dive only when the
// data characteristics actually changed. The cheap delta* upper bound
// (Theorem 4.2) acts as a first-stage filter — if even the OVERESTIMATE is
// below the alert threshold, the week is skipped without scanning data;
// otherwise the exact deviation and its bootstrap significance are
// computed.

#include <cstdio>

#include "focus/focus.h"

namespace {

focus::data::TransactionDb MakeWeek(int week, bool drifted) {
  focus::datagen::QuestParams params;
  params.num_transactions = 3000;
  params.num_items = 150;
  params.num_patterns = 60;
  params.avg_pattern_length = drifted ? 6 : 4;  // drift = longer baskets
  params.avg_transaction_length = 10;
  // Weeks of the same regime share a pattern table (same generating
  // process); each week is an independent sample of it.
  params.pattern_seed = drifted ? 43 : 42;
  params.seed = 100 + static_cast<uint64_t>(week);
  return focus::datagen::GenerateQuest(params);
}

}  // namespace

int main() {
  using namespace focus;

  lits::AprioriOptions apriori;
  apriori.min_support = 0.02;
  core::DeviationFunction fn;

  const data::TransactionDb baseline = MakeWeek(0, false);
  const lits::LitsModel baseline_model = lits::Apriori(baseline, apriori);

  // Calibrate the alert threshold on a known-quiet reference week: even
  // between two samples of the SAME process, mining noise produces a
  // nonzero delta*. Alert only when the bound clearly exceeds that level.
  const data::TransactionDb reference = MakeWeek(99, false);
  const double calibration = core::LitsUpperBound(
      baseline_model, lits::Apriori(reference, apriori),
      core::AggregateKind::kSum);
  const double alert_threshold = 2.0 * calibration;
  std::printf("calibrated delta* alert threshold: %.3f\n\n", alert_threshold);

  std::printf("week | delta* (fast) | action | delta | sig%%\n");
  std::printf("-----+---------------+--------+-------+-----\n");
  for (int week = 1; week <= 8; ++week) {
    const bool drifted = week >= 5;  // regime change at week 5
    const data::TransactionDb snapshot = MakeWeek(week, drifted);
    const lits::LitsModel model = lits::Apriori(snapshot, apriori);

    const double fast_bound =
        core::LitsUpperBound(baseline_model, model, core::AggregateKind::kSum);
    if (fast_bound < alert_threshold) {
      // Even the overestimate is small: safe to skip (Theorem 4.2(1)).
      std::printf("%4d | %13.3f | skip   |   -   |  -\n", week, fast_bound);
      continue;
    }
    const double deviation =
        core::LitsDeviation(baseline_model, baseline, model, snapshot, fn);
    core::SignificanceOptions sig_options;
    sig_options.num_replicates = 9;
    sig_options.seed = static_cast<uint64_t>(week);
    const core::SignificanceResult sig = core::LitsDeviationSignificance(
        baseline, snapshot, apriori, fn, sig_options);
    std::printf("%4d | %13.3f | ALERT  | %.3f | %.0f\n", week, fast_bound,
                deviation, sig.significance_percent);
  }
  std::printf("\nweeks 5-8 carry the injected drift; the filter should skip"
              " most quiet weeks and alert on the drifted ones.\n");
  return 0;
}

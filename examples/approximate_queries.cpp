// Approximate query answering from FOCUS models (the paper's §8 future
// work): a dt-model's leaf regions + measures act as a multidimensional
// histogram, so COUNT(*) queries over box predicates can be answered from
// the model without touching the data — and the model itself can be
// persisted and reloaded across sessions.

#include <cstdio>

#include "focus/focus.h"

int main() {
  using namespace focus;
  using Cols = datagen::ClassGenColumns;

  datagen::ClassGenParams params;
  params.num_rows = 30000;
  params.function = datagen::ClassFunction::kF2;
  params.seed = 1;
  const data::Dataset customers = datagen::GenerateClassification(params);

  dt::CartOptions cart;
  cart.max_depth = 8;
  cart.min_leaf_size = 100;
  core::DtModel model(dt::BuildCart(customers, cart), customers);
  std::printf("model: %d leaf regions summarizing %lld rows\n\n",
              model.num_leaves(), static_cast<long long>(model.num_rows()));

  // Persist the tree and reload it (a deployment would do this between
  // analysis sessions).
  const std::string path = "/tmp/focus_example_tree.txt";
  if (io::SaveDecisionTreeToFile(model.tree(), path)) {
    const auto reloaded = io::LoadDecisionTreeFromFile(path);
    std::printf("persisted + reloaded tree: %s\n\n",
                reloaded.has_value() ? "ok" : "FAILED");
  }

  const core::DtSelectivityEstimator estimator(model);

  struct Query {
    const char* sql;
    data::Box box;
  };
  const data::Schema& schema = customers.schema();
  std::vector<Query> queries;
  queries.push_back({"age BETWEEN 30 AND 50",
                     core::NumericPredicate(schema, Cols::kAge, 30.0, 50.0)});
  queries.push_back(
      {"salary < 60000",
       core::LessThanPredicate(schema, Cols::kSalary, 60000.0)});
  queries.push_back(
      {"age < 40 AND salary BETWEEN 50K AND 100K",
       core::LessThanPredicate(schema, Cols::kAge, 40.0)
           .Intersect(core::NumericPredicate(schema, Cols::kSalary, 50000.0,
                                             100000.0))});
  queries.push_back({"elevel IN (0, 1)",
                     core::CategoryPredicate(schema, Cols::kElevel, {0, 1})});

  std::printf("%-45s %10s %10s %8s\n", "query", "estimated", "exact",
              "error");
  for (const Query& query : queries) {
    const double estimated =
        estimator.EstimateCount(query.box, customers.num_rows());
    int64_t exact = 0;
    for (int64_t i = 0; i < customers.num_rows(); ++i) {
      if (query.box.Contains(schema, customers.Row(i))) ++exact;
    }
    std::printf("%-45s %10.0f %10lld %7.2f%%\n", query.sql, estimated,
                static_cast<long long>(exact),
                100.0 * (estimated - static_cast<double>(exact)) /
                    static_cast<double>(customers.num_rows()));
  }

  std::printf("\nlits-model support bounds by anti-monotonicity:\n");
  datagen::QuestParams quest;
  quest.num_transactions = 5000;
  quest.num_items = 100;
  quest.num_patterns = 30;
  quest.seed = 2;
  const data::TransactionDb baskets = datagen::GenerateQuest(quest);
  lits::AprioriOptions apriori;
  apriori.min_support = 0.02;
  const lits::LitsModel basket_model = lits::Apriori(baskets, apriori);
  const lits::Itemset probe({1, 2, 3});
  std::printf("  sup(%s) <= %.4f (model of %lld frequent itemsets)\n",
              probe.ToString().c_str(),
              core::EstimateSupportUpperBound(basket_model, probe),
              static_cast<long long>(basket_model.size()));
  return 0;
}

// Store comparison (the paper's second motivating example): a marketing
// analyst compares customer-transaction datasets from several stores and
// groups stores with similar data characteristics for a shared marketing
// strategy. delta* satisfies the triangle inequality (Theorem 4.2), so the
// pairwise matrix is a genuine (pseudo-)metric and simple threshold
// clustering over it is meaningful.

#include <cstdio>
#include <vector>

#include "focus/focus.h"

namespace {

// Stores 0-2 share profile A; stores 3-4 share profile B.
focus::data::TransactionDb MakeStore(int store) {
  focus::datagen::QuestParams params;
  params.num_transactions = 2500;
  params.num_items = 150;
  params.num_patterns = 60;
  params.avg_pattern_length = store <= 2 ? 4 : 6;
  params.avg_transaction_length = 10;
  // Stores of the same profile share the generating process.
  params.pattern_seed = store <= 2 ? 7 : 8;
  params.seed = 1000 + static_cast<uint64_t>(store);
  return focus::datagen::GenerateQuest(params);
}

}  // namespace

int main() {
  using namespace focus;
  constexpr int kStores = 5;

  lits::AprioriOptions apriori;
  apriori.min_support = 0.02;

  std::vector<data::TransactionDb> stores;
  std::vector<lits::LitsModel> models;
  for (int s = 0; s < kStores; ++s) {
    stores.push_back(MakeStore(s));
    models.push_back(lits::Apriori(stores.back(), apriori));
  }

  // Pairwise delta* matrix (models only — no data rescans).
  std::vector<std::vector<double>> matrix(kStores,
                                          std::vector<double>(kStores, 0.0));
  std::printf("pairwise delta* matrix:\n        ");
  for (int s = 0; s < kStores; ++s) std::printf("store%d  ", s);
  std::printf("\n");
  for (int a = 0; a < kStores; ++a) {
    std::printf("store%d  ", a);
    for (int b = 0; b < kStores; ++b) {
      matrix[a][b] =
          core::LitsUpperBound(models[a], models[b], core::AggregateKind::kSum);
      std::printf("%6.3f  ", matrix[a][b]);
    }
    std::printf("\n");
  }

  // Single-linkage grouping at a distance threshold.
  const double threshold = 0.5 * (matrix[0][kStores - 1] + matrix[0][1]);
  std::vector<int> group(kStores, -1);
  int next_group = 0;
  for (int s = 0; s < kStores; ++s) {
    if (group[s] != -1) continue;
    group[s] = next_group++;
    for (int t = s + 1; t < kStores; ++t) {
      if (group[t] == -1 && matrix[s][t] <= threshold) group[t] = group[s];
    }
  }
  std::printf("\ngrouping at threshold %.3f:\n", threshold);
  for (int g = 0; g < next_group; ++g) {
    std::printf("  strategy %d: stores", g);
    for (int s = 0; s < kStores; ++s) {
      if (group[s] == g) std::printf(" %d", s);
    }
    std::printf("\n");
  }

  // Because delta* is a (pseudo-)metric, the stores can be embedded in a
  // plane for visual comparison (§4.1.1) — FastMap over the matrix.
  const core::FastMapResult embedded = core::FastMapEmbedding(matrix, 2);
  std::printf("\n2-D FastMap embedding (for plotting):\n");
  for (int s = 0; s < kStores; ++s) {
    std::printf("  store%d: (%7.3f, %7.3f)\n", s, embedded.coordinates[s][0],
                embedded.coordinates[s][1]);
  }
  std::printf("\nexpected: stores 0-2 together (profile A), 3-4 together"
              " (profile B), in both the grouping and the embedding.\n");
  return 0;
}

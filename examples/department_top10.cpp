// The paper's §5.1 frequent-itemset exploration example: the shoes and
// clothes departments sell item sets I1 and I2; an analyst compares the
// top-10 most-changed itemsets per department across two outlets, and the
// combined top-20 — the expressions
//
//   sigma_10( rho( P(I1) ∩ (Γ_L1 ⊔ Γ_L2) ) )   per department, and
//   sigma_20( rho( (P(I1) ∪ P(I2)) ∩ (Γ_L1 ⊔ Γ_L2) ) )
//
// realized with the library's region algebra + Rank/Select operators.

#include <cstdio>
#include <vector>

#include "focus/focus.h"

namespace {

// Outlet data: items 0..49 are shoes (I1), 50..99 clothes (I2).
focus::data::TransactionDb Outlet(uint64_t seed, double clothes_patlen) {
  focus::datagen::QuestParams params;
  params.num_transactions = 4000;
  params.num_items = 100;
  params.num_patterns = 40;
  params.avg_pattern_length = clothes_patlen;
  params.avg_transaction_length = 8;
  params.pattern_seed = 11;  // shared catalog structure
  params.seed = seed;
  return focus::datagen::GenerateQuest(params);
}

void PrintRanked(const char* title,
                 const std::vector<focus::core::RankedItemset>& entries) {
  std::printf("%s\n", title);
  for (const auto& entry : entries) {
    std::printf("  %-18s %.3f -> %.3f  (|diff| %.3f)\n",
                entry.itemset.ToString().c_str(), entry.support1,
                entry.support2, entry.deviation);
  }
}

}  // namespace

int main() {
  using namespace focus;

  const data::TransactionDb outlet_a = Outlet(1, 4);
  const data::TransactionDb outlet_b = Outlet(2, 5);  // drifted behaviour

  lits::AprioriOptions apriori;
  apriori.min_support = 0.02;
  const lits::LitsModel m1 = lits::Apriori(outlet_a, apriori);
  const lits::LitsModel m2 = lits::Apriori(outlet_b, apriori);

  // Γ_L1 ⊔ Γ_L2 — the structural union (GCR).
  const core::ItemsetSet gcr =
      core::StructuralUnion(m1.StructuralComponent(), m2.StructuralComponent());
  std::printf("GCR carries %zu itemsets\n\n", gcr.size());

  // Departments as item predicates.
  std::vector<int32_t> shoes;
  std::vector<int32_t> clothes;
  for (int32_t item = 0; item < 50; ++item) shoes.push_back(item);
  for (int32_t item = 50; item < 100; ++item) clothes.push_back(item);
  const core::ItemsetPredicate p_shoes = core::WithinItems(shoes);
  const core::ItemsetPredicate p_clothes = core::WithinItems(clothes);

  // P(I) ∩ (Γ_L1 ⊔ Γ_L2) for each department.
  core::ItemsetSet shoes_regions;
  core::ItemsetSet clothes_regions;
  core::ItemsetSet either_regions;
  for (const lits::Itemset& itemset : gcr) {
    const bool in_shoes = p_shoes(itemset);
    const bool in_clothes = p_clothes(itemset);
    if (in_shoes) shoes_regions.push_back(itemset);
    if (in_clothes) clothes_regions.push_back(itemset);
    if (in_shoes || in_clothes) either_regions.push_back(itemset);
  }

  // Rank by change and select.
  const auto shoes_ranked = core::RankLitsRegions(
      shoes_regions, m1, outlet_a, m2, outlet_b, core::AbsoluteDiff());
  const auto clothes_ranked = core::RankLitsRegions(
      clothes_regions, m1, outlet_a, m2, outlet_b, core::AbsoluteDiff());
  const auto combined_ranked = core::RankLitsRegions(
      either_regions, m1, outlet_a, m2, outlet_b, core::AbsoluteDiff());

  PrintRanked("top-10 changed itemsets, SHOES department:",
              core::SelectTopN(shoes_ranked, 10));
  std::printf("\n");
  PrintRanked("top-10 changed itemsets, CLOTHES department:",
              core::SelectTopN(clothes_ranked, 10));
  std::printf("\n");
  PrintRanked("combined top-20:", core::SelectTopN(combined_ranked, 20));
  return 0;
}

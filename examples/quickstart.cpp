// Quickstart: measure how much two transaction datasets differ.
//
//   1. generate two synthetic market-basket datasets,
//   2. mine frequent-itemset models (the paper's lits-models),
//   3. compute the FOCUS deviation and its fast upper bound,
//   4. check statistical significance,
//   5. list the most-changed itemsets.

#include <cstdio>

#include "focus/focus.h"

int main() {
  using namespace focus;

  // 1. Two datasets: same item universe, drifted pattern structure.
  datagen::QuestParams params;
  params.num_transactions = 4000;
  params.num_items = 200;
  params.num_patterns = 80;
  params.avg_pattern_length = 4;
  params.avg_transaction_length = 10;
  params.seed = 1;
  const data::TransactionDb last_week = datagen::GenerateQuest(params);
  params.avg_pattern_length = 6;  // customer behaviour drifted
  params.seed = 2;
  const data::TransactionDb this_week = datagen::GenerateQuest(params);

  // 2. Induce the models.
  lits::AprioriOptions apriori;
  apriori.min_support = 0.02;
  const lits::LitsModel m1 = lits::Apriori(last_week, apriori);
  const lits::LitsModel m2 = lits::Apriori(this_week, apriori);
  std::printf("model sizes: last week %lld itemsets, this week %lld itemsets\n",
              static_cast<long long>(m1.size()),
              static_cast<long long>(m2.size()));

  // 3. Deviation (delta) and its data-scan-free upper bound (delta*).
  core::DeviationFunction fn;  // f_a with g_sum
  const double deviation = core::LitsDeviation(m1, last_week, m2, this_week, fn);
  const double bound = core::LitsUpperBound(m1, m2, core::AggregateKind::kSum);
  std::printf("deviation delta = %.4f, upper bound delta* = %.4f\n", deviation,
              bound);

  // 4. Is the change statistically significant?
  core::SignificanceOptions sig_options;
  sig_options.num_replicates = 19;
  const core::SignificanceResult sig = core::LitsDeviationSignificance(
      last_week, this_week, apriori, fn, sig_options);
  std::printf("sig(delta) = %.0f%% (%s)\n", sig.significance_percent,
              sig.significance_percent >= 95.0 ? "significant change"
                                               : "within normal variation");

  // 5. Which itemsets changed the most?
  const auto ranked = core::RankLitsRegions(core::LitsGcr(m1, m2), m1,
                                            last_week, m2, this_week,
                                            core::AbsoluteDiff());
  std::printf("top 5 changed itemsets:\n");
  for (const auto& entry : core::SelectTopN(ranked, 5)) {
    std::printf("  %-16s support %.3f -> %.3f (|diff| %.3f)\n",
                entry.itemset.ToString().c_str(), entry.support1,
                entry.support2, entry.deviation);
  }
  return 0;
}

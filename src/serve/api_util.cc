#include "serve/api_util.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "serve/metrics.h"

namespace focus::serve {

std::string HashHex(uint64_t hash) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, hash);
  return buf;
}

bool ParseHashHex(const std::string& text, uint64_t* out) {
  if (text.empty() || text.size() > 16) return false;
  uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return false;
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *out = value;
  return true;
}

bool ParseDeviationFunction(const std::map<std::string, std::string>& params,
                            core::DeviationFunction* fn, std::string* f_name,
                            std::string* g_name) {
  *f_name = "abs";
  *g_name = "sum";
  if (const auto it = params.find("f"); it != params.end()) *f_name = it->second;
  if (const auto it = params.find("g"); it != params.end()) *g_name = it->second;
  if (*f_name == "abs") {
    fn->f = core::AbsoluteDiff();
  } else if (*f_name == "scaled") {
    fn->f = core::ScaledDiff();
  } else {
    return false;
  }
  if (*g_name == "sum") {
    fn->g = core::AggregateKind::kSum;
  } else if (*g_name == "max") {
    fn->g = core::AggregateKind::kMax;
  } else {
    return false;
  }
  return true;
}

std::string StatusJson(const StreamStatus& status) {
  std::string out = "\"processed\":" + std::to_string(status.processed);
  out += ",\"has_snapshot\":";
  out += status.has_snapshot ? "true" : "false";
  if (status.has_snapshot) {
    out += ",\"seq\":" + std::to_string(status.sequence);
    out += ",\"n\":" + std::to_string(status.num_transactions);
    out += ",\"delta_star\":" + JsonNumber(status.delta_star);
    out += ",\"screened_out\":";
    out += status.screened_out ? "true" : "false";
    if (!status.screened_out) {
      out += ",\"delta\":" + JsonNumber(status.deviation);
      out += ",\"sig_pct\":" + JsonNumber(status.significance_percent);
    }
    out += ",\"alert\":";
    out += status.alert ? "true" : "false";
    out += ",\"cusum\":" + JsonNumber(status.cusum);
    out += ",\"change_point\":";
    out += status.change_point ? "true" : "false";
    out += ",\"baseline_ready\":";
    out += status.baseline_ready ? "true" : "false";
    if (status.baseline_ready) {
      out += ",\"baseline_mean\":" + JsonNumber(status.baseline_mean);
      out += ",\"baseline_sd\":" + JsonNumber(status.baseline_sd);
    }
  }
  return out;
}

SummaryResult AggregateSummary(std::vector<SummaryEntry>* entries,
                               core::AggregateKind g) {
  std::sort(entries->begin(), entries->end(),
            [](const SummaryEntry& a, const SummaryEntry& b) {
              return a.stream < b.stream;
            });
  SummaryResult result;
  result.num_streams = static_cast<int64_t>(entries->size());
  std::vector<double> values;
  values.reserve(entries->size());
  for (const SummaryEntry& entry : *entries) {
    if (entry.has_deviation) values.push_back(entry.deviation);
  }
  result.num_values = static_cast<int64_t>(values.size());
  if (!values.empty()) {
    result.has_aggregate = true;
    result.aggregate = core::AggregateValues(g, values);
  }
  return result;
}

std::string SummaryJson(const std::string& f_name, const std::string& g_name,
                        const std::vector<SummaryEntry>& sorted_entries,
                        const SummaryResult& result) {
  std::string out = "{\"f\":\"" + f_name + "\",\"g\":\"" + g_name + "\"";
  out += ",\"num_streams\":" + std::to_string(result.num_streams);
  out += ",\"num_values\":" + std::to_string(result.num_values);
  if (result.has_aggregate) {
    out += ",\"aggregate\":" + JsonNumber(result.aggregate);
  }
  out += ",\"per_stream\":[";
  bool first = true;
  for (const SummaryEntry& entry : sorted_entries) {
    if (!first) out += ",";
    first = false;
    out += "{\"stream\":\"" + JsonEscape(entry.stream) + "\"";
    if (entry.has_deviation) {
      out += ",\"deviation\":" + JsonNumber(entry.deviation);
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

}  // namespace focus::serve

#include "serve/model_cache.h"

#include <span>

#include "common/check.h"
#include "common/mutex.h"

namespace focus::serve {
namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

inline uint64_t FnvMix(uint64_t hash, uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (byte * 8)) & 0xff;
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

uint64_t TransactionDbContentHash(const data::TransactionDb& db) {
  return TxnSourceContentHash(data::TxnSourceRef(db));
}

uint64_t TxnSourceContentHash(data::TxnSourceRef source) {
  uint64_t hash = kFnvOffset;
  hash = FnvMix(hash, static_cast<uint64_t>(source.num_items()));
  hash = FnvMix(hash, static_cast<uint64_t>(source.num_transactions()));
  source.ForEachTransaction(
      [&hash](int64_t /*tid*/, std::span<const int32_t> txn) {
        hash = FnvMix(hash, static_cast<uint64_t>(txn.size()));
        for (int32_t item : txn) {
          hash =
              FnvMix(hash, static_cast<uint64_t>(static_cast<uint32_t>(item)));
        }
      });
  return hash;
}

ModelCache::ModelCache(size_t capacity, const lits::AprioriOptions& options,
                       MetricsRegistry* metrics, data::IndexBackend backend)
    : capacity_(capacity),
      options_(options),
      backend_(backend),
      hits_counter_(metrics != nullptr ? &metrics->GetCounter("cache_hits")
                                       : nullptr),
      misses_counter_(metrics != nullptr
                          ? &metrics->GetCounter("cache_misses")
                          : nullptr),
      evictions_counter_(metrics != nullptr
                             ? &metrics->GetCounter("cache_evictions")
                             : nullptr) {
  FOCUS_CHECK_GE(capacity, 1u);
}

void ModelCache::CountHitLocked() {
  ++stats_.hits;
  if (hits_counter_ != nullptr) hits_counter_->Increment();
}

void ModelCache::CountMissLocked() {
  ++stats_.misses;
  if (misses_counter_ != nullptr) misses_counter_->Increment();
}

std::shared_ptr<const lits::LitsModel> ModelCache::Lookup(
    uint64_t content_hash) {
  const auto mined = LookupMined(content_hash);
  return mined.has_value() ? mined->model : nullptr;
}

std::optional<MinedSnapshot> ModelCache::LookupMined(uint64_t content_hash) {
  common::MutexLock lock(&mutex_);
  const auto it = entries_.find(content_hash);
  if (it == entries_.end()) {
    CountMissLocked();
    return std::nullopt;
  }
  CountHitLocked();
  lru_.splice(lru_.begin(), lru_, it->second.position);
  return it->second.mined;
}

MinedSnapshot ModelCache::GetOrMineIndexed(const data::TransactionDb& db,
                                           bool* cache_hit) {
  return GetOrMineIndexed(data::TxnSourceRef(db), cache_hit);
}

MinedSnapshot ModelCache::GetOrMineIndexed(data::TxnSourceRef source,
                                           bool* cache_hit) {
  const uint64_t key = TxnSourceContentHash(source);
  {
    common::MutexLock lock(&mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      CountHitLocked();
      lru_.splice(lru_.begin(), lru_, it->second.position);
      if (cache_hit != nullptr) *cache_hit = true;
      return it->second.mined;
    }
    CountMissLocked();
  }
  if (cache_hit != nullptr) *cache_hit = false;
  // Build outside the lock so concurrent misses on different snapshots
  // proceed in parallel: ONE scan materializes the configured vertical
  // index, and Apriori's counting passes then run against it.
  MinedSnapshot mined;
  if (backend_ == data::IndexBackend::kRoaring) {
    auto roaring = std::make_shared<const data::RoaringIndex>(source);
    mined.model = std::make_shared<const lits::LitsModel>(
        lits::Apriori(source, options_, roaring.get()));
    mined.roaring = std::move(roaring);
  } else {
    auto index = std::make_shared<const data::VerticalIndex>(source);
    mined.model = std::make_shared<const lits::LitsModel>(
        lits::Apriori(source, options_, index.get()));
    mined.index = std::move(index);
  }
  common::MutexLock lock(&mutex_);
  InsertLocked(key, mined);
  return mined;
}

std::shared_ptr<const lits::LitsModel> ModelCache::GetOrMine(
    const data::TransactionDb& db, bool* cache_hit) {
  return GetOrMineIndexed(db, cache_hit).model;
}

void ModelCache::InsertLocked(uint64_t key, MinedSnapshot mined) {
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // A concurrent miss already inserted this key; keep the newer entry
    // and refresh recency.
    it->second.mined = std::move(mined);
    lru_.splice(lru_.begin(), lru_, it->second.position);
    return;
  }
  if (entries_.size() >= capacity_) {
    const uint64_t victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
    if (evictions_counter_ != nullptr) evictions_counter_->Increment();
  }
  lru_.push_front(key);
  entries_[key] = Entry{std::move(mined), lru_.begin()};
}

ModelCacheStats ModelCache::stats() const {
  common::MutexLock lock(&mutex_);
  return stats_;
}

size_t ModelCache::size() const {
  common::MutexLock lock(&mutex_);
  return entries_.size();
}

}  // namespace focus::serve

#include "serve/http_api.h"

#include <sstream>
#include <utility>

#include "core/functions.h"
#include "core/lits_deviation.h"
#include "io/data_io.h"
#include "serve/api_util.h"
#include "serve/model_cache.h"

namespace focus::serve {

HttpApi::HttpApi(const HttpApiOptions& options, MonitorService* service,
                 const data::TransactionDb* reference,
                 MetricsRegistry* metrics)
    : options_(options),
      service_(service),
      reference_(reference),
      metrics_(metrics) {}

bool HttpApi::ValidStreamName(const std::string& name) const {
  if (name.empty() || name.size() > options_.max_stream_name) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

net::Router HttpApi::BuildRouter() {
  net::Router router;
  router.Handle("POST", "/v1/streams/{name}/snapshots",
                [this](const net::HttpRequest& request,
                       const net::PathParams& params) {
                  return HandleIngest(request, params);
                });
  router.Handle("GET", "/v1/streams/{name}/deviation",
                [this](const net::HttpRequest& request,
                       const net::PathParams& params) {
                  return HandleDeviation(request, params);
                });
  router.Handle("POST", "/v1/compare",
                [this](const net::HttpRequest& request,
                       const net::PathParams&) {
                  return HandleCompare(request);
                });
  router.Handle("GET", "/v1/deviation/summary",
                [this](const net::HttpRequest& request,
                       const net::PathParams&) {
                  return HandleSummary(request);
                });
  router.Handle("GET", "/metrics",
                [this](const net::HttpRequest& request,
                       const net::PathParams&) {
                  return HandleMetrics(request);
                });
  router.Handle("GET", "/healthz",
                [this](const net::HttpRequest&, const net::PathParams&) {
                  return HandleHealth();
                });
  return router;
}

net::HttpResponse HttpApi::HandleIngest(const net::HttpRequest& request,
                                        const net::PathParams& params) {
  const std::string& name = params.at("name");
  if (!ValidStreamName(name)) {
    return net::ErrorResponse(400, "invalid stream name");
  }
  if (request.body.empty()) {
    return net::ErrorResponse(400, "empty snapshot body");
  }
  std::istringstream in(request.body);
  std::string load_error;
  const auto db = io::LoadTransactionDb(in, &load_error);
  if (!db.has_value()) {
    if (metrics_ != nullptr) {
      metrics_->GetCounter("ingest_rejected").Increment();
    }
    return net::ErrorResponse(400, "malformed snapshot: " + load_error);
  }

  const uint64_t content_hash = TransactionDbContentHash(*db);

  // Registration + sequence assignment + submission are serialized per
  // api so lazily added streams register exactly once and sequences stay
  // dense (a shed snapshot does not burn a sequence number).
  common::MutexLock lock(&streams_mutex_);
  if (!service_->HasStream(name)) {
    service_->AddStream(name, *reference_);
  }
  Snapshot snapshot;
  snapshot.stream = name;
  snapshot.sequence = next_sequence_[name];
  snapshot.source = "http";
  snapshot.db = std::move(*db);
  const SubmitResult result = service_->TrySubmitFor(
      std::move(snapshot), std::chrono::milliseconds(options_.ingest_wait_ms));
  switch (result) {
    case SubmitResult::kOverloaded: {
      net::HttpResponse response = net::ErrorResponse(
          429, "ingest queue is full; retry later");
      response.headers.emplace_back("retry-after",
                                    std::to_string(options_.retry_after_s));
      return response;
    }
    case SubmitResult::kShutdown: {
      net::HttpResponse response =
          net::ErrorResponse(503, "service is shutting down");
      response.headers.emplace_back("retry-after",
                                    std::to_string(options_.retry_after_s));
      return response;
    }
    case SubmitResult::kAccepted:
      break;
  }
  const int64_t sequence = next_sequence_[name]++;

  net::HttpResponse response;
  response.status = 202;
  response.body = "{\"stream\":\"" + JsonEscape(name) + "\"";
  response.body += ",\"sequence\":" + std::to_string(sequence);
  response.body += ",\"content_hash\":\"" + HashHex(content_hash) + "\"}\n";
  return response;
}

net::HttpResponse HttpApi::HandleDeviation(const net::HttpRequest& request,
                                           const net::PathParams& params) {
  core::DeviationFunction fn;
  std::string f_name, g_name;
  if (!ParseDeviationFunction(request.query, &fn, &f_name, &g_name)) {
    return net::ErrorResponse(400, "unknown deviation function; use "
                                   "f=abs|scaled and g=sum|max");
  }
  const auto result = service_->QueryDeviation(params.at("name"), fn);
  if (!result.has_value()) {
    return net::ErrorResponse(404, "unknown stream");
  }
  net::HttpResponse response;
  response.body = "{\"stream\":\"" + JsonEscape(params.at("name")) + "\"";
  response.body += ",\"f\":\"" + f_name + "\",\"g\":\"" + g_name + "\",";
  response.body += StatusJson(result->status);
  if (result->has_deviation) {
    response.body += ",\"deviation\":" + JsonNumber(result->deviation);
  }
  response.body += "}\n";
  return response;
}

net::HttpResponse HttpApi::HandleCompare(const net::HttpRequest& request) {
  // Parameters come from the query string and/or a form-encoded body
  // (body entries win).
  std::map<std::string, std::string> params = request.query;
  if (!request.body.empty()) {
    for (auto& [key, value] : net::ParseQueryString(request.body)) {
      params[key] = value;
    }
  }
  core::DeviationFunction fn;
  std::string f_name, g_name;
  if (!ParseDeviationFunction(params, &fn, &f_name, &g_name)) {
    return net::ErrorResponse(400, "unknown deviation function; use "
                                   "f=abs|scaled and g=sum|max");
  }
  uint64_t left_hash = 0, right_hash = 0;
  const auto left_it = params.find("left");
  const auto right_it = params.find("right");
  if (left_it == params.end() || right_it == params.end() ||
      !ParseHashHex(left_it->second, &left_hash) ||
      !ParseHashHex(right_it->second, &right_hash)) {
    return net::ErrorResponse(
        400, "compare needs left=<hex hash> and right=<hex hash> (the "
             "content_hash values returned by snapshot ingest)");
  }
  ModelCache& cache = service_->model_cache();
  const auto left = cache.LookupMined(left_hash);
  const auto right = cache.LookupMined(right_hash);
  if (!left.has_value() || !right.has_value()) {
    std::string missing = !left.has_value() ? left_it->second : "";
    if (!right.has_value()) {
      if (!missing.empty()) missing += ", ";
      missing += right_it->second;
    }
    return net::ErrorResponse(
        404, "snapshot hash not in the model cache (evicted, still queued, "
             "or never ingested): " + missing);
  }
  // Both snapshots are cache-resident: the deviation extends both models
  // over TID bitmaps — no raw-data scan.
  const double deviation = core::LitsDeviation(
      *left->model, left->index_ref(), *right->model, right->index_ref(), fn);
  if (metrics_ != nullptr) metrics_->GetCounter("compares").Increment();

  net::HttpResponse response;
  response.body = "{\"left\":\"" + left_it->second + "\"";
  response.body += ",\"right\":\"" + right_it->second + "\"";
  response.body += ",\"f\":\"" + f_name + "\",\"g\":\"" + g_name + "\"";
  response.body += ",\"deviation\":" + JsonNumber(deviation) + "}\n";
  return response;
}

net::HttpResponse HttpApi::HandleSummary(const net::HttpRequest& request) {
  core::DeviationFunction fn;
  std::string f_name, g_name;
  if (!ParseDeviationFunction(request.query, &fn, &f_name, &g_name)) {
    return net::ErrorResponse(400, "unknown deviation function; use "
                                   "f=abs|scaled and g=sum|max");
  }
  // Per-stream deviations folded in canonical (sorted-name) order — the
  // same AggregateSummary the sharded front end merges with, so the two
  // deployments answer bit-identically (the shard law checker pins this).
  std::vector<SummaryEntry> entries;
  for (const std::string& name : service_->ListStreams()) {
    const auto result = service_->QueryDeviation(name, fn);
    if (!result.has_value()) continue;  // raced a concurrent registration
    SummaryEntry entry;
    entry.stream = name;
    entry.has_deviation = result->has_deviation;
    entry.deviation = result->deviation;
    entries.push_back(std::move(entry));
  }
  const SummaryResult result = AggregateSummary(&entries, fn.g);

  net::HttpResponse response;
  response.body = SummaryJson(f_name, g_name, entries, result);
  return response;
}

net::HttpResponse HttpApi::HandleMetrics(const net::HttpRequest& request) {
  if (metrics_ == nullptr) {
    return net::ErrorResponse(404, "metrics are disabled");
  }
  if (server_ != nullptr) {
    const net::HttpServerStats stats = server_->stats();
    metrics_->GetGauge("http_open_connections")
        .Set(static_cast<double>(stats.open_connections));
    metrics_->GetCounter("http_requests")
        .Increment(stats.requests_handled -
                   metrics_->GetCounter("http_requests").Value());
    metrics_->GetCounter("http_parse_errors")
        .Increment(stats.parse_errors -
                   metrics_->GetCounter("http_parse_errors").Value());
    metrics_->GetCounter("http_connections_refused")
        .Increment(stats.connections_refused -
                   metrics_->GetCounter("http_connections_refused").Value());
  }
  net::HttpResponse response;
  const auto format = request.query.find("format");
  if (format != request.query.end() && format->second == "json") {
    response.body = metrics_->ToJson() + "\n";
    return response;
  }
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = metrics_->ToPrometheusText();
  return response;
}

net::HttpResponse HttpApi::HandleHealth() {
  net::HttpResponse response;
  response.body = draining_.load() ? "{\"status\":\"draining\"}\n"
                                   : "{\"status\":\"ok\"}\n";
  return response;
}

}  // namespace focus::serve

#include "serve/snapshot_queue.h"

#include "common/check.h"
#include "common/mutex.h"

namespace focus::serve {

using common::MutexLock;

SnapshotQueue::SnapshotQueue(size_t capacity) : capacity_(capacity) {
  FOCUS_CHECK_GE(capacity, 1u);
}

// The push/pop paths unlock BEFORE notifying (the woken thread then finds
// the mutex free), so they manage the lock explicitly instead of through
// MutexLock; every return path below releases exactly once.

bool SnapshotQueue::Push(Snapshot snapshot) {
  mutex_.Lock();
  not_full_.Wait(mutex_, [this]() REQUIRES(mutex_) { return HasRoomLocked(); });
  if (closed_) {
    mutex_.Unlock();
    return false;
  }
  items_.push_back(std::move(snapshot));
  mutex_.Unlock();
  not_empty_.NotifyOne();
  return true;
}

bool SnapshotQueue::TryPush(Snapshot snapshot) {
  {
    MutexLock lock(&mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(snapshot));
  }
  not_empty_.NotifyOne();
  return true;
}

bool SnapshotQueue::TryPushFor(Snapshot snapshot,
                               std::chrono::milliseconds timeout) {
  mutex_.Lock();
  if (!not_full_.WaitFor(mutex_, timeout,
                         [this]() REQUIRES(mutex_) { return HasRoomLocked(); })) {
    mutex_.Unlock();
    return false;  // still full after the full wait
  }
  if (closed_) {
    mutex_.Unlock();
    return false;
  }
  items_.push_back(std::move(snapshot));
  mutex_.Unlock();
  not_empty_.NotifyOne();
  return true;
}

std::optional<Snapshot> SnapshotQueue::Pop() {
  mutex_.Lock();
  not_empty_.Wait(mutex_, [this]() REQUIRES(mutex_) {
    return closed_ || !items_.empty();
  });
  if (items_.empty()) {
    mutex_.Unlock();
    return std::nullopt;  // closed and drained
  }
  Snapshot snapshot = std::move(items_.front());
  items_.pop_front();
  mutex_.Unlock();
  not_full_.NotifyOne();
  return snapshot;
}

void SnapshotQueue::Close() {
  {
    MutexLock lock(&mutex_);
    closed_ = true;
  }
  not_full_.NotifyAll();
  not_empty_.NotifyAll();
}

size_t SnapshotQueue::size() const {
  MutexLock lock(&mutex_);
  return items_.size();
}

bool SnapshotQueue::closed() const {
  MutexLock lock(&mutex_);
  return closed_;
}

}  // namespace focus::serve

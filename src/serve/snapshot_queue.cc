#include "serve/snapshot_queue.h"

#include "common/check.h"

namespace focus::serve {

SnapshotQueue::SnapshotQueue(size_t capacity) : capacity_(capacity) {
  FOCUS_CHECK_GE(capacity, 1u);
}

bool SnapshotQueue::Push(Snapshot snapshot) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_.wait(lock,
                 [this]() { return closed_ || items_.size() < capacity_; });
  if (closed_) return false;
  items_.push_back(std::move(snapshot));
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool SnapshotQueue::TryPush(Snapshot snapshot) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(snapshot));
  }
  not_empty_.notify_one();
  return true;
}

bool SnapshotQueue::TryPushFor(Snapshot snapshot,
                               std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!not_full_.wait_for(lock, timeout, [this]() {
        return closed_ || items_.size() < capacity_;
      })) {
    return false;  // still full after the full wait
  }
  if (closed_) return false;
  items_.push_back(std::move(snapshot));
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

std::optional<Snapshot> SnapshotQueue::Pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [this]() { return closed_ || !items_.empty(); });
  if (items_.empty()) return std::nullopt;  // closed and drained
  Snapshot snapshot = std::move(items_.front());
  items_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return snapshot;
}

void SnapshotQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

size_t SnapshotQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

bool SnapshotQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

}  // namespace focus::serve

#ifndef FOCUS_SERVE_API_UTIL_H_
#define FOCUS_SERVE_API_UTIL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/functions.h"
#include "serve/monitor_service.h"

namespace focus::serve {

// Helpers shared by the single-node HttpApi and the sharded front end
// (src/shard/sharded_api). Keeping one copy is not just hygiene: the shard
// law checker asserts bit-identical answers, which requires both faces to
// parse parameters and fold aggregates through the same code.

// 16-digit lowercase hex of a content hash, and its inverse.
std::string HashHex(uint64_t hash);
bool ParseHashHex(const std::string& text, uint64_t* out);

// The deviation function named by ?f=abs|scaled&g=sum|max (defaults:
// abs, sum). False on an unrecognized name.
bool ParseDeviationFunction(const std::map<std::string, std::string>& params,
                            core::DeviationFunction* fn, std::string* f_name,
                            std::string* g_name);

// The shared JSON fragment for one stream's status (no surrounding
// braces).
std::string StatusJson(const StreamStatus& status);

// One stream's contribution to a cross-stream aggregate.
struct SummaryEntry {
  std::string stream;
  bool has_deviation = false;
  double deviation = 0.0;
};

struct SummaryResult {
  int64_t num_streams = 0;  // entries seen
  int64_t num_values = 0;   // entries contributing a deviation
  bool has_aggregate = false;
  double aggregate = 0.0;
};

// Canonical cross-stream aggregate: sorts `entries` by stream name in
// place and folds the deviations in that order with core::AggregateValues.
// Both the single-node /v1/deviation/summary handler and the sharded
// scatter-gather merge call exactly this function — sorting before the
// fold is what makes the distributed g_sum bit-identical (floating-point
// addition is order-sensitive; max would merge in any order, sum will
// not).
SummaryResult AggregateSummary(std::vector<SummaryEntry>* entries,
                               core::AggregateKind g);

// Renders the /v1/deviation/summary response body from an aggregate and
// its (already sorted) entries.
std::string SummaryJson(const std::string& f_name, const std::string& g_name,
                        const std::vector<SummaryEntry>& sorted_entries,
                        const SummaryResult& result);

}  // namespace focus::serve

#endif  // FOCUS_SERVE_API_UTIL_H_

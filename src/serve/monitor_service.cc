#include "serve/monitor_service.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"
#include "common/timer.h"
#include "core/lits_deviation.h"

namespace focus::serve {

using common::MutexLock;

std::string StreamEvent::ToJson() const {
  std::string out = "{\"type\":\"event\"";
  out += ",\"stream\":\"" + JsonEscape(stream) + "\"";
  out += ",\"seq\":" + std::to_string(sequence);
  if (!source.empty()) out += ",\"source\":\"" + JsonEscape(source) + "\"";
  out += ",\"n\":" + std::to_string(num_transactions);
  out += ",\"delta_star\":" + JsonNumber(report.upper_bound);
  out += ",\"screened_out\":";
  out += report.screened_out ? "true" : "false";
  if (!report.screened_out) {
    out += ",\"delta\":" + JsonNumber(report.deviation);
    out += ",\"sig_pct\":" + JsonNumber(report.significance_percent);
  }
  out += ",\"alert\":";
  out += report.alert ? "true" : "false";
  out += ",\"cusum\":" + JsonNumber(cusum);
  out += ",\"change_point\":";
  out += change_point ? "true" : "false";
  out += ",\"cache_hit\":";
  out += cache_hit ? "true" : "false";
  out += ",\"latency_ms\":" + JsonNumber(latency_ms);
  out += "}";
  return out;
}

MonitorService::MonitorService(const MonitorServiceOptions& options,
                               MetricsRegistry* metrics)
    : options_(options),
      metrics_(metrics),
      model_cache_(options.model_cache_capacity, options.monitor.apriori,
                   metrics, options.index_backend),
      queue_(options.queue_capacity),
      pool_(std::make_unique<common::ThreadPool>(options.num_threads)) {
  dispatcher_ = std::thread([this]() { DispatchLoop(); });
}

MonitorService::~MonitorService() { Shutdown(); }

void MonitorService::AddStream(const std::string& name,
                               const data::TransactionDb& reference) {
  // Mining + calibration run outside the state lock; only registration
  // takes it.
  auto stream = std::make_unique<Stream>(options_.cusum);
  stream->monitor =
      std::make_unique<core::LitsChangeMonitor>(reference, options_.monitor);
  {
    MutexLock lock(&state_mutex_);
    FOCUS_CHECK(streams_.find(name) == streams_.end())
        << "stream '" << name << "' registered twice";
    streams_[name] = std::move(stream);
    if (metrics_ != nullptr) {
      metrics_->GetGauge("streams").Set(static_cast<double>(streams_.size()));
    }
  }
}

bool MonitorService::HasStream(const std::string& name) const {
  MutexLock lock(&state_mutex_);
  return streams_.count(name) > 0;
}

std::vector<std::string> MonitorService::ListStreams() const {
  std::vector<std::string> names;
  {
    MutexLock lock(&state_mutex_);
    names.reserve(streams_.size());
    for (const auto& [name, stream] : streams_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

void MonitorService::SetEventSink(
    std::function<void(const StreamEvent&)> sink) {
  MutexLock lock(&sink_mutex_);
  sink_ = std::move(sink);
}

bool MonitorService::Submit(Snapshot snapshot) {
  {
    // Bound the total number of snapshots in flight (queued + pending +
    // processing) by the queue capacity: this is the backpressure the
    // producer feels.
    MutexLock lock(&state_mutex_);
    idle_cv_.Wait(state_mutex_, [this]() REQUIRES(state_mutex_) {
      return shutdown_ ||
             in_flight_ < static_cast<int64_t>(options_.queue_capacity);
    });
    if (shutdown_) return false;
    ++in_flight_;
  }
  if (!queue_.Push(std::move(snapshot))) {
    MutexLock lock(&state_mutex_);
    --in_flight_;
    idle_cv_.NotifyAll();
    return false;
  }
  if (metrics_ != nullptr) {
    metrics_->GetGauge("queue_depth").Set(static_cast<double>(queue_.size()));
    metrics_->GetCounter("snapshots_submitted").Increment();
  }
  return true;
}

SubmitResult MonitorService::TrySubmitFor(Snapshot snapshot,
                                          std::chrono::milliseconds timeout) {
  {
    MutexLock lock(&state_mutex_);
    const bool ready =
        idle_cv_.WaitFor(state_mutex_, timeout,
                         [this]() REQUIRES(state_mutex_) {
                           return shutdown_ ||
                                  in_flight_ < static_cast<int64_t>(
                                                   options_.queue_capacity);
                         });
    if (shutdown_) return SubmitResult::kShutdown;
    if (!ready) {
      if (metrics_ != nullptr) {
        metrics_->GetCounter("snapshots_shed").Increment();
      }
      return SubmitResult::kOverloaded;
    }
    ++in_flight_;
  }
  // in_flight_ < capacity guarantees queue room: items leave the queue
  // before they stop counting as in flight, so this Push cannot block.
  if (!queue_.Push(std::move(snapshot))) {
    MutexLock lock(&state_mutex_);
    --in_flight_;
    idle_cv_.NotifyAll();
    return SubmitResult::kShutdown;
  }
  if (metrics_ != nullptr) {
    metrics_->GetGauge("queue_depth").Set(static_cast<double>(queue_.size()));
    metrics_->GetCounter("snapshots_submitted").Increment();
  }
  return SubmitResult::kAccepted;
}

std::optional<StreamStatus> MonitorService::GetStreamStatus(
    const std::string& name) const {
  MutexLock lock(&state_mutex_);
  const auto it = streams_.find(name);
  if (it == streams_.end()) return std::nullopt;
  return it->second->status;
}

std::optional<StreamDeviation> MonitorService::QueryDeviation(
    const std::string& name, const core::DeviationFunction& fn) const {
  StreamDeviation result;
  MinedSnapshot last;
  const core::LitsChangeMonitor* monitor = nullptr;
  {
    MutexLock lock(&state_mutex_);
    const auto it = streams_.find(name);
    if (it == streams_.end()) return std::nullopt;
    result.status = it->second->status;
    last = it->second->last_mined;
    monitor = it->second->monitor.get();
  }
  if (!result.status.has_snapshot || last.model == nullptr ||
      !last.has_index()) {
    return result;
  }
  // Recompute under the requested (f,g) from the CACHED model + vertical
  // index of the latest snapshot against the monitor's reference pair —
  // GCR extension via bitmap AND+popcount, no raw-data scan. The monitor
  // itself is immutable after AddStream, so reading it unlocked is safe.
  result.deviation =
      core::LitsDeviation(monitor->reference_model(),
                          monitor->reference_index(), *last.model,
                          last.index_ref(), fn);
  result.has_deviation = true;
  return result;
}

void MonitorService::DispatchLoop() {
  while (auto snapshot = queue_.Pop()) {
    Route(std::move(*snapshot));
  }
}

void MonitorService::Route(Snapshot snapshot) {
  Stream* stream = nullptr;
  {
    MutexLock lock(&state_mutex_);
    const auto it = streams_.find(snapshot.stream);
    if (it == streams_.end()) {
      --in_flight_;
      idle_cv_.NotifyAll();
      if (metrics_ != nullptr) {
        metrics_->GetCounter("snapshots_rejected").Increment();
      }
      return;
    }
    stream = it->second.get();
    stream->pending.push_back(std::move(snapshot));
    if (stream->draining) return;  // the active drain job will pick it up
    stream->draining = true;
  }
  // One drain job per stream at a time: per-stream order is preserved
  // while distinct streams run concurrently on the pool. Fire-and-forget:
  // ThreadPool::Submit's future carries no value, and the drain job's
  // outcome is reported through the event sink, not the return.
  // focus-analyze: allow(unchecked-status)
  pool_->Submit([this, stream]() { DrainStream(stream); });
}

bool MonitorService::TakeNextPendingLocked(Stream* stream, Snapshot* out) {
  if (stream->pending.empty()) {
    stream->draining = false;
    return false;
  }
  *out = std::move(stream->pending.front());
  stream->pending.pop_front();
  return true;
}

void MonitorService::DrainStream(Stream* stream) {
  for (;;) {
    Snapshot snapshot;
    {
      MutexLock lock(&state_mutex_);
      if (!TakeNextPendingLocked(stream, &snapshot)) return;
    }
    const StreamEvent event = Process(stream, std::move(snapshot));
    {
      MutexLock lock(&sink_mutex_);
      if (sink_) sink_(event);
    }
    FinishOne();
  }
}

StreamEvent MonitorService::Process(Stream* stream, Snapshot snapshot) {
  common::Timer timer;
  StreamEvent event;
  event.stream = std::move(snapshot.stream);
  event.sequence = snapshot.sequence;
  event.source = std::move(snapshot.source);
  // Either backend scans through the same ref: the daemon's --ooc path
  // hands over a block store that streams block by block everywhere below.
  const data::TxnSourceRef source = snapshot.source_ref();
  event.num_transactions = source.num_transactions();

  bool cache_hit = false;
  const MinedSnapshot mined = model_cache_.GetOrMineIndexed(source, &cache_hit);
  event.cache_hit = cache_hit;
  // The cached vertical index lets stage 2 (when the screen fires) extend
  // both models via bitmap probes — window re-comparisons never re-scan
  // the snapshot's raw transactions.
  event.report = stream->monitor->InspectWithModel(source, *mined.model,
                                                   mined.index_ref());

  // The CUSUM series runs over delta*: unlike the exact deviation it is
  // computed for every snapshot (screened or not), giving a uniform
  // sequential signal.
  const core::DriftPoint drift = stream->cusum.Observe(event.report.upper_bound);
  event.cusum = drift.cusum;
  event.change_point = drift.change_point;
  event.latency_ms = timer.Millis();

  // Publish the queryable per-stream view (GET …/deviation) under the
  // state lock; the cached model+index pair keeps later (f,g) queries off
  // the raw data. The stream's worker is the only writer, so the copies
  // are coherent.
  {
    MutexLock lock(&state_mutex_);
    PublishStatusLocked(stream, event, mined);
  }

  if (metrics_ != nullptr) {
    metrics_->GetCounter("snapshots_processed").Increment();
    if (event.report.screened_out) {
      metrics_->GetCounter("screened_out").Increment();
    }
    if (event.report.alert) metrics_->GetCounter("alerts").Increment();
    if (event.change_point) metrics_->GetCounter("change_points").Increment();
    metrics_->GetHistogram("inspect_latency_ms").Observe(event.latency_ms);
    metrics_->GetGauge("queue_depth").Set(static_cast<double>(queue_.size()));
  }
  return event;
}

void MonitorService::PublishStatusLocked(Stream* stream,
                                         const StreamEvent& event,
                                         const MinedSnapshot& mined) {
  StreamStatus& status = stream->status;
  ++status.processed;
  status.has_snapshot = true;
  status.sequence = event.sequence;
  status.num_transactions = event.num_transactions;
  status.delta_star = event.report.upper_bound;
  status.screened_out = event.report.screened_out;
  status.deviation = event.report.deviation;
  status.significance_percent = event.report.significance_percent;
  status.alert = event.report.alert;
  status.cusum = event.cusum;
  status.change_point = event.change_point;
  status.baseline_ready = stream->cusum.baseline_ready();
  status.baseline_mean = stream->cusum.baseline_mean();
  status.baseline_sd = stream->cusum.baseline_sd();
  stream->last_mined = mined;
}

void MonitorService::FinishOne() {
  MutexLock lock(&state_mutex_);
  --in_flight_;
  ++processed_;
  idle_cv_.NotifyAll();
}

void MonitorService::Flush() {
  MutexLock lock(&state_mutex_);
  idle_cv_.Wait(state_mutex_,
                [this]() REQUIRES(state_mutex_) { return in_flight_ == 0; });
}

void MonitorService::Shutdown() {
  {
    MutexLock lock(&state_mutex_);
    if (shutdown_) return;
    shutdown_ = true;
    idle_cv_.NotifyAll();  // wake Submit callers blocked on backpressure
  }
  queue_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
  Flush();        // drain jobs still running on the pool
  pool_.reset();  // joins the workers
}

int64_t MonitorService::processed() const {
  MutexLock lock(&state_mutex_);
  return processed_;
}

}  // namespace focus::serve

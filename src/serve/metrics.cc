#include "serve/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "common/check.h"
#include "common/mutex.h"

namespace focus::serve {

using common::MutexLock;

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no inf/nan
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    if (std::strtod(shorter, nullptr) == value) return shorter;
  }
  return buf;
}

std::vector<double> Histogram::DefaultLatencyBucketsMs() {
  // 0.1 ms … ~100 s, ~4 buckets per decade.
  std::vector<double> bounds;
  for (double b = 0.1; b < 1.1e5; b *= 1.78) bounds.push_back(b);
  return bounds;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      bucket_counts_(upper_bounds_.size() + 1, 0) {
  FOCUS_CHECK(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()));
}

void Histogram::Observe(double value) {
  const size_t bucket =
      std::upper_bound(upper_bounds_.begin(), upper_bounds_.end(), value) -
      upper_bounds_.begin();
  MutexLock lock(&mutex_);
  ++bucket_counts_[bucket];
  sum_ += value;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
}

int64_t Histogram::count() const {
  MutexLock lock(&mutex_);
  return count_;
}

double Histogram::sum() const {
  MutexLock lock(&mutex_);
  return sum_;
}

double Histogram::min() const {
  MutexLock lock(&mutex_);
  return min_;
}

double Histogram::max() const {
  MutexLock lock(&mutex_);
  return max_;
}

double Histogram::Quantile(double q) const {
  MutexLock lock(&mutex_);
  return QuantileLocked(q);
}

double Histogram::QuantileLocked(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  int64_t cumulative = 0;
  for (size_t b = 0; b < bucket_counts_.size(); ++b) {
    if (bucket_counts_[b] == 0) continue;
    const int64_t next = cumulative + bucket_counts_[b];
    if (static_cast<double>(next) >= target) {
      // Linear interpolation inside bucket b. The open-ended last bucket
      // and the first bucket fall back to the observed extremes.
      const double lo = b == 0 ? min_ : upper_bounds_[b - 1];
      const double hi = b < upper_bounds_.size() ? upper_bounds_[b] : max_;
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(bucket_counts_[b]);
      return std::clamp(lo + fraction * (hi - lo), min_, max_);
    }
    cumulative = next;
  }
  return max_;
}

std::string Histogram::ToJson() const {
  // One lock for the whole render keeps counts and quantiles coherent.
  MutexLock lock(&mutex_);
  std::string out = "{\"count\":" + std::to_string(count_);
  out += ",\"sum\":" + JsonNumber(sum_);
  out += ",\"min\":" + JsonNumber(min_);
  out += ",\"max\":" + JsonNumber(max_);
  out += ",\"p50\":" + JsonNumber(QuantileLocked(0.50));
  out += ",\"p95\":" + JsonNumber(QuantileLocked(0.95));
  out += ",\"p99\":" + JsonNumber(QuantileLocked(0.99));
  out += "}";
  return out;
}

void Histogram::RenderPrometheus(const std::string& name,
                                 std::string* out) const {
  std::vector<int64_t> buckets;
  int64_t count;
  double sum;
  {
    MutexLock lock(&mutex_);
    buckets = bucket_counts_;
    count = count_;
    sum = sum_;
  }
  *out += "# TYPE " + name + " histogram\n";
  int64_t cumulative = 0;
  for (size_t b = 0; b < upper_bounds_.size(); ++b) {
    cumulative += buckets[b];
    *out += name + "_bucket{le=\"" + JsonNumber(upper_bounds_[b]) + "\"} " +
            std::to_string(cumulative) + "\n";
  }
  *out += name + "_bucket{le=\"+Inf\"} " + std::to_string(count) + "\n";
  *out += name + "_sum " + JsonNumber(sum) + "\n";
  *out += name + "_count " + std::to_string(count) + "\n";
}

std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  return out;
}

void SplitPrometheusLabels(const std::string& name, std::string* family,
                           std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *family = name;
    labels->clear();
    return;
  }
  *family = name.substr(0, brace);
  *labels = name.substr(brace);
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::ToJson() const {
  const int64_t unix_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  MutexLock lock(&mutex_);
  std::string out = "{\"unix_ms\":" + std::to_string(unix_ms);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ',';
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(counter->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + JsonNumber(gauge->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + histogram->ToJson();
  }
  out += "}}";
  return out;
}

void MetricsRegistry::WriteJsonLine(std::ostream& out) const {
  out << ToJson() << '\n';
}

std::string MetricsRegistry::ToPrometheusText(const std::string& prefix) const {
  MutexLock lock(&mutex_);
  std::string out;
  // Labeled series of one family sort adjacently (the registry map is
  // ordered), so emitting # TYPE only when the family changes yields one
  // TYPE line per family as the exposition format requires.
  std::string last_family;
  for (const auto& [name, counter] : counters_) {
    std::string family, labels;
    SplitPrometheusLabels(name, &family, &labels);
    const std::string full = prefix + PrometheusName(family) + "_total";
    if (full != last_family) {
      out += "# TYPE " + full + " counter\n";
      last_family = full;
    }
    out += full + labels + " " + std::to_string(counter->Value()) + "\n";
  }
  last_family.clear();
  for (const auto& [name, gauge] : gauges_) {
    std::string family, labels;
    SplitPrometheusLabels(name, &family, &labels);
    const std::string full = prefix + PrometheusName(family);
    if (full != last_family) {
      out += "# TYPE " + full + " gauge\n";
      last_family = full;
    }
    out += full + labels + " " + JsonNumber(gauge->Value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    histogram->RenderPrometheus(prefix + PrometheusName(name), &out);
  }
  return out;
}

}  // namespace focus::serve

#ifndef FOCUS_SERVE_SNAPSHOT_QUEUE_H_
#define FOCUS_SERVE_SNAPSHOT_QUEUE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "data/block_txn_db.h"
#include "data/transaction_db.h"
#include "data/txn_source.h"

namespace focus::serve {

// One unit of ingest work: a dataset snapshot bound for a monitored
// stream. Exactly one of `db` / `block_db` carries the transactions:
// the daemon's --ooc ingest hands over an out-of-core block store (the
// snapshot is never materialized flat), every other producer fills the
// in-memory db. Consumers scan through source_ref(), which works for
// either, with bit-identical results.
struct Snapshot {
  std::string stream;      // monitored stream name
  int64_t sequence = 0;    // position within the stream (producer-assigned)
  std::string source;      // originating file/path, echoed into events
  data::TransactionDb db;
  std::shared_ptr<const data::BlockTransactionDb> block_db;

  data::TxnSourceRef source_ref() const {
    return block_db != nullptr ? data::TxnSourceRef(block_db.get())
                               : data::TxnSourceRef(db);
  }
};

// Bounded multi-producer single-consumer queue between snapshot producers
// (the daemon's spool scanner, tests) and the service dispatcher.
// Backpressure: Push blocks while the queue is at capacity, so a slow
// service throttles its producers instead of buffering unboundedly.
class SnapshotQueue {
 public:
  explicit SnapshotQueue(size_t capacity);

  // Blocks until there is room (or the queue is closed). Returns false —
  // and drops `snapshot` — only when closed.
  bool Push(Snapshot snapshot) EXCLUDES(mutex_);

  // Non-blocking variant: false when full or closed.
  bool TryPush(Snapshot snapshot) EXCLUDES(mutex_);

  // Bounded-wait variant for latency-sensitive producers (network
  // ingest): waits up to `timeout` for room, then gives up. False — and
  // the snapshot is dropped — when the wait expired or the queue closed;
  // the caller distinguishes the two via closed(). A zero timeout
  // degenerates to TryPush.
  bool TryPushFor(Snapshot snapshot, std::chrono::milliseconds timeout)
      EXCLUDES(mutex_);

  // Blocks until an item is available; nullopt once the queue is closed
  // AND drained (remaining items are still delivered after Close).
  std::optional<Snapshot> Pop() EXCLUDES(mutex_);

  // Wakes every blocked producer/consumer. Push refuses afterwards.
  void Close() EXCLUDES(mutex_);

  size_t size() const EXCLUDES(mutex_);
  size_t capacity() const { return capacity_; }
  bool closed() const EXCLUDES(mutex_);

 private:
  // True when a snapshot may enter the queue right now.
  bool HasRoomLocked() const REQUIRES(mutex_) {
    return closed_ || items_.size() < capacity_;
  }

  const size_t capacity_;
  mutable common::Mutex mutex_;
  common::CondVar not_full_;
  common::CondVar not_empty_;
  std::deque<Snapshot> items_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace focus::serve

#endif  // FOCUS_SERVE_SNAPSHOT_QUEUE_H_

#ifndef FOCUS_SERVE_SNAPSHOT_QUEUE_H_
#define FOCUS_SERVE_SNAPSHOT_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>

#include "data/transaction_db.h"

namespace focus::serve {

// One unit of ingest work: a dataset snapshot bound for a monitored
// stream.
struct Snapshot {
  std::string stream;      // monitored stream name
  int64_t sequence = 0;    // position within the stream (producer-assigned)
  std::string source;      // originating file/path, echoed into events
  data::TransactionDb db;
};

// Bounded multi-producer single-consumer queue between snapshot producers
// (the daemon's spool scanner, tests) and the service dispatcher.
// Backpressure: Push blocks while the queue is at capacity, so a slow
// service throttles its producers instead of buffering unboundedly.
class SnapshotQueue {
 public:
  explicit SnapshotQueue(size_t capacity);

  // Blocks until there is room (or the queue is closed). Returns false —
  // and drops `snapshot` — only when closed.
  bool Push(Snapshot snapshot);

  // Non-blocking variant: false when full or closed.
  bool TryPush(Snapshot snapshot);

  // Bounded-wait variant for latency-sensitive producers (network
  // ingest): waits up to `timeout` for room, then gives up. False — and
  // the snapshot is dropped — when the wait expired or the queue closed;
  // the caller distinguishes the two via closed(). A zero timeout
  // degenerates to TryPush.
  bool TryPushFor(Snapshot snapshot, std::chrono::milliseconds timeout);

  // Blocks until an item is available; nullopt once the queue is closed
  // AND drained (remaining items are still delivered after Close).
  std::optional<Snapshot> Pop();

  // Wakes every blocked producer/consumer. Push refuses afterwards.
  void Close();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  bool closed() const;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Snapshot> items_;
  bool closed_ = false;
};

}  // namespace focus::serve

#endif  // FOCUS_SERVE_SNAPSHOT_QUEUE_H_

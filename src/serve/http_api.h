#ifndef FOCUS_SERVE_HTTP_API_H_
#define FOCUS_SERVE_HTTP_API_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "data/transaction_db.h"
#include "net/http_server.h"
#include "net/router.h"
#include "serve/metrics.h"
#include "serve/monitor_service.h"

namespace focus::serve {

struct HttpApiOptions {
  // How long POST …/snapshots waits for backpressure to clear before
  // answering 429. Keep small: the wait runs on the server's event loop.
  int ingest_wait_ms = 20;
  // Retry-After seconds advertised with 429/503 responses.
  int retry_after_s = 1;
  // Streams are registered lazily on first ingest; names must match
  // [A-Za-z0-9._-]{1,128}.
  size_t max_stream_name = 128;
};

// The network face of the serving layer: binds MonitorService, ModelCache
// and MetricsRegistry to HTTP endpoints (focus_served, the integration
// tests, and bench/net_throughput all boot this same object):
//
//   POST /v1/streams/{name}/snapshots   body: focus-txns-v1 text
//        202 {"stream","sequence","content_hash"} | 400 | 429 | 503
//   GET  /v1/streams/{name}/deviation?f=abs|scaled&g=sum|max
//        200 latest status + recomputed deviation | 404
//   POST /v1/compare?left=HASH&right=HASH&f=…&g=…   (params may also be a
//        form-encoded body) — deviation between two previously ingested
//        snapshots via the model cache; 404 when a hash is unknown.
//   GET  /v1/deviation/summary?f=…&g=…   cross-stream aggregate: every
//        stream's latest deviation folded with g in sorted-name order.
//   GET  /metrics        Prometheus text (?format=json for the registry
//        JSON snapshot)
//   GET  /healthz        {"status":"ok"|"draining"}
//
// Handlers execute on the HTTP event-loop thread; the heavy work (mining,
// screening) stays on the MonitorService pool.
class HttpApi {
 public:
  // `reference` is the calibration dataset for lazily added streams; all
  // pointers must outlive the api (and the server routing into it).
  HttpApi(const HttpApiOptions& options, MonitorService* service,
          const data::TransactionDb* reference, MetricsRegistry* metrics);

  // Builds the route table; hand the result to net::HttpServer.
  net::Router BuildRouter();

  // Optional: lets GET /metrics fold live server stats (open connections,
  // parse errors, …) into the registry at scrape time.
  void AttachServer(const net::HttpServer* server) { server_ = server; }

  // Flips /healthz to "draining" (SIGTERM handling in focus_served).
  void SetDraining(bool draining) { draining_.store(draining); }

 private:
  net::HttpResponse HandleIngest(const net::HttpRequest& request,
                                 const net::PathParams& params)
      EXCLUDES(streams_mutex_);
  net::HttpResponse HandleDeviation(const net::HttpRequest& request,
                                    const net::PathParams& params);
  net::HttpResponse HandleCompare(const net::HttpRequest& request);
  net::HttpResponse HandleSummary(const net::HttpRequest& request);
  net::HttpResponse HandleMetrics(const net::HttpRequest& request);
  net::HttpResponse HandleHealth();

  bool ValidStreamName(const std::string& name) const;

  const HttpApiOptions options_;
  MonitorService* const service_;
  const data::TransactionDb* const reference_;
  MetricsRegistry* const metrics_;
  const net::HttpServer* server_ = nullptr;
  std::atomic<bool> draining_{false};

  // Server-side per-stream sequence numbers (the network protocol does
  // not trust clients to sequence).
  common::Mutex streams_mutex_;
  std::unordered_map<std::string, int64_t> next_sequence_
      GUARDED_BY(streams_mutex_);
};

}  // namespace focus::serve

#endif  // FOCUS_SERVE_HTTP_API_H_

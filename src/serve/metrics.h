#ifndef FOCUS_SERVE_METRICS_H_
#define FOCUS_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace focus::serve {

// Operational telemetry for the monitoring service: monotonically
// increasing counters, last-value gauges, and bucketed latency
// histograms, collected in a registry that exports one JSON object per
// snapshot (JSONL when appended to a log).

class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram; the default buckets cover latencies from 0.1 ms
// to ~100 s on an exponential grid. Quantiles are estimated by linear
// interpolation within the containing bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds = DefaultLatencyBucketsMs());

  void Observe(double value) EXCLUDES(mutex_);

  int64_t count() const EXCLUDES(mutex_);
  double sum() const EXCLUDES(mutex_);
  double min() const EXCLUDES(mutex_);  // 0 when empty
  double max() const EXCLUDES(mutex_);  // 0 when empty
  double Quantile(double q) const EXCLUDES(mutex_);

  // {"count":N,"sum":S,"min":m,"max":M,"p50":…,"p95":…,"p99":…}
  std::string ToJson() const EXCLUDES(mutex_);

  // Prometheus text exposition: `name_bucket{le="…"}` cumulative series
  // plus `name_sum` / `name_count`, appended to `out`.
  void RenderPrometheus(const std::string& name, std::string* out) const
      EXCLUDES(mutex_);

  static std::vector<double> DefaultLatencyBucketsMs();

 private:
  double QuantileLocked(double q) const REQUIRES(mutex_);

  mutable common::Mutex mutex_;
  // Strictly increasing; implicit +inf last. Immutable after construction
  // (read without the lock).
  std::vector<double> upper_bounds_;
  // size upper_bounds_.size() + 1
  std::vector<int64_t> bucket_counts_ GUARDED_BY(mutex_);
  int64_t count_ GUARDED_BY(mutex_) = 0;
  double sum_ GUARDED_BY(mutex_) = 0.0;
  double min_ GUARDED_BY(mutex_) = 0.0;
  double max_ GUARDED_BY(mutex_) = 0.0;
};

// Named metrics with stable addresses: Get* creates on first use and
// always returns the same object, so hot paths can cache the pointer.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name) EXCLUDES(mutex_);
  Gauge& GetGauge(const std::string& name) EXCLUDES(mutex_);
  Histogram& GetHistogram(const std::string& name) EXCLUDES(mutex_);

  // One JSON object capturing the current values of every metric:
  //   {"unix_ms":…,"counters":{…},"gauges":{…},"histograms":{…}}
  std::string ToJson() const EXCLUDES(mutex_);

  // Appends ToJson() and a newline (one JSONL record).
  void WriteJsonLine(std::ostream& out) const;

  // Prometheus text exposition format (version 0.0.4): every counter,
  // gauge, and histogram under `prefix_` + a sanitized metric name, with
  // # TYPE comments — what GET /metrics serves and focus_monitord's
  // --prom textfile contains.
  std::string ToPrometheusText(const std::string& prefix = "focus_") const
      EXCLUDES(mutex_);

 private:
  mutable common::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mutex_);
};

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& text);

// Formats a double the way the exporters do (shortest round-trippable).
std::string JsonNumber(double value);

// Maps a registry metric name onto the Prometheus charset: characters
// outside [a-zA-Z0-9_:] become '_'.
std::string PrometheusName(const std::string& name);

// Splits a registry name into its metric family and label block. Counter
// and gauge names may carry labels inline — `requests{shard="0"}` —
// which the text exposition renders as `prefix_requests{shard="0"}` with
// only the family part sanitized (one # TYPE line per family). Names
// without '{' have an empty label part. Histogram names must stay
// label-free (their exposition appends its own {le=…} block).
void SplitPrometheusLabels(const std::string& name, std::string* family,
                           std::string* labels);

}  // namespace focus::serve

#endif  // FOCUS_SERVE_METRICS_H_

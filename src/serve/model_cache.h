#ifndef FOCUS_SERVE_MODEL_CACHE_H_
#define FOCUS_SERVE_MODEL_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "data/item_index.h"
#include "data/transaction_db.h"
#include "data/txn_source.h"
#include "itemsets/apriori.h"
#include "serve/metrics.h"

namespace focus::serve {

// 64-bit FNV-1a over the full content of a transaction database (item
// universe, transaction boundaries, items). Equal databases hash equally;
// the cache treats a hash match as identity, which is fine for its
// purpose (a collision merely serves a stale model for one entry, with
// probability ~2^-64 per pair).
uint64_t TransactionDbContentHash(const data::TransactionDb& db);

// The same hash computed by streaming either backend block by block: a
// block-backed database hashes equal to its in-memory materialization
// (same mixing sequence), so --ooc and flat ingest share cache entries
// for identical snapshots.
uint64_t TxnSourceContentHash(data::TxnSourceRef source);

struct ModelCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
};

// What one cache miss materializes from a snapshot: its vertical index
// (built in the single scan §3.3.1 budgets) and the model mined THROUGH
// that index. Window re-comparisons — the same snapshot re-entering as
// reference or candidate across many model pairs — then probe the index
// instead of touching raw transactions again. Exactly one of `index` /
// `roaring` is set, per the cache's IndexBackend; counting paths go
// through index_ref(), which works for either.
struct MinedSnapshot {
  std::shared_ptr<const lits::LitsModel> model;
  std::shared_ptr<const data::VerticalIndex> index;
  std::shared_ptr<const data::RoaringIndex> roaring;

  bool has_index() const { return index != nullptr || roaring != nullptr; }
  data::ItemIndexRef index_ref() const {
    return index != nullptr ? data::ItemIndexRef(index.get())
                            : data::ItemIndexRef(roaring.get());
  }
};

// LRU cache of mined lits-models + their vertical indexes keyed by
// snapshot content hash, so a snapshot that re-enters the spool (retries,
// fan-out to several streams, repeated deviations against rotating
// references) skips both the Apriori pass and every later raw-data scan.
// Thread-safe; mining happens OUTSIDE the lock, so two concurrent misses
// on the same key may both mine — the second insert wins and the
// duplicate work is bounded by one mining pass.
class ModelCache {
 public:
  // When `metrics` is non-null (it must outlive the cache), every hit,
  // miss, and eviction also bumps the registry counters `cache_hits` /
  // `cache_misses` / `cache_evictions`, so cache behavior is visible on
  // /metrics and in the monitord JSONL export without polling stats().
  // `backend` picks the vertical index each miss builds: the flat
  // VerticalIndex (fastest probes, |D|-proportional memory) or the
  // compressed RoaringIndex (occurrence-proportional memory). Counts are
  // bit-identical either way.
  ModelCache(size_t capacity, const lits::AprioriOptions& options,
             MetricsRegistry* metrics = nullptr,
             data::IndexBackend backend = data::IndexBackend::kFlat);

  // Returns the model + vertical index of `db` under the cache's mining
  // options, building both on a miss. `cache_hit`, when given, reports
  // whether the build was skipped.
  MinedSnapshot GetOrMineIndexed(const data::TransactionDb& db,
                                 bool* cache_hit = nullptr) EXCLUDES(mutex_);

  // Either-backend variant: a block-backed snapshot streams through both
  // the content hash and (on a miss) the index build + mining passes, so
  // the only full-size allocation a miss makes is the index itself (use
  // the roaring backend to keep that occurrence-proportional). The cached
  // entry is bit-identical to the one an in-memory copy would produce.
  MinedSnapshot GetOrMineIndexed(data::TxnSourceRef source,
                                 bool* cache_hit = nullptr) EXCLUDES(mutex_);

  // Model-only convenience wrapper around GetOrMineIndexed.
  std::shared_ptr<const lits::LitsModel> GetOrMine(
      const data::TransactionDb& db, bool* cache_hit = nullptr)
      EXCLUDES(mutex_);

  // Cached entry for a precomputed hash, or nullptr. Promotes on hit.
  std::shared_ptr<const lits::LitsModel> Lookup(uint64_t content_hash)
      EXCLUDES(mutex_);

  // Full cached entry (model + vertical index) for a precomputed hash —
  // what POST /v1/compare resolves ingested content hashes through so a
  // hit never rescans raw data. Promotes on hit; nullopt on miss (the
  // snapshot was evicted or never mined).
  std::optional<MinedSnapshot> LookupMined(uint64_t content_hash)
      EXCLUDES(mutex_);

  ModelCacheStats stats() const EXCLUDES(mutex_);
  size_t size() const EXCLUDES(mutex_);
  size_t capacity() const { return capacity_; }
  const lits::AprioriOptions& options() const { return options_; }
  data::IndexBackend backend() const { return backend_; }

 private:
  void InsertLocked(uint64_t key, MinedSnapshot mined) REQUIRES(mutex_);
  void CountHitLocked() REQUIRES(mutex_);
  void CountMissLocked() REQUIRES(mutex_);

  const size_t capacity_;
  const lits::AprioriOptions options_;
  const data::IndexBackend backend_;
  // Registry counters (stable addresses) or null; set at construction.
  Counter* const hits_counter_;
  Counter* const misses_counter_;
  Counter* const evictions_counter_;
  mutable common::Mutex mutex_;
  // lru_ front = most recently used.
  std::list<uint64_t> lru_ GUARDED_BY(mutex_);
  struct Entry {
    MinedSnapshot mined;
    std::list<uint64_t>::iterator position;
  };
  std::unordered_map<uint64_t, Entry> entries_ GUARDED_BY(mutex_);
  ModelCacheStats stats_ GUARDED_BY(mutex_);
};

}  // namespace focus::serve

#endif  // FOCUS_SERVE_MODEL_CACHE_H_

#ifndef FOCUS_SERVE_MONITOR_SERVICE_H_
#define FOCUS_SERVE_MONITOR_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/drift_series.h"
#include "core/monitor.h"
#include "serve/metrics.h"
#include "serve/model_cache.h"
#include "serve/snapshot_queue.h"

namespace focus::serve {

struct MonitorServiceOptions {
  // Per-stream two-stage screening (delta* screen, then exact deviation +
  // bootstrap significance) — the paper's monitoring deployment.
  core::MonitorOptions monitor;
  // Sequential change-point detection over each stream's delta* series.
  core::CusumOptions cusum;
  int num_threads = 4;              // worker pool size
  size_t queue_capacity = 64;       // ingest bound; Push blocks beyond it
  size_t model_cache_capacity = 64; // mined-model LRU entries
  // Vertical index each cache miss builds. Block-backed (--ooc) ingest
  // should pick kRoaring so per-snapshot index memory stays proportional
  // to occurrences rather than |D|; results are bit-identical either way.
  data::IndexBackend index_backend = data::IndexBackend::kFlat;
};

// One processed snapshot produces one event.
struct StreamEvent {
  std::string stream;
  int64_t sequence = 0;
  std::string source;
  int64_t num_transactions = 0;
  core::MonitorReport report;  // delta*, screen verdict, deviation, sig%
  double cusum = 0.0;          // accumulated drift statistic (over delta*)
  bool change_point = false;   // CUSUM crossed its decision threshold
  bool cache_hit = false;      // snapshot model came from the LRU cache
  double latency_ms = 0.0;     // inspect wall time

  // One JSONL record, e.g.
  //   {"type":"event","stream":"s","seq":3,…,"alert":true,…}
  std::string ToJson() const;
};

// Outcome of a bounded-latency submission attempt (network ingest).
enum class SubmitResult {
  kAccepted,    // queued; will be processed in stream order
  kOverloaded,  // backpressure persisted past the deadline — retry later
  kShutdown,    // service is stopping; the snapshot was dropped
};

// Point-in-time view of one stream, answering GET /v1/streams/{name}/…
// without touching raw data: the latest processed snapshot's screening
// report plus the sequential CUSUM state.
struct StreamStatus {
  int64_t processed = 0;        // snapshots processed for this stream
  bool has_snapshot = false;    // false until the first one completes
  int64_t sequence = -1;        // of the latest processed snapshot
  int64_t num_transactions = 0;
  double delta_star = 0.0;
  bool screened_out = false;
  double deviation = 0.0;       // exact delta (when not screened)
  double significance_percent = 0.0;
  bool alert = false;
  double cusum = 0.0;
  bool change_point = false;
  bool baseline_ready = false;
  double baseline_mean = 0.0;
  double baseline_sd = 0.0;
};

// StreamStatus plus a deviation recomputed under a caller-chosen (f,g).
struct StreamDeviation {
  StreamStatus status;
  bool has_deviation = false;  // false while status.has_snapshot is false
  double deviation = 0.0;      // delta_(f,g)(reference, latest snapshot)
};

// Long-running monitoring service: N independent snapshot streams served
// concurrently on a shared worker pool.
//
// Ingestion path:  Submit → bounded SnapshotQueue (backpressure) →
// dispatcher thread → per-stream pending deques → pool drain jobs.
// Snapshots of ONE stream are processed strictly in submission order (the
// CUSUM statistic is sequential); distinct streams proceed in parallel.
// Each snapshot is mined at most once via the content-hash model cache,
// screened by the stream's LitsChangeMonitor, and fed to the stream's
// DeviationCusum; the resulting event goes to the (serialized) event sink
// and into the metrics registry.
class MonitorService {
 public:
  // `metrics` may be null (no telemetry); it must outlive the service.
  MonitorService(const MonitorServiceOptions& options,
                 MetricsRegistry* metrics);
  ~MonitorService();  // Shutdown()

  MonitorService(const MonitorService&) = delete;
  MonitorService& operator=(const MonitorService&) = delete;

  // Registers a stream: mines the reference model and calibrates the
  // stage-1 threshold (expensive). Must happen before snapshots of that
  // stream are submitted.
  void AddStream(const std::string& name,
                 const data::TransactionDb& reference)
      EXCLUDES(state_mutex_);
  bool HasStream(const std::string& name) const EXCLUDES(state_mutex_);

  // Names of all registered streams, sorted. The canonical enumeration
  // order for cross-stream aggregates: single-node and sharded summaries
  // both fold per-stream deviations in this order, which is what makes the
  // distributed g_sum bit-identical (FP addition is order-sensitive).
  std::vector<std::string> ListStreams() const EXCLUDES(state_mutex_);

  // Invoked once per processed snapshot; calls are serialized. Set before
  // the first Submit.
  void SetEventSink(std::function<void(const StreamEvent&)> sink)
      EXCLUDES(sink_mutex_);

  // Enqueues a snapshot; blocks while the ingest queue is full. Returns
  // false (dropping the snapshot) after Shutdown. Snapshots for streams
  // that were never added are counted as rejected and dropped.
  bool Submit(Snapshot snapshot) EXCLUDES(state_mutex_);

  // Bounded-latency variant: waits at most `timeout` for backpressure to
  // clear instead of blocking indefinitely. kOverloaded tells a network
  // front end to answer 429 and shed the snapshot onto the client.
  SubmitResult TrySubmitFor(Snapshot snapshot,
                            std::chrono::milliseconds timeout)
      EXCLUDES(state_mutex_);

  // Latest per-stream state; nullopt for unknown streams. O(1), no data
  // scan.
  std::optional<StreamStatus> GetStreamStatus(const std::string& name) const
      EXCLUDES(state_mutex_);

  // Status plus the deviation of the latest processed snapshot against
  // the stream's reference under an arbitrary (f,g), computed over the
  // CACHED models and vertical indexes (never the raw transactions).
  // nullopt for unknown streams.
  std::optional<StreamDeviation> QueryDeviation(
      const std::string& name, const core::DeviationFunction& fn) const
      EXCLUDES(state_mutex_);

  // Blocks until every snapshot submitted so far has been processed.
  void Flush() EXCLUDES(state_mutex_);

  // Stops intake, drains in-flight work, joins the workers. Idempotent;
  // also run by the destructor.
  void Shutdown() EXCLUDES(state_mutex_);

  int64_t processed() const EXCLUDES(state_mutex_);
  const ModelCache& model_cache() const { return model_cache_; }
  // Mutable view for front ends that resolve content hashes themselves
  // (POST /v1/compare); lookups promote entries in the LRU order.
  ModelCache& model_cache() { return model_cache_; }

 private:
  struct Stream {
    std::unique_ptr<core::LitsChangeMonitor> monitor;
    core::DeviationCusum cusum;
    // The next four fields are guarded by the owning service's
    // state_mutex_ (a nested struct cannot name the outer instance's
    // mutex in GUARDED_BY); every access happens inside the REQUIRES(
    // state_mutex_) helpers below or under an explicit MutexLock.
    std::deque<Snapshot> pending;
    bool draining = false;         // a drain job owns this stream
    // Published at the end of each Process under state_mutex_, so
    // queries never race the worker that owns the stream.
    StreamStatus status;
    MinedSnapshot last_mined;      // model+index of the latest snapshot

    explicit Stream(const core::CusumOptions& cusum_options)
        : cusum(cusum_options) {}
  };

  void DispatchLoop();
  void Route(Snapshot snapshot) EXCLUDES(state_mutex_);
  void DrainStream(Stream* stream) EXCLUDES(state_mutex_);
  StreamEvent Process(Stream* stream, Snapshot snapshot)
      EXCLUDES(state_mutex_);
  void FinishOne() EXCLUDES(state_mutex_);
  // Pops the next snapshot of `stream` into `out`; false (and clears the
  // stream's draining flag) when none are pending.
  bool TakeNextPendingLocked(Stream* stream, Snapshot* out)
      REQUIRES(state_mutex_);
  // Publishes the queryable per-stream view after one Process.
  void PublishStatusLocked(Stream* stream, const StreamEvent& event,
                           const MinedSnapshot& mined)
      REQUIRES(state_mutex_);

  const MonitorServiceOptions options_;
  MetricsRegistry* const metrics_;  // may be null
  ModelCache model_cache_;
  SnapshotQueue queue_;
  std::unique_ptr<common::ThreadPool> pool_;

  mutable common::Mutex state_mutex_;
  common::CondVar idle_cv_;
  std::unordered_map<std::string, std::unique_ptr<Stream>> streams_
      GUARDED_BY(state_mutex_);
  // submitted but not yet fully processed
  int64_t in_flight_ GUARDED_BY(state_mutex_) = 0;
  int64_t processed_ GUARDED_BY(state_mutex_) = 0;
  bool shutdown_ GUARDED_BY(state_mutex_) = false;

  common::Mutex sink_mutex_;
  std::function<void(const StreamEvent&)> sink_ GUARDED_BY(sink_mutex_);

  std::thread dispatcher_;
};

}  // namespace focus::serve

#endif  // FOCUS_SERVE_MONITOR_SERVICE_H_

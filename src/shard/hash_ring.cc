#include "shard/hash_ring.h"

#include <algorithm>
#include <string>

#include "common/check.h"

namespace focus::shard {

uint64_t RingHash(std::string_view bytes) {
  uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  for (char c : bytes) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  // FNV-1a avalanches poorly on short, similar keys (exactly what stream
  // names and vnode labels are), which skews the ring badly. A murmur3-
  // style finalizer restores dispersion across all 64 bits.
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdull;
  hash ^= hash >> 33;
  hash *= 0xc4ceb9fe1a85ec53ull;
  hash ^= hash >> 33;
  return hash;
}

HashRing::HashRing(int num_shards, int vnodes_per_shard)
    : num_shards_(num_shards) {
  FOCUS_CHECK(num_shards >= 1);
  FOCUS_CHECK(vnodes_per_shard >= 1);
  ring_.reserve(static_cast<size_t>(num_shards) * vnodes_per_shard);
  for (int shard = 0; shard < num_shards; ++shard) {
    for (int vnode = 0; vnode < vnodes_per_shard; ++vnode) {
      const std::string label =
          "shard-" + std::to_string(shard) + "/v-" + std::to_string(vnode);
      ring_.emplace_back(RingHash(label), shard);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

int HashRing::ShardFor(std::string_view stream) const {
  const uint64_t point = RingHash(stream);
  // First vnode at or after the stream's point, wrapping at the top.
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const std::pair<uint64_t, int>& entry, uint64_t value) {
        return entry.first < value;
      });
  return it == ring_.end() ? ring_.front().second : it->second;
}

}  // namespace focus::shard

#include "shard/shard_client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace focus::shard {

ShardClient::ShardClient(std::string unix_path, WireLimits limits)
    : unix_path_(std::move(unix_path)), limits_(limits) {}

bool ShardClient::EnsureConnectedLocked(std::string* error) {
  if (fd_.valid()) return true;
  fd_ = net::ConnectUnix(unix_path_, error);
  return fd_.valid();
}

void ShardClient::Close() {
  common::MutexLock lock(&mutex_);
  fd_.Reset();
}

bool ShardClient::Call(MessageType type, const std::string& payload,
                       Frame* response, std::string* error) {
  common::MutexLock lock(&mutex_);
  const bool reused = fd_.valid();
  bool sent_any = false;
  if (CallLocked(type, payload, response, error, &sent_any)) return true;
  fd_.Reset();  // poisoned connection; next Call re-connects
  // A kept-alive connection the worker idle-closed (its read deadline)
  // fails at the first send with EPIPE. Nothing of this request reached
  // the worker, so one transparent retry on a fresh connection is safe —
  // for every message type, including non-idempotent submits. Failures
  // after bytes went out stay failures: the worker may have acted on them.
  if (!reused || sent_any) return false;
  if (error != nullptr) error->clear();
  sent_any = false;
  if (CallLocked(type, payload, response, error, &sent_any)) return true;
  fd_.Reset();
  return false;
}

bool ShardClient::CallLocked(MessageType type, const std::string& payload,
                             Frame* response, std::string* error,
                             bool* sent_any) {
  if (!EnsureConnectedLocked(error)) return false;

  Frame request;
  request.type = type;
  request.request_id = next_request_id_++;
  request.payload = payload;
  const std::string bytes = EncodeFrame(request);

  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_.get(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      *sent_any = true;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (error != nullptr) {
      *error = "send to " + unix_path_ + ": " + std::strerror(errno);
    }
    return false;
  }

  WireDecoder decoder(limits_);
  char buffer[16384];
  for (;;) {
    const ssize_t n = ::read(fd_.get(), buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) {
        *error = "read from " + unix_path_ + ": " + std::strerror(errno);
      }
      return false;
    }
    if (n == 0) {
      if (error != nullptr) {
        *error = "shard at " + unix_path_ + " closed the connection";
      }
      return false;
    }
    const WireDecoder::Status status =
        decoder.Consume(std::string_view(buffer, n));
    if (status == WireDecoder::Status::kNeedMore) continue;
    if (status == WireDecoder::Status::kError) {
      if (error != nullptr) *error = decoder.error();
      return false;
    }
    const Frame& frame = decoder.frame();
    if (frame.type == MessageType::kError) {
      ErrorBody body;
      if (error != nullptr) {
        *error = body.Decode(frame.payload) ? body.message
                                            : "malformed error frame";
      }
      return false;
    }
    if (frame.request_id != request.request_id) {
      // The protocol is strict request/response per connection, so a
      // mismatched id means the stream is out of sync — bail out rather
      // than guess.
      if (error != nullptr) {
        *error = "response id mismatch from " + unix_path_;
      }
      return false;
    }
    *response = frame;
    return true;
  }
}

}  // namespace focus::shard

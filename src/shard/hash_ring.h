#ifndef FOCUS_SHARD_HASH_RING_H_
#define FOCUS_SHARD_HASH_RING_H_

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace focus::shard {

// Consistent-hash ring for stream -> shard routing. Each shard owns
// `vnodes_per_shard` points on a 64-bit ring (FNV-1a of "shard-i/v-j");
// a stream maps to the shard owning the first point at or after the
// stream name's hash. Routing is a pure function of (name, num_shards,
// vnodes_per_shard): every front-end reactor, the law checker, and a
// restarted daemon all agree on ownership with no coordination.
class HashRing {
 public:
  explicit HashRing(int num_shards, int vnodes_per_shard = 64);

  // Shard index in [0, num_shards) owning `stream`.
  int ShardFor(std::string_view stream) const;

  int num_shards() const { return num_shards_; }

 private:
  int num_shards_;
  // (point, shard), sorted by point.
  std::vector<std::pair<uint64_t, int>> ring_;
};

// FNV-1a, the same construction io uses for content hashes. Exposed for
// tests.
uint64_t RingHash(std::string_view bytes);

}  // namespace focus::shard

#endif  // FOCUS_SHARD_HASH_RING_H_

#ifndef FOCUS_SHARD_SHARD_WORKER_H_
#define FOCUS_SHARD_SHARD_WORKER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "data/transaction_db.h"
#include "serve/metrics.h"
#include "serve/monitor_service.h"
#include "shard/wire.h"
#include "shard/wire_server.h"

namespace focus::shard {

struct ShardWorkerOptions {
  uint32_t shard_index = 0;
  serve::MonitorServiceOptions service;
  // How long kSubmitSnapshot waits for ingest backpressure to clear
  // before answering 429 (mirrors HttpApiOptions::ingest_wait_ms).
  int ingest_wait_ms = 20;
};

// One shard: a full MonitorService + ModelCache owning a subset of the
// streams, exposed through the wire protocol. HandleFrame() is the entire
// behavior — Serve() merely runs it behind a WireServer on a Unix socket,
// which is how forked worker processes host it; the law tests and the
// in-process bench call HandleFrame directly (same code, no sockets).
//
// The worker owns per-stream sequence assignment (it is the single owner
// of each of its streams, so numbers stay dense no matter how many
// front-end reactors forward ingests).
class ShardWorker {
 public:
  // `reference` is the calibration dataset for lazily added streams;
  // `metrics` may be null. Both must outlive the worker.
  ShardWorker(const ShardWorkerOptions& options,
              const data::TransactionDb* reference,
              serve::MetricsRegistry* metrics);

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  // Dispatches one request frame to a response frame. Thread-safe.
  Frame HandleFrame(const Frame& request) EXCLUDES(streams_mutex_);

  // Starts a WireServer for this worker on `server_options.unix_path`.
  bool Serve(const WireServerOptions& server_options,
             std::string* error = nullptr);

  // Graceful drain of the serving socket + the monitor service: stop
  // accepting, finish in-flight frames, flush the ingest queue.
  void BeginDrain();
  bool WaitDrained(int timeout_ms);
  void Stop();

  serve::MonitorService& service() { return service_; }
  const WireServer* server() const { return server_.get(); }

 private:
  Frame HandlePing(const Frame& request);
  Frame HandleSubmit(const Frame& request) EXCLUDES(streams_mutex_);
  Frame HandleDeviationQuery(const Frame& request);
  Frame HandleCompare(const Frame& request);
  Frame HandleModelRegions(const Frame& request);
  Frame HandleExtendRegions(const Frame& request);
  Frame HandleStreamPartials(const Frame& request);

  const ShardWorkerOptions options_;
  const data::TransactionDb* const reference_;
  serve::MetricsRegistry* const metrics_;  // may be null
  serve::MonitorService service_;
  std::unique_ptr<WireServer> server_;
  std::atomic<bool> draining_{false};

  // Per-stream sequence numbers; serialized with lazy registration so a
  // shed snapshot does not burn a number (same contract as the single-node
  // HTTP ingest path).
  common::Mutex streams_mutex_;
  std::unordered_map<std::string, int64_t> next_sequence_
      GUARDED_BY(streams_mutex_);
};

}  // namespace focus::shard

#endif  // FOCUS_SHARD_SHARD_WORKER_H_

#ifndef FOCUS_SHARD_WIRE_H_
#define FOCUS_SHARD_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/functions.h"
#include "itemsets/itemset.h"
#include "serve/monitor_service.h"

namespace focus::shard {

// The shard wire protocol: length-prefixed binary frames between the HTTP
// front end (ShardRouter) and shard worker processes (ShardWorker).
//
//   frame := [u32 payload_len][u8 type][u32 request_id][payload bytes]
//
// payload_len counts only the payload (not the 9-byte header). All
// integers are little-endian fixed width; doubles travel as their IEEE-754
// bit pattern (bit-exact — the scatter-gather merges below depend on it);
// strings and lists are u32-length-prefixed. A frame breaching
// WireLimits::max_payload_bytes is a terminal decode error, mirroring the
// HttpParser contract: never an allocation proportional to untrusted input
// beyond the limit.

// Hard limits on the wire format.
struct WireLimits {
  size_t max_payload_bytes = 16u << 20;  // 16 MiB
};

enum class MessageType : uint8_t {
  kPing = 1,
  kPong = 2,
  kSubmitSnapshot = 3,   // stream ingest -> owning shard
  kSubmitResult = 4,
  kDeviationQuery = 5,   // per-stream deviation -> owning shard
  kDeviationResult = 6,
  kCompare = 7,          // both hashes on one shard: full local answer
  kCompareResult = 8,
  kModelRegions = 9,     // Γ(M) of a cached snapshot, for cross-shard GCR
  kModelRegionsResult = 10,
  kExtendRegions = 11,   // measure extension over caller-chosen regions
  kExtendRegionsResult = 12,
  kStreamPartials = 13,  // per-shard partial aggregates (cross-stream)
  kPartialAggregate = 14,
  kError = 15,
};

// True for the message-type byte values the decoder accepts.
bool ValidMessageType(uint8_t type);

struct Frame {
  MessageType type = MessageType::kError;
  uint32_t request_id = 0;
  std::string payload;
};

// Serializes header + payload; the inverse of WireDecoder.
std::string EncodeFrame(const Frame& frame);

// Incremental frame decoder for one connection, in the style of
// net::HttpParser: feed bytes as they arrive, consume at most one frame
// per Consume/Reset cycle, buffer any surplus for the next cycle. Errors
// (oversized payload, unknown type) are terminal for the connection.
class WireDecoder {
 public:
  enum class Status { kNeedMore, kComplete, kError };

  explicit WireDecoder(const WireLimits& limits = WireLimits());

  // Appends bytes and advances the state machine.
  Status Consume(std::string_view bytes);

  // After kComplete: discards the finished frame and immediately decodes
  // any buffered follow-up. Undefined after kError.
  Status Reset();

  // Valid while the last status was kComplete.
  const Frame& frame() const { return frame_; }

  // Valid while the last status was kError.
  const std::string& error() const { return error_; }

  // True when no bytes of a next frame have been received.
  bool idle() const { return buffer_.empty(); }

  const WireLimits& limits() const { return limits_; }

 private:
  Status Fail(std::string reason);

  WireLimits limits_;
  std::string buffer_;  // unconsumed bytes
  bool errored_ = false;
  Frame frame_;
  std::string error_;
};

// Append-only payload builder. All Put* are bounds-unchecked (the writer
// trusts its caller); the corresponding PayloadReader checks everything.
class PayloadWriter {
 public:
  void PutU8(uint8_t value);
  void PutU16(uint16_t value);
  void PutU32(uint32_t value);
  void PutU64(uint64_t value);
  void PutI64(int64_t value);
  void PutDouble(double value);  // IEEE-754 bits, exact round trip
  void PutString(std::string_view text);
  void PutItemset(const lits::Itemset& itemset);
  void PutRegions(const std::vector<lits::Itemset>& regions);

  const std::string& bytes() const { return bytes_; }
  std::string Take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

// Bounds-checked payload reader over a borrowed buffer. Every Get*
// returns false once the payload is exhausted or malformed; `ok()` stays
// false from the first failure on. List reads bound their allocations by
// the bytes actually present, so a hostile length prefix cannot force a
// large allocation.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view bytes) : bytes_(bytes) {}

  bool GetU8(uint8_t* value);
  bool GetU16(uint16_t* value);
  bool GetU32(uint32_t* value);
  bool GetU64(uint64_t* value);
  bool GetI64(int64_t* value);
  bool GetDouble(double* value);
  bool GetString(std::string* text);
  bool GetItemset(lits::Itemset* itemset);
  bool GetRegions(std::vector<lits::Itemset>* regions);

  bool ok() const { return ok_; }
  // True when the whole payload was consumed without error.
  bool AtEnd() const { return ok_ && offset_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - offset_; }

 private:
  bool Take(size_t n, const char** out);

  std::string_view bytes_;
  size_t offset_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Deviation-function codes. The wire carries (f,g) as one byte each; the
// mapping must stay in lockstep with serve::ParseDeviationFunction's
// names.

inline constexpr uint8_t kDiffAbs = 0;
inline constexpr uint8_t kDiffScaled = 1;
inline constexpr uint8_t kAggSum = 0;
inline constexpr uint8_t kAggMax = 1;

bool DeviationCodesFromNames(const std::string& f_name,
                             const std::string& g_name, uint8_t* f_code,
                             uint8_t* g_code);
bool DeviationFunctionFromCodes(uint8_t f_code, uint8_t g_code,
                                core::DeviationFunction* fn);

// ---------------------------------------------------------------------------
// Message bodies. Each struct encodes to / decodes from a frame payload;
// Decode returns false on any malformed or truncated payload.

struct PongBody {
  uint32_t shard_index = 0;
  int64_t processed = 0;
  uint8_t draining = 0;

  std::string Encode() const;
  bool Decode(std::string_view payload);
};

struct SubmitSnapshotBody {
  std::string stream;
  std::string source;
  std::string snapshot;  // focus-txns-v1 text, parsed shard-side

  std::string Encode() const;
  bool Decode(std::string_view payload);
};

struct SubmitResultBody {
  uint16_t status = 0;  // HTTP-style: 202 | 400 | 429 | 503
  int64_t sequence = -1;
  uint64_t content_hash = 0;
  std::string error;  // non-empty for 4xx/5xx

  std::string Encode() const;
  bool Decode(std::string_view payload);
};

struct DeviationQueryBody {
  std::string stream;
  uint8_t f_code = kDiffAbs;
  uint8_t g_code = kAggSum;

  std::string Encode() const;
  bool Decode(std::string_view payload);
};

struct DeviationResultBody {
  uint8_t found = 0;  // 0: unknown stream on this shard
  serve::StreamStatus status;
  uint8_t has_deviation = 0;
  double deviation = 0.0;

  std::string Encode() const;
  bool Decode(std::string_view payload);
};

// Outcome of a single-shard compare attempt.
enum class CompareOutcome : uint8_t {
  kNeither = 0,
  kLeftOnly = 1,
  kRightOnly = 2,
  kBoth = 3,  // deviation is the full local answer
};

struct CompareBody {
  uint64_t left_hash = 0;
  uint64_t right_hash = 0;
  uint8_t f_code = kDiffAbs;
  uint8_t g_code = kAggSum;

  std::string Encode() const;
  bool Decode(std::string_view payload);
};

struct CompareResultBody {
  CompareOutcome outcome = CompareOutcome::kNeither;
  double deviation = 0.0;  // valid when outcome == kBoth

  std::string Encode() const;
  bool Decode(std::string_view payload);
};

struct ModelRegionsBody {
  uint64_t content_hash = 0;

  std::string Encode() const;
  bool Decode(std::string_view payload);
};

struct ModelRegionsResultBody {
  uint8_t found = 0;
  int64_t num_transactions = 0;
  std::vector<lits::Itemset> regions;  // Γ(M), sorted

  std::string Encode() const;
  bool Decode(std::string_view payload);
};

struct ExtendRegionsBody {
  uint64_t content_hash = 0;
  std::vector<lits::Itemset> regions;

  std::string Encode() const;
  bool Decode(std::string_view payload);
};

struct ExtendRegionsResultBody {
  uint8_t found = 0;
  int64_t num_transactions = 0;
  std::vector<double> supports;  // one per requested region, same order

  std::string Encode() const;
  bool Decode(std::string_view payload);
};

struct StreamPartialsBody {
  uint8_t f_code = kDiffAbs;
  uint8_t g_code = kAggSum;

  std::string Encode() const;
  bool Decode(std::string_view payload);
};

// One shard's contribution to a cross-stream aggregate: the per-stream
// deviations it owns plus its local partial g_sum/g_max over them. g_max
// partials merge exactly (max is associative); g_sum is merged by
// recombining the per-stream terms in canonical (sorted-name) order, since
// floating-point addition is not associative — see docs/SHARDING.md.
struct PartialAggregateBody {
  struct Entry {
    std::string stream;
    uint8_t has_deviation = 0;
    double deviation = 0.0;
  };
  std::vector<Entry> entries;
  double partial_sum = 0.0;  // over entries with has_deviation, shard order
  double partial_max = 0.0;
  uint32_t value_count = 0;  // entries with has_deviation

  std::string Encode() const;
  bool Decode(std::string_view payload);
};

struct ErrorBody {
  std::string message;

  std::string Encode() const;
  bool Decode(std::string_view payload);
};

}  // namespace focus::shard

#endif  // FOCUS_SHARD_WIRE_H_

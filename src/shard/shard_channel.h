#ifndef FOCUS_SHARD_SHARD_CHANNEL_H_
#define FOCUS_SHARD_SHARD_CHANNEL_H_

#include <string>

#include "shard/wire.h"

namespace focus::shard {

// Transport to one shard. Two implementations: ShardClient speaks the
// wire protocol over a Unix socket to a forked worker process, and
// LocalShardChannel calls a ShardWorker in the same process (law tests,
// the in-process bench). Both carry the identical encoded frames, so the
// tests exercise the same codecs the daemon uses.
class ShardChannel {
 public:
  virtual ~ShardChannel() = default;

  // False on transport failure ("shard down"); `error` explains. A kError
  // frame from the worker is surfaced the same way.
  virtual bool Call(MessageType type, const std::string& payload,
                    Frame* response, std::string* error) = 0;
};

}  // namespace focus::shard

#endif  // FOCUS_SHARD_SHARD_CHANNEL_H_

#include "shard/shard_router.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "core/lits_deviation.h"

namespace focus::shard {

bool LocalShardChannel::Call(MessageType type, const std::string& payload,
                             Frame* response, std::string* error) {
  Frame request;
  request.type = type;
  request.request_id = 0;
  request.payload = payload;
  *response = worker_->HandleFrame(request);
  if (response->type == MessageType::kError) {
    ErrorBody body;
    if (error != nullptr) {
      *error = body.Decode(response->payload) ? body.message
                                              : "malformed error frame";
    }
    return false;
  }
  return true;
}

ShardRouter::ShardRouter(std::vector<ShardChannel*> shards,
                         int vnodes_per_shard)
    : shards_(std::move(shards)),
      ring_(static_cast<int>(shards_.size()), vnodes_per_shard) {
  FOCUS_CHECK(!shards_.empty());
}

ShardRouter::Status ShardRouter::Submit(const std::string& stream,
                                        const std::string& source,
                                        const std::string& snapshot_text,
                                        SubmitResultBody* result,
                                        std::string* error) {
  SubmitSnapshotBody body;
  body.stream = stream;
  body.source = source;
  body.snapshot = snapshot_text;
  Frame response;
  if (!shards_[ring_.ShardFor(stream)]->Call(MessageType::kSubmitSnapshot,
                                             body.Encode(), &response,
                                             error)) {
    return Status::kShardDown;
  }
  if (response.type != MessageType::kSubmitResult ||
      !result->Decode(response.payload)) {
    if (error != nullptr) *error = "malformed submit response";
    return Status::kShardDown;
  }
  return Status::kOk;
}

ShardRouter::Status ShardRouter::QueryDeviation(const std::string& stream,
                                                uint8_t f_code,
                                                uint8_t g_code,
                                                DeviationResultBody* result,
                                                std::string* error) {
  core::DeviationFunction fn;
  if (!DeviationFunctionFromCodes(f_code, g_code, &fn)) {
    if (error != nullptr) *error = "unknown deviation function codes";
    return Status::kInvalid;
  }
  DeviationQueryBody body;
  body.stream = stream;
  body.f_code = f_code;
  body.g_code = g_code;
  Frame response;
  if (!shards_[ring_.ShardFor(stream)]->Call(MessageType::kDeviationQuery,
                                             body.Encode(), &response,
                                             error)) {
    return Status::kShardDown;
  }
  if (response.type != MessageType::kDeviationResult ||
      !result->Decode(response.payload)) {
    if (error != nullptr) *error = "malformed deviation response";
    return Status::kShardDown;
  }
  return result->found != 0 ? Status::kOk : Status::kNotFound;
}

ShardRouter::Status ShardRouter::Compare(uint64_t left_hash,
                                         uint64_t right_hash, uint8_t f_code,
                                         uint8_t g_code, double* deviation,
                                         std::vector<uint64_t>* missing,
                                         std::string* error) {
  core::DeviationFunction fn;
  if (!DeviationFunctionFromCodes(f_code, g_code, &fn)) {
    if (error != nullptr) *error = "unknown deviation function codes";
    return Status::kInvalid;
  }
  CompareBody body;
  body.left_hash = left_hash;
  body.right_hash = right_hash;
  body.f_code = f_code;
  body.g_code = g_code;
  const std::string payload = body.Encode();

  // Scatter: a content hash can live on any shard (it is owned by
  // whichever stream ingested it), so ask each in turn. A shard holding
  // both answers with the full local deviation — the same code path as
  // single-node compare — and short-circuits the fan-out.
  int left_shard = -1, right_shard = -1;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Frame response;
    if (!shards_[i]->Call(MessageType::kCompare, payload, &response, error)) {
      return Status::kShardDown;
    }
    CompareResultBody result;
    if (response.type != MessageType::kCompareResult ||
        !result.Decode(response.payload)) {
      if (error != nullptr) *error = "malformed compare response";
      return Status::kShardDown;
    }
    switch (result.outcome) {
      case CompareOutcome::kBoth:
        *deviation = result.deviation;
        return Status::kOk;
      case CompareOutcome::kLeftOnly:
        if (left_shard < 0) left_shard = static_cast<int>(i);
        break;
      case CompareOutcome::kRightOnly:
        if (right_shard < 0) right_shard = static_cast<int>(i);
        break;
      case CompareOutcome::kNeither:
        break;
    }
  }
  if (left_shard >= 0 && right_shard >= 0) {
    return CrossShardCompare(left_shard, left_hash, right_shard, right_hash,
                             f_code, g_code, deviation, error);
  }
  if (missing != nullptr) {
    if (left_shard < 0) missing->push_back(left_hash);
    if (right_shard < 0 && right_hash != left_hash) {
      missing->push_back(right_hash);
    }
  }
  return Status::kNotFound;
}

ShardRouter::Status ShardRouter::CrossShardCompare(
    int left_shard, uint64_t left_hash, int right_shard, uint64_t right_hash,
    uint8_t f_code, uint8_t g_code, double* deviation, std::string* error) {
  // Phase 1: each owner's structural component Γ(M) (sorted) and |D|.
  ModelRegionsResultBody left_model, right_model;
  const auto fetch_regions = [&](int shard, uint64_t hash,
                                 ModelRegionsResultBody* out) {
    ModelRegionsBody body;
    body.content_hash = hash;
    Frame response;
    if (!shards_[shard]->Call(MessageType::kModelRegions, body.Encode(),
                              &response, error)) {
      return Status::kShardDown;
    }
    if (response.type != MessageType::kModelRegionsResult ||
        !out->Decode(response.payload)) {
      if (error != nullptr) *error = "malformed model-regions response";
      return Status::kShardDown;
    }
    // The cache can evict between the scatter and this fetch.
    return out->found != 0 ? Status::kOk : Status::kNotFound;
  };
  Status status = fetch_regions(left_shard, left_hash, &left_model);
  if (status != Status::kOk) return status;
  status = fetch_regions(right_shard, right_hash, &right_model);
  if (status != Status::kOk) return status;

  // The GCR: sorted union of the two sorted structural components —
  // exactly what core::LitsGcr builds from the two models (union of
  // itemset sets, then sort), so the regions and their order match the
  // single-node computation.
  std::vector<lits::Itemset> gcr;
  gcr.reserve(left_model.regions.size() + right_model.regions.size());
  std::set_union(left_model.regions.begin(), left_model.regions.end(),
                 right_model.regions.begin(), right_model.regions.end(),
                 std::back_inserter(gcr));

  // Phase 2: extend each model to the GCR on its owning shard.
  ExtendRegionsResultBody left_extended, right_extended;
  const auto extend = [&](int shard, uint64_t hash,
                          ExtendRegionsResultBody* out) {
    ExtendRegionsBody body;
    body.content_hash = hash;
    body.regions = gcr;
    Frame response;
    if (!shards_[shard]->Call(MessageType::kExtendRegions, body.Encode(),
                              &response, error)) {
      return Status::kShardDown;
    }
    if (response.type != MessageType::kExtendRegionsResult ||
        !out->Decode(response.payload)) {
      if (error != nullptr) *error = "malformed extend-regions response";
      return Status::kShardDown;
    }
    if (out->found == 0) return Status::kNotFound;
    if (out->supports.size() != gcr.size()) {
      if (error != nullptr) *error = "extend-regions support count mismatch";
      return Status::kShardDown;
    }
    return Status::kOk;
  };
  status = extend(left_shard, left_hash, &left_extended);
  if (status != Status::kOk) return status;
  status = extend(right_shard, right_hash, &right_extended);
  if (status != Status::kOk) return status;

  core::DeviationFunction fn;
  if (!DeviationFunctionFromCodes(f_code, g_code, &fn)) {
    return Status::kInvalid;  // validated by the caller already
  }
  // Supports traveled as IEEE-754 bits, so this aggregation sees the very
  // doubles the owning shards computed: delta^1_(f,g) over the GCR, bit-
  // identical to LitsDeviation on one node.
  *deviation = core::LitsAggregateRegionDiffs(
      left_extended.supports,
      static_cast<double>(left_extended.num_transactions),
      right_extended.supports,
      static_cast<double>(right_extended.num_transactions), fn);
  return Status::kOk;
}

ShardRouter::Status ShardRouter::Summary(
    uint8_t f_code, uint8_t g_code,
    std::vector<serve::SummaryEntry>* entries, serve::SummaryResult* result,
    std::string* error) {
  core::DeviationFunction fn;
  if (!DeviationFunctionFromCodes(f_code, g_code, &fn)) {
    if (error != nullptr) *error = "unknown deviation function codes";
    return Status::kInvalid;
  }
  StreamPartialsBody body;
  body.f_code = f_code;
  body.g_code = g_code;
  const std::string payload = body.Encode();

  entries->clear();
  for (ShardChannel* shard : shards_) {
    Frame response;
    if (!shard->Call(MessageType::kStreamPartials, payload, &response,
                     error)) {
      return Status::kShardDown;
    }
    PartialAggregateBody partial;
    if (response.type != MessageType::kPartialAggregate ||
        !partial.Decode(response.payload)) {
      if (error != nullptr) *error = "malformed partial-aggregate response";
      return Status::kShardDown;
    }
    for (PartialAggregateBody::Entry& entry : partial.entries) {
      serve::SummaryEntry merged;
      merged.stream = std::move(entry.stream);
      merged.has_deviation = entry.has_deviation != 0;
      merged.deviation = entry.deviation;
      entries->push_back(std::move(merged));
    }
  }
  // The canonical fold (sorted-name order) shared with the single-node
  // summary handler: g_max would merge from the shards' partial_max values
  // in any order, but g_sum only reproduces the single-node bits when the
  // per-stream terms recombine in the same global order.
  *result = serve::AggregateSummary(entries, fn.g);
  return Status::kOk;
}

bool ShardRouter::PingAll(std::string* error) {
  for (ShardChannel* shard : shards_) {
    Frame response;
    if (!shard->Call(MessageType::kPing, std::string(), &response, error)) {
      return false;
    }
    PongBody body;
    if (response.type != MessageType::kPong ||
        !body.Decode(response.payload)) {
      if (error != nullptr) *error = "malformed pong";
      return false;
    }
  }
  return true;
}

}  // namespace focus::shard

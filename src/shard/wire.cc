#include "shard/wire.h"

#include <bit>
#include <cstring>

namespace focus::shard {
namespace {

// Header layout: [u32 payload_len][u8 type][u32 request_id].
constexpr size_t kHeaderBytes = 9;

void AppendLe32(std::string* out, uint32_t value) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>(value >> (8 * i));
  out->append(bytes, sizeof(bytes));
}

void AppendLe64(std::string* out, uint64_t value) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(value >> (8 * i));
  out->append(bytes, sizeof(bytes));
}

uint32_t ReadLe32(const char* bytes) {
  uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<uint8_t>(bytes[i]);
  }
  return value;
}

uint64_t ReadLe64(const char* bytes) {
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<uint8_t>(bytes[i]);
  }
  return value;
}

void PutStreamStatus(PayloadWriter* out, const serve::StreamStatus& status) {
  out->PutI64(status.processed);
  out->PutU8(status.has_snapshot ? 1 : 0);
  out->PutI64(status.sequence);
  out->PutI64(status.num_transactions);
  out->PutDouble(status.delta_star);
  out->PutU8(status.screened_out ? 1 : 0);
  out->PutDouble(status.deviation);
  out->PutDouble(status.significance_percent);
  out->PutU8(status.alert ? 1 : 0);
  out->PutDouble(status.cusum);
  out->PutU8(status.change_point ? 1 : 0);
  out->PutU8(status.baseline_ready ? 1 : 0);
  out->PutDouble(status.baseline_mean);
  out->PutDouble(status.baseline_sd);
}

bool GetStreamStatus(PayloadReader* in, serve::StreamStatus* status) {
  uint8_t has_snapshot = 0, screened_out = 0, alert = 0, change_point = 0,
          baseline_ready = 0;
  const bool ok = in->GetI64(&status->processed) && in->GetU8(&has_snapshot) &&
                  in->GetI64(&status->sequence) &&
                  in->GetI64(&status->num_transactions) &&
                  in->GetDouble(&status->delta_star) &&
                  in->GetU8(&screened_out) && in->GetDouble(&status->deviation) &&
                  in->GetDouble(&status->significance_percent) &&
                  in->GetU8(&alert) && in->GetDouble(&status->cusum) &&
                  in->GetU8(&change_point) && in->GetU8(&baseline_ready) &&
                  in->GetDouble(&status->baseline_mean) &&
                  in->GetDouble(&status->baseline_sd);
  if (!ok) return false;
  status->has_snapshot = has_snapshot != 0;
  status->screened_out = screened_out != 0;
  status->alert = alert != 0;
  status->change_point = change_point != 0;
  status->baseline_ready = baseline_ready != 0;
  return true;
}

}  // namespace

bool ValidMessageType(uint8_t type) {
  return type >= static_cast<uint8_t>(MessageType::kPing) &&
         type <= static_cast<uint8_t>(MessageType::kError);
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kHeaderBytes + frame.payload.size());
  AppendLe32(&out, static_cast<uint32_t>(frame.payload.size()));
  out.push_back(static_cast<char>(frame.type));
  AppendLe32(&out, frame.request_id);
  out += frame.payload;
  return out;
}

WireDecoder::WireDecoder(const WireLimits& limits) : limits_(limits) {}

WireDecoder::Status WireDecoder::Fail(std::string reason) {
  errored_ = true;
  error_ = std::move(reason);
  return Status::kError;
}

WireDecoder::Status WireDecoder::Consume(std::string_view bytes) {
  if (errored_) return Status::kError;
  buffer_.append(bytes.data(), bytes.size());
  return Reset();
}

WireDecoder::Status WireDecoder::Reset() {
  if (errored_) return Status::kError;
  if (buffer_.size() < kHeaderBytes) {
    // The length prefix alone can already breach the limit check below
    // only once all four bytes are in; a partial header is always fine.
    return Status::kNeedMore;
  }
  const uint32_t payload_len = ReadLe32(buffer_.data());
  if (payload_len > limits_.max_payload_bytes) {
    return Fail("frame payload of " + std::to_string(payload_len) +
                " bytes exceeds the " +
                std::to_string(limits_.max_payload_bytes) + " byte limit");
  }
  const uint8_t type = static_cast<uint8_t>(buffer_[4]);
  if (!ValidMessageType(type)) {
    return Fail("unknown message type " + std::to_string(type));
  }
  if (buffer_.size() < kHeaderBytes + payload_len) return Status::kNeedMore;
  frame_.type = static_cast<MessageType>(type);
  frame_.request_id = ReadLe32(buffer_.data() + 5);
  frame_.payload.assign(buffer_, kHeaderBytes, payload_len);
  buffer_.erase(0, kHeaderBytes + payload_len);
  return Status::kComplete;
}

// ---------------------------------------------------------------------------
// PayloadWriter / PayloadReader.

void PayloadWriter::PutU8(uint8_t value) {
  bytes_.push_back(static_cast<char>(value));
}

void PayloadWriter::PutU16(uint16_t value) {
  bytes_.push_back(static_cast<char>(value & 0xFF));
  bytes_.push_back(static_cast<char>(value >> 8));
}

void PayloadWriter::PutU32(uint32_t value) { AppendLe32(&bytes_, value); }

void PayloadWriter::PutU64(uint64_t value) { AppendLe64(&bytes_, value); }

void PayloadWriter::PutI64(int64_t value) {
  AppendLe64(&bytes_, static_cast<uint64_t>(value));
}

void PayloadWriter::PutDouble(double value) {
  AppendLe64(&bytes_, std::bit_cast<uint64_t>(value));
}

void PayloadWriter::PutString(std::string_view text) {
  AppendLe32(&bytes_, static_cast<uint32_t>(text.size()));
  bytes_.append(text.data(), text.size());
}

void PayloadWriter::PutItemset(const lits::Itemset& itemset) {
  AppendLe32(&bytes_, static_cast<uint32_t>(itemset.items().size()));
  for (int32_t item : itemset.items()) {
    AppendLe32(&bytes_, static_cast<uint32_t>(item));
  }
}

void PayloadWriter::PutRegions(const std::vector<lits::Itemset>& regions) {
  AppendLe32(&bytes_, static_cast<uint32_t>(regions.size()));
  for (const lits::Itemset& region : regions) PutItemset(region);
}

bool PayloadReader::Take(size_t n, const char** out) {
  if (!ok_ || bytes_.size() - offset_ < n) {
    ok_ = false;
    return false;
  }
  *out = bytes_.data() + offset_;
  offset_ += n;
  return true;
}

bool PayloadReader::GetU8(uint8_t* value) {
  const char* at;
  if (!Take(1, &at)) return false;
  *value = static_cast<uint8_t>(*at);
  return true;
}

bool PayloadReader::GetU16(uint16_t* value) {
  const char* at;
  if (!Take(2, &at)) return false;
  *value = static_cast<uint16_t>(static_cast<uint8_t>(at[0]) |
                                 (static_cast<uint8_t>(at[1]) << 8));
  return true;
}

bool PayloadReader::GetU32(uint32_t* value) {
  const char* at;
  if (!Take(4, &at)) return false;
  *value = ReadLe32(at);
  return true;
}

bool PayloadReader::GetU64(uint64_t* value) {
  const char* at;
  if (!Take(8, &at)) return false;
  *value = ReadLe64(at);
  return true;
}

bool PayloadReader::GetI64(int64_t* value) {
  uint64_t raw;
  if (!GetU64(&raw)) return false;
  *value = static_cast<int64_t>(raw);
  return true;
}

bool PayloadReader::GetDouble(double* value) {
  uint64_t raw;
  if (!GetU64(&raw)) return false;
  *value = std::bit_cast<double>(raw);
  return true;
}

bool PayloadReader::GetString(std::string* text) {
  uint32_t length;
  if (!GetU32(&length)) return false;
  const char* at;
  if (!Take(length, &at)) return false;
  text->assign(at, length);
  return true;
}

bool PayloadReader::GetItemset(lits::Itemset* itemset) {
  uint32_t count;
  if (!GetU32(&count)) return false;
  // Each item occupies 4 payload bytes; a count implying more bytes than
  // remain is malformed, so the reserve below is bounded by real input.
  if (static_cast<size_t>(count) * 4 > remaining()) {
    ok_ = false;
    return false;
  }
  std::vector<int32_t> items;
  items.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t raw;
    if (!GetU32(&raw)) return false;
    items.push_back(static_cast<int32_t>(raw));
  }
  *itemset = lits::Itemset(std::move(items));
  return true;
}

bool PayloadReader::GetRegions(std::vector<lits::Itemset>* regions) {
  uint32_t count;
  if (!GetU32(&count)) return false;
  // An empty itemset still needs its own 4-byte count.
  if (static_cast<size_t>(count) * 4 > remaining()) {
    ok_ = false;
    return false;
  }
  regions->clear();
  regions->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    lits::Itemset itemset;
    if (!GetItemset(&itemset)) return false;
    regions->push_back(std::move(itemset));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Deviation-function codes.

bool DeviationCodesFromNames(const std::string& f_name,
                             const std::string& g_name, uint8_t* f_code,
                             uint8_t* g_code) {
  if (f_name == "abs") {
    *f_code = kDiffAbs;
  } else if (f_name == "scaled") {
    *f_code = kDiffScaled;
  } else {
    return false;
  }
  if (g_name == "sum") {
    *g_code = kAggSum;
  } else if (g_name == "max") {
    *g_code = kAggMax;
  } else {
    return false;
  }
  return true;
}

bool DeviationFunctionFromCodes(uint8_t f_code, uint8_t g_code,
                                core::DeviationFunction* fn) {
  if (f_code == kDiffAbs) {
    fn->f = core::AbsoluteDiff();
  } else if (f_code == kDiffScaled) {
    fn->f = core::ScaledDiff();
  } else {
    return false;
  }
  if (g_code == kAggSum) {
    fn->g = core::AggregateKind::kSum;
  } else if (g_code == kAggMax) {
    fn->g = core::AggregateKind::kMax;
  } else {
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Message bodies.

std::string PongBody::Encode() const {
  PayloadWriter out;
  out.PutU32(shard_index);
  out.PutI64(processed);
  out.PutU8(draining);
  return out.Take();
}

bool PongBody::Decode(std::string_view payload) {
  PayloadReader in(payload);
  return in.GetU32(&shard_index) && in.GetI64(&processed) &&
         in.GetU8(&draining) && in.AtEnd();
}

std::string SubmitSnapshotBody::Encode() const {
  PayloadWriter out;
  out.PutString(stream);
  out.PutString(source);
  out.PutString(snapshot);
  return out.Take();
}

bool SubmitSnapshotBody::Decode(std::string_view payload) {
  PayloadReader in(payload);
  return in.GetString(&stream) && in.GetString(&source) &&
         in.GetString(&snapshot) && in.AtEnd();
}

std::string SubmitResultBody::Encode() const {
  PayloadWriter out;
  out.PutU16(status);
  out.PutI64(sequence);
  out.PutU64(content_hash);
  out.PutString(error);
  return out.Take();
}

bool SubmitResultBody::Decode(std::string_view payload) {
  PayloadReader in(payload);
  return in.GetU16(&status) && in.GetI64(&sequence) &&
         in.GetU64(&content_hash) && in.GetString(&error) && in.AtEnd();
}

std::string DeviationQueryBody::Encode() const {
  PayloadWriter out;
  out.PutString(stream);
  out.PutU8(f_code);
  out.PutU8(g_code);
  return out.Take();
}

bool DeviationQueryBody::Decode(std::string_view payload) {
  PayloadReader in(payload);
  return in.GetString(&stream) && in.GetU8(&f_code) && in.GetU8(&g_code) &&
         in.AtEnd();
}

std::string DeviationResultBody::Encode() const {
  PayloadWriter out;
  out.PutU8(found);
  PutStreamStatus(&out, status);
  out.PutU8(has_deviation);
  out.PutDouble(deviation);
  return out.Take();
}

bool DeviationResultBody::Decode(std::string_view payload) {
  PayloadReader in(payload);
  return in.GetU8(&found) && GetStreamStatus(&in, &status) &&
         in.GetU8(&has_deviation) && in.GetDouble(&deviation) && in.AtEnd();
}

std::string CompareBody::Encode() const {
  PayloadWriter out;
  out.PutU64(left_hash);
  out.PutU64(right_hash);
  out.PutU8(f_code);
  out.PutU8(g_code);
  return out.Take();
}

bool CompareBody::Decode(std::string_view payload) {
  PayloadReader in(payload);
  return in.GetU64(&left_hash) && in.GetU64(&right_hash) &&
         in.GetU8(&f_code) && in.GetU8(&g_code) && in.AtEnd();
}

std::string CompareResultBody::Encode() const {
  PayloadWriter out;
  out.PutU8(static_cast<uint8_t>(outcome));
  out.PutDouble(deviation);
  return out.Take();
}

bool CompareResultBody::Decode(std::string_view payload) {
  PayloadReader in(payload);
  uint8_t raw;
  if (!in.GetU8(&raw) || raw > static_cast<uint8_t>(CompareOutcome::kBoth)) {
    return false;
  }
  outcome = static_cast<CompareOutcome>(raw);
  return in.GetDouble(&deviation) && in.AtEnd();
}

std::string ModelRegionsBody::Encode() const {
  PayloadWriter out;
  out.PutU64(content_hash);
  return out.Take();
}

bool ModelRegionsBody::Decode(std::string_view payload) {
  PayloadReader in(payload);
  return in.GetU64(&content_hash) && in.AtEnd();
}

std::string ModelRegionsResultBody::Encode() const {
  PayloadWriter out;
  out.PutU8(found);
  out.PutI64(num_transactions);
  out.PutRegions(regions);
  return out.Take();
}

bool ModelRegionsResultBody::Decode(std::string_view payload) {
  PayloadReader in(payload);
  return in.GetU8(&found) && in.GetI64(&num_transactions) &&
         in.GetRegions(&regions) && in.AtEnd();
}

std::string ExtendRegionsBody::Encode() const {
  PayloadWriter out;
  out.PutU64(content_hash);
  out.PutRegions(regions);
  return out.Take();
}

bool ExtendRegionsBody::Decode(std::string_view payload) {
  PayloadReader in(payload);
  return in.GetU64(&content_hash) && in.GetRegions(&regions) && in.AtEnd();
}

std::string ExtendRegionsResultBody::Encode() const {
  PayloadWriter out;
  out.PutU8(found);
  out.PutI64(num_transactions);
  out.PutU32(static_cast<uint32_t>(supports.size()));
  for (double support : supports) out.PutDouble(support);
  return out.Take();
}

bool ExtendRegionsResultBody::Decode(std::string_view payload) {
  PayloadReader in(payload);
  uint32_t count;
  if (!in.GetU8(&found) || !in.GetI64(&num_transactions) ||
      !in.GetU32(&count)) {
    return false;
  }
  if (static_cast<size_t>(count) * 8 > in.remaining()) return false;
  supports.clear();
  supports.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    double support;
    if (!in.GetDouble(&support)) return false;
    supports.push_back(support);
  }
  return in.AtEnd();
}

std::string StreamPartialsBody::Encode() const {
  PayloadWriter out;
  out.PutU8(f_code);
  out.PutU8(g_code);
  return out.Take();
}

bool StreamPartialsBody::Decode(std::string_view payload) {
  PayloadReader in(payload);
  return in.GetU8(&f_code) && in.GetU8(&g_code) && in.AtEnd();
}

std::string PartialAggregateBody::Encode() const {
  PayloadWriter out;
  out.PutU32(static_cast<uint32_t>(entries.size()));
  for (const Entry& entry : entries) {
    out.PutString(entry.stream);
    out.PutU8(entry.has_deviation);
    out.PutDouble(entry.deviation);
  }
  out.PutDouble(partial_sum);
  out.PutDouble(partial_max);
  out.PutU32(value_count);
  return out.Take();
}

bool PartialAggregateBody::Decode(std::string_view payload) {
  PayloadReader in(payload);
  uint32_t count;
  if (!in.GetU32(&count)) return false;
  // Each entry needs at least 13 payload bytes (empty stream name).
  if (static_cast<size_t>(count) * 13 > in.remaining()) return false;
  entries.clear();
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Entry entry;
    if (!in.GetString(&entry.stream) || !in.GetU8(&entry.has_deviation) ||
        !in.GetDouble(&entry.deviation)) {
      return false;
    }
    entries.push_back(std::move(entry));
  }
  return in.GetDouble(&partial_sum) && in.GetDouble(&partial_max) &&
         in.GetU32(&value_count) && in.AtEnd();
}

std::string ErrorBody::Encode() const {
  PayloadWriter out;
  out.PutString(message);
  return out.Take();
}

bool ErrorBody::Decode(std::string_view payload) {
  PayloadReader in(payload);
  return in.GetString(&message) && in.AtEnd();
}

}  // namespace focus::shard

#ifndef FOCUS_SHARD_WIRE_SERVER_H_
#define FOCUS_SHARD_WIRE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "net/poller.h"
#include "net/socket_util.h"
#include "shard/wire.h"

namespace focus::shard {

struct WireServerOptions {
  // Unix-domain socket path the worker listens on.
  std::string unix_path;
  int backlog = 128;
  int max_connections = 64;
  // A connection silent this long (mid-frame or between frames) is closed.
  int read_deadline_ms = 30'000;
  WireLimits limits;
  // Use the poll(2) engine even where epoll exists (tests).
  bool force_poll = false;
};

struct WireServerStats {
  int64_t connections_accepted = 0;
  int64_t frames_handled = 0;
  int64_t decode_errors = 0;
  int64_t open_connections = 0;
};

// Single-threaded frame server over a Unix-domain socket: the shard-side
// twin of net::HttpServer. One event-loop thread multiplexes the listener
// and every connection through a level-triggered net::Poller; the handler
// runs inline on that thread and returns the response frame for each
// request frame. A decode error answers with one kError frame and closes
// the connection (the decoder's errors are terminal, like HttpParser's).
//
// Lifecycle mirrors HttpServer: Start() binds and spawns the loop,
// BeginDrain() stops accepting and closes idle connections, WaitDrained()
// blocks until every connection is gone, Stop() joins.
class WireServer {
 public:
  using Handler = std::function<Frame(const Frame&)>;

  WireServer(WireServerOptions options, Handler handler);
  ~WireServer();  // Stop()

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  bool Start(std::string* error = nullptr);
  void BeginDrain();
  bool WaitDrained(int timeout_ms) EXCLUDES(drained_mutex_);
  void Stop();

  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  WireServerStats stats() const;

 private:
  struct Connection {
    net::UniqueFd fd;
    WireDecoder decoder;
    std::string out;  // serialized response frames not yet written
    size_t out_offset = 0;
    bool close_after_write = false;
    bool want_write = false;
    std::chrono::steady_clock::time_point last_activity;

    Connection(net::UniqueFd fd_in, const WireLimits& limits)
        : fd(std::move(fd_in)), decoder(limits) {}
  };

  void Loop();
  void AcceptNew(std::chrono::steady_clock::time_point now);
  void HandleReadable(Connection* conn,
                      std::chrono::steady_clock::time_point now);
  void DispatchDecoded(Connection* conn, WireDecoder::Status status);
  bool FlushWrites(Connection* conn);
  void CloseConnection(Connection* conn);
  void CloseExpired(std::chrono::steady_clock::time_point now);
  void Wake();

  const WireServerOptions options_;
  const Handler handler_;

  net::UniqueFd listen_fd_;
  net::UniqueFd wake_read_, wake_write_;  // self-pipe: Stop/BeginDrain -> loop

  net::Poller poller_;
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;

  std::thread loop_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};

  // drained_cv_ broadcasts under drained_mutex_ when the connection table
  // empties while draining; the predicate reads the atomic open_ counter.
  mutable common::Mutex drained_mutex_;
  common::CondVar drained_cv_;

  std::atomic<int64_t> accepted_{0}, frames_{0}, decode_errors_{0};
  std::atomic<int64_t> open_{0};
};

}  // namespace focus::shard

#endif  // FOCUS_SHARD_WIRE_SERVER_H_

#include "shard/wire_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>
#include <vector>

#include "common/check.h"

namespace focus::shard {
namespace {

// Poll granularity: the loop wakes at least this often to check read
// deadlines and drain progress.
constexpr int kTickMs = 50;

}  // namespace

WireServer::WireServer(WireServerOptions options, Handler handler)
    : options_(std::move(options)),
      handler_(std::move(handler)),
      poller_(options_.force_poll) {}

WireServer::~WireServer() { Stop(); }

bool WireServer::Start(std::string* error) {
  FOCUS_CHECK(!started_.load());
  listen_fd_ = net::ListenUnix(options_.unix_path, options_.backlog, error);
  if (!listen_fd_.valid()) return false;
  if (!net::SetNonBlocking(listen_fd_.get())) {
    if (error != nullptr) *error = "cannot set listener non-blocking";
    return false;
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    if (error != nullptr) *error = "cannot create wake pipe";
    return false;
  }
  wake_read_.Reset(pipe_fds[0]);
  wake_write_.Reset(pipe_fds[1]);
  // A blocking wake pipe would hang the event loop when it drains the
  // self-pipe, so failing to configure it is a startup failure.
  if (!net::SetNonBlocking(wake_read_.get()) ||
      !net::SetNonBlocking(wake_write_.get())) {
    if (error != nullptr) *error = "cannot set wake pipe non-blocking";
    return false;
  }
  poller_.Add(listen_fd_.get(), /*want_read=*/true, /*want_write=*/false);
  poller_.Add(wake_read_.get(), /*want_read=*/true, /*want_write=*/false);
  started_.store(true);
  loop_ = std::thread([this]() { Loop(); });
  return true;
}

void WireServer::Wake() {
  if (!wake_write_.valid()) return;
  const char byte = 'w';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_.get(), &byte, 1);
}

void WireServer::BeginDrain() {
  draining_.store(true, std::memory_order_relaxed);
  Wake();
}

bool WireServer::WaitDrained(int timeout_ms) {
  common::MutexLock lock(&drained_mutex_);
  return drained_cv_.WaitFor(drained_mutex_,
                             std::chrono::milliseconds(timeout_ms),
                             [this]() { return open_.load() == 0; });
}

void WireServer::Stop() {
  if (!started_.load()) return;
  stopping_.store(true);
  Wake();
  if (loop_.joinable()) loop_.join();
}

WireServerStats WireServer::stats() const {
  WireServerStats stats;
  stats.connections_accepted = accepted_.load(std::memory_order_relaxed);
  stats.frames_handled = frames_.load(std::memory_order_relaxed);
  stats.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  stats.open_connections = open_.load(std::memory_order_relaxed);
  return stats;
}

void WireServer::Loop() {
  std::vector<net::Poller::Event> events;
  bool drain_applied = false;
  while (!stopping_.load(std::memory_order_relaxed)) {
    poller_.Wait(kTickMs, &events);
    const auto now = std::chrono::steady_clock::now();
    for (const net::Poller::Event& event : events) {
      if (event.fd == wake_read_.get()) {
        char sink[64];
        while (::read(wake_read_.get(), sink, sizeof(sink)) > 0) {}
        continue;
      }
      if (event.fd == listen_fd_.get()) {
        if (event.readable) AcceptNew(now);
        continue;
      }
      // The connection may have been closed by an earlier event this
      // round; look it up fresh.
      auto it = connections_.find(event.fd);
      if (it == connections_.end()) continue;
      Connection* conn = it->second.get();
      if (event.error) {
        CloseConnection(conn);
        continue;
      }
      if (event.readable) HandleReadable(conn, now);
      it = connections_.find(event.fd);
      if (it != connections_.end() && event.writable) {
        FlushWrites(it->second.get());
      }
    }
    CloseExpired(now);
    if (draining_.load(std::memory_order_relaxed)) {
      if (!drain_applied) {
        if (listen_fd_.valid()) {
          poller_.Remove(listen_fd_.get());
          listen_fd_.Reset();
        }
        drain_applied = true;
      }
      // Close connections idle between frames; in-flight ones finish
      // writing their response first.
      std::vector<Connection*> idle;
      for (auto& [fd, conn] : connections_) {
        if (conn->decoder.idle() && conn->out.empty()) {
          // focus-analyze: allow(nondet-iteration) — close order is irrelevant
          idle.push_back(conn.get());
        }
      }
      for (Connection* conn : idle) CloseConnection(conn);
      if (connections_.empty()) {
        common::MutexLock lock(&drained_mutex_);
        drained_cv_.NotifyAll();
      }
    }
  }
  std::vector<Connection*> remaining;
  remaining.reserve(connections_.size());
  // focus-analyze: allow(nondet-iteration) — close order is irrelevant
  for (auto& [fd, conn] : connections_) remaining.push_back(conn.get());
  for (Connection* conn : remaining) CloseConnection(conn);
  if (listen_fd_.valid()) {
    poller_.Remove(listen_fd_.get());
    listen_fd_.Reset();
  }
}

void WireServer::AcceptNew(std::chrono::steady_clock::time_point now) {
  for (;;) {
    net::UniqueFd client(::accept(listen_fd_.get(), nullptr, nullptr));
    if (!client.valid()) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; retry on next readiness
    }
    if (draining_.load(std::memory_order_relaxed)) continue;  // close
    if (open_.load(std::memory_order_relaxed) >= options_.max_connections) {
      // Over the cap: answer one error frame then close. The frame is
      // tiny; a fresh socket's send buffer always takes it.
      ErrorBody body;
      body.message = "connection limit reached";
      const std::string bytes =
          EncodeFrame({MessageType::kError, 0, body.Encode()});
      [[maybe_unused]] const ssize_t n =
          ::send(client.get(), bytes.data(), bytes.size(), MSG_NOSIGNAL);
      continue;
    }
    if (!net::SetNonBlocking(client.get())) continue;
    const int fd = client.get();
    auto conn =
        std::make_unique<Connection>(std::move(client), options_.limits);
    conn->last_activity = now;
    if (!poller_.Add(fd, /*want_read=*/true, /*want_write=*/false)) continue;
    connections_[fd] = std::move(conn);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    open_.fetch_add(1, std::memory_order_relaxed);
  }
}

void WireServer::HandleReadable(Connection* conn,
                                std::chrono::steady_clock::time_point now) {
  char buffer[16384];
  for (;;) {
    const ssize_t n = ::read(conn->fd.get(), buffer, sizeof(buffer));
    if (n > 0) {
      conn->last_activity = now;
      DispatchDecoded(conn,
                      conn->decoder.Consume(std::string_view(buffer, n)));
      if (!FlushWrites(conn)) return;  // closed
      if (conn->close_after_write) {
        poller_.Update(conn->fd.get(), /*want_read=*/false, conn->want_write);
        return;
      }
      continue;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      CloseConnection(conn);
      return;
    }
    // EOF. A response still being written survives the peer's half-close.
    if (conn->out.size() > conn->out_offset) {
      conn->close_after_write = true;
      poller_.Update(conn->fd.get(), /*want_read=*/false, /*want_write=*/true);
      conn->want_write = true;
    } else {
      CloseConnection(conn);
    }
    return;
  }
}

void WireServer::DispatchDecoded(Connection* conn,
                                 WireDecoder::Status status) {
  while (status == WireDecoder::Status::kComplete) {
    frames_.fetch_add(1, std::memory_order_relaxed);
    const Frame response = handler_(conn->decoder.frame());
    conn->out += EncodeFrame(response);
    status = conn->decoder.Reset();
  }
  if (status == WireDecoder::Status::kError) {
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    ErrorBody body;
    body.message = conn->decoder.error();
    conn->out += EncodeFrame({MessageType::kError, 0, body.Encode()});
    conn->close_after_write = true;
  }
}

bool WireServer::FlushWrites(Connection* conn) {
  while (conn->out_offset < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd.get(), conn->out.data() + conn->out_offset,
               conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        poller_.Update(conn->fd.get(), !conn->close_after_write, true);
      }
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn);  // peer reset mid-response
    return false;
  }
  conn->out.clear();
  conn->out_offset = 0;
  if (conn->close_after_write) {
    CloseConnection(conn);
    return false;
  }
  if (conn->want_write) {
    conn->want_write = false;
    poller_.Update(conn->fd.get(), /*want_read=*/true, /*want_write=*/false);
  }
  return true;
}

void WireServer::CloseExpired(std::chrono::steady_clock::time_point now) {
  if (options_.read_deadline_ms <= 0) return;
  const auto deadline = std::chrono::milliseconds(options_.read_deadline_ms);
  std::vector<Connection*> expired;
  for (auto& [fd, conn] : connections_) {
    // focus-analyze: allow(nondet-iteration) — close order is irrelevant
    if (now - conn->last_activity > deadline) expired.push_back(conn.get());
  }
  for (Connection* conn : expired) CloseConnection(conn);
}

void WireServer::CloseConnection(Connection* conn) {
  const int fd = conn->fd.get();
  poller_.Remove(fd);
  connections_.erase(fd);  // destroys conn; fd closed by UniqueFd
  open_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace focus::shard

#ifndef FOCUS_SHARD_SHARDED_API_H_
#define FOCUS_SHARD_SHARDED_API_H_

#include <atomic>
#include <string>

#include "net/http_server.h"
#include "net/router.h"
#include "serve/metrics.h"
#include "shard/shard_router.h"

namespace focus::shard {

struct ShardedApiOptions {
  // Retry-After seconds advertised with 429/503 responses.
  int retry_after_s = 1;
  // Stream names must match [A-Za-z0-9._-]{1,max_stream_name}.
  size_t max_stream_name = 128;
  // Which front-end reactor this api instance serves; used to label the
  // reactor's server stats in /metrics (each reactor owns its own api +
  // router so shard calls never serialize across reactors).
  int reactor_index = 0;
};

// The sharded twin of serve::HttpApi: same endpoints, same response
// bodies, but every operation routes through a ShardRouter instead of a
// local MonitorService. The front end never parses snapshot bodies — an
// ingest forwards the raw bytes to the owning shard, which parses, hashes,
// and sequences them. Response formats match the single-node api exactly
// (the shard law checker diffs the two), with one addition: a shard
// transport failure answers 503 with Retry-After while the daemon drains.
class ShardedApi {
 public:
  // `router` and `metrics` must outlive the api; `metrics` may be null.
  ShardedApi(const ShardedApiOptions& options, ShardRouter* router,
             serve::MetricsRegistry* metrics);

  net::Router BuildRouter();

  // Lets GET /metrics fold this reactor's live server stats (labeled with
  // the reactor index) into the shared registry at scrape time.
  void AttachServer(const net::HttpServer* server) { server_ = server; }

  void SetDraining(bool draining) { draining_.store(draining); }

 private:
  net::HttpResponse HandleIngest(const net::HttpRequest& request,
                                 const net::PathParams& params);
  net::HttpResponse HandleDeviation(const net::HttpRequest& request,
                                    const net::PathParams& params);
  net::HttpResponse HandleCompare(const net::HttpRequest& request);
  net::HttpResponse HandleSummary(const net::HttpRequest& request);
  net::HttpResponse HandleMetrics(const net::HttpRequest& request);
  net::HttpResponse HandleHealth();

  net::HttpResponse ShardDownResponse(const std::string& error);
  net::HttpResponse RetryAfter(net::HttpResponse response);
  bool ValidStreamName(const std::string& name) const;
  void CountShardOp(int shard, const char* op);

  const ShardedApiOptions options_;
  ShardRouter* const router_;
  serve::MetricsRegistry* const metrics_;  // may be null
  const net::HttpServer* server_ = nullptr;
  std::atomic<bool> draining_{false};
};

}  // namespace focus::shard

#endif  // FOCUS_SHARD_SHARDED_API_H_

#include "shard/shard_worker.h"

#include <memory>
#include <sstream>
#include <utility>

#include "core/lits_deviation.h"
#include "io/data_io.h"
#include "serve/model_cache.h"

namespace focus::shard {
namespace {

Frame ErrorFrame(uint32_t request_id, std::string message) {
  ErrorBody body;
  body.message = std::move(message);
  return {MessageType::kError, request_id, body.Encode()};
}

}  // namespace

ShardWorker::ShardWorker(const ShardWorkerOptions& options,
                         const data::TransactionDb* reference,
                         serve::MetricsRegistry* metrics)
    : options_(options),
      reference_(reference),
      metrics_(metrics),
      service_(options.service, metrics) {}

bool ShardWorker::Serve(const WireServerOptions& server_options,
                        std::string* error) {
  server_ = std::make_unique<WireServer>(
      server_options, [this](const Frame& frame) { return HandleFrame(frame); });
  return server_->Start(error);
}

void ShardWorker::BeginDrain() {
  draining_.store(true, std::memory_order_relaxed);
  if (server_ != nullptr) server_->BeginDrain();
}

bool ShardWorker::WaitDrained(int timeout_ms) {
  return server_ == nullptr || server_->WaitDrained(timeout_ms);
}

void ShardWorker::Stop() {
  if (server_ != nullptr) server_->Stop();
  service_.Flush();
  service_.Shutdown();
}

Frame ShardWorker::HandleFrame(const Frame& request) {
  switch (request.type) {
    case MessageType::kPing:
      return HandlePing(request);
    case MessageType::kSubmitSnapshot:
      return HandleSubmit(request);
    case MessageType::kDeviationQuery:
      return HandleDeviationQuery(request);
    case MessageType::kCompare:
      return HandleCompare(request);
    case MessageType::kModelRegions:
      return HandleModelRegions(request);
    case MessageType::kExtendRegions:
      return HandleExtendRegions(request);
    case MessageType::kStreamPartials:
      return HandleStreamPartials(request);
    default:
      return ErrorFrame(request.request_id,
                        "unexpected message type " +
                            std::to_string(static_cast<int>(request.type)));
  }
}

Frame ShardWorker::HandlePing(const Frame& request) {
  PongBody body;
  body.shard_index = options_.shard_index;
  body.processed = service_.processed();
  body.draining = draining_.load(std::memory_order_relaxed) ? 1 : 0;
  return {MessageType::kPong, request.request_id, body.Encode()};
}

Frame ShardWorker::HandleSubmit(const Frame& request) {
  SubmitSnapshotBody body;
  if (!body.Decode(request.payload)) {
    return ErrorFrame(request.request_id, "malformed submit payload");
  }
  SubmitResultBody result;
  // Drain refuses new work up front — in-flight snapshots still finish,
  // but nothing new enters the queue (docs/SHARDING.md, shard death).
  if (draining_.load(std::memory_order_relaxed)) {
    result.status = 503;
    result.error = "shard is draining";
    return {MessageType::kSubmitResult, request.request_id, result.Encode()};
  }
  if (body.snapshot.empty()) {
    result.status = 400;
    result.error = "empty snapshot body";
    return {MessageType::kSubmitResult, request.request_id, result.Encode()};
  }
  std::istringstream in(body.snapshot);
  std::string load_error;
  const auto db = io::LoadTransactionDb(in, &load_error);
  if (!db.has_value()) {
    if (metrics_ != nullptr) {
      metrics_->GetCounter("ingest_rejected").Increment();
    }
    result.status = 400;
    result.error = "malformed snapshot: " + load_error;
    return {MessageType::kSubmitResult, request.request_id, result.Encode()};
  }
  result.content_hash = serve::TransactionDbContentHash(*db);

  // Registration + sequence assignment + submission serialize so the
  // stream registers exactly once and sequences stay dense.
  common::MutexLock lock(&streams_mutex_);
  if (!service_.HasStream(body.stream)) {
    service_.AddStream(body.stream, *reference_);
  }
  serve::Snapshot snapshot;
  snapshot.stream = body.stream;
  snapshot.sequence = next_sequence_[body.stream];
  snapshot.source = body.source;
  snapshot.db = std::move(*db);
  const serve::SubmitResult submit = service_.TrySubmitFor(
      std::move(snapshot), std::chrono::milliseconds(options_.ingest_wait_ms));
  switch (submit) {
    case serve::SubmitResult::kOverloaded:
      result.status = 429;
      result.error = "ingest queue is full; retry later";
      break;
    case serve::SubmitResult::kShutdown:
      result.status = 503;
      result.error = "shard is shutting down";
      break;
    case serve::SubmitResult::kAccepted:
      result.status = 202;
      result.sequence = next_sequence_[body.stream]++;
      break;
  }
  return {MessageType::kSubmitResult, request.request_id, result.Encode()};
}

Frame ShardWorker::HandleDeviationQuery(const Frame& request) {
  DeviationQueryBody body;
  if (!body.Decode(request.payload)) {
    return ErrorFrame(request.request_id, "malformed deviation query");
  }
  core::DeviationFunction fn;
  if (!DeviationFunctionFromCodes(body.f_code, body.g_code, &fn)) {
    return ErrorFrame(request.request_id, "unknown deviation function codes");
  }
  DeviationResultBody result;
  const auto deviation = service_.QueryDeviation(body.stream, fn);
  if (deviation.has_value()) {
    result.found = 1;
    result.status = deviation->status;
    result.has_deviation = deviation->has_deviation ? 1 : 0;
    result.deviation = deviation->deviation;
  }
  return {MessageType::kDeviationResult, request.request_id, result.Encode()};
}

Frame ShardWorker::HandleCompare(const Frame& request) {
  CompareBody body;
  if (!body.Decode(request.payload)) {
    return ErrorFrame(request.request_id, "malformed compare payload");
  }
  core::DeviationFunction fn;
  if (!DeviationFunctionFromCodes(body.f_code, body.g_code, &fn)) {
    return ErrorFrame(request.request_id, "unknown deviation function codes");
  }
  serve::ModelCache& cache = service_.model_cache();
  const auto left = cache.LookupMined(body.left_hash);
  const auto right = cache.LookupMined(body.right_hash);
  CompareResultBody result;
  if (left.has_value() && right.has_value()) {
    result.outcome = CompareOutcome::kBoth;
    // Both snapshots are local: the full single-node answer, same code as
    // the unsharded /v1/compare.
    result.deviation = core::LitsDeviation(*left->model, left->index_ref(),
                                           *right->model, right->index_ref(),
                                           fn);
    if (metrics_ != nullptr) metrics_->GetCounter("compares").Increment();
  } else if (left.has_value()) {
    result.outcome = CompareOutcome::kLeftOnly;
  } else if (right.has_value()) {
    result.outcome = CompareOutcome::kRightOnly;
  } else {
    result.outcome = CompareOutcome::kNeither;
  }
  return {MessageType::kCompareResult, request.request_id, result.Encode()};
}

Frame ShardWorker::HandleModelRegions(const Frame& request) {
  ModelRegionsBody body;
  if (!body.Decode(request.payload)) {
    return ErrorFrame(request.request_id, "malformed model-regions payload");
  }
  ModelRegionsResultBody result;
  const auto mined = service_.model_cache().LookupMined(body.content_hash);
  if (mined.has_value()) {
    result.found = 1;
    result.num_transactions = mined->index_ref().num_transactions();
    result.regions = mined->model->StructuralComponent();
  }
  return {MessageType::kModelRegionsResult, request.request_id,
          result.Encode()};
}

Frame ShardWorker::HandleExtendRegions(const Frame& request) {
  ExtendRegionsBody body;
  if (!body.Decode(request.payload)) {
    return ErrorFrame(request.request_id, "malformed extend-regions payload");
  }
  ExtendRegionsResultBody result;
  const auto mined = service_.model_cache().LookupMined(body.content_hash);
  if (mined.has_value()) {
    result.found = 1;
    result.num_transactions = mined->index_ref().num_transactions();
    // The same measure extension LitsDeviation composes, so the router's
    // recombined answer matches the single-node one bit for bit.
    result.supports = core::LitsExtendModel(body.regions, *mined->model,
                                            mined->index_ref());
  }
  return {MessageType::kExtendRegionsResult, request.request_id,
          result.Encode()};
}

Frame ShardWorker::HandleStreamPartials(const Frame& request) {
  StreamPartialsBody body;
  if (!body.Decode(request.payload)) {
    return ErrorFrame(request.request_id, "malformed stream-partials payload");
  }
  core::DeviationFunction fn;
  if (!DeviationFunctionFromCodes(body.f_code, body.g_code, &fn)) {
    return ErrorFrame(request.request_id, "unknown deviation function codes");
  }
  PartialAggregateBody result;
  std::vector<double> values;
  for (const std::string& name : service_.ListStreams()) {
    const auto deviation = service_.QueryDeviation(name, fn);
    if (!deviation.has_value()) continue;
    PartialAggregateBody::Entry entry;
    entry.stream = name;
    entry.has_deviation = deviation->has_deviation ? 1 : 0;
    entry.deviation = deviation->deviation;
    if (deviation->has_deviation) values.push_back(deviation->deviation);
    result.entries.push_back(std::move(entry));
  }
  result.value_count = static_cast<uint32_t>(values.size());
  if (!values.empty()) {
    result.partial_sum = core::AggregateValues(core::AggregateKind::kSum,
                                               values);
    result.partial_max = core::AggregateValues(core::AggregateKind::kMax,
                                               values);
  }
  return {MessageType::kPartialAggregate, request.request_id, result.Encode()};
}

}  // namespace focus::shard

#ifndef FOCUS_SHARD_SHARD_ROUTER_H_
#define FOCUS_SHARD_SHARD_ROUTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/api_util.h"
#include "shard/hash_ring.h"
#include "shard/shard_channel.h"
#include "shard/shard_worker.h"
#include "shard/wire.h"

namespace focus::shard {

// In-process ShardChannel: dispatches directly into a ShardWorker (the
// encode/decode still happens in the worker's body codecs, so the same
// bytes-level contract is exercised).
class LocalShardChannel : public ShardChannel {
 public:
  explicit LocalShardChannel(ShardWorker* worker) : worker_(worker) {}

  bool Call(MessageType type, const std::string& payload, Frame* response,
            std::string* error) override;

 private:
  ShardWorker* const worker_;
};

// Consistent-hash stream->shard routing plus the scatter-gather fan-out
// for cross-shard operations. Single-shard operations (ingest, per-stream
// deviation) go to the owning shard only; /v1/compare falls back to a
// two-phase exchange when the two snapshots live on different shards; the
// cross-stream summary merges every shard's partial aggregates through
// serve::AggregateSummary, the same fold the single-node handler uses —
// which is why sharded answers are bit-identical (tests/laws pins this).
//
// Any transport failure surfaces as kShardDown: the front end answers 503
// and the daemon begins its drain (docs/SHARDING.md).
class ShardRouter {
 public:
  enum class Status {
    kOk,
    kNotFound,    // unknown stream / hash on the owning shard(s)
    kInvalid,     // malformed request (bad deviation codes, ...)
    kShardDown,   // transport failure -> 503
  };

  // `shards` must outlive the router; one channel per shard, index order.
  explicit ShardRouter(std::vector<ShardChannel*> shards,
                       int vnodes_per_shard = 64);

  int num_shards() const { return ring_.num_shards(); }
  int ShardFor(const std::string& stream) const {
    return ring_.ShardFor(stream);
  }

  // Ingest: routes to the owning shard. kOk means the shard answered
  // (result.status carries the HTTP-style verdict, 202/400/429/503).
  Status Submit(const std::string& stream, const std::string& source,
                const std::string& snapshot_text, SubmitResultBody* result,
                std::string* error);

  // Per-stream deviation from the owning shard.
  Status QueryDeviation(const std::string& stream, uint8_t f_code,
                        uint8_t g_code, DeviationResultBody* result,
                        std::string* error);

  // Compare by content hash. kNotFound fills `missing` with the hashes no
  // shard holds.
  Status Compare(uint64_t left_hash, uint64_t right_hash, uint8_t f_code,
                 uint8_t g_code, double* deviation,
                 std::vector<uint64_t>* missing, std::string* error);

  // Cross-stream aggregate over every shard: merged per-stream entries
  // (sorted by name) + the canonical fold.
  Status Summary(uint8_t f_code, uint8_t g_code,
                 std::vector<serve::SummaryEntry>* entries,
                 serve::SummaryResult* result, std::string* error);

  // Pings every shard; false (with `error`) when any is unreachable.
  bool PingAll(std::string* error);

 private:
  // Two-phase cross-shard compare: fetch Γ(M)+n from each owner, form the
  // GCR, extend both models remotely, aggregate locally.
  Status CrossShardCompare(int left_shard, uint64_t left_hash,
                           int right_shard, uint64_t right_hash,
                           uint8_t f_code, uint8_t g_code, double* deviation,
                           std::string* error);

  const std::vector<ShardChannel*> shards_;
  const HashRing ring_;
};

}  // namespace focus::shard

#endif  // FOCUS_SHARD_SHARD_ROUTER_H_

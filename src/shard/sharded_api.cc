#include "shard/sharded_api.h"

#include <utility>

#include "serve/api_util.h"

namespace focus::shard {

using serve::HashHex;
using serve::JsonEscape;
using serve::JsonNumber;
using serve::ParseDeviationFunction;
using serve::ParseHashHex;
using serve::StatusJson;

ShardedApi::ShardedApi(const ShardedApiOptions& options, ShardRouter* router,
                       serve::MetricsRegistry* metrics)
    : options_(options), router_(router), metrics_(metrics) {}

bool ShardedApi::ValidStreamName(const std::string& name) const {
  if (name.empty() || name.size() > options_.max_stream_name) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

void ShardedApi::CountShardOp(int shard, const char* op) {
  if (metrics_ == nullptr) return;
  metrics_
      ->GetCounter(std::string(op) + "{shard=\"" + std::to_string(shard) +
                   "\"}")
      .Increment();
}

net::HttpResponse ShardedApi::RetryAfter(net::HttpResponse response) {
  response.headers.emplace_back("retry-after",
                                std::to_string(options_.retry_after_s));
  return response;
}

net::HttpResponse ShardedApi::ShardDownResponse(const std::string& error) {
  if (metrics_ != nullptr) {
    metrics_->GetCounter("shard_transport_errors").Increment();
  }
  return RetryAfter(
      net::ErrorResponse(503, "shard unavailable: " + error));
}

net::Router ShardedApi::BuildRouter() {
  net::Router router;
  router.Handle("POST", "/v1/streams/{name}/snapshots",
                [this](const net::HttpRequest& request,
                       const net::PathParams& params) {
                  return HandleIngest(request, params);
                });
  router.Handle("GET", "/v1/streams/{name}/deviation",
                [this](const net::HttpRequest& request,
                       const net::PathParams& params) {
                  return HandleDeviation(request, params);
                });
  router.Handle("POST", "/v1/compare",
                [this](const net::HttpRequest& request,
                       const net::PathParams&) {
                  return HandleCompare(request);
                });
  router.Handle("GET", "/v1/deviation/summary",
                [this](const net::HttpRequest& request,
                       const net::PathParams&) {
                  return HandleSummary(request);
                });
  router.Handle("GET", "/metrics",
                [this](const net::HttpRequest& request,
                       const net::PathParams&) {
                  return HandleMetrics(request);
                });
  router.Handle("GET", "/healthz",
                [this](const net::HttpRequest&, const net::PathParams&) {
                  return HandleHealth();
                });
  return router;
}

net::HttpResponse ShardedApi::HandleIngest(const net::HttpRequest& request,
                                           const net::PathParams& params) {
  const std::string& name = params.at("name");
  if (!ValidStreamName(name)) {
    return net::ErrorResponse(400, "invalid stream name");
  }
  if (request.body.empty()) {
    return net::ErrorResponse(400, "empty snapshot body");
  }
  // The body forwards verbatim: parsing, hashing, and sequencing all
  // happen on the owning shard (the single owner of the stream).
  const int shard = router_->ShardFor(name);
  CountShardOp(shard, "shard_ingests");
  SubmitResultBody result;
  std::string error;
  const ShardRouter::Status status =
      router_->Submit(name, "http", request.body, &result, &error);
  if (status == ShardRouter::Status::kShardDown) {
    return ShardDownResponse(error);
  }
  switch (result.status) {
    case 202:
      break;
    case 429:
      return RetryAfter(net::ErrorResponse(429, result.error));
    case 503:
      return RetryAfter(net::ErrorResponse(503, result.error));
    default:
      return net::ErrorResponse(result.status, result.error);
  }
  net::HttpResponse response;
  response.status = 202;
  response.body = "{\"stream\":\"" + JsonEscape(name) + "\"";
  response.body += ",\"sequence\":" + std::to_string(result.sequence);
  response.body +=
      ",\"content_hash\":\"" + HashHex(result.content_hash) + "\"}\n";
  return response;
}

net::HttpResponse ShardedApi::HandleDeviation(const net::HttpRequest& request,
                                              const net::PathParams& params) {
  core::DeviationFunction fn;
  std::string f_name, g_name;
  if (!ParseDeviationFunction(request.query, &fn, &f_name, &g_name)) {
    return net::ErrorResponse(400, "unknown deviation function; use "
                                   "f=abs|scaled and g=sum|max");
  }
  uint8_t f_code, g_code;
  DeviationCodesFromNames(f_name, g_name, &f_code, &g_code);
  const std::string& name = params.at("name");
  const int shard = router_->ShardFor(name);
  CountShardOp(shard, "shard_deviation_queries");
  DeviationResultBody result;
  std::string error;
  switch (router_->QueryDeviation(name, f_code, g_code, &result, &error)) {
    case ShardRouter::Status::kShardDown:
      return ShardDownResponse(error);
    case ShardRouter::Status::kNotFound:
      return net::ErrorResponse(404, "unknown stream");
    case ShardRouter::Status::kInvalid:
      return net::ErrorResponse(400, error);
    case ShardRouter::Status::kOk:
      break;
  }
  net::HttpResponse response;
  response.body = "{\"stream\":\"" + JsonEscape(name) + "\"";
  response.body += ",\"f\":\"" + f_name + "\",\"g\":\"" + g_name + "\",";
  response.body += StatusJson(result.status);
  if (result.has_deviation != 0) {
    response.body += ",\"deviation\":" + JsonNumber(result.deviation);
  }
  response.body += "}\n";
  return response;
}

net::HttpResponse ShardedApi::HandleCompare(const net::HttpRequest& request) {
  std::map<std::string, std::string> params = request.query;
  if (!request.body.empty()) {
    for (auto& [key, value] : net::ParseQueryString(request.body)) {
      params[key] = value;
    }
  }
  core::DeviationFunction fn;
  std::string f_name, g_name;
  if (!ParseDeviationFunction(params, &fn, &f_name, &g_name)) {
    return net::ErrorResponse(400, "unknown deviation function; use "
                                   "f=abs|scaled and g=sum|max");
  }
  uint8_t f_code, g_code;
  DeviationCodesFromNames(f_name, g_name, &f_code, &g_code);
  uint64_t left_hash = 0, right_hash = 0;
  const auto left_it = params.find("left");
  const auto right_it = params.find("right");
  if (left_it == params.end() || right_it == params.end() ||
      !ParseHashHex(left_it->second, &left_hash) ||
      !ParseHashHex(right_it->second, &right_hash)) {
    return net::ErrorResponse(
        400, "compare needs left=<hex hash> and right=<hex hash> (the "
             "content_hash values returned by snapshot ingest)");
  }
  if (metrics_ != nullptr) {
    metrics_->GetCounter("shard_compares").Increment();
  }
  double deviation = 0.0;
  std::vector<uint64_t> missing;
  std::string error;
  switch (router_->Compare(left_hash, right_hash, f_code, g_code, &deviation,
                           &missing, &error)) {
    case ShardRouter::Status::kShardDown:
      return ShardDownResponse(error);
    case ShardRouter::Status::kNotFound: {
      std::string rendered;
      for (uint64_t hash : missing) {
        if (!rendered.empty()) rendered += ", ";
        rendered += HashHex(hash);
      }
      return net::ErrorResponse(
          404, "snapshot hash not in any shard's model cache (evicted, "
               "still queued, or never ingested): " + rendered);
    }
    case ShardRouter::Status::kInvalid:
      return net::ErrorResponse(400, error);
    case ShardRouter::Status::kOk:
      break;
  }
  net::HttpResponse response;
  response.body = "{\"left\":\"" + left_it->second + "\"";
  response.body += ",\"right\":\"" + right_it->second + "\"";
  response.body += ",\"f\":\"" + f_name + "\",\"g\":\"" + g_name + "\"";
  response.body += ",\"deviation\":" + JsonNumber(deviation) + "}\n";
  return response;
}

net::HttpResponse ShardedApi::HandleSummary(const net::HttpRequest& request) {
  core::DeviationFunction fn;
  std::string f_name, g_name;
  if (!ParseDeviationFunction(request.query, &fn, &f_name, &g_name)) {
    return net::ErrorResponse(400, "unknown deviation function; use "
                                   "f=abs|scaled and g=sum|max");
  }
  uint8_t f_code, g_code;
  DeviationCodesFromNames(f_name, g_name, &f_code, &g_code);
  std::vector<serve::SummaryEntry> entries;
  serve::SummaryResult result;
  std::string error;
  switch (router_->Summary(f_code, g_code, &entries, &result, &error)) {
    case ShardRouter::Status::kShardDown:
      return ShardDownResponse(error);
    case ShardRouter::Status::kInvalid:
      return net::ErrorResponse(400, error);
    default:
      break;
  }
  net::HttpResponse response;
  response.body = serve::SummaryJson(f_name, g_name, entries, result);
  return response;
}

net::HttpResponse ShardedApi::HandleMetrics(const net::HttpRequest& request) {
  if (metrics_ == nullptr) {
    return net::ErrorResponse(404, "metrics are disabled");
  }
  if (server_ != nullptr) {
    // Per-reactor labels keep concurrent reactors from fighting over one
    // counter (each folds only its own server's stats).
    const std::string label =
        "{reactor=\"" + std::to_string(options_.reactor_index) + "\"}";
    const net::HttpServerStats stats = server_->stats();
    metrics_->GetGauge("http_open_connections" + label)
        .Set(static_cast<double>(stats.open_connections));
    auto& requests = metrics_->GetCounter("http_requests" + label);
    requests.Increment(stats.requests_handled - requests.Value());
    auto& parse_errors = metrics_->GetCounter("http_parse_errors" + label);
    parse_errors.Increment(stats.parse_errors - parse_errors.Value());
  }
  net::HttpResponse response;
  const auto format = request.query.find("format");
  if (format != request.query.end() && format->second == "json") {
    response.body = metrics_->ToJson() + "\n";
    return response;
  }
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = metrics_->ToPrometheusText();
  return response;
}

net::HttpResponse ShardedApi::HandleHealth() {
  net::HttpResponse response;
  response.body = draining_.load() ? "{\"status\":\"draining\"}\n"
                                   : "{\"status\":\"ok\"}\n";
  return response;
}

}  // namespace focus::shard

#ifndef FOCUS_SHARD_SHARD_CLIENT_H_
#define FOCUS_SHARD_SHARD_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "net/socket_util.h"
#include "shard/shard_channel.h"
#include "shard/wire.h"

namespace focus::shard {

// Blocking request/response client for one shard worker's Unix socket.
// Thread-safe: calls serialize on an internal mutex, so one client can be
// shared by the handlers of a front-end reactor. Call() matches responses
// to requests by request_id; any transport or decode failure closes the
// connection and reports false — the caller treats that as "shard down"
// (503), and the next Call() re-connects.
class ShardClient : public ShardChannel {
 public:
  explicit ShardClient(std::string unix_path, WireLimits limits = WireLimits());

  ShardClient(const ShardClient&) = delete;
  ShardClient& operator=(const ShardClient&) = delete;

  // Sends `type` + `payload` and blocks for the matching response frame.
  // Returns false on transport/decode failure (connection closed; `error`
  // filled). A kError response frame from the worker is surfaced the same
  // way: false, with the worker's message in `error`.
  bool Call(MessageType type, const std::string& payload, Frame* response,
            std::string* error) override EXCLUDES(mutex_);

  // Drops the connection (next Call re-connects).
  void Close() EXCLUDES(mutex_);

  const std::string& unix_path() const { return unix_path_; }

 private:
  bool EnsureConnectedLocked(std::string* error) REQUIRES(mutex_);
  // `sent_any` reports whether any request bytes reached the socket —
  // Call() only retries failures that happened before that point.
  bool CallLocked(MessageType type, const std::string& payload,
                  Frame* response, std::string* error, bool* sent_any)
      REQUIRES(mutex_);

  const std::string unix_path_;
  const WireLimits limits_;

  common::Mutex mutex_;
  net::UniqueFd fd_ GUARDED_BY(mutex_);
  uint32_t next_request_id_ GUARDED_BY(mutex_) = 1;
};

}  // namespace focus::shard

#endif  // FOCUS_SHARD_SHARD_CLIENT_H_

#ifndef FOCUS_DATAGEN_CLASS_GEN_H_
#define FOCUS_DATAGEN_CLASS_GEN_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace focus::datagen {

// Re-implementation of the synthetic classification-data generator of
// Agrawal, Imielinski & Swami ("Database mining: a performance
// perspective", TKDE 1993), used by the paper for all dt-model
// experiments (datasets "NM.Fnum", Sections 6.1.2 and 7.2).
//
// Nine predictor attributes:
//   salary      numeric     uniform [20000, 150000]
//   commission  numeric     0 if salary >= 75000, else uniform [10000, 75000]
//   age         numeric     uniform [20, 80]
//   elevel      categorical {0..4}      (education level)
//   car         categorical {0..19}    (make of car)
//   zipcode     categorical {0..8}
//   hvalue      numeric     uniform [0.5, 1.5] * k * 100000, k from zipcode
//   hyears      numeric     uniform [1, 30]
//   loan        numeric     uniform [0, 500000]
//
// Classification functions F1..F7 assign class A (label 0) or B (label 1).
// The paper uses F1-F4; F5-F7 are provided for completeness.

enum class ClassFunction {
  kF1 = 1,
  kF2 = 2,
  kF3 = 3,
  kF4 = 4,
  kF5 = 5,
  kF6 = 6,
  kF7 = 7,
};

// Column indices in the generated schema, for building regions/predicates.
struct ClassGenColumns {
  static constexpr int kSalary = 0;
  static constexpr int kCommission = 1;
  static constexpr int kAge = 2;
  static constexpr int kElevel = 3;
  static constexpr int kCar = 4;
  static constexpr int kZipcode = 5;
  static constexpr int kHvalue = 6;
  static constexpr int kHyears = 7;
  static constexpr int kLoan = 8;
};

struct ClassGenParams {
  int64_t num_rows = 100000;
  ClassFunction function = ClassFunction::kF1;
  // Fraction of rows whose class label is flipped (the generator's
  // "perturbation factor"); 0 reproduces the noise-free setting.
  double label_noise = 0.0;
  uint64_t seed = 1;

  // Paper naming, e.g. "0.1M.F1".
  std::string Name() const;
};

// The (fixed) schema produced by the generator. Two classes: A=0, B=1.
data::Schema ClassGenSchema();

// Evaluates function `f` on one attribute vector (schema order above).
// Returns 0 for group A, 1 for group B.
int EvaluateClassFunction(ClassFunction f, std::span<const double> row);

data::Dataset GenerateClassification(const ClassGenParams& params);

}  // namespace focus::datagen

#endif  // FOCUS_DATAGEN_CLASS_GEN_H_

#ifndef FOCUS_DATAGEN_PERTURB_H_
#define FOCUS_DATAGEN_PERTURB_H_

#include <cstdint>

#include "data/dataset.h"
#include "data/transaction_db.h"

namespace focus::datagen {

// Controlled dataset perturbations used to exercise change detection: they
// create "the same data except …" variants without regenerating from a
// different process.

// Flips the class label of each row independently with probability `p`.
data::Dataset FlipLabels(const data::Dataset& dataset, double p, uint64_t seed);

// Adds zero-mean Gaussian noise with standard deviation
// `relative_sd * (max - min)` to every numeric attribute, clamped to the
// attribute domain. Categorical attributes and labels are untouched.
data::Dataset JitterNumeric(const data::Dataset& dataset, double relative_sd,
                            uint64_t seed);

// For each transaction, independently replaces each item with a uniformly
// random item with probability `p` (duplicates collapse).
data::TransactionDb ReplaceItems(const data::TransactionDb& db, double p,
                                 uint64_t seed);

}  // namespace focus::datagen

#endif  // FOCUS_DATAGEN_PERTURB_H_

#ifndef FOCUS_DATAGEN_QUEST_GEN_H_
#define FOCUS_DATAGEN_QUEST_GEN_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "data/transaction_db.h"

namespace focus::datagen {

// Re-implementation of the IBM Quest / Almaden synthetic market-basket
// generator of Agrawal & Srikant (VLDB'94), the generator behind the
// paper's datasets named "NM.tlL.|I|I.Np pats.p patlen" (Sections 6.1.1
// and 7.1). The original binary is no longer distributed; the algorithm
// is implemented from its published description:
//
//   * Np maximal potentially-large itemsets are generated; the size of
//     each is Poisson with mean `pattern_length`; a fraction of the items
//     of each pattern (exponentially distributed "correlation level") is
//     taken from the previous pattern, the rest are picked uniformly.
//   * Each pattern has a weight (exponential, normalized to sum 1) giving
//     the probability it seeds a transaction, and a corruption level
//     (normal, mean 0.5, sd 0.1, clamped to [0,1]).
//   * A transaction's size is Poisson with mean `avg_transaction_length`;
//     patterns are drawn by weight and inserted after per-item corruption;
//     a pattern that overflows the transaction is added anyway in half the
//     cases and deferred to the next transaction otherwise.
struct QuestParams {
  int64_t num_transactions = 100000;  // N
  double avg_transaction_length = 20; // tl
  int32_t num_items = 1000;           // |I|
  int32_t num_patterns = 4000;        // Np
  double avg_pattern_length = 4;      // p
  double correlation_mean = 0.5;
  double corruption_mean = 0.5;
  double corruption_sd = 0.1;
  uint64_t seed = 1;
  // Seed for the pattern table alone. Two generations with the same
  // pattern_seed but different `seed`s come from the SAME generating
  // process (same potentially-large itemsets) and model independent
  // samples of it — the paper's "same distribution" datasets (D(1) in
  // Figure 13). 0 means "derive from seed".
  uint64_t pattern_seed = 0;

  // The paper's naming convention, e.g. "0.1M.20L.1K.4000pats.4patlen".
  std::string Name() const;
};

data::TransactionDb GenerateQuest(const QuestParams& params);

// Streams the generated transactions, in order, to `sink` instead of
// materializing a TransactionDb. The RNG draw sequence is IDENTICAL to
// GenerateQuest (it is the same loop), so both paths produce the same
// logical database — this is how bench/ooc_mine.cc writes a 1M-transaction
// dataset straight into a block file in bounded memory. Items within a
// transaction arrive unsorted and may repeat; the sink must mirror
// TransactionDb::AddTransaction semantics (BlockTransactionDbWriter::Add
// does).
void GenerateQuestTo(
    const QuestParams& params,
    const std::function<void(std::span<const int32_t>)>& sink);

}  // namespace focus::datagen

#endif  // FOCUS_DATAGEN_QUEST_GEN_H_

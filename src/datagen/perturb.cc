#include "datagen/perturb.h"

#include <algorithm>
#include <random>
#include <vector>

#include "common/check.h"
#include "stats/rng.h"

namespace focus::datagen {

data::Dataset FlipLabels(const data::Dataset& dataset, double p, uint64_t seed) {
  FOCUS_CHECK_GE(p, 0.0);
  FOCUS_CHECK_LE(p, 1.0);
  FOCUS_CHECK_GE(dataset.schema().num_classes(), 2);
  std::mt19937_64 rng = stats::MakeRng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  data::Dataset out(dataset.schema());
  out.Reserve(dataset.num_rows());
  const int num_classes = dataset.schema().num_classes();
  for (int64_t row = 0; row < dataset.num_rows(); ++row) {
    int label = dataset.Label(row);
    if (unit(rng) < p) {
      // Pick a different class uniformly.
      const int shift =
          static_cast<int>(stats::UniformInt(rng, 1, num_classes - 1));
      label = (label + shift) % num_classes;
    }
    out.AddRow(dataset.Row(row), label);
  }
  return out;
}

data::Dataset JitterNumeric(const data::Dataset& dataset, double relative_sd,
                            uint64_t seed) {
  FOCUS_CHECK_GE(relative_sd, 0.0);
  std::mt19937_64 rng = stats::MakeRng(seed);

  data::Dataset out(dataset.schema());
  out.Reserve(dataset.num_rows());
  std::vector<double> row(dataset.num_attributes());
  for (int64_t r = 0; r < dataset.num_rows(); ++r) {
    const auto src = dataset.Row(r);
    std::copy(src.begin(), src.end(), row.begin());
    for (int a = 0; a < dataset.num_attributes(); ++a) {
      const data::Attribute& attr = dataset.schema().attribute(a);
      if (attr.type != data::AttributeType::kNumeric) continue;
      const double sd = relative_sd * (attr.max_value - attr.min_value);
      if (sd <= 0.0) continue;
      row[a] = std::clamp(row[a] + sd * stats::NormalVariate(rng),
                          attr.min_value, attr.max_value);
    }
    out.AddRow(row, dataset.Label(r));
  }
  return out;
}

data::TransactionDb ReplaceItems(const data::TransactionDb& db, double p,
                                 uint64_t seed) {
  FOCUS_CHECK_GE(p, 0.0);
  FOCUS_CHECK_LE(p, 1.0);
  std::mt19937_64 rng = stats::MakeRng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  data::TransactionDb out(db.num_items());
  std::vector<int32_t> txn;
  for (int64_t t = 0; t < db.num_transactions(); ++t) {
    const auto src = db.Transaction(t);
    txn.assign(src.begin(), src.end());
    for (int32_t& item : txn) {
      if (unit(rng) < p) {
        item = static_cast<int32_t>(stats::UniformInt(rng, 0, db.num_items() - 1));
      }
    }
    out.AddTransaction(txn);
  }
  return out;
}

}  // namespace focus::datagen

#include "datagen/quest_gen.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "common/check.h"
#include "stats/rng.h"

namespace focus::datagen {
namespace {

struct Pattern {
  std::vector<int32_t> items;
  double weight = 0.0;      // normalized selection probability
  double corruption = 0.0;  // per-pattern item-drop level
};

std::vector<Pattern> GeneratePatterns(const QuestParams& params,
                                      std::mt19937_64& rng) {
  std::uniform_int_distribution<int32_t> item_dist(0, params.num_items - 1);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::normal_distribution<double> corruption_dist(params.corruption_mean,
                                                   params.corruption_sd);

  std::vector<Pattern> patterns(params.num_patterns);
  double weight_sum = 0.0;
  for (int32_t p = 0; p < params.num_patterns; ++p) {
    Pattern& pattern = patterns[p];
    int64_t size =
        std::max<int64_t>(1, stats::PoissonVariate(rng, params.avg_pattern_length));
    size = std::min<int64_t>(size, params.num_items);

    // Correlation: an exponentially distributed fraction of items is
    // inherited from the previous pattern.
    std::vector<int32_t> inherited;
    if (p > 0) {
      double corr = stats::ExponentialVariate(rng, params.correlation_mean);
      corr = std::min(corr, 1.0);
      const auto& prev = patterns[p - 1].items;
      int64_t take = std::min<int64_t>(
          static_cast<int64_t>(std::llround(corr * static_cast<double>(size))),
          static_cast<int64_t>(prev.size()));
      std::vector<int32_t> shuffled = prev;
      std::shuffle(shuffled.begin(), shuffled.end(), rng);
      inherited.assign(shuffled.begin(), shuffled.begin() + take);
    }

    std::vector<int32_t> items = inherited;
    while (static_cast<int64_t>(items.size()) < size) {
      const int32_t candidate = item_dist(rng);
      if (std::find(items.begin(), items.end(), candidate) == items.end()) {
        items.push_back(candidate);
      }
    }
    std::sort(items.begin(), items.end());
    pattern.items = std::move(items);

    pattern.weight = stats::ExponentialVariate(rng, 1.0);
    weight_sum += pattern.weight;
    pattern.corruption = std::clamp(corruption_dist(rng), 0.0, 1.0);
  }
  for (Pattern& pattern : patterns) pattern.weight /= weight_sum;
  return patterns;
}

// Weighted pattern sampling via cumulative distribution + binary search.
class PatternPicker {
 public:
  explicit PatternPicker(const std::vector<Pattern>& patterns) {
    cumulative_.reserve(patterns.size());
    double acc = 0.0;
    for (const Pattern& p : patterns) {
      acc += p.weight;
      cumulative_.push_back(acc);
    }
    // Guard against floating-point undershoot at the top end.
    if (!cumulative_.empty()) cumulative_.back() = 1.0;
  }

  int32_t Pick(std::mt19937_64& rng) const {
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    const double u = unit(rng);
    const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    return static_cast<int32_t>(it - cumulative_.begin());
  }

 private:
  std::vector<double> cumulative_;
};

}  // namespace

std::string QuestParams::Name() const {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "%.3gM.%.0fL.%gK.%dpats.%gpatlen",
                static_cast<double>(num_transactions) / 1e6,
                avg_transaction_length, static_cast<double>(num_items) / 1e3,
                num_patterns, avg_pattern_length);
  return buffer;
}

void GenerateQuestTo(
    const QuestParams& params,
    const std::function<void(std::span<const int32_t>)>& sink) {
  FOCUS_CHECK_GT(params.num_transactions, 0);
  FOCUS_CHECK_GT(params.num_items, 0);
  FOCUS_CHECK_GT(params.num_patterns, 0);
  FOCUS_CHECK_GT(params.avg_pattern_length, 0.0);
  FOCUS_CHECK_GT(params.avg_transaction_length, 0.0);

  // Patterns define the generating process; transactions sample from it.
  std::mt19937_64 pattern_rng = stats::MakeRng(
      params.pattern_seed != 0 ? params.pattern_seed : params.seed);
  const std::vector<Pattern> patterns = GeneratePatterns(params, pattern_rng);
  std::mt19937_64 rng = stats::MakeRng(stats::DeriveSeed(params.seed, 1));
  const PatternPicker picker(patterns);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  // A pattern that overflowed the previous transaction and was deferred.
  std::vector<int32_t> carried;
  std::vector<int32_t> txn;
  for (int64_t t = 0; t < params.num_transactions; ++t) {
    const int64_t target_size = std::max<int64_t>(
        1, stats::PoissonVariate(rng, params.avg_transaction_length));
    txn.clear();

    if (!carried.empty()) {
      txn.insert(txn.end(), carried.begin(), carried.end());
      carried.clear();
    }

    // Cap the number of pattern draws so a degenerate weight distribution
    // cannot stall generation.
    int attempts = 0;
    while (static_cast<int64_t>(txn.size()) < target_size && attempts < 64) {
      ++attempts;
      const Pattern& pattern = patterns[picker.Pick(rng)];
      std::vector<int32_t> instance;
      instance.reserve(pattern.items.size());
      for (int32_t item : pattern.items) {
        // Corrupt (drop) items: keep while u >= corruption level.
        if (unit(rng) >= pattern.corruption) instance.push_back(item);
      }
      if (instance.empty()) continue;
      if (static_cast<int64_t>(txn.size() + instance.size()) <= target_size ||
          txn.empty()) {
        txn.insert(txn.end(), instance.begin(), instance.end());
      } else if (unit(rng) < 0.5) {
        // Overflowing pattern: half the time add it anyway...
        txn.insert(txn.end(), instance.begin(), instance.end());
      } else {
        // ...otherwise defer it to the next transaction and close this one.
        carried = std::move(instance);
        break;
      }
    }
    if (txn.empty()) txn.push_back(static_cast<int32_t>(
        stats::UniformInt(rng, 0, params.num_items - 1)));
    sink(txn);
  }
}

data::TransactionDb GenerateQuest(const QuestParams& params) {
  data::TransactionDb db(params.num_items);
  db.Reserve(params.num_transactions,
             static_cast<int64_t>(static_cast<double>(params.num_transactions) *
                                  params.avg_transaction_length));
  GenerateQuestTo(params, [&db](std::span<const int32_t> items) {
    db.AddTransaction(items);
  });
  return db;
}

}  // namespace focus::datagen

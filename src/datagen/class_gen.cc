#include "datagen/class_gen.h"

#include <array>
#include <random>

#include "common/check.h"
#include "stats/rng.h"

namespace focus::datagen {
namespace {

using Cols = ClassGenColumns;

bool Between(double v, double lo, double hi) { return lo <= v && v <= hi; }

// F1: group A iff age < 40 or age >= 60.
bool F1IsGroupA(std::span<const double> r) {
  const double age = r[Cols::kAge];
  return age < 40.0 || age >= 60.0;
}

// F2: age bands with salary windows.
bool F2IsGroupA(std::span<const double> r) {
  const double age = r[Cols::kAge];
  const double salary = r[Cols::kSalary];
  if (age < 40.0) return Between(salary, 50000.0, 100000.0);
  if (age < 60.0) return Between(salary, 75000.0, 125000.0);
  return Between(salary, 25000.0, 75000.0);
}

// F3: age bands with education-level windows.
bool F3IsGroupA(std::span<const double> r) {
  const double age = r[Cols::kAge];
  const int elevel = static_cast<int>(r[Cols::kElevel]);
  if (age < 40.0) return elevel == 0 || elevel == 1;
  if (age < 60.0) return elevel >= 1 && elevel <= 3;
  return elevel >= 2 && elevel <= 4;
}

// F4: age bands where the salary window depends on education level.
bool F4IsGroupA(std::span<const double> r) {
  const double age = r[Cols::kAge];
  const double salary = r[Cols::kSalary];
  const int elevel = static_cast<int>(r[Cols::kElevel]);
  if (age < 40.0) {
    return (elevel >= 0 && elevel <= 1) ? Between(salary, 25000.0, 75000.0)
                                        : Between(salary, 50000.0, 100000.0);
  }
  if (age < 60.0) {
    return (elevel >= 1 && elevel <= 3) ? Between(salary, 50000.0, 100000.0)
                                        : Between(salary, 75000.0, 125000.0);
  }
  return (elevel >= 2 && elevel <= 4) ? Between(salary, 50000.0, 100000.0)
                                      : Between(salary, 25000.0, 75000.0);
}

// F5: age bands where the loan window depends on the salary window.
bool F5IsGroupA(std::span<const double> r) {
  const double age = r[Cols::kAge];
  const double salary = r[Cols::kSalary];
  const double loan = r[Cols::kLoan];
  if (age < 40.0) {
    return Between(salary, 50000.0, 100000.0)
               ? Between(loan, 100000.0, 300000.0)
               : Between(loan, 200000.0, 400000.0);
  }
  if (age < 60.0) {
    return Between(salary, 75000.0, 125000.0)
               ? Between(loan, 200000.0, 400000.0)
               : Between(loan, 300000.0, 500000.0);
  }
  return Between(salary, 25000.0, 75000.0)
             ? Between(loan, 300000.0, 500000.0)
             : Between(loan, 100000.0, 300000.0);
}

// F6: like F2 but on total income (salary + commission).
bool F6IsGroupA(std::span<const double> r) {
  const double age = r[Cols::kAge];
  const double income = r[Cols::kSalary] + r[Cols::kCommission];
  if (age < 40.0) return Between(income, 50000.0, 100000.0);
  if (age < 60.0) return Between(income, 75000.0, 125000.0);
  return Between(income, 25000.0, 75000.0);
}

// F7: linear disposable-income rule.
bool F7IsGroupA(std::span<const double> r) {
  const double disposable = 0.67 * (r[Cols::kSalary] + r[Cols::kCommission]) -
                            0.2 * r[Cols::kLoan] - 20000.0;
  return disposable > 0.0;
}

}  // namespace

std::string ClassGenParams::Name() const {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3gM.F%d",
                static_cast<double>(num_rows) / 1e6, static_cast<int>(function));
  return buffer;
}

data::Schema ClassGenSchema() {
  std::vector<data::Attribute> attrs;
  attrs.push_back(data::Schema::Numeric("salary", 20000.0, 150000.0));
  attrs.push_back(data::Schema::Numeric("commission", 0.0, 75000.0));
  attrs.push_back(data::Schema::Numeric("age", 20.0, 80.0));
  attrs.push_back(data::Schema::Categorical("elevel", 5));
  attrs.push_back(data::Schema::Categorical("car", 20));
  attrs.push_back(data::Schema::Categorical("zipcode", 9));
  attrs.push_back(data::Schema::Numeric("hvalue", 0.0, 1350000.0));
  attrs.push_back(data::Schema::Numeric("hyears", 1.0, 30.0));
  attrs.push_back(data::Schema::Numeric("loan", 0.0, 500000.0));
  return data::Schema(std::move(attrs), /*num_classes=*/2);
}

int EvaluateClassFunction(ClassFunction f, std::span<const double> row) {
  bool group_a = false;
  switch (f) {
    case ClassFunction::kF1: group_a = F1IsGroupA(row); break;
    case ClassFunction::kF2: group_a = F2IsGroupA(row); break;
    case ClassFunction::kF3: group_a = F3IsGroupA(row); break;
    case ClassFunction::kF4: group_a = F4IsGroupA(row); break;
    case ClassFunction::kF5: group_a = F5IsGroupA(row); break;
    case ClassFunction::kF6: group_a = F6IsGroupA(row); break;
    case ClassFunction::kF7: group_a = F7IsGroupA(row); break;
  }
  return group_a ? 0 : 1;
}

data::Dataset GenerateClassification(const ClassGenParams& params) {
  FOCUS_CHECK_GT(params.num_rows, 0);
  FOCUS_CHECK_GE(params.label_noise, 0.0);
  FOCUS_CHECK_LE(params.label_noise, 1.0);

  std::mt19937_64 rng = stats::MakeRng(params.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  data::Dataset dataset(ClassGenSchema());
  dataset.Reserve(params.num_rows);
  std::array<double, 9> row;
  for (int64_t i = 0; i < params.num_rows; ++i) {
    row[Cols::kSalary] = stats::UniformVariate(rng, 20000.0, 150000.0);
    row[Cols::kCommission] =
        row[Cols::kSalary] >= 75000.0
            ? 0.0
            : stats::UniformVariate(rng, 10000.0, 75000.0);
    row[Cols::kAge] = stats::UniformVariate(rng, 20.0, 80.0);
    row[Cols::kElevel] = static_cast<double>(stats::UniformInt(rng, 0, 4));
    row[Cols::kCar] = static_cast<double>(stats::UniformInt(rng, 0, 19));
    const int64_t zipcode = stats::UniformInt(rng, 0, 8);
    row[Cols::kZipcode] = static_cast<double>(zipcode);
    // House value scales with a zipcode-dependent factor k in {1..9}.
    const double k = static_cast<double>(zipcode + 1);
    row[Cols::kHvalue] = stats::UniformVariate(rng, 0.5 * k * 100000.0,
                                               1.5 * k * 100000.0);
    row[Cols::kHyears] = stats::UniformVariate(rng, 1.0, 30.0);
    row[Cols::kLoan] = stats::UniformVariate(rng, 0.0, 500000.0);

    int label = EvaluateClassFunction(params.function, row);
    if (params.label_noise > 0.0 && unit(rng) < params.label_noise) {
      label = 1 - label;
    }
    dataset.AddRow(row, label);
  }
  return dataset;
}

}  // namespace focus::datagen
